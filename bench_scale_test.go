//go:build slow

// Large-scale build benchmarks, behind the `slow` tag so the default
// bench suite stays fast:
//
//	go test -tags slow -run '^$' -bench 'BenchmarkIndexBuild100k' -benchtime 1x .
//
// BenchmarkIndexBuild100k is the acceptance point of the build
// performance overhaul (≥3x single-core over the recorded naive
// baseline; see BENCH_index.json) and runs once per CI cycle as a
// smoke test. BenchmarkIndexBuild1M is the paper-scale headroom
// check, run manually when re-recording the scaling curve.
package fairindex_test

import "testing"

func BenchmarkIndexBuild100k(b *testing.B) { benchmarkScaledBuild(b, 100_000) }

func BenchmarkIndexBuild1M(b *testing.B) { benchmarkScaledBuild(b, 1_000_000) }
