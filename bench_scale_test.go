//go:build slow

// Large-scale build benchmarks, behind the `slow` tag so the default
// bench suite stays fast:
//
//	go test -tags slow -run '^$' -bench 'BenchmarkIndexBuild100k|BenchmarkIndexBuildStream100k|BenchmarkIndexIngestStream100k' -benchtime 1x .
//
// BenchmarkIndexBuild100k is the acceptance point of the build
// performance overhaul (≥3x single-core over the recorded naive
// baseline; see BENCH_index.json) and runs once per CI cycle as a
// smoke test. BenchmarkIndexBuildStream100k is the streaming
// subsystem's acceptance point at the same workload — the artifact is
// bit-identical (TestBuildStreamParity), so only time and allocations
// may differ. BenchmarkIndexIngestStream100k isolates the ingest
// phase; its allocs/op is O(chunk) — a reusable batch plus the final
// backing arrays, an allocation count independent of the record count
// — and the CI alloc gate fails any change that sneaks per-record
// allocation back into the chunked path. BenchmarkIndexBuild1M is the
// paper-scale headroom check, run manually when re-recording the
// scaling curve.
package fairindex_test

import (
	"testing"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/stream"
)

func BenchmarkIndexBuild100k(b *testing.B) { benchmarkScaledBuild(b, 100_000) }

func BenchmarkIndexBuild1M(b *testing.B) { benchmarkScaledBuild(b, 1_000_000) }

// scaledDataset materializes the skewed benchmark city once, outside
// the timed region.
func scaledDataset(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.Generate(dataset.Scaled(dataset.LA(), n), geo.MustGrid(64, 64))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkIndexBuildStream100k(b *testing.B) {
	ds := scaledDataset(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := fairindex.BuildStream(fairindex.NewDatasetSource(ds),
			fairindex.WithMethod(fairindex.MethodFairKD),
			fairindex.WithHeight(8),
			fairindex.WithSeed(11))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("n=100000: %d regions, build %v, train %v",
				idx.NumRegions(), idx.BuildTime(), idx.TrainTime())
		}
	}
}

func BenchmarkIndexIngestStream100k(b *testing.B) {
	ds := scaledDataset(b, 100_000)
	src := stream.FromDataset(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Reset(); err != nil {
			b.Fatal(err)
		}
		out, err := stream.Ingest(src, fairindex.DefaultStreamChunk)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != ds.Len() {
			b.Fatalf("ingested %d records, want %d", out.Len(), ds.Len())
		}
	}
}
