package fairindex

import (
	"io"

	"fairindex/internal/dataset"
	"fairindex/internal/pipeline"
	"fairindex/internal/stream"
)

// Streaming ingestion surface. A Source yields records in chunks;
// BuildStream runs the standard pipeline over one with bounded ingest
// residency, producing an Index bit-identical to Build over the same
// records held in memory. See docs/STREAMING.md for the residency
// model and drift semantics.
type (
	// Source is a rewindable chunked record stream (see
	// internal/stream). CSV files, in-memory datasets and generator
	// functions all implement it.
	Source = stream.Source
	// StreamSchema describes the records a Source yields.
	StreamSchema = stream.Schema
	// StreamBatch is the reusable columnar chunk Sources fill.
	StreamBatch = stream.Batch
	// CSVSource is the chunked reader over the canonical CSV layout.
	CSVSource = stream.CSVSource
	// DatasetSource streams an in-memory Dataset.
	DatasetSource = stream.DatasetSource
	// FuncSource streams records produced by a deterministic
	// generator function, so synthetic workloads of any size stream
	// without being materialized.
	FuncSource = stream.FuncSource
	// RowError is the line-accurate decode/validation error reported
	// for malformed input rows by ReadDatasetCSV and every streaming
	// source; errors.As against it to recover the 1-based line and
	// the offending column.
	RowError = dataset.RowError
)

// DefaultStreamChunk is the record-batch size streaming ingestion
// uses when WithStreaming was not given.
const DefaultStreamChunk = stream.DefaultChunk

// NewCSVSource returns a chunked streaming source over canonical CSV
// held by r (the layout WriteDatasetCSV produces). The reader must
// seek: streaming builds take two passes. The header is consumed
// eagerly, so the source's schema is complete on return.
func NewCSVSource(r io.ReadSeeker, name string, grid Grid, box BBox) (*CSVSource, error) {
	return stream.NewCSV(r, name, grid, box)
}

// OpenCSVSource opens a canonical CSV file as a chunked streaming
// source. Close it after the build.
func OpenCSVSource(path, name string, grid Grid, box BBox) (*CSVSource, error) {
	return stream.OpenCSV(path, name, grid, box)
}

// NewDatasetSource streams an in-memory dataset — the bridge that
// lets generated or already-loaded data feed BuildStream.
func NewDatasetSource(ds *Dataset) *DatasetSource {
	return stream.FromDataset(ds)
}

// NewFuncSource streams n records produced by fn, which must be a
// pure function of the record index (streams are replayed). fn fills
// the record in place: coordinates, features and labels; the
// enclosing grid cell is assigned by the source.
func NewFuncSource(schema StreamSchema, n int, fn func(i int, rec *Record) error) (*FuncSource, error) {
	return stream.FromFunc(schema, n, fn)
}

// BuildStream constructs an Index from a record stream instead of a
// materialized dataset: a two-pass bounded-residency ingest (chunk
// size set by WithStreaming) followed by the standard build. The
// produced Index is bit-identical to Build over the same records in
// memory — streaming changes the ingest's transient allocations from
// O(records) to O(chunk), not the artifact.
func BuildStream(src Source, opts ...Option) (*Index, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	art, ds, err := pipeline.BuildSource(src, cfg)
	if err != nil {
		return nil, err
	}
	return newIndex(ds, art)
}
