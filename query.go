package fairindex

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fairindex/internal/calib"
	"fairindex/internal/geo"
)

// This file is the Index's region-query engine: range queries over a
// geographic window, k-nearest-region queries and fairness aggregates
// over arbitrary region sets. Point lookups (index.go) answer "which
// neighborhood is this coordinate in?"; these answer the FiSH-style
// workload "which neighborhoods does this window touch, and is the
// model fair over them?".
//
// All three run off small acceleration structures derived from the
// partition at Build time and carried by the v2 serialization format
// (recomputed when loading a v1 file):
//
//   - regionRects/regionCells: each region's bounding cell rectangle
//     and cell count. RangeQuery prunes against the bounding rects and,
//     for regions that exactly fill their rect (every KD-tree, quadtree
//     and uniform-grid region does), counts overlap by rectangle
//     intersection alone — no cell scan at all.
//   - knnOrder: the region centroids arranged as an implicit balanced
//     kd-tree (median layout), giving NearestRegions a pruned
//     branch-and-bound search instead of a full centroid scan.

// Query errors.
var (
	// ErrQuery reports a malformed query argument (non-finite or
	// inverted rectangle, non-finite point, non-positive k, bad region
	// id).
	ErrQuery = errors.New("fairindex: invalid query")
	// ErrNoRegionStats reports a GroupStats call on an index that does
	// not carry per-region calibration statistics — an artifact
	// serialized before the v2 format. Rebuild (or re-save) the index
	// to enable fairness aggregation.
	ErrNoRegionStats = errors.New("fairindex: index carries no per-region stats (pre-v2 artifact)")
)

// RegionOverlap reports one region intersecting a range query: how
// many of its grid cells fall inside the query window and which
// fraction of the region that is (1.0 = fully contained).
type RegionOverlap struct {
	Region   int     // neighborhood id
	Cells    int     // cells of the region inside the window
	Fraction float64 // Cells / total cells of the region, in (0, 1]
}

// RegionDistance reports one region of a NearestRegions result.
type RegionDistance struct {
	Region   int     // neighborhood id
	Distance float64 // planar Euclidean centroid distance, in degrees
}

// RegionStat is one region's build-time calibration summary inside a
// WindowStats aggregate, computed from the stored sufficient
// statistics of the final (post-processed) model over the full
// dataset.
type RegionStat struct {
	Region   int
	Count    int     // population
	MeanConf float64 // e(N): mean predicted score
	PosRate  float64 // o(N): empirical positive rate
	Miscal   float64 // |e − o|
	CalRatio float64 // e/o (Eq. 2); NaN when the region has no positives
	// SumScore and SumLabel are the region's raw additive sufficient
	// statistics (Σ score, Σ label). Together with Count they fully
	// determine every derived field above, which is what lets
	// MergeWindowStats rebuild an exact window aggregate from
	// per-region stats collected across index shards.
	SumScore float64
	SumLabel float64
}

// WindowStats aggregates the stored per-region calibration report
// over a set of regions (a "query window") for one task. Sums are
// exact: the index stores additive sufficient statistics per region,
// so any window aggregate matches what a full re-evaluation over
// those regions' records would produce.
type WindowStats struct {
	Task     int
	Count    int          // total population of the window
	MeanConf float64      // e over the window (0 when empty)
	PosRate  float64      // o over the window (0 when empty)
	Miscal   float64      // |e − o| over the window
	CalRatio float64      // e/o over the window; NaN when no positives
	ENCE     float64      // Definition 3 restricted to the window's regions
	Regions  []RegionStat // per-region detail, ascending region id
	// Metrics holds the selected fairness metrics over the window,
	// keyed by registered metric name. GroupStatsMetrics populates it;
	// the legacy GroupStats leaves it nil. The legacy ENCE and
	// CalRatio fields above are always populated either way and keep
	// their historical bit-exact computation.
	Metrics map[string]float64
}

// RegionRect returns the bounding rectangle of a region's cells.
func (ix *Index) RegionRect(region int) (CellRect, error) {
	if region < 0 || region >= ix.numRegions {
		return CellRect{}, fmt.Errorf("%w: region %d out of range [0,%d)", ErrQuery, region, ix.numRegions)
	}
	return ix.regionRects[region], nil
}

// RegionCells returns the number of grid cells a region covers.
func (ix *Index) RegionCells(region int) (int, error) {
	if region < 0 || region >= ix.numRegions {
		return 0, fmt.Errorf("%w: region %d out of range [0,%d)", ErrQuery, region, ix.numRegions)
	}
	return ix.regionCells[region], nil
}

// queryCellRect maps a geographic query rectangle onto the grid:
// the half-open rectangle of cells between the cells containing the
// window's southwest and northeast corners (clamped to the grid,
// matching Locate's convention for boundary and outside points). The
// empty rectangle is returned when the window lies strictly outside
// the index's bounding box. Degenerate windows (a line or a single
// point, MinLat == MaxLat) are valid and resolve to the row/column of
// cells containing them.
func (ix *Index) queryCellRect(q BBox) (geo.CellRect, error) {
	for _, v := range [4]float64{q.MinLat, q.MinLon, q.MaxLat, q.MaxLon} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return geo.CellRect{}, fmt.Errorf("%w: non-finite rectangle %+v", ErrQuery, q)
		}
	}
	if q.MinLat > q.MaxLat || q.MinLon > q.MaxLon {
		return geo.CellRect{}, fmt.Errorf("%w: inverted rectangle %+v", ErrQuery, q)
	}
	if q.MaxLat < ix.box.MinLat || q.MinLat > ix.box.MaxLat ||
		q.MaxLon < ix.box.MinLon || q.MinLon > ix.box.MaxLon {
		return geo.CellRect{}, nil
	}
	sw := ix.mapper.CellOf(q.MinLat, q.MinLon)
	ne := ix.mapper.CellOf(q.MaxLat, q.MaxLon)
	return geo.CellRect{Row0: sw.Row, Col0: sw.Col, Row1: ne.Row + 1, Col1: ne.Col + 1}, nil
}

// RangeQuery returns the regions intersecting an axis-aligned
// geographic rectangle, ordered by ascending region id, with each
// region's overlapping cell count and covered fraction. The window is
// resolved at cell granularity (see queryCellRect); a window strictly
// outside the index's bounding box yields an empty result, a
// malformed (inverted or non-finite) rectangle an error.
//
// The scan is pruned by the per-region bounding rectangles: regions
// whose bounds miss the window are skipped without touching the
// cell→region table, and regions that exactly fill their bounding
// rectangle are counted by rectangle intersection alone. Results are
// identical to a brute-force scan of every grid cell (pinned by a
// property test).
func (ix *Index) RangeQuery(q BBox) ([]RegionOverlap, error) {
	qr, err := ix.queryCellRect(q)
	if err != nil {
		return nil, err
	}
	if qr.Empty() {
		return nil, nil
	}
	var out []RegionOverlap
	v := ix.grid.V
	for region, rect := range ix.regionRects {
		inter := rect.Intersect(qr)
		if inter.Empty() {
			continue
		}
		cells := 0
		if ix.regionCells[region] == rect.Area() {
			// Solid region: its cells are exactly its bounding rect.
			cells = inter.Area()
		} else {
			for row := inter.Row0; row < inter.Row1; row++ {
				base := row * v
				for col := inter.Col0; col < inter.Col1; col++ {
					if ix.cellRegion[base+col] == region {
						cells++
					}
				}
			}
		}
		if cells > 0 {
			out = append(out, RegionOverlap{
				Region:   region,
				Cells:    cells,
				Fraction: float64(cells) / float64(ix.regionCells[region]),
			})
		}
	}
	return out, nil
}

// NearestRegions returns the k regions whose centroids are nearest to
// the coordinate, ordered by ascending distance (ties broken by
// ascending region id). Distance is planar Euclidean over degrees —
// adequate at city scale; it is not a great-circle distance. The
// point may lie outside the index's bounding box. k is clamped to
// NumRegions; k < 1 and non-finite coordinates are errors.
//
// The search runs branch-and-bound over the centroid kd-tree built at
// Build/UnmarshalBinary time; results are identical to a full sorted
// centroid scan (pinned by a property test).
func (ix *Index) NearestRegions(lat, lon float64, k int) ([]RegionDistance, error) {
	res, err := ix.NearestRegionsSquared(lat, lon, k)
	if err != nil {
		return nil, err
	}
	for i := range res {
		res[i].Distance = math.Sqrt(res[i].Distance)
	}
	return res, nil
}

// NearestRegionsSquared is NearestRegions without the final square
// root: distances are squared planar Euclidean degrees, in the same
// (squared distance, region id) order the search itself selects by.
// This is the merge hook for sharded serving — squared distances are
// the canonical selection key, so per-shard candidate lists merged on
// (squared distance, id) reproduce the whole index's top-k exactly
// even when two distinct squared distances would collide after the
// square root. See MergeNearest.
func (ix *Index) NearestRegionsSquared(lat, lon float64, k int) ([]RegionDistance, error) {
	if math.IsNaN(lat) || math.IsInf(lat, 0) || math.IsNaN(lon) || math.IsInf(lon, 0) {
		return nil, fmt.Errorf("%w: non-finite coordinate (%v, %v)", ErrQuery, lat, lon)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k must be at least 1, got %d", ErrQuery, k)
	}
	if k > ix.numRegions {
		k = ix.numRegions
	}
	res := make([]RegionDistance, 0, k)
	ix.knnVisit(&res, k, lat, lon, 0, len(ix.knnOrder), 0)
	return res, nil
}

// MergeNearest merges candidate lists that are each sorted by
// (Distance, Region) ascending — the order NearestRegionsSquared
// returns — into the global top k under the same order. It is the
// exact kNN merge kernel for sharded serving: feed it per-shard
// squared-distance candidates (k+1 per shard, so dropping one
// foreign-region entry per shard cannot starve the merge) with region
// ids already translated to the global id space, then take the square
// root of the merged distances. The merge itself performs no
// per-region allocation.
func MergeNearest(k int, lists ...[]RegionDistance) []RegionDistance {
	if k < 1 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if k > total {
		k = total
	}
	if k == 0 {
		return nil
	}
	out := make([]RegionDistance, 0, k)
	pos := make([]int, len(lists))
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a, b := l[pos[i]], lists[best][pos[best]]
			if a.Distance < b.Distance ||
				(a.Distance == b.Distance && a.Region < b.Region) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}

// centroidDegrees converts a region's stored normalized centroid to
// geographic degrees.
func (ix *Index) centroidDegrees(region int) (lat, lon float64) {
	c := ix.centroids[region]
	lat = ix.box.MinLat + c[0]*(ix.box.MaxLat-ix.box.MinLat)
	lon = ix.box.MinLon + c[1]*(ix.box.MaxLon-ix.box.MinLon)
	return lat, lon
}

// knnVisit recursively searches the implicit kd-tree rooted at the
// median of knnOrder[lo:hi). axis 0 splits on latitude (rows), axis 1
// on longitude (columns). res accumulates the best k candidates in
// (squared distance, region id) order; subtrees are pruned when their
// splitting plane is provably farther than the current worst
// candidate.
func (ix *Index) knnVisit(res *[]RegionDistance, k int, lat, lon float64, lo, hi, axis int) {
	if lo >= hi {
		return
	}
	mid := lo + (hi-lo)/2
	region := ix.knnOrder[mid]
	cLat, cLon := ix.centroidDegrees(region)
	dLat, dLon := lat-cLat, lon-cLon
	insertNeighbor(res, k, RegionDistance{Region: region, Distance: dLat*dLat + dLon*dLon})
	delta := dLat
	if axis == 1 {
		delta = dLon
	}
	nearLo, nearHi, farLo, farHi := lo, mid, mid+1, hi
	if delta > 0 {
		nearLo, nearHi, farLo, farHi = mid+1, hi, lo, mid
	}
	ix.knnVisit(res, k, lat, lon, nearLo, nearHi, 1-axis)
	// The far half only holds centroids at least |delta| away along
	// the split axis. <= (not <): an equidistant centroid with a
	// smaller region id must still displace the current worst.
	if len(*res) < k || delta*delta <= (*res)[len(*res)-1].Distance {
		ix.knnVisit(res, k, lat, lon, farLo, farHi, 1-axis)
	}
}

// insertNeighbor inserts a candidate into the sorted top-k slice,
// keeping (distance, region id) order and dropping the worst entry
// when full.
func insertNeighbor(res *[]RegionDistance, k int, nd RegionDistance) {
	s := *res
	pos := sort.Search(len(s), func(i int) bool {
		if s[i].Distance != nd.Distance {
			return s[i].Distance > nd.Distance
		}
		return s[i].Region > nd.Region
	})
	if len(s) < k {
		s = append(s, RegionDistance{})
	} else if pos >= k {
		return
	}
	copy(s[pos+1:], s[pos:])
	s[pos] = nd
	*res = s
}

// buildKNNOrder arranges region ids as an implicit balanced kd-tree
// over their centroids: the subtree spanning order[lo:hi) is rooted
// at the median index lo+(hi-lo)/2, the left half holds centroids at
// or below the root along the level's axis, the right half at or
// above. Ties sort by region id, so the layout is deterministic.
func buildKNNOrder(centroids [][2]float64) []int {
	order := make([]int, len(centroids))
	for i := range order {
		order[i] = i
	}
	var build func(lo, hi, axis int)
	build = func(lo, hi, axis int) {
		if hi-lo <= 1 {
			return
		}
		seg := order[lo:hi]
		sort.Slice(seg, func(a, b int) bool {
			ca, cb := centroids[seg[a]], centroids[seg[b]]
			if ca[axis] != cb[axis] {
				return ca[axis] < cb[axis]
			}
			return seg[a] < seg[b]
		})
		mid := lo + (hi-lo)/2
		build(lo, mid, 1-axis)
		build(mid+1, hi, 1-axis)
	}
	build(0, len(order), 0)
	return order
}

// regionBounds computes each region's bounding cell rectangle and
// cell count from the flat cell→region table.
func regionBounds(grid geo.Grid, cellRegion []int, numRegions int) ([]geo.CellRect, []int) {
	rects := make([]geo.CellRect, numRegions)
	for i := range rects {
		rects[i] = geo.CellRect{Row0: grid.U, Col0: grid.V} // empty sentinel
	}
	counts := make([]int, numRegions)
	for i, region := range cellRegion {
		c := grid.CellAt(i)
		r := &rects[region]
		if c.Row < r.Row0 {
			r.Row0 = c.Row
		}
		if c.Row+1 > r.Row1 {
			r.Row1 = c.Row + 1
		}
		if c.Col < r.Col0 {
			r.Col0 = c.Col
		}
		if c.Col+1 > r.Col1 {
			r.Col1 = c.Col + 1
		}
		counts[region]++
	}
	return rects, counts
}

// buildAccel (re)derives the query acceleration structures from the
// partition and centroids. Build and the v1 decode path call it; the
// v2 decode path restores the structures from the serialized artifact
// instead.
func (ix *Index) buildAccel() {
	ix.regionRects, ix.regionCells = regionBounds(ix.grid, ix.cellRegion, ix.numRegions)
	ix.knnOrder = buildKNNOrder(ix.centroids)
}

// GroupStats aggregates the stored per-region calibration report over
// a set of regions for one task: the FiSH-style "is this window
// fair?" audit. The region list must hold distinct in-range ids —
// typically the regions returned by RangeQuery or NearestRegions.
// Empty regions contribute zero weight; an empty window returns
// all-zero aggregates (CalRatio NaN).
//
// The aggregate is exact, not approximate: the index stores each
// region's additive sufficient statistics (population, Σ score,
// Σ label) from the final post-processed model over the full dataset.
// Note that RangeQuery windows cut regions at cell granularity while
// stats cover whole regions — a region partially inside the window
// contributes its entire population (see docs/QUERIES.md for the
// fairness caveats).
//
// Indexes serialized before the v2 format carry no per-region stats;
// GroupStats then fails with ErrNoRegionStats.
func (ix *Index) GroupStats(task int, regions []int) (WindowStats, error) {
	slot, err := ix.taskSlot(task)
	if err != nil {
		return WindowStats{}, err
	}
	// Read the live statistics snapshot: AppendBatch folds are
	// observed immediately and exactly, and the atomic snapshot makes
	// the whole window internally consistent even against concurrent
	// appends.
	stats := ix.statsFor(slot)
	if stats == nil {
		return WindowStats{}, ErrNoRegionStats
	}
	return ix.windowOver(task, stats, regions)
}

// GroupStatsMetrics is GroupStats with explicit fairness-metric
// selection: alongside the legacy aggregate fields it evaluates each
// named registered metric (see RegisterMetric and docs/METRICS.md)
// over the window's per-region sufficient statistics and returns the
// values in WindowStats.Metrics. With no names it evaluates every
// registered metric. All metrics and the legacy fields are computed
// from one atomic statistics snapshot, so the whole result is
// internally consistent under concurrent appends. Unknown metric
// names are an error wrapping ErrQuery.
func (ix *Index) GroupStatsMetrics(task int, regions []int, names ...string) (WindowStats, error) {
	if len(names) == 0 {
		names = Metrics()
	}
	mets, err := calib.ResolveMetrics(names)
	if err != nil {
		return WindowStats{}, fmt.Errorf("%w: %v", ErrQuery, err)
	}
	slot, err := ix.taskSlot(task)
	if err != nil {
		return WindowStats{}, err
	}
	stats := ix.statsFor(slot)
	if stats == nil {
		return WindowStats{}, ErrNoRegionStats
	}
	ids, window, err := ix.windowSlices(stats, regions)
	if err != nil {
		return WindowStats{}, err
	}
	out := foldWindow(task, ids, window)
	// The metric contract takes one SuffStats entry per window region
	// (ascending id, matching out.Regions).
	out.Metrics = make(map[string]float64, len(mets))
	for _, m := range mets {
		out.Metrics[m.Name()] = m.Compute(window)
	}
	return out, nil
}

// windowOver aggregates one window against one statistics snapshot —
// the shared core of GroupStats and GroupStatsMetrics. The legacy
// aggregate arithmetic here is pinned bit-exactly by golden tests.
func (ix *Index) windowOver(task int, stats []calib.SuffStats, regions []int) (WindowStats, error) {
	ids, window, err := ix.windowSlices(stats, regions)
	if err != nil {
		return WindowStats{}, err
	}
	return foldWindow(task, ids, window), nil
}

// windowSlices validates a query's region list and resolves it against
// a statistics snapshot into parallel ascending-id slices, the input
// shape foldWindow and the metric layer share.
func (ix *Index) windowSlices(stats []calib.SuffStats, regions []int) ([]int, []calib.SuffStats, error) {
	// Region ids are dense, so a bitmap both rejects duplicates and —
	// scanned in order — yields the ascending-id aggregation without a
	// sort.
	seen := make([]bool, ix.numRegions)
	for _, region := range regions {
		if region < 0 || region >= ix.numRegions {
			return nil, nil, fmt.Errorf("%w: region %d out of range [0,%d)", ErrQuery, region, ix.numRegions)
		}
		if seen[region] {
			return nil, nil, fmt.Errorf("%w: duplicate region %d", ErrQuery, region)
		}
		seen[region] = true
	}
	if len(regions) == 0 {
		return nil, nil, nil
	}
	ids := make([]int, 0, len(regions))
	window := make([]calib.SuffStats, 0, len(regions))
	for region, in := range seen {
		if !in {
			continue
		}
		ids = append(ids, region)
		window = append(window, stats[region])
	}
	return ids, window, nil
}

// foldWindow runs the legacy window aggregation over parallel
// ascending-id slices of region ids and their sufficient statistics.
// Every caller — local queries via windowOver, cross-shard merges via
// MergeWindowStats — funnels through this one fold, so the
// floating-point operation order (and hence the exact bit pattern of
// every aggregate) is identical no matter how the statistics were
// collected. It performs no per-region allocation beyond the result's
// Regions slice.
func foldWindow(task int, ids []int, window []calib.SuffStats) WindowStats {
	out := WindowStats{Task: task, CalRatio: math.NaN()}
	if len(ids) > 0 {
		out.Regions = make([]RegionStat, 0, len(ids))
	}
	var sumScore, sumLabel float64
	for i, region := range ids {
		st := window[i]
		out.Count += st.Count
		sumScore += st.SumScore
		sumLabel += st.SumLabel
		out.Regions = append(out.Regions, regionStatOf(region, st))
	}
	if out.Count > 0 {
		out.MeanConf = sumScore / float64(out.Count)
		out.PosRate = sumLabel / float64(out.Count)
		out.Miscal = math.Abs(out.MeanConf - out.PosRate)
		if out.PosRate > 0 {
			out.CalRatio = out.MeanConf / out.PosRate
		}
		// Definition 3 restricted to the window: population-weighted
		// mean of per-region |e − o| over the window's total.
		for _, st := range window {
			if st.Count > 0 {
				out.ENCE += (float64(st.Count) / float64(out.Count)) * st.MiscalAbs()
			}
		}
	}
	return out
}

// MergeWindowStats rebuilds an exact window aggregate from per-region
// summaries gathered across shards of a partitioned index. Each
// RegionStat must carry the raw sufficient statistics (Count,
// SumScore, SumLabel) of a distinct region, with ids in the global id
// space; the slice need not be sorted. Because the statistics are
// additive and the fold is shared with GroupStats, the result is
// bit-identical to querying the whole index — including ENCE, whose
// population weights come from the merged total.
func MergeWindowStats(task int, regions []RegionStat) (WindowStats, error) {
	ids, window, err := mergeWindowSlices(regions)
	if err != nil {
		return WindowStats{}, err
	}
	return foldWindow(task, ids, window), nil
}

// MergeWindowStatsMetrics is MergeWindowStats with fairness-metric
// selection, mirroring GroupStatsMetrics: each named registered metric
// is evaluated over the merged per-region sufficient statistics; with
// no names every registered metric is evaluated. Metric values are
// bit-identical to GroupStatsMetrics on the whole index because the
// metric layer consumes the same ascending-id SuffStats window.
func MergeWindowStatsMetrics(task int, regions []RegionStat, names ...string) (WindowStats, error) {
	if len(names) == 0 {
		names = Metrics()
	}
	mets, err := calib.ResolveMetrics(names)
	if err != nil {
		return WindowStats{}, fmt.Errorf("%w: %v", ErrQuery, err)
	}
	ids, window, err := mergeWindowSlices(regions)
	if err != nil {
		return WindowStats{}, err
	}
	out := foldWindow(task, ids, window)
	out.Metrics = make(map[string]float64, len(mets))
	for _, m := range mets {
		out.Metrics[m.Name()] = m.Compute(window)
	}
	return out, nil
}

// mergeWindowSlices validates and sorts merged per-region summaries
// into the parallel ascending-id slices foldWindow consumes.
func mergeWindowSlices(regions []RegionStat) ([]int, []calib.SuffStats, error) {
	if len(regions) == 0 {
		return nil, nil, nil
	}
	ordered := regions
	if !sort.SliceIsSorted(ordered, func(a, b int) bool { return ordered[a].Region < ordered[b].Region }) {
		ordered = append([]RegionStat(nil), regions...)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].Region < ordered[b].Region })
	}
	ids := make([]int, 0, len(ordered))
	window := make([]calib.SuffStats, 0, len(ordered))
	prev := -1
	for _, rs := range ordered {
		if rs.Region < 0 {
			return nil, nil, fmt.Errorf("%w: region %d out of range", ErrQuery, rs.Region)
		}
		if rs.Region == prev {
			return nil, nil, fmt.Errorf("%w: duplicate region %d", ErrQuery, rs.Region)
		}
		if rs.Count < 0 {
			return nil, nil, fmt.Errorf("%w: region %d has negative count %d", ErrQuery, rs.Region, rs.Count)
		}
		prev = rs.Region
		ids = append(ids, rs.Region)
		window = append(window, calib.SuffStats{Count: rs.Count, SumScore: rs.SumScore, SumLabel: rs.SumLabel})
	}
	return ids, window, nil
}

// regionStatOf converts stored sufficient statistics into the public
// per-region summary.
func regionStatOf(region int, st calib.SuffStats) RegionStat {
	ratio := math.NaN()
	if st.PosRate() > 0 {
		ratio = st.MeanScore() / st.PosRate()
	}
	return RegionStat{
		Region:   region,
		Count:    st.Count,
		MeanConf: st.MeanScore(),
		PosRate:  st.PosRate(),
		Miscal:   st.MiscalAbs(),
		CalRatio: ratio,
		SumScore: st.SumScore,
		SumLabel: st.SumLabel,
	}
}
