package fairindex

import (
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// buildFuzzSeedIndex builds the small-but-complete artifact the fuzz
// seeds derive from: multiple tasks would be overkill, but Platt
// post-processing makes the calibrator reference table part of the
// byte stream, so mutations reach every decode branch.
func buildFuzzSeedIndex(tb testing.TB) *Index {
	tb.Helper()
	spec := dataset.LA()
	spec.NumRecords = 200
	ds, err := dataset.Generate(spec, geo.MustGrid(8, 8))
	if err != nil {
		tb.Fatal(err)
	}
	idx, err := Build(ds, WithHeight(3), WithSeed(11), WithPostProcess(PostPlatt))
	if err != nil {
		tb.Fatal(err)
	}
	return idx
}

// FuzzUnmarshalBinary is the codec's crash-safety proof: arbitrary
// bytes — including bit flips and truncations of genuine v1 and v2
// artifacts — must either decode into a fully usable Index or return
// an error. Panics, runaway allocations and out-of-range table
// accesses after a "successful" decode are all failures. The
// checked-in corpus under testdata/fuzz/FuzzUnmarshalBinary (real
// marshaled artifacts; regenerate with go test -run TestRegenTestdata
// and FAIRINDEX_REGEN=1) is extended here with fresh builds so the
// seeds track the current codec even before the corpus is refreshed.
func FuzzUnmarshalBinary(f *testing.F) {
	idx := buildFuzzSeedIndex(f)
	v2, err := idx.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	v1, err := marshalBinaryV1(idx)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(v1)
	// Structured corruption: truncations at section-ish boundaries and
	// single-byte flips give the mutator a head start over random noise.
	for _, cut := range []int{0, 4, 5, len(v2) / 4, len(v2) / 2, len(v2) - 1} {
		if cut <= len(v2) {
			f.Add(append([]byte(nil), v2[:cut]...))
		}
	}
	for _, pos := range []int{4, 8, len(v2) / 3, 2 * len(v2) / 3} {
		mut := append([]byte(nil), v2...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte("FIDX"))
	f.Add([]byte("FIDX\x7f")) // unsupported version
	f.Add([]byte("not an index at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var ix Index
		if err := ix.UnmarshalBinary(data); err != nil {
			return // rejected input is the expected outcome
		}
		// The decoder accepted the bytes, so the artifact must honor
		// the Index contract end to end — a decode that passes but
		// leaves booby-trapped tables behind is the bug class this
		// fuzz target exists to catch.
		box := ix.Box()
		midLat := (box.MinLat + box.MaxLat) / 2
		midLon := (box.MinLon + box.MaxLon) / 2
		region, err := ix.Locate(midLat, midLon)
		if err != nil {
			t.Fatalf("decoded index rejects in-box Locate: %v", err)
		}
		if region < 0 || region >= ix.NumRegions() {
			t.Fatalf("Locate region %d outside [0,%d)", region, ix.NumRegions())
		}
		if _, err := ix.RangeQuery(box); err != nil {
			t.Fatalf("decoded index rejects full-box RangeQuery: %v", err)
		}
		if _, err := ix.NearestRegions(midLat, midLon, 3); err != nil {
			t.Fatalf("decoded index rejects NearestRegions: %v", err)
		}
		for _, task := range ix.Tasks() {
			if _, err := ix.Report(task); err != nil {
				t.Fatalf("decoded index rejects Report(%d): %v", task, err)
			}
			// GroupStats may legitimately fail (v1 artifacts carry no
			// region stats) — it must only never panic.
			_, _ = ix.GroupStats(task, []int{region})
		}
		if _, err := ix.MarshalBinary(); err != nil {
			t.Fatalf("decoded index does not re-marshal: %v", err)
		}
	})
}
