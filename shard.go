package fairindex

import (
	"fmt"
	"hash/fnv"

	"fairindex/internal/calib"
	"fairindex/internal/ml"
	"fairindex/internal/partition"
)

// This file holds the root-package hooks for sharded serving (see
// internal/shard for the plan format and docs/SHARDING.md for the
// architecture): ExtractShard carves a contiguous region range out of
// a whole index into a standalone artifact, and Fingerprint gives
// every artifact a stable generation token the router uses to detect
// mixed-generation scatter-gather responses.

// Fingerprint returns a 64-bit FNV-1a hash of the Index's serialized
// form — a cheap content token identifying the artifact generation.
// Two indexes have equal fingerprints exactly when MarshalBinary
// produces identical bytes, so a re-split, re-trained or re-saved
// artifact changes fingerprint while a load/save round trip does not.
//
// The hash is computed once, on first call, and cached: it identifies
// the artifact as built or loaded. Records folded in later by
// AppendBatch change the serialized form but not the cached
// fingerprint — a serving generation is the loaded artifact, not its
// live statistics.
func (ix *Index) Fingerprint() (uint64, error) {
	if ix.maint == nil {
		return 0, fmt.Errorf("fairindex: fingerprint of an uninitialized Index")
	}
	ix.maint.fpOnce.Do(func() {
		blob, err := ix.MarshalBinary()
		if err != nil {
			ix.maint.fpErr = err
			return
		}
		h := fnv.New64a()
		h.Write(blob)
		ix.maint.fp = h.Sum64()
	})
	return ix.maint.fp, ix.maint.fpErr
}

// ExtractShard carves the contiguous global region range [lo, hi) out
// of the index into a standalone shard artifact: a full Index over the
// same grid and bounding box (so Locate resolves every coordinate with
// the whole index's exact arithmetic) whose local region ids are the
// global ids shifted down by lo. Grid cells owned by regions outside
// the range are assigned to one extra "foreign" sentinel region —
// always the last local id, hi−lo — carrying zero sufficient
// statistics; a shard whose range covers every cell has no sentinel,
// so NumRegions() > hi−lo reports its presence.
//
// What a shard answers exactly, in its local id space:
//
//   - Locate/LocateBatch: bit-identical to the whole index for points
//     in owned regions (local = global − lo); foreign points resolve
//     to the sentinel.
//   - RangeQuery, NearestRegionsSquared, GroupStats and
//     GroupStatsMetrics over owned regions: bit-identical per-region
//     values (the owned centroids, bounding rectangles and sufficient
//     statistics are carried over verbatim), which is what the
//     internal/shard merge kernels reassemble into whole-index
//     answers.
//
// Score and Report remain whole-index concerns: a shard keeps the
// global models and reports verbatim, but scoring a foreign-region
// point would use the sentinel's centroid, so distributed scoring is
// not supported (the router rejects it). The shard's statistics are
// taken from one atomic live snapshot, so a shard split is internally
// consistent even under concurrent appends.
func (ix *Index) ExtractShard(lo, hi int) (*Index, error) {
	if lo < 0 || hi > ix.numRegions || lo >= hi {
		return nil, fmt.Errorf("fairindex: shard range [%d,%d) invalid for %d regions", lo, hi, ix.numRegions)
	}
	owned := hi - lo
	// Every region owns at least one cell (partition invariant), so
	// foreign cells exist exactly when the range excludes some region.
	foreign := owned < ix.numRegions
	localN := owned
	if foreign {
		localN++
	}
	cellRegion := make([]int, len(ix.cellRegion))
	for i, r := range ix.cellRegion {
		if r >= lo && r < hi {
			cellRegion[i] = r - lo
		} else {
			cellRegion[i] = owned // sentinel
		}
	}
	part, err := partition.New(ix.grid, localN, cellRegion)
	if err != nil {
		return nil, fmt.Errorf("fairindex: shard [%d,%d): %w", lo, hi, err)
	}

	// Owned centroids are copied verbatim from the whole index (the
	// recomputation below is bit-identical for them — same cells, same
	// row-major fold — but verbatim bits make the invariant
	// unconditional); the recomputation supplies the sentinel's mean.
	centroids := part.Centroids()
	copy(centroids[:owned], ix.centroids[lo:hi])

	out := &Index{
		cfg:          ix.Config(),
		datasetName:  ix.datasetName,
		featureNames: append([]string(nil), ix.featureNames...),
		taskNames:    append([]string(nil), ix.taskNames...),
		grid:         ix.grid,
		box:          ix.box,
		mapper:       ix.mapper,
		part:         part,
		cellRegion:   part.CellRegions(),
		numRegions:   localN,
		centroids:    centroids,
		encoding:     ix.encoding,
		codecVersion: indexVersion,
		buildTime:    ix.buildTime,
		trainTime:    ix.trainTime,
	}
	out.buildAccel()

	// One atomic snapshot keeps all task slots mutually consistent.
	ls := ix.live()
	for i := range ix.tasks {
		it := &ix.tasks[i]
		nt := indexTask{task: it.task, model: it.model, report: it.report}
		if it.post != nil {
			nt.post = make([]ml.ScoreCalibrator, localN)
			copy(nt.post, it.post[lo:hi])
			if foreign {
				// The sentinel aliases an owned calibrator: the codec
				// serializes distinct calibrators once, so this adds a
				// reference, not a blob. It is never a correct scoring
				// path (see the Score caveat above).
				nt.post[owned] = it.post[lo]
			}
		}
		src := it.stats
		if ls != nil {
			src = ls.stats[i]
		}
		if src != nil {
			nt.stats = make([]calib.SuffStats, localN)
			copy(nt.stats, src[lo:hi])
			// The sentinel keeps zero statistics: foreign populations
			// belong to other shards, and zero adds nothing to any merge.
		}
		out.tasks = append(out.tasks, nt)
	}
	out.initMaint(0)
	return out, nil
}
