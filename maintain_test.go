package fairindex

import (
	"errors"
	"math"
	"sync"
	"testing"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// splitCity generates one city and splits it into a build set and an
// append set that share schema and geography.
func splitCity(t *testing.T, total, appendN int) (*Dataset, []Record) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = total
	all, err := dataset.Generate(spec, geo.MustGrid(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	build := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: all.Records[:total-appendN],
	}
	return build, all.Records[total-appendN:]
}

// foldExpected recomputes the post-append per-region statistics from
// first principles through the public serving surface: locate and
// score each appended record, then add it to the captured baseline.
// AppendBatch must match this bit for bit — the fold is additive and
// accumulates in the same record order calib.GroupBy uses.
func foldExpected(t *testing.T, idx *Index, baseline []calib.SuffStats, slot int, recs []Record) []calib.SuffStats {
	t.Helper()
	task := idx.tasks[slot].task
	st := append([]calib.SuffStats(nil), baseline...)
	for i := range recs {
		region, err := idx.Locate(recs[i].Lat, recs[i].Lon)
		if err != nil {
			t.Fatal(err)
		}
		score, err := idx.Score(recs[i], task)
		if err != nil {
			t.Fatal(err)
		}
		g := &st[region]
		g.Count++
		g.SumScore += score
		if recs[i].Labels[task] != 0 {
			g.SumLabel++
		}
	}
	return st
}

// TestAppendBatchExactness is the maintenance acceptance gate:
// AppendBatch-then-GroupStats must equal the from-scratch recompute
// over the grown population under the frozen models — exactly, not
// approximately.
func TestAppendBatchExactness(t *testing.T) {
	build, extra := splitCity(t, 500, 80)
	idx, err := Build(build, WithConfig(Config{Method: MethodFairKD, Height: 4, Seed: 11}))
	if err != nil {
		t.Fatal(err)
	}
	baselines := make([][]calib.SuffStats, len(idx.tasks))
	expected := make([][]calib.SuffStats, len(idx.tasks))
	for slot := range idx.tasks {
		baselines[slot] = append([]calib.SuffStats(nil), idx.statsFor(slot)...)
		expected[slot] = foldExpected(t, idx, baselines[slot], slot, extra)
	}

	// Fold in two batches to exercise snapshot chaining.
	if _, err := idx.AppendBatch(extra[:30]); err != nil {
		t.Fatal(err)
	}
	res, err := idx.AppendBatch(extra[30:])
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 50 || res.Total != 80 || idx.Appended() != 80 {
		t.Errorf("counts: appended=%d total=%d Appended()=%d", res.Appended, res.Total, idx.Appended())
	}

	for slot := range idx.tasks {
		live := idx.statsFor(slot)
		want := expected[slot]
		for r := range want {
			if live[r] != want[r] {
				t.Fatalf("task slot %d region %d: live %+v, recompute %+v", slot, r, live[r], want[r])
			}
		}
		// Live ENCE is the fold of exactly these statistics; Report
		// and Drift observe it.
		wantENCE := calib.ENCEFromStats(want)
		rep, err := idx.Report(idx.tasks[slot].task)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ENCE != wantENCE {
			t.Errorf("task slot %d: Report ENCE %v, want %v", slot, rep.ENCE, wantENCE)
		}
		d, err := idx.Drift(idx.tasks[slot].task)
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Abs(wantENCE - idx.tasks[slot].report.ENCE); d != want {
			t.Errorf("task slot %d: Drift %v, want %v", slot, d, want)
		}
	}

	// GroupStats over all regions reflects the grown population.
	regions := make([]int, idx.NumRegions())
	for i := range regions {
		regions[i] = i
	}
	ws, err := idx.GroupStats(idx.Tasks()[0], regions)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Count != len(build.Records)+len(extra) {
		t.Errorf("window population %d, want %d", ws.Count, len(build.Records)+len(extra))
	}
}

// TestAppendSurvivesSerialization pins that folded statistics ride
// the existing v2 stats section: save → load preserves the live
// per-region statistics and therefore the drift measurement, without
// a codec bump.
func TestAppendSurvivesSerialization(t *testing.T) {
	build, extra := splitCity(t, 460, 60)
	idx, err := Build(build, WithConfig(Config{Method: MethodFairQuadtree, Height: 3, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.AppendBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift == 0 {
		t.Fatal("test needs a drift-producing append; got exactly 0")
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Index
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for slot := range idx.tasks {
		live, reloaded := idx.statsFor(slot), back.statsFor(slot)
		for r := range live {
			if live[r] != reloaded[r] {
				t.Fatalf("slot %d region %d: reloaded stats %+v, want %+v", slot, r, reloaded[r], live[r])
			}
		}
	}
	// The stored report keeps the build-time ENCE baseline, so drift
	// is still measurable after the reload; the append counter is
	// runtime observability and resets.
	if back.MaxDrift() != idx.MaxDrift() {
		t.Errorf("reloaded MaxDrift %v, want %v", back.MaxDrift(), idx.MaxDrift())
	}
	if back.Appended() != 0 {
		t.Errorf("reloaded Appended %d, want 0", back.Appended())
	}
}

func TestAppendDriftThreshold(t *testing.T) {
	build, extra := splitCity(t, 460, 60)
	idx, err := Build(build, WithConfig(Config{Method: MethodFairKD, Height: 4, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	// Unarmed: monitoring only.
	res, err := idx.AppendBatch(extra[:30])
	if err != nil {
		t.Fatal(err)
	}
	if res.RebuildRecommended || idx.RebuildRecommended() {
		t.Fatal("rebuild recommended with no armed threshold")
	}
	if res.Drift == 0 {
		t.Fatal("test needs a drift-producing append; got exactly 0")
	}
	// Arm below the current drift: the very next fold (and the live
	// accessor immediately) flips the flag.
	if err := idx.SetDriftThreshold(res.Drift / 2); err != nil {
		t.Fatal(err)
	}
	if !idx.RebuildRecommended() {
		t.Error("threshold below live drift, flag not raised")
	}
	res, err = idx.AppendBatch(extra[30:])
	if err != nil {
		t.Fatal(err)
	}
	if !res.RebuildRecommended {
		t.Error("fold past the threshold did not recommend a rebuild")
	}
	// Disarm.
	if err := idx.SetDriftThreshold(0); err != nil {
		t.Fatal(err)
	}
	if idx.RebuildRecommended() {
		t.Error("disarmed index still recommends a rebuild")
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := idx.SetDriftThreshold(bad); !errors.Is(err, ErrConfig) {
			t.Errorf("SetDriftThreshold(%v) = %v, want ErrConfig", bad, err)
		}
	}
}

// TestAppendBatchAtomicity: a batch with any invalid record leaves
// the index untouched.
func TestAppendBatchAtomicity(t *testing.T) {
	build, extra := splitCity(t, 440, 40)
	idx, err := Build(build, WithConfig(Config{Method: MethodFairKD, Height: 3}))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]calib.SuffStats(nil), idx.statsFor(0)...)

	bad := func(mut func(r *Record)) []Record {
		recs := make([]Record, len(extra))
		for i, r := range extra {
			r.X = append([]float64(nil), r.X...)
			r.Labels = append([]int(nil), r.Labels...)
			recs[i] = r
		}
		mut(&recs[len(recs)/2])
		return recs
	}
	cases := map[string][]Record{
		"empty":          nil,
		"nan-feature":    bad(func(r *Record) { r.X[0] = math.NaN() }),
		"bad-label":      bad(func(r *Record) { r.Labels[0] = 3 }),
		"short-features": bad(func(r *Record) { r.X = r.X[:1] }),
		"short-labels":   bad(func(r *Record) { r.Labels = nil }),
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := idx.AppendBatch(recs); err == nil {
				t.Fatal("invalid batch accepted")
			}
			after := idx.statsFor(0)
			for r := range before {
				if after[r] != before[r] {
					t.Fatalf("region %d stats changed after rejected batch", r)
				}
			}
			if idx.Appended() != 0 {
				t.Fatalf("Appended() = %d after rejected batches", idx.Appended())
			}
		})
	}
}

// TestAppendV1Artifact: indexes restored from pre-v2 artifacts carry
// no per-region statistics and reject appends with the same sentinel
// GroupStats uses.
func TestAppendV1Artifact(t *testing.T) {
	idx := buildV1TestIndex(t)
	blob, err := marshalBinaryV1(idx)
	if err != nil {
		t.Fatal(err)
	}
	var back Index
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	_, appendErr := back.AppendBatch([]Record{{}})
	if !errors.Is(appendErr, ErrNoRegionStats) {
		t.Errorf("AppendBatch on v1 artifact = %v, want ErrNoRegionStats", appendErr)
	}
}

// TestConcurrentAppendAndQuery drives appends and the full query
// surface concurrently; run under -race it proves the copy-on-write
// snapshot protocol. Each query must observe an internally consistent
// snapshot: the window population is a multiple of nothing in
// particular, but it must never be torn between two folds' counts for
// the same snapshot read.
func TestConcurrentAppendAndQuery(t *testing.T) {
	build, extra := splitCity(t, 600, 200)
	idx, err := Build(build, WithConfig(Config{Method: MethodFairKD, Height: 4, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SetDriftThreshold(1e-9); err != nil {
		t.Fatal(err)
	}
	task := idx.Tasks()[0]
	regions := make([]int, idx.NumRegions())
	for i := range regions {
		regions[i] = i
	}
	base := len(build.Records)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	// Two appenders share the extra records in interleaved batches.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := a * 100; i < (a+1)*100; i += 10 {
				if _, err := idx.AppendBatch(extra[i : i+10]); err != nil {
					errc <- err
					return
				}
			}
		}(a)
	}
	// Readers hammer the live surface while folds land.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ws, err := idx.GroupStats(task, regions)
				if err != nil {
					errc <- err
					return
				}
				if ws.Count < base || ws.Count > base+len(extra) {
					errc <- errors.New("window population outside [base, base+appended]")
					return
				}
				if _, err := idx.Report(task); err != nil {
					errc <- err
					return
				}
				if _, err := idx.Score(extra[i%len(extra)], task); err != nil {
					errc <- err
					return
				}
				idx.RebuildRecommended()
				idx.MaxDrift()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if idx.Appended() != len(extra) {
		t.Errorf("Appended() = %d, want %d", idx.Appended(), len(extra))
	}
	// After the dust settles the fold must equal the serial recompute.
	ws, err := idx.GroupStats(task, regions)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Count != base+len(extra) {
		t.Errorf("final population %d, want %d", ws.Count, base+len(extra))
	}
}

// TestDriftExceeds pins the shared boundary predicate every layer of
// the drift control plane routes through: the crossing is inclusive,
// NaN never crosses, and non-positive thresholds are disarmed.
func TestDriftExceeds(t *testing.T) {
	cases := []struct {
		drift, threshold float64
		want             bool
	}{
		{0.02, 0.02, true},                     // exactly on the threshold: inclusive
		{0.021, 0.02, true},                    // above
		{math.Nextafter(0.02, 0), 0.02, false}, // one ulp under
		{0.5, 0, false},                        // zero threshold disarmed
		{0.5, -1, false},                       // negative threshold disarmed
		{math.NaN(), 0.02, false},              // undefined never crosses
		{0, 0.02, false},
		{math.Inf(1), 0.02, true},
	}
	for _, c := range cases {
		if got := DriftExceeds(c.drift, c.threshold); got != c.want {
			t.Errorf("DriftExceeds(%v, %v) = %v, want %v", c.drift, c.threshold, got, c.want)
		}
	}
}

// TestAppendDriftExactlyOnThreshold pins the boundary end to end: the
// same batch folded into a fresh index armed at exactly the drift it
// produces must recommend a rebuild (and one armed one ulp above must
// not) — recommendation, RebuildRecommended and the registry log all
// share DriftExceeds, so this nails all layers to the >= crossing.
func TestAppendDriftExactlyOnThreshold(t *testing.T) {
	build, extra := splitCity(t, 340, 40)
	measure, err := Build(build, WithHeight(3), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := measure.AppendBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	drift := res.Drift
	if !(drift > 0) {
		t.Fatalf("measured drift %v, need a positive drift to pin the boundary", drift)
	}

	exact, err := Build(build, WithHeight(3), WithSeed(5), WithDriftThreshold(drift))
	if err != nil {
		t.Fatal(err)
	}
	res, err = exact.AppendBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RebuildRecommended || !exact.RebuildRecommended() {
		t.Errorf("drift exactly on the threshold did not recommend a rebuild (drift %v)", drift)
	}

	above, err := Build(build, WithHeight(3), WithSeed(5),
		WithDriftThreshold(math.Nextafter(drift, math.Inf(1))))
	if err != nil {
		t.Fatal(err)
	}
	res, err = above.AppendBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	if res.RebuildRecommended || above.RebuildRecommended() {
		t.Errorf("drift one ulp under the threshold recommended a rebuild (drift %v)", drift)
	}
}
