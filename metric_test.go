package fairindex_test

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	fairindex "fairindex"
)

// bruteSuffStats recomputes per-region sufficient statistics from the
// raw records through the public serving surface — locate each record,
// score it through the task model and tally count / Σscore / Σlabel —
// the ground truth every stored statistic and metric must agree with.
func bruteSuffStats(t *testing.T, idx *fairindex.Index, ds *fairindex.Dataset, task int) []fairindex.SuffStats {
	t.Helper()
	stats := make([]fairindex.SuffStats, idx.NumRegions())
	for _, rec := range ds.Records {
		region, err := idx.Locate(rec.Lat, rec.Lon)
		if err != nil {
			t.Fatal(err)
		}
		score, err := idx.Score(rec, task)
		if err != nil {
			t.Fatal(err)
		}
		stats[region].Count++
		stats[region].SumScore += score
		if rec.Labels[task] != 0 {
			stats[region].SumLabel++
		}
	}
	return stats
}

// Reference metric implementations, written independently of the
// package (naive formulas over per-group e, o, n) so the property
// tests pin the built-ins against a second derivation rather than
// against themselves.
func refMeans(g fairindex.SuffStats) (e, o float64) {
	if g.Count == 0 {
		return 0, 0
	}
	return g.SumScore / float64(g.Count), g.SumLabel / float64(g.Count)
}

func refENCE(stats []fairindex.SuffStats) float64 {
	total := 0
	for _, g := range stats {
		total += g.Count
	}
	if total == 0 {
		return 0
	}
	var sum float64
	for _, g := range stats {
		e, o := refMeans(g)
		sum += float64(g.Count) / float64(total) * math.Abs(e-o)
	}
	return sum
}

func refCalRatio(stats []fairindex.SuffStats) float64 {
	var s, l float64
	for _, g := range stats {
		s += g.SumScore
		l += g.SumLabel
	}
	if l <= 0 {
		return math.NaN()
	}
	return s / l
}

func refMiscalAbs(stats []fairindex.SuffStats) float64 {
	var pooled fairindex.SuffStats
	for _, g := range stats {
		pooled.Count += g.Count
		pooled.SumScore += g.SumScore
		pooled.SumLabel += g.SumLabel
	}
	e, o := refMeans(pooled)
	return math.Abs(e - o)
}

// refSpread computes max−min of f over non-empty groups, 0 when fewer
// than two groups carry population.
func refSpread(stats []fairindex.SuffStats, f func(e, o float64) float64) float64 {
	var vals []float64
	for _, g := range stats {
		if g.Count > 0 {
			e, o := refMeans(g)
			vals = append(vals, f(e, o))
		}
	}
	if len(vals) < 2 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)-1] - vals[0]
}

func refAtkinson(stats []fairindex.SuffStats, eps float64) float64 {
	total := 0
	for _, g := range stats {
		total += g.Count
	}
	if total == 0 {
		return 0
	}
	var mean float64
	for _, g := range stats {
		e, o := refMeans(g)
		mean += float64(g.Count) / float64(total) * math.Abs(e-o)
	}
	if mean <= 0 || eps == 0 {
		return 0
	}
	// Equally-distributed-equivalent via the generalized mean of order
	// 1−ε (log form at ε = 1).
	var ede float64
	if eps == 1 {
		var logSum float64
		for _, g := range stats {
			if g.Count == 0 {
				continue
			}
			e, o := refMeans(g)
			x := math.Abs(e - o)
			if x == 0 {
				return 1
			}
			logSum += float64(g.Count) / float64(total) * math.Log(x)
		}
		ede = math.Exp(logSum)
	} else {
		p := 1 - eps
		var powSum float64
		for _, g := range stats {
			if g.Count == 0 {
				continue
			}
			e, o := refMeans(g)
			x := math.Abs(e - o)
			if x == 0 {
				if eps > 1 {
					return 1
				}
				continue
			}
			powSum += float64(g.Count) / float64(total) * math.Pow(x, p)
		}
		ede = math.Pow(powSum, 1/p)
	}
	v := 1 - ede/mean
	return math.Min(1, math.Max(0, v))
}

// refMetrics maps every built-in metric name onto its reference
// implementation.
func refMetrics() map[string]func([]fairindex.SuffStats) float64 {
	return map[string]func([]fairindex.SuffStats) float64{
		fairindex.MetricENCE:      refENCE,
		fairindex.MetricCalRatio:  refCalRatio,
		fairindex.MetricMiscalAbs: refMiscalAbs,
		fairindex.MetricStatParity: func(s []fairindex.SuffStats) float64 {
			return refSpread(s, func(e, o float64) float64 { return e })
		},
		fairindex.MetricAccuracyParity: func(s []fairindex.SuffStats) float64 {
			return refSpread(s, func(e, o float64) float64 { return e*o + (1-e)*(1-o) })
		},
		fairindex.MetricAtkinson: func(s []fairindex.SuffStats) float64 {
			return refAtkinson(s, 0.5)
		},
	}
}

// approxEq treats NaN as equal to NaN and otherwise demands agreement
// to a tight relative tolerance (the reference implementations may
// accumulate in a different order).
func approxEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestMetricsMatchBruteForce pins every built-in metric against its
// reference implementation evaluated over brute-force per-region
// statistics recomputed from the raw records, across the three
// partition shapes (fair KD, Voronoi zipcode, quadtree) and over both
// the full window and random sub-windows.
func TestMetricsMatchBruteForce(t *testing.T) {
	for name, opts := range queryConfigs() {
		t.Run(name, func(t *testing.T) {
			idx, ds := buildSmallIndex(t, opts...)
			brute := bruteSuffStats(t, idx, ds, 0)
			refs := refMetrics()

			check := func(window []int) {
				t.Helper()
				ws, err := idx.GroupStatsMetrics(0, window)
				if err != nil {
					t.Fatal(err)
				}
				sub := make([]fairindex.SuffStats, 0, len(ws.Regions))
				for _, rs := range ws.Regions {
					sub = append(sub, brute[rs.Region])
				}
				for metric, ref := range refs {
					got, ok := ws.Metrics[metric]
					if !ok {
						t.Fatalf("window %v: metric %q missing from Metrics map", window, metric)
					}
					if want := ref(sub); !approxEq(got, want) {
						t.Errorf("window %v: %s = %v, brute force %v", window, metric, got, want)
					}
				}
			}

			all := make([]int, idx.NumRegions())
			for i := range all {
				all[i] = i
			}
			check(all)

			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 40; i++ {
				perm := rng.Perm(idx.NumRegions())
				window := perm[:rng.Intn(len(perm)+1)]
				check(window)
			}
		})
	}
}

// TestGroupStatsMetricsSurface pins the GroupStatsMetrics API
// contract: legacy fields bit-identical to GroupStats, the "ence"
// metric bit-identical to the legacy ENCE field, empty selection =
// every registered metric, explicit selection respected, unknown
// names rejected with ErrQuery, and the legacy path leaving Metrics
// nil.
func TestGroupStatsMetricsSurface(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(5))
	window := []int{0, 1, 2, 3}

	legacy, err := idx.GroupStats(0, window)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Metrics != nil {
		t.Errorf("legacy GroupStats populated Metrics: %v", legacy.Metrics)
	}

	ws, err := idx.GroupStatsMetrics(0, window)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ws.Metrics), len(fairindex.Metrics()); got != want {
		t.Errorf("empty selection computed %d metrics, want all %d", got, want)
	}
	if ws.ENCE != legacy.ENCE || ws.Miscal != legacy.Miscal || ws.Count != legacy.Count ||
		ws.MeanConf != legacy.MeanConf || ws.PosRate != legacy.PosRate {
		t.Errorf("legacy fields diverge: %+v vs %+v", ws, legacy)
	}
	if !(math.IsNaN(ws.CalRatio) && math.IsNaN(legacy.CalRatio)) && ws.CalRatio != legacy.CalRatio {
		t.Errorf("CalRatio %v vs legacy %v", ws.CalRatio, legacy.CalRatio)
	}
	if ws.Metrics[fairindex.MetricENCE] != ws.ENCE {
		t.Errorf("metrics[ence] %v != legacy ENCE field %v", ws.Metrics[fairindex.MetricENCE], ws.ENCE)
	}

	only, err := idx.GroupStatsMetrics(0, window, fairindex.MetricStatParity)
	if err != nil {
		t.Fatal(err)
	}
	if len(only.Metrics) != 1 {
		t.Errorf("explicit selection computed %v", only.Metrics)
	}
	if _, ok := only.Metrics[fairindex.MetricStatParity]; !ok {
		t.Errorf("stat_parity missing: %v", only.Metrics)
	}

	if _, err := idx.GroupStatsMetrics(0, window, "no_such_metric"); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("unknown metric error = %v, want ErrQuery", err)
	}
}

// TestMetricsDeterministicAndTotal is the registry-wide vet: every
// registered metric must return a value (never panic) on adversarial
// windows — nil, all-empty groups, no positives, single group,
// extreme magnitudes — and must be bit-for-bit deterministic across
// repeated calls on the same input.
func TestMetricsDeterministicAndTotal(t *testing.T) {
	windows := map[string][]fairindex.SuffStats{
		"nil":          nil,
		"empty-groups": make([]fairindex.SuffStats, 5),
		"single-group": {{Count: 10, SumScore: 4.2, SumLabel: 6}},
		"no-positives": {
			{Count: 7, SumScore: 2.5}, {Count: 3, SumScore: 0.1},
		},
		"perfect": {
			{Count: 8, SumScore: 4, SumLabel: 4}, {Count: 2, SumScore: 1, SumLabel: 1},
		},
		"mixed": {
			{Count: 100, SumScore: 37.5, SumLabel: 40},
			{},
			{Count: 1, SumScore: 0.99, SumLabel: 0},
			{Count: 12, SumScore: 3, SumLabel: 9},
		},
		"extreme": {
			{Count: 1 << 30, SumScore: 1e12, SumLabel: 1e9},
			{Count: 1, SumScore: 1e-300, SumLabel: 1},
		},
	}
	for _, name := range fairindex.Metrics() {
		m, ok := fairindex.MetricByName(name)
		if !ok {
			t.Fatalf("Metrics() lists %q but MetricByName misses it", name)
		}
		if m.Name() != name {
			t.Errorf("metric registered as %q reports Name() %q", name, m.Name())
		}
		for wname, window := range windows {
			// Totality: a panic here fails the test with a stack.
			first := m.Compute(window)
			again := m.Compute(window)
			if math.Float64bits(first) != math.Float64bits(again) {
				t.Errorf("%s over %s not deterministic: %v then %v", name, wname, first, again)
			}
		}
	}
}

// TestDriftThresholdsTriggerPerMetric arms a per-metric threshold via
// the build option and checks that appends report per-metric drifts
// and trip the rebuild recommendation through a non-ENCE metric.
func TestDriftThresholdsTriggerPerMetric(t *testing.T) {
	ds := smallLA(t)
	build := &fairindex.Dataset{
		Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames,
		Records: ds.Records[:len(ds.Records)-60],
	}
	extra := ds.Records[len(ds.Records)-60:]

	idx, err := fairindex.Build(build,
		fairindex.WithHeight(4), fairindex.WithSeed(7),
		fairindex.WithDriftThresholds(map[string]float64{
			fairindex.MetricStatParity: 1e-12,
		}))
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.DriftThresholds(); got[fairindex.MetricStatParity] != 1e-12 {
		t.Fatalf("armed thresholds = %v", got)
	}

	// Skew the appended labels so the per-region score/label balance —
	// and with it the parity spread — moves.
	skewed := make([]fairindex.Record, len(extra))
	for i, rec := range extra {
		skewed[i] = rec
		skewed[i].Labels = append([]int(nil), rec.Labels...)
		skewed[i].Labels[0] = i % 2
	}
	res, err := idx.AppendBatch(skewed)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := res.Drifts[fairindex.MetricStatParity]
	if !ok {
		t.Fatalf("append result carries no stat_parity drift: %v", res.Drifts)
	}
	if math.IsNaN(d) || d <= 0 {
		t.Fatalf("stat_parity drift = %v, want positive", d)
	}
	if !res.RebuildRecommended {
		t.Error("drift above armed per-metric threshold did not recommend a rebuild")
	}
	if !idx.RebuildRecommended() {
		t.Error("index does not advertise the recommendation")
	}

	md, err := idx.MetricDrift(idx.Tasks()[0], fairindex.MetricStatParity)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(md) || md <= 0 {
		t.Errorf("MetricDrift = %v, want positive", md)
	}
	if _, err := idx.MetricDrift(idx.Tasks()[0], "no_such_metric"); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("unknown metric drift error = %v, want ErrQuery", err)
	}
}

// TestWithObjectiveMetricBuilds exercises the pluggable partitioner
// objective: a registered metric can drive the fair split scoring for
// both single- and multi-objective fair KD methods, unknown names and
// unsupported methods are configuration errors, and the resulting
// partitioning still answers queries.
func TestWithObjectiveMetricBuilds(t *testing.T) {
	ds := smallLA(t)

	idx, err := fairindex.Build(ds,
		fairindex.WithHeight(4), fairindex.WithSeed(7),
		fairindex.WithObjectiveMetric(fairindex.MetricAtkinson))
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumRegions() < 2 {
		t.Fatalf("metric-objective build produced %d regions", idx.NumRegions())
	}
	if _, err := idx.GroupStatsMetrics(0, []int{0, 1}); err != nil {
		t.Fatalf("metric-objective index cannot answer queries: %v", err)
	}

	multi, err := fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodMultiObjectiveFairKD),
		fairindex.WithAlphas(0.5, 0.5),
		fairindex.WithHeight(4), fairindex.WithSeed(7),
		fairindex.WithObjectiveMetric(fairindex.MetricMiscalAbs))
	if err != nil {
		t.Fatal(err)
	}
	if multi.NumRegions() < 2 {
		t.Fatalf("multi-objective metric build produced %d regions", multi.NumRegions())
	}

	if _, err := fairindex.Build(ds, fairindex.WithHeight(4),
		fairindex.WithObjectiveMetric("no_such_metric")); !errors.Is(err, fairindex.ErrConfig) {
		t.Errorf("unknown objective metric error = %v, want ErrConfig", err)
	}
	if _, err := fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodZipCode),
		fairindex.WithObjectiveMetric(fairindex.MetricENCE)); !errors.Is(err, fairindex.ErrConfig) {
		t.Errorf("objective metric on zipcode error = %v, want ErrConfig", err)
	}
}

// TestRegisterMetricCustom registers a custom metric and checks it is
// immediately selectable through window aggregation.
func TestRegisterMetricCustom(t *testing.T) {
	const name = "test_worst_region"
	if _, ok := fairindex.MetricByName(name); !ok {
		fairindex.RegisterMetric(fairindex.MetricFunc(name,
			func(stats []fairindex.SuffStats) float64 {
				worst := 0.0
				for _, g := range stats {
					if g.Count > 0 {
						worst = math.Max(worst, g.MiscalAbs())
					}
				}
				return worst
			}))
	}
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(4))
	all := make([]int, idx.NumRegions())
	for i := range all {
		all[i] = i
	}
	ws, err := idx.GroupStatsMetrics(0, all, name)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ws.Metrics[name]
	if !ok {
		t.Fatalf("custom metric missing: %v", ws.Metrics)
	}
	// The worst per-region miscalibration bounds the weighted mean.
	if v < ws.ENCE {
		t.Errorf("worst-region miscal %v < ENCE %v", v, ws.ENCE)
	}
}
