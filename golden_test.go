package fairindex

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// Golden-artifact compatibility tests: the two .fidx fixtures under
// testdata/ are canonical v1 and v2 encodings of the same build (see
// buildGoldenIndex / TestRegenTestdata). They pin, byte for byte,
// that today's decoder still reads files written by older releases —
// a codec change that silently breaks an old artifact store fails
// here before it ships. The expected query outputs below were
// recorded from the fixture at commit time; exact equality (down to
// the float bits) is intentional.

// goldenProbes are fixed in-box coordinates with their pinned
// neighborhood assignments.
var goldenProbes = []struct {
	lat, lon float64
	region   int
}{
	{34.00, -118.25, 4},
	{33.65, -118.65, 0},
	{34.35, -117.85, 7},
	{33.90, -118.00, 3},
	{34.20, -118.40, 5},
}

// goldenWindow is the fixed range-query window (the city's southwest
// quadrant) with pinned overlap results.
var goldenWindow = BBox{MinLat: 33.60, MinLon: -118.70, MaxLat: 34.00, MaxLon: -118.25}

// goldenOverlaps pins RangeQuery(goldenWindow) exactly.
var goldenOverlaps = []RegionOverlap{
	{Region: 0, Cells: 15, Fraction: 0.8333333333333334},
	{Region: 1, Cells: 5, Fraction: 0.8333333333333334},
	{Region: 4, Cells: 5, Fraction: 0.4166666666666667},
}

// Pinned GroupStats aggregate over the golden window (task 0).
// ENCE/miscal are pinned by exact bit pattern: the sufficient
// statistics are stored floats, so any drift means the codec or the
// aggregation changed.
const (
	goldenNumRegions = 8
	goldenCount      = 118
	goldenENCEBits   = 0x3f9cc66612d7a839
)

// goldenWindowRegions projects pinned overlaps onto their region ids.
func goldenWindowRegions(ov []RegionOverlap) []int {
	out := make([]int, len(ov))
	for i := range ov {
		out[i] = ov[i].Region
	}
	return out
}

// loadGolden reads one committed fixture.
func loadGolden(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing golden fixture (run TestRegenTestdata with FAIRINDEX_REGEN=1): %v", err)
	}
	return blob
}

// checkGoldenQueries runs the pinned spot checks shared by the v1 and
// v2 fixtures: both decode the same underlying build, so every purely
// spatial answer must agree exactly.
func checkGoldenQueries(t *testing.T, ix *Index) {
	t.Helper()
	if ix.NumRegions() != goldenNumRegions {
		t.Fatalf("NumRegions = %d, want %d", ix.NumRegions(), goldenNumRegions)
	}
	for _, p := range goldenProbes {
		region, err := ix.Locate(p.lat, p.lon)
		if err != nil {
			t.Fatalf("Locate(%v, %v): %v", p.lat, p.lon, err)
		}
		if region != p.region {
			t.Errorf("Locate(%v, %v) = %d, want pinned %d", p.lat, p.lon, region, p.region)
		}
	}
	ov, err := ix.RangeQuery(goldenWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov) != len(goldenOverlaps) {
		t.Fatalf("RangeQuery returned %d overlaps, want %d (%v)", len(ov), len(goldenOverlaps), ov)
	}
	for i, want := range goldenOverlaps {
		if ov[i] != want {
			t.Errorf("overlap %d = %+v, want pinned %+v", i, ov[i], want)
		}
	}
}

// TestGoldenV2Artifact pins the current-format fixture: it must load,
// answer the pinned queries, carry region stats with the exact pinned
// aggregate, and re-marshal to the identical bytes.
func TestGoldenV2Artifact(t *testing.T) {
	blob := loadGolden(t, "golden_v2.fidx")
	var ix Index
	if err := ix.UnmarshalBinary(blob); err != nil {
		t.Fatalf("golden v2 artifact no longer loads: %v", err)
	}
	if ix.CodecVersion() != 2 {
		t.Errorf("CodecVersion = %d, want 2", ix.CodecVersion())
	}
	checkGoldenQueries(t, &ix)

	ws, err := ix.GroupStats(0, goldenWindowRegions(goldenOverlaps))
	if err != nil {
		t.Fatalf("GroupStats on golden v2: %v", err)
	}
	if ws.Count != goldenCount {
		t.Errorf("window population = %d, want pinned %d", ws.Count, goldenCount)
	}
	if bits := math.Float64bits(ws.ENCE); bits != goldenENCEBits {
		t.Errorf("window ENCE bits = %#x (%v), want pinned %#x", bits, ws.ENCE, goldenENCEBits)
	}

	// Bit-identical round trip: decode → encode reproduces the file.
	out, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, blob) {
		t.Errorf("golden v2 re-marshal diverges: %d bytes vs %d on disk", len(out), len(blob))
	}
}

// TestGoldenV1Artifact pins backward compatibility with the pre-query
// codec: the v1 fixture must keep loading, answer the same pinned
// spatial queries (acceleration structures are recomputed), report
// ErrNoRegionStats for GroupStats, and re-marshal through the v1
// writer to the identical bytes.
func TestGoldenV1Artifact(t *testing.T) {
	blob := loadGolden(t, "golden_v1.fidx")
	var ix Index
	if err := ix.UnmarshalBinary(blob); err != nil {
		t.Fatalf("golden v1 artifact no longer loads: %v", err)
	}
	if ix.CodecVersion() != 1 {
		t.Errorf("CodecVersion = %d, want 1", ix.CodecVersion())
	}
	checkGoldenQueries(t, &ix)

	if _, err := ix.GroupStats(0, goldenWindowRegions(goldenOverlaps)); !errors.Is(err, ErrNoRegionStats) {
		t.Errorf("v1 GroupStats error = %v, want ErrNoRegionStats", err)
	}

	out, err := marshalBinaryV1(&ix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, blob) {
		t.Errorf("golden v1 re-marshal diverges: %d bytes vs %d on disk", len(out), len(blob))
	}
}

// TestGoldenCrossVersionParity: the two fixtures decode to indexes
// that agree on every cell of the grid — same build, two codecs.
func TestGoldenCrossVersionParity(t *testing.T) {
	var v1, v2 Index
	if err := v1.UnmarshalBinary(loadGolden(t, "golden_v1.fidx")); err != nil {
		t.Fatal(err)
	}
	if err := v2.UnmarshalBinary(loadGolden(t, "golden_v2.fidx")); err != nil {
		t.Fatal(err)
	}
	grid := v2.Grid()
	for i := 0; i < grid.NumCells(); i++ {
		c := grid.CellAt(i)
		r1, err1 := v1.LocateCell(c)
		r2, err2 := v2.LocateCell(c)
		if err1 != nil || err2 != nil || r1 != r2 {
			t.Fatalf("cell %v: v1 %d/%v vs v2 %d/%v", c, r1, err1, r2, err2)
		}
	}
}
