package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigure(t *testing.T) {
	opt, heights, fig9Heights, models, err := configure(64, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Grid.U != 64 || opt.Seed != 7 {
		t.Errorf("opt = %+v", opt)
	}
	if len(heights) != 7 || len(fig9Heights) != 10 || len(models) != 3 {
		t.Errorf("full sweep sizes: %d heights, %d fig9, %d models", len(heights), len(fig9Heights), len(models))
	}
	if _, _, _, _, err := configure(0, 1, false); err == nil {
		t.Error("expected error for zero grid")
	}
}

func TestConfigureQuick(t *testing.T) {
	opt, heights, _, models, err := configure(64, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Grid.U != 32 {
		t.Errorf("quick grid = %v", opt.Grid)
	}
	if len(opt.Cities) != 2 || opt.Cities[0].NumRecords != 400 {
		t.Errorf("quick cities = %+v", opt.Cities)
	}
	if len(heights) != 3 || len(models) != 1 {
		t.Errorf("quick sweep: %d heights, %d models", len(heights), len(models))
	}
}

func TestRunSingleExperiment(t *testing.T) {
	opt, heights, fig9Heights, models, err := configure(32, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "fig6", opt, heights, fig9Heights, models); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6") {
		t.Errorf("output missing Figure 6 header:\n%s", out[:min(200, len(out))])
	}
	if strings.Contains(out, "Figure 7") {
		t.Error("fig6 selection also ran fig7")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	opt, heights, fig9Heights, models, err := configure(32, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "nope", opt, heights, fig9Heights, models); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunTiming(t *testing.T) {
	opt, heights, fig9Heights, models, err := configure(32, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "timing", opt, heights, fig9Heights, models); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "overhead") {
		t.Error("timing output missing overhead line")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
