// Command fairbench regenerates every table and figure of the
// paper's evaluation section (§5) on the synthetic EdGap-like
// datasets and prints the series as aligned text tables.
//
// Usage:
//
//	fairbench [flags]
//
//	-experiment string   which experiment to run:
//	                     all | fig6 | fig7 | fig8 | fig9 | fig10 | timing
//	                     (default "all")
//	-grid int            base grid side length U = V (default 64)
//	-seed int            split/layout seed (default 11)
//	-quick               shrink datasets and sweeps for a fast pass
//	-out string          also write the report to this file
//
// Runtime for the full suite at the default sizes is a few minutes;
// -quick finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"fairindex/internal/dataset"
	"fairindex/internal/experiments"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairbench: ")

	experiment := flag.String("experiment", "all", "experiment to run: all|fig6|fig7|fig8|fig9|fig10|timing")
	gridSide := flag.Int("grid", 64, "base grid side length (U = V)")
	seed := flag.Int64("seed", 11, "split and layout seed")
	quick := flag.Bool("quick", false, "shrink datasets and sweeps for a fast pass")
	outPath := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	opt, heights, fig9Heights, models, err := configure(*gridSide, *seed, *quick)
	if err != nil {
		log.Fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("create %s: %v", *outPath, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("close %s: %v", *outPath, err)
			}
		}()
		out = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	if err := run(out, *experiment, opt, heights, fig9Heights, models); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// configure assembles the experiment options for the flag set.
func configure(gridSide int, seed int64, quick bool) (experiments.Options, []int, []int, []ml.ModelKind, error) {
	grid, err := geo.NewGrid(gridSide, gridSide)
	if err != nil {
		return experiments.Options{}, nil, nil, nil, err
	}
	opt := experiments.Options{Grid: grid, Seed: seed}
	heights := experiments.PaperHeights
	fig9Heights := experiments.Fig9Heights
	models := ml.AllModelKinds
	if quick {
		la := dataset.LA()
		la.NumRecords = 400
		hou := dataset.Houston()
		hou.NumRecords = 350
		opt.Cities = []dataset.CitySpec{la, hou}
		opt.Grid = geo.MustGrid(32, 32)
		heights = []int{4, 6, 8}
		fig9Heights = []int{2, 4, 6}
		models = []ml.ModelKind{ml.ModelLogReg}
	}
	return opt, heights, fig9Heights, models, nil
}

// run dispatches and renders the selected experiments.
func run(out io.Writer, experiment string, opt experiments.Options, heights, fig9Heights []int, models []ml.ModelKind) error {
	selected := func(name string) bool { return experiment == "all" || experiment == name }
	any := false

	if selected("fig6") {
		any = true
		results, err := experiments.Fig6(opt)
		if err != nil {
			return err
		}
		for _, c := range results {
			fmt.Fprintln(out, c.Render())
		}
	}
	if selected("fig7") {
		any = true
		cells, err := experiments.Fig7(opt, heights, models)
		if err != nil {
			return err
		}
		for _, c := range cells {
			fmt.Fprintln(out, c.Render())
		}
	}
	if selected("fig8") {
		any = true
		cities, err := experiments.Fig8(opt, experiments.CoarseHeights)
		if err != nil {
			return err
		}
		for _, c := range cities {
			fmt.Fprintln(out, c.Render())
		}
	}
	if selected("fig9") {
		any = true
		cellsF9, err := experiments.Fig9(opt, fig9Heights)
		if err != nil {
			return err
		}
		for _, c := range cellsF9 {
			fmt.Fprintln(out, c.Render())
		}
	}
	if selected("fig10") {
		any = true
		cellsF10, err := experiments.Fig10(opt, experiments.CoarseHeights)
		if err != nil {
			return err
		}
		for _, c := range cellsF10 {
			fmt.Fprintln(out, c.Render())
		}
	}
	if selected("timing") {
		any = true
		res, err := experiments.Timing(opt, 10)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if !any {
		return fmt.Errorf("unknown experiment %q (want %s)", experiment,
			strings.Join([]string{"all", "fig6", "fig7", "fig8", "fig9", "fig10", "timing"}, "|"))
	}
	return nil
}
