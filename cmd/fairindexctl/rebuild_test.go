package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// writeRebuildFixture lays out the one-shot rebuild workload: a
// serving artifact trained on the first 300 of 340 LA records, a
// fresh-feed CSV holding all 340, and a label-flipped CSV whose
// candidate regresses the calibration metrics (the same deterministic
// split internal/rebuild pins its gate verdicts on).
func writeRebuildFixture(t *testing.T, dir string) (idxPath, freshCSV, badCSV string, all *dataset.Dataset) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 340
	all, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	build := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: all.Records[:300],
	}
	idx, err := fairindex.Build(build, fairindex.WithHeight(3), fairindex.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	idxPath = filepath.Join(dir, "city.fidx")
	if err := os.WriteFile(idxPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	writeCSV := func(name string, ds *dataset.Dataset) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := dataset.WriteCSV(ds, f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	freshCSV = writeCSV("fresh.csv", all)

	flipped := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: make([]dataset.Record, len(all.Records)),
	}
	copy(flipped.Records, all.Records)
	for i := range flipped.Records {
		labels := make([]int, len(flipped.Records[i].Labels))
		for j, l := range flipped.Records[i].Labels {
			labels[j] = 1 - l
		}
		flipped.Records[i].Labels = labels
	}
	badCSV = writeCSV("flipped.csv", flipped)
	return idxPath, freshCSV, badCSV, all
}

// TestRebuildCmdPromoted: a coherent fresh feed passes the default
// gate, exits 0 and atomically replaces the artifact.
func TestRebuildCmdPromoted(t *testing.T) {
	idxPath, freshCSV, _, _ := writeRebuildFixture(t, t.TempDir())
	before, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := runRebuildCmd([]string{"-source", freshCSV, idxPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("promoted run: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "promoted:") {
		t.Errorf("output missing promotion line:\n%s", out.String())
	}
	after, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(after, before) {
		t.Error("artifact bytes unchanged after promotion")
	}
	if _, err := fairindex.LoadIndex(idxPath); err != nil {
		t.Fatalf("promoted artifact does not load: %v", err)
	}
}

// TestRebuildCmdDryRun: -dry-run reports the verdict and never
// touches the artifact.
func TestRebuildCmdDryRun(t *testing.T) {
	idxPath, freshCSV, _, _ := writeRebuildFixture(t, t.TempDir())
	before, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := runRebuildCmd([]string{"-source", freshCSV, "-dry-run", idxPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("dry run: code %d err %v", code, err)
	}
	if !strings.Contains(out.String(), "dry run:") {
		t.Errorf("output missing dry-run line:\n%s", out.String())
	}
	after, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, before) {
		t.Error("dry run modified the artifact")
	}
}

// TestRebuildCmdRefused: the label-flipped feed regresses ENCE beyond
// a tight budget — exit code 3, gate table names the exceeded cell,
// artifact byte-identical.
func TestRebuildCmdRefused(t *testing.T) {
	idxPath, _, badCSV, _ := writeRebuildFixture(t, t.TempDir())
	before, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := runRebuildCmd([]string{"-source", badCSV, "-budget", "ence=0.001", idxPath}, &out)
	if err != nil || code != exitRefused {
		t.Fatalf("refused run: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "EXCEEDED") || !strings.Contains(out.String(), "refused: candidate regresses ence") {
		t.Errorf("refusal output:\n%s", out.String())
	}
	after, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, before) {
		t.Error("refused rebuild modified the artifact")
	}
}

// TestRebuildCmdBuildFailed: a missing or schema-incompatible source
// is the build-failure class with its own exit code.
func TestRebuildCmdBuildFailed(t *testing.T) {
	dir := t.TempDir()
	idxPath, _, _, _ := writeRebuildFixture(t, dir)

	code, err := runRebuildCmd([]string{"-source", filepath.Join(dir, "nope.csv"), idxPath}, io.Discard)
	if err == nil || code != exitBuildFailed {
		t.Errorf("missing source: code %d err %v, want %d", code, err, exitBuildFailed)
	}

	// A feed whose columns drifted fails the schema pre-flight: rename
	// the first feature column (header is id,lat,lon,<features>,...).
	renamed := filepath.Join(dir, "renamed.csv")
	blob, err := os.ReadFile(filepath.Join(dir, "fresh.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(blob), "\n", 2)
	cols := strings.Split(lines[0], ",")
	cols[3] = cols[3] + "_renamed"
	lines[0] = strings.Join(cols, ",")
	if err := os.WriteFile(renamed, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _ = runRebuildCmd([]string{"-source", renamed, idxPath}, io.Discard)
	if code != exitBuildFailed {
		t.Errorf("renamed columns: code %d, want %d", code, exitBuildFailed)
	}
}

// TestRebuildCmdArgValidation: flag/semantic errors stay on the
// generic error exit code, distinct from refusals and build failures.
func TestRebuildCmdArgValidation(t *testing.T) {
	dir := t.TempDir()
	idxPath, freshCSV, _, _ := writeRebuildFixture(t, dir)
	if code, err := runRebuildCmd([]string{idxPath}, io.Discard); err == nil || code != 1 {
		t.Errorf("missing -source: code %d err %v", code, err)
	}
	if code, err := runRebuildCmd([]string{"-source", freshCSV}, io.Discard); err == nil || code != 1 {
		t.Errorf("missing index: code %d err %v", code, err)
	}
	if code, err := runRebuildCmd([]string{"-source", freshCSV, "-index", idxPath, idxPath}, io.Discard); err == nil || code != 1 {
		t.Errorf("index twice: code %d err %v", code, err)
	}
	if code, err := runRebuildCmd([]string{"-source", freshCSV, "-budget", "bogus=0.1", idxPath}, io.Discard); err == nil || code != 1 {
		t.Errorf("unknown budget metric: code %d err %v", code, err)
	}
}

// TestRebuildSubprocessE2E is the continuous loop over a real
// process: `fairindexctl serve -rebuild-source` armed with a tiny
// drift threshold, drifted over HTTP append until the in-process
// controller rebuilds, gates and atomically promotes the artifact on
// disk — observable both in /v1/indexes and in the file's bytes.
func TestRebuildSubprocessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	dir := t.TempDir()
	idxPath, freshCSV, _, all := writeRebuildFixture(t, dir)
	before, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}

	addr := spawn(t, "serve", "-http", "127.0.0.1:0",
		"-drift-threshold", "1e-12",
		"-rebuild-source", freshCSV,
		"-rebuild-budget", "ence=0.01", "-rebuild-budget", "cal_ratio=0.05",
		idxPath)
	base := "http://" + addr

	// Drift the serving entry past its threshold over the wire.
	type rec struct {
		ID       string    `json:"id"`
		Lat      float64   `json:"lat"`
		Lon      float64   `json:"lon"`
		Features []float64 `json:"features"`
		Labels   []int     `json:"labels"`
	}
	rows := make([]rec, 20)
	for i, r := range all.Records[300:320] {
		rows[i] = rec{ID: r.ID, Lat: r.Lat, Lon: r.Lon, Features: r.X, Labels: r.Labels}
	}
	body, err := json.Marshal(map[string]any{"records": rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", resp.StatusCode)
	}

	// The drift hook kicks the controller; poll the catalog until the
	// promotion lands, then verify the artifact bytes moved and the
	// server still answers.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/indexes")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Indexes []struct {
				Name    string `json:"name"`
				Rebuild *struct {
					State string `json:"state"`
					Error string `json:"error"`
				} `json:"rebuild"`
			} `json:"indexes"`
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(listing.Indexes) == 1 && listing.Indexes[0].Rebuild != nil &&
			listing.Indexes[0].Rebuild.State == "promoted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion observed; last listing %+v", listing.Indexes)
		}
		time.Sleep(25 * time.Millisecond)
	}

	after, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(after, before) {
		t.Error("artifact bytes unchanged after subprocess promotion")
	}
	if _, err := fairindex.LoadIndex(idxPath); err != nil {
		t.Fatalf("promoted artifact does not load: %v", err)
	}
	r := all.Records[0]
	locate, err := http.Get(fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", base, r.Lat, r.Lon))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, locate.Body)
	locate.Body.Close()
	if locate.StatusCode != http.StatusOK {
		t.Errorf("locate after promotion: status %d", locate.StatusCode)
	}
}
