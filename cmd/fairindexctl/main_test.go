package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/pipeline"
)

func TestBuildConfig(t *testing.T) {
	tests := []struct {
		method string
		want   pipeline.Method
	}{
		{"fair", pipeline.MethodFairKD},
		{"median", pipeline.MethodMedianKD},
		{"iterative", pipeline.MethodIterativeFairKD},
		{"multi", pipeline.MethodMultiObjectiveFairKD},
		{"gridrw", pipeline.MethodGridReweight},
		{"zipcode", pipeline.MethodZipCode},
		{"quadtree", pipeline.MethodFairQuadtree},
	}
	for _, tt := range tests {
		cfg, err := buildConfig(tt.method, "logreg", 6, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", tt.method, err)
		}
		if cfg.Method != tt.want {
			t.Errorf("%s -> %v, want %v", tt.method, cfg.Method, tt.want)
		}
	}
	if _, err := buildConfig("nope", "logreg", 6, 0, 1); err == nil {
		t.Error("expected unknown method error")
	}
	if _, err := buildConfig("fair", "nope", 6, 0, 1); err == nil {
		t.Error("expected unknown model error")
	}
	for _, model := range []string{"logreg", "dtree", "nb"} {
		if _, err := buildConfig("fair", model, 6, 0, 1); err != nil {
			t.Errorf("model %s: %v", model, err)
		}
	}
}

func TestLoadDatasetAndAssignment(t *testing.T) {
	// Round-trip a small city through a temp CSV and the pipeline,
	// then export the assignment.
	dir := t.TempDir()
	spec := dataset.LA()
	spec.NumRecords = 200
	grid := geo.MustGrid(16, 16)
	ds, err := dataset.Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "city.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := loadDataset(csvPath, grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 200 {
		t.Fatalf("loaded %d records", loaded.Len())
	}

	cfg, err := buildConfig("median", "logreg", 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "assign.csv")
	if err := writeAssignment(res, outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+grid.NumCells() {
		t.Errorf("assignment rows = %d, want %d", len(lines), 1+grid.NumCells())
	}
	if lines[0] != "row,col,region" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestBuildServeRoundTrip(t *testing.T) {
	// End-to-end: dataset CSV -> build (index file) -> serve (points
	// CSV -> region assignments).
	dir := t.TempDir()
	spec := dataset.LA()
	spec.NumRecords = 200
	grid := geo.MustGrid(16, 16)
	ds, err := dataset.Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "city.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	idxPath := filepath.Join(dir, "city.fidx")
	buildArgs := []string{
		"-in", csvPath, "-out", idxPath, "-grid", "16",
		"-method", "fair", "-height", "4", "-seed", "1",
		"-minlat", fmtF(ds.Box.MinLat), "-maxlat", fmtF(ds.Box.MaxLat),
		"-minlon", fmtF(ds.Box.MinLon), "-maxlon", fmtF(ds.Box.MaxLon),
	}
	if err := runBuildCmd(buildArgs); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(idxPath); err != nil || fi.Size() == 0 {
		t.Fatalf("index file missing or empty: %v", err)
	}

	// Points CSV with a header plus the first 10 records.
	pointsPath := filepath.Join(dir, "points.csv")
	var sb strings.Builder
	sb.WriteString("id,lat,lon\n")
	for i := 0; i < 10; i++ {
		r := ds.Records[i]
		sb.WriteString(r.ID + "," + fmtF(r.Lat) + "," + fmtF(r.Lon) + "\n")
	}
	if err := os.WriteFile(pointsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "regions.csv")
	if err := runServeCmd([]string{"-index", idxPath, "-points", pointsPath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 11 {
		t.Fatalf("serve output rows = %d, want 11:\n%s", len(lines), data)
	}
	if lines[0] != "id,lat,lon,region" {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("row %q has %d fields", line, len(fields))
		}
		region, err := strconv.Atoi(fields[3])
		if err != nil || region < 0 {
			t.Errorf("row %q: bad region", line)
		}
	}
}

func TestParsePost(t *testing.T) {
	for s, want := range map[string]pipeline.PostProcess{
		"none": pipeline.PostNone, "platt": pipeline.PostPlatt, "isotonic": pipeline.PostIsotonic,
	} {
		got, err := parsePost(s)
		if err != nil || got != want {
			t.Errorf("parsePost(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parsePost("sigmoid"); err == nil {
		t.Error("expected error for unknown post kind")
	}
}

func TestServeMissingInputs(t *testing.T) {
	if err := runServeCmd([]string{"-points", "x.csv"}); err == nil {
		t.Error("expected error without -index")
	}
	if err := runServeCmd([]string{"-index", "/nonexistent.fidx", "-points", "/nonexistent.csv"}); err == nil {
		t.Error("expected error for missing index file")
	}
}

// fmtF formats a float for CLI args and CSV rows.
func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := loadDataset("/nonexistent/file.csv", geo.MustGrid(4, 4),
		geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}); err == nil {
		t.Error("expected error for missing file")
	}
}

// writeCityAndIndex builds a small dataset CSV + index file pair.
func writeCityAndIndex(t *testing.T, dir string) (csvPath, idxPath string, ds *dataset.Dataset) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 200
	grid := geo.MustGrid(16, 16)
	ds, err := dataset.Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, "city.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	idxPath = filepath.Join(dir, "city.fidx")
	if err := runBuildCmd([]string{
		"-in", csvPath, "-out", idxPath, "-grid", "16",
		"-method", "fair", "-height", "4", "-seed", "1",
		"-minlat", fmtF(ds.Box.MinLat), "-maxlat", fmtF(ds.Box.MaxLat),
		"-minlon", fmtF(ds.Box.MinLon), "-maxlon", fmtF(ds.Box.MaxLon),
	}); err != nil {
		t.Fatal(err)
	}
	return csvPath, idxPath, ds
}

// TestServeHTTPSmoke boots the HTTP server on an ephemeral port,
// queries /healthz and /v1/locate, and shuts it down via context
// cancellation — the CLI-level slice of the serving subsystem.
func TestServeHTTPSmoke(t *testing.T) {
	_, idxPath, ds := writeCityAndIndex(t, t.TempDir())

	srv, err := newServeServer([]indexSpec{{name: "city", path: idxPath}}, "", 0, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serveHTTP(ctx, srv, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Regions int    `json:"regions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Regions < 2 {
		t.Fatalf("healthz = %+v", health)
	}

	rec := ds.Records[0]
	resp, err = http.Get(fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", base, rec.Lat, rec.Lon))
	if err != nil {
		t.Fatal(err)
	}
	var loc struct {
		Region int `json:"region"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&loc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc.Region < 0 || loc.Region >= health.Regions {
		t.Fatalf("locate region %d outside [0,%d)", loc.Region, health.Regions)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestServeCSVFlag covers the legacy mode behind -csv with a
// positional index argument.
func TestServeCSVFlag(t *testing.T) {
	dir := t.TempDir()
	_, idxPath, ds := writeCityAndIndex(t, dir)
	pointsPath := filepath.Join(dir, "points.csv")
	var sb strings.Builder
	sb.WriteString("id,lat,lon\n")
	for i := 0; i < 5; i++ {
		r := ds.Records[i]
		sb.WriteString(r.ID + "," + fmtF(r.Lat) + "," + fmtF(r.Lon) + "\n")
	}
	if err := os.WriteFile(pointsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "regions.csv")
	if err := runServeCmd([]string{"-csv", pointsPath, "-out", outPath, idxPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 6 {
		t.Fatalf("rows = %d, want 6:\n%s", len(lines), data)
	}
}

// TestServeArgValidation covers the index-spec plumbing rules.
func TestServeArgValidation(t *testing.T) {
	if err := runServeCmd([]string{}); err == nil {
		t.Error("expected error for no index file and no -dir")
	}
	// Explicit entries fail fast when the file does not exist.
	if err := runServeCmd([]string{"/nonexistent/a.fidx"}); err == nil {
		t.Error("expected error for a missing explicit index file")
	}
	// CSV mode stays single-index.
	if err := runServeCmd([]string{"-csv", "p.csv", "a.fidx", "b.fidx"}); err == nil {
		t.Error("expected error for CSV mode with two index files")
	}
	if _, err := parseIndexSpec("la="); err == nil {
		t.Error("expected error for an empty path spec")
	}
	if _, err := newServeServer([]indexSpec{}, t.TempDir(), 0, "", 0, nil); err == nil {
		t.Error("expected error for an empty artifact directory")
	}
}

// TestParseIndexSpec covers [name=]path parsing and default naming.
func TestParseIndexSpec(t *testing.T) {
	got, err := parseIndexSpec("artifacts/la-fair-h8.fidx")
	if err != nil || got.name != "la-fair-h8" || got.path != "artifacts/la-fair-h8.fidx" {
		t.Errorf("parseIndexSpec = %+v, %v", got, err)
	}
	got, err = parseIndexSpec("la=west/city.fidx")
	if err != nil || got.name != "la" || got.path != "west/city.fidx" {
		t.Errorf("parseIndexSpec named = %+v, %v", got, err)
	}
}

// TestServeMultiIndex boots the CLI server over two differently
// partitioned indexes of the same dataset and checks the named
// routes, the catalog listing and the comparison endpoint — the
// CLI-level slice of multi-index serving.
func TestServeMultiIndex(t *testing.T) {
	dir := t.TempDir()
	_, idxPath, ds := writeCityAndIndex(t, dir)
	// Second partitioning of the same dataset, zipcode method.
	idxB, err := fairindex.Build(ds, fairindex.WithMethod(fairindex.MethodZipCode), fairindex.WithHeight(4), fairindex.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idxB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	zipPath := filepath.Join(dir, "zip.fidx")
	if err := os.WriteFile(zipPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := newServeServer([]indexSpec{
		{name: "fair", path: idxPath},
		{name: "zip", path: zipPath},
	}, "", 0, "fair", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serveHTTP(ctx, srv, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	getInto := func(url string, out any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	var list struct {
		Default string `json:"default"`
		Indexes []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"indexes"`
	}
	getInto(base+"/v1/indexes", &list)
	if list.Default != "fair" || len(list.Indexes) != 2 {
		t.Fatalf("/v1/indexes = %+v", list)
	}

	// Named locates answer from the right index; the default route
	// matches the "fair" entry.
	rec := ds.Records[0]
	var def, fair, zip struct {
		Region int `json:"region"`
	}
	getInto(fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", base, rec.Lat, rec.Lon), &def)
	getInto(fmt.Sprintf("%s/v1/i/fair/locate?lat=%v&lon=%v", base, rec.Lat, rec.Lon), &fair)
	getInto(fmt.Sprintf("%s/v1/i/zip/locate?lat=%v&lon=%v", base, rec.Lat, rec.Lon), &zip)
	if def.Region != fair.Region {
		t.Errorf("default route region %d != named fair region %d", def.Region, fair.Region)
	}

	// Compare agrees with the per-index locates.
	body := fmt.Sprintf(`{"indexes":["fair","zip"],"lat":%v,"lon":%v}`, rec.Lat, rec.Lon)
	resp, err := http.Post(base+"/v1/compare", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cmp struct {
		Op      string `json:"op"`
		Indexes []struct {
			Name   string `json:"name"`
			Region int    `json:"region"`
		} `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cmp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cmp.Op != "locate" || len(cmp.Indexes) != 2 ||
		cmp.Indexes[0].Region != fair.Region || cmp.Indexes[1].Region != zip.Region {
		t.Fatalf("/v1/compare = %+v (fair %d, zip %d)", cmp, fair.Region, zip.Region)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestBuildTimings pins the observability line: totals, worker count
// and (for parallel multi-task builds) the speedup figure.
func TestBuildTimings(t *testing.T) {
	spec := dataset.LA()
	spec.NumRecords = 200
	ds, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fairindex.Build(ds, fairindex.WithHeight(3), fairindex.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	line := buildTimings(idx, 123*time.Millisecond)
	if !strings.Contains(line, "total 123ms") || !strings.Contains(line, "partition") {
		t.Errorf("timings line = %q", line)
	}
	if idx.TrainWorkers() == 1 && !strings.Contains(line, "on 1 worker") {
		t.Errorf("single-task line misses worker count: %q", line)
	}

	prev := runtime.GOMAXPROCS(4)
	multi, err := fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodMultiObjectiveFairKD),
		fairindex.WithHeight(3), fairindex.WithSeed(1))
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TrainWorkers() < 2 {
		t.Fatalf("multi-task build used %d workers", multi.TrainWorkers())
	}
	line = buildTimings(multi, time.Second)
	if !strings.Contains(line, "workers, speedup") {
		t.Errorf("parallel line misses speedup: %q", line)
	}
}

// writeQueryIndex builds a small index and persists it for query
// subcommand tests.
func writeQueryIndex(t *testing.T) (string, *fairindex.Index) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 200
	ds, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fairindex.Build(ds, fairindex.WithHeight(4), fairindex.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "city.fidx")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, idx
}

func TestQueryRange(t *testing.T) {
	path, idx := writeQueryIndex(t)
	box := idx.Box()
	var out strings.Builder
	args := []string{"range",
		"-minlat", fmtF(box.MinLat), "-maxlat", fmtF(box.MaxLat),
		"-minlon", fmtF(box.MinLon), "-maxlon", fmtF(box.MaxLon), path}
	if err := runQueryCmd(args, &out); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d of %d neighborhoods intersect the window", idx.NumRegions(), idx.NumRegions())
	if !strings.Contains(out.String(), want) {
		t.Errorf("output %q missing %q", out.String(), want)
	}
	if got := strings.Count(out.String(), "region "); got != idx.NumRegions() {
		t.Errorf("listed %d regions, want %d", got, idx.NumRegions())
	}
}

func TestQueryKNN(t *testing.T) {
	path, idx := writeQueryIndex(t)
	box := idx.Box()
	lat := (box.MinLat + box.MaxLat) / 2
	lon := (box.MinLon + box.MaxLon) / 2
	var out strings.Builder
	if err := runQueryCmd([]string{"knn", "-lat", fmtF(lat), "-lon", fmtF(lon), "-k", "3", path}, &out); err != nil {
		t.Fatal(err)
	}
	neighbors, err := idx.NearestRegions(lat, lon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 nearest neighborhoods") {
		t.Errorf("output %q missing header", out.String())
	}
	if !strings.Contains(out.String(), fmt.Sprintf("region %-4d", neighbors[0].Region)) {
		t.Errorf("output %q missing nearest region %d", out.String(), neighbors[0].Region)
	}
}

func TestQueryStats(t *testing.T) {
	path, idx := writeQueryIndex(t)
	var out strings.Builder
	if err := runQueryCmd([]string{"stats", "-task", "0", "-regions", "0,1,2", path}, &out); err != nil {
		t.Fatal(err)
	}
	ws, err := idx.GroupStats(0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("window of 3 neighborhoods, population %d", ws.Count)
	if !strings.Contains(out.String(), want) {
		t.Errorf("output %q missing %q", out.String(), want)
	}

	// Window form: the whole box must aggregate the full population.
	box := idx.Box()
	out.Reset()
	args := []string{"stats", "-task", "0",
		"-minlat", fmtF(box.MinLat), "-maxlat", fmtF(box.MaxLat),
		"-minlon", fmtF(box.MinLon), "-maxlon", fmtF(box.MaxLon), path}
	if err := runQueryCmd(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "population 200") {
		t.Errorf("full-window output %q should cover all 200 records", out.String())
	}
}

func TestQueryArgValidation(t *testing.T) {
	path, _ := writeQueryIndex(t)
	var out strings.Builder
	cases := [][]string{
		{},                                 // no subcommand
		{"warp", path},                     // unknown subcommand
		{"range", path},                    // missing window
		{"knn", path},                      // missing point
		{"knn", "-lat", "1", "-lon", "2"},  // missing index file
		{"stats", "-task", "0", path},      // neither regions nor window
		{"stats", "-regions", "x,y", path}, // malformed region list
		{"knn", "-lat", "1", "-lon", "2", "-k", "0", path}, // bad k
		{"stats", "-task", "0", "-regions", "1,2", "-minlat", "33.9", "-maxlat", "34.1",
			"-minlon", "-118.4", "-maxlon", "-118.1", path}, // both window forms
	}
	for _, args := range cases {
		if err := runQueryCmd(args, &out); err == nil {
			t.Errorf("runQueryCmd(%v) succeeded, want error", args)
		}
	}
}
