package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/pipeline"
)

func TestBuildConfig(t *testing.T) {
	tests := []struct {
		method string
		want   pipeline.Method
	}{
		{"fair", pipeline.MethodFairKD},
		{"median", pipeline.MethodMedianKD},
		{"iterative", pipeline.MethodIterativeFairKD},
		{"multi", pipeline.MethodMultiObjectiveFairKD},
		{"gridrw", pipeline.MethodGridReweight},
		{"zipcode", pipeline.MethodZipCode},
		{"quadtree", pipeline.MethodFairQuadtree},
	}
	for _, tt := range tests {
		cfg, err := buildConfig(tt.method, "logreg", 6, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", tt.method, err)
		}
		if cfg.Method != tt.want {
			t.Errorf("%s -> %v, want %v", tt.method, cfg.Method, tt.want)
		}
	}
	if _, err := buildConfig("nope", "logreg", 6, 0, 1); err == nil {
		t.Error("expected unknown method error")
	}
	if _, err := buildConfig("fair", "nope", 6, 0, 1); err == nil {
		t.Error("expected unknown model error")
	}
	for _, model := range []string{"logreg", "dtree", "nb"} {
		if _, err := buildConfig("fair", model, 6, 0, 1); err != nil {
			t.Errorf("model %s: %v", model, err)
		}
	}
}

func TestLoadDatasetAndAssignment(t *testing.T) {
	// Round-trip a small city through a temp CSV and the pipeline,
	// then export the assignment.
	dir := t.TempDir()
	spec := dataset.LA()
	spec.NumRecords = 200
	grid := geo.MustGrid(16, 16)
	ds, err := dataset.Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "city.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := loadDataset(csvPath, grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 200 {
		t.Fatalf("loaded %d records", loaded.Len())
	}

	cfg, err := buildConfig("median", "logreg", 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "assign.csv")
	if err := writeAssignment(res, outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+grid.NumCells() {
		t.Errorf("assignment rows = %d, want %d", len(lines), 1+grid.NumCells())
	}
	if lines[0] != "row,col,region" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := loadDataset("/nonexistent/file.csv", geo.MustGrid(4, 4),
		geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}); err == nil {
		t.Error("expected error for missing file")
	}
}
