package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/pipeline"
)

func TestBuildConfig(t *testing.T) {
	tests := []struct {
		method string
		want   pipeline.Method
	}{
		{"fair", pipeline.MethodFairKD},
		{"median", pipeline.MethodMedianKD},
		{"iterative", pipeline.MethodIterativeFairKD},
		{"multi", pipeline.MethodMultiObjectiveFairKD},
		{"gridrw", pipeline.MethodGridReweight},
		{"zipcode", pipeline.MethodZipCode},
		{"quadtree", pipeline.MethodFairQuadtree},
	}
	for _, tt := range tests {
		cfg, err := buildConfig(tt.method, "logreg", 6, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", tt.method, err)
		}
		if cfg.Method != tt.want {
			t.Errorf("%s -> %v, want %v", tt.method, cfg.Method, tt.want)
		}
	}
	if _, err := buildConfig("nope", "logreg", 6, 0, 1); err == nil {
		t.Error("expected unknown method error")
	}
	if _, err := buildConfig("fair", "nope", 6, 0, 1); err == nil {
		t.Error("expected unknown model error")
	}
	for _, model := range []string{"logreg", "dtree", "nb"} {
		if _, err := buildConfig("fair", model, 6, 0, 1); err != nil {
			t.Errorf("model %s: %v", model, err)
		}
	}
}

func TestLoadDatasetAndAssignment(t *testing.T) {
	// Round-trip a small city through a temp CSV and the pipeline,
	// then export the assignment.
	dir := t.TempDir()
	spec := dataset.LA()
	spec.NumRecords = 200
	grid := geo.MustGrid(16, 16)
	ds, err := dataset.Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "city.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := loadDataset(csvPath, grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 200 {
		t.Fatalf("loaded %d records", loaded.Len())
	}

	cfg, err := buildConfig("median", "logreg", 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "assign.csv")
	if err := writeAssignment(res, outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+grid.NumCells() {
		t.Errorf("assignment rows = %d, want %d", len(lines), 1+grid.NumCells())
	}
	if lines[0] != "row,col,region" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestBuildServeRoundTrip(t *testing.T) {
	// End-to-end: dataset CSV -> build (index file) -> serve (points
	// CSV -> region assignments).
	dir := t.TempDir()
	spec := dataset.LA()
	spec.NumRecords = 200
	grid := geo.MustGrid(16, 16)
	ds, err := dataset.Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "city.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	idxPath := filepath.Join(dir, "city.fidx")
	buildArgs := []string{
		"-in", csvPath, "-out", idxPath, "-grid", "16",
		"-method", "fair", "-height", "4", "-seed", "1",
		"-minlat", fmtF(ds.Box.MinLat), "-maxlat", fmtF(ds.Box.MaxLat),
		"-minlon", fmtF(ds.Box.MinLon), "-maxlon", fmtF(ds.Box.MaxLon),
	}
	if err := runBuildCmd(buildArgs); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(idxPath); err != nil || fi.Size() == 0 {
		t.Fatalf("index file missing or empty: %v", err)
	}

	// Points CSV with a header plus the first 10 records.
	pointsPath := filepath.Join(dir, "points.csv")
	var sb strings.Builder
	sb.WriteString("id,lat,lon\n")
	for i := 0; i < 10; i++ {
		r := ds.Records[i]
		sb.WriteString(r.ID + "," + fmtF(r.Lat) + "," + fmtF(r.Lon) + "\n")
	}
	if err := os.WriteFile(pointsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "regions.csv")
	if err := runServeCmd([]string{"-index", idxPath, "-points", pointsPath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 11 {
		t.Fatalf("serve output rows = %d, want 11:\n%s", len(lines), data)
	}
	if lines[0] != "id,lat,lon,region" {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("row %q has %d fields", line, len(fields))
		}
		region, err := strconv.Atoi(fields[3])
		if err != nil || region < 0 {
			t.Errorf("row %q: bad region", line)
		}
	}
}

func TestParsePost(t *testing.T) {
	for s, want := range map[string]pipeline.PostProcess{
		"none": pipeline.PostNone, "platt": pipeline.PostPlatt, "isotonic": pipeline.PostIsotonic,
	} {
		got, err := parsePost(s)
		if err != nil || got != want {
			t.Errorf("parsePost(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parsePost("sigmoid"); err == nil {
		t.Error("expected error for unknown post kind")
	}
}

func TestServeMissingInputs(t *testing.T) {
	if err := runServeCmd([]string{"-points", "x.csv"}); err == nil {
		t.Error("expected error without -index")
	}
	if err := runServeCmd([]string{"-index", "/nonexistent.fidx", "-points", "/nonexistent.csv"}); err == nil {
		t.Error("expected error for missing index file")
	}
}

// fmtF formats a float for CLI args and CSV rows.
func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := loadDataset("/nonexistent/file.csv", geo.MustGrid(4, 4),
		geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}); err == nil {
		t.Error("expected error for missing file")
	}
}
