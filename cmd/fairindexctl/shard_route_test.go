package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/shard"
)

// TestMain doubles as the subprocess entry point for the shard-route
// e2e: with FAIRINDEXCTL_SUBPROCESS set, the test binary behaves as
// the real fairindexctl, so shard backends and the router run as
// genuine separate processes without a prior `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("FAIRINDEXCTL_SUBPROCESS") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestShardCmd pins the artifact-splitting command: the manifest and
// every shard file land on disk, decode, and agree with the source
// index's generation and region ranges.
func TestShardCmd(t *testing.T) {
	dir := t.TempDir()
	_, idxPath, _ := writeCityAndIndex(t, dir)
	outDir := filepath.Join(dir, "shards")

	var sb strings.Builder
	if err := runShardCmd([]string{"-n", "3", "-out", outDir, idxPath}, &sb); err != nil {
		t.Fatal(err)
	}
	whole, err := fairindex.LoadIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := whole.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(filepath.Join(outDir, "city.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != gen {
		t.Errorf("manifest generation %d, whole fingerprint %d", m.Generation, gen)
	}
	if len(m.Shards) != 3 || m.NumRegions != whole.NumRegions() {
		t.Fatalf("manifest shape: %d shards over %d regions", len(m.Shards), m.NumRegions)
	}
	for i, s := range m.Shards {
		sx, err := fairindex.LoadIndex(filepath.Join(outDir, fmt.Sprintf("city-%s.fidx", s.Name)))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if got, want := sx.NumRegions(), m.LocalRegions(i); got != want {
			t.Errorf("shard %s: %d regions, manifest says %d", s.Name, got, want)
		}
		fp, err := sx.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp != s.Fingerprint {
			t.Errorf("shard %s: fingerprint %d, manifest records %d", s.Name, fp, s.Fingerprint)
		}
	}
	if !strings.Contains(sb.String(), "city.manifest") {
		t.Errorf("summary output missing manifest line:\n%s", sb.String())
	}

	// Argument validation.
	if err := runShardCmd([]string{"-n", "3"}, io.Discard); err == nil {
		t.Error("expected error without an input artifact")
	}
	if err := runShardCmd([]string{"-n", "0", idxPath}, io.Discard); err == nil {
		t.Error("expected error for zero shards")
	}
}

func TestRouteArgValidation(t *testing.T) {
	if err := runRouteCmd([]string{"-shard", "s0=http://x"}); err == nil {
		t.Error("expected error without -manifest")
	}
	if err := runRouteCmd([]string{"-manifest", "/nonexistent.manifest"}); err == nil {
		t.Error("expected error without -shard backends")
	}
	if err := runRouteCmd([]string{"-manifest", "/nonexistent.manifest", "-shard", "s0=http://x"}); err == nil {
		t.Error("expected error for missing manifest file")
	}
	var b backendFlags
	if err := b.Set("nourl"); err == nil {
		t.Error("expected error for malformed -shard value")
	}
	if err := b.Set("s0=http://x"); err != nil || len(b) != 1 {
		t.Errorf("Set: %v (%d backends)", err, len(b))
	}
	// Replica sets: comma lists parse, repeated names merge, and an
	// empty replica URL is rejected.
	if err := b.Set("s1=http://a,http://b"); err != nil || len(b) != 2 || len(b[1].URLs) != 2 {
		t.Errorf("Set replica list: %v (%+v)", err, b)
	}
	if err := b.Set("s1=http://c"); err != nil || len(b) != 2 || len(b[1].URLs) != 3 {
		t.Errorf("Set repeated name: %v (%+v)", err, b)
	}
	if err := b.Set("s2=http://a,,http://b"); err == nil {
		t.Error("expected error for empty replica URL")
	}
}

// spawn re-execs the test binary as fairindexctl and waits for the
// listen line, returning the bound address.
func spawn(t *testing.T, args ...string) string {
	t.Helper()
	addr, _ := spawnProc(t, args...)
	return addr
}

// spawnProc is spawn exposing the child process too, so fault e2e
// tests can SIGKILL a replica mid-load.
func spawnProc(t *testing.T, args ...string) (string, *os.Process) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FAIRINDEXCTL_SUBPROCESS=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})

	addrRe := regexp.MustCompile(` on (127\.0\.0\.1:\d+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd.Process
	case <-time.After(15 * time.Second):
		t.Fatalf("subprocess %v never reported a listen address", args)
		return "", nil
	}
}

// TestShardRouteSubprocessE2E is the full deployment shape with real
// process isolation: shard the artifact, serve each shard from its own
// subprocess, front them with a route subprocess, and check the
// router's answers (and generation header) against the in-process
// whole index.
func TestShardRouteSubprocessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	dir := t.TempDir()
	_, idxPath, ds := writeCityAndIndex(t, dir)
	outDir := filepath.Join(dir, "shards")
	if err := runShardCmd([]string{"-n", "3", "-out", outDir, idxPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	whole, err := fairindex.LoadIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(outDir, "city.manifest")
	blob, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}

	routeArgs := []string{"route", "-http", "127.0.0.1:0", "-manifest", manifestPath}
	for _, s := range m.Shards {
		addr := spawn(t, "serve", "-http", "127.0.0.1:0",
			filepath.Join(outDir, fmt.Sprintf("city-%s.fidx", s.Name)))
		routeArgs = append(routeArgs, "-shard", s.Name+"=http://"+addr)
	}
	base := "http://" + spawn(t, routeArgs...)

	gen, err := whole.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	wantGen := strconv.FormatUint(gen, 10)

	// Point lookups across the dataset match the whole index, and
	// every response carries the whole artifact's generation.
	for i := 0; i < 10; i++ {
		r := ds.Records[i*17%len(ds.Records)]
		resp, err := http.Get(fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", base, r.Lat, r.Lon))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Region int `json:"region"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("locate: status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("Fairindex-Generation"); got != wantGen {
			t.Fatalf("generation %q, want %s", got, wantGen)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		want, err := whole.Locate(r.Lat, r.Lon)
		if err != nil {
			t.Fatal(err)
		}
		if out.Region != want {
			t.Errorf("locate(%v,%v) = %d, want %d", r.Lat, r.Lon, out.Region, want)
		}
	}

	// Window stats over every region match the whole index exactly.
	task := whole.Tasks()[0]
	all := make([]string, whole.NumRegions())
	for i := range all {
		all[i] = strconv.Itoa(i)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/stats?task=%d&regions=%s", base, task, strings.Join(all, ",")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, body)
	}
	var stats struct {
		Count   int      `json:"count"`
		ENCE    *float64 `json:"ence"`
		Partial bool     `json:"partial"`
		Regions []struct {
			Region int `json:"region"`
			Count  int `json:"count"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	allIDs := make([]int, whole.NumRegions())
	for i := range allIDs {
		allIDs[i] = i
	}
	want, err := whole.GroupStats(task, allIDs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial {
		t.Error("healthy cluster answered partial stats")
	}
	if stats.Count != want.Count || len(stats.Regions) != len(want.Regions) {
		t.Fatalf("stats shape: count %d regions %d, want %d/%d",
			stats.Count, len(stats.Regions), want.Count, len(want.Regions))
	}
	gotENCE := math.NaN()
	if stats.ENCE != nil {
		gotENCE = *stats.ENCE
	}
	if math.Float64bits(gotENCE) != math.Float64bits(want.ENCE) && !(math.IsNaN(gotENCE) && math.IsNaN(want.ENCE)) {
		t.Errorf("ence %v, want %v", gotENCE, want.ENCE)
	}

	// The health surface sees every subprocess backend in sync.
	resp, err = http.Get(base + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var shardsOut struct {
		Generation string `json:"generation"`
		Shards     []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Match  bool   `json:"match"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &shardsOut); err != nil {
		t.Fatal(err)
	}
	if shardsOut.Generation != wantGen || len(shardsOut.Shards) != len(m.Shards) {
		t.Fatalf("shards surface: generation %q, %d shards", shardsOut.Generation, len(shardsOut.Shards))
	}
	for _, s := range shardsOut.Shards {
		if s.Status != "ok" || !s.Match {
			t.Errorf("shard %s: status %q match %v", s.Name, s.Status, s.Match)
		}
	}

	// Manifest hot-reload over HTTP answers with the same generation.
	resp, err = http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), wantGen) {
		t.Errorf("reload: status %d body %s", resp.StatusCode, body)
	}
}

// TestShardRouteFailoverSubprocessE2E is the kill-one-replica drill
// with real process isolation: two serve subprocesses per shard,
// SIGKILL one replica of every shard mid-hammer, and require zero
// non-200 locates with bodies identical to the whole index — the
// headline robustness acceptance criterion.
func TestShardRouteFailoverSubprocessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	dir := t.TempDir()
	_, idxPath, ds := writeCityAndIndex(t, dir)
	outDir := filepath.Join(dir, "shards")
	if err := runShardCmd([]string{"-n", "2", "-out", outDir, idxPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	whole, err := fairindex.LoadIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(outDir, "city.manifest")
	blob, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Two replicas per shard, the first of each doomed to SIGKILL.
	var doomed []*os.Process
	routeArgs := []string{"route", "-http", "127.0.0.1:0", "-manifest", manifestPath, "-hedge", "50ms"}
	for _, s := range m.Shards {
		artifact := filepath.Join(outDir, fmt.Sprintf("city-%s.fidx", s.Name))
		addrA, procA := spawnProc(t, "serve", "-http", "127.0.0.1:0", artifact)
		addrB := spawn(t, "serve", "-http", "127.0.0.1:0", artifact)
		doomed = append(doomed, procA)
		routeArgs = append(routeArgs, "-shard", s.Name+"=http://"+addrA+",http://"+addrB)
	}
	base := "http://" + spawn(t, routeArgs...)

	locate := func(i int) {
		t.Helper()
		r := ds.Records[i*13%len(ds.Records)]
		resp, err := http.Get(fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", base, r.Lat, r.Lon))
		if err != nil {
			t.Fatalf("locate %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("locate %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out struct {
			Region int `json:"region"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		want, err := whole.Locate(r.Lat, r.Lon)
		if err != nil {
			t.Fatal(err)
		}
		if out.Region != want {
			t.Fatalf("locate %d: region %d, want %d", i, out.Region, want)
		}
	}

	const total, killAt = 60, 20
	for i := 0; i < total; i++ {
		if i == killAt {
			for _, p := range doomed {
				p.Kill()
			}
		}
		locate(i)
	}

	// The health surface shows both replicas per shard, the dead one
	// marked unreachable, while the shard itself still reports ok.
	resp, err := http.Get(base + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var shardsOut struct {
		Shards []struct {
			Name     string `json:"name"`
			Status   string `json:"status"`
			Replicas []struct {
				Status string `json:"status"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &shardsOut); err != nil {
		t.Fatal(err)
	}
	for _, s := range shardsOut.Shards {
		if s.Status != "ok" {
			t.Errorf("shard %s with a live replica: status %q", s.Name, s.Status)
		}
		if len(s.Replicas) != 2 {
			t.Fatalf("shard %s: %d replicas on the surface, want 2", s.Name, len(s.Replicas))
		}
		if !strings.HasPrefix(s.Replicas[0].Status, "unreachable") {
			t.Errorf("shard %s: killed replica status %q", s.Name, s.Replicas[0].Status)
		}
		if s.Replicas[1].Status != "ok" {
			t.Errorf("shard %s: surviving replica status %q", s.Name, s.Replicas[1].Status)
		}
	}
}
