package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	fairindex "fairindex"
	"fairindex/internal/router"
	"fairindex/internal/shard"
)

// runShardCmd splits a saved artifact into per-shard .fidx files plus
// the manifest binding them.
func runShardCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	n := fs.Int("n", 2, "number of shards to split into")
	outDir := fs.String("out", ".", "output directory for shard artifacts and manifest")
	prefix := fs.String("prefix", "", "artifact name prefix (default: input base name)")
	path := fs.String("index", "", "input .fidx artifact (may be positional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *path == "" && fs.NArg() == 1:
		*path = fs.Arg(0)
	case *path != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("shard: exactly one index artifact required (-index or positional)")
	}
	idx, err := fairindex.LoadIndex(*path)
	if err != nil {
		return err
	}
	m, shards, err := shard.Split(idx, *n)
	if err != nil {
		return err
	}
	if *prefix == "" {
		*prefix = strings.TrimSuffix(filepath.Base(*path), ".fidx")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	manifestPath := filepath.Join(*outDir, *prefix+".manifest")
	if err := os.WriteFile(manifestPath, m.Encode(), 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	fmt.Fprintf(out, "%s: %d regions over %d shards, generation %d\n",
		manifestPath, m.NumRegions, len(m.Shards), m.Generation)
	for i, sx := range shards {
		blob, err := sx.MarshalBinary()
		if err != nil {
			return fmt.Errorf("shard %s: %w", m.Shards[i].Name, err)
		}
		shardPath := filepath.Join(*outDir, fmt.Sprintf("%s-%s.fidx", *prefix, m.Shards[i].Name))
		if err := os.WriteFile(shardPath, blob, 0o644); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		fmt.Fprintf(out, "  %s: regions [%d,%d), fingerprint %d, %d bytes\n",
			shardPath, m.Shards[i].Lo, m.Shards[i].Hi, m.Shards[i].Fingerprint, len(blob))
	}
	return nil
}

// backendFlags collects repeated -shard name=url1,url2 flags: one
// manifest shard name mapping to its replica set. Repeating a name
// appends replicas to the same set, so `-shard s0=a -shard s0=b`
// equals `-shard s0=a,b`.
type backendFlags []router.Backend

func (b *backendFlags) String() string {
	parts := make([]string, len(*b))
	for i, be := range *b {
		urls := be.URLs
		if len(urls) == 0 && be.URL != "" {
			urls = []string{be.URL}
		}
		parts[i] = be.Name + "=" + strings.Join(urls, ",")
	}
	return strings.Join(parts, " ")
}

func (b *backendFlags) Set(s string) error {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=url[,url...], got %q", s)
	}
	var urls []string
	for _, u := range strings.Split(rest, ",") {
		if u == "" {
			return fmt.Errorf("empty replica URL in %q", s)
		}
		urls = append(urls, u)
	}
	for i := range *b {
		if (*b)[i].Name == name {
			(*b)[i].URLs = append((*b)[i].URLs, urls...)
			return nil
		}
	}
	*b = append(*b, router.Backend{Name: name, URLs: urls})
	return nil
}

// runRouteCmd serves the scatter-gather router over running shard
// backends, re-reading the manifest file on SIGHUP or /v1/reload.
func runRouteCmd(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	httpAddr := fs.String("http", ":8080", "listen address")
	manifestPath := fs.String("manifest", "", "shard plan manifest file (required)")
	timeout := fs.Duration("timeout", router.DefaultTimeout, "per-shard request timeout")
	hedge := fs.Duration("hedge", 0, "hedged-read delay for locate-class calls (0 disables)")
	var backends backendFlags
	fs.Var(&backends, "shard", "shard replica set as name=url[,url...] (repeat per manifest entry)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("route: -manifest is required")
	}
	if len(backends) == 0 {
		return fmt.Errorf("route: at least one -shard name=url[,url...] is required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("route: unexpected arguments %v", fs.Args())
	}
	source := func() (*shard.Manifest, error) {
		blob, err := os.ReadFile(*manifestPath)
		if err != nil {
			return nil, err
		}
		return shard.Decode(blob)
	}
	m, err := source()
	if err != nil {
		return fmt.Errorf("route: %w", err)
	}
	rt, err := router.New(m, backends,
		router.WithTimeout(*timeout), router.WithHedge(*hedge),
		router.WithManifestSource(source))
	if err != nil {
		return fmt.Errorf("route: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return routeHTTP(ctx, rt, *httpAddr, nil)
}

// routeHTTP runs the router until ctx is done, hot-reloading the
// manifest on SIGHUP. onReady, when non-nil, observes the bound
// address (tests bind :0).
func routeHTTP(ctx context.Context, rt *router.Router, addr string, onReady func(net.Addr)) error {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if err := rt.Reload(); err != nil {
					log.Printf("route: reload: %v", err)
				} else {
					log.Printf("route: reloaded manifest, generation %d", rt.Manifest().Generation)
				}
			}
		}
	}()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	m := rt.Manifest()
	fmt.Printf("routing %d regions over %d shards on %s (generation %d)\n",
		m.NumRegions, len(m.Shards), ln.Addr(), m.Generation)
	for _, s := range m.Shards {
		fmt.Printf("  %s: regions [%d,%d), %d replica(s)\n", s.Name, s.Lo, s.Hi, len(rt.ShardHealth(s.Name)))
	}
	fmt.Printf("hot reload: kill -HUP %d or POST /v1/reload\n", os.Getpid())
	if onReady != nil {
		onReady(ln.Addr())
	}
	hs := &http.Server{Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	}
}
