// Command fairindexctl builds a fairness-aware spatial partitioning
// for a dataset CSV and reports the resulting neighborhoods: ENCE,
// per-neighborhood calibration, an ASCII map of the redistricting and
// optionally a cell→region assignment CSV.
//
// Usage:
//
//	fairindexctl -in city.csv -minlat .. -maxlat .. -minlon .. -maxlon .. \
//	             [-method fair|median|iterative|multi|gridrw|zipcode|quadtree] \
//	             [-height 8] [-model logreg|dtree|nb] [-task 0] \
//	             [-grid 64] [-seed 11] [-map] [-assign out.csv]
//
// The input CSV follows the canonical layout written by cmd/datagen:
// id, lat, lon, features..., label:task...
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
	"fairindex/internal/render"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairindexctl: ")

	in := flag.String("in", "", "input dataset CSV (required)")
	method := flag.String("method", "fair", "partitioning method: fair|median|iterative|multi|gridrw|zipcode|quadtree")
	model := flag.String("model", "logreg", "classifier: logreg|dtree|nb")
	height := flag.Int("height", 8, "tree height")
	task := flag.Int("task", 0, "label task index")
	gridSide := flag.Int("grid", 64, "base grid side length")
	seed := flag.Int64("seed", 11, "split/layout seed")
	minLat := flag.Float64("minlat", 0, "bounding box min latitude (required)")
	maxLat := flag.Float64("maxlat", 0, "bounding box max latitude (required)")
	minLon := flag.Float64("minlon", 0, "bounding box min longitude (required)")
	maxLon := flag.Float64("maxlon", 0, "bounding box max longitude (required)")
	showMap := flag.Bool("map", false, "print an ASCII map of the partition")
	assign := flag.String("assign", "", "write the cell→region assignment CSV to this path")
	flag.Parse()

	if *in == "" {
		log.Fatal("-in is required")
	}
	box := geo.BBox{MinLat: *minLat, MinLon: *minLon, MaxLat: *maxLat, MaxLon: *maxLon}
	if !box.Valid() {
		log.Fatal("a valid bounding box (-minlat/-maxlat/-minlon/-maxlon) is required")
	}
	grid, err := geo.NewGrid(*gridSide, *gridSide)
	if err != nil {
		log.Fatal(err)
	}

	ds, err := loadDataset(*in, grid, box)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := buildConfig(*method, *model, *height, *task, *seed)
	if err != nil {
		log.Fatal(err)
	}

	res, err := pipeline.Run(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report(ds, res)

	if *showMap {
		fmt.Println("\npartition map (row 0 = south):")
		fmt.Print(render.Partition(res.Partition, 64))
	}
	if *assign != "" {
		if err := writeAssignment(res, *assign); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote assignment CSV to %s\n", *assign)
	}
}

func loadDataset(path string, grid geo.Grid, box geo.BBox) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, path, grid, box)
}

func buildConfig(method, model string, height, task int, seed int64) (pipeline.Config, error) {
	cfg := pipeline.Config{Height: height, Task: task, Seed: seed}
	switch method {
	case "fair":
		cfg.Method = pipeline.MethodFairKD
	case "median":
		cfg.Method = pipeline.MethodMedianKD
	case "iterative":
		cfg.Method = pipeline.MethodIterativeFairKD
	case "multi":
		cfg.Method = pipeline.MethodMultiObjectiveFairKD
	case "gridrw":
		cfg.Method = pipeline.MethodGridReweight
	case "zipcode":
		cfg.Method = pipeline.MethodZipCode
	case "quadtree":
		cfg.Method = pipeline.MethodFairQuadtree
	default:
		return cfg, fmt.Errorf("unknown method %q", method)
	}
	switch model {
	case "logreg":
		cfg.Model = ml.ModelLogReg
	case "dtree":
		cfg.Model = ml.ModelDecisionTree
	case "nb":
		cfg.Model = ml.ModelNaiveBayes
	default:
		return cfg, fmt.Errorf("unknown model %q", model)
	}
	return cfg, nil
}

func report(ds *dataset.Dataset, res *pipeline.Result) {
	fmt.Printf("%s over %q: %d neighborhoods (height %d)\n",
		res.Method, ds.Name, res.NumRegions, res.Height)
	fmt.Printf("build %v, final training %v\n", res.BuildTime, res.TrainTime)
	for _, tr := range res.Tasks {
		fmt.Printf("\ntask %q:\n", tr.TaskName)
		fmt.Printf("  ENCE            %.5f (train %.5f, test %.5f)\n", tr.ENCE, tr.ENCETrain, tr.ENCETest)
		fmt.Printf("  accuracy        %.3f   AUC %.3f\n", tr.Accuracy, tr.AUC)
		fmt.Printf("  miscalibration  train %.4f, test %.4f\n", tr.TrainMiscal, tr.TestMiscal)
		fmt.Println("  most populated neighborhoods:")
		for i, r := range tr.TopNeighborhoods {
			fmt.Printf("    N%-3d pop %-5d calibration %.3f  ECE %.4f\n",
				i+1, r.Count, r.Ratio, r.ECE)
		}
	}
}

func writeAssignment(res *pipeline.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"row", "col", "region"}); err != nil {
		return err
	}
	grid := res.Partition.Grid()
	for row := 0; row < grid.U; row++ {
		for col := 0; col < grid.V; col++ {
			region, err := res.Partition.RegionOfCell(geo.Cell{Row: row, Col: col})
			if err != nil {
				return err
			}
			rec := []string{strconv.Itoa(row), strconv.Itoa(col), strconv.Itoa(region)}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
