// Command fairindexctl builds, persists and serves fairness-aware
// spatial indexes.
//
// Subcommands:
//
//	fairindexctl build -in city.csv -out city.fidx \
//	             -minlat .. -maxlat .. -minlon .. -maxlon .. \
//	             [-method fair|median|iterative|multi|gridrw|zipcode|quadtree] \
//	             [-height 8] [-model logreg|dtree|nb] [-task 0] \
//	             [-post none|platt|isotonic] [-grid 64] [-seed 11]
//		build an Index artifact from a dataset CSV and save it.
//
//	fairindexctl ingest -in city.csv -out city.fidx [-chunk 4096] [build flags...]
//		build's streaming twin: ingest the CSV in bounded chunks
//		(two passes over the file, O(chunk) transient memory instead
//		of a materialized copy) and save a bit-identical artifact.
//
//	fairindexctl append -in new.csv [-out city.fidx] [-threshold 0.02] \
//	             [-drift-metric stat_parity=0.05 ...] city.fidx
//		fold new records into a saved index's live per-region
//		statistics (partition and models unchanged) and report the
//		drift they caused as a per-metric table; with -out the folded
//		statistics are persisted so drift survives the next load.
//		-threshold arms the rebuild recommendation on ENCE drift and
//		-drift-metric (repeatable) on any registered fairness metric,
//		for this invocation (thresholds are runtime policy, not part
//		of the artifact — arm them wherever the index is loaded).
//
//	fairindexctl serve [-http :8080] city.fidx [more.fidx ...]
//	fairindexctl serve -dir artifacts/ [-max-indexes 8] [-default la-fair-h8]
//		load one or more saved Indexes and serve them from a single
//		concurrent HTTP/JSON process. Each artifact is a named
//		catalog entry ([name=]path arguments, or the file base name);
//		-dir serves every *.fidx in a directory, loading entries
//		lazily on first use and LRU-evicting beyond -max-indexes.
//		Named routes /v1/i/{name}/locate|locate_batch|score|
//		report/{task}|range|knn|stats address one entry; the
//		unprefixed /v1/* routes resolve to the default entry
//		(-default, or the sole entry); /v1/indexes lists the catalog
//		and /v1/compare runs one request across several entries.
//		SIGHUP (or POST /v1/reload) rescans -dir and atomically
//		hot-reloads every resident index without dropping in-flight
//		requests; POST /v1/i/{name}/reload reloads one entry.
//		-drift-threshold arms every served index's rebuild
//		recommendation: once appends (POST /v1/append or
//		/v1/i/{name}/append) drift a task's live ENCE that far from
//		its build-time baseline, the entry advertises
//		rebuild_recommended in /v1/indexes. -drift-metric
//		metric=threshold (repeatable) arms the same recommendation on
//		any registered fairness metric (see docs/METRICS.md); the
//		per-metric live drifts appear as "drifts" in /v1/indexes.
//
//		-rebuild-source data.csv (a CSV file, or a directory holding
//		one <name>.csv per entry) runs the drift-rebuild controller
//		in-process: every drift crossing — and every POST
//		/v1/i/{name}/rebuild — rebuilds a candidate from the source
//		with the serving artifact's own recipe, gates it on fairness
//		regression budgets (-rebuild-budget metric=delta, repeatable;
//		default ence=0.01 cal_ratio=0.05) and promotes it atomically
//		only if no budget is exceeded; rebuild state appears per
//		entry in /v1/indexes. See docs/REBUILD.md.
//
//	fairindexctl rebuild -source new.csv [-budget ence=0.01 ...] [-dry-run] city.fidx
//		one-shot rebuild cycle over a saved artifact: rebuild a
//		candidate from -source with the artifact's own build recipe,
//		evaluate the fairness gate, print the per-metric delta table
//		and atomically replace the file only on a promote verdict
//		(-dry-run never touches it). Exit code 0 = promoted (or dry
//		run passed), 3 = refused, 4 = candidate build failed.
//
//	fairindexctl serve -csv points.csv [-out regions.csv] city.fidx
//		legacy one-shot mode: answer point→neighborhood lookups for
//		a CSV of points (id, lat, lon; header optional) and exit.
//		-points is accepted as an alias for -csv.
//
//	fairindexctl shard -n 4 [-out artifacts/] [-prefix la] city.fidx
//		split a saved Index into n per-shard .fidx artifacts (each a
//		standalone index over a contiguous neighborhood range, loadable
//		by ordinary serve processes) plus a <prefix>.manifest shard
//		plan binding them to the source artifact's generation.
//
//	fairindexctl route -manifest la.manifest \
//	             -shard s0=http://host:8081 -shard s1=http://host:8082 \
//	             [-http :8080] [-timeout 5s]
//		serve the exact scatter-gather router over running shard
//		backends (one -shard name=url per manifest entry; each backend
//		is a plain `fairindexctl serve` holding that shard's
//		artifact). Locate/range/knn/stats answers are bit-identical to
//		a server holding the unsharded artifact; score and report are
//		refused (whole-index operations). SIGHUP or POST /v1/reload
//		re-reads the manifest file for generation handoffs, and
//		GET /v1/shards reports per-backend health and generation.
//
//	fairindexctl query range -minlat .. -maxlat .. -minlon .. -maxlon .. city.fidx
//	fairindexctl query knn -lat .. -lon .. [-k 5] city.fidx
//	fairindexctl query stats -task 0 {-regions 1,2,3 | -minlat .. -maxlat .. -minlon .. -maxlon ..} \
//	             [-metrics ence,stat_parity|all] city.fidx
//		run region queries against a saved Index without a server:
//		range lists the neighborhoods intersecting a window (cells +
//		covered fraction), knn the k nearest neighborhoods by
//		centroid distance, stats the aggregated calibration/fairness
//		report over a window given as region ids or as a rectangle;
//		-metrics additionally evaluates the named registered fairness
//		metrics (or all of them) over the window. The index may also
//		be passed with -index instead of positionally.
//
// Invoked without a subcommand it runs the legacy one-shot report:
//
//	fairindexctl -in city.csv -minlat .. -maxlat .. -minlon .. -maxlon .. \
//	             [-method fair] [-height 8] [-model logreg] [-task 0] \
//	             [-grid 64] [-seed 11] [-map] [-assign out.csv]
//
// The input CSV follows the canonical layout written by cmd/datagen:
// id, lat, lon, features..., label:task...
package main

import (
	"cmp"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
	"fairindex/internal/rebuild"
	"fairindex/internal/registry"
	"fairindex/internal/render"
	"fairindex/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairindexctl: ")

	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "build":
			if err := runBuildCmd(os.Args[2:]); err != nil {
				log.Fatal(err)
			}
			return
		case "ingest":
			if err := runIngestCmd(os.Args[2:]); err != nil {
				log.Fatal(err)
			}
			return
		case "append":
			if err := runAppendCmd(os.Args[2:]); err != nil {
				log.Fatal(err)
			}
			return
		case "serve":
			if err := runServeCmd(os.Args[2:]); err != nil {
				log.Fatal(err)
			}
			return
		case "rebuild":
			code, err := runRebuildCmd(os.Args[2:], os.Stdout)
			if err != nil {
				log.Print(err)
			}
			os.Exit(code)
		case "query":
			if err := runQueryCmd(os.Args[2:], os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		case "shard":
			if err := runShardCmd(os.Args[2:], os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		case "route":
			if err := runRouteCmd(os.Args[2:]); err != nil {
				log.Fatal(err)
			}
			return
		}
	}
	if err := runLegacyReport(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// runBuildCmd builds an Index from a dataset CSV and writes the
// serialized artifact to -out.
func runBuildCmd(args []string) error { return runBuildLike("build", args, false) }

// runIngestCmd is build's streaming twin: the CSV is read in bounded
// chunks (two passes over the file) instead of being materialized up
// front, and the resulting artifact is bit-identical to build's.
func runIngestCmd(args []string) error { return runBuildLike("ingest", args, true) }

func runBuildLike(cmd string, args []string, streaming bool) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	in := fs.String("in", "", "input dataset CSV (required)")
	out := fs.String("out", "", "output index file (required)")
	method := fs.String("method", "fair", "partitioning method: fair|median|iterative|multi|gridrw|zipcode|quadtree")
	model := fs.String("model", "logreg", "classifier: logreg|dtree|nb")
	height := fs.Int("height", 8, "tree height")
	task := fs.Int("task", 0, "label task index")
	post := fs.String("post", "none", "post-processing: none|platt|isotonic")
	gridSide := fs.Int("grid", 64, "base grid side length")
	seed := fs.Int64("seed", 11, "split/layout seed")
	minLat := fs.Float64("minlat", 0, "bounding box min latitude (required)")
	maxLat := fs.Float64("maxlat", 0, "bounding box max latitude (required)")
	minLon := fs.Float64("minlon", 0, "bounding box min longitude (required)")
	maxLon := fs.Float64("maxlon", 0, "bounding box max longitude (required)")
	var chunk *int
	if streaming {
		chunk = fs.Int("chunk", fairindex.DefaultStreamChunk, "records per streaming ingest batch")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("%s: -in and -out are required", cmd)
	}
	box := geo.BBox{MinLat: *minLat, MinLon: *minLon, MaxLat: *maxLat, MaxLon: *maxLon}
	if !box.Valid() {
		return fmt.Errorf("%s: a valid bounding box (-minlat/-maxlat/-minlon/-maxlon) is required", cmd)
	}
	grid, err := geo.NewGrid(*gridSide, *gridSide)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(*method, *model, *height, *task, *seed)
	if err != nil {
		return err
	}
	if cfg.PostProcess, err = parsePost(*post); err != nil {
		return err
	}

	totalStart := time.Now()
	var idx *fairindex.Index
	if streaming {
		src, err := fairindex.OpenCSVSource(*in, *in, grid, box)
		if err != nil {
			return err
		}
		defer src.Close()
		idx, err = fairindex.BuildStream(src, fairindex.WithConfig(cfg),
			fairindex.WithStreaming(*chunk))
		if err != nil {
			return err
		}
	} else {
		ds, err := loadDataset(*in, grid, box)
		if err != nil {
			return err
		}
		if idx, err = fairindex.Build(ds, fairindex.WithConfig(cfg)); err != nil {
			return err
		}
	}
	total := time.Since(totalStart)
	blob, err := idx.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	rep, err := idx.Report(*task)
	if err != nil {
		return err
	}
	fmt.Printf("built %s over %q: %d neighborhoods (height %d), ENCE %.5f\n",
		idx.Method(), idx.DatasetName(), idx.NumRegions(), idx.Height(), rep.ENCE)
	fmt.Print(buildTimings(idx, total))
	fmt.Printf("wrote %d bytes to %s\n", len(blob), *out)
	return nil
}

// runAppendCmd folds new records from a CSV into a saved index's live
// per-region statistics and reports the calibration drift they
// caused. With -out the updated artifact (folded statistics included)
// is written back, so the drift measurement survives the next load.
func runAppendCmd(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	in := fs.String("in", "", "CSV of records to append (required; canonical layout)")
	indexPath := fs.String("index", "", "serialized index file (or pass it positionally)")
	out := fs.String("out", "", "write the updated artifact here (optional; may equal -index)")
	threshold := fs.Float64("threshold", -1, "ENCE drift threshold to arm before folding (-1 = leave unarmed; the threshold is runtime policy, not stored in the artifact)")
	driftMetrics := map[string]float64{}
	fs.Func("drift-metric", "metric=threshold to arm before folding, e.g. stat_parity=0.05 (repeatable)",
		func(v string) error { return parseDriftMetric(v, driftMetrics) })
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *indexPath
	switch {
	case path == "" && fs.NArg() == 1:
		path = fs.Arg(0)
	case path != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("append: exactly one index file is required (-index or positional)")
	}
	if *in == "" {
		return fmt.Errorf("append: -in is required")
	}
	idx, err := fairindex.LoadIndex(path)
	if err != nil {
		return err
	}
	if *threshold >= 0 {
		if err := idx.SetDriftThreshold(*threshold); err != nil {
			return err
		}
	}
	for name, t := range driftMetrics {
		if err := idx.SetMetricDriftThreshold(name, t); err != nil {
			return err
		}
	}
	// The appended CSV is decoded against the index's own geometry, so
	// the records land in the partitioning they will be folded into.
	ds, err := loadDataset(*in, idx.Grid(), idx.Box())
	if err != nil {
		return err
	}
	res, err := idx.AppendBatch(ds.Records)
	if err != nil {
		return err
	}
	fmt.Printf("appended %d records to %s (%d since load)\n", res.Appended, path, res.Total)
	fmt.Print(driftTable(res, idx.DriftThresholds()))
	if *out != "" {
		blob, err := idx.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s\n", len(blob), *out)
	}
	return nil
}

// parseDriftMetric parses one -drift-metric metric=threshold value
// into dst.
func parseDriftMetric(v string, dst map[string]float64) error {
	name, raw, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want metric=threshold, got %q", v)
	}
	t, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return fmt.Errorf("threshold in %q: %v", v, err)
	}
	dst[name] = t
	return nil
}

// driftTable renders an append's drift report as a per-metric table —
// the same monitored-metric view the serve catalog exposes on
// /v1/indexes (drift, drifts, rebuild_recommended): one row per task
// and monitored metric with the live value, the drift from the
// build-time value and, when armed, the threshold. NaN values render
// as "n/a" — the same "undefined" sentinel the HTTP API encodes as
// null.
func driftTable(res fairindex.AppendResult, thresholds map[string]float64) string {
	var b strings.Builder
	num := func(v float64) string {
		if math.IsNaN(v) {
			return "     n/a"
		}
		return fmt.Sprintf("%8.5f", v)
	}
	for _, td := range res.Tasks {
		names := make([]string, 0, len(td.Drifts))
		for name := range td.Drifts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "task %d  %-16s live %s  drift %s", td.Task, name,
				num(td.Metrics[name]), num(td.Drifts[name]))
			if thr := thresholds[name]; thr > 0 {
				fmt.Fprintf(&b, "  threshold %.5f", thr)
			}
			b.WriteByte('\n')
		}
	}
	armed := false
	for _, thr := range thresholds {
		if thr > 0 {
			armed = true
		}
	}
	if armed {
		fmt.Fprintf(&b, "max ENCE drift %.5f — rebuild recommended: %v\n", res.Drift, res.RebuildRecommended)
	} else {
		fmt.Fprintf(&b, "max ENCE drift %.5f (no threshold armed)\n", res.Drift)
	}
	return b.String()
}

// buildTimings renders the build/train wall-time line, with the
// worker budget and the parallel speedup the training pool achieved
// (summed per-task CPU time over wall time) when tasks overlapped.
// TrainWorkers is the build's worker *budget*; the task-level speedup
// ratio is only meaningful when more than one task shared it (a
// single-task build spends the budget inside the model's forward
// passes, where per-task CPU ≈ wall time by construction).
func buildTimings(idx *fairindex.Index, total time.Duration) string {
	line := fmt.Sprintf("timings: total %v (partition %v, final training %v",
		total.Round(time.Millisecond), idx.BuildTime().Round(time.Millisecond),
		idx.TrainTime().Round(time.Millisecond))
	w := idx.TrainWorkers()
	if len(idx.Tasks()) > 1 && w > 1 && idx.TrainTime() > 0 {
		speedup := float64(idx.TrainCPUTime()) / float64(idx.TrainTime())
		line += fmt.Sprintf(" across %d workers, speedup %.2fx", w, speedup)
	} else if w == 1 {
		line += " on 1 worker"
	} else {
		line += fmt.Sprintf(", worker budget %d", w)
	}
	return line + ")\n"
}

// runQueryCmd answers region queries against a saved index: range
// (window → intersecting neighborhoods), knn (point → k nearest
// neighborhoods) and stats (window → aggregated fairness report).
func runQueryCmd(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("query: a subcommand is required: range|knn|stats")
	}
	op, rest := args[0], args[1:]
	fs := flag.NewFlagSet("query "+op, flag.ExitOnError)
	minLat := fs.Float64("minlat", math.NaN(), "window min latitude (range/stats)")
	maxLat := fs.Float64("maxlat", math.NaN(), "window max latitude (range/stats)")
	minLon := fs.Float64("minlon", math.NaN(), "window min longitude (range/stats)")
	maxLon := fs.Float64("maxlon", math.NaN(), "window max longitude (range/stats)")
	lat := fs.Float64("lat", math.NaN(), "query latitude (knn)")
	lon := fs.Float64("lon", math.NaN(), "query longitude (knn)")
	k := fs.Int("k", 5, "number of nearest neighborhoods (knn)")
	task := fs.Int("task", 0, "label task (stats)")
	regionsFlag := fs.String("regions", "", "comma-separated region ids (stats; alternative to a window)")
	metricsFlag := fs.String("metrics", "", "comma-separated fairness metrics to evaluate over the window, or \"all\" (stats)")
	indexPath := fs.String("index", "", "serialized index file (or pass it positionally)")
	switch op {
	case "range", "knn", "stats":
	default:
		return fmt.Errorf("query: unknown subcommand %q (want range|knn|stats)", op)
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	path := *indexPath
	switch {
	case fs.NArg() > 1:
		return fmt.Errorf("query %s: exactly one index file is required, got %d", op, fs.NArg())
	case fs.NArg() == 1 && path != "":
		return fmt.Errorf("query %s: both -index %s and positional %s given", op, path, fs.Arg(0))
	case fs.NArg() == 1:
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("query %s: an index file is required (-index or positional)", op)
	}
	idxp, err := fairindex.LoadIndex(path)
	if err != nil {
		return err
	}
	idx := *idxp

	window := func() (fairindex.BBox, error) {
		box := fairindex.BBox{MinLat: *minLat, MinLon: *minLon, MaxLat: *maxLat, MaxLon: *maxLon}
		for _, v := range []float64{*minLat, *maxLat, *minLon, *maxLon} {
			if math.IsNaN(v) {
				return box, fmt.Errorf("query %s: a full window (-minlat/-maxlat/-minlon/-maxlon) is required", op)
			}
		}
		return box, nil
	}

	switch op {
	case "range":
		box, err := window()
		if err != nil {
			return err
		}
		overlaps, err := idx.RangeQuery(box)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d of %d neighborhoods intersect the window\n", len(overlaps), idx.NumRegions())
		for _, ov := range overlaps {
			fmt.Fprintf(w, "  region %-4d cells %-5d fraction %.4f\n", ov.Region, ov.Cells, ov.Fraction)
		}
	case "knn":
		if math.IsNaN(*lat) || math.IsNaN(*lon) {
			return fmt.Errorf("query knn: -lat and -lon are required")
		}
		neighbors, err := idx.NearestRegions(*lat, *lon, *k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d nearest neighborhoods to (%v, %v):\n", len(neighbors), *lat, *lon)
		for i, nd := range neighbors {
			fmt.Fprintf(w, "  %2d. region %-4d distance %.5f°\n", i+1, nd.Region, nd.Distance)
		}
	case "stats":
		windowGiven := false
		for _, v := range []float64{*minLat, *maxLat, *minLon, *maxLon} {
			if !math.IsNaN(v) {
				windowGiven = true
			}
		}
		var regions []int
		if *regionsFlag != "" {
			if windowGiven {
				return fmt.Errorf("query stats: give -regions or a window, not both")
			}
			for _, part := range strings.Split(*regionsFlag, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return fmt.Errorf("query stats: -regions entry %q: %v", part, err)
				}
				regions = append(regions, id)
			}
		} else {
			box, err := window()
			if err != nil {
				return fmt.Errorf("query stats: give -regions or a window: %w", err)
			}
			overlaps, err := idx.RangeQuery(box)
			if err != nil {
				return err
			}
			for _, ov := range overlaps {
				regions = append(regions, ov.Region)
			}
		}
		var ws fairindex.WindowStats
		if *metricsFlag != "" {
			var names []string // empty = every registered metric
			if !strings.EqualFold(*metricsFlag, "all") {
				for _, part := range strings.Split(*metricsFlag, ",") {
					if part = strings.TrimSpace(part); part != "" {
						names = append(names, part)
					}
				}
			}
			ws, err = idx.GroupStatsMetrics(*task, regions, names...)
		} else {
			ws, err = idx.GroupStats(*task, regions)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "window of %d neighborhoods, population %d (task %d)\n", len(ws.Regions), ws.Count, ws.Task)
		fmt.Fprintf(w, "  ENCE %.5f  miscalibration %.4f  calibration ratio %.4f\n", ws.ENCE, ws.Miscal, ws.CalRatio)
		fmt.Fprintf(w, "  mean confidence %.4f  positive rate %.4f\n", ws.MeanConf, ws.PosRate)
		if ws.Metrics != nil {
			names := make([]string, 0, len(ws.Metrics))
			for name := range ws.Metrics {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if v := ws.Metrics[name]; math.IsNaN(v) {
					fmt.Fprintf(w, "  metric %-16s n/a\n", name)
				} else {
					fmt.Fprintf(w, "  metric %-16s %.5f\n", name, v)
				}
			}
		}
		for _, rs := range ws.Regions {
			fmt.Fprintf(w, "  region %-4d pop %-5d calibration %.3f  miscal %.4f\n", rs.Region, rs.Count, rs.CalRatio, rs.Miscal)
		}
	}
	return nil
}

// indexSpec is one [name=]path serve argument.
type indexSpec struct {
	name, path string
}

// parseIndexSpec splits a [name=]path argument; the name defaults to
// the file base without the .fidx extension.
func parseIndexSpec(arg string) (indexSpec, error) {
	spec := indexSpec{path: arg}
	if name, path, ok := strings.Cut(arg, "="); ok {
		spec.name, spec.path = name, path
	}
	if spec.path == "" {
		return spec, fmt.Errorf("serve: empty index path in %q", arg)
	}
	if spec.name == "" {
		spec.name = strings.TrimSuffix(filepath.Base(spec.path), registry.Ext)
	}
	if spec.name == "" {
		return spec, fmt.Errorf("serve: cannot derive an index name from %q", arg)
	}
	return spec, nil
}

// runServeCmd loads one or more saved Indexes and serves them — as a
// concurrent HTTP/JSON service by default, or as the legacy one-shot
// CSV resolver when -csv (or its old alias -points) is given.
func runServeCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	httpAddr := fs.String("http", ":8080", "HTTP listen address")
	var specs []string
	fs.Func("index", "index artifact as [name=]path (repeatable; positional arguments are equivalent)",
		func(v string) error { specs = append(specs, v); return nil })
	dir := fs.String("dir", "", "serve every *.fidx artifact in this directory (rescanned on reload)")
	maxIndexes := fs.Int("max-indexes", 0, "bound on concurrently resident indexes, LRU-evicted (0 = unlimited)")
	defName := fs.String("default", "", "catalog entry the unprefixed /v1 routes resolve to (default: the sole entry)")
	driftThr := fs.Float64("drift-threshold", 0, "ENCE drift at which an appended-to index advertises rebuild_recommended (0 = monitor without recommending)")
	driftMetrics := map[string]float64{}
	fs.Func("drift-metric", "metric=threshold to arm on every served index, e.g. stat_parity=0.05 (repeatable; layers on -drift-threshold)",
		func(v string) error { return parseDriftMetric(v, driftMetrics) })
	rebuildSrc := fs.String("rebuild-source", "", "run the drift-rebuild controller in-process, rebuilding candidates from this CSV (or <dir>/<name>.csv per entry)")
	rebuildBudgets := map[string]float64{}
	fs.Func("rebuild-budget", "metric=delta promotion budget for the rebuild gate, e.g. ence=0.01 (repeatable; default ence=0.01 cal_ratio=0.05)",
		func(v string) error { return parseDriftMetric(v, rebuildBudgets) })
	csvPoints := fs.String("csv", "", "legacy one-shot mode: resolve this points CSV (id, lat, lon) and exit")
	points := fs.String("points", "", "alias for -csv (deprecated)")
	out := fs.String("out", "", "CSV mode: output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs = append(specs, fs.Args()...)
	entries := make([]indexSpec, len(specs))
	for i, arg := range specs {
		var err error
		if entries[i], err = parseIndexSpec(arg); err != nil {
			return err
		}
	}

	if pointsPath := cmp.Or(*csvPoints, *points); pointsPath != "" {
		if *dir != "" || len(entries) != 1 {
			return fmt.Errorf("serve: CSV mode needs exactly one index file, got %d (-dir not supported)", len(entries))
		}
		return serveCSV(entries[0].path, pointsPath, *out)
	}
	if *dir == "" && len(entries) == 0 {
		return fmt.Errorf("serve: at least one index file (-index, positional) or -dir is required")
	}

	srv, err := newServeServer(entries, *dir, *maxIndexes, *defName, *driftThr, driftMetrics)
	if err != nil {
		return err
	}
	if len(rebuildBudgets) > 0 && *rebuildSrc == "" {
		return fmt.Errorf("serve: -rebuild-budget needs -rebuild-source")
	}
	if *rebuildSrc != "" {
		reg := srv.Registry()
		var ctrlOpts []rebuild.Option
		if len(rebuildBudgets) > 0 {
			ctrlOpts = append(ctrlOpts, rebuild.WithBudgets(rebuildBudgets))
		}
		ctrl, err := rebuild.New(reg, rebuildSourceFn(reg, *rebuildSrc), ctrlOpts...)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		ctrl.Bind()
		defer ctrl.Close()
		srv.SetRebuilder(ctrl)
		fmt.Printf("rebuild controller armed: source %s, budgets %s\n", *rebuildSrc, budgetLine(rebuildBudgets))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveHTTP(ctx, srv, *httpAddr, nil)
}

// newServeServer assembles the index catalog from explicit entries
// and/or a scanned artifact directory. Explicit files must exist
// (fail fast at boot); directory entries load lazily on first use.
func newServeServer(entries []indexSpec, dir string, maxIndexes int, defName string, driftThr float64, driftMetrics map[string]float64) (*server.Server, error) {
	var regOpts []registry.Option
	if dir != "" {
		regOpts = append(regOpts, registry.WithDir(dir))
	}
	if maxIndexes > 0 {
		regOpts = append(regOpts, registry.WithMaxLoaded(maxIndexes))
	}
	if defName != "" {
		regOpts = append(regOpts, registry.WithDefault(defName))
	}
	if driftThr > 0 {
		regOpts = append(regOpts, registry.WithDriftThreshold(driftThr))
	}
	if len(driftMetrics) > 0 {
		for name := range driftMetrics {
			if _, ok := fairindex.MetricByName(name); !ok {
				return nil, fmt.Errorf("serve: unknown drift metric %q (registered: %s)",
					name, strings.Join(fairindex.Metrics(), ", "))
			}
		}
		regOpts = append(regOpts, registry.WithDriftThresholds(driftMetrics))
	}
	reg := registry.New(regOpts...)
	for _, e := range entries {
		if _, err := os.Stat(e.path); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if err := reg.Add(e.name, e.path); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if dir != "" {
		if err := reg.Rescan(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("serve: no index artifacts registered (empty -dir?)")
	}
	// Fail fast on the default artifact: a serve whose unprefixed
	// routes can never answer should not boot quietly.
	if name := reg.DefaultName(); name != "" {
		if _, err := reg.Lookup(name); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	return server.NewMulti(reg), nil
}

// serveHTTP runs the concurrent HTTP service until ctx is done,
// hot-reloading the catalog on SIGHUP or POST /v1/reload. onReady,
// when non-nil, observes the bound address (tests bind :0).
func serveHTTP(ctx context.Context, srv *server.Server, addr string, onReady func(net.Addr)) error {
	srv.ReloadOnSignal(ctx)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	reg := srv.Registry()
	def := reg.DefaultName()
	fmt.Printf("serving %d indexes (%d resident) on %s\n", reg.Len(), reg.LoadedCount(), ln.Addr())
	for _, info := range reg.List() {
		line := fmt.Sprintf("  %s [%s]", info.Name, info.State)
		if info.State == registry.StateLoaded {
			line += fmt.Sprintf(": %s over %q, %d neighborhoods, tasks %v (codec v%d)",
				info.Method, info.Dataset, info.Regions, info.Tasks, info.CodecVersion)
		}
		if info.Name == def {
			line += "  <- default"
		}
		fmt.Println(line)
	}
	fmt.Printf("hot reload: kill -HUP %d or POST /v1/reload\n", os.Getpid())
	if onReady != nil {
		onReady(ln.Addr())
	}
	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	}
}

// serveCSV is the legacy one-shot flow: resolve a points CSV against
// the index and write id,lat,lon,region rows.
func serveCSV(indexPath, pointsPath, out string) error {
	idxp, err := fairindex.LoadIndex(indexPath)
	if err != nil {
		return err
	}
	idx := *idxp
	ids, lats, lons, err := readPoints(pointsPath)
	if err != nil {
		return err
	}
	regions, err := idx.LocateBatch(lats, lons)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "lat", "lon", "region"}); err != nil {
		return err
	}
	for i := range ids {
		rec := []string{
			ids[i],
			strconv.FormatFloat(lats[i], 'g', -1, 64),
			strconv.FormatFloat(lons[i], 'g', -1, 64),
			strconv.Itoa(regions[i]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	// Close explicitly so a close-time write-back failure (NFS, disk
	// full) fails the command instead of being swallowed by a defer.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	if out != "" {
		fmt.Printf("resolved %d points against %d neighborhoods (%s over %q), wrote %s\n",
			len(ids), idx.NumRegions(), idx.Method(), idx.DatasetName(), out)
	}
	return nil
}

// readPoints parses an id,lat,lon CSV; a header row is skipped.
func readPoints(path string) (ids []string, lats, lons []float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 3
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	for i, row := range rows {
		lat, latErr := strconv.ParseFloat(row[1], 64)
		lon, lonErr := strconv.ParseFloat(row[2], 64)
		if latErr != nil || lonErr != nil {
			// Only a first row with *both* coordinate fields non-numeric
			// is a header; a single bad field is a data error even on
			// row 1, so malformed points are never silently dropped.
			if i == 0 && latErr != nil && lonErr != nil {
				continue // header row
			}
			return nil, nil, nil, fmt.Errorf("serve: %s row %d: bad coordinates %q,%q", path, i+1, row[1], row[2])
		}
		ids = append(ids, row[0])
		lats = append(lats, lat)
		lons = append(lons, lon)
	}
	if len(ids) == 0 {
		return nil, nil, nil, fmt.Errorf("serve: %s: no points", path)
	}
	return ids, lats, lons, nil
}

// parsePost maps the -post flag onto the pipeline enum.
func parsePost(s string) (pipeline.PostProcess, error) {
	switch s {
	case "none":
		return pipeline.PostNone, nil
	case "platt":
		return pipeline.PostPlatt, nil
	case "isotonic":
		return pipeline.PostIsotonic, nil
	}
	return pipeline.PostNone, fmt.Errorf("unknown post-processing %q", s)
}

// runLegacyReport is the original one-shot experiment flow.
func runLegacyReport(args []string) error {
	fs := flag.NewFlagSet("fairindexctl", flag.ExitOnError)
	in := fs.String("in", "", "input dataset CSV (required)")
	method := fs.String("method", "fair", "partitioning method: fair|median|iterative|multi|gridrw|zipcode|quadtree")
	model := fs.String("model", "logreg", "classifier: logreg|dtree|nb")
	height := fs.Int("height", 8, "tree height")
	task := fs.Int("task", 0, "label task index")
	gridSide := fs.Int("grid", 64, "base grid side length")
	seed := fs.Int64("seed", 11, "split/layout seed")
	minLat := fs.Float64("minlat", 0, "bounding box min latitude (required)")
	maxLat := fs.Float64("maxlat", 0, "bounding box max latitude (required)")
	minLon := fs.Float64("minlon", 0, "bounding box min longitude (required)")
	maxLon := fs.Float64("maxlon", 0, "bounding box max longitude (required)")
	showMap := fs.Bool("map", false, "print an ASCII map of the partition")
	assign := fs.String("assign", "", "write the cell→region assignment CSV to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	box := geo.BBox{MinLat: *minLat, MinLon: *minLon, MaxLat: *maxLat, MaxLon: *maxLon}
	if !box.Valid() {
		return fmt.Errorf("a valid bounding box (-minlat/-maxlat/-minlon/-maxlon) is required")
	}
	grid, err := geo.NewGrid(*gridSide, *gridSide)
	if err != nil {
		return err
	}

	ds, err := loadDataset(*in, grid, box)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(*method, *model, *height, *task, *seed)
	if err != nil {
		return err
	}

	res, err := pipeline.Run(ds, cfg)
	if err != nil {
		return err
	}
	report(ds, res)

	if *showMap {
		fmt.Println("\npartition map (row 0 = south):")
		fmt.Print(render.Partition(res.Partition, 64))
	}
	if *assign != "" {
		if err := writeAssignment(res, *assign); err != nil {
			return err
		}
		fmt.Printf("\nwrote assignment CSV to %s\n", *assign)
	}
	return nil
}

func loadDataset(path string, grid geo.Grid, box geo.BBox) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, path, grid, box)
}

func buildConfig(method, model string, height, task int, seed int64) (pipeline.Config, error) {
	cfg := pipeline.Config{Height: height, Task: task, Seed: seed}
	switch method {
	case "fair":
		cfg.Method = pipeline.MethodFairKD
	case "median":
		cfg.Method = pipeline.MethodMedianKD
	case "iterative":
		cfg.Method = pipeline.MethodIterativeFairKD
	case "multi":
		cfg.Method = pipeline.MethodMultiObjectiveFairKD
	case "gridrw":
		cfg.Method = pipeline.MethodGridReweight
	case "zipcode":
		cfg.Method = pipeline.MethodZipCode
	case "quadtree":
		cfg.Method = pipeline.MethodFairQuadtree
	default:
		return cfg, fmt.Errorf("unknown method %q", method)
	}
	switch model {
	case "logreg":
		cfg.Model = ml.ModelLogReg
	case "dtree":
		cfg.Model = ml.ModelDecisionTree
	case "nb":
		cfg.Model = ml.ModelNaiveBayes
	default:
		return cfg, fmt.Errorf("unknown model %q", model)
	}
	return cfg, nil
}

func report(ds *dataset.Dataset, res *pipeline.Result) {
	fmt.Printf("%s over %q: %d neighborhoods (height %d)\n",
		res.Method, ds.Name, res.NumRegions, res.Height)
	fmt.Printf("build %v, final training %v\n", res.BuildTime, res.TrainTime)
	for _, tr := range res.Tasks {
		fmt.Printf("\ntask %q:\n", tr.TaskName)
		fmt.Printf("  ENCE            %.5f (train %.5f, test %.5f)\n", tr.ENCE, tr.ENCETrain, tr.ENCETest)
		fmt.Printf("  accuracy        %.3f   AUC %.3f\n", tr.Accuracy, tr.AUC)
		fmt.Printf("  miscalibration  train %.4f, test %.4f\n", tr.TrainMiscal, tr.TestMiscal)
		fmt.Println("  most populated neighborhoods:")
		for i, r := range tr.TopNeighborhoods {
			fmt.Printf("    N%-3d pop %-5d calibration %.3f  ECE %.4f\n",
				i+1, r.Count, r.Ratio, r.ECE)
		}
	}
}

func writeAssignment(res *pipeline.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"row", "col", "region"}); err != nil {
		return err
	}
	grid := res.Partition.Grid()
	for row := 0; row < grid.U; row++ {
		for col := 0; col < grid.V; col++ {
			region, err := res.Partition.RegionOfCell(geo.Cell{Row: row, Col: col})
			if err != nil {
				return err
			}
			rec := []string{strconv.Itoa(row), strconv.Itoa(col), strconv.Itoa(region)}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
