package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	fairindex "fairindex"
	"fairindex/internal/rebuild"
	"fairindex/internal/registry"
)

// Exit codes of `fairindexctl rebuild`, so scripts and CI can branch
// on the gate's verdict without parsing output. 0 = promoted (or a
// dry run that would promote), 1 = other errors, 2 = flag errors.
const (
	exitRefused     = 3 // the candidate regressed a budgeted metric
	exitBuildFailed = 4 // producing the candidate failed (source/schema/build)
)

// runRebuildCmd is the one-shot trigger→build→gate→promote cycle over
// a saved artifact: rebuild a candidate from -source with the serving
// artifact's own build recipe, evaluate the fairness gate, and — on a
// promote verdict, unless -dry-run — atomically replace the artifact
// file. The returned exit code distinguishes promoted / refused /
// build-failed.
func runRebuildCmd(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("rebuild", flag.ExitOnError)
	indexPath := fs.String("index", "", "serving index artifact (or pass it positionally)")
	srcPath := fs.String("source", "", "fresh records CSV to rebuild from (required; canonical layout)")
	budgets := map[string]float64{}
	fs.Func("budget", "metric=delta regression budget, e.g. ence=0.01 (repeatable; default ence=0.01 cal_ratio=0.05)",
		func(v string) error { return parseDriftMetric(v, budgets) })
	dryRun := fs.Bool("dry-run", false, "evaluate the gate but never touch the artifact")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	path := *indexPath
	switch {
	case path == "" && fs.NArg() == 1:
		path = fs.Arg(0)
	case path != "" && fs.NArg() == 0:
	default:
		return 1, fmt.Errorf("rebuild: exactly one index file is required (-index or positional)")
	}
	if *srcPath == "" {
		return 1, fmt.Errorf("rebuild: -source is required")
	}
	if len(budgets) == 0 {
		budgets = rebuild.DefaultBudgets()
	}

	serving, err := fairindex.LoadIndex(path)
	if err != nil {
		return 1, err
	}
	src, err := fairindex.OpenCSVSource(*srcPath, serving.DatasetName(), serving.Grid(), serving.Box())
	if err != nil {
		return exitBuildFailed, err
	}
	defer src.Close()
	if err := src.Schema().Compatible(serving.FeatureNames(), serving.TaskNames()); err != nil {
		return exitBuildFailed, err
	}
	candidate, err := fairindex.BuildStream(src, fairindex.WithConfig(serving.Config()))
	if err != nil {
		return exitBuildFailed, err
	}
	dec, err := rebuild.Evaluate(serving, candidate, budgets, nil)
	if err != nil {
		return 1, err
	}
	fmt.Fprint(w, gateTable(dec))
	switch {
	case !dec.Promote:
		fmt.Fprintf(w, "refused: candidate regresses %s beyond budget; %s untouched\n",
			refusedMetrics(dec), path)
		return exitRefused, nil
	case *dryRun:
		fmt.Fprintf(w, "dry run: candidate passes the gate; %s untouched\n", path)
		return 0, nil
	}
	if err := rebuild.PromoteFile(path, candidate); err != nil {
		return 1, err
	}
	fmt.Fprintf(w, "promoted: %s atomically replaced (%d neighborhoods)\n", path, candidate.NumRegions())
	return 0, nil
}

// gateTable renders the gate's evaluation grid, one row per
// (metric, task, probe) cell, in the deterministic order Evaluate
// emits. NaN renders as "n/a", the CLI's spelling of the
// metric-undefined sentinel.
func gateTable(dec rebuild.Decision) string {
	var b strings.Builder
	num := func(v float64) string {
		if math.IsNaN(v) {
			return "     n/a"
		}
		return fmt.Sprintf("%8.5f", v)
	}
	for _, d := range dec.Deltas {
		fmt.Fprintf(&b, "task %d  %-16s serving %s  candidate %s  delta %s  budget %.5f",
			d.Task, d.Metric, num(d.Serving), num(d.Candidate), num(d.Delta), d.Budget)
		if d.Exceeded {
			b.WriteString("  EXCEEDED")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// refusedMetrics lists the blocking metrics of a refusal, sorted.
func refusedMetrics(dec rebuild.Decision) string {
	names := make([]string, 0, len(dec.Refusals))
	for name := range dec.Refusals {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// budgetLine renders a budget map for the serve boot banner; an empty
// map means the controller's defaults.
func budgetLine(budgets map[string]float64) string {
	if len(budgets) == 0 {
		budgets = rebuild.DefaultBudgets()
	}
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%g", name, budgets[name])
	}
	return strings.Join(parts, " ")
}

// rebuildSourceFn adapts the -rebuild-source flag to the controller's
// source contract: root may be a single CSV file (every entry
// rebuilds from it) or a directory holding one <name>.csv per entry.
// The stream is opened against the serving index's own geometry, so
// the candidate trains on the partitionable grid the gate compares.
func rebuildSourceFn(reg *registry.Registry, root string) rebuild.SourceFunc {
	return func(name string) (fairindex.Source, func() error, error) {
		serving, err := reg.Lookup(name)
		if err != nil {
			return nil, nil, err
		}
		path := root
		if fi, err := os.Stat(root); err == nil && fi.IsDir() {
			path = filepath.Join(root, name+".csv")
		}
		src, err := fairindex.OpenCSVSource(path, serving.DatasetName(), serving.Grid(), serving.Box())
		if err != nil {
			return nil, nil, err
		}
		return src, src.Close, nil
	}
}
