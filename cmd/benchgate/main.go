// Command benchgate compares `go test -bench` output against the
// recorded baseline in BENCH_index.json and fails (exit 1) when a
// watched benchmark regresses beyond the tolerance factor. It is the
// CI guard on the Index serving hot path: later PRs may make Locate,
// LocateBatch, the region queries (RangeQuery, NearestRegions,
// GroupStats) and the multi-index registry lookup faster, but not
// slower.
//
//	go test -run '^$' -bench 'BenchmarkIndex|BenchmarkRegistry' -benchtime 200ms . | tee bench.out
//	go run ./cmd/benchgate -bench bench.out -baseline BENCH_index.json
//
// The default tolerance (2.5x) is deliberately loose: shared CI
// runners are noisy and differ from the machine that recorded the
// baseline, so the gate only catches order-of-magnitude regressions —
// an accidental O(1)→O(log n) hot path, a lock on the read path —
// not few-percent drift. When a benchmark appears multiple times in
// the output (-count > 1), the fastest run is compared, which further
// damps scheduler noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// baselineFile mirrors the BENCH_index.json layout.
type baselineFile struct {
	Description string                   `json:"description"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
}

// baselineEntry is one recorded benchmark; fields beyond ns_per_op
// are documentation and ignored here.
type baselineEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkIndexLocate-8   	49510341	         7.6 ns/op
//
// The -8 GOMAXPROCS suffix is optional and stripped.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// parseBenchOutput extracts the best (minimum) ns/op per benchmark
// name from `go test -bench` output.
func parseBenchOutput(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q: %v", path, sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// run executes the gate; a non-nil error means the job must fail.
func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "`go test -bench` output file (required)")
	basePath := fs.String("baseline", "BENCH_index.json", "baseline JSON file")
	watch := fs.String("watch",
		"BenchmarkIndexLocate,BenchmarkIndexLocateBatch,BenchmarkIndexRangeQuery,BenchmarkIndexNearestRegions,BenchmarkIndexGroupStats,BenchmarkRegistryLookup",
		"comma-separated benchmarks the gate enforces")
	maxRatio := fs.Float64("max-ratio", 2.5, "fail when measured/baseline ns/op exceeds this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" {
		return fmt.Errorf("-bench is required")
	}
	if *maxRatio <= 0 {
		return fmt.Errorf("-max-ratio %v must be positive", *maxRatio)
	}

	blob, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("%s: %v", *basePath, err)
	}
	measured, err := parseBenchOutput(*benchPath)
	if err != nil {
		return err
	}

	var failures []string
	for _, name := range strings.Split(*watch, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		entry, ok := base.Benchmarks[name]
		if !ok || entry.NsPerOp <= 0 {
			return fmt.Errorf("%s: watched benchmark %q has no baseline ns_per_op", *basePath, name)
		}
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("%s: watched benchmark %q missing from output (did the bench run?)", *benchPath, name)
		}
		ratio := got / entry.NsPerOp
		verdict := "ok"
		if ratio > *maxRatio {
			verdict = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g ns/op (%.2fx > %.2fx)",
					name, got, entry.NsPerOp, ratio, *maxRatio))
		}
		fmt.Fprintf(w, "%-32s %12.4g ns/op  baseline %12.4g  ratio %5.2fx  %s\n",
			name, got, entry.NsPerOp, ratio, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("hot-path regression beyond %.2fx:\n  %s",
			*maxRatio, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "benchgate: all watched benchmarks within %.2fx of baseline\n", *maxRatio)
	return nil
}
