// Command benchgate compares `go test -bench` output against the
// recorded baseline in BENCH_index.json and fails (exit 1) when a
// watched benchmark regresses beyond the tolerance factor. It is the
// CI guard on the Index hot paths: later PRs may make Locate,
// LocateBatch, the region queries (RangeQuery, NearestRegions,
// GroupStats), the multi-index registry lookup and the build pipeline
// (BenchmarkIndexBuild, BenchmarkIndexBuild10k — and, in the slow CI
// job, BenchmarkIndexBuild100k) faster, but not slower.
//
//	go test -run '^$' -bench 'BenchmarkIndex|BenchmarkRegistry' -benchtime 200ms . | tee bench.out
//	go run ./cmd/benchgate -bench bench.out -baseline BENCH_index.json
//
// The default time tolerance (2.5x) is deliberately loose: shared CI
// runners are noisy and differ from the machine that recorded the
// baseline, so the gate only catches order-of-magnitude regressions —
// an accidental O(1)→O(log n) hot path, a lock on the read path —
// not few-percent drift. When a benchmark appears multiple times in
// the output (-count > 1), the fastest run is compared, which further
// damps scheduler noise.
//
// With -max-alloc-ratio > 0 the gate additionally enforces allocs/op
// for watched entries whose baseline records allocs_per_op.
// Allocation counts are deterministic — a build that suddenly
// materializes a dense one-hot matrix again jumps orders of magnitude
// — so this ratio can be far tighter than the time one without
// flaking on shared runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// baselineFile mirrors the BENCH_index.json layout.
type baselineFile struct {
	Description string                   `json:"description"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
}

// baselineEntry is one recorded benchmark; fields beyond ns_per_op
// and allocs_per_op are documentation and ignored here. A zero or
// absent allocs_per_op means the entry has no allocation baseline and
// is gated on time only.
type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// measurement is one benchmark's best observed numbers. allocs is -1
// when the output carried no allocation report (benchmarks without
// b.ReportAllocs).
type measurement struct {
	ns     float64
	allocs float64
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkIndexLocate-8   	49510341	         7.6 ns/op
//	BenchmarkIndexBuild-8    	      33	  36579574 ns/op	 2110672 B/op	    2972 allocs/op
//
// The -8 GOMAXPROCS suffix is optional and stripped; B/op and
// allocs/op appear only for benchmarks reporting allocations.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op(?:\s+[0-9.eE+]+ B/op)?(?:\s+([0-9]+) allocs/op)?`)

// parseBenchOutput extracts the best (minimum) ns/op — and, when
// reported, allocs/op — per benchmark name from `go test -bench`
// output. Minima are tracked independently: with -count > 1 the gate
// compares each metric's least noisy run.
func parseBenchOutput(path string) (map[string]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]measurement)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q: %v", path, sc.Text(), err)
		}
		allocs := -1.0
		if m[3] != "" {
			if allocs, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("%s: bad allocs/op in %q: %v", path, sc.Text(), err)
			}
		}
		prev, seen := out[m[1]]
		if !seen {
			out[m[1]] = measurement{ns: ns, allocs: allocs}
			continue
		}
		if ns < prev.ns {
			prev.ns = ns
		}
		if allocs >= 0 && (prev.allocs < 0 || allocs < prev.allocs) {
			prev.allocs = allocs
		}
		out[m[1]] = prev
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// run executes the gate; a non-nil error means the job must fail.
func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "`go test -bench` output file (required)")
	basePath := fs.String("baseline", "BENCH_index.json", "baseline JSON file")
	watch := fs.String("watch",
		"BenchmarkIndexLocate,BenchmarkIndexLocateBatch,BenchmarkIndexRangeQuery,BenchmarkIndexNearestRegions,BenchmarkIndexGroupStats,BenchmarkIndexGroupStatsMetrics,BenchmarkRegistryLookup,BenchmarkIndexBuild,BenchmarkIndexBuild10k,BenchmarkShardMergeGroupStats,BenchmarkRouterLocateBatch,BenchmarkRouterLocateFailover,BenchmarkRebuildGate",
		"comma-separated benchmarks the gate enforces")
	maxRatio := fs.Float64("max-ratio", 2.5, "fail when measured/baseline ns/op exceeds this")
	maxAllocRatio := fs.Float64("max-alloc-ratio", 0,
		"also fail when measured/baseline allocs/op exceeds this, for watched entries with a recorded allocs_per_op (0 disables; allocation counts are deterministic, so this can be much tighter than -max-ratio)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" {
		return fmt.Errorf("-bench is required")
	}
	if *maxRatio <= 0 {
		return fmt.Errorf("-max-ratio %v must be positive", *maxRatio)
	}
	if *maxAllocRatio < 0 {
		return fmt.Errorf("-max-alloc-ratio %v must be zero or positive", *maxAllocRatio)
	}

	blob, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("%s: %v", *basePath, err)
	}
	measured, err := parseBenchOutput(*benchPath)
	if err != nil {
		return err
	}

	var failures []string
	for _, name := range strings.Split(*watch, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		entry, ok := base.Benchmarks[name]
		if !ok || entry.NsPerOp <= 0 {
			return fmt.Errorf("%s: watched benchmark %q has no baseline ns_per_op", *basePath, name)
		}
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("%s: watched benchmark %q missing from output (did the bench run?)", *benchPath, name)
		}
		ratio := got.ns / entry.NsPerOp
		verdict := "ok"
		if ratio > *maxRatio {
			verdict = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g ns/op (%.2fx > %.2fx)",
					name, got.ns, entry.NsPerOp, ratio, *maxRatio))
		}
		fmt.Fprintf(w, "%-32s %12.4g ns/op  baseline %12.4g  ratio %5.2fx  %s\n",
			name, got.ns, entry.NsPerOp, ratio, verdict)
		if *maxAllocRatio > 0 && entry.AllocsPerOp > 0 {
			if got.allocs < 0 {
				return fmt.Errorf("%s: watched benchmark %q has an allocs_per_op baseline but reported no allocs/op (missing b.ReportAllocs?)", *benchPath, name)
			}
			aRatio := got.allocs / entry.AllocsPerOp
			aVerdict := "ok"
			if aRatio > *maxAllocRatio {
				aVerdict = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %.4g allocs/op vs baseline %.4g allocs/op (%.2fx > %.2fx)",
						name, got.allocs, entry.AllocsPerOp, aRatio, *maxAllocRatio))
			}
			fmt.Fprintf(w, "%-32s %12.4g allocs/op baseline %9.4g  ratio %5.2fx  %s\n",
				name, got.allocs, entry.AllocsPerOp, aRatio, aVerdict)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("hot-path regression beyond tolerance:\n  %s",
			strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "benchgate: all watched benchmarks within tolerance (ns %.2fx", *maxRatio)
	if *maxAllocRatio > 0 {
		fmt.Fprintf(w, ", allocs %.2fx", *maxAllocRatio)
	}
	fmt.Fprintf(w, ")\n")
	return nil
}
