package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFiles drops a baseline JSON and a bench output into a temp dir.
func writeFiles(t *testing.T, baseline, bench string) (basePath, benchPath string) {
	t.Helper()
	dir := t.TempDir()
	basePath = filepath.Join(dir, "BENCH_index.json")
	benchPath = filepath.Join(dir, "bench.out")
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPath, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	return basePath, benchPath
}

const baseline = `{
  "benchmarks": {
    "BenchmarkIndexLocate": {"ns_per_op": 8.0},
    "BenchmarkIndexLocateBatch": {"ns_per_op": 8000},
    "BenchmarkIndexRangeQuery": {"ns_per_op": 3000},
    "BenchmarkIndexNearestRegions": {"ns_per_op": 1000},
    "BenchmarkIndexGroupStats": {"ns_per_op": 3000},
    "BenchmarkIndexGroupStatsMetrics": {"ns_per_op": 9500, "allocs_per_op": 7},
    "BenchmarkRegistryLookup": {"ns_per_op": 18},
    "BenchmarkIndexBuild": {"ns_per_op": 36000000, "allocs_per_op": 3000},
    "BenchmarkIndexBuild10k": {"ns_per_op": 150000000, "allocs_per_op": 12000},
    "BenchmarkShardMergeGroupStats": {"ns_per_op": 12500, "allocs_per_op": 3},
    "BenchmarkRouterLocateBatch": {"ns_per_op": 2300000, "allocs_per_op": 900},
    "BenchmarkRouterLocateFailover": {"ns_per_op": 114000, "allocs_per_op": 222},
    "BenchmarkRebuildGate": {"ns_per_op": 32000, "allocs_per_op": 39}
  }
}`

// healthyQueries are in-tolerance result lines for the query-engine,
// registry and build benchmarks, appended to fixtures that exercise
// the other entries.
const healthyQueries = `BenchmarkIndexRangeQuery-4  	  100	      3100 ns/op
BenchmarkIndexNearestRegions-4 	  100	      1050 ns/op
BenchmarkIndexGroupStats-4  	  100	      3050 ns/op
BenchmarkIndexGroupStatsMetrics-4  	  100	      9600 ns/op	   10688 B/op	       7 allocs/op
BenchmarkRegistryLookup-4  	 1000	        19 ns/op
BenchmarkIndexBuild-4  	   10	  37000000 ns/op	 2110672 B/op	    2980 allocs/op
BenchmarkIndexBuild10k-4  	    5	 155000000 ns/op	 5941552 B/op	   11900 allocs/op
BenchmarkShardMergeGroupStats-4  	  100	     12800 ns/op	   16432 B/op	       3 allocs/op
BenchmarkRouterLocateBatch-4  	   50	   2350000 ns/op	  401822 B/op	     895 allocs/op
BenchmarkRouterLocateFailover-4  	  100	    118000 ns/op	   27210 B/op	     222 allocs/op
BenchmarkRebuildGate-4  	  100	     32500 ns/op	   72672 B/op	      39 allocs/op
`

// gate runs the comparator against the given bench output.
func gate(t *testing.T, baselineJSON, bench string, extra ...string) error {
	t.Helper()
	basePath, benchPath := writeFiles(t, baselineJSON, bench)
	args := append([]string{"-bench", benchPath, "-baseline", basePath}, extra...)
	return run(args, os.Stdout)
}

func TestGatePassesWithinTolerance(t *testing.T) {
	bench := `goos: linux
BenchmarkIndexLocate-4    	49510341	         9.5 ns/op
BenchmarkIndexLocateBatch-4 	   57247	      9100 ns/op
` + healthyQueries + `PASS
`
	if err := gate(t, baseline, bench); err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
}

// TestGateFailsOnInjectedSlowdown is the gate's own acceptance test:
// a 10x slowdown on a watched benchmark must fail the job.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	bench := `BenchmarkIndexLocate-4    	49510341	        80 ns/op
BenchmarkIndexLocateBatch-4 	   57247	      8100 ns/op
` + healthyQueries
	err := gate(t, baseline, bench)
	if err == nil {
		t.Fatal("10x Locate slowdown passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkIndexLocate") {
		t.Errorf("failure does not name the regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkIndexLocateBatch") {
		t.Errorf("failure names a healthy benchmark: %v", err)
	}
}

func TestGateFailsOnBatchSlowdown(t *testing.T) {
	bench := `BenchmarkIndexLocate-4    	49510341	         8.2 ns/op
BenchmarkIndexLocateBatch-4 	    5724	     81000 ns/op
` + healthyQueries
	if err := gate(t, baseline, bench); err == nil {
		t.Fatal("10x LocateBatch slowdown passed the gate")
	}
}

// TestGateTakesFastestRun: with -count > 1 the minimum ns/op is
// compared, damping one-off scheduler noise.
func TestGateTakesFastestRun(t *testing.T) {
	bench := `BenchmarkIndexLocate-4    	49510341	       120 ns/op
BenchmarkIndexLocate-4    	49510341	         8.1 ns/op
BenchmarkIndexLocateBatch-4 	   57247	      8100 ns/op
` + healthyQueries
	if err := gate(t, baseline, bench); err != nil {
		t.Fatalf("fastest-run selection failed: %v", err)
	}
}

func TestGateMissingWatchedBenchmark(t *testing.T) {
	bench := `BenchmarkIndexLocate-4    	49510341	         8.1 ns/op
`
	if err := gate(t, baseline, bench); err == nil {
		t.Fatal("missing watched benchmark passed the gate")
	}
}

func TestGateMissingBaselineEntry(t *testing.T) {
	bench := `BenchmarkIndexLocate-4  	10	 8.1 ns/op
BenchmarkIndexLocateBatch-4 	10	 8100 ns/op
`
	thin := `{"benchmarks": {"BenchmarkIndexLocate": {"ns_per_op": 8.0}}}`
	if err := gate(t, thin, bench); err == nil {
		t.Fatal("baseline without a watched entry passed the gate")
	}
}

func TestGateCustomWatchAndRatio(t *testing.T) {
	bench := `BenchmarkIndexScore-4  	10	 5000 ns/op
`
	custom := `{"benchmarks": {"BenchmarkIndexScore": {"ns_per_op": 1400}}}`
	// 5000/1400 ≈ 3.6x: fails at the default 2.5 but passes at 4.
	if err := gate(t, custom, bench, "-watch", "BenchmarkIndexScore"); err == nil {
		t.Fatal("3.6x regression passed at max-ratio 2.5")
	}
	if err := gate(t, custom, bench, "-watch", "BenchmarkIndexScore", "-max-ratio", "4"); err != nil {
		t.Fatalf("3.6x regression failed at max-ratio 4: %v", err)
	}
}

func TestGateBadInputs(t *testing.T) {
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("expected error without -bench")
	}
	if err := gate(t, `not json`, "BenchmarkIndexLocate-4 10 8 ns/op\n"); err == nil {
		t.Error("expected error for corrupt baseline")
	}
	if err := gate(t, baseline, "no bench lines here\n"); err == nil {
		t.Error("expected error for benchless output")
	}
	if err := gate(t, baseline, "BenchmarkIndexLocate-4 10 8 ns/op\n", "-max-ratio", "-1"); err == nil {
		t.Error("expected error for non-positive ratio")
	}
}

// TestGateAllocs: with -max-alloc-ratio the gate enforces allocs/op
// for entries carrying an allocation baseline, and an allocation blowup
// fails even when ns/op is within tolerance.
func TestGateAllocs(t *testing.T) {
	healthy := `BenchmarkIndexLocate-4    	49510341	         8.1 ns/op
BenchmarkIndexLocateBatch-4 	   57247	      8100 ns/op
` + healthyQueries
	if err := gate(t, baseline, healthy, "-max-alloc-ratio", "2"); err != nil {
		t.Fatalf("healthy allocs failed the gate: %v", err)
	}
	// 90000 allocs on a 3000 baseline: 30x, while time stays healthy.
	blown := strings.Replace(healthy,
		"BenchmarkIndexBuild-4  	   10	  37000000 ns/op	 2110672 B/op	    2980 allocs/op",
		"BenchmarkIndexBuild-4  	   10	  37000000 ns/op	 9110672 B/op	   90000 allocs/op", 1)
	err := gate(t, baseline, blown, "-max-alloc-ratio", "2")
	if err == nil {
		t.Fatal("30x allocation regression passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "BenchmarkIndexBuild") {
		t.Errorf("failure does not name the allocation regression: %v", err)
	}
	// Without the flag, allocations are not gated.
	if err := gate(t, baseline, blown); err != nil {
		t.Fatalf("alloc gating ran without -max-alloc-ratio: %v", err)
	}
	// A baselined entry that stops reporting allocations is an error.
	silent := strings.Replace(healthy,
		"BenchmarkIndexBuild-4  	   10	  37000000 ns/op	 2110672 B/op	    2980 allocs/op",
		"BenchmarkIndexBuild-4  	   10	  37000000 ns/op", 1)
	if err := gate(t, baseline, silent, "-max-alloc-ratio", "2"); err == nil {
		t.Fatal("missing allocs/op report passed an alloc-gated run")
	}
	if err := gate(t, baseline, healthy, "-max-alloc-ratio", "-1"); err == nil {
		t.Fatal("negative -max-alloc-ratio accepted")
	}
}

func TestBenchLineParsing(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkIndexLocate-8   \t49510341\t         7.6 ns/op", "BenchmarkIndexLocate", 7.6, true},
		{"BenchmarkIndexLocate   \t100\t         12 ns/op", "BenchmarkIndexLocate", 12, true},
		{"BenchmarkIndexMarshal-2 \t  27072\t     43168 ns/op\t  18632 B/op", "BenchmarkIndexMarshal", 43168, true},
		{"ok  \tfairindex\t0.970s", "", 0, false},
		{"goos: linux", "", 0, false},
	}
	for _, tc := range cases {
		m := benchLine.FindStringSubmatch(tc.line)
		if tc.ok != (m != nil) {
			t.Errorf("%q: matched = %v, want %v", tc.line, m != nil, tc.ok)
			continue
		}
		if m != nil && m[1] != tc.name {
			t.Errorf("%q: name %q, want %q", tc.line, m[1], tc.name)
		}
	}

	// Full allocation-reporting line: allocs/op must land in group 3.
	m := benchLine.FindStringSubmatch("BenchmarkIndexBuild-8 \t      33\t  36579574 ns/op\t 2110672 B/op\t    2972 allocs/op")
	if m == nil || m[1] != "BenchmarkIndexBuild" || m[2] != "36579574" || m[3] != "2972" {
		t.Errorf("allocation line parsed as %v", m)
	}
	// B/op without allocs/op (SetBytes-style output) must not leak into
	// the allocs group.
	m = benchLine.FindStringSubmatch("BenchmarkIndexMarshal-2 \t  27072\t     43168 ns/op\t  18632 B/op")
	if m == nil || m[3] != "" {
		t.Errorf("B/op-only line parsed as %v", m)
	}
}
