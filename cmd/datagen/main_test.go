package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	spec := dataset.Houston()
	spec.NumRecords = 50
	ds, err := dataset.Generate(spec, geo.MustGrid(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "houston.csv")
	if err := writeCSV(ds, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 51 { // header + 50 records
		t.Errorf("lines = %d, want 51", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,lat,lon,") {
		t.Errorf("header = %q", lines[0])
	}
	// Round-trips through the canonical reader.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := dataset.ReadCSV(f, "houston", ds.Grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Errorf("round trip lost records: %d", back.Len())
	}
}

func TestWriteCSVBadPath(t *testing.T) {
	spec := dataset.LA()
	spec.NumRecords = 5
	ds, err := dataset.Generate(spec, geo.MustGrid(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(ds, "/nonexistent-dir/x.csv"); err == nil {
		t.Error("expected error for unwritable path")
	}
}
