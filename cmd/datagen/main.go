// Command datagen writes the synthetic EdGap-like city datasets to
// CSV files so they can be inspected, versioned or fed back through
// cmd/fairindexctl.
//
// Usage:
//
//	datagen [-grid 64] [-dir .] [-records 0]
//
// With -records 0 the paper's record counts are used (LA 1153,
// Houston 966).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	gridSide := flag.Int("grid", 64, "base grid side length (U = V)")
	dir := flag.String("dir", ".", "output directory")
	records := flag.Int("records", 0, "records per city (0 = paper counts)")
	flag.Parse()

	grid, err := geo.NewGrid(*gridSide, *gridSide)
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range []dataset.CitySpec{dataset.LA(), dataset.Houston()} {
		if *records > 0 {
			spec.NumRecords = *records
		}
		ds, err := dataset.Generate(spec, grid)
		if err != nil {
			log.Fatal(err)
		}
		name := strings.ToLower(strings.ReplaceAll(spec.Name, " ", "_")) + ".csv"
		path := filepath.Join(*dir, name)
		if err := writeCSV(ds, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d records, grid %dx%d, box %.2f..%.2f / %.2f..%.2f)\n",
			path, ds.Len(), grid.U, grid.V,
			spec.Box.MinLat, spec.Box.MaxLat, spec.Box.MinLon, spec.Box.MaxLon)
	}
}

func writeCSV(ds *dataset.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSV(ds, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
