package fairindex_test

import (
	"bytes"
	"math"
	"testing"

	fairindex "fairindex"
)

// smallLA generates a reduced city for fast public-API tests.
func smallLA(t *testing.T) *fairindex.Dataset {
	t.Helper()
	spec := fairindex.LA()
	spec.NumRecords = 400
	ds, err := fairindex.GenerateCity(spec, fairindex.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicQuickstartFlow(t *testing.T) {
	ds := smallLA(t)
	res, err := fairindex.Run(ds, fairindex.Config{
		Method: fairindex.MethodFairKD,
		Height: 5,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRegions < 2 {
		t.Fatalf("regions = %d", res.NumRegions)
	}
	tr := res.Tasks[0]
	if tr.ENCE < 0 || tr.ENCE > 1 {
		t.Errorf("ENCE = %v", tr.ENCE)
	}
	if tr.Accuracy <= 0.4 {
		t.Errorf("accuracy = %v", tr.Accuracy)
	}
}

func TestPublicTreeBuilders(t *testing.T) {
	ds := smallLA(t)
	cells := ds.Cells()
	dev := make([]float64, len(cells))
	for i := range dev {
		dev[i] = float64(i%7)/10 - 0.3
	}
	median, err := fairindex.BuildMedianKDTree(ds.Grid, cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := fairindex.BuildFairKDTree(ds.Grid, cells, dev, fairindex.TreeConfig{Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range []*fairindex.Tree{median, fair} {
		p, err := tree.Partition()
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRegions() < 2 {
			t.Errorf("regions = %d", p.NumRegions())
		}
	}
	iter, err := fairindex.BuildIterativeFairKDTree(ds.Grid, cells, fairindex.TreeConfig{Height: 3},
		func(*fairindex.Partition) ([]float64, error) { return dev, nil })
	if err != nil {
		t.Fatal(err)
	}
	if iter.NumLeaves() != 8 {
		t.Errorf("iterative leaves = %d, want 8", iter.NumLeaves())
	}
	qt, err := fairindex.BuildFairQuadtree(ds.Grid, cells, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if qt.NumLeaves() < 4 {
		t.Errorf("quadtree leaves = %d", qt.NumLeaves())
	}
	curve, err := fairindex.BuildFairCurve(ds.Grid, cells, dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if curve.NumRegions() != 16 {
		t.Errorf("curve regions = %d, want 16", curve.NumRegions())
	}
	order, err := fairindex.HilbertOrder(ds.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != ds.Grid.NumCells() {
		t.Errorf("Hilbert order covers %d cells, want %d", len(order), ds.Grid.NumCells())
	}
}

func TestPublicMultiObjective(t *testing.T) {
	ds := smallLA(t)
	cells := ds.Cells()
	n := len(cells)
	scores := make([]float64, n)
	labels0, err := ds.Labels(0)
	if err != nil {
		t.Fatal(err)
	}
	labels1, err := ds.Labels(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		scores[i] = 0.5
	}
	tree, err := fairindex.BuildMultiObjectiveFairKDTree(ds.Grid, cells,
		[][]float64{scores, scores}, [][]int{labels0, labels1},
		[]float64{0.5, 0.5}, fairindex.TreeConfig{Height: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 8 {
		t.Errorf("leaves = %d", tree.NumLeaves())
	}
}

func TestPublicMetrics(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	groups := []int{0, 0, 1, 1}
	ence, err := fairindex.ENCE(scores, labels, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ence < 0 {
		t.Errorf("ENCE = %v", ence)
	}
	ece, err := fairindex.ECE(scores, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece < 0 || ece > 1 {
		t.Errorf("ECE = %v", ece)
	}
	ratio, ok := fairindex.CalibrationRatio(scores, labels)
	if !ok || math.Abs(ratio-1) > 1e-9 {
		t.Errorf("ratio = %v ok=%v, want 1", ratio, ok)
	}
	if m := fairindex.Miscalibration(scores, labels); m != 0 {
		t.Errorf("miscalibration = %v, want 0", m)
	}
	reports, err := fairindex.TopNeighborhoods(scores, labels, groups, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Errorf("reports = %d", len(reports))
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	ds := smallLA(t)
	var buf bytes.Buffer
	if err := fairindex.WriteDatasetCSV(ds, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := fairindex.ReadDatasetCSV(&buf, ds.Name, ds.Grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Errorf("round trip: %d vs %d records", back.Len(), ds.Len())
	}
}

func TestPublicPartitioners(t *testing.T) {
	grid := fairindex.MustGrid(16, 16)
	up, err := fairindex.UniformGridPartition(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if up.NumRegions() != 16 {
		t.Errorf("uniform regions = %d", up.NumRegions())
	}
	vp, err := fairindex.VoronoiPartition(grid, 9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vp.NumRegions() != 9 {
		t.Errorf("voronoi regions = %d", vp.NumRegions())
	}
}

func TestPublicClassifierFactory(t *testing.T) {
	for _, kind := range []fairindex.ModelKind{
		fairindex.ModelLogReg, fairindex.ModelDecisionTree, fairindex.ModelNaiveBayes,
	} {
		clf, err := fairindex.NewClassifier(kind)
		if err != nil {
			t.Fatal(err)
		}
		X := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
		y := []int{0, 1, 0, 1}
		if err := clf.Fit(X, y, nil); err != nil {
			t.Fatal(err)
		}
		scores, err := clf.PredictProba(X)
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) != 4 {
			t.Errorf("%v: scores = %d", kind, len(scores))
		}
	}
}

func TestPublicMapperRoundTrip(t *testing.T) {
	grid := fairindex.MustGrid(8, 8)
	box := fairindex.BBox{MinLat: 0, MinLon: 0, MaxLat: 8, MaxLon: 8}
	m, err := fairindex.NewMapper(grid, box)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CellOf(3.5, 6.5); got != (fairindex.Cell{Row: 3, Col: 6}) {
		t.Errorf("CellOf = %v", got)
	}
}
