package partition

import (
	"errors"
	"fmt"

	"fairindex/internal/binenc"
	"fairindex/internal/geo"
)

// ErrDecode reports corrupt partition bytes.
var ErrDecode = errors.New("partition: cannot decode")

// CellRegions returns a copy of the flat row-major cell→region lookup
// table. Index it with Grid().Index(cell) for an O(1), tree-free
// region lookup — this is the table the serving hot path precomputes.
func (p *Partition) CellRegions() []int {
	return append([]int(nil), p.cellRegion...)
}

// AppendBinary appends the partition's versionless binary encoding:
// grid dimensions, region count, the cell→region table and the region
// centroids (stored bit-exact so a decoded partition reproduces the
// exact centroid encoding the models were trained with). The caller
// owns versioning of the enclosing container.
func (p *Partition) AppendBinary(b []byte) []byte {
	b = binenc.AppendVarint(b, int64(p.grid.U))
	b = binenc.AppendVarint(b, int64(p.grid.V))
	b = binenc.AppendVarint(b, int64(p.numRegions))
	b = binenc.AppendInts(b, p.cellRegion)
	centroids := p.Centroids()
	flat := make([]float64, 0, 2*len(centroids))
	for _, c := range centroids {
		flat = append(flat, c[0], c[1])
	}
	return binenc.AppendFloat64s(b, flat)
}

// DecodeBinary reads a partition written by AppendBinary from r and
// returns it along with the stored centroids. The decoded assignment
// is fully re-validated through New.
func DecodeBinary(r *binenc.Reader) (*Partition, [][2]float64, error) {
	u, v := r.Int(), r.Int()
	numRegions := r.Int()
	cellRegion := r.Ints()
	flat := r.Float64s()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	grid, err := geo.NewGrid(u, v)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	p, err := New(grid, numRegions, cellRegion)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if len(flat) != 2*numRegions {
		return nil, nil, fmt.Errorf("%w: %d centroid values for %d regions", ErrDecode, len(flat), numRegions)
	}
	centroids := make([][2]float64, numRegions)
	for i := range centroids {
		centroids[i] = [2]float64{flat[2*i], flat[2*i+1]}
	}
	return p, centroids, nil
}
