package partition

import (
	"fmt"

	"fairindex/internal/geo"
)

// UniformGrid partitions the grid into 2^height equal blocks,
// alternating the doubling between rows and columns exactly like a
// KD-tree of the same height, so the "Grid (Reweighting)" baseline of
// §5.1 is compared at matching granularity. Block counts are capped
// by the grid dimensions (a block is never smaller than one cell).
func UniformGrid(grid geo.Grid, height int) (*Partition, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	if height < 0 {
		return nil, fmt.Errorf("partition: height must be >= 0, got %d", height)
	}
	rowBlocks := 1 << ((height + 1) / 2) // rows split first, like the trees
	colBlocks := 1 << (height / 2)
	if rowBlocks > grid.U {
		rowBlocks = grid.U
	}
	if colBlocks > grid.V {
		colBlocks = grid.V
	}
	cr := make([]int, grid.NumCells())
	for i := range cr {
		c := grid.CellAt(i)
		br := c.Row * rowBlocks / grid.U
		bc := c.Col * colBlocks / grid.V
		cr[i] = br*colBlocks + bc
	}
	return New(grid, rowBlocks*colBlocks, cr)
}
