package partition

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fairindex/internal/geo"
)

func TestNewValidation(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	tests := []struct {
		name       string
		numRegions int
		cr         []int
		wantErr    error
	}{
		{"valid", 2, []int{0, 0, 1, 1}, nil},
		{"wrong length", 2, []int{0, 1}, ErrWrongLength},
		{"zero regions", 0, []int{0, 0, 0, 0}, nil}, // any error acceptable; checked below
		{"out of range", 2, []int{0, 0, 1, 2}, ErrBadAssignment},
		{"negative id", 2, []int{0, 0, 1, -1}, ErrBadAssignment},
		{"empty region", 3, []int{0, 0, 1, 1}, ErrEmptyRegion},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(grid, tt.numRegions, tt.cr)
			if tt.name == "valid" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("expected error")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("error %v, want %v", err, tt.wantErr)
			}
		})
	}
	if _, err := New(geo.Grid{}, 1, nil); !errors.Is(err, geo.ErrBadGrid) {
		t.Errorf("bad grid error = %v", err)
	}
}

func TestNewCopiesAssignment(t *testing.T) {
	grid := geo.MustGrid(1, 2)
	cr := []int{0, 1}
	p, err := New(grid, 2, cr)
	if err != nil {
		t.Fatal(err)
	}
	cr[0] = 1
	r, err := p.RegionOfCell(geo.Cell{Row: 0, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Error("New did not copy the assignment slice")
	}
}

func TestSingle(t *testing.T) {
	grid := geo.MustGrid(3, 5)
	p, err := Single(grid)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 1 {
		t.Fatalf("regions = %d", p.NumRegions())
	}
	counts := p.CellCountsPerRegion()
	if counts[0] != 15 {
		t.Errorf("region size = %d, want 15", counts[0])
	}
	if _, err := Single(geo.Grid{}); err == nil {
		t.Error("expected bad grid error")
	}
}

func TestCellIdentity(t *testing.T) {
	grid := geo.MustGrid(3, 3)
	p, err := CellIdentity(grid)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 9 {
		t.Fatalf("regions = %d, want 9", p.NumRegions())
	}
	for i := 0; i < 9; i++ {
		r, err := p.RegionOfCell(grid.CellAt(i))
		if err != nil {
			t.Fatal(err)
		}
		if r != i {
			t.Errorf("cell %d in region %d", i, r)
		}
	}
	if _, err := CellIdentity(geo.Grid{}); err == nil {
		t.Error("expected bad grid error")
	}
}

func TestFromRects(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	rects := []geo.CellRect{
		{Row0: 0, Col0: 0, Row1: 2, Col1: 4},
		{Row0: 2, Col0: 0, Row1: 4, Col1: 2},
		{Row0: 2, Col0: 2, Row1: 4, Col1: 4},
	}
	p, err := FromRects(grid, rects)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 3 {
		t.Fatalf("regions = %d", p.NumRegions())
	}
	r, err := p.RegionOfCell(geo.Cell{Row: 3, Col: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("cell (3,1) in region %d, want 1", r)
	}
}

func TestFromRectsErrors(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	tests := []struct {
		name  string
		rects []geo.CellRect
	}{
		{"empty list", nil},
		{"empty rect", []geo.CellRect{{}, {Row0: 0, Col0: 0, Row1: 2, Col1: 2}}},
		{"gap", []geo.CellRect{{Row0: 0, Col0: 0, Row1: 1, Col1: 2}}},
		{"overlap", []geo.CellRect{
			{Row0: 0, Col0: 0, Row1: 2, Col1: 2},
			{Row0: 1, Col0: 0, Row1: 2, Col1: 2},
		}},
		{"out of grid", []geo.CellRect{{Row0: 0, Col0: 0, Row1: 3, Col1: 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromRects(grid, tt.rects); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := FromRects(geo.Grid{}, nil); !errors.Is(err, geo.ErrBadGrid) {
		t.Errorf("bad grid error = %v", err)
	}
}

func TestAssignCells(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	p, err := New(grid, 2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.AssignCells([]geo.Cell{{Row: 0, Col: 1}, {Row: 1, Col: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v", got)
	}
	if _, err := p.AssignCells([]geo.Cell{{Row: 5, Col: 5}}); err == nil {
		t.Error("expected out-of-bounds error")
	}
	if _, err := p.RegionOfCell(geo.Cell{Row: -1, Col: 0}); err == nil {
		t.Error("expected out-of-bounds error")
	}
}

func TestPopulationPerRegion(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	p, err := New(grid, 2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := p.PopulationPerRegion([]int{3, 1, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if pop[0] != 4 || pop[1] != 7 {
		t.Errorf("populations = %v", pop)
	}
	if _, err := p.PopulationPerRegion([]int{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestCentroids(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	// Region 0 = top row (rows are latitude-like; row 0), region 1 = row 1.
	p, err := New(grid, 2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cents := p.Centroids()
	if math.Abs(cents[0][0]-0.25) > 1e-12 || math.Abs(cents[0][1]-0.5) > 1e-12 {
		t.Errorf("centroid 0 = %v", cents[0])
	}
	if math.Abs(cents[1][0]-0.75) > 1e-12 || math.Abs(cents[1][1]-0.5) > 1e-12 {
		t.Errorf("centroid 1 = %v", cents[1])
	}
	for _, c := range cents {
		if c[0] <= 0 || c[0] >= 1 || c[1] <= 0 || c[1] >= 1 {
			t.Errorf("centroid %v outside (0,1)", c)
		}
	}
}

func TestIsRefinementOf(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	coarse, err := Single(grid)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := CellIdentity(grid)
	if err != nil {
		t.Fatal(err)
	}
	if !fine.IsRefinementOf(coarse) {
		t.Error("identity should refine single")
	}
	if coarse.IsRefinementOf(fine) {
		t.Error("single should not refine identity")
	}
	if !fine.IsRefinementOf(fine) {
		t.Error("partition should refine itself")
	}
	other, err := Single(geo.MustGrid(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if other.IsRefinementOf(coarse) {
		t.Error("different grids can never be refinements")
	}
	// Crossing partition: split by rows vs split by cols.
	rows, err := New(grid, 2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := New(grid, 2, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows.IsRefinementOf(cols) || cols.IsRefinementOf(rows) {
		t.Error("crossing partitions are not refinements")
	}
}

func TestUniformGrid(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	tests := []struct {
		height      int
		wantRegions int
	}{
		{0, 1},
		{1, 2},
		{2, 4},
		{3, 8},
		{4, 16},
		{6, 64},
		{8, 64},  // capped by the 8x8 grid
		{20, 64}, // still capped
	}
	for _, tt := range tests {
		p, err := UniformGrid(grid, tt.height)
		if err != nil {
			t.Fatalf("height %d: %v", tt.height, err)
		}
		if p.NumRegions() != tt.wantRegions {
			t.Errorf("height %d: regions = %d, want %d", tt.height, p.NumRegions(), tt.wantRegions)
		}
	}
	if _, err := UniformGrid(grid, -1); err == nil {
		t.Error("expected error for negative height")
	}
	if _, err := UniformGrid(geo.Grid{}, 2); err == nil {
		t.Error("expected bad grid error")
	}
}

func TestUniformGridBalanced(t *testing.T) {
	p, err := UniformGrid(geo.MustGrid(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range p.CellCountsPerRegion() {
		if n != 4 {
			t.Errorf("region %d has %d cells, want 4", r, n)
		}
	}
}

func TestVoronoi(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	p, err := Voronoi(grid, 12, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 12 {
		t.Fatalf("regions = %d, want 12", p.NumRegions())
	}
	for r, n := range p.CellCountsPerRegion() {
		if n == 0 {
			t.Errorf("region %d empty", r)
		}
	}
}

func TestVoronoiDeterministic(t *testing.T) {
	grid := geo.MustGrid(12, 12)
	a, err := Voronoi(grid, 8, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Voronoi(grid, 8, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < grid.NumCells(); i++ {
		ra, _ := a.RegionOfCell(grid.CellAt(i))
		rb, _ := b.RegionOfCell(grid.CellAt(i))
		if ra != rb {
			t.Fatal("Voronoi is not deterministic")
		}
	}
}

func TestVoronoiWeighted(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	weights := make([]int, grid.NumCells())
	// Put all population mass in the top-left quadrant.
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			weights[grid.Index(geo.Cell{Row: row, Col: col})] = 50
		}
	}
	p, err := Voronoi(grid, 6, 3, weights)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 6 {
		t.Fatalf("regions = %d", p.NumRegions())
	}
	if _, err := Voronoi(grid, 6, 3, []int{1}); err == nil {
		t.Error("expected weight length error")
	}
}

func TestVoronoiErrors(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	if _, err := Voronoi(grid, 0, 1, nil); err == nil {
		t.Error("expected error for zero sites")
	}
	if _, err := Voronoi(grid, 5, 1, nil); err == nil {
		t.Error("expected error for more sites than cells")
	}
	if _, err := Voronoi(geo.Grid{}, 1, 1, nil); err == nil {
		t.Error("expected bad grid error")
	}
	// Exactly as many sites as cells: every cell its own region.
	p, err := Voronoi(grid, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 4 {
		t.Errorf("regions = %d, want 4", p.NumRegions())
	}
}

func TestPartitionCoversEveryCellProperty(t *testing.T) {
	// Property: for random heights and grids, UniformGrid assigns every
	// cell to a valid region and every region is non-empty.
	f := func(u, v, h uint8) bool {
		grid := geo.MustGrid(int(u%20)+1, int(v%20)+1)
		p, err := UniformGrid(grid, int(h%12))
		if err != nil {
			return false
		}
		for _, n := range p.CellCountsPerRegion() {
			if n == 0 {
				return false
			}
		}
		total := 0
		for _, n := range p.CellCountsPerRegion() {
			total += n
		}
		return total == grid.NumCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
