// Package partition defines the neighborhood partition abstraction:
// a complete, non-overlapping assignment of every grid cell to a
// region (the paper's "neighborhoods", §2.1). It also provides the
// two non-tree partitioners used as baselines in §5.1: a uniform grid
// (for the reweighting benchmark) and a Voronoi partition standing in
// for zip codes.
package partition

import (
	"errors"
	"fmt"

	"fairindex/internal/geo"
)

// Validation errors.
var (
	ErrBadAssignment = errors.New("partition: cell assignment out of range")
	ErrWrongLength   = errors.New("partition: assignment length does not match grid")
	ErrEmptyRegion   = errors.New("partition: region covers no cells")
	ErrNotCover      = errors.New("partition: rectangles do not exactly cover the grid")
)

// Partition assigns every cell of a grid to exactly one region.
// Regions are identified by dense ids in [0, NumRegions). Construct
// with New, FromRects or one of the partitioners; the zero value is
// invalid.
type Partition struct {
	grid       Grid
	numRegions int
	cellRegion []int // row-major cell index -> region id
}

// Grid is a local alias to keep the exported API tidy.
type Grid = geo.Grid

// New builds a partition from an explicit cell→region assignment and
// validates it: the slice must cover the grid exactly, ids must be
// dense in [0, numRegions) and every region must own at least one
// cell.
func New(grid geo.Grid, numRegions int, cellRegion []int) (*Partition, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	if len(cellRegion) != grid.NumCells() {
		return nil, fmt.Errorf("%w: %d entries for %d cells", ErrWrongLength, len(cellRegion), grid.NumCells())
	}
	if numRegions <= 0 {
		return nil, fmt.Errorf("partition: region count must be positive, got %d", numRegions)
	}
	// Pigeonhole bound before the region-coverage allocation: more
	// regions than cells guarantees an empty region, and rejecting it
	// here keeps a hostile decoded region count from sizing `seen`.
	if numRegions > len(cellRegion) {
		return nil, fmt.Errorf("%w: %d regions over %d cells", ErrEmptyRegion, numRegions, len(cellRegion))
	}
	seen := make([]bool, numRegions)
	for i, r := range cellRegion {
		if r < 0 || r >= numRegions {
			return nil, fmt.Errorf("%w: cell %d assigned to region %d of %d", ErrBadAssignment, i, r, numRegions)
		}
		seen[r] = true
	}
	for r, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("%w: region %d", ErrEmptyRegion, r)
		}
	}
	p := &Partition{
		grid:       grid,
		numRegions: numRegions,
		cellRegion: append([]int(nil), cellRegion...),
	}
	return p, nil
}

// Single returns the trivial partition with one region covering the
// whole grid (the root of every index structure).
func Single(grid geo.Grid) (*Partition, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	return &Partition{
		grid:       grid,
		numRegions: 1,
		cellRegion: make([]int, grid.NumCells()),
	}, nil
}

// CellIdentity returns the finest partition: every grid cell is its
// own region. This realizes §4.1 Step 1, where the location attribute
// is the enclosing grid cell identifier.
func CellIdentity(grid geo.Grid) (*Partition, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	cr := make([]int, grid.NumCells())
	for i := range cr {
		cr[i] = i
	}
	return &Partition{grid: grid, numRegions: grid.NumCells(), cellRegion: cr}, nil
}

// FromRects builds a partition whose regions are the given cell
// rectangles (e.g. KD-tree leaves). The rectangles must exactly tile
// the grid: no gaps, no overlaps, no empty rects.
func FromRects(grid geo.Grid, rects []geo.CellRect) (*Partition, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	if len(rects) == 0 {
		return nil, fmt.Errorf("%w: no rectangles", ErrNotCover)
	}
	cr := make([]int, grid.NumCells())
	for i := range cr {
		cr[i] = -1
	}
	for r, rect := range rects {
		if rect.Empty() {
			return nil, fmt.Errorf("%w: rectangle %d (%v)", ErrEmptyRegion, r, rect)
		}
		for row := rect.Row0; row < rect.Row1; row++ {
			for col := rect.Col0; col < rect.Col1; col++ {
				c := geo.Cell{Row: row, Col: col}
				if !grid.InBounds(c) {
					return nil, fmt.Errorf("%w: rectangle %d (%v) leaves the grid", ErrNotCover, r, rect)
				}
				i := grid.Index(c)
				if cr[i] != -1 {
					return nil, fmt.Errorf("%w: cell %v covered by regions %d and %d", ErrNotCover, c, cr[i], r)
				}
				cr[i] = r
			}
		}
	}
	for i, r := range cr {
		if r == -1 {
			return nil, fmt.Errorf("%w: cell %v uncovered", ErrNotCover, grid.CellAt(i))
		}
	}
	return &Partition{grid: grid, numRegions: len(rects), cellRegion: cr}, nil
}

// Grid returns the underlying grid.
func (p *Partition) Grid() geo.Grid { return p.grid }

// NumRegions returns the number of regions.
func (p *Partition) NumRegions() int { return p.numRegions }

// RegionOfCell returns the region owning the cell. The cell must be
// in bounds.
func (p *Partition) RegionOfCell(c geo.Cell) (int, error) {
	if !p.grid.InBounds(c) {
		return 0, fmt.Errorf("partition: cell %v outside %v", c, p.grid)
	}
	return p.cellRegion[p.grid.Index(c)], nil
}

// AssignCells maps each cell to its region id; the standard way to
// derive record→neighborhood assignments.
func (p *Partition) AssignCells(cells []geo.Cell) ([]int, error) {
	out := make([]int, len(cells))
	for i, c := range cells {
		r, err := p.RegionOfCell(c)
		if err != nil {
			return nil, fmt.Errorf("partition: record %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// CellCountsPerRegion returns the number of grid cells in each region.
func (p *Partition) CellCountsPerRegion() []int {
	out := make([]int, p.numRegions)
	for _, r := range p.cellRegion {
		out[r]++
	}
	return out
}

// PopulationPerRegion aggregates per-cell populations (e.g. record
// counts from Dataset.CellCounts) into per-region populations.
func (p *Partition) PopulationPerRegion(cellCounts []int) ([]int, error) {
	if len(cellCounts) != p.grid.NumCells() {
		return nil, fmt.Errorf("%w: %d cell counts for %d cells", ErrWrongLength, len(cellCounts), p.grid.NumCells())
	}
	out := make([]int, p.numRegions)
	for i, n := range cellCounts {
		out[p.cellRegion[i]] += n
	}
	return out, nil
}

// Centroids returns each region's normalized centroid: the mean
// (row+0.5)/U, (col+0.5)/V over its cells, each component in (0,1).
// This feeds the centroid location encoding.
func (p *Partition) Centroids() [][2]float64 {
	sums := make([][2]float64, p.numRegions)
	counts := make([]int, p.numRegions)
	for i, r := range p.cellRegion {
		c := p.grid.CellAt(i)
		sums[r][0] += (float64(c.Row) + 0.5) / float64(p.grid.U)
		sums[r][1] += (float64(c.Col) + 0.5) / float64(p.grid.V)
		counts[r]++
	}
	for r := range sums {
		if counts[r] > 0 {
			sums[r][0] /= float64(counts[r])
			sums[r][1] /= float64(counts[r])
		}
	}
	return sums
}

// IsRefinementOf reports whether p is a sub-partitioning of coarse
// (Theorem 2's premise): every region of p must lie entirely inside
// one region of coarse. Both partitions must share a grid.
func (p *Partition) IsRefinementOf(coarse *Partition) bool {
	if p.grid != coarse.grid {
		return false
	}
	parent := make([]int, p.numRegions)
	for i := range parent {
		parent[i] = -1
	}
	for i, r := range p.cellRegion {
		cr := coarse.cellRegion[i]
		if parent[r] == -1 {
			parent[r] = cr
		} else if parent[r] != cr {
			return false
		}
	}
	return true
}
