package partition

import (
	"fmt"
	"math/rand"

	"fairindex/internal/geo"
)

// Voronoi partitions the grid into numSites contiguous regions by
// nearest-site assignment over cell centers. It stands in for the
// paper's zip-code partitioning baseline: a fixed, irregular,
// space-covering partition with skewed populations (DESIGN.md §4).
//
// cellWeights optionally biases site placement toward populated cells
// (pass Dataset.CellCounts); nil places sites uniformly. Sites are
// distinct cells, so every region is non-empty. Deterministic for a
// fixed seed.
func Voronoi(grid geo.Grid, numSites int, seed int64, cellWeights []int) (*Partition, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	if numSites <= 0 {
		return nil, fmt.Errorf("partition: site count must be positive, got %d", numSites)
	}
	if numSites > grid.NumCells() {
		return nil, fmt.Errorf("partition: %d sites exceed %d cells", numSites, grid.NumCells())
	}
	if cellWeights != nil && len(cellWeights) != grid.NumCells() {
		return nil, fmt.Errorf("%w: %d weights for %d cells", ErrWrongLength, len(cellWeights), grid.NumCells())
	}
	rng := rand.New(rand.NewSource(seed))
	sites, err := pickSites(grid, numSites, rng, cellWeights)
	if err != nil {
		return nil, err
	}
	cr := make([]int, grid.NumCells())
	for i := range cr {
		c := grid.CellAt(i)
		best, bestD := -1, 0
		for s, site := range sites {
			dr := c.Row - site.Row
			dc := c.Col - site.Col
			d := dr*dr + dc*dc
			if best == -1 || d < bestD {
				best, bestD = s, d
			}
		}
		cr[i] = best
	}
	return New(grid, numSites, cr)
}

// pickSites draws numSites distinct cells, weighted by cellWeights+1
// (the +1 keeps empty cells reachable so site selection cannot stall
// on sparse populations).
func pickSites(grid geo.Grid, numSites int, rng *rand.Rand, cellWeights []int) ([]geo.Cell, error) {
	n := grid.NumCells()
	weights := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		w := 1.0
		if cellWeights != nil {
			w += float64(cellWeights[i]) * 4 // bias toward populated cells
		}
		weights[i] = w
		total += w
	}
	sites := make([]geo.Cell, 0, numSites)
	taken := make([]bool, n)
	for len(sites) < numSites {
		x := rng.Float64() * total
		idx := -1
		for i := 0; i < n; i++ {
			if taken[i] {
				continue
			}
			x -= weights[i]
			if x <= 0 {
				idx = i
				break
			}
		}
		if idx == -1 { // numeric slack: take the last free cell
			for i := n - 1; i >= 0; i-- {
				if !taken[i] {
					idx = i
					break
				}
			}
		}
		if idx == -1 {
			return nil, fmt.Errorf("partition: ran out of cells placing %d sites", numSites)
		}
		taken[idx] = true
		total -= weights[idx]
		weights[idx] = 0
		sites = append(sites, grid.CellAt(idx))
	}
	return sites, nil
}
