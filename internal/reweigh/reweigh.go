// Package reweigh implements the Kamiran–Calders reweighing
// pre-processing technique adapted to spatial groups — the paper's
// "Grid (Reweighting)" benchmark (§5.1, citing [15]). Each instance
// receives the weight
//
//	w(g, y) = P(group = g) · P(label = y) / P(group = g, label = y)
//
// so that, under the weighted distribution, group membership and
// label are statistically independent.
package reweigh

import (
	"errors"
	"fmt"
)

// ErrBadInput reports invalid group or label slices.
var ErrBadInput = errors.New("reweigh: invalid input")

// Weights computes the reweighing weight per instance. groups[i] must
// lie in [0, numGroups). Groups absent from the data simply receive
// no weights (no instances); group/label combinations with zero count
// cannot occur on actual instances, so no division by zero arises.
func Weights(groups []int, numGroups int, labels []int) ([]float64, error) {
	if len(groups) != len(labels) {
		return nil, fmt.Errorf("%w: %d groups vs %d labels", ErrBadInput, len(groups), len(labels))
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: empty data", ErrBadInput)
	}
	if numGroups <= 0 {
		return nil, fmt.Errorf("%w: %d groups", ErrBadInput, numGroups)
	}
	n := float64(len(groups))
	groupCount := make([]float64, numGroups)
	var posCount float64
	joint := make([][2]float64, numGroups)
	for i, g := range groups {
		if g < 0 || g >= numGroups {
			return nil, fmt.Errorf("%w: group %d of instance %d out of range [0,%d)", ErrBadInput, g, i, numGroups)
		}
		y := 0
		if labels[i] != 0 {
			y = 1
		}
		groupCount[g]++
		posCount += float64(y)
		joint[g][y]++
	}
	labelCount := [2]float64{n - posCount, posCount}
	out := make([]float64, len(groups))
	for i, g := range groups {
		y := 0
		if labels[i] != 0 {
			y = 1
		}
		// w = (P(g)·P(y)) / P(g,y) = groupCount·labelCount / (n·joint).
		out[i] = groupCount[g] * labelCount[y] / (n * joint[g][y])
	}
	return out, nil
}
