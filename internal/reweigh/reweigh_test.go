package reweigh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightsKnownExample(t *testing.T) {
	// Two groups of two; group 0 all positive, group 1 half positive.
	groups := []int{0, 0, 1, 1}
	labels := []int{1, 1, 1, 0}
	w, err := Weights(groups, 2, labels)
	if err != nil {
		t.Fatal(err)
	}
	// P(g=0)=0.5, P(y=1)=0.75, P(g=0,y=1)=0.5 → w = 0.375/0.5 = 0.75
	if math.Abs(w[0]-0.75) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Errorf("group-0 weights = %v, want 0.75", w[:2])
	}
	// P(g=1,y=1)=0.25 → w = 0.375/0.25 = 1.5
	if math.Abs(w[2]-1.5) > 1e-12 {
		t.Errorf("w[2] = %v, want 1.5", w[2])
	}
	// P(g=1,y=0)=0.25, P(y=0)=0.25 → w = 0.125/0.25 = 0.5
	if math.Abs(w[3]-0.5) > 1e-12 {
		t.Errorf("w[3] = %v, want 0.5", w[3])
	}
}

func TestWeightsValidation(t *testing.T) {
	if _, err := Weights([]int{0}, 1, []int{1, 0}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Weights(nil, 1, nil); err == nil {
		t.Error("expected empty data error")
	}
	if _, err := Weights([]int{0}, 0, []int{1}); err == nil {
		t.Error("expected group count error")
	}
	if _, err := Weights([]int{5}, 2, []int{1}); err == nil {
		t.Error("expected out-of-range group error")
	}
	if _, err := Weights([]int{-1}, 2, []int{1}); err == nil {
		t.Error("expected negative group error")
	}
}

func TestWeightsIndependenceProperty(t *testing.T) {
	// Property: under the weights, every group's weighted positive
	// rate equals the overall weighted positive rate (statistical
	// independence of group and label).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 10
		g := rng.Intn(6) + 1
		groups := make([]int, n)
		labels := make([]int, n)
		for i := range groups {
			groups[i] = rng.Intn(g)
			labels[i] = rng.Intn(2)
		}
		w, err := Weights(groups, g, labels)
		if err != nil {
			return false
		}
		// The weighted per-group positive rate equals the *unweighted*
		// overall positive rate P(y=1) for every group holding both
		// classes: w(g,1)·n_g1 / (w(g,1)·n_g1 + w(g,0)·n_g0) =
		// n_1 / (n_0 + n_1).
		var rawPos float64
		groupW := make([]float64, g)
		groupPos := make([]float64, g)
		hasPos := make([]bool, g)
		hasNeg := make([]bool, g)
		for i := range groups {
			groupW[groups[i]] += w[i]
			if labels[i] != 0 {
				rawPos++
				groupPos[groups[i]] += w[i]
				hasPos[groups[i]] = true
			} else {
				hasNeg[groups[i]] = true
			}
		}
		overall := rawPos / float64(n)
		for gi := 0; gi < g; gi++ {
			if groupW[gi] == 0 || !hasPos[gi] || !hasNeg[gi] {
				continue // empty or single-class group: rate pinned at 0/1
			}
			if rate := groupPos[gi] / groupW[gi]; math.Abs(rate-overall) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightsPreserveTotalMass(t *testing.T) {
	// Reweighing conserves total weight (Σw = n) when every
	// (group, label) combination is populated.
	groups := []int{0, 0, 0, 1, 1, 2, 2, 2, 2}
	labels := []int{1, 0, 1, 1, 0, 0, 0, 1, 0}
	w, err := Weights(groups, 3, labels)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, wi := range w {
		sum += wi
	}
	if math.Abs(sum-float64(len(groups))) > 1e-9 {
		t.Errorf("Σw = %v, want %d", sum, len(groups))
	}
}

func TestWeightsUniformWhenIndependent(t *testing.T) {
	// When group and label are already independent, all weights are 1.
	groups := []int{0, 0, 1, 1}
	labels := []int{1, 0, 1, 0}
	w, err := Weights(groups, 2, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i, wi := range w {
		if math.Abs(wi-1) > 1e-12 {
			t.Errorf("w[%d] = %v, want 1", i, wi)
		}
	}
}
