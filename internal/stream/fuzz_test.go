package stream

import (
	"reflect"
	"strings"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// FuzzStreamCSV is a differential fuzz target: arbitrary text must be
// treated identically by the chunked streaming reader and the
// materialized dataset.ReadCSV — both reject, or both accept with
// value-identical datasets. A small chunk size forces every batch
// boundary through the fuzzer's inputs. Never panic. Seeds live in
// testdata/fuzz/FuzzStreamCSV and are extended inline below.
func FuzzStreamCSV(f *testing.F) {
	seeds := []string{
		"id,lat,lon,income,label:approved\nr0,34.1,-118.3,1.5,1\nr1,33.9,-118.1,0.5,0\n",
		"id,lat,lon,label:hot\nr0,34.0,-118.2,1\n",
		"id,lat,lon,a,b,label:x,label:y\nr0,34,-118,1,2,0,1\nr1,34.5,-117.5,3,4,1,0\n",
		"id,lat,lon,income,label:approved\n",                         // header only
		"id,lat,lon,income,label:approved\nr0,34,-118,1\n",           // wrong arity
		"id,lat,lon,income,label:approved\nr0,34,-118,NaN,1\n",       // non-finite feature
		"id,lat,lon,income,label:approved\nr0,34,-118,1,2\n",         // non-binary label
		"id,lat,lon,income,label:approved\n\"r\n0\",34,-118,1,1\n",   // quoted newline in id
		"id,lat,lon,income,label:approved\r\nr0,34,-118,1,1\r\n",     // CRLF
		"id,lat,lon,income,label:approved\nr0,34,-118,1,1\nbroken\n", // trailing garbage row
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	grid := geo.MustGrid(8, 8)
	box := geo.BBox{MinLat: 33.5, MinLon: -119, MaxLat: 34.5, MaxLon: -117}
	f.Fuzz(func(t *testing.T, data string) {
		want, werr := dataset.ReadCSV(strings.NewReader(data), "fuzz", grid, box)

		var got *dataset.Dataset
		src, gerr := NewCSV(strings.NewReader(data), "fuzz", grid, box)
		if gerr == nil {
			got, gerr = Ingest(src, 3)
		}
		if (gerr != nil) != (werr != nil) {
			t.Fatalf("streaming error %v, materialized error %v", gerr, werr)
		}
		if gerr != nil {
			return
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("streaming decoded %d records, materialized %d", len(got.Records), len(want.Records))
		}
		for i := range got.Records {
			g, w := got.Records[i], want.Records[i]
			if g.ID != w.ID || g.Lat != w.Lat || g.Lon != w.Lon || g.Cell != w.Cell ||
				!reflect.DeepEqual(g.X, w.X) || !reflect.DeepEqual(g.Labels, w.Labels) {
				t.Fatalf("record %d diverges: streaming %+v, materialized %+v", i, g, w)
			}
		}
	})
}
