package stream

import (
	"fmt"
	"io"
	"math"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// Ingest drains src twice and materializes a validated Dataset with
// bounded transient residency. Pass 1 counts the records and
// validates every row (finite features, 0/1 labels, on-grid cells)
// with line-accurate *dataset.RowError diagnostics; pass 2 rewinds
// the source and fills exact-size flat backing arrays — one
// contiguous feature block and one label block shared by all
// records. Besides the final arrays, whose size the data dictates,
// the ingest allocates O(chunk): one reusable batch plus a constant
// number of bookkeeping slices, independent of the record count. A
// chunk of 0 or less selects DefaultChunk.
//
// The produced dataset is value-identical to dataset.ReadCSV over the
// same input (ingestion shares its row decoder), so builds fed by
// Ingest are bit-identical to materialized builds.
func Ingest(src Source, chunk int) (*dataset.Dataset, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	sc := src.Schema()
	if !sc.Grid.Valid() {
		return nil, fmt.Errorf("stream: %q: %w", sc.Name, geo.ErrBadGrid)
	}
	d, t := sc.NumFeatures(), sc.NumTasks()
	if t == 0 {
		return nil, fmt.Errorf("stream: %q: schema has no tasks", sc.Name)
	}

	// Pass 1: count and validate.
	b := &Batch{}
	n := 0
	for {
		m, err := src.Next(b, chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			if err := validateRow(&sc, b, i, n+i); err != nil {
				return nil, err
			}
		}
		n += m
	}
	if n == 0 {
		return nil, fmt.Errorf("stream: %q: %w", sc.Name, dataset.ErrNoRecords)
	}

	// Pass 2: rewind and fill exact-size backing arrays.
	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("stream: rewinding for fill pass: %w", err)
	}
	ds := &dataset.Dataset{
		Name:         sc.Name,
		Grid:         sc.Grid,
		Box:          sc.Box,
		FeatureNames: append([]string(nil), sc.FeatureNames...),
		TaskNames:    append([]string(nil), sc.TaskNames...),
		Records:      make([]dataset.Record, n),
	}
	xb := make([]float64, n*d)
	yb := make([]int, n*t)
	pos := 0
	for pos < n {
		m, err := src.Next(b, min(chunk, n-pos))
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			r := &ds.Records[pos+i]
			r.ID = b.ID[i]
			r.Lat, r.Lon, r.Cell = b.Lat[i], b.Lon[i], b.Cell[i]
			r.X = xb[(pos+i)*d : (pos+i+1)*d : (pos+i+1)*d]
			copy(r.X, b.XRow(i))
			r.Labels = yb[(pos+i)*t : (pos+i+1)*t : (pos+i+1)*t]
			copy(r.Labels, b.YRow(i))
		}
		pos += m
	}
	// A source that replays differently would silently corrupt the
	// build; both divergence directions are detected.
	if pos != n {
		return nil, fmt.Errorf("stream: %q yielded %d records on the fill pass, %d on the first", sc.Name, pos, n)
	}
	if m, err := src.Next(b, 1); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stream: %q yielded %d extra record(s) on the fill pass", sc.Name, m)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// validateRow applies the Dataset.Validate invariants to one batch
// row, attributing failures to the source line (or the 1-based record
// ordinal for sources without line structure).
func validateRow(sc *Schema, b *Batch, i, ord int) error {
	line := b.Line[i]
	if line == 0 {
		line = ord + 1
	}
	if !sc.Grid.InBounds(b.Cell[i]) {
		return &dataset.RowError{Line: line,
			Err: fmt.Errorf("%w: %v", dataset.ErrCellOutOfRange, b.Cell[i])}
	}
	for j, x := range b.XRow(i) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return &dataset.RowError{Line: line, Field: sc.FeatureNames[j],
				Err: fmt.Errorf("%w: %v", dataset.ErrBadValue, x)}
		}
	}
	for j, y := range b.YRow(i) {
		if y != 0 && y != 1 {
			return &dataset.RowError{Line: line, Field: "label:" + sc.TaskNames[j],
				Err: fmt.Errorf("%w: %d", dataset.ErrBadLabel, y)}
		}
	}
	return nil
}
