// Package stream provides record-stream ingestion for fair spatial
// index builds: a chunked Source abstraction over CSV files,
// in-memory datasets and generator functions, plus a two-pass Ingest
// that materializes a validated Dataset with O(chunk) transient
// allocations. It is the bounded-residency substrate behind
// fairindex.BuildStream — the stream changes how records reach
// memory, not what is built from them, so streaming builds stay
// bit-identical to materialized ones.
package stream

import (
	"fmt"
	"io"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// DefaultChunk is the batch size Ingest decodes at a time when the
// caller does not choose one.
const DefaultChunk = 4096

// Schema describes the records a Source yields. It is constant across
// the stream: every batch carries len(FeatureNames) features and
// len(TaskNames) labels per row, and cells lie on Grid.
type Schema struct {
	Name         string
	Grid         geo.Grid
	Box          geo.BBox
	FeatureNames []string
	TaskNames    []string
}

// Compatible reports whether the stream can rebuild an index trained
// on the given feature and task columns: the names must match exactly,
// in order. It is the cheap pre-flight check a rebuild controller runs
// before committing to a full build — a fresh data feed whose columns
// drifted (renamed, reordered, added) fails here in microseconds
// instead of producing an artifact that silently scores the wrong
// features.
func (s Schema) Compatible(featureNames, taskNames []string) error {
	if len(s.FeatureNames) != len(featureNames) {
		return fmt.Errorf("stream: schema has %d features, index was built on %d",
			len(s.FeatureNames), len(featureNames))
	}
	for i, name := range featureNames {
		if s.FeatureNames[i] != name {
			return fmt.Errorf("stream: schema feature %d is %q, index was built on %q",
				i, s.FeatureNames[i], name)
		}
	}
	if len(s.TaskNames) != len(taskNames) {
		return fmt.Errorf("stream: schema has %d tasks, index was built on %d",
			len(s.TaskNames), len(taskNames))
	}
	for i, name := range taskNames {
		if s.TaskNames[i] != name {
			return fmt.Errorf("stream: schema task %d is %q, index was built on %q",
				i, s.TaskNames[i], name)
		}
	}
	return nil
}

// NumFeatures returns the number of features per record.
func (s Schema) NumFeatures() int { return len(s.FeatureNames) }

// NumTasks returns the number of label columns per record.
func (s Schema) NumTasks() int { return len(s.TaskNames) }

// Batch is a reusable chunk of decoded records in columnar layout.
// Feature and label values are packed row-major into flat backing
// arrays, so refilling a batch costs no per-row allocations once its
// capacity has grown to the chunk size.
type Batch struct {
	ID   []string
	Lat  []float64
	Lon  []float64
	Cell []geo.Cell
	X    []float64 // row-major, len = Len()×features
	Y    []int     // row-major, len = Len()×tasks
	// Line holds the 1-based source line of each row for error
	// attribution; sources without line structure leave it 0 and
	// Ingest falls back to the record ordinal.
	Line []int

	rows, feats, tasks int
}

// Reserve sizes the batch for n rows of d features and t labels each,
// reusing existing capacity. Row contents are left stale; callers
// overwrite every row they report.
func (b *Batch) Reserve(n, d, t int) {
	b.rows, b.feats, b.tasks = n, d, t
	b.ID = growTo(b.ID, n)
	b.Lat = growTo(b.Lat, n)
	b.Lon = growTo(b.Lon, n)
	b.Cell = growTo(b.Cell, n)
	b.X = growTo(b.X, n*d)
	b.Y = growTo(b.Y, n*t)
	b.Line = growTo(b.Line, n)
}

// Truncate shrinks the batch to its first n rows after a short fill.
func (b *Batch) Truncate(n int) {
	if n > b.rows {
		panic(fmt.Sprintf("stream: truncate %d rows to %d", b.rows, n))
	}
	b.rows = n
	d, t := b.feats, b.tasks
	b.ID, b.Lat, b.Lon = b.ID[:n], b.Lat[:n], b.Lon[:n]
	b.Cell, b.Line = b.Cell[:n], b.Line[:n]
	b.X, b.Y = b.X[:n*d], b.Y[:n*t]
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return b.rows }

// XRow returns row i's feature values, aliasing the backing array.
func (b *Batch) XRow(i int) []float64 { return b.X[i*b.feats : (i+1)*b.feats : (i+1)*b.feats] }

// YRow returns row i's labels, aliasing the backing array.
func (b *Batch) YRow(i int) []int { return b.Y[i*b.tasks : (i+1)*b.tasks : (i+1)*b.tasks] }

// growTo reslices s to length n, reallocating only when the capacity
// is insufficient.
func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Source yields records in chunks. Implementations must be
// deterministic and rewindable: Ingest drains a source twice (count
// and validate, then fill), and both passes must see the same
// records in the same order.
type Source interface {
	// Schema describes the yielded records; constant across the
	// stream's lifetime.
	Schema() Schema
	// Next decodes up to max records into b and returns how many it
	// produced. A short batch with a nil error is allowed; (0, io.EOF)
	// marks exhaustion. On any other error the batch contents are
	// undefined.
	Next(b *Batch, max int) (int, error)
	// Reset rewinds the stream to its first record.
	Reset() error
}

// DatasetSource streams an in-memory Dataset. Batches copy into the
// caller's backing arrays without allocating, so it doubles as the
// allocation floor for ingest benchmarks and as the bridge that lets
// generated datasets feed streaming builds.
type DatasetSource struct {
	ds  *dataset.Dataset
	pos int
}

// FromDataset returns a Source over ds's records in order.
func FromDataset(ds *dataset.Dataset) *DatasetSource {
	return &DatasetSource{ds: ds}
}

// Schema implements Source.
func (s *DatasetSource) Schema() Schema {
	return Schema{
		Name:         s.ds.Name,
		Grid:         s.ds.Grid,
		Box:          s.ds.Box,
		FeatureNames: s.ds.FeatureNames,
		TaskNames:    s.ds.TaskNames,
	}
}

// Next implements Source.
func (s *DatasetSource) Next(b *Batch, max int) (int, error) {
	if max <= 0 {
		return 0, fmt.Errorf("stream: batch size %d", max)
	}
	rest := len(s.ds.Records) - s.pos
	if rest == 0 {
		return 0, io.EOF
	}
	n := min(max, rest)
	d, t := s.ds.NumFeatures(), s.ds.NumTasks()
	b.Reserve(n, d, t)
	for i := 0; i < n; i++ {
		rec := &s.ds.Records[s.pos+i]
		b.ID[i], b.Lat[i], b.Lon[i] = rec.ID, rec.Lat, rec.Lon
		b.Cell[i], b.Line[i] = rec.Cell, 0
		copy(b.XRow(i), rec.X)
		copy(b.YRow(i), rec.Labels)
	}
	s.pos += n
	return n, nil
}

// Reset implements Source.
func (s *DatasetSource) Reset() error {
	s.pos = 0
	return nil
}

// FuncSource adapts a deterministic generator function to a Source:
// records exist only while their batch does, so arbitrarily large
// synthetic workloads stream without ever materializing. The function
// must be a pure function of the record index — Ingest replays the
// stream and both passes must agree.
type FuncSource struct {
	schema Schema
	mapper geo.Mapper
	n      int
	pos    int
	fn     func(i int, rec *dataset.Record) error
}

// FromFunc returns a Source yielding n records produced by fn. For
// each index i, fn fills rec — ID, coordinates, features and labels;
// rec.X and rec.Labels arrive pre-sized to the schema and alias batch
// memory. The enclosing grid cell is assigned from the coordinates by
// the source, mirroring CSV ingestion.
func FromFunc(schema Schema, n int, fn func(i int, rec *dataset.Record) error) (*FuncSource, error) {
	mapper, err := geo.NewMapper(schema.Grid, schema.Box)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("stream: negative record count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("stream: nil record function")
	}
	return &FuncSource{schema: schema, mapper: mapper, n: n, fn: fn}, nil
}

// Schema implements Source.
func (s *FuncSource) Schema() Schema { return s.schema }

// Next implements Source.
func (s *FuncSource) Next(b *Batch, max int) (int, error) {
	if max <= 0 {
		return 0, fmt.Errorf("stream: batch size %d", max)
	}
	rest := s.n - s.pos
	if rest == 0 {
		return 0, io.EOF
	}
	n := min(max, rest)
	d, t := s.schema.NumFeatures(), s.schema.NumTasks()
	b.Reserve(n, d, t)
	var rec dataset.Record
	for i := 0; i < n; i++ {
		rec = dataset.Record{X: b.XRow(i), Labels: b.YRow(i)}
		if err := s.fn(s.pos+i, &rec); err != nil {
			return 0, fmt.Errorf("stream: record %d: %w", s.pos+i, err)
		}
		if len(rec.X) != d || len(rec.Labels) != t {
			return 0, fmt.Errorf("stream: record %d: generator produced %d features and %d labels, schema has %d and %d",
				s.pos+i, len(rec.X), len(rec.Labels), d, t)
		}
		// Generators that swap in their own slices still stream
		// correctly — copy back into the batch's backing arrays.
		if d > 0 && &rec.X[0] != &b.X[i*d] {
			copy(b.XRow(i), rec.X)
		}
		if t > 0 && &rec.Labels[0] != &b.Y[i*t] {
			copy(b.YRow(i), rec.Labels)
		}
		b.ID[i], b.Lat[i], b.Lon[i] = rec.ID, rec.Lat, rec.Lon
		b.Cell[i] = s.mapper.CellOf(rec.Lat, rec.Lon)
		b.Line[i] = 0
	}
	s.pos += n
	return n, nil
}

// Reset implements Source.
func (s *FuncSource) Reset() error {
	s.pos = 0
	return nil
}
