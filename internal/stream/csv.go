package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"slices"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// CSVSource is a chunked reader over the canonical CSV layout
// (dataset.WriteCSV): it decodes records batch by batch through the
// same RowDecoder dataset.ReadCSV uses, so the parsed values are
// bit-identical to a materialized load and malformed rows surface as
// the same *dataset.RowError with the accurate 1-based input line —
// quoted newlines, CRLF endings and blank lines do not shift it.
type CSVSource struct {
	name   string
	rs     io.ReadSeeker
	closer io.Closer
	mapper geo.Mapper
	schema Schema
	dec    *dataset.RowDecoder
	cr     *csv.Reader
}

// NewCSV returns a chunked source over canonical CSV held by rs. The
// header is read eagerly, so a malformed header fails here and
// Schema is complete on return. Reset seeks back to the start, which
// is why a plain io.Reader is not enough: Ingest needs two passes.
func NewCSV(rs io.ReadSeeker, name string, grid geo.Grid, box geo.BBox) (*CSVSource, error) {
	mapper, err := geo.NewMapper(grid, box)
	if err != nil {
		return nil, fmt.Errorf("stream: csv source: %w", err)
	}
	s := &CSVSource{
		name:   name,
		rs:     rs,
		mapper: mapper,
		schema: Schema{Name: name, Grid: grid, Box: box},
	}
	if err := s.start(true); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenCSV opens a canonical CSV file as a chunked source. The caller
// owns the descriptor: Close it after the build.
func OpenCSV(path, name string, grid geo.Grid, box geo.BBox) (*CSVSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	s, err := NewCSV(f, name, grid, box)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// Close releases the backing file of an OpenCSV source; it is a no-op
// for sources over caller-owned readers.
func (s *CSVSource) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// start seeks to the beginning and consumes the header row. The first
// call (init) records the schema; later calls (Reset) verify the
// header still matches, so a file mutated between Ingest's two passes
// is caught instead of silently producing a mixed dataset.
func (s *CSVSource) start(init bool) error {
	if _, err := s.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("stream: rewinding csv: %w", err)
	}
	cr := csv.NewReader(s.rs)
	cr.FieldsPerRecord = -1 // validated manually, matching ReadCSV
	cr.ReuseRecord = true   // rows are decoded before the next Read
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("stream: read csv header: %w", err)
	}
	hline, _ := cr.FieldPos(0)
	featureNames, taskNames, err := dataset.ParseCSVHeader(header, hline)
	if err != nil {
		return err
	}
	if init {
		s.schema.FeatureNames = featureNames
		s.schema.TaskNames = taskNames
	} else if !slices.Equal(featureNames, s.schema.FeatureNames) ||
		!slices.Equal(taskNames, s.schema.TaskNames) {
		return fmt.Errorf("stream: csv header changed between passes over %q", s.name)
	}
	s.dec = dataset.NewRowDecoder(s.mapper, s.schema.FeatureNames, s.schema.TaskNames)
	s.cr = cr
	return nil
}

// Schema implements Source.
func (s *CSVSource) Schema() Schema { return s.schema }

// Next implements Source, decoding up to max rows into b.
func (s *CSVSource) Next(b *Batch, max int) (int, error) {
	if max <= 0 {
		return 0, fmt.Errorf("stream: batch size %d", max)
	}
	d, t := s.schema.NumFeatures(), s.schema.NumTasks()
	b.Reserve(max, d, t)
	n := 0
	for n < max {
		row, err := s.cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, &dataset.RowError{Line: csvErrLine(err), Err: err}
		}
		line, _ := s.cr.FieldPos(0)
		rec := dataset.Record{X: b.XRow(n), Labels: b.YRow(n)}
		if err := s.dec.Decode(line, row, &rec); err != nil {
			return 0, err
		}
		b.ID[n], b.Lat[n], b.Lon[n] = rec.ID, rec.Lat, rec.Lon
		b.Cell[n], b.Line[n] = rec.Cell, line
		n++
	}
	b.Truncate(n)
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Reset implements Source.
func (s *CSVSource) Reset() error { return s.start(false) }

// csvErrLine extracts the input line from a csv.Reader parse error.
func csvErrLine(err error) int {
	if pe, ok := err.(*csv.ParseError); ok {
		return pe.Line
	}
	return 0
}
