package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// testCity generates a small city dataset shared by the stream tests.
func testCity(t *testing.T) *dataset.Dataset {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 300
	ds, err := dataset.Generate(spec, geo.MustGrid(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// csvOf renders a dataset to its canonical CSV bytes.
func csvOf(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteCSV(ds, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// equalDatasets compares two datasets record by record; the flat
// backing layout differs between loaders, so only values matter.
func equalDatasets(t *testing.T, got, want *dataset.Dataset) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name %q, want %q", got.Name, want.Name)
	}
	if !reflect.DeepEqual(got.FeatureNames, want.FeatureNames) ||
		!reflect.DeepEqual(got.TaskNames, want.TaskNames) {
		t.Fatalf("schema mismatch: %v/%v vs %v/%v",
			got.FeatureNames, got.TaskNames, want.FeatureNames, want.TaskNames)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		g, w := got.Records[i], want.Records[i]
		if g.ID != w.ID || g.Lat != w.Lat || g.Lon != w.Lon || g.Cell != w.Cell ||
			!reflect.DeepEqual(g.X, w.X) || !reflect.DeepEqual(g.Labels, w.Labels) {
			t.Fatalf("record %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestCSVSourceMatchesReadCSV(t *testing.T) {
	ds := testCity(t)
	blob := csvOf(t, ds)
	want, err := dataset.ReadCSV(bytes.NewReader(blob), ds.Name, ds.Grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, len(want.Records), 10 * len(want.Records)} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			src, err := NewCSV(bytes.NewReader(blob), ds.Name, ds.Grid, ds.Box)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Ingest(src, chunk)
			if err != nil {
				t.Fatal(err)
			}
			equalDatasets(t, got, want)
		})
	}
}

func TestIngestMatchesAcrossSources(t *testing.T) {
	ds := testCity(t)
	blob := csvOf(t, ds)
	schema := Schema{Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames}

	csvSrc, err := NewCSV(bytes.NewReader(blob), ds.Name, ds.Grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	funcSrc, err := FromFunc(schema, len(ds.Records), func(i int, rec *dataset.Record) error {
		r := &ds.Records[i]
		rec.ID, rec.Lat, rec.Lon = r.ID, r.Lat, r.Lon
		copy(rec.X, r.X)
		copy(rec.Labels, r.Labels)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]Source{
		"csv":     csvSrc,
		"dataset": FromDataset(ds),
		"func":    funcSrc,
	} {
		t.Run(name, func(t *testing.T) {
			got, err := Ingest(src, 32)
			if err != nil {
				t.Fatal(err)
			}
			equalDatasets(t, got, ds)
		})
	}
}

// TestCSVSourceLineAccurateErrors pins error attribution to physical
// input lines: CRLF endings and quoted newlines shift the byte layout
// but not the reported line.
func TestCSVSourceLineAccurateErrors(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	box := geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	header := "id,lat,lon,income,label:approve"
	cases := []struct {
		name  string
		rows  []string
		line  int
		field string
	}{
		{"bad-feature", []string{`a,0.5,0.5,1.0,1`, `b,0.5,0.5,oops,0`}, 3, "income"},
		{"bad-label", []string{`a,0.5,0.5,1.0,1`, `b,0.5,0.5,2.0,7`}, 3, "label:approve"},
		{"bad-lat", []string{`a,nope,0.5,1.0,1`}, 2, "lat"},
		{"after-quoted-newline", []string{"\"a\nb\",0.5,0.5,1.0,1", `c,0.5,0.5,bad,0`}, 4, "income"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, eol := range []string{"\n", "\r\n"} {
				blob := header + eol + strings.Join(tc.rows, eol) + eol
				src, err := NewCSV(strings.NewReader(blob), "t", grid, box)
				if err != nil {
					t.Fatal(err)
				}
				_, err = Ingest(src, 8)
				var re *dataset.RowError
				if !errors.As(err, &re) {
					t.Fatalf("eol %q: error %v, want *dataset.RowError", eol, err)
				}
				if re.Line != tc.line || re.Field != tc.field {
					t.Errorf("eol %q: line %d field %q, want line %d field %q",
						eol, re.Line, re.Field, tc.line, tc.field)
				}
			}
		})
	}
}

func TestIngestValidation(t *testing.T) {
	ds := testCity(t)
	schema := Schema{Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames}

	t.Run("nan-feature", func(t *testing.T) {
		src, _ := FromFunc(schema, 5, func(i int, rec *dataset.Record) error {
			r := &ds.Records[i]
			rec.ID, rec.Lat, rec.Lon = r.ID, r.Lat, r.Lon
			copy(rec.X, r.X)
			copy(rec.Labels, r.Labels)
			if i == 3 {
				rec.X[0] = math.NaN()
			}
			return nil
		})
		_, err := Ingest(src, 2)
		var re *dataset.RowError
		if !errors.As(err, &re) || !errors.Is(err, dataset.ErrBadValue) {
			t.Fatalf("error %v, want RowError wrapping ErrBadValue", err)
		}
		if re.Line != 4 { // ordinal fallback: record 3 → line 4
			t.Errorf("line %d, want 4", re.Line)
		}
	})
	t.Run("bad-label", func(t *testing.T) {
		src, _ := FromFunc(schema, 5, func(i int, rec *dataset.Record) error {
			r := &ds.Records[i]
			rec.ID, rec.Lat, rec.Lon = r.ID, r.Lat, r.Lon
			copy(rec.X, r.X)
			copy(rec.Labels, r.Labels)
			if i == 1 {
				rec.Labels[0] = 2
			}
			return nil
		})
		_, err := Ingest(src, 2)
		if !errors.Is(err, dataset.ErrBadLabel) {
			t.Fatalf("error %v, want ErrBadLabel", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		src, _ := FromFunc(schema, 0, func(i int, rec *dataset.Record) error { return nil })
		_, err := Ingest(src, 2)
		if !errors.Is(err, dataset.ErrNoRecords) {
			t.Fatalf("error %v, want ErrNoRecords", err)
		}
	})
	t.Run("nil-source", func(t *testing.T) {
		if _, err := Ingest(nil, 2); err == nil {
			t.Fatal("expected error")
		}
	})
}

// unstableSource replays a different record count on its second pass.
type unstableSource struct {
	*DatasetSource
	resets int
	delta  int // records to drop (+) or duplicate source growth (−)
}

func (u *unstableSource) Reset() error {
	u.resets++
	if u.resets == 1 {
		// Shrink or grow the dataset between passes.
		if u.delta > 0 {
			u.ds.Records = u.ds.Records[:len(u.ds.Records)-u.delta]
		} else {
			u.ds.Records = append(u.ds.Records, u.ds.Records[:(-u.delta)]...)
		}
	}
	return u.DatasetSource.Reset()
}

func TestIngestDetectsReplayDivergence(t *testing.T) {
	for name, delta := range map[string]int{"shrinks": 3, "grows": -3} {
		t.Run(name, func(t *testing.T) {
			ds := testCity(t)
			src := &unstableSource{DatasetSource: FromDataset(ds), delta: delta}
			_, err := Ingest(src, 32)
			if err == nil {
				t.Fatal("expected divergence error")
			}
			if !strings.Contains(err.Error(), "pass") {
				t.Errorf("error %v does not mention the replay divergence", err)
			}
		})
	}
}

func TestCSVSourceHeaderChangeBetweenPasses(t *testing.T) {
	ds := testCity(t)
	blob := csvOf(t, ds)
	// A reader whose content is swapped after the first pass.
	r := &swappableReader{Reader: *bytes.NewReader(blob)}
	src, err := NewCSV(r, ds.Name, ds.Grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	other := *ds
	other.FeatureNames = append([]string{"extra"}, ds.FeatureNames...)
	// Rebuild records with one more feature so WriteCSV stays valid.
	other.Records = make([]dataset.Record, len(ds.Records))
	for i, rec := range ds.Records {
		rec.X = append([]float64{1}, rec.X...)
		other.Records[i] = rec
	}
	r.next = csvOf(t, &other)
	if _, err := Ingest(src, 32); err == nil ||
		!strings.Contains(err.Error(), "header changed") {
		t.Fatalf("error %v, want header-changed", err)
	}
}

// swappableReader swaps in new content on the first rewind.
type swappableReader struct {
	bytes.Reader
	next []byte
}

func (r *swappableReader) Seek(off int64, whence int) (int64, error) {
	if r.next != nil && off == 0 && whence == io.SeekStart {
		r.Reader.Reset(r.next)
		r.next = nil
	}
	return r.Reader.Seek(off, whence)
}

func TestFuncSourceContract(t *testing.T) {
	ds := testCity(t)
	schema := Schema{Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames}

	t.Run("generator-error", func(t *testing.T) {
		src, _ := FromFunc(schema, 10, func(i int, rec *dataset.Record) error {
			if i == 4 {
				return errors.New("boom")
			}
			r := &ds.Records[i]
			rec.ID, rec.Lat, rec.Lon = r.ID, r.Lat, r.Lon
			copy(rec.X, r.X)
			copy(rec.Labels, r.Labels)
			return nil
		})
		if _, err := Ingest(src, 3); err == nil || !strings.Contains(err.Error(), "record 4") {
			t.Fatalf("error %v, want record-4 attribution", err)
		}
	})
	t.Run("swapped-slices", func(t *testing.T) {
		// Generators may replace rec.X/rec.Labels with their own
		// slices; the source copies them back into batch memory.
		src, err := FromFunc(schema, len(ds.Records), func(i int, rec *dataset.Record) error {
			r := &ds.Records[i]
			rec.ID, rec.Lat, rec.Lon = r.ID, r.Lat, r.Lon
			rec.X = r.X
			rec.Labels = r.Labels
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Ingest(src, 16)
		if err != nil {
			t.Fatal(err)
		}
		equalDatasets(t, got, ds)
	})
	t.Run("wrong-length", func(t *testing.T) {
		src, _ := FromFunc(schema, 3, func(i int, rec *dataset.Record) error {
			rec.X = rec.X[:1]
			return nil
		})
		if _, err := Ingest(src, 2); err == nil {
			t.Fatal("expected wrong-length error")
		}
	})
	t.Run("bad-args", func(t *testing.T) {
		if _, err := FromFunc(schema, -1, func(int, *dataset.Record) error { return nil }); err == nil {
			t.Error("expected negative-count error")
		}
		if _, err := FromFunc(schema, 1, nil); err == nil {
			t.Error("expected nil-fn error")
		}
	})
}

func TestBatchReserveTruncate(t *testing.T) {
	var b Batch
	b.Reserve(8, 3, 2)
	if b.Len() != 8 || len(b.X) != 24 || len(b.Y) != 16 {
		t.Fatalf("after Reserve: len=%d X=%d Y=%d", b.Len(), len(b.X), len(b.Y))
	}
	b.XRow(7)[2] = 42
	b.Truncate(5)
	if b.Len() != 5 || len(b.X) != 15 || len(b.ID) != 5 {
		t.Fatalf("after Truncate: len=%d X=%d ID=%d", b.Len(), len(b.X), len(b.ID))
	}
	defer func() {
		if recover() == nil {
			t.Error("growing Truncate did not panic")
		}
	}()
	b.Truncate(6)
}
