package render

import (
	"strings"
	"testing"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

func TestPartitionMap(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	p, err := partition.New(grid, 2, []int{
		0, 0, 1, 1,
		0, 0, 1, 1,
		0, 0, 1, 1,
		0, 0, 1, 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := Partition(p, 64)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	for _, line := range lines {
		if line != "0011" {
			t.Errorf("line = %q, want 0011", line)
		}
	}
}

func TestPartitionMapOrientation(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	// Region 1 covers row 1 (the northern row): it must be drawn on
	// the FIRST output line (top of the map).
	p, err := partition.New(grid, 2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(Partition(p, 8), "\n"), "\n")
	if lines[0] != "11" || lines[1] != "00" {
		t.Errorf("map = %v, want [11 00]", lines)
	}
}

func TestPartitionDownsampling(t *testing.T) {
	grid := geo.MustGrid(128, 128)
	p, err := partition.Single(grid)
	if err != nil {
		t.Fatal(err)
	}
	got := Partition(p, 16)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("downsampled lines = %d, want 16", len(lines))
	}
	if len(lines[0]) != 16 {
		t.Fatalf("downsampled cols = %d, want 16", len(lines[0]))
	}
	// Default maxSide kicks in for non-positive values.
	if got := Partition(p, 0); len(strings.Split(strings.TrimRight(got, "\n"), "\n")) != 64 {
		t.Error("default maxSide not applied")
	}
}

func TestHistogram(t *testing.T) {
	got := Histogram([]int{10, 5, 0}, 10)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("max bar not full: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("zero bar should be empty: %q", lines[2])
	}
	if !strings.HasSuffix(lines[0], " 10") {
		t.Errorf("count missing: %q", lines[0])
	}
	// Degenerate bar width falls back to the default.
	if got := Histogram([]int{1}, 0); !strings.Contains(got, "#") {
		t.Error("default bar width not applied")
	}
}
