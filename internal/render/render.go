// Package render draws partitions as ASCII maps for CLI tools and
// examples: each grid cell becomes a glyph keyed by its region, so
// neighborhood boundaries are visible in a terminal.
package render

import (
	"fmt"
	"strings"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// glyphs cycle over regions; adjacent tree leaves get consecutive ids
// so neighboring regions rarely collide.
const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// Partition renders the partition as an ASCII map with at most
// maxSide characters per side, downsampling larger grids by point
// sampling. Row 0 (the grid's southern edge) is drawn at the bottom,
// matching map orientation.
func Partition(p *partition.Partition, maxSide int) string {
	if maxSide <= 0 {
		maxSide = 64
	}
	grid := p.Grid()
	rows, cols := grid.U, grid.V
	if rows > maxSide {
		rows = maxSide
	}
	if cols > maxSide {
		cols = maxSide
	}
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		srcRow := r * grid.U / rows
		for c := 0; c < cols; c++ {
			srcCol := c * grid.V / cols
			region, err := p.RegionOfCell(geo.Cell{Row: srcRow, Col: srcCol})
			if err != nil {
				b.WriteByte('?')
				continue
			}
			b.WriteByte(glyphs[region%len(glyphs)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram renders per-region populations as a horizontal bar chart
// (one row per region, ordered by id), capped at barWidth characters.
func Histogram(pop []int, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 40
	}
	max := 0
	for _, n := range pop {
		if n > max {
			max = n
		}
	}
	var b strings.Builder
	for r, n := range pop {
		bar := 0
		if max > 0 {
			bar = n * barWidth / max
		}
		fmt.Fprintf(&b, "%-5s |%s%s| %d\n",
			fmt.Sprintf("N%d", r),
			strings.Repeat("#", bar),
			strings.Repeat(" ", barWidth-bar),
			n)
	}
	return b.String()
}
