package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fairindex/internal/geo"
)

// TestCSVRoundTripProperty: any structurally valid dataset survives a
// write/read cycle byte-exactly in payload (IDs, cells, features,
// labels).
func TestCSVRoundTripProperty(t *testing.T) {
	box := geo.BBox{MinLat: 10, MinLon: 20, MaxLat: 11, MaxLon: 21}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(12)+1, rng.Intn(12)+1)
		mapper, err := geo.NewMapper(grid, box)
		if err != nil {
			return false
		}
		nf := rng.Intn(4) + 1
		nt := rng.Intn(3) + 1
		ds := &Dataset{
			Name: "prop",
			Grid: grid,
			Box:  box,
		}
		for j := 0; j < nf; j++ {
			ds.FeatureNames = append(ds.FeatureNames, fmt.Sprintf("f%d", j))
		}
		for j := 0; j < nt; j++ {
			ds.TaskNames = append(ds.TaskNames, fmt.Sprintf("t%d", j))
		}
		n := rng.Intn(40) + 1
		for i := 0; i < n; i++ {
			lat := box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat)*0.999
			lon := box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon)*0.999
			rec := Record{
				ID:   fmt.Sprintf("r%d", i),
				Lat:  lat,
				Lon:  lon,
				Cell: mapper.CellOf(lat, lon),
			}
			for j := 0; j < nf; j++ {
				rec.X = append(rec.X, rng.NormFloat64()*100)
			}
			for j := 0; j < nt; j++ {
				rec.Labels = append(rec.Labels, rng.Intn(2))
			}
			ds.Records = append(ds.Records, rec)
		}
		if err := ds.Validate(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(ds, &buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, ds.Name, grid, box)
		if err != nil {
			return false
		}
		if back.Len() != ds.Len() {
			return false
		}
		for i := range ds.Records {
			a, b := ds.Records[i], back.Records[i]
			if a.ID != b.ID || a.Cell != b.Cell ||
				!reflect.DeepEqual(a.X, b.X) || !reflect.DeepEqual(a.Labels, b.Labels) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
