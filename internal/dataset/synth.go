package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"fairindex/internal/geo"
)

// CitySpec parameterizes the synthetic city generator. The generator
// stands in for the EdGap socio-economic dataset used by the paper
// (see DESIGN.md §4 for the substitution rationale). It produces a
// population with three properties the paper's phenomenon depends on:
//
//  1. spatially clustered records (schools concentrate in districts);
//  2. feature–label correlation strong enough to train a classifier;
//  3. district-level *label shocks* — residual label structure that is
//     correlated with location but invisible in the features, so a
//     globally calibrated model is locally miscalibrated.
//
// The shocks are drawn with zero mean so citywide calibration stays
// close to 1 while per-neighborhood calibration spreads, matching the
// evidence in the paper's Figure 6.
type CitySpec struct {
	Name       string
	NumRecords int
	Box        geo.BBox
	Districts  int     // number of population clusters
	ShockScale float64 // magnitude of district label shocks (0 disables)
	Seed       int64
	// WeightTail, when positive, switches district sampling weights
	// from the near-uniform legacy draw to a Pareto-like heavy tail
	// with this exponent: a handful of mega-districts dominate the
	// population, the skew real city workloads show. Zero keeps the
	// legacy behavior (and the exact record streams of LA/Houston).
	WeightTail float64
}

// Scaled returns a copy of spec grown to n records — the spec family
// behind the 10k/100k/1M build benchmarks. The district count grows
// like √n so cluster density stays city-like instead of smearing into
// uniform noise, and district weights switch to a heavy tail
// (WeightTail) so population — and therefore the label shocks that
// drive group-correlated miscalibration — concentrates in a few
// dominant clusters. Deterministic for a fixed (spec, n).
func Scaled(spec CitySpec, n int) CitySpec {
	spec.Name = fmt.Sprintf("%s %d", spec.Name, n)
	spec.NumRecords = n
	if d := int(math.Sqrt(float64(n)) / 2); d > spec.Districts {
		spec.Districts = d
	}
	spec.WeightTail = 1.3
	spec.Seed = spec.Seed*31 + int64(n)
	return spec
}

// LA returns the spec mirroring the paper's Los Angeles dataset
// (1153 records).
func LA() CitySpec {
	return CitySpec{
		Name:       "Los Angeles",
		NumRecords: 1153,
		Box:        geo.BBox{MinLat: 33.60, MinLon: -118.70, MaxLat: 34.40, MaxLon: -117.80},
		Districts:  14,
		ShockScale: 2.0,
		Seed:       90001,
	}
}

// Houston returns the spec mirroring the paper's Houston dataset
// (966 records).
func Houston() CitySpec {
	return CitySpec{
		Name:       "Houston",
		NumRecords: 966,
		Box:        geo.BBox{MinLat: 29.40, MinLon: -95.80, MaxLat: 30.20, MaxLon: -95.00},
		Districts:  11,
		ShockScale: 2.0,
		Seed:       77001,
	}
}

// Label-generation thresholds from §5.1 of the paper.
const (
	// ACTThreshold: students' average ACT at or above this value yields
	// a positive ACT label ("setting a threshold of 22 on the average
	// ACT performance").
	ACTThreshold = 22.0
	// EmploymentGapThreshold: the family employment gap (the share of
	// families without stable employment, a rate in percent) at or
	// below this value yields a positive Employment label ("the
	// threshold for label generation based on family employment is set
	// to 10 percent").
	EmploymentGapThreshold = 10.0
)

// district is one population cluster of the synthetic city.
type district struct {
	lat, lon   float64 // cluster center
	sigmaLat   float64
	sigmaLon   float64
	weight     float64 // sampling weight
	incomeBase float64 // k$, determines the socio-economic profile
	shockACT   float64 // residual ACT shift invisible to features
	shockEmp   float64 // residual employment shift invisible to features
}

// Generate builds a synthetic city dataset on the given grid. It is
// fully deterministic for a fixed spec. The feature columns are
// StdFeatureNames and the tasks are StdTaskNames.
func Generate(spec CitySpec, grid geo.Grid) (*Dataset, error) {
	if spec.NumRecords <= 0 {
		return nil, fmt.Errorf("dataset: spec %q: NumRecords must be positive, got %d", spec.Name, spec.NumRecords)
	}
	if spec.Districts <= 0 {
		return nil, fmt.Errorf("dataset: spec %q: Districts must be positive, got %d", spec.Name, spec.Districts)
	}
	mapper, err := geo.NewMapper(grid, spec.Box)
	if err != nil {
		return nil, fmt.Errorf("dataset: spec %q: %w", spec.Name, err)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	districts := makeDistricts(spec, rng)

	ds := &Dataset{
		Name:         spec.Name,
		Grid:         grid,
		Box:          spec.Box,
		FeatureNames: append([]string(nil), StdFeatureNames...),
		TaskNames:    append([]string(nil), StdTaskNames...),
		Records:      make([]Record, 0, spec.NumRecords),
	}

	latSpan := spec.Box.MaxLat - spec.Box.MinLat
	lonSpan := spec.Box.MaxLon - spec.Box.MinLon

	var totalWeight float64
	for i := range districts {
		totalWeight += districts[i].weight
	}

	for i := 0; i < spec.NumRecords; i++ {
		d := &districts[pickDistrict(districts, totalWeight, rng)]

		lat := clampF(d.lat+rng.NormFloat64()*d.sigmaLat, spec.Box.MinLat, spec.Box.MaxLat-latSpan*1e-9)
		lon := clampF(d.lon+rng.NormFloat64()*d.sigmaLon, spec.Box.MinLon, spec.Box.MaxLon-lonSpan*1e-9)

		// Income combines the district's base level, a smooth west-east
		// gradient and idiosyncratic noise.
		gradient := 10 * (lon - spec.Box.MinLon) / lonSpan
		income := clampF(d.incomeBase+gradient+rng.NormFloat64()*11, 15, 250)
		incomeZ := (income - 62) / 28

		college := clampF(42+16*incomeZ+rng.NormFloat64()*7, 5, 90)
		unemployment := clampF(13-4.5*incomeZ+rng.NormFloat64()*2.6, 1.5, 35)
		marriage := clampF(48+7*incomeZ+rng.NormFloat64()*6, 18, 82)
		lunch := clampF(52-17*incomeZ+rng.NormFloat64()*8, 3, 97)

		// ACT: driven by the socio-economic profile plus the district
		// shock. The shock term is the only part a feature-based model
		// cannot explain except through location.
		act := 21.2 +
			2.1*incomeZ +
			0.045*(college-42) -
			0.03*(lunch-52) +
			spec.ShockScale*d.shockACT +
			rng.NormFloat64()*1.9
		act = clampF(act, 10, 34)

		// Family employment gap: share of families without stable
		// employment (percent). Correlates with unemployment but has
		// its own district shock so the two tasks favor different
		// partitionings (§4.3 motivation).
		empGap := clampF(
			9.5+0.55*(unemployment-13)-1.4*incomeZ+
				spec.ShockScale*d.shockEmp+
				rng.NormFloat64()*2.4,
			0.5, 40)

		labelACT := 0
		if act >= ACTThreshold {
			labelACT = 1
		}
		labelEmp := 0
		if empGap <= EmploymentGapThreshold {
			labelEmp = 1
		}

		ds.Records = append(ds.Records, Record{
			ID:     fmt.Sprintf("%s-%05d", shortName(spec.Name), i),
			Lat:    lat,
			Lon:    lon,
			Cell:   mapper.CellOf(lat, lon),
			X:      []float64{unemployment, college, marriage, income, lunch},
			Labels: []int{labelACT, labelEmp},
		})
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated city failed validation: %w", err)
	}
	return ds, nil
}

// makeDistricts draws the city's population clusters. Shocks are
// centered so they cancel citywide (keeping overall calibration near
// 1) while each district is systematically shifted.
func makeDistricts(spec CitySpec, rng *rand.Rand) []district {
	ds := make([]district, spec.Districts)
	latSpan := spec.Box.MaxLat - spec.Box.MinLat
	lonSpan := spec.Box.MaxLon - spec.Box.MinLon
	var meanShockACT, meanShockEmp float64
	for i := range ds {
		ds[i] = district{
			lat:      spec.Box.MinLat + latSpan*(0.12+0.76*rng.Float64()),
			lon:      spec.Box.MinLon + lonSpan*(0.12+0.76*rng.Float64()),
			sigmaLat: latSpan * (0.03 + 0.05*rng.Float64()),
			sigmaLon: lonSpan * (0.03 + 0.05*rng.Float64()),
		}
		// One uniform draw feeds both weight models, in the same stream
		// position as before, so the legacy record streams (LA, Houston)
		// are untouched when WeightTail is zero.
		wu := rng.Float64()
		if spec.WeightTail > 0 {
			if wu > 0.999 {
				wu = 0.999
			}
			ds[i].weight = math.Pow(1/(1-wu), spec.WeightTail)
		} else {
			ds[i].weight = 0.35 + wu
		}
		ds[i].incomeBase = clampF(62+rng.NormFloat64()*22, 25, 160)
		ds[i].shockACT = rng.NormFloat64() * 2.4
		ds[i].shockEmp = rng.NormFloat64() * 3.1
		meanShockACT += ds[i].shockACT
		meanShockEmp += ds[i].shockEmp
	}
	meanShockACT /= float64(len(ds))
	meanShockEmp /= float64(len(ds))
	for i := range ds {
		ds[i].shockACT -= meanShockACT
		ds[i].shockEmp -= meanShockEmp
	}
	return ds
}

// pickDistrict samples a district index proportional to weight.
// total must be the sum of all weights (hoisted out of the per-record
// loop by the caller; the selection itself is unchanged).
func pickDistrict(ds []district, total float64, rng *rand.Rand) int {
	x := rng.Float64() * total
	for i := range ds {
		x -= ds[i].weight
		if x <= 0 {
			return i
		}
	}
	return len(ds) - 1
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// shortName derives a compact record-ID prefix from a city name.
func shortName(name string) string {
	out := make([]rune, 0, 3)
	for _, r := range name {
		if r >= 'A' && r <= 'Z' {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		n := []rune(name)
		if len(n) > 3 {
			n = n[:3]
		}
		return string(n)
	}
	return string(out)
}
