package dataset

import (
	"sort"
	"testing"

	"fairindex/internal/geo"
)

// EncodeGrouped must describe exactly the matrix Encode materializes:
// same names, same location columns, and concat(Base[i],
// Shared[Group[i]]) bit-equal to the dense row.
func TestEncodeGroupedMatchesDense(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	spec := LA()
	spec.NumRecords = 300
	ds, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	numRegions := 7
	regionOf := make([]int, ds.Len())
	centroids := make([][2]float64, numRegions)
	for i := range regionOf {
		regionOf[i] = i % numRegions
	}
	for r := range centroids {
		centroids[r] = [2]float64{float64(r) / 10, 1 - float64(r)/10}
	}
	for _, enc := range []Encoding{EncDefault, EncCentroid, EncOneHot, EncCentroidOneHot} {
		dense, err := Encode(ds, regionOf, numRegions, centroids, enc)
		if err != nil {
			t.Fatalf("%v: Encode: %v", enc, err)
		}
		grouped, err := EncodeGrouped(ds, regionOf, numRegions, centroids, enc)
		if err != nil {
			t.Fatalf("%v: EncodeGrouped: %v", enc, err)
		}
		if !grouped.Grouped() || dense.Grouped() {
			t.Fatalf("%v: Grouped() flags wrong", enc)
		}
		if len(grouped.Names) != len(dense.Names) {
			t.Fatalf("%v: %d names vs %d", enc, len(grouped.Names), len(dense.Names))
		}
		for i := range dense.Names {
			if grouped.Names[i] != dense.Names[i] {
				t.Fatalf("%v: name %d %q vs %q", enc, i, grouped.Names[i], dense.Names[i])
			}
		}
		if len(grouped.LocCols) != len(dense.LocCols) {
			t.Fatalf("%v: loc col counts differ", enc)
		}
		for i := range dense.LocCols {
			if grouped.LocCols[i] != dense.LocCols[i] {
				t.Fatalf("%v: loc col %d differs", enc, i)
			}
		}
		for i := range dense.X {
			row := dense.X[i]
			base := grouped.Base[i]
			shared := grouped.Shared[grouped.Group[i]]
			if len(base)+len(shared) != len(row) {
				t.Fatalf("%v: row %d width %d vs %d", enc, i, len(base)+len(shared), len(row))
			}
			for j, v := range base {
				if row[j] != v {
					t.Fatalf("%v: row %d base col %d: %v vs %v", enc, i, j, v, row[j])
				}
			}
			for j, v := range shared {
				if row[len(base)+j] != v {
					t.Fatalf("%v: row %d shared col %d: %v vs %v", enc, i, j, v, row[len(base)+j])
				}
			}
		}
	}
}

func TestEncodeGroupedErrors(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	spec := Houston()
	spec.NumRecords = 20
	ds, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeGrouped(ds, make([]int, 3), 2, make([][2]float64, 2), EncCentroid); err == nil {
		t.Fatal("expected regionOf length error")
	}
	if _, err := EncodeGrouped(ds, make([]int, ds.Len()), 4, make([][2]float64, 2), EncCentroid); err == nil {
		t.Fatal("expected centroid count error")
	}
	bad := make([]int, ds.Len())
	bad[5] = 9
	if _, err := EncodeGrouped(ds, bad, 4, make([][2]float64, 4), EncCentroid); err == nil {
		t.Fatal("expected region range error")
	}
}

// Scaled specs must be deterministic, hit the requested size, and
// actually skew population into dominant clusters.
func TestScaledSpec(t *testing.T) {
	spec := Scaled(LA(), 10000)
	if spec.NumRecords != 10000 {
		t.Fatalf("NumRecords = %d", spec.NumRecords)
	}
	if spec.Districts <= LA().Districts {
		t.Fatalf("districts did not grow: %d", spec.Districts)
	}
	if spec.WeightTail <= 0 {
		t.Fatal("expected a heavy weight tail")
	}
	grid := geo.MustGrid(64, 64)
	a, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 10000 || b.Len() != a.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i].Lat != b.Records[i].Lat || a.Records[i].Lon != b.Records[i].Lon {
			t.Fatalf("record %d not deterministic", i)
		}
	}
	// Skew check: with the heavy weight tail, the most populated decile
	// of occupied cells must hold clearly more of the population than
	// the same spec generated with the legacy near-uniform weights.
	legacy := spec
	legacy.WeightTail = 0
	c, err := Generate(legacy, grid)
	if err != nil {
		t.Fatal(err)
	}
	skewed := topDecileShare(a.CellCounts())
	flat := topDecileShare(c.CellCounts())
	if skewed <= flat+0.03 {
		t.Fatalf("heavy tail did not concentrate population: top-decile share %.3f (skewed) vs %.3f (legacy)", skewed, flat)
	}
}

// topDecileShare returns the fraction of all records held by the most
// populated 10% of occupied cells.
func topDecileShare(counts []int) float64 {
	occupied := make([]int, 0, len(counts))
	total := 0
	for _, c := range counts {
		if c > 0 {
			occupied = append(occupied, c)
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(occupied)))
	top := len(occupied) / 10
	if top == 0 {
		top = 1
	}
	mass := 0
	for _, c := range occupied[:top] {
		mass += c
	}
	return float64(mass) / float64(total)
}
