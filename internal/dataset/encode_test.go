package dataset

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func encFixture(t *testing.T) (*Dataset, []int, [][2]float64) {
	t.Helper()
	ds := tinyDataset(t)
	regionOf := []int{0, 1, 1}
	centroids := [][2]float64{{0.25, 0.25}, {0.75, 0.75}}
	return ds, regionOf, centroids
}

func TestEncodeCentroid(t *testing.T) {
	ds, regionOf, centroids := encFixture(t)
	enc, err := Encode(ds, regionOf, 2, centroids, EncCentroid)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.X) != 3 {
		t.Fatalf("rows = %d", len(enc.X))
	}
	wantNames := []string{"f1", "f2", "loc:row", "loc:col"}
	if !reflect.DeepEqual(enc.Names, wantNames) {
		t.Errorf("names = %v, want %v", enc.Names, wantNames)
	}
	if !reflect.DeepEqual(enc.LocCols, []int{2, 3}) {
		t.Errorf("LocCols = %v", enc.LocCols)
	}
	if got := enc.X[0]; !reflect.DeepEqual(got, []float64{1, 2, 0.25, 0.25}) {
		t.Errorf("row 0 = %v", got)
	}
	if got := enc.X[2]; !reflect.DeepEqual(got, []float64{5, 6, 0.75, 0.75}) {
		t.Errorf("row 2 = %v", got)
	}
}

func TestEncodeOneHot(t *testing.T) {
	ds, regionOf, _ := encFixture(t)
	enc, err := Encode(ds, regionOf, 2, nil, EncOneHot)
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.X[0]; !reflect.DeepEqual(got, []float64{1, 2, 1, 0}) {
		t.Errorf("row 0 = %v", got)
	}
	if got := enc.X[1]; !reflect.DeepEqual(got, []float64{3, 4, 0, 1}) {
		t.Errorf("row 1 = %v", got)
	}
	for _, c := range enc.LocCols {
		if !strings.HasPrefix(enc.Names[c], "loc:") {
			t.Errorf("LocCols includes non-location column %q", enc.Names[c])
		}
	}
}

func TestEncodeCentroidOneHot(t *testing.T) {
	ds, regionOf, centroids := encFixture(t)
	enc, err := Encode(ds, regionOf, 2, centroids, EncCentroidOneHot)
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.X[1]; !reflect.DeepEqual(got, []float64{3, 4, 0.75, 0.75, 0, 1}) {
		t.Errorf("row 1 = %v", got)
	}
	if len(enc.LocCols) != 4 {
		t.Errorf("LocCols = %v, want 4 entries", enc.LocCols)
	}
}

func TestEncodeErrors(t *testing.T) {
	ds, regionOf, centroids := encFixture(t)
	if _, err := Encode(ds, regionOf[:1], 2, centroids, EncCentroid); err == nil {
		t.Error("expected regionOf length error")
	}
	if _, err := Encode(ds, regionOf, 5, centroids, EncCentroid); err == nil {
		t.Error("expected centroid count error")
	}
	if _, err := Encode(ds, []int{0, 1, 9}, 2, centroids, EncOneHot); err == nil {
		t.Error("expected out-of-range region error")
	}
	if _, err := Encode(ds, regionOf, 2, centroids, Encoding(99)); err == nil {
		t.Error("expected unknown encoding error")
	}
}

func TestEncodingString(t *testing.T) {
	tests := []struct {
		enc  Encoding
		want string
	}{
		{EncDefault, "default(centroid+onehot)"},
		{EncCentroid, "centroid"},
		{EncOneHot, "onehot"},
		{EncCentroidOneHot, "centroid+onehot"},
		{Encoding(7), "Encoding(7)"},
	}
	for _, tt := range tests {
		if got := tt.enc.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if EncDefault.Resolve() != EncCentroidOneHot {
		t.Error("EncDefault must resolve to EncCentroidOneHot")
	}
	if EncCentroid.Resolve() != EncCentroid {
		t.Error("Resolve must be identity on concrete encodings")
	}
}

func TestEncodeDefaultEncoding(t *testing.T) {
	ds, regionOf, centroids := encFixture(t)
	enc, err := Encode(ds, regionOf, 2, centroids, EncDefault)
	if err != nil {
		t.Fatal(err)
	}
	// Default = centroid + one-hot: 2 base + 2 centroid + 2 one-hot.
	if len(enc.Names) != 6 {
		t.Errorf("default encoding has %d columns, want 6: %v", len(enc.Names), enc.Names)
	}
}

func TestAggregateImportance(t *testing.T) {
	ds, regionOf, centroids := encFixture(t)
	enc, err := Encode(ds, regionOf, 2, centroids, EncCentroid)
	if err != nil {
		t.Fatal(err)
	}
	names, agg, err := enc.AggregateImportance([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"f1", "f2", "Neighborhood"}
	if !reflect.DeepEqual(names, wantNames) {
		t.Errorf("names = %v", names)
	}
	want := []float64{0.1, 0.2, 0.7}
	for i := range want {
		if math.Abs(agg[i]-want[i]) > 1e-12 {
			t.Errorf("agg[%d] = %v, want %v", i, agg[i], want[i])
		}
	}
	if _, _, err := enc.AggregateImportance([]float64{1}); err == nil {
		t.Error("expected length error")
	}
}
