package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"fairindex/internal/geo"
)

// csvMetaCols is the number of leading non-feature columns in the
// canonical CSV layout: id, lat, lon.
const csvMetaCols = 3

// RowError reports a decode or validation failure for one input row,
// carrying the 1-based line number (as reported by the CSV layer, so
// quoted newlines and blank lines do not shift it) and the offending
// column name when one can be identified. ReadCSV, the chunked
// streaming reader (internal/stream) and streaming ingestion all
// return the same type, so callers handle malformed input uniformly:
//
//	var re *dataset.RowError
//	if errors.As(err, &re) {
//		log.Printf("skipping line %d (%s)", re.Line, re.Field)
//	}
type RowError struct {
	Line  int    // 1-based line in the input
	Field string // offending column name; "" when the whole row is at fault
	Err   error
}

func (e *RowError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("dataset: line %d, field %q: %v", e.Line, e.Field, e.Err)
	}
	return fmt.Sprintf("dataset: line %d: %v", e.Line, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// csvErrLine extracts the input line from a csv.Reader parse error
// (0 when the error carries no position).
func csvErrLine(err error) int {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		return pe.Line
	}
	return 0
}

// WriteCSV serializes the dataset in a canonical layout:
//
//	id, lat, lon, <feature...>, label:<task...>
//
// Cells are not stored; they are recomputed from coordinates on load.
func WriteCSV(ds *Dataset, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, csvMetaCols+ds.NumFeatures()+ds.NumTasks())
	header = append(header, "id", "lat", "lon")
	header = append(header, ds.FeatureNames...)
	for _, t := range ds.TaskNames {
		header = append(header, "label:"+t)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range ds.Records {
		r := &ds.Records[i]
		row = row[:0]
		row = append(row, r.ID,
			strconv.FormatFloat(r.Lat, 'f', -1, 64),
			strconv.FormatFloat(r.Lon, 'f', -1, 64))
		for _, x := range r.X {
			row = append(row, strconv.FormatFloat(x, 'f', -1, 64))
		}
		for _, y := range r.Labels {
			row = append(row, strconv.Itoa(y))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseCSVHeader validates a canonical header row (id, lat, lon,
// <feature...>, label:<task...>) and splits it into feature and task
// names. line is the 1-based input line of the header, used for error
// attribution.
func ParseCSVHeader(header []string, line int) (featureNames, taskNames []string, err error) {
	if len(header) < csvMetaCols+1 {
		return nil, nil, &RowError{Line: line,
			Err: fmt.Errorf("header has %d columns, need at least %d", len(header), csvMetaCols+1)}
	}
	if header[0] != "id" || header[1] != "lat" || header[2] != "lon" {
		return nil, nil, &RowError{Line: line,
			Err: fmt.Errorf("header must start with id,lat,lon; got %v", header[:csvMetaCols])}
	}
	inLabels := false
	for _, h := range header[csvMetaCols:] {
		if task, ok := strings.CutPrefix(h, "label:"); ok {
			inLabels = true
			taskNames = append(taskNames, task)
			continue
		}
		if inLabels {
			return nil, nil, &RowError{Line: line, Field: h,
				Err: errors.New("feature column after label columns")}
		}
		featureNames = append(featureNames, h)
	}
	if len(taskNames) == 0 {
		return nil, nil, &RowError{Line: line, Err: errors.New("no label columns")}
	}
	return featureNames, taskNames, nil
}

// RowDecoder decodes canonical CSV data rows. One decoder is built
// per input (header plus geography) and reused across rows; ReadCSV
// and the chunked streaming reader share it, so both paths parse
// bit-identical values and report identical RowError diagnostics.
type RowDecoder struct {
	mapper       geo.Mapper
	featureNames []string
	taskNames    []string
}

// NewRowDecoder returns a decoder for rows following the given header
// names, assigning grid cells through mapper.
func NewRowDecoder(mapper geo.Mapper, featureNames, taskNames []string) *RowDecoder {
	return &RowDecoder{mapper: mapper, featureNames: featureNames, taskNames: taskNames}
}

// NumFields returns the expected number of fields per data row.
func (d *RowDecoder) NumFields() int {
	return csvMetaCols + len(d.featureNames) + len(d.taskNames)
}

// Decode parses one data row into rec, assigning the enclosing grid
// cell from the coordinates. rec.X and rec.Labels must be pre-sized
// to the decoder's feature and task counts — Decode fills them in
// place, so chunked readers can alias batch-owned backing arrays and
// decode without per-row allocation. line attributes errors.
func (d *RowDecoder) Decode(line int, row []string, rec *Record) error {
	if len(row) != d.NumFields() {
		return &RowError{Line: line,
			Err: fmt.Errorf("%d fields, want %d", len(row), d.NumFields())}
	}
	lat, err := strconv.ParseFloat(row[1], 64)
	if err != nil {
		return &RowError{Line: line, Field: "lat", Err: err}
	}
	lon, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return &RowError{Line: line, Field: "lon", Err: err}
	}
	rec.ID = row[0]
	rec.Lat, rec.Lon = lat, lon
	rec.Cell = d.mapper.CellOf(lat, lon)
	for j := range d.featureNames {
		rec.X[j], err = strconv.ParseFloat(row[csvMetaCols+j], 64)
		if err != nil {
			return &RowError{Line: line, Field: d.featureNames[j], Err: err}
		}
		// Check value invariants here rather than leaving them to
		// Dataset.Validate, so the failure carries the input line.
		if math.IsNaN(rec.X[j]) || math.IsInf(rec.X[j], 0) {
			return &RowError{Line: line, Field: d.featureNames[j],
				Err: fmt.Errorf("%w: %v", ErrBadValue, rec.X[j])}
		}
	}
	off := csvMetaCols + len(d.featureNames)
	for j := range d.taskNames {
		rec.Labels[j], err = strconv.Atoi(row[off+j])
		if err != nil {
			return &RowError{Line: line, Field: "label:" + d.taskNames[j], Err: err}
		}
		if y := rec.Labels[j]; y != 0 && y != 1 {
			return &RowError{Line: line, Field: "label:" + d.taskNames[j],
				Err: fmt.Errorf("%w: %d", ErrBadLabel, y)}
		}
	}
	return nil
}

// ReadCSV parses the canonical layout produced by WriteCSV. The grid
// and box determine cell assignment. The dataset is validated before
// being returned. Malformed rows surface as *RowError with the
// 1-based input line and the offending column name.
func ReadCSV(r io.Reader, name string, grid geo.Grid, box geo.BBox) (*Dataset, error) {
	mapper, err := geo.NewMapper(grid, box)
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	hline, _ := cr.FieldPos(0)
	featureNames, taskNames, err := ParseCSVHeader(header, hline)
	if err != nil {
		return nil, err
	}

	ds := &Dataset{
		Name:         name,
		Grid:         grid,
		Box:          box,
		FeatureNames: featureNames,
		TaskNames:    taskNames,
	}
	dec := NewRowDecoder(mapper, featureNames, taskNames)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, &RowError{Line: csvErrLine(err), Err: err}
		}
		line, _ := cr.FieldPos(0)
		rec := Record{
			X:      make([]float64, len(featureNames)),
			Labels: make([]int, len(taskNames)),
		}
		if err := dec.Decode(line, row, &rec); err != nil {
			return nil, err
		}
		ds.Records = append(ds.Records, rec)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
