package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fairindex/internal/geo"
)

// csvMetaCols is the number of leading non-feature columns in the
// canonical CSV layout: id, lat, lon.
const csvMetaCols = 3

// WriteCSV serializes the dataset in a canonical layout:
//
//	id, lat, lon, <feature...>, label:<task...>
//
// Cells are not stored; they are recomputed from coordinates on load.
func WriteCSV(ds *Dataset, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, csvMetaCols+ds.NumFeatures()+ds.NumTasks())
	header = append(header, "id", "lat", "lon")
	header = append(header, ds.FeatureNames...)
	for _, t := range ds.TaskNames {
		header = append(header, "label:"+t)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range ds.Records {
		r := &ds.Records[i]
		row = row[:0]
		row = append(row, r.ID,
			strconv.FormatFloat(r.Lat, 'f', -1, 64),
			strconv.FormatFloat(r.Lon, 'f', -1, 64))
		for _, x := range r.X {
			row = append(row, strconv.FormatFloat(x, 'f', -1, 64))
		}
		for _, y := range r.Labels {
			row = append(row, strconv.Itoa(y))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the canonical layout produced by WriteCSV. The grid
// and box determine cell assignment. The dataset is validated before
// being returned.
func ReadCSV(r io.Reader, name string, grid geo.Grid, box geo.BBox) (*Dataset, error) {
	mapper, err := geo.NewMapper(grid, box)
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	if len(header) < csvMetaCols+1 {
		return nil, fmt.Errorf("dataset: csv header has %d columns, need at least %d", len(header), csvMetaCols+1)
	}
	if header[0] != "id" || header[1] != "lat" || header[2] != "lon" {
		return nil, fmt.Errorf("dataset: csv header must start with id,lat,lon; got %v", header[:csvMetaCols])
	}
	var featureNames, taskNames []string
	inLabels := false
	for _, h := range header[csvMetaCols:] {
		if task, ok := strings.CutPrefix(h, "label:"); ok {
			inLabels = true
			taskNames = append(taskNames, task)
			continue
		}
		if inLabels {
			return nil, fmt.Errorf("dataset: feature column %q after label columns", h)
		}
		featureNames = append(featureNames, h)
	}
	if len(taskNames) == 0 {
		return nil, fmt.Errorf("dataset: csv has no label columns")
	}

	ds := &Dataset{
		Name:         name,
		Grid:         grid,
		Box:          box,
		FeatureNames: featureNames,
		TaskNames:    taskNames,
	}
	wantCols := csvMetaCols + len(featureNames) + len(taskNames)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
		if len(row) != wantCols {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, len(row), wantCols)
		}
		lat, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d lat: %w", line, err)
		}
		lon, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d lon: %w", line, err)
		}
		rec := Record{
			ID:     row[0],
			Lat:    lat,
			Lon:    lon,
			Cell:   mapper.CellOf(lat, lon),
			X:      make([]float64, len(featureNames)),
			Labels: make([]int, len(taskNames)),
		}
		for j := range featureNames {
			rec.X[j], err = strconv.ParseFloat(row[csvMetaCols+j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d feature %q: %w", line, featureNames[j], err)
			}
		}
		for j := range taskNames {
			rec.Labels[j], err = strconv.Atoi(row[csvMetaCols+len(featureNames)+j])
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d label %q: %w", line, taskNames[j], err)
			}
		}
		ds.Records = append(ds.Records, rec)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
