package dataset

import (
	"bytes"
	"strings"
	"testing"

	"fairindex/internal/geo"
)

// FuzzDatasetCSV throws arbitrary text at the canonical CSV reader:
// every input must either parse into a dataset that passes Validate
// and survives a write→read round trip, or be rejected with an error
// — never panic. Seeds live in testdata/fuzz/FuzzDatasetCSV and are
// extended inline with the interesting shapes (quoting, wrong arity,
// label prefixes, non-finite numbers).
func FuzzDatasetCSV(f *testing.F) {
	seeds := []string{
		"id,lat,lon,income,label:approved\nr0,34.1,-118.3,1.5,1\nr1,33.9,-118.1,0.5,0\n",
		"id,lat,lon,label:hot\nr0,34.0,-118.2,1\n",
		"id,lat,lon,a,b,label:x,label:y\nr0,34,-118,1,2,0,1\nr1,34.5,-117.5,3,4,1,0\n",
		"id,lat,lon,income,label:approved\n",                        // header only
		"lat,lon,id,income,label:approved\nr0,34,-118,1,1\n",        // wrong meta order
		"id,lat,lon,income\nr0,34,-118,1\n",                         // no labels
		"id,lat,lon,label:a,income\nr0,34,-118,1,2\n",               // feature after label
		"id,lat,lon,income,label:approved\nr0,34,-118,1\n",          // wrong arity
		"id,lat,lon,income,label:approved\nr0,north,-118,1,1\n",     // bad lat
		"id,lat,lon,income,label:approved\nr0,34,-118,NaN,1\n",      // non-finite feature
		"id,lat,lon,income,label:approved\nr0,34,-118,1,2\n",        // non-binary label
		"id,lat,lon,\"inc,ome\",label:approved\nr0,34,-118,1,1\n",   // quoted comma
		"id,lat,lon,income,label:approved\n\"r,0\",34,-118,1e2,0\n", // quoted id, exponent
		"id,lat,lon,income,label:approved\r\nr0,34,-118,1,1\r\n",    // CRLF
		"",
		"\xef\xbb\xbfid,lat,lon,label:x\nr0,34,-118,1\n", // BOM
	}
	for _, s := range seeds {
		f.Add(s)
	}
	grid := geo.MustGrid(8, 8)
	box := geo.BBox{MinLat: 33.5, MinLon: -119, MaxLat: 34.5, MaxLon: -117}
	f.Fuzz(func(t *testing.T, data string) {
		ds, err := ReadCSV(strings.NewReader(data), "fuzz", grid, box)
		if err != nil {
			return // rejected input is the expected outcome
		}
		// Accepted input must be a structurally valid dataset...
		if err := ds.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted a dataset Validate rejects: %v", err)
		}
		// ...that survives the canonical write→read round trip.
		var buf bytes.Buffer
		if err := WriteCSV(ds, &buf); err != nil {
			t.Fatalf("accepted dataset does not serialize: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), "fuzz", grid, box)
		if err != nil {
			t.Fatalf("canonical serialization does not re-parse: %v", err)
		}
		if back.Len() != ds.Len() || back.NumFeatures() != ds.NumFeatures() || back.NumTasks() != ds.NumTasks() {
			t.Fatalf("round trip changed shape: %dx%dx%d -> %dx%dx%d",
				ds.Len(), ds.NumFeatures(), ds.NumTasks(),
				back.Len(), back.NumFeatures(), back.NumTasks())
		}
		for i := range ds.Records {
			a, b := &ds.Records[i], &back.Records[i]
			if a.ID != b.ID || a.Cell != b.Cell {
				t.Fatalf("record %d changed identity: %+v -> %+v", i, a, b)
			}
		}
	})
}
