package dataset

import (
	"math"
	"reflect"
	"testing"

	"fairindex/internal/geo"
)

func TestGenerateLA(t *testing.T) {
	grid := geo.MustGrid(64, 64)
	ds, err := Generate(LA(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1153 {
		t.Errorf("LA record count = %d, want 1153 (paper §5.1)", ds.Len())
	}
	if ds.Name != "Los Angeles" {
		t.Errorf("name = %q", ds.Name)
	}
	if got := ds.FeatureNames; !reflect.DeepEqual(got, StdFeatureNames) {
		t.Errorf("feature names = %v", got)
	}
	if got := ds.TaskNames; !reflect.DeepEqual(got, StdTaskNames) {
		t.Errorf("task names = %v", got)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("generated dataset invalid: %v", err)
	}
}

func TestGenerateHouston(t *testing.T) {
	ds, err := Generate(Houston(), geo.MustGrid(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 966 {
		t.Errorf("Houston record count = %d, want 966 (paper §5.1)", ds.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	grid := geo.MustGrid(32, 32)
	a, err := Generate(LA(), grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(LA(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("generator is not deterministic for a fixed spec")
	}
	// Different seeds must give different data.
	spec := LA()
	spec.Seed++
	c, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateLabelBalance(t *testing.T) {
	// Both tasks should be learnable: neither label should be rarer
	// than ~15% on either city.
	for _, spec := range []CitySpec{LA(), Houston()} {
		ds, err := Generate(spec, geo.MustGrid(64, 64))
		if err != nil {
			t.Fatal(err)
		}
		for task := 0; task < ds.NumTasks(); task++ {
			rate, err := ds.PositiveRate(task)
			if err != nil {
				t.Fatal(err)
			}
			if rate < 0.15 || rate > 0.85 {
				t.Errorf("%s task %d positive rate %v out of [0.15, 0.85]", spec.Name, task, rate)
			}
		}
	}
}

func TestGenerateSpatialClustering(t *testing.T) {
	// Records must be spatially clustered, not uniform: the top-decile
	// densest cells should hold well above their uniform share.
	ds, err := Generate(LA(), geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.CellCounts()
	occupied := 0
	for _, c := range counts {
		if c > 0 {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("no occupied cells")
	}
	// With strong clustering most cells are empty.
	if frac := float64(occupied) / float64(len(counts)); frac > 0.6 {
		t.Errorf("occupied cell fraction %v too high for a clustered population", frac)
	}
}

func TestGenerateFeatureCorrelation(t *testing.T) {
	// Income should correlate positively with the ACT label: the mean
	// income of positive records should exceed that of negatives.
	ds, err := Generate(LA(), geo.MustGrid(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	var posSum, negSum float64
	var posN, negN int
	for _, r := range ds.Records {
		if r.Labels[TaskACT] == 1 {
			posSum += r.X[FeatIncome]
			posN++
		} else {
			negSum += r.X[FeatIncome]
			negN++
		}
	}
	if posN == 0 || negN == 0 {
		t.Fatal("degenerate labels")
	}
	if posSum/float64(posN) <= negSum/float64(negN) {
		t.Error("income does not separate ACT labels; generator lost feature signal")
	}
}

func TestGenerateShockCreatesSpatialResidue(t *testing.T) {
	// With shocks disabled, per-district label rates should be largely
	// explained by features; with shocks enabled the same features
	// leave district-level residue. We proxy this by comparing label
	// rate dispersion across coarse grid blocks between the two modes,
	// holding everything else fixed.
	spec := LA()
	grid := geo.MustGrid(16, 16)
	withShock, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	spec.ShockScale = 0
	noShock, err := Generate(spec, grid)
	if err != nil {
		t.Fatal(err)
	}
	if disp := blockRateDispersion(t, withShock); disp <= blockRateDispersion(t, noShock)*0.9 {
		// Shocked labels should be at least as spatially dispersed.
		t.Errorf("shock did not increase spatial label dispersion: %v vs %v",
			disp, blockRateDispersion(t, noShock))
	}
}

// blockRateDispersion computes the population-weighted variance of the
// ACT-positive rate over 4x4 blocks of the grid.
func blockRateDispersion(t *testing.T, ds *Dataset) float64 {
	t.Helper()
	const blocks = 4
	var count [blocks][blocks]int
	var pos [blocks][blocks]int
	for _, r := range ds.Records {
		br := r.Cell.Row * blocks / ds.Grid.U
		bc := r.Cell.Col * blocks / ds.Grid.V
		count[br][bc]++
		pos[br][bc] += r.Labels[TaskACT]
	}
	overall, err := ds.PositiveRate(TaskACT)
	if err != nil {
		t.Fatal(err)
	}
	var disp float64
	for i := 0; i < blocks; i++ {
		for j := 0; j < blocks; j++ {
			if count[i][j] == 0 {
				continue
			}
			rate := float64(pos[i][j]) / float64(count[i][j])
			w := float64(count[i][j]) / float64(ds.Len())
			disp += w * (rate - overall) * (rate - overall)
		}
	}
	return disp
}

func TestGenerateValidation(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	bad := LA()
	bad.NumRecords = 0
	if _, err := Generate(bad, grid); err == nil {
		t.Error("expected error for zero records")
	}
	bad = LA()
	bad.Districts = 0
	if _, err := Generate(bad, grid); err == nil {
		t.Error("expected error for zero districts")
	}
	bad = LA()
	bad.Box = geo.BBox{}
	if _, err := Generate(bad, grid); err == nil {
		t.Error("expected error for invalid box")
	}
	if _, err := Generate(LA(), geo.Grid{}); err == nil {
		t.Error("expected error for invalid grid")
	}
}

func TestGenerateFeaturesInRange(t *testing.T) {
	ds, err := Generate(Houston(), geo.MustGrid(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ds.Records {
		for j, x := range r.X {
			if math.IsNaN(x) || x < 0 || x > 300 {
				t.Fatalf("record %d feature %d out of range: %v", i, j, x)
			}
		}
		if r.Lat < ds.Box.MinLat || r.Lat > ds.Box.MaxLat || r.Lon < ds.Box.MinLon || r.Lon > ds.Box.MaxLon {
			t.Fatalf("record %d coordinates outside box: %v,%v", i, r.Lat, r.Lon)
		}
	}
}

func TestShortName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Los Angeles", "LA"},
		{"Houston", "H"},
		{"lowercase", "low"},
		{"ab", "ab"},
	}
	for _, tt := range tests {
		if got := shortName(tt.in); got != tt.want {
			t.Errorf("shortName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
