package dataset

import (
	"fmt"
)

// Encoding selects how the categorical neighborhood attribute is
// turned into model features (DESIGN.md §2, "Location encoding").
type Encoding int

const (
	// EncDefault is the zero value and resolves to EncCentroidOneHot,
	// the configuration whose results track the paper's figures (see
	// DESIGN.md §2).
	EncDefault Encoding = iota
	// EncCentroid encodes a record's neighborhood as the normalized
	// (row, col) centroid of its region: two continuous dimensions
	// whose effective granularity grows with tree height.
	EncCentroid
	// EncOneHot encodes the neighborhood as one indicator column per
	// region, the classic categorical treatment.
	EncOneHot
	// EncCentroidOneHot concatenates the centroid and one-hot
	// encodings.
	EncCentroidOneHot
)

// Resolve maps EncDefault to the concrete default encoding.
func (e Encoding) Resolve() Encoding {
	if e == EncDefault {
		return EncCentroidOneHot
	}
	return e
}

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncDefault:
		return "default(centroid+onehot)"
	case EncCentroid:
		return "centroid"
	case EncOneHot:
		return "onehot"
	case EncCentroidOneHot:
		return "centroid+onehot"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// Encoded is a design matrix with metadata about which columns came
// from the location attribute, so feature-importance reports can
// aggregate them back into a single "Neighborhood" entry (Figure 9).
//
// It comes in two layouts sharing the same column order (continuous
// features first, then location columns):
//
//   - Encode materializes dense rows in X;
//   - EncodeGrouped leaves X nil and fills the factorized view
//     instead: row i is conceptually concat(Base[i], Shared[Group[i]]).
//     Every location column depends only on the record's region, so
//     the wide location block is stored once per region — the layout
//     ml.GroupedDesign trains on without ever materializing the
//     O(records × regions) one-hot matrix.
type Encoded struct {
	X       [][]float64 // dense rows; nil when built by EncodeGrouped
	Names   []string
	LocCols []int // indices into Names of location-derived columns

	// Factorized layout (EncodeGrouped only).
	Base   [][]float64 // per-record continuous features (shares Record.X backing)
	Group  []int       // per-record region id
	Shared [][]float64 // per-region location columns
}

// Grouped reports whether the Encoded carries the factorized layout.
func (e *Encoded) Grouped() bool { return e.X == nil }

// Encode builds a design matrix from the dataset's continuous
// features plus the neighborhood attribute.
//
// regionOf[i] is the region id of record i in [0, numRegions);
// centroids[r] is the region's normalized (row, col) centroid in
// [0,1]² (ignored by EncOneHot).
func Encode(ds *Dataset, regionOf []int, numRegions int, centroids [][2]float64, enc Encoding) (*Encoded, error) {
	enc = enc.Resolve()
	if len(regionOf) != ds.Len() {
		return nil, fmt.Errorf("dataset: regionOf has %d entries, want %d", len(regionOf), ds.Len())
	}
	if enc != EncOneHot && len(centroids) < numRegions {
		return nil, fmt.Errorf("dataset: %d centroids for %d regions", len(centroids), numRegions)
	}
	base := ds.NumFeatures()
	var locDims int
	switch enc {
	case EncCentroid:
		locDims = 2
	case EncOneHot:
		locDims = numRegions
	case EncCentroidOneHot:
		locDims = 2 + numRegions
	default:
		return nil, fmt.Errorf("dataset: unknown encoding %v", enc)
	}

	out := &Encoded{
		X:     make([][]float64, ds.Len()),
		Names: make([]string, 0, base+locDims),
	}
	out.Names = append(out.Names, ds.FeatureNames...)
	switch enc {
	case EncCentroid:
		out.Names = append(out.Names, "loc:row", "loc:col")
	case EncOneHot:
		for r := 0; r < numRegions; r++ {
			out.Names = append(out.Names, fmt.Sprintf("loc:N%d", r))
		}
	case EncCentroidOneHot:
		out.Names = append(out.Names, "loc:row", "loc:col")
		for r := 0; r < numRegions; r++ {
			out.Names = append(out.Names, fmt.Sprintf("loc:N%d", r))
		}
	}
	out.LocCols = make([]int, locDims)
	for i := range out.LocCols {
		out.LocCols[i] = base + i
	}

	for i := range ds.Records {
		row, err := EncodeRow(ds.Records[i].X, regionOf[i], numRegions, centroids, enc)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		out.X[i] = row
	}
	return out, nil
}

// EncodeGrouped builds the factorized form of the same design matrix
// Encode would produce: identical column order, names and location
// metadata, but the location block is stored once per region instead
// of once per record. Base rows alias the records' feature slices and
// Group aliases regionOf (no copies); callers must not mutate either
// while the Encoded is in use.
func EncodeGrouped(ds *Dataset, regionOf []int, numRegions int, centroids [][2]float64, enc Encoding) (*Encoded, error) {
	enc = enc.Resolve()
	if len(regionOf) != ds.Len() {
		return nil, fmt.Errorf("dataset: regionOf has %d entries, want %d", len(regionOf), ds.Len())
	}
	if enc != EncOneHot && len(centroids) < numRegions {
		return nil, fmt.Errorf("dataset: %d centroids for %d regions", len(centroids), numRegions)
	}
	base := ds.NumFeatures()
	var locDims int
	switch enc {
	case EncCentroid:
		locDims = 2
	case EncOneHot:
		locDims = numRegions
	case EncCentroidOneHot:
		locDims = 2 + numRegions
	default:
		return nil, fmt.Errorf("dataset: unknown encoding %v", enc)
	}

	out := &Encoded{
		Names: make([]string, 0, base+locDims),
		Base:  make([][]float64, ds.Len()),
		Group: regionOf,
	}
	out.Names = append(out.Names, ds.FeatureNames...)
	switch enc {
	case EncCentroid:
		out.Names = append(out.Names, "loc:row", "loc:col")
	case EncOneHot:
		for r := 0; r < numRegions; r++ {
			out.Names = append(out.Names, fmt.Sprintf("loc:N%d", r))
		}
	case EncCentroidOneHot:
		out.Names = append(out.Names, "loc:row", "loc:col")
		for r := 0; r < numRegions; r++ {
			out.Names = append(out.Names, fmt.Sprintf("loc:N%d", r))
		}
	}
	out.LocCols = make([]int, locDims)
	for i := range out.LocCols {
		out.LocCols[i] = base + i
	}

	for i := range ds.Records {
		r := regionOf[i]
		if r < 0 || r >= numRegions {
			return nil, fmt.Errorf("dataset: record %d: region %d out of range [0,%d)", i, r, numRegions)
		}
		out.Base[i] = ds.Records[i].X
	}
	// One shared location row per region, laid out as a single backing
	// array. The values match EncodeRow's location block exactly.
	backing := make([]float64, numRegions*locDims)
	out.Shared = make([][]float64, numRegions)
	for r := 0; r < numRegions; r++ {
		row := backing[r*locDims : (r+1)*locDims : (r+1)*locDims]
		switch enc {
		case EncCentroid:
			row[0] = centroids[r][0]
			row[1] = centroids[r][1]
		case EncOneHot:
			row[r] = 1
		case EncCentroidOneHot:
			row[0] = centroids[r][0]
			row[1] = centroids[r][1]
			row[2+r] = 1
		}
		out.Shared[r] = row
	}
	return out, nil
}

// EncodeRow builds the model feature row for a single record: its
// continuous features x followed by the location columns for its
// region under the given encoding. This is the per-record core of
// Encode, exposed so a serving index can score one individual without
// materializing a whole dataset.
func EncodeRow(x []float64, region, numRegions int, centroids [][2]float64, enc Encoding) ([]float64, error) {
	enc = enc.Resolve()
	if region < 0 || region >= numRegions {
		return nil, fmt.Errorf("dataset: region %d out of range [0,%d)", region, numRegions)
	}
	if enc != EncOneHot && len(centroids) < numRegions {
		return nil, fmt.Errorf("dataset: %d centroids for %d regions", len(centroids), numRegions)
	}
	base := len(x)
	var row []float64
	switch enc {
	case EncCentroid:
		row = make([]float64, base+2)
		row[base] = centroids[region][0]
		row[base+1] = centroids[region][1]
	case EncOneHot:
		row = make([]float64, base+numRegions)
		row[base+region] = 1
	case EncCentroidOneHot:
		row = make([]float64, base+2+numRegions)
		row[base] = centroids[region][0]
		row[base+1] = centroids[region][1]
		row[base+2+region] = 1
	default:
		return nil, fmt.Errorf("dataset: unknown encoding %v", enc)
	}
	copy(row, x)
	return row, nil
}

// AggregateImportance folds per-column importances back onto the
// dataset's named features plus one aggregate "Neighborhood" entry
// summing all location-derived columns, in Figure 9's feature order.
func (e *Encoded) AggregateImportance(imp []float64) (names []string, agg []float64, err error) {
	if len(imp) != len(e.Names) {
		return nil, nil, fmt.Errorf("dataset: %d importances for %d columns", len(imp), len(e.Names))
	}
	isLoc := make(map[int]bool, len(e.LocCols))
	for _, c := range e.LocCols {
		isLoc[c] = true
	}
	var locSum float64
	for i, v := range imp {
		if isLoc[i] {
			locSum += v
		} else {
			names = append(names, e.Names[i])
			agg = append(agg, v)
		}
	}
	names = append(names, "Neighborhood")
	agg = append(agg, locSum)
	return names, agg, nil
}
