// Package dataset provides the data substrate of the reproduction:
// records of individuals/schools with geographic location, continuous
// socio-economic features and per-task binary labels; a deterministic
// synthetic generator standing in for the EdGap data used by the paper
// (§5.1); CSV import/export; train/test splitting; and encoding of the
// categorical neighborhood attribute into model features.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"fairindex/internal/geo"
)

// Standard feature column order produced by the synthetic generator,
// matching the feature set shown in the paper's Figure 9 heatmaps.
const (
	FeatUnemployment = iota // Unemployment (%)
	FeatCollege             // College Degree (%)
	FeatMarriage            // Marriage (%)
	FeatIncome              // Median Income (k$)
	FeatLunch               // Reduced Lunch (%)
	NumStdFeatures
)

// StdFeatureNames are the display names for the standard feature
// columns, in column order.
var StdFeatureNames = []string{
	"Unemployment (%)",
	"College Degree (%)",
	"Marriage (%)",
	"Median Income",
	"Reduced Lunch (%)",
}

// Task indices produced by the synthetic generator.
const (
	TaskACT        = iota // ACT score above threshold (22)
	TaskEmployment        // family employment gap below threshold (10%)
	NumStdTasks
)

// StdTaskNames are the display names for the standard tasks.
var StdTaskNames = []string{"ACT", "Employment"}

// Record is one individual (a school in the EdGap setting): its
// geographic location, enclosing grid cell, continuous features and
// one binary label per classification task.
type Record struct {
	ID       string
	Lat, Lon float64
	Cell     geo.Cell
	X        []float64 // aligned with Dataset.FeatureNames
	Labels   []int     // aligned with Dataset.TaskNames; values 0/1
}

// Dataset is a named collection of records over a base grid.
type Dataset struct {
	Name         string
	Grid         geo.Grid
	Box          geo.BBox
	FeatureNames []string
	TaskNames    []string
	Records      []Record
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// NumFeatures returns the number of continuous features per record.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// NumTasks returns the number of classification tasks.
func (d *Dataset) NumTasks() int { return len(d.TaskNames) }

// Labels returns the label column for one task as a fresh slice.
func (d *Dataset) Labels(task int) ([]int, error) {
	if task < 0 || task >= d.NumTasks() {
		return nil, fmt.Errorf("dataset: task %d out of range [0,%d)", task, d.NumTasks())
	}
	out := make([]int, d.Len())
	for i := range d.Records {
		out[i] = d.Records[i].Labels[task]
	}
	return out, nil
}

// Cells returns each record's enclosing grid cell, in record order.
func (d *Dataset) Cells() []geo.Cell {
	out := make([]geo.Cell, d.Len())
	for i := range d.Records {
		out[i] = d.Records[i].Cell
	}
	return out
}

// CellCounts returns the number of records in each grid cell, indexed
// by the grid's row-major cell index.
func (d *Dataset) CellCounts() []int {
	counts := make([]int, d.Grid.NumCells())
	for i := range d.Records {
		counts[d.Grid.Index(d.Records[i].Cell)]++
	}
	return counts
}

// PositiveRate returns the fraction of positive labels for a task.
func (d *Dataset) PositiveRate(task int) (float64, error) {
	labels, err := d.Labels(task)
	if err != nil {
		return 0, err
	}
	if len(labels) == 0 {
		return 0, nil
	}
	pos := 0
	for _, y := range labels {
		if y != 0 {
			pos++
		}
	}
	return float64(pos) / float64(len(labels)), nil
}

// Validation errors.
var (
	ErrNoRecords      = errors.New("dataset: no records")
	ErrShape          = errors.New("dataset: record shape mismatch")
	ErrCellOutOfRange = errors.New("dataset: record cell outside grid")
	ErrBadValue       = errors.New("dataset: non-finite feature value")
	ErrBadLabel       = errors.New("dataset: label must be 0 or 1")
)

// Validate checks structural invariants: positive record count, every
// record has the right number of features and labels, cells lie on
// the grid, features are finite and labels are 0/1.
func (d *Dataset) Validate() error {
	if !d.Grid.Valid() {
		return fmt.Errorf("dataset %q: %w", d.Name, geo.ErrBadGrid)
	}
	if d.Len() == 0 {
		return fmt.Errorf("dataset %q: %w", d.Name, ErrNoRecords)
	}
	for i := range d.Records {
		r := &d.Records[i]
		if len(r.X) != d.NumFeatures() {
			return fmt.Errorf("dataset %q record %d: %w: %d features, want %d",
				d.Name, i, ErrShape, len(r.X), d.NumFeatures())
		}
		if len(r.Labels) != d.NumTasks() {
			return fmt.Errorf("dataset %q record %d: %w: %d labels, want %d",
				d.Name, i, ErrShape, len(r.Labels), d.NumTasks())
		}
		if !d.Grid.InBounds(r.Cell) {
			return fmt.Errorf("dataset %q record %d: %w: %v", d.Name, i, ErrCellOutOfRange, r.Cell)
		}
		for j, x := range r.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("dataset %q record %d feature %d: %w: %v",
					d.Name, i, j, ErrBadValue, x)
			}
		}
		for j, y := range r.Labels {
			if y != 0 && y != 1 {
				return fmt.Errorf("dataset %q record %d task %d: %w: %d",
					d.Name, i, j, ErrBadLabel, y)
			}
		}
	}
	return nil
}

// Subset returns a view-like copy of the dataset containing only the
// records at the given indices (in that order). Record structs are
// shared-by-value; feature slices are not deep-copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:         d.Name,
		Grid:         d.Grid,
		Box:          d.Box,
		FeatureNames: d.FeatureNames,
		TaskNames:    d.TaskNames,
		Records:      make([]Record, len(idx)),
	}
	for i, j := range idx {
		out.Records[i] = d.Records[j]
	}
	return out
}
