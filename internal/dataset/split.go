package dataset

import (
	"fmt"
	"math/rand"
)

// SplitIndices partitions {0..n-1} into a train and test set with the
// given test fraction, using a deterministic shuffle for the seed.
// testFrac must lie in [0,1); at least one record always remains in
// the train set.
func SplitIndices(n int, testFrac float64, seed int64) (train, test []int, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("dataset: cannot split %d records", n)
	}
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v out of [0,1)", testFrac)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest >= n {
		nTest = n - 1
	}
	test = append([]int(nil), perm[:nTest]...)
	train = append([]int(nil), perm[nTest:]...)
	return train, test, nil
}

// StratifiedSplit partitions {0..len(labels)-1} into train/test sets
// preserving the label proportions, deterministically for the seed.
// Used by the experiment harnesses so that small test sets keep both
// classes represented.
func StratifiedSplit(labels []int, testFrac float64, seed int64) (train, test []int, err error) {
	n := len(labels)
	if n == 0 {
		return nil, nil, fmt.Errorf("dataset: cannot split 0 records")
	}
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v out of [0,1)", testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, y := range labels {
		if y != 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	shuffle(rng, pos)
	shuffle(rng, neg)
	take := func(group []int) (tr, te []int) {
		k := int(float64(len(group)) * testFrac)
		return group[k:], group[:k]
	}
	posTr, posTe := take(pos)
	negTr, negTe := take(neg)
	train = append(append([]int(nil), posTr...), negTr...)
	test = append(append([]int(nil), posTe...), negTe...)
	if len(train) == 0 {
		// Degenerate: everything went to test; move one record back.
		train = append(train, test[len(test)-1])
		test = test[:len(test)-1]
	}
	shuffle(rng, train)
	shuffle(rng, test)
	return train, test, nil
}

func shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Gather selects rows of a matrix by index.
func Gather[T any](rows []T, idx []int) []T {
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}
