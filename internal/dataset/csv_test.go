package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fairindex/internal/geo"
)

func TestCSVRoundTrip(t *testing.T) {
	ds, err := Generate(LA(), geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(ds, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, ds.Name, ds.Grid, ds.Box)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost records: %d vs %d", back.Len(), ds.Len())
	}
	if !reflect.DeepEqual(back.FeatureNames, ds.FeatureNames) {
		t.Errorf("feature names = %v", back.FeatureNames)
	}
	if !reflect.DeepEqual(back.TaskNames, ds.TaskNames) {
		t.Errorf("task names = %v", back.TaskNames)
	}
	for i := range ds.Records {
		a, b := ds.Records[i], back.Records[i]
		if a.ID != b.ID || a.Cell != b.Cell {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.X, b.X) || !reflect.DeepEqual(a.Labels, b.Labels) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	box := geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4}
	tests := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"too few columns", "id,lat\n"},
		{"wrong meta", "idx,lat,lon,f,label:t\n"},
		{"no labels", "id,lat,lon,f1,f2\na,1,1,2,3\n"},
		{"feature after label", "id,lat,lon,label:t,f1\na,1,1,1,2\n"},
		{"short row", "id,lat,lon,f1,label:t\na,1,1\n"},
		{"bad lat", "id,lat,lon,f1,label:t\na,x,1,2,1\n"},
		{"bad lon", "id,lat,lon,f1,label:t\na,1,x,2,1\n"},
		{"bad feature", "id,lat,lon,f1,label:t\na,1,1,x,1\n"},
		{"bad label", "id,lat,lon,f1,label:t\na,1,1,2,x\n"},
		{"label not 0/1", "id,lat,lon,f1,label:t\na,1,1,2,7\n"},
		{"NaN feature", "id,lat,lon,f1,label:t\na,1,1,NaN,1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.csv), "bad", grid, box); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadCSVBadGeometry(t *testing.T) {
	ok := "id,lat,lon,f1,label:t\na,1,1,2,1\n"
	if _, err := ReadCSV(strings.NewReader(ok), "x", geo.Grid{}, geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4}); err == nil {
		t.Error("expected grid error")
	}
	if _, err := ReadCSV(strings.NewReader(ok), "x", geo.MustGrid(2, 2), geo.BBox{}); err == nil {
		t.Error("expected box error")
	}
}

func TestReadCSVMinimal(t *testing.T) {
	csv := "id,lat,lon,f1,label:t1,label:t2\n" +
		"r1,0.5,0.5,1.5,1,0\n" +
		"r2,3.5,3.5,2.5,0,1\n"
	ds, err := ReadCSV(strings.NewReader(csv), "mini", geo.MustGrid(4, 4),
		geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.NumTasks() != 2 || ds.NumFeatures() != 1 {
		t.Fatalf("shape: %d records %d tasks %d features", ds.Len(), ds.NumTasks(), ds.NumFeatures())
	}
	if ds.Records[0].Cell != (geo.Cell{Row: 0, Col: 0}) || ds.Records[1].Cell != (geo.Cell{Row: 3, Col: 3}) {
		t.Errorf("cells = %v, %v", ds.Records[0].Cell, ds.Records[1].Cell)
	}
}

// TestReadCSVRowErrorAttribution pins the RowError contract: every
// malformed body row is reported with its accurate 1-based input line
// and the offending column, and reader-level parse failures carry the
// line the csv package attributes.
func TestReadCSVRowErrorAttribution(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	box := geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4}
	tests := []struct {
		name  string
		csv   string
		line  int
		field string
	}{
		{"bad lat", "id,lat,lon,f1,label:t\na,1,1,2,1\nb,x,1,2,1\n", 3, "lat"},
		{"bad lon", "id,lat,lon,f1,label:t\na,1,x,2,1\n", 2, "lon"},
		{"bad feature", "id,lat,lon,f1,label:t\na,1,1,2,1\nb,1,1,2,1\nc,1,1,x,1\n", 4, "f1"},
		{"bad label", "id,lat,lon,f1,label:t\na,1,1,2,7\n", 2, "label:t"},
		{"short row", "id,lat,lon,f1,label:t\na,1,1\n", 2, ""},
		{"quoted newline shifts lines", "id,lat,lon,f1,label:t\n\"a\nb\",1,1,2,1\nc,1,1,bad,1\n", 4, "f1"},
		{"crlf", "id,lat,lon,f1,label:t\r\na,1,1,2,1\r\nb,1,1,NaN,1\r\n", 3, "f1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tt.csv), "bad", grid, box)
			var re *RowError
			if !errors.As(err, &re) {
				t.Fatalf("error %v (%T), want *RowError", err, err)
			}
			if re.Line != tt.line {
				t.Errorf("line = %d, want %d", re.Line, tt.line)
			}
			if re.Field != tt.field {
				t.Errorf("field = %q, want %q", re.Field, tt.field)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("line %d", tt.line)) {
				t.Errorf("message %q does not name the line", err)
			}
		})
	}
	// Header errors carry line 1.
	_, err := ReadCSV(strings.NewReader("id,lat\n"), "bad", grid, box)
	var re *RowError
	if !errors.As(err, &re) || re.Line != 1 {
		t.Errorf("header error = %v, want RowError at line 1", err)
	}
}
