package dataset

import (
	"reflect"
	"sort"
	"testing"
)

func TestSplitIndices(t *testing.T) {
	train, test, err := SplitIndices(10, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 3 || len(train) != 7 {
		t.Fatalf("split sizes = %d/%d, want 7/3", len(train), len(test))
	}
	all := append(append([]int(nil), train...), test...)
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("split is not a partition of indices: %v", all)
		}
	}
}

func TestSplitIndicesDeterministic(t *testing.T) {
	tr1, te1, _ := SplitIndices(50, 0.2, 42)
	tr2, te2, _ := SplitIndices(50, 0.2, 42)
	if !reflect.DeepEqual(tr1, tr2) || !reflect.DeepEqual(te1, te2) {
		t.Error("same seed produced different splits")
	}
	tr3, _, _ := SplitIndices(50, 0.2, 43)
	if reflect.DeepEqual(tr1, tr3) {
		t.Error("different seeds produced identical splits")
	}
}

func TestSplitIndicesErrors(t *testing.T) {
	if _, _, err := SplitIndices(0, 0.2, 1); err == nil {
		t.Error("expected error for n=0")
	}
	if _, _, err := SplitIndices(10, 1.0, 1); err == nil {
		t.Error("expected error for frac=1")
	}
	if _, _, err := SplitIndices(10, -0.1, 1); err == nil {
		t.Error("expected error for negative frac")
	}
}

func TestSplitIndicesAlwaysKeepsTrain(t *testing.T) {
	train, test, err := SplitIndices(1, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 1 || len(test) != 0 {
		t.Errorf("split of 1 record = %d/%d, want 1/0", len(train), len(test))
	}
}

func TestStratifiedSplitPreservesRates(t *testing.T) {
	labels := make([]int, 100)
	for i := 0; i < 30; i++ {
		labels[i] = 1
	}
	train, test, err := StratifiedSplit(labels, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != 100 {
		t.Fatalf("split sizes %d+%d != 100", len(train), len(test))
	}
	countPos := func(idx []int) int {
		n := 0
		for _, i := range idx {
			n += labels[i]
		}
		return n
	}
	if got := countPos(test); got != 6 { // 20% of 30 positives
		t.Errorf("test positives = %d, want 6", got)
	}
	if got := countPos(train); got != 24 {
		t.Errorf("train positives = %d, want 24", got)
	}
}

func TestStratifiedSplitIsPartition(t *testing.T) {
	labels := []int{1, 0, 1, 0, 1, 1, 0, 0, 0, 1, 0}
	train, test, err := StratifiedSplit(labels, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]int(nil), train...), test...)
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("not a partition: %v", all)
		}
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	if _, _, err := StratifiedSplit(nil, 0.2, 1); err == nil {
		t.Error("expected error for empty labels")
	}
	if _, _, err := StratifiedSplit([]int{1}, 1.5, 1); err == nil {
		t.Error("expected error for bad fraction")
	}
}

func TestStratifiedSplitDegenerate(t *testing.T) {
	// A single record must remain in train.
	train, test, err := StratifiedSplit([]int{1}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 1 || len(test) != 0 {
		t.Errorf("split = %d/%d, want 1/0", len(train), len(test))
	}
}

func TestGather(t *testing.T) {
	rows := []string{"a", "b", "c", "d"}
	if got := Gather(rows, []int{3, 0, 0}); !reflect.DeepEqual(got, []string{"d", "a", "a"}) {
		t.Errorf("Gather = %v", got)
	}
	if got := Gather(rows, nil); len(got) != 0 {
		t.Errorf("Gather empty = %v", got)
	}
}
