package dataset

import (
	"errors"
	"math"
	"testing"

	"fairindex/internal/geo"
)

// tinyDataset builds a small valid dataset for structural tests.
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	grid := geo.MustGrid(4, 4)
	ds := &Dataset{
		Name:         "tiny",
		Grid:         grid,
		Box:          geo.BBox{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4},
		FeatureNames: []string{"f1", "f2"},
		TaskNames:    []string{"t1"},
		Records: []Record{
			{ID: "a", Lat: 0.5, Lon: 0.5, Cell: geo.Cell{Row: 0, Col: 0}, X: []float64{1, 2}, Labels: []int{1}},
			{ID: "b", Lat: 3.5, Lon: 3.5, Cell: geo.Cell{Row: 3, Col: 3}, X: []float64{3, 4}, Labels: []int{0}},
			{ID: "c", Lat: 0.5, Lon: 3.5, Cell: geo.Cell{Row: 0, Col: 3}, X: []float64{5, 6}, Labels: []int{1}},
		},
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return ds
}

func TestDatasetAccessors(t *testing.T) {
	ds := tinyDataset(t)
	if ds.Len() != 3 || ds.NumFeatures() != 2 || ds.NumTasks() != 1 {
		t.Fatalf("unexpected shape: %d records, %d features, %d tasks", ds.Len(), ds.NumFeatures(), ds.NumTasks())
	}
	labels, err := ds.Labels(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 || labels[0] != 1 || labels[1] != 0 {
		t.Errorf("Labels = %v", labels)
	}
	if _, err := ds.Labels(1); err == nil {
		t.Error("expected out-of-range task error")
	}
	if _, err := ds.Labels(-1); err == nil {
		t.Error("expected negative task error")
	}
	cells := ds.Cells()
	if len(cells) != 3 || cells[2] != (geo.Cell{Row: 0, Col: 3}) {
		t.Errorf("Cells = %v", cells)
	}
	rate, err := ds.PositiveRate(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-2.0/3) > 1e-12 {
		t.Errorf("PositiveRate = %v, want 2/3", rate)
	}
}

func TestCellCounts(t *testing.T) {
	ds := tinyDataset(t)
	counts := ds.CellCounts()
	if len(counts) != 16 {
		t.Fatalf("got %d cells, want 16", len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != ds.Len() {
		t.Errorf("counts sum to %d, want %d", total, ds.Len())
	}
	if counts[ds.Grid.Index(geo.Cell{Row: 0, Col: 0})] != 1 {
		t.Error("cell (0,0) count wrong")
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *Dataset { return tinyDataset(t) }
	tests := []struct {
		name    string
		mutate  func(*Dataset)
		wantErr error
	}{
		{"no records", func(d *Dataset) { d.Records = nil }, ErrNoRecords},
		{"bad grid", func(d *Dataset) { d.Grid = geo.Grid{} }, geo.ErrBadGrid},
		{"feature shape", func(d *Dataset) { d.Records[0].X = []float64{1} }, ErrShape},
		{"label shape", func(d *Dataset) { d.Records[1].Labels = nil }, ErrShape},
		{"cell out of range", func(d *Dataset) { d.Records[0].Cell = geo.Cell{Row: 9, Col: 9} }, ErrCellOutOfRange},
		{"NaN feature", func(d *Dataset) { d.Records[2].X[0] = math.NaN() }, ErrBadValue},
		{"Inf feature", func(d *Dataset) { d.Records[2].X[1] = math.Inf(1) }, ErrBadValue},
		{"bad label", func(d *Dataset) { d.Records[0].Labels[0] = 2 }, ErrBadLabel},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := base()
			tt.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("error %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSubset(t *testing.T) {
	ds := tinyDataset(t)
	sub := ds.Subset([]int{2, 0})
	if sub.Len() != 2 {
		t.Fatalf("subset len = %d, want 2", sub.Len())
	}
	if sub.Records[0].ID != "c" || sub.Records[1].ID != "a" {
		t.Errorf("subset order wrong: %q, %q", sub.Records[0].ID, sub.Records[1].ID)
	}
	if sub.NumFeatures() != ds.NumFeatures() || sub.Grid != ds.Grid {
		t.Error("subset lost metadata")
	}
}
