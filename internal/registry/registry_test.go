package registry

import (
	"errors"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// buildIndex builds a small LA index; the options pick distinct
// partitioning generations so tests can tell entries apart.
func buildIndex(t testing.TB, opts ...fairindex.Option) *fairindex.Index {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 300
	ds, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		opts = []fairindex.Option{fairindex.WithHeight(3), fairindex.WithSeed(5)}
	}
	idx, err := fairindex.Build(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// writeIndex marshals idx to dir/name and returns the path.
func writeIndex(t testing.TB, idx *fairindex.Index, dir, name string) string {
	t.Helper()
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// quietLogger keeps eviction chatter out of test output.
func quietLogger() *log.Logger { return log.New(nopWriter{}, "", 0) }

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestRegistryLazyLoadAndLookup(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	path := writeIndex(t, idx, dir, "la.fidx")

	r := New(WithLogger(quietLogger()))
	if err := r.Add("la", path); err != nil {
		t.Fatal(err)
	}
	if got := r.LoadedCount(); got != 0 {
		t.Fatalf("LoadedCount before first Lookup = %d, want 0 (lazy)", got)
	}
	got, err := r.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRegions() != idx.NumRegions() {
		t.Errorf("loaded index has %d regions, want %d", got.NumRegions(), idx.NumRegions())
	}
	if r.LoadedCount() != 1 {
		t.Errorf("LoadedCount = %d, want 1", r.LoadedCount())
	}
	// Second lookup returns the exact same resident artifact.
	again, err := r.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Error("second Lookup returned a different Index pointer")
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown name error = %v, want ErrNotFound", err)
	}
}

func TestRegistryNameValidationAndDuplicates(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "a/b", `a\b`} {
		if err := r.Add(bad, "x.fidx"); !errors.Is(err, ErrBadName) {
			t.Errorf("Add(%q) error = %v, want ErrBadName", bad, err)
		}
	}
	if err := r.Add("la", "a.fidx"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("la", "b.fidx"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate Add error = %v, want ErrDuplicate", err)
	}
	if err := r.AddIndex("mem", nil); err == nil {
		t.Error("AddIndex(nil) succeeded")
	}
}

func TestRegistryDefault(t *testing.T) {
	idx := buildIndex(t)
	r := New()
	if _, err := r.Default(); !errors.Is(err, ErrNoDefault) {
		t.Errorf("empty registry Default error = %v, want ErrNoDefault", err)
	}
	if err := r.AddIndex("solo", idx); err != nil {
		t.Fatal(err)
	}
	// A sole entry is the implicit default.
	if got, err := r.Default(); err != nil || got != idx {
		t.Fatalf("sole-entry Default = %v, %v", got, err)
	}
	if err := r.AddIndex("other", idx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Default(); !errors.Is(err, ErrNoDefault) {
		t.Errorf("two-entry Default error = %v, want ErrNoDefault", err)
	}
	r.SetDefault("solo")
	if got, err := r.Default(); err != nil || got != idx {
		t.Fatalf("explicit Default = %v, %v", got, err)
	}
	if r.DefaultName() != "solo" {
		t.Errorf("DefaultName = %q", r.DefaultName())
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	r := New(WithMaxLoaded(2), WithLogger(quietLogger()))
	for _, name := range []string{"a", "b", "c"} {
		if err := r.Add(name, writeIndex(t, idx, dir, name+".fidx")); err != nil {
			t.Fatal(err)
		}
	}
	mustLookup := func(name string) {
		t.Helper()
		if _, err := r.Lookup(name); err != nil {
			t.Fatal(err)
		}
	}
	mustLookup("a")
	mustLookup("b")
	if r.LoadedCount() != 2 {
		t.Fatalf("LoadedCount = %d, want 2", r.LoadedCount())
	}
	// Touch a so b is the LRU entry, then load c: b must be evicted.
	mustLookup("a")
	mustLookup("c")
	if r.LoadedCount() != 2 {
		t.Fatalf("LoadedCount after eviction = %d, want 2", r.LoadedCount())
	}
	states := map[string]string{}
	for _, info := range r.List() {
		states[info.Name] = info.State
	}
	if states["a"] != StateLoaded || states["c"] != StateLoaded || states["b"] != StateAvailable {
		t.Errorf("states after eviction = %v", states)
	}
	// The evicted entry transparently reloads on next use.
	mustLookup("b")
	if r.LoadedCount() != 2 {
		t.Errorf("LoadedCount after re-load = %d, want 2", r.LoadedCount())
	}
}

func TestRegistryPinnedEntriesSurviveEviction(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	r := New(WithMaxLoaded(1), WithLogger(quietLogger()))
	if err := r.AddIndex("pinned", idx); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if err := r.Add(name, writeIndex(t, idx, dir, name+".fidx")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Lookup("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("b"); err != nil {
		t.Fatal(err)
	}
	// a was evicted (bound 1 file-backed resident), pinned never is.
	if got, err := r.Lookup("pinned"); err != nil || got != idx {
		t.Fatalf("pinned Lookup = %v, %v", got, err)
	}
	var fileResident int
	for _, info := range r.List() {
		if info.Name == "pinned" {
			if info.State != StateLoaded || !info.Pinned {
				t.Errorf("pinned info = %+v", info)
			}
			continue
		}
		if info.State == StateLoaded {
			fileResident++
		}
	}
	if fileResident != 1 {
		t.Errorf("file-backed resident entries = %d, want 1", fileResident)
	}
	if err := r.Reload("pinned"); !errors.Is(err, ErrNoPath) {
		t.Errorf("pinned Reload error = %v, want ErrNoPath", err)
	}
}

func TestRegistryReloadKeepsServingOnCorruptFile(t *testing.T) {
	idxA := buildIndex(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	idxB := buildIndex(t, fairindex.WithHeight(5), fairindex.WithSeed(2))
	if idxA.NumRegions() == idxB.NumRegions() {
		t.Fatal("want distinguishable generations")
	}
	dir := t.TempDir()
	path := writeIndex(t, idxA, dir, "la.fidx")
	r := New(WithLogger(quietLogger()))
	if err := r.Add("la", path); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRegions() != idxA.NumRegions() {
		t.Fatalf("initial generation has %d regions", got.NumRegions())
	}

	// Corrupt reload: error surfaces, old index keeps serving, the
	// failure is visible in the listing.
	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("la"); err == nil {
		t.Fatal("expected reload error for corrupt file")
	}
	got, err = r.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRegions() != idxA.NumRegions() {
		t.Error("failed reload disturbed the served index")
	}
	info := r.List()[0]
	if info.State != StateLoaded || info.LastErr == "" {
		t.Errorf("after failed reload: %+v", info)
	}

	// Healthy reload swaps generations and clears the error.
	writeIndex(t, idxB, dir, "la.fidx")
	if err := r.Reload("la"); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Lookup("la")
	if got.NumRegions() != idxB.NumRegions() {
		t.Errorf("post-reload generation has %d regions, want %d", got.NumRegions(), idxB.NumRegions())
	}
	info = r.List()[0]
	if info.LastErr != "" || info.Reloads != 1 {
		t.Errorf("after healthy reload: %+v", info)
	}

	if err := r.Reload("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Reload(missing) error = %v, want ErrNotFound", err)
	}
}

func TestRegistryLazyLoadFailureIsReported(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.fidx")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(WithLogger(quietLogger()))
	if err := r.Add("bad", bad); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("bad"); err == nil {
		t.Fatal("expected lazy-load error for corrupt file")
	}
	info := r.List()[0]
	if info.State != StateFailed || info.LastErr == "" {
		t.Errorf("info after failed lazy load = %+v", info)
	}
}

func TestRegistryRescan(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	writeIndex(t, idx, dir, "a.fidx")
	writeIndex(t, idx, dir, "b.fidx")
	// Non-artifacts are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); !equalStrings(got, []string{"a", "b"}) {
		t.Fatalf("Names after Open = %v", got)
	}
	if _, err := r.Lookup("a"); err != nil {
		t.Fatal(err)
	}

	// A new file appears, one disappears; rescan tracks both while
	// keeping the loaded state of surviving entries.
	writeIndex(t, idx, dir, "c.fidx")
	if err := os.Remove(filepath.Join(dir, "b.fidx")); err != nil {
		t.Fatal(err)
	}
	if err := r.Rescan(); err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); !equalStrings(got, []string{"a", "c"}) {
		t.Fatalf("Names after rescan = %v", got)
	}
	for _, info := range r.List() {
		switch info.Name {
		case "a":
			if info.State != StateLoaded {
				t.Errorf("entry a lost its loaded state: %+v", info)
			}
		case "c":
			if info.State != StateAvailable {
				t.Errorf("entry c = %+v", info)
			}
		}
	}

	// Explicit entries survive rescans even outside the directory.
	other := writeIndex(t, idx, t.TempDir(), "x.fidx")
	if err := r.Add("explicit", other); err != nil {
		t.Fatal(err)
	}
	if err := r.Rescan(); err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); !equalStrings(got, []string{"a", "c", "explicit"}) {
		t.Fatalf("Names after second rescan = %v", got)
	}
}

func TestRegistryReloadLoaded(t *testing.T) {
	idxA := buildIndex(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	idxB := buildIndex(t, fairindex.WithHeight(5), fairindex.WithSeed(2))
	dir := t.TempDir()
	writeIndex(t, idxA, dir, "a.fidx")
	writeIndex(t, idxA, dir, "b.fidx")
	r, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("a"); err != nil {
		t.Fatal(err)
	}
	// b stays unloaded; rewriting both files and reloading must only
	// touch the resident entry.
	writeIndex(t, idxB, dir, "a.fidx")
	writeIndex(t, idxB, dir, "b.fidx")
	if err := r.ReloadLoaded(); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup("a")
	if got.NumRegions() != idxB.NumRegions() {
		t.Errorf("resident entry not reloaded: %d regions", got.NumRegions())
	}
	for _, info := range r.List() {
		if info.Name == "b" && info.State != StateAvailable {
			t.Errorf("unloaded entry was eagerly loaded: %+v", info)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRegistryConcurrentLookupEvictReload is the registry's central
// -race proof: many reader goroutines resolve entries through the
// lock-free hot path while other goroutines force LRU evictions (by
// touching entries round-robin over a bound smaller than the catalog),
// hot-reload an entry between two generations, and rescan the
// directory. Every lookup must return a complete, internally
// consistent Index from one of the two generations.
func TestRegistryConcurrentLookupEvictReload(t *testing.T) {
	idxA := buildIndex(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	idxB := buildIndex(t, fairindex.WithHeight(5), fairindex.WithSeed(2))
	regionsA, regionsB := idxA.NumRegions(), idxB.NumRegions()
	if regionsA == regionsB {
		t.Fatal("want distinguishable generations")
	}
	dir := t.TempDir()
	names := []string{"a", "b", "c", "d"}
	for _, name := range names {
		writeIndex(t, idxA, dir, name+".fidx")
	}
	r, err := Open(dir, WithMaxLoaded(2), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const iters = 200
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Logf(format, args...)
	}

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(w+i)%len(names)]
				idx, err := r.Lookup(name)
				if err != nil {
					fail("reader %d: Lookup(%q): %v", w, name, err)
					return
				}
				n := idx.NumRegions()
				if n != regionsA && n != regionsB {
					fail("reader %d: %q has %d regions, matching neither generation", w, name, n)
					return
				}
				// Drive a real query through the resolved artifact: a
				// torn index would crash or return garbage here.
				if region, err := idx.Locate(34.05, -118.25); err != nil || region < 0 || region >= n {
					fail("reader %d: Locate on %q = %d, %v", w, name, region, err)
					return
				}
			}
		}(w)
	}

	// Reloader: flip entry "a" between generations. Concurrent lazy
	// loads (after an eviction) read the file at arbitrary moments, so
	// the rewrite must be atomic — write-then-rename, the same
	// discipline a production artifact store needs. (No t.Fatal off
	// the test goroutine: failures go through fail.)
	blobA, errA := idxA.MarshalBinary()
	blobB, errB := idxB.MarshalBinary()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			blob := blobA
			if i%2 == 0 {
				blob = blobB
			}
			tmp := filepath.Join(dir, "a.fidx.tmp")
			if err := os.WriteFile(tmp, blob, 0o644); err != nil {
				fail("rewrite: %v", err)
				return
			}
			if err := os.Rename(tmp, filepath.Join(dir, "a.fidx")); err != nil {
				fail("rename: %v", err)
				return
			}
			if err := r.Reload("a"); err != nil {
				fail("reload: %v", err)
				return
			}
		}
	}()

	// Rescanner: keep republishing the catalog snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := r.Rescan(); err != nil {
				fail("rescan: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d concurrent failures (see log)", n)
	}
	// The residency bound holds once the dust settles (transient
	// overshoot during racing loads is allowed, steady state is not).
	if _, err := r.Lookup("a"); err != nil {
		t.Fatal(err)
	}
	if got := r.LoadedCount(); got > 2+1 { // +1: a racing load may finish after its eviction check
		t.Errorf("LoadedCount = %d, want <= 3", got)
	}
}

// TestRegistryConcurrentLazyLoadSingleflight: racing first lookups of
// the same entry must resolve to one loaded artifact, not N.
func TestRegistryConcurrentLazyLoad(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	r := New(WithLogger(quietLogger()))
	if err := r.Add("la", writeIndex(t, idx, dir, "la.fidx")); err != nil {
		t.Fatal(err)
	}
	const n = 16
	got := make([]*fairindex.Index, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = r.Lookup("la")
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] == nil || got[i] != got[0] {
			t.Fatalf("lookup %d returned %p, want shared %p", i, got[i], got[0])
		}
	}
}

// TestRegistryEvictionSparesFailedEntries: an entry whose backing
// file went corrupt after a successful load must keep its last good
// generation even under LRU pressure — evicting it would trade a
// serving index for a file known to be unloadable.
func TestRegistryEvictionSparesFailedEntries(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	r := New(WithMaxLoaded(1), WithLogger(quietLogger()))
	pathA := writeIndex(t, idx, dir, "a.fidx")
	for _, name := range []string{"a", "b", "c"} {
		if err := r.Add(name, writeIndex(t, idx, dir, name+".fidx")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Lookup("a"); err != nil {
		t.Fatal(err)
	}
	// a's file goes corrupt; the failed reload latches the error but
	// keeps the old generation serving.
	if err := os.WriteFile(pathA, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("a"); err == nil {
		t.Fatal("expected reload error")
	}
	// LRU pressure from the other entries must not evict a.
	if _, err := r.Lookup("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("c"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("a")
	if err != nil {
		t.Fatalf("failed-reload entry was evicted and re-read its corrupt file: %v", err)
	}
	if got.NumRegions() != idx.NumRegions() {
		t.Error("failed-reload entry lost its last good generation")
	}
}

// TestRegistrySetIndexDoesNotCountReload: seeding an entry with an
// in-memory artifact is not a reload.
func TestRegistrySetIndexDoesNotCountReload(t *testing.T) {
	idx := buildIndex(t)
	r := New(WithLogger(quietLogger()))
	if err := r.Add("la", "somewhere/la.fidx"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetIndex("la", idx); err != nil {
		t.Fatal(err)
	}
	info, ok := r.Info("la")
	if !ok || info.State != StateLoaded || info.Reloads != 0 {
		t.Fatalf("after SetIndex: %+v, %v", info, ok)
	}
	if got, err := r.Lookup("la"); err != nil || got != idx {
		t.Fatalf("Lookup after SetIndex = %v, %v", got, err)
	}
	if err := r.SetIndex("nope", idx); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetIndex(nope) error = %v, want ErrNotFound", err)
	}
	if _, ok := r.Info("nope"); ok {
		t.Error("Info(nope) = ok")
	}
}

// TestRegistryInfoFields pins the listing surface /v1/indexes is
// built from.
func TestRegistryInfoFields(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	path := writeIndex(t, idx, dir, "la.fidx")
	r := New(WithMaxLoaded(4), WithLogger(quietLogger()))
	if err := r.Add("la", path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("la"); err != nil {
		t.Fatal(err)
	}
	info := r.List()[0]
	if info.Name != "la" || info.Path != path || info.Pinned {
		t.Errorf("identity fields: %+v", info)
	}
	if info.CodecVersion != idx.CodecVersion() || info.Regions != idx.NumRegions() {
		t.Errorf("artifact fields: %+v", info)
	}
	if info.Dataset != idx.DatasetName() || info.Method != idx.Method().String() {
		t.Errorf("metadata fields: %+v", info)
	}
	if len(info.Tasks) == 0 {
		t.Error("tasks missing")
	}
	if r.MaxLoaded() != 4 {
		t.Errorf("MaxLoaded = %d", r.MaxLoaded())
	}
	if r.Dir() != "" {
		t.Errorf("Dir = %q", r.Dir())
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

// appendCity builds a 300-record index plus 40 append records that
// share its schema and geography.
func appendCity(t *testing.T) (*fairindex.Index, []fairindex.Record) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 340
	all, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	build := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: all.Records[:300],
	}
	idx, err := fairindex.Build(build, fairindex.WithHeight(3), fairindex.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	return idx, all.Records[300:]
}

// TestRegistryAppendAndDriftHook covers the maintenance control
// plane: Append folds through the registry, the armed threshold flips
// the rebuild flag, the WithOnDrift hook fires exactly once per
// loaded artifact generation, and Info surfaces the live counters.
func TestRegistryAppendAndDriftHook(t *testing.T) {
	idx, extra := appendCity(t)
	dir := t.TempDir()
	path := writeIndex(t, idx, dir, "la.fidx")

	var fired atomic.Int32
	r := New(WithLogger(quietLogger()),
		WithDriftThreshold(1e-12),
		WithOnDrift(func(name string, drift float64) {
			if name != "la" || drift <= 0 {
				t.Errorf("hook fired with name=%q drift=%v", name, drift)
			}
			fired.Add(1)
		}))
	if err := r.Add("la", path); err != nil {
		t.Fatal(err)
	}

	res, err := r.Append("la", extra[:20])
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 20 || res.Drift <= 0 {
		t.Fatalf("append result %+v", res)
	}
	if !res.RebuildRecommended {
		t.Fatal("drift above the armed threshold did not recommend a rebuild")
	}
	if fired.Load() != 1 {
		t.Fatalf("hook fired %d times after first crossing, want 1", fired.Load())
	}
	// Further crossings in the same artifact generation stay quiet.
	if _, err := r.Append("la", extra[20:]); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("hook fired %d times after second append, want still 1", fired.Load())
	}

	info, ok := r.Info("la")
	if !ok {
		t.Fatal("Info missing")
	}
	if info.Appended != 40 || info.Drift <= 0 || !info.RebuildRecommended {
		t.Errorf("Info = appended %d drift %v rebuild %v", info.Appended, info.Drift, info.RebuildRecommended)
	}

	// A reload starts a new generation from the artifact (no folds):
	// counters reset and the hook may fire again.
	if err := r.Reload("la"); err != nil {
		t.Fatal(err)
	}
	info, _ = r.Info("la")
	if info.Appended != 0 || info.RebuildRecommended {
		t.Errorf("after reload: appended %d rebuild %v, want 0/false", info.Appended, info.RebuildRecommended)
	}
	if _, err := r.Append("la", extra); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 2 {
		t.Errorf("hook fired %d times after post-reload crossing, want 2", fired.Load())
	}

	if _, err := r.Append("nope", extra); !errors.Is(err, ErrNotFound) {
		t.Errorf("append to unknown entry = %v, want ErrNotFound", err)
	}
}

// TestRegistryAppendThresholdArmsOnEveryInstall pins that the
// registry-level threshold is applied at each install point, AddIndex
// included.
func TestRegistryAppendThresholdArmsOnEveryInstall(t *testing.T) {
	idx, _ := appendCity(t)
	r := New(WithLogger(quietLogger()), WithDriftThreshold(0.125))
	if err := r.AddIndex("mem", idx); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("mem")
	if err != nil {
		t.Fatal(err)
	}
	if got.DriftThreshold() != 0.125 {
		t.Errorf("DriftThreshold = %v, want 0.125", got.DriftThreshold())
	}
}

// TestRegistrySwapNilPreservesDiagnostics pins the nil-swap
// semantics: an unload is bookkeeping, not a new generation — it
// must neither count as a reload nor erase the diagnostic of a
// preceding load failure, while a non-nil swap does both.
func TestRegistrySwapNilPreservesDiagnostics(t *testing.T) {
	idx := buildIndex(t)
	dir := t.TempDir()
	path := writeIndex(t, idx, dir, "la.fidx")
	r := New(WithLogger(quietLogger()))
	if err := r.Add("la", path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("la"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the backing file and fail a reload so lastErr is set.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("la"); err == nil {
		t.Fatal("reload of corrupt file succeeded")
	}
	before, _ := r.Info("la")
	if before.LastErr == "" {
		t.Fatal("corrupt reload left no diagnostic")
	}

	old, err := r.Swap("la", nil)
	if err != nil {
		t.Fatal(err)
	}
	if old == nil {
		t.Fatal("nil swap returned no previous index")
	}
	info, _ := r.Info("la")
	if info.State != StateAvailable && info.State != StateFailed {
		t.Errorf("state after unload: %q", info.State)
	}
	if info.LastErr != before.LastErr {
		t.Errorf("unload erased lastErr: %q -> %q", before.LastErr, info.LastErr)
	}
	if info.Reloads != before.Reloads {
		t.Errorf("unload counted a reload: %d -> %d", before.Reloads, info.Reloads)
	}

	// A non-nil swap is a real generation: reload counted, error
	// cleared.
	if _, err := r.Swap("la", idx); err != nil {
		t.Fatal(err)
	}
	info, _ = r.Info("la")
	if info.Reloads != before.Reloads+1 || info.LastErr != "" || info.State != StateLoaded {
		t.Errorf("after non-nil swap: %+v", info)
	}
}

// TestRegistryAppendRescanRace stress-tests the drift hook against
// concurrent catalog churn (the Append bugfix: the entry is resolved
// once, so a Rescan between fold and notification can no longer drop
// it). Run with -race; the assertion is that every recommended fold
// produces exactly one notification per generation, crash-free.
func TestRegistryAppendRescanRace(t *testing.T) {
	idx, extra := appendCity(t)
	dir := t.TempDir()
	writeIndex(t, idx, dir, "la.fidx")

	var fired atomic.Int32
	r, err := Open(dir, WithLogger(quietLogger()),
		WithDriftThreshold(1e-12),
		WithOnDrift(func(name string, drift float64) { fired.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.Rescan(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := r.Append("la", extra); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Exactly one notification: the first fold crosses the threshold
	// and latches the generation; no Rescan ever installs a new one
	// (the file never changes), so no re-arm happens.
	if got := fired.Load(); got != 1 {
		t.Errorf("hook fired %d times under rescan churn, want 1", got)
	}
}
