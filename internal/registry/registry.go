// Package registry serves many fair spatial indexes from one
// process: a named catalog of fairindex.Index artifacts with lazy
// loading, bounded memory and per-entry hot reload. It is the
// multi-tenant layer between the .fidx artifact store (a directory of
// build outputs — one per dataset, partitioning method or fairness
// configuration) and the HTTP serving surface, which resolves every
// request through Lookup.
//
// Concurrency model: the catalog itself is an immutable map snapshot
// behind an atomic pointer, and each entry keeps its Index behind its
// own atomic pointer. The request hot path (Lookup of a loaded entry)
// is therefore lock-free — one atomic snapshot load, one map read,
// one atomic entry load — and mutations (lazy loads, reloads, rescans,
// evictions) build new state off to the side before publishing it
// atomically. Per-entry reloads keep the corrupt-reload-keeps-serving
// invariant: a failed load records the error and leaves the old Index
// in place, so readers never observe a half-loaded artifact.
//
// Memory is bounded with an LRU cap (WithMaxLoaded): every Lookup
// stamps the entry with a logical clock tick, and when a load pushes
// the number of resident indexes over the cap the least-recently-used
// file-backed entries are unloaded back to the "available" state —
// they reload lazily on next use. Entries registered directly from
// memory (AddIndex) have no backing file to reload from and are
// pinned: never evicted, never reloaded.
package registry

import (
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	fairindex "fairindex"
)

// Registry errors.
var (
	// ErrNotFound reports a name the registry has no entry for.
	ErrNotFound = errors.New("registry: no such index")
	// ErrNoPath reports a reload of an entry with no backing file.
	ErrNoPath = errors.New("registry: index has no backing file")
	// ErrNoDefault reports a Default lookup on a registry with several
	// entries and no configured default.
	ErrNoDefault = errors.New("registry: no default index configured")
	// ErrDuplicate reports a name registered twice.
	ErrDuplicate = errors.New("registry: index name already registered")
	// ErrBadName reports a name the registry rejects (empty, or
	// containing path separators — names must be routable as a single
	// URL path segment).
	ErrBadName = errors.New("registry: invalid index name")
)

// Ext is the artifact file extension directory scans look for; the
// entry name is the file base without it (la-fair-h8.fidx → la-fair-h8).
const Ext = ".fidx"

// Registry is a concurrent name → Index catalog. Create one with New,
// register entries with Add/AddIndex or a directory scan (WithDir +
// Rescan), and resolve requests with Lookup. All methods are safe for
// concurrent use.
type Registry struct {
	// entries is the published catalog snapshot; mutators copy it,
	// never modify it in place. Readers only Load.
	entries atomic.Pointer[map[string]*Entry]
	// clock is the logical LRU clock; every Lookup ticks it.
	clock atomic.Int64

	// defName is atomic (not mu-guarded) because Default() sits on the
	// request hot path; nil means "no explicit default".
	defName atomic.Pointer[string]

	// mu serializes catalog mutations (Add, Rescan, eviction). The
	// lock order is Entry.loadMu before Registry.mu; mu is never held
	// while taking an entry lock.
	mu        sync.Mutex
	dir       string
	maxLoaded int // 0 = unlimited
	logger    *log.Logger

	// driftThreshold (0 = off) is armed on every index the registry
	// loads, so appended batches can flip its rebuild-recommended
	// flag; driftThresholds additionally arms per-metric thresholds
	// (registered metric name → threshold); onDrift, when set, fires
	// the first time an entry crosses any armed threshold (see
	// Append). It is atomic so a rebuild controller can bind itself
	// (SetOnDrift) after the registry is constructed, concurrently
	// with appends.
	driftThreshold  float64
	driftThresholds map[string]float64
	onDrift         atomic.Pointer[func(name string, drift float64)]
}

// Entry is one named index slot: a backing file plus the atomically
// swappable loaded Index (nil while unloaded).
type Entry struct {
	name string
	path string // "" = pinned in-memory entry
	// fromDir marks entries discovered by a directory scan; Rescan
	// removes them again when their file disappears, but never
	// removes explicitly registered entries.
	fromDir bool

	idx      atomic.Pointer[fairindex.Index]
	lastUsed atomic.Int64
	reloads  atomic.Int64
	lastErr  atomic.Pointer[string] // most recent load failure, nil after success

	// loadMu serializes load/reload/swap of this entry so two racing
	// lazy loads cannot both read the file. Eviction does not take it
	// (the hot path must never wait behind a file read); instead it
	// refuses to evict entries whose last reload failed, so the last
	// good generation of an entry with a corrupt backing file is
	// never discarded.
	loadMu sync.Mutex

	// driftNotified latches the one-shot drift hook: it arms again
	// when a fresh artifact generation is installed (load, reload,
	// swap), so a rebuilt index can re-notify.
	driftNotified atomic.Bool
}

// Option configures a Registry.
type Option func(*Registry)

// WithDir sets the artifact directory Rescan scans for *.fidx files.
func WithDir(dir string) Option {
	return func(r *Registry) { r.dir = dir }
}

// WithMaxLoaded bounds how many indexes may be resident at once
// (0 = unlimited). Exceeding loads evict the least-recently-used
// file-backed entries; pinned in-memory entries do not count against
// the bound and are never evicted.
func WithMaxLoaded(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.maxLoaded = n
		}
	}
}

// WithDefault names the entry unnamed (single-index) requests resolve
// to. Without it, a sole entry is the implicit default.
func WithDefault(name string) Option {
	return func(r *Registry) { r.defName.Store(&name) }
}

// WithDriftThreshold arms drift monitoring on every index the
// registry serves: each loaded artifact gets the threshold, so
// Append can flip its rebuild-recommended flag (surfaced by Info and
// the serving layer). t <= 0 leaves monitoring off.
func WithDriftThreshold(t float64) Option {
	return func(r *Registry) {
		if t > 0 {
			r.driftThreshold = t
		}
	}
}

// WithDriftThresholds arms per-metric drift monitoring on every index
// the registry serves: each entry maps a registered fairness-metric
// name (e.g. "stat_parity") to the drift at which Append flips the
// entry's rebuild-recommended flag. Entries layer on top of (and, for
// "ence", override) WithDriftThreshold. Unknown metric names are
// rejected at install time by the index and logged; non-positive
// values are dropped.
func WithDriftThresholds(thresholds map[string]float64) Option {
	return func(r *Registry) {
		for name, t := range thresholds {
			if t > 0 {
				if r.driftThresholds == nil {
					r.driftThresholds = make(map[string]float64, len(thresholds))
				}
				r.driftThresholds[name] = t
			}
		}
	}
}

// WithOnDrift installs the rebuild control-plane hook: fn runs the
// first time an entry's appended batches push its drift across the
// armed threshold (once per loaded artifact generation — a reload or
// swap re-arms it). Typical callers rebuild the artifact and Reload
// the entry. fn is called synchronously from Append without registry
// locks held, so it may call back into the registry.
func WithOnDrift(fn func(name string, drift float64)) Option {
	return func(r *Registry) { r.onDrift.Store(&fn) }
}

// SetOnDrift installs (or, with nil, removes) the drift hook after
// construction — the binding point for a rebuild controller that is
// created around an already-running registry. Safe for concurrent use
// with Append; an append in flight may still fire the previous hook.
func (r *Registry) SetOnDrift(fn func(name string, drift float64)) {
	if fn == nil {
		r.onDrift.Store(nil)
		return
	}
	r.onDrift.Store(&fn)
}

// WithLogger routes load/evict/rescan diagnostics to l.
func WithLogger(l *log.Logger) Option {
	return func(r *Registry) {
		if l != nil {
			r.logger = l
		}
	}
}

// New returns an empty Registry. Call Add/AddIndex to register
// entries, or Rescan to discover them from the configured directory.
func New(opts ...Option) *Registry {
	r := &Registry{logger: log.Default()}
	for _, opt := range opts {
		opt(r)
	}
	empty := map[string]*Entry{}
	r.entries.Store(&empty)
	return r
}

// Open is the one-call constructor for directory serving: a Registry
// over dir, populated by an initial Rescan.
func Open(dir string, opts ...Option) (*Registry, error) {
	r := New(append([]Option{WithDir(dir)}, opts...)...)
	if err := r.Rescan(); err != nil {
		return nil, err
	}
	return r, nil
}

// checkName rejects names that cannot be a single URL path segment.
func checkName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// publish installs a new catalog snapshot; callers hold r.mu.
func (r *Registry) publish(m map[string]*Entry) { r.entries.Store(&m) }

// snapshot returns the current catalog; never nil.
func (r *Registry) snapshot() map[string]*Entry { return *r.entries.Load() }

// Add registers a lazily loaded file-backed entry. The file is not
// read until the first Lookup, so a registry over a large artifact
// store starts instantly.
func (r *Registry) Add(name, path string) error {
	if err := checkName(name); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("registry: %q: empty path", name)
	}
	return r.insert(&Entry{name: name, path: path})
}

// AddIndex registers an already loaded in-memory index. The entry is
// pinned: it has no backing file, is never evicted and cannot be
// reloaded (Swap replaces it instead).
func (r *Registry) AddIndex(name string, idx *fairindex.Index) error {
	if err := checkName(name); err != nil {
		return err
	}
	if idx == nil {
		return fmt.Errorf("registry: %q: nil index", name)
	}
	e := &Entry{name: name}
	r.installed(e, idx)
	e.idx.Store(idx)
	return r.insert(e)
}

// insert publishes a catalog extended by e.
func (r *Registry) insert(e *Entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	if _, dup := old[e.name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, e.name)
	}
	next := make(map[string]*Entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[e.name] = e
	r.publish(next)
	return nil
}

// SetDefault names the entry unnamed requests resolve to; it need not
// exist yet (a later Add or Rescan may introduce it).
func (r *Registry) SetDefault(name string) { r.defName.Store(&name) }

// DefaultName returns the effective default entry name: the
// configured one, else the sole registered entry, else "". Lock-free
// (it sits on the unnamed-route request path).
func (r *Registry) DefaultName() string {
	if def := r.defName.Load(); def != nil && *def != "" {
		return *def
	}
	m := r.snapshot()
	if len(m) == 1 {
		for name := range m {
			return name
		}
	}
	return ""
}

// Lookup resolves a name to its loaded Index, lazily loading the
// backing file on first use. This is the serving hot path: when the
// entry is resident it takes one atomic snapshot load, one map read
// and one atomic entry load — no locks.
func (r *Registry) Lookup(name string) (*fairindex.Index, error) {
	_, idx, err := r.lookupEntry(name)
	return idx, err
}

// lookupEntry is Lookup keeping the resolved *Entry: callers that
// need both the Index and its catalog slot (Append's drift-hook
// latch) must resolve the entry exactly once — re-reading the
// snapshot later races with Rescan/eviction, which can hand back a
// different Entry (or none) for the same name.
func (r *Registry) lookupEntry(name string) (*Entry, *fairindex.Index, error) {
	e, ok := r.snapshot()[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.lastUsed.Store(r.clock.Add(1))
	if idx := e.idx.Load(); idx != nil {
		return e, idx, nil
	}
	idx, err := r.loadEntry(e)
	return e, idx, err
}

// Default resolves the default entry (see DefaultName).
func (r *Registry) Default() (*fairindex.Index, error) {
	name := r.DefaultName()
	if name == "" {
		return nil, ErrNoDefault
	}
	return r.Lookup(name)
}

// loadEntry is Lookup's slow path: read the backing file, publish the
// Index, then enforce the residency bound.
func (r *Registry) loadEntry(e *Entry) (*fairindex.Index, error) {
	e.loadMu.Lock()
	if idx := e.idx.Load(); idx != nil { // raced with another loader
		e.loadMu.Unlock()
		return idx, nil
	}
	idx, err := fairindex.LoadIndex(e.path)
	if err != nil {
		e.setErr(err)
		e.loadMu.Unlock()
		return nil, fmt.Errorf("registry: loading %q: %w", e.name, err)
	}
	r.installed(e, idx)
	e.idx.Store(idx)
	e.lastErr.Store(nil)
	e.loadMu.Unlock()
	r.evictOver(e)
	return idx, nil
}

func (e *Entry) setErr(err error) {
	msg := err.Error()
	e.lastErr.Store(&msg)
}

// installed prepares a fresh artifact generation for serving: it arms
// the registry-wide drift thresholds on the index and re-arms the
// one-shot drift hook.
func (r *Registry) installed(e *Entry, idx *fairindex.Index) {
	if r.driftThreshold > 0 {
		// The threshold was validated positive and finite; the index
		// accepts any such value.
		_ = idx.SetDriftThreshold(r.driftThreshold)
	}
	for name, t := range r.driftThresholds {
		// Values were validated positive at option time; an unknown
		// metric name (not registered in this process) is the only
		// remaining failure, worth a log line rather than a panic.
		if err := idx.SetMetricDriftThreshold(name, t); err != nil {
			r.logger.Printf("registry: %q: cannot arm drift threshold for metric %q: %v",
				e.name, name, err)
		}
	}
	e.driftNotified.Store(false)
}

// Append folds a batch of new records into a served index's live
// per-region statistics (see fairindex.Index.AppendBatch — exact
// aggregates, no retraining) and drives the drift control plane: when
// the fold pushes the index's drift across the armed threshold for
// the first time in this artifact generation, the WithOnDrift hook
// fires so a controller can rebuild and Reload the entry.
func (r *Registry) Append(name string, recs []fairindex.Record) (fairindex.AppendResult, error) {
	// Resolve the entry exactly once and thread it through to the
	// notification latch: re-resolving the name after the fold would
	// race with Rescan/eviction, and a notification dropped there
	// means the rebuild never triggers for this generation.
	e, idx, err := r.lookupEntry(name)
	if err != nil {
		return fairindex.AppendResult{}, err
	}
	res, err := idx.AppendBatch(recs)
	if err != nil {
		return fairindex.AppendResult{}, fmt.Errorf("registry: append %q: %w", name, err)
	}
	if res.RebuildRecommended && e.driftNotified.CompareAndSwap(false, true) {
		r.logger.Printf("registry: %q drift crossed an armed threshold (%s) — rebuild recommended",
			name, driftSummary(res, idx.DriftThresholds()))
		if fn := r.onDrift.Load(); fn != nil {
			(*fn)(name, res.Drift)
		}
	}
	return res, nil
}

// driftSummary renders the per-metric drifts that crossed their armed
// thresholds, for the Append log line.
func driftSummary(res fairindex.AppendResult, thresholds map[string]float64) string {
	names := make([]string, 0, len(res.Drifts))
	for name := range res.Drifts {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		// Same inclusive boundary as the recommendation itself: a
		// drift landing exactly on its threshold appears in the log.
		if !fairindex.DriftExceeds(res.Drifts[name], thresholds[name]) {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.4g ≥ %.4g", name, res.Drifts[name], thresholds[name])
	}
	if b.Len() == 0 {
		// Crossing detected by the index but not reconstructible from
		// the result (e.g. thresholds swapped concurrently).
		fmt.Fprintf(&b, "max ENCE drift %.4g", res.Drift)
	}
	return b.String()
}

// evictOver unloads least-recently-used file-backed entries until the
// resident count is within the bound again. keep (the entry that
// triggered the check) is exempt, so a load can never evict itself.
func (r *Registry) evictOver(keep *Entry) {
	if r.maxLoaded <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var resident []*Entry
	for _, e := range r.snapshot() {
		// Entries whose last reload failed are exempt: evicting one
		// would trade its last good generation for a backing file
		// known to be corrupt, silently voiding the
		// corrupt-reload-keeps-serving invariant at the next lookup.
		if e.path != "" && e.idx.Load() != nil && e.lastErr.Load() == nil {
			resident = append(resident, e)
		}
	}
	if len(resident) <= r.maxLoaded {
		return
	}
	sort.Slice(resident, func(i, j int) bool {
		return resident[i].lastUsed.Load() < resident[j].lastUsed.Load()
	})
	over := len(resident) - r.maxLoaded
	for _, e := range resident {
		if over == 0 {
			break
		}
		if e == keep {
			continue
		}
		e.idx.Store(nil)
		over--
		r.logger.Printf("registry: evicted %q (LRU, max %d resident)", e.name, r.maxLoaded)
	}
}

// Reload re-reads an entry's backing file and atomically swaps the
// new Index in. On any error the currently served Index (if any) is
// left untouched — the per-entry corrupt-reload-keeps-serving
// invariant. Pinned in-memory entries return ErrNoPath.
func (r *Registry) Reload(name string) error {
	e, ok := r.snapshot()[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.path == "" {
		return fmt.Errorf("%w: %q", ErrNoPath, name)
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	idx, err := fairindex.LoadIndex(e.path)
	if err != nil {
		e.setErr(err)
		return fmt.Errorf("registry: reloading %q: %w", name, err)
	}
	r.installed(e, idx)
	e.idx.Store(idx)
	e.lastErr.Store(nil)
	e.reloads.Add(1)
	return nil
}

// ReloadLoaded reloads every currently resident file-backed entry.
// Per-entry failures leave that entry serving its old Index; the
// returned error joins them. Unloaded entries are left unloaded —
// they pick up new bytes lazily anyway.
func (r *Registry) ReloadLoaded() error {
	var errs []error
	for _, name := range r.Names() {
		e := r.snapshot()[name]
		if e == nil || e.path == "" || e.idx.Load() == nil {
			continue
		}
		if err := r.Reload(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Swap atomically replaces an entry's Index and returns the previous
// one (nil if the entry was unloaded). In-flight requests keep using
// the Index they resolved. Swapping in a non-nil index counts as a
// reload in the entry's stats and clears the last load error.
//
// Swap(name, nil) unloads the entry: the index is dropped (a
// file-backed entry reloads lazily on next use; a pinned one stays
// empty until the next Swap/SetIndex). An unload is bookkeeping, not
// a new generation — it does not count as a reload and it preserves
// lastErr, so the diagnostic from a preceding failed load survives
// into /v1/indexes.
func (r *Registry) Swap(name string, idx *fairindex.Index) (*fairindex.Index, error) {
	e, ok := r.snapshot()[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.loadMu.Lock()
	if idx != nil {
		r.installed(e, idx)
	}
	old := e.idx.Swap(idx)
	if idx != nil {
		e.lastErr.Store(nil)
		e.reloads.Add(1)
	}
	e.loadMu.Unlock()
	return old, nil
}

// SetIndex stores an entry's Index without counting a reload — the
// initial-population step for an entry whose artifact the caller
// already has in memory (e.g. a server opened from a single file).
func (r *Registry) SetIndex(name string, idx *fairindex.Index) error {
	e, ok := r.snapshot()[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.loadMu.Lock()
	if idx != nil {
		r.installed(e, idx)
	}
	e.idx.Store(idx)
	e.lastErr.Store(nil)
	e.loadMu.Unlock()
	return nil
}

// Rescan re-lists the configured directory: new *.fidx files become
// available entries (named by file base), and directory-discovered
// entries whose file vanished are dropped from the catalog.
// Explicitly registered and pinned entries always survive. A registry
// without a directory rescans to itself.
func (r *Registry) Rescan() error {
	if r.dir == "" {
		return nil
	}
	names, err := scanDir(r.dir)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	next := make(map[string]*Entry, len(old)+len(names))
	for k, e := range old {
		if e.fromDir {
			continue // re-added below iff the file still exists
		}
		next[k] = e
	}
	for name, path := range names {
		if prev, ok := old[name]; ok {
			if prev.fromDir {
				next[name] = prev // keep loaded state and LRU stamp
			}
			// An explicit entry shadows a same-named directory file.
			continue
		}
		next[name] = &Entry{name: name, path: path, fromDir: true}
	}
	for k, e := range old {
		if e.fromDir {
			if _, still := next[k]; !still {
				r.logger.Printf("registry: dropped %q (file removed)", k)
			}
		}
	}
	r.publish(next)
	return nil
}

// scanDir lists name → path for every *.fidx file in dir.
func scanDir(dir string) (map[string]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	out := make(map[string]string)
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), Ext)
		if name == "" {
			continue
		}
		out[name] = filepath.Join(dir, de.Name())
	}
	return out, nil
}

// Dir returns the configured artifact directory ("" when none).
func (r *Registry) Dir() string { return r.dir }

// MaxLoaded returns the residency bound (0 = unlimited).
func (r *Registry) MaxLoaded() int { return r.maxLoaded }

// Names returns the registered entry names, sorted.
func (r *Registry) Names() []string {
	m := r.snapshot()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered entries.
func (r *Registry) Len() int { return len(r.snapshot()) }

// LoadedCount returns how many entries are currently resident.
func (r *Registry) LoadedCount() int {
	n := 0
	for _, e := range r.snapshot() {
		if e.idx.Load() != nil {
			n++
		}
	}
	return n
}

// Entry load states reported by Info.
const (
	// StateAvailable marks a registered entry whose artifact has not
	// been loaded (never used, or evicted back to disk).
	StateAvailable = "available"
	// StateLoaded marks a resident entry.
	StateLoaded = "loaded"
	// StateFailed marks an entry whose most recent load or reload
	// failed; a previously loaded Index may still be serving.
	StateFailed = "failed"
)

// Info is a point-in-time description of one entry, for listings.
type Info struct {
	Name    string
	Path    string // "" for pinned in-memory entries
	State   string
	Pinned  bool
	Reloads int64
	LastErr string
	// Artifact fields, populated only while loaded.
	CodecVersion int
	Regions      int
	Dataset      string
	Method       string
	Tasks        []int
	// Maintenance fields, populated only while loaded: records folded
	// in by Append since this generation was installed, the maximum
	// per-task calibration drift, and whether it crossed the armed
	// threshold.
	Appended           int
	Drift              float64
	RebuildRecommended bool
	// Drifts holds the live drift of each metric with an armed
	// threshold (nil when only the legacy ENCE monitor is running).
	Drifts map[string]float64
}

// info snapshots one entry's state.
func (e *Entry) info() Info {
	out := Info{
		Name:    e.name,
		Path:    e.path,
		Pinned:  e.path == "",
		Reloads: e.reloads.Load(),
	}
	if msg := e.lastErr.Load(); msg != nil {
		out.LastErr = *msg
	}
	if idx := e.idx.Load(); idx != nil {
		out.State = StateLoaded
		out.CodecVersion = idx.CodecVersion()
		out.Regions = idx.NumRegions()
		out.Dataset = idx.DatasetName()
		out.Method = idx.Method().String()
		out.Tasks = idx.Tasks()
		out.Appended = idx.Appended()
		out.Drift = idx.MaxDrift()
		out.RebuildRecommended = idx.RebuildRecommended()
		if armed := idx.DriftThresholds(); len(armed) > 0 {
			out.Drifts = make(map[string]float64, len(armed))
			for name := range armed {
				if d, err := idx.MaxMetricDrift(name); err == nil && !math.IsNaN(d) {
					out.Drifts[name] = d
				}
			}
		}
	} else if out.LastErr != "" {
		out.State = StateFailed
	} else {
		out.State = StateAvailable
	}
	return out
}

// Info describes one entry by name.
func (r *Registry) Info(name string) (Info, bool) {
	e, ok := r.snapshot()[name]
	if !ok {
		return Info{}, false
	}
	return e.info(), true
}

// List describes every entry, sorted by name.
func (r *Registry) List() []Info {
	m := r.snapshot()
	out := make([]Info, 0, len(m))
	for _, e := range m {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
