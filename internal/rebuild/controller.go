package rebuild

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"fairindex"
	"fairindex/internal/registry"
)

// SourceFunc opens a fresh record stream for one entry — the data a
// rebuild trains the candidate on. The returned close function (nil is
// allowed) runs after the build, whatever its outcome. The function is
// called once per rebuild attempt, so a retry after a transient
// failure reads the feed again from scratch.
type SourceFunc func(name string) (fairindex.Source, func() error, error)

// Controller drives the trigger → build → gate → promote lifecycle
// over a registry's entries. Bind subscribes it to the registry's
// drift hook; Kick and Rebuild start attempts explicitly. Per entry,
// rebuilds are single-flight: a trigger arriving while one is running
// is dropped (the running rebuild already reads the freshest feed).
// Build failures retry with exponential backoff; gate refusals and
// promotion errors do not retry on their own — they represent a
// decision or a condition a retry loop cannot fix.
type Controller struct {
	reg     *registry.Registry
	source  SourceFunc
	budgets map[string]float64
	probes  []fairindex.BBox
	base    time.Duration // first backoff delay
	max     time.Duration // backoff ceiling
	logger  *log.Logger
	observe func(name string, res Result, err error)

	mu     sync.Mutex
	states map[string]*entryState
	bound  bool
	closed bool
	wg     sync.WaitGroup
}

// entryState is the per-entry single-flight latch plus the visible
// status snapshot. All fields are guarded by Controller.mu.
type entryState struct {
	inFlight bool
	retry    *time.Timer
	status   Status
}

// Option configures a Controller.
type Option func(*Controller)

// WithBudgets replaces the default regression budgets (metric name →
// maximum tolerated badness delta). A zero budget evaluates and
// reports the metric without ever refusing.
func WithBudgets(budgets map[string]float64) Option {
	return func(c *Controller) {
		c.budgets = make(map[string]float64, len(budgets))
		for name, b := range budgets {
			c.budgets[name] = b
		}
	}
}

// WithProbes sets the probe window set the gate evaluates over
// (default: one window covering the serving index's whole box).
func WithProbes(probes ...fairindex.BBox) Option {
	return func(c *Controller) { c.probes = append([]fairindex.BBox(nil), probes...) }
}

// WithBackoff sets the build-failure retry schedule: the first retry
// waits base, each further consecutive failure doubles the wait, and
// max caps it. The default is 1s doubling up to 1m.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Controller) { c.base, c.max = base, max }
}

// WithLogger routes the controller's lifecycle log lines.
func WithLogger(l *log.Logger) Option {
	return func(c *Controller) { c.logger = l }
}

// WithObserver installs a hook called after every completed attempt —
// promoted, refused, or failed — with the result and error the caller
// of a synchronous Rebuild would have seen. Tests use it to
// synchronize on asynchronous (drift-triggered) rebuilds.
func WithObserver(fn func(name string, res Result, err error)) Option {
	return func(c *Controller) { c.observe = fn }
}

// New creates a Controller over reg that builds candidates from the
// streams source opens. It does not subscribe to drift notifications
// until Bind.
func New(reg *registry.Registry, source SourceFunc, opts ...Option) (*Controller, error) {
	if reg == nil {
		return nil, errors.New("rebuild: nil registry")
	}
	if source == nil {
		return nil, errors.New("rebuild: nil source function")
	}
	c := &Controller{
		reg:     reg,
		source:  source,
		budgets: DefaultBudgets(),
		base:    time.Second,
		max:     time.Minute,
		logger:  log.Default(),
		states:  make(map[string]*entryState),
	}
	for _, opt := range opts {
		opt(c)
	}
	if err := validateBudgets(c.budgets); err != nil {
		return nil, err
	}
	if c.base <= 0 || c.max < c.base {
		return nil, fmt.Errorf("rebuild: backoff %v..%v", c.base, c.max)
	}
	return c, nil
}

// Bind subscribes the controller to the registry's drift hook: every
// once-per-generation drift notification becomes an asynchronous
// rebuild kick. Close unsubscribes.
func (c *Controller) Bind() {
	c.mu.Lock()
	c.bound = true
	c.mu.Unlock()
	c.reg.SetOnDrift(func(name string, drift float64) {
		c.logger.Printf("rebuild: drift trigger for %q (max drift %.4g)", name, drift)
		c.Kick(name)
	})
}

// Kick starts an asynchronous rebuild of name. It returns false — and
// does nothing — when a rebuild for the entry is already in flight or
// the controller is closed; the drift hook and the server's 202
// endpoint both route through it.
func (c *Controller) Kick(name string) bool {
	st, ok := c.begin(name)
	if !ok {
		return false
	}
	go func() {
		defer c.wg.Done()
		res, err := c.attempt(name)
		c.finish(name, st, res, err)
	}()
	return true
}

// Rebuild runs one rebuild of name synchronously and returns its
// result: the gate decision on success (promoted or refused), an
// error otherwise (wrapping ErrBuild when producing the candidate
// failed, ErrInFlight when an attempt is already running).
func (c *Controller) Rebuild(name string) (Result, error) {
	st, ok := c.begin(name)
	if !ok {
		return Result{Name: name}, fmt.Errorf("rebuild %q: %w", name, ErrInFlight)
	}
	defer c.wg.Done()
	res, err := c.attempt(name)
	c.finish(name, st, res, err)
	return res, err
}

// Status reports the entry's rebuild state. An entry never touched by
// the controller is idle.
func (c *Controller) Status(name string) Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.states[name]
	if !ok {
		return Status{Name: name, State: StateIdle}
	}
	return st.status.clone()
}

// Statuses reports the rebuild state of every entry the controller
// has touched, keyed by name.
func (c *Controller) Statuses() map[string]Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Status, len(c.states))
	for name, st := range c.states {
		out[name] = st.status.clone()
	}
	return out
}

// Close unsubscribes from the drift hook, cancels pending backoff
// retries, refuses new kicks and waits for in-flight rebuilds to
// finish. A rebuild completing during Close still promotes or refuses
// normally — Close drains, it does not abort.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	bound := c.bound
	for _, st := range c.states {
		if st.retry != nil {
			st.retry.Stop()
			st.retry = nil
			st.status.NextRetry = time.Time{}
		}
	}
	c.mu.Unlock()
	if bound {
		c.reg.SetOnDrift(nil)
	}
	c.wg.Wait()
}

// clone copies a status so callers cannot alias the guarded map.
func (s Status) clone() Status {
	out := s
	if s.RefusalDeltas != nil {
		out.RefusalDeltas = make(map[string]float64, len(s.RefusalDeltas))
		for k, v := range s.RefusalDeltas {
			out.RefusalDeltas[k] = v
		}
	}
	return out
}

// begin claims the entry's single-flight slot. On success the caller
// owns one wg count and must finish the attempt.
func (c *Controller) begin(name string) (*entryState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false
	}
	st, ok := c.states[name]
	if !ok {
		st = &entryState{status: Status{Name: name, State: StateIdle}}
		c.states[name] = st
	}
	if st.inFlight {
		return nil, false
	}
	if st.retry != nil {
		st.retry.Stop()
		st.retry = nil
		st.status.NextRetry = time.Time{}
	}
	st.inFlight = true
	st.status.State = StateBuilding
	c.wg.Add(1)
	return st, true
}

// finish releases the single-flight slot, folds the attempt's outcome
// into the status, schedules a backoff retry for build failures, and
// notifies the observer.
func (c *Controller) finish(name string, st *entryState, res Result, err error) {
	c.mu.Lock()
	st.inFlight = false
	switch {
	case err != nil:
		st.status.State = StateFailed
		st.status.LastErr = err.Error()
		if errors.Is(err, ErrBuild) && !c.closed {
			st.status.Attempts++
			delay := c.backoff(st.status.Attempts)
			st.status.NextRetry = time.Now().Add(delay)
			st.retry = time.AfterFunc(delay, func() { c.Kick(name) })
		}
	case res.Outcome == OutcomeRefused:
		st.status.State = StateRefused
		st.status.Attempts = 0
		st.status.LastErr = ""
		st.status.RefusalDeltas = res.Decision.Refusals
	default:
		st.status.State = StatePromoted
		st.status.Attempts = 0
		st.status.LastErr = ""
		st.status.RefusalDeltas = nil
		st.status.LastPromoted = time.Now()
	}
	c.mu.Unlock()

	switch {
	case err != nil:
		c.logger.Printf("rebuild: %v", err)
	case res.Outcome == OutcomeRefused:
		c.logger.Printf("rebuild: refused candidate for %q: %s", name, refusalLine(res.Decision))
	default:
		c.logger.Printf("rebuild: promoted %q in %v", name, res.Duration.Round(time.Millisecond))
	}
	if c.observe != nil {
		c.observe(name, res, err)
	}
}

// backoff returns the delay before retry number attempt (1-based):
// base · 2^(attempt−1), capped at max.
func (c *Controller) backoff(attempt int) time.Duration {
	d := c.base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.max {
			return c.max
		}
	}
	if d > c.max {
		return c.max
	}
	return d
}

// refusalLine renders a refusal's worst deltas for the log.
func refusalLine(dec Decision) string {
	line := ""
	for _, d := range dec.Deltas {
		if !d.Exceeded {
			continue
		}
		if line != "" {
			line += ", "
		}
		line += fmt.Sprintf("%s +%.4g > budget %.4g (task %d, probe %d)", d.Metric, d.Delta, d.Budget, d.Task, d.Probe)
	}
	return line
}

// attempt runs one full rebuild: resolve the serving index, open a
// fresh source, pre-flight its schema, build the candidate with the
// serving index's own resolved build configuration (bit-identical
// recipe), gate it, and — on a promote verdict — write the artifact
// atomically and swap it into the registry.
func (c *Controller) attempt(name string) (Result, error) {
	start := time.Now()
	res := Result{Name: name}
	serving, err := c.reg.Lookup(name)
	if err != nil {
		return res, fmt.Errorf("rebuild %q: serving index: %w", name, err)
	}
	src, closeSrc, err := c.source(name)
	if err != nil {
		return res, fmt.Errorf("rebuild %q: %w: source: %v", name, ErrBuild, err)
	}
	if closeSrc != nil {
		defer func() { _ = closeSrc() }()
	}
	if err := src.Schema().Compatible(serving.FeatureNames(), serving.TaskNames()); err != nil {
		return res, fmt.Errorf("rebuild %q: %w: %v", name, ErrBuild, err)
	}
	candidate, err := fairindex.BuildStream(src, fairindex.WithConfig(serving.Config()))
	if err != nil {
		return res, fmt.Errorf("rebuild %q: %w: %v", name, ErrBuild, err)
	}
	dec, err := Evaluate(serving, candidate, c.budgets, c.probes)
	if err != nil {
		return res, fmt.Errorf("rebuild %q: gate: %w", name, err)
	}
	res.Decision = dec
	if !dec.Promote {
		res.Outcome = OutcomeRefused
		res.Duration = time.Since(start)
		return res, nil
	}
	// Artifact bytes first, then the in-memory swap: a crash between
	// the two restarts into the promoted generation, never a torn or
	// regressed one.
	if info, ok := c.reg.Info(name); ok && info.Path != "" {
		if err := PromoteFile(info.Path, candidate); err != nil {
			return res, fmt.Errorf("rebuild %q: %w", name, err)
		}
		res.Path = info.Path
	}
	if _, err := c.reg.Swap(name, candidate); err != nil {
		return res, fmt.Errorf("rebuild %q: swap: %w", name, err)
	}
	res.Outcome = OutcomePromoted
	res.Duration = time.Since(start)
	return res, nil
}
