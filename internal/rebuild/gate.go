package rebuild

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"fairindex"
)

// Evaluate runs the fairness gate: candidate-vs-serving deltas of
// every budgeted metric, over every probe window, for every task. Each
// probe rectangle is resolved to a region window through each index's
// OWN RangeQuery — the two partitions need not agree, the same
// discipline /v1/compare uses — and the metrics are computed by
// GroupStatsMetrics over each side's live sufficient statistics, so a
// serving index that drifted is judged by what it serves today, not by
// its build-time snapshot.
//
// The verdict is Promote unless some metric's badness delta
// (distance-from-ideal of the candidate minus the serving index, see
// Badness) exceeds its budget on the shared inclusive boundary
// predicate fairindex.DriftExceeds. A NaN on either side yields a NaN
// delta, which never refuses: a window where a metric is undefined
// (e.g. cal_ratio with no positives) holds no evidence of regression.
//
// A nil budgets map means DefaultBudgets; an empty probe set means one
// probe covering the serving index's whole box. Evaluate reads both
// indexes and writes nothing — a refusal leaves no artifact behind.
func Evaluate(serving, candidate *fairindex.Index, budgets map[string]float64, probes []fairindex.BBox) (Decision, error) {
	if budgets == nil {
		budgets = DefaultBudgets()
	}
	if err := validateBudgets(budgets); err != nil {
		return Decision{}, err
	}
	tasks := serving.Tasks()
	if !slices.Equal(tasks, candidate.Tasks()) {
		return Decision{}, fmt.Errorf("rebuild: candidate serves tasks %v, serving index %v", candidate.Tasks(), tasks)
	}
	if len(probes) == 0 {
		probes = []fairindex.BBox{serving.Box()}
	}
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)

	dec := Decision{Promote: true}
	for pi, probe := range probes {
		sregs, err := windowRegions(serving, probe)
		if err != nil {
			return Decision{}, fmt.Errorf("rebuild: probe %d on serving index: %w", pi, err)
		}
		cregs, err := windowRegions(candidate, probe)
		if err != nil {
			return Decision{}, fmt.Errorf("rebuild: probe %d on candidate: %w", pi, err)
		}
		for _, task := range tasks {
			sw, err := serving.GroupStatsMetrics(task, sregs, names...)
			if err != nil {
				return Decision{}, fmt.Errorf("rebuild: probe %d task %d on serving index: %w", pi, task, err)
			}
			cw, err := candidate.GroupStatsMetrics(task, cregs, names...)
			if err != nil {
				return Decision{}, fmt.Errorf("rebuild: probe %d task %d on candidate: %w", pi, task, err)
			}
			for _, name := range names {
				d := MetricDelta{
					Metric:    name,
					Task:      task,
					Probe:     pi,
					Serving:   sw.Metrics[name],
					Candidate: cw.Metrics[name],
					Budget:    budgets[name],
				}
				d.Delta = Badness(name, d.Candidate) - Badness(name, d.Serving)
				d.Exceeded = fairindex.DriftExceeds(d.Delta, d.Budget)
				if d.Exceeded {
					dec.Promote = false
					if dec.Refusals == nil {
						dec.Refusals = make(map[string]float64)
					}
					if worst, ok := dec.Refusals[name]; !ok || d.Delta > worst {
						dec.Refusals[name] = d.Delta
					}
				}
				dec.Deltas = append(dec.Deltas, d)
			}
		}
	}
	return dec, nil
}

// windowRegions resolves a probe rectangle to the region ids the
// index intersects with it.
func windowRegions(ix *fairindex.Index, probe fairindex.BBox) ([]int, error) {
	overlaps, err := ix.RangeQuery(probe)
	if err != nil {
		return nil, err
	}
	regs := make([]int, len(overlaps))
	for i, ov := range overlaps {
		regs[i] = ov.Region
	}
	return regs, nil
}

// PromoteFile atomically replaces the artifact at path with the
// candidate's serialized bytes: the bytes are written to a temp file
// in the same directory (same filesystem, so the final step is a true
// rename) and renamed over the old artifact. A crash at any point
// leaves either the complete old bytes or the complete new bytes —
// never a torn file — so a restart that lazily reloads from disk
// serves a coherent generation. The temp name carries no .fidx
// suffix, so a concurrent Rescan never catalogs a half-written
// candidate.
func PromoteFile(path string, candidate *fairindex.Index) error {
	data, err := candidate.MarshalBinary()
	if err != nil {
		return fmt.Errorf("rebuild: marshal candidate: %w", err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("rebuild: promote: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(data); err == nil {
		// CreateTemp opens 0600; artifacts are world-readable like
		// any build output.
		err = f.Chmod(0o644)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("rebuild: promote: %w", err)
	}
	return nil
}
