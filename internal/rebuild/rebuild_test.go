package rebuild

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/registry"
)

// cityData generates the deterministic 340-record LA workload the
// suite shares: the serving index trains on the first 300 records,
// the last 40 drive drift, and the full set is the "fresh feed" a
// good rebuild trains on.
func cityData(t testing.TB) *dataset.Dataset {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 340
	all, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// buildServing trains the serving index over the first 300 records.
func buildServing(t testing.TB, all *dataset.Dataset) *fairindex.Index {
	t.Helper()
	build := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: all.Records[:300],
	}
	idx, err := fairindex.Build(build, fairindex.WithHeight(3), fairindex.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// flipLabels returns a copy of ds with every label inverted — training
// data whose feature→label association is destroyed, so a candidate
// built from it measurably regresses the calibration metrics against
// a coherently trained serving index (the deterministic "bad feed").
func flipLabels(ds *dataset.Dataset) *dataset.Dataset {
	recs := make([]dataset.Record, len(ds.Records))
	copy(recs, ds.Records)
	for i := range recs {
		labels := make([]int, len(recs[i].Labels))
		for j, l := range recs[i].Labels {
			labels[j] = 1 - l
		}
		recs[i].Labels = labels
	}
	return &dataset.Dataset{
		Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames,
		Records: recs,
	}
}

// buildFrom streams a candidate with the serving index's own recipe,
// exactly as the controller does.
func buildFrom(t testing.TB, serving *fairindex.Index, ds *dataset.Dataset) *fairindex.Index {
	t.Helper()
	cand, err := fairindex.BuildStream(fairindex.NewDatasetSource(ds), fairindex.WithConfig(serving.Config()))
	if err != nil {
		t.Fatal(err)
	}
	return cand
}

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// datasetSourceFn serves every entry from the same in-memory dataset.
func datasetSourceFn(ds *dataset.Dataset) SourceFunc {
	return func(string) (fairindex.Source, func() error, error) {
		return fairindex.NewDatasetSource(ds), nil, nil
	}
}

func TestBadness(t *testing.T) {
	if got := Badness("cal_ratio", 0.9); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("Badness(cal_ratio, 0.9) = %v, want 0.1", got)
	}
	if got := Badness("cal_ratio", 1.3); math.Abs(got-0.3) > 1e-15 {
		t.Errorf("Badness(cal_ratio, 1.3) = %v, want 0.3", got)
	}
	if got := Badness("ence", -0.2); got != 0.2 {
		t.Errorf("Badness(ence, -0.2) = %v, want 0.2", got)
	}
	if got := Badness("ence", math.NaN()); !math.IsNaN(got) {
		t.Errorf("Badness(ence, NaN) = %v, want NaN", got)
	}
}

// TestEvaluateVerdicts pins the gate on the two deterministic feeds:
// a coherent fresh feed promotes under the default budgets, a
// label-flipped feed regresses ENCE and is refused once the budget is
// tightened below the regression, and a zero budget evaluates without
// ever refusing.
func TestEvaluateVerdicts(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	good := buildFrom(t, serving, all)
	bad := buildFrom(t, serving, flipLabels(all))

	dec, err := Evaluate(serving, good, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Promote || dec.Refusals != nil {
		t.Fatalf("good candidate: %+v, want promote", dec)
	}
	// One probe × one task × two default metrics.
	if len(dec.Deltas) != 2 {
		t.Fatalf("deltas: %d cells, want 2", len(dec.Deltas))
	}
	for _, d := range dec.Deltas {
		if d.Probe != 0 || d.Task != 0 || d.Exceeded {
			t.Errorf("unexpected cell %+v", d)
		}
	}

	dec, err = Evaluate(serving, bad, map[string]float64{"ence": 0.001}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Promote {
		t.Fatalf("label-flipped candidate promoted: %+v", dec)
	}
	worst, ok := dec.Refusals["ence"]
	if !ok || !(worst >= 0.001) {
		t.Fatalf("refusals = %v, want ence >= budget", dec.Refusals)
	}

	// A zero budget is disarmed: the metric is evaluated and reported
	// but never refuses (same boundary contract as drift thresholds).
	dec, err = Evaluate(serving, bad, map[string]float64{"ence": 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Promote || len(dec.Deltas) != 1 || dec.Deltas[0].Exceeded {
		t.Fatalf("zero-budget evaluation: %+v, want promote with one reported cell", dec)
	}
}

// TestEvaluateBoundaryInclusive pins the promotion gate to the shared
// >= crossing: a regression landing exactly on the budget refuses,
// one epsilon under it promotes — the same DriftExceeds boundary the
// append recommendation and the registry log use.
func TestEvaluateBoundaryInclusive(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	bad := buildFrom(t, serving, flipLabels(all))

	probe, err := Evaluate(serving, bad, map[string]float64{"ence": 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := probe.Deltas[0].Delta
	if !(delta > 0) {
		t.Fatalf("label-flipped candidate improved ence (delta %v); boundary test needs a regression", delta)
	}

	exact, err := Evaluate(serving, bad, map[string]float64{"ence": delta}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Promote {
		t.Errorf("delta exactly on budget promoted; the crossing is inclusive")
	}
	above, err := Evaluate(serving, bad, map[string]float64{"ence": math.Nextafter(delta, math.Inf(1))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !above.Promote {
		t.Errorf("delta one ulp under budget refused")
	}
}

func TestEvaluateBudgetValidation(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	good := buildFrom(t, serving, all)
	for _, budgets := range []map[string]float64{
		{},
		{"no_such_metric": 0.1},
		{"ence": -0.1},
		{"ence": math.NaN()},
		{"ence": math.Inf(1)},
	} {
		if _, err := Evaluate(serving, good, budgets, nil); err == nil {
			t.Errorf("budgets %v accepted", budgets)
		}
	}
}

// TestPromoteFile pins the atomic-replace contract: the promoted file
// carries exactly the candidate's bytes, loads, and leaves no temp
// litter behind.
func TestPromoteFile(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	candidate := buildFrom(t, serving, all)
	dir := t.TempDir()
	path := filepath.Join(dir, "city.fidx")
	old, err := serving.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := PromoteFile(path, candidate); err != nil {
		t.Fatal(err)
	}
	want, err := candidate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("promoted file differs from the candidate's serialization")
	}
	if _, err := fairindex.LoadIndex(path); err != nil {
		t.Fatalf("promoted artifact does not load: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp litter left in artifact dir: %v", entries)
	}
}

// observerCh funnels controller completions into a channel tests can
// wait on.
type observed struct {
	name string
	res  Result
	err  error
}

func observerCh(ch chan observed) Option {
	return WithObserver(func(name string, res Result, err error) {
		ch <- observed{name, res, err}
	})
}

func waitObserved(t *testing.T, ch chan observed) observed {
	t.Helper()
	select {
	case o := <-ch:
		return o
	case <-time.After(30 * time.Second):
		t.Fatal("no rebuild completion observed")
		return observed{}
	}
}

// TestControllerDriftToPromotion is the continuous loop end to end:
// an armed registry entry drifts past its threshold, the hook kicks
// the controller, the candidate passes the gate, the artifact is
// atomically replaced on disk and the new generation swaps in — and
// because installed() re-arms driftNotified, a second drift on the
// PROMOTED generation fires the hook and promotes again.
func TestControllerDriftToPromotion(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	extra := all.Records[300:]
	dir := t.TempDir()
	path := filepath.Join(dir, "la.fidx")
	blob, err := serving.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := registry.New(registry.WithLogger(quietLogger()), registry.WithDriftThreshold(1e-12))
	if err := reg.Add("la", path); err != nil {
		t.Fatal(err)
	}
	events := make(chan observed, 4)
	ctrl, err := New(reg, datasetSourceFn(all),
		WithLogger(quietLogger()), observerCh(events))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.Bind()

	if _, err := reg.Append("la", extra[:20]); err != nil {
		t.Fatal(err)
	}
	ob := waitObserved(t, events)
	if ob.err != nil || ob.res.Outcome != OutcomePromoted {
		t.Fatalf("first drift rebuild: outcome %v err %v", ob.res.Outcome, ob.err)
	}
	if ob.res.Path != path {
		t.Errorf("promotion path %q, want %q", ob.res.Path, path)
	}

	// The artifact on disk is now the candidate, and the serving
	// entry is the freshly built generation with no folds.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, blob) {
		t.Error("artifact bytes unchanged after promotion")
	}
	idx, err := reg.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Appended() != 0 {
		t.Errorf("promoted generation has %d folds, want 0", idx.Appended())
	}
	st := ctrl.Status("la")
	if st.State != StatePromoted || st.LastPromoted.IsZero() || st.LastErr != "" {
		t.Errorf("status after promotion: %+v", st)
	}

	// Drift the NEW generation: the hook must fire again (re-armed by
	// the swap) and promote a second time.
	if _, err := reg.Append("la", extra); err != nil {
		t.Fatal(err)
	}
	ob = waitObserved(t, events)
	if ob.err != nil || ob.res.Outcome != OutcomePromoted {
		t.Fatalf("second drift rebuild: outcome %v err %v", ob.res.Outcome, ob.err)
	}
}

// TestControllerRefusalLeavesServingUntouched is the gate's e2e: a
// candidate built from a regressing feed is refused, the serving
// artifact is byte-identical before and after, the resident index
// keeps serving the same generation (folds intact), and no candidate
// artifact is left anywhere.
func TestControllerRefusalLeavesServingUntouched(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	dir := t.TempDir()
	path := filepath.Join(dir, "la.fidx")
	blob, err := serving.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := registry.New(registry.WithLogger(quietLogger()))
	if err := reg.Add("la", path); err != nil {
		t.Fatal(err)
	}
	before, err := reg.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(reg, datasetSourceFn(flipLabels(all)),
		WithBudgets(map[string]float64{"ence": 0.001}),
		WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	res, err := ctrl.Rebuild("la")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRefused || res.Decision.Promote {
		t.Fatalf("result %+v, want refused", res)
	}
	if res.Path != "" {
		t.Errorf("refusal reports a promotion path %q", res.Path)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("serving artifact bytes changed by a refused rebuild")
	}
	after, err := reg.Lookup("la")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Error("serving index generation swapped by a refused rebuild")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("candidate litter after refusal: %v", entries)
	}
	st := ctrl.Status("la")
	if st.State != StateRefused || len(st.RefusalDeltas) == 0 {
		t.Errorf("status after refusal: %+v", st)
	}
	if _, ok := st.RefusalDeltas["ence"]; !ok {
		t.Errorf("refusal deltas %v missing ence", st.RefusalDeltas)
	}
}

// TestControllerBuildFailureBackoff pins the retry machinery: failed
// candidate builds wrap ErrBuild, consecutive attempts back off
// exponentially, and a later success resets the attempt counter.
func TestControllerBuildFailureBackoff(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	reg := registry.New(registry.WithLogger(quietLogger()))
	if err := reg.AddIndex("la", serving); err != nil {
		t.Fatal(err)
	}

	var fail = make(chan bool, 16)
	source := func(string) (fairindex.Source, func() error, error) {
		if <-fail {
			return nil, nil, errors.New("feed offline")
		}
		return fairindex.NewDatasetSource(all), nil, nil
	}
	events := make(chan observed, 16)
	ctrl, err := New(reg, source,
		WithBackoff(10*time.Millisecond, 40*time.Millisecond),
		WithLogger(quietLogger()), observerCh(events))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Two failures, then success — all driven by the backoff retries
	// of the single initial kick.
	fail <- true
	fail <- true
	fail <- false
	if !ctrl.Kick("la") {
		t.Fatal("kick refused")
	}

	ob := waitObserved(t, events)
	if !errors.Is(ob.err, ErrBuild) {
		t.Fatalf("first failure: %v, want ErrBuild", ob.err)
	}
	st := ctrl.Status("la")
	if st.State != StateFailed || st.Attempts != 1 || st.NextRetry.IsZero() {
		t.Errorf("status after first failure: %+v", st)
	}
	if ob = waitObserved(t, events); !errors.Is(ob.err, ErrBuild) {
		t.Fatalf("second failure: %v, want ErrBuild", ob.err)
	}
	ob = waitObserved(t, events)
	if ob.err != nil || ob.res.Outcome != OutcomePromoted {
		t.Fatalf("retry after failures: outcome %v err %v", ob.res.Outcome, ob.err)
	}
	st = ctrl.Status("la")
	if st.State != StatePromoted || st.Attempts != 0 || st.LastErr != "" || !st.NextRetry.IsZero() {
		t.Errorf("status after recovery: %+v", st)
	}
}

// TestControllerSingleFlight pins one-rebuild-per-name: concurrent
// kicks coalesce and a synchronous Rebuild reports ErrInFlight while
// a build is running.
func TestControllerSingleFlight(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	reg := registry.New(registry.WithLogger(quietLogger()))
	if err := reg.AddIndex("la", serving); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	source := func(string) (fairindex.Source, func() error, error) {
		<-release
		return fairindex.NewDatasetSource(all), nil, nil
	}
	events := make(chan observed, 4)
	ctrl, err := New(reg, source, WithLogger(quietLogger()), observerCh(events))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	if !ctrl.Kick("la") {
		t.Fatal("first kick refused")
	}
	if ctrl.Kick("la") {
		t.Error("second kick did not coalesce")
	}
	if _, err := ctrl.Rebuild("la"); !errors.Is(err, ErrInFlight) {
		t.Errorf("Rebuild during flight: %v, want ErrInFlight", err)
	}
	if st := ctrl.Status("la"); st.State != StateBuilding {
		t.Errorf("state during flight: %q", st.State)
	}
	close(release)
	if ob := waitObserved(t, events); ob.err != nil || ob.res.Outcome != OutcomePromoted {
		t.Fatalf("coalesced rebuild: outcome %v err %v", ob.res.Outcome, ob.err)
	}
}

// TestControllerSchemaMismatch pins the pre-flight: a feed whose
// columns drifted fails as a build error before any expensive work.
func TestControllerSchemaMismatch(t *testing.T) {
	all := cityData(t)
	serving := buildServing(t, all)
	reg := registry.New(registry.WithLogger(quietLogger()))
	if err := reg.AddIndex("la", serving); err != nil {
		t.Fatal(err)
	}
	renamed := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: append([]string{"renamed"}, all.FeatureNames[1:]...),
		TaskNames:    all.TaskNames,
		Records:      all.Records,
	}
	ctrl, err := New(reg, datasetSourceFn(renamed),
		WithBackoff(time.Hour, time.Hour), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	_, err = ctrl.Rebuild("la")
	if !errors.Is(err, ErrBuild) || !strings.Contains(err.Error(), "renamed") {
		t.Fatalf("schema mismatch: %v, want ErrBuild naming the column", err)
	}
}

// TestControllerUnknownEntry: a kick for a name the registry does not
// hold fails without retry (not a build error).
func TestControllerUnknownEntry(t *testing.T) {
	reg := registry.New(registry.WithLogger(quietLogger()))
	ctrl, err := New(reg, datasetSourceFn(nil), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.Rebuild("nope"); err == nil || errors.Is(err, ErrBuild) {
		t.Fatalf("unknown entry: %v, want a non-build error", err)
	}
	if st := ctrl.Status("nope"); st.State != StateFailed || !st.NextRetry.IsZero() {
		t.Errorf("status: %+v, want failed without retry", st)
	}
}

func TestControllerOptionValidation(t *testing.T) {
	reg := registry.New(registry.WithLogger(quietLogger()))
	src := datasetSourceFn(nil)
	if _, err := New(nil, src); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(reg, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(reg, src, WithBudgets(map[string]float64{"bogus": 1})); err == nil {
		t.Error("unknown budget metric accepted")
	}
	if _, err := New(reg, src, WithBackoff(-time.Second, time.Second)); err == nil {
		t.Error("negative backoff accepted")
	}
	if _, err := New(reg, src, WithBackoff(time.Second, time.Millisecond)); err == nil {
		t.Error("max < base backoff accepted")
	}
}

func TestBackoffSchedule(t *testing.T) {
	c := &Controller{base: time.Second, max: 10 * time.Second}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if fmt.Sprint(OutcomePromoted) != "promoted" || fmt.Sprint(OutcomeRefused) != "refused" {
		t.Error("outcome strings")
	}
}
