// Package rebuild closes the drift loop the registry's hook opens: a
// Controller listens for drift notifications (or explicit kicks),
// rebuilds a candidate artifact from a fresh record stream with the
// serving index's own build recipe, evaluates candidate-vs-serving
// fairness over a probe window set, and either promotes the candidate
// atomically (temp file + rename next to the serving artifact, then
// Registry.Swap) or refuses it when a budgeted metric regressed. One
// rebuild is in flight per entry at a time; build failures back off
// exponentially. See docs/REBUILD.md for the lifecycle and budget
// semantics.
package rebuild

import (
	"errors"
	"fmt"
	"math"
	"time"

	"fairindex"
)

// ErrBuild marks a rebuild attempt that failed while producing the
// candidate — opening the source, validating its schema, or running
// BuildStream. Build failures are the transient class: the Controller
// retries them with exponential backoff, and fairindexctl rebuild
// maps them to their own exit code. Gate errors and promotion I/O
// failures do not wrap it and are not retried.
var ErrBuild = errors.New("candidate build failed")

// ErrInFlight reports a synchronous Rebuild call for an entry that
// already has a rebuild running — rebuilds are single-flight per name.
var ErrInFlight = errors.New("rebuild already in flight")

// Outcome classifies a completed (non-failed) rebuild attempt.
type Outcome int

const (
	// OutcomePromoted: the candidate passed the fairness gate and is
	// now serving (and, for file-backed entries, on disk).
	OutcomePromoted Outcome = iota
	// OutcomeRefused: a budgeted metric regressed beyond its budget;
	// the serving index and its artifact are untouched.
	OutcomeRefused
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomePromoted:
		return "promoted"
	case OutcomeRefused:
		return "refused"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Rebuild states, as reported by Controller.Status and the server's
// index listing. An entry starts idle and cycles
// building → promoted | refused | failed.
const (
	StateIdle     = "idle"
	StateBuilding = "building"
	StatePromoted = "promoted"
	StateRefused  = "refused"
	StateFailed   = "failed"
)

// MetricDelta is one cell of a gate evaluation: one budgeted metric,
// over one probe window, for one task, on both sides of the fence.
type MetricDelta struct {
	Metric    string
	Task      int
	Probe     int     // index into the probe window set
	Serving   float64 // raw metric value over the serving index
	Candidate float64 // raw metric value over the candidate
	// Delta is the regression in badness units: distance from the
	// metric's ideal (1 for cal_ratio, 0 otherwise) of the candidate
	// minus that of the serving index. Positive = candidate worse.
	Delta    float64
	Budget   float64
	Exceeded bool // DriftExceeds(Delta, Budget)
}

// Decision is the gate's verdict over the full (metric × task × probe)
// evaluation grid.
type Decision struct {
	// Promote is true when no budgeted metric regressed beyond its
	// budget anywhere in the grid.
	Promote bool
	// Deltas holds every evaluated cell in deterministic order:
	// probes in the given order, tasks ascending, metrics by sorted
	// name.
	Deltas []MetricDelta
	// Refusals maps each metric that exceeded its budget to the worst
	// (largest) offending delta — the compact refusal summary the
	// server reports.
	Refusals map[string]float64
}

// Result describes one completed rebuild attempt.
type Result struct {
	Name     string
	Outcome  Outcome
	Decision Decision
	// Path is the artifact file the promotion renamed over; empty for
	// refusals and pinned in-memory entries.
	Path     string
	Duration time.Duration
}

// Status is a point-in-time snapshot of one entry's rebuild state.
type Status struct {
	Name string
	// State is one of the State* constants.
	State string
	// Attempts counts consecutive failed build attempts; it resets on
	// any completed evaluation (promoted or refused).
	Attempts int
	// LastErr is the most recent failure, empty after a completed
	// evaluation.
	LastErr string
	// LastPromoted is the wall time of the most recent promotion
	// (zero if none yet).
	LastPromoted time.Time
	// RefusalDeltas holds the worst offending delta per metric from
	// the most recent refusal; nil otherwise.
	RefusalDeltas map[string]float64
	// NextRetry is the scheduled backoff retry after a build failure
	// (zero when none is pending).
	NextRetry time.Time
}

// DefaultBudgets returns the gate's default regression budgets: the
// paper's two headline calibration aggregates, with room for noise but
// not for decay — ENCE may regress by < 0.01 and the pooled
// calibration ratio may move < 0.05 further from 1.
func DefaultBudgets() map[string]float64 {
	return map[string]float64{
		"ence":      0.01,
		"cal_ratio": 0.05,
	}
}

// Badness maps a raw metric value to its distance from the metric's
// ideal, the unit the gate budgets in: cal_ratio is centered on 1
// (perfect calibration), every other registered metric on 0. NaN — the
// metric-undefined sentinel — propagates, and a NaN badness delta
// never exceeds a budget (see fairindex.DriftExceeds).
func Badness(metric string, v float64) float64 {
	if metric == "cal_ratio" {
		return math.Abs(v - 1)
	}
	return math.Abs(v)
}

// validateBudgets rejects budget maps the gate cannot evaluate:
// unregistered metric names and non-finite or negative budgets. A
// zero budget is legal but disarmed (DriftExceeds never fires on a
// non-positive threshold) — the metric is evaluated and reported but
// never refuses.
func validateBudgets(budgets map[string]float64) error {
	if len(budgets) == 0 {
		return errors.New("rebuild: empty budget set")
	}
	for name, b := range budgets {
		if _, ok := fairindex.MetricByName(name); !ok {
			return fmt.Errorf("rebuild: budget for unknown metric %q", name)
		}
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("rebuild: budget %v for metric %q", b, name)
		}
	}
	return nil
}
