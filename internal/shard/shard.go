package shard

import (
	"fmt"

	fairindex "fairindex"
)

// Split carves a whole index into n shard artifacts plus the manifest
// describing the plan. Region ranges are balanced by region count
// (shard i owns [i·R/n, (i+1)·R/n)) and named s0…s{n-1}; each shard
// is a standalone fairindex.Index (see fairindex.ExtractShard) whose
// fingerprint the manifest records for generation checking. n must be
// in [1, NumRegions].
func Split(ix *fairindex.Index, n int) (*Manifest, []*fairindex.Index, error) {
	if n < 1 || n > ix.NumRegions() {
		return nil, nil, fmt.Errorf("shard: cannot split %d regions into %d shards", ix.NumRegions(), n)
	}
	gen, err := ix.Fingerprint()
	if err != nil {
		return nil, nil, fmt.Errorf("shard: fingerprinting source index: %w", err)
	}
	m := &Manifest{
		Generation: gen,
		Grid:       ix.Grid(),
		Box:        ix.Box(),
		NumRegions: ix.NumRegions(),
		CellRegion: ix.Partition().CellRegions(),
		Shards:     make([]Shard, 0, n),
	}
	shards := make([]*fairindex.Index, 0, n)
	for i := 0; i < n; i++ {
		lo := i * m.NumRegions / n
		hi := (i + 1) * m.NumRegions / n
		sx, err := ix.ExtractShard(lo, hi)
		if err != nil {
			return nil, nil, err
		}
		fp, err := sx.Fingerprint()
		if err != nil {
			return nil, nil, fmt.Errorf("shard: fingerprinting shard %d: %w", i, err)
		}
		m.Shards = append(m.Shards, Shard{Name: fmt.Sprintf("s%d", i), Lo: lo, Hi: hi, Fingerprint: fp})
		shards = append(shards, sx)
	}
	if err := m.validate(); err != nil {
		return nil, nil, err
	}
	m.derive()
	return m, shards, nil
}

// ShardOfRegion returns the index of the shard owning a global region
// id, or -1 when the id is out of range.
func (m *Manifest) ShardOfRegion(region int) int {
	if region < 0 || region >= m.NumRegions {
		return -1
	}
	return m.regionShard[region]
}

// RegionOfCell returns the global region owning a row-major cell
// index — the Locate routing step, answered from the manifest alone.
func (m *Manifest) RegionOfCell(cell int) int { return m.CellRegion[cell] }

// Foreign reports whether shard i's artifact carries the foreign
// sentinel region (true unless the shard owns every region).
func (m *Manifest) Foreign(i int) bool {
	return m.Shards[i].Hi-m.Shards[i].Lo < m.NumRegions
}

// LocalRegions returns shard i's local region count, including the
// sentinel when present — what the shard artifact's NumRegions()
// reports.
func (m *Manifest) LocalRegions(i int) int {
	n := m.Shards[i].Hi - m.Shards[i].Lo
	if m.Foreign(i) {
		n++
	}
	return n
}

// ToGlobal translates shard i's local region id to the global id
// space; ok is false for the sentinel or an out-of-range local id.
func (m *Manifest) ToGlobal(i, local int) (global int, ok bool) {
	s := m.Shards[i]
	if local < 0 || local >= s.Hi-s.Lo {
		return 0, false
	}
	return s.Lo + local, true
}

// ToLocal translates a global region id to its owning shard and local
// id there.
func (m *Manifest) ToLocal(region int) (shard, local int) {
	shard = m.ShardOfRegion(region)
	if shard < 0 {
		return -1, -1
	}
	return shard, region - m.Shards[shard].Lo
}

// TranslateOverlaps rewrites one shard's RangeQuery result into the
// global id space in place, dropping the sentinel entry when present,
// and returns the (possibly shortened) slice. Owned-region cell
// counts and fractions are already exact — a shard carries its owned
// regions' cells verbatim — so translation is pure renumbering.
func (m *Manifest) TranslateOverlaps(i int, local []fairindex.RegionOverlap) []fairindex.RegionOverlap {
	out := local[:0]
	for _, ov := range local {
		g, ok := m.ToGlobal(i, ov.Region)
		if !ok {
			continue
		}
		ov.Region = g
		out = append(out, ov)
	}
	return out
}

// MergeOverlaps concatenates per-shard translated RangeQuery results
// given in shard order. Shard ranges ascend, and each shard's result
// ascends in local (hence global) id, so the concatenation is the
// whole index's ascending-id result.
func MergeOverlaps(lists ...[]fairindex.RegionOverlap) []fairindex.RegionOverlap {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]fairindex.RegionOverlap, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// TranslateNearest rewrites one shard's NearestRegionsSquared result
// into the global id space in place, dropping the sentinel candidate,
// and returns the slice. Squared distances are preserved: merging
// happens in squared space (fairindex.MergeNearest), where the order
// is exactly the whole index's selection order.
func (m *Manifest) TranslateNearest(i int, local []fairindex.RegionDistance) []fairindex.RegionDistance {
	out := local[:0]
	for _, rd := range local {
		g, ok := m.ToGlobal(i, rd.Region)
		if !ok {
			continue
		}
		rd.Region = g
		out = append(out, rd)
	}
	return out
}

// TranslateStats rewrites one shard's per-region stats into the
// global id space in place, dropping the sentinel entry, and returns
// the slice. The surviving entries carry the whole index's exact
// sufficient statistics for those regions, ready for
// fairindex.MergeWindowStats.
func (m *Manifest) TranslateStats(i int, local []fairindex.RegionStat) []fairindex.RegionStat {
	out := local[:0]
	for _, rs := range local {
		g, ok := m.ToGlobal(i, rs.Region)
		if !ok {
			continue
		}
		rs.Region = g
		out = append(out, rs)
	}
	return out
}
