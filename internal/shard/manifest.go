// Package shard implements the distributed-serving split of one
// fairindex artifact into standalone per-shard artifacts, the
// versioned manifest describing the split, and the translation
// helpers the scatter-gather router (internal/router) uses to
// reassemble exact whole-index answers from per-shard responses.
//
// The split is by contiguous global region-id range: shard i serves
// regions [Lo_i, Hi_i) of the whole index, renumbered locally to
// start at 0, with one extra "foreign" sentinel region absorbing the
// grid cells other shards own (see fairindex.ExtractShard). Because
// every fairness aggregate in the system is built from additive
// per-region sufficient statistics, the merge kernels are exact —
// bit-identical to the whole index, not approximations; the parity
// suite in this package pins that property. See docs/SHARDING.md.
package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"fairindex/internal/binenc"
	"fairindex/internal/geo"
)

// Manifest errors.
var (
	// ErrManifest reports bytes that are not a valid serialized shard
	// manifest (wrong magic, unsupported version, corrupt payload or a
	// plan violating the split invariants).
	ErrManifest = errors.New("shard: invalid manifest")
)

// Shard describes one shard of the plan: which contiguous global
// region range its artifact serves and the exact artifact expected to
// serve it.
type Shard struct {
	// Name identifies the shard inside the plan (and names its .fidx
	// artifact); 1–64 characters from [A-Za-z0-9._-], unique within
	// the manifest.
	Name string
	// Lo, Hi delimit the half-open global region range [Lo, Hi) the
	// shard owns.
	Lo, Hi int
	// Fingerprint is the expected fairindex.Fingerprint of the shard's
	// artifact. The router checks it against the Fairindex-Generation
	// header of every backend response; a mismatch means the backend
	// serves a different generation than the manifest describes.
	Fingerprint uint64
}

// Manifest is the versioned description of one index split: the
// source index's geometry and cell→region table (enough to route any
// coordinate to its owning shard without touching a backend) plus the
// per-shard region ranges and artifact fingerprints.
//
// The binary encoding (Encode/Decode) is canonical: Decode rejects
// any byte stream that does not re-encode to the identical bytes, so
// a decoded manifest always round-trips byte-identically.
type Manifest struct {
	// Generation is the whole source index's fingerprint — the
	// manifest-generation token for snapshot consistency.
	Generation uint64
	Grid       geo.Grid
	Box        geo.BBox
	NumRegions int
	// CellRegion is the whole index's row-major cell→region table; it
	// routes Locate by cell.
	CellRegion []int
	// Shards lists the plan's shards in ascending region-range order;
	// the ranges are disjoint and total over [0, NumRegions).
	Shards []Shard

	// regionShard maps each global region id to the index of its
	// owning shard. Derived, not serialized.
	regionShard []int
}

var manifestMagic = [4]byte{'F', 'S', 'H', 'D'}

// manifestVersion is the encoding version Encode writes; unknown
// versions are rejected so later layout changes stay decodable.
const manifestVersion = 1

// maxManifestDim caps each grid dimension a manifest may declare;
// far above any real city grid, it keeps hostile dimensions from
// overflowing cell-count arithmetic.
const maxManifestDim = 1 << 15

// Encode serializes the manifest in the canonical binary layout:
//
//	magic "FSHD" | uvarint version
//	uvarint generation
//	grid (U, V varints) | box (4 × float64, exact bits)
//	varint numRegions | cell→region table (ints)
//	uvarint shard count | per shard: name, lo, hi, uvarint fingerprint
func (m *Manifest) Encode() []byte {
	b := append([]byte(nil), manifestMagic[:]...)
	b = binenc.AppendUvarint(b, manifestVersion)
	b = binenc.AppendUvarint(b, m.Generation)
	b = binenc.AppendVarint(b, int64(m.Grid.U))
	b = binenc.AppendVarint(b, int64(m.Grid.V))
	b = binenc.AppendFloat64(b, m.Box.MinLat)
	b = binenc.AppendFloat64(b, m.Box.MinLon)
	b = binenc.AppendFloat64(b, m.Box.MaxLat)
	b = binenc.AppendFloat64(b, m.Box.MaxLon)
	b = binenc.AppendVarint(b, int64(m.NumRegions))
	b = binenc.AppendInts(b, m.CellRegion)
	b = binenc.AppendUvarint(b, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		b = binenc.AppendString(b, s.Name)
		b = binenc.AppendVarint(b, int64(s.Lo))
		b = binenc.AppendVarint(b, int64(s.Hi))
		b = binenc.AppendUvarint(b, s.Fingerprint)
	}
	return b
}

// Decode parses and fully validates a serialized manifest. Beyond
// structural decoding it enforces the split invariants — shard ranges
// disjoint, total and ascending over [0, NumRegions), a total
// cell→region table with every region owning at least one cell, a
// mappable bounding box — and canonicality: the input must be exactly
// what Encode produces for the decoded plan, so varint games or
// trailing garbage are rejected rather than silently normalized.
func Decode(data []byte) (*Manifest, error) {
	if len(data) < len(manifestMagic) || string(data[:4]) != string(manifestMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrManifest)
	}
	r := binenc.NewReader(data[4:])
	version := r.Uvarint()
	if r.Err() == nil && version != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrManifest, version, manifestVersion)
	}
	m := &Manifest{}
	m.Generation = r.Uvarint()
	m.Grid = geo.Grid{U: r.Int(), V: r.Int()}
	m.Box = geo.BBox{
		MinLat: r.Float64(), MinLon: r.Float64(),
		MaxLat: r.Float64(), MaxLon: r.Float64(),
	}
	m.NumRegions = r.Int()
	m.CellRegion = r.Ints()
	numShards := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	// Each shard entry needs at least 4 bytes (name length, lo, hi,
	// fingerprint); bounding by the remaining payload keeps a hostile
	// count from sizing the slice before any bytes back it.
	if numShards < 1 || numShards > r.Len()/4+1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrManifest, numShards)
	}
	m.Shards = make([]Shard, numShards)
	for i := range m.Shards {
		m.Shards[i] = Shard{
			Name:        r.String(),
			Lo:          r.Int(),
			Hi:          r.Int(),
			Fingerprint: r.Uvarint(),
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrManifest, r.Len())
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	// Canonical round trip: non-minimal varints (which Go's varint
	// decoder accepts) would otherwise produce a manifest whose
	// re-encoding differs from the input.
	if !bytes.Equal(m.Encode(), data) {
		return nil, fmt.Errorf("%w: non-canonical encoding", ErrManifest)
	}
	m.derive()
	return m, nil
}

// validate enforces the split invariants on a decoded (or
// hand-assembled) manifest.
func (m *Manifest) validate() error {
	if m.Grid.U < 1 || m.Grid.V < 1 || m.Grid.U > maxManifestDim || m.Grid.V > maxManifestDim {
		return fmt.Errorf("%w: grid %dx%d", ErrManifest, m.Grid.U, m.Grid.V)
	}
	for _, v := range [4]float64{m.Box.MinLat, m.Box.MinLon, m.Box.MaxLat, m.Box.MaxLon} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite bounding box %+v", ErrManifest, m.Box)
		}
	}
	if _, err := geo.NewMapper(m.Grid, m.Box); err != nil {
		return fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if m.NumRegions < 1 || m.NumRegions > m.Grid.NumCells() {
		return fmt.Errorf("%w: %d regions on a %d-cell grid", ErrManifest, m.NumRegions, m.Grid.NumCells())
	}
	if len(m.CellRegion) != m.Grid.NumCells() {
		return fmt.Errorf("%w: cell table holds %d of %d cells", ErrManifest, len(m.CellRegion), m.Grid.NumCells())
	}
	counts := make([]int, m.NumRegions)
	for i, region := range m.CellRegion {
		if region < 0 || region >= m.NumRegions {
			return fmt.Errorf("%w: cell %d maps to region %d of %d", ErrManifest, i, region, m.NumRegions)
		}
		counts[region]++
	}
	for region, n := range counts {
		if n == 0 {
			return fmt.Errorf("%w: region %d owns no cells", ErrManifest, region)
		}
	}
	if len(m.Shards) > m.NumRegions {
		return fmt.Errorf("%w: %d shards over %d regions", ErrManifest, len(m.Shards), m.NumRegions)
	}
	names := make(map[string]bool, len(m.Shards))
	next := 0
	for i, s := range m.Shards {
		if !validShardName(s.Name) {
			return fmt.Errorf("%w: shard %d name %q", ErrManifest, i, s.Name)
		}
		if names[s.Name] {
			return fmt.Errorf("%w: duplicate shard name %q", ErrManifest, s.Name)
		}
		names[s.Name] = true
		if s.Lo != next || s.Hi <= s.Lo {
			return fmt.Errorf("%w: shard %q range [%d,%d) breaks coverage at %d", ErrManifest, s.Name, s.Lo, s.Hi, next)
		}
		next = s.Hi
	}
	if next != m.NumRegions {
		return fmt.Errorf("%w: shard ranges cover [0,%d) of %d regions", ErrManifest, next, m.NumRegions)
	}
	return nil
}

// validShardName reports whether a name is usable in artifact file
// names and -shard name=url flags.
func validShardName(name string) bool {
	if len(name) < 1 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// derive builds the region→shard lookup table.
func (m *Manifest) derive() {
	m.regionShard = make([]int, m.NumRegions)
	for i, s := range m.Shards {
		for g := s.Lo; g < s.Hi; g++ {
			m.regionShard[g] = i
		}
	}
}
