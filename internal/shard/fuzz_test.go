package shard_test

import (
	"bytes"
	"testing"

	"fairindex/internal/geo"
	"fairindex/internal/shard"
)

// seedManifest builds a small valid manifest by hand: a 2×4 grid cut
// into three regions served by two shards.
func seedManifest() *shard.Manifest {
	return &shard.Manifest{
		Generation: 0xfeedbeef,
		Grid:       geo.Grid{U: 2, V: 4},
		Box:        geo.BBox{MinLat: 33.7, MinLon: -118.7, MaxLat: 34.3, MaxLon: -118.1},
		NumRegions: 3,
		CellRegion: []int{0, 0, 1, 1, 0, 2, 2, 1},
		Shards: []shard.Shard{
			{Name: "s0", Lo: 0, Hi: 2, Fingerprint: 12345},
			{Name: "s1", Lo: 2, Hi: 3, Fingerprint: 67890},
		},
	}
}

// FuzzShardManifest pins the manifest decoder's contract: any byte
// stream either fails Decode or yields a plan whose shard ranges are
// disjoint, total and ascending over [0, NumRegions) and whose
// re-encoding reproduces the input byte-identically (canonical
// round trip).
func FuzzShardManifest(f *testing.F) {
	valid := seedManifest().Encode()
	f.Add(valid)
	single := seedManifest()
	single.Shards = []shard.Shard{{Name: "only", Lo: 0, Hi: 3, Fingerprint: 7}}
	f.Add(single.Encode())
	// Corrupted variants steer the fuzzer toward each validation arm.
	for _, off := range []int{0, 4, 5, len(valid) / 2, len(valid) - 1} {
		bad := append([]byte(nil), valid...)
		bad[off] ^= 0x41
		f.Add(bad)
	}
	f.Add(valid[:len(valid)-3])                 // truncated
	f.Add(append(append([]byte(nil), valid...), // trailing bytes
		0x00, 0x01))
	f.Add([]byte("FSHD"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := shard.Decode(data)
		if err != nil {
			return
		}
		next := 0
		for i, s := range m.Shards {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("shard %d range [%d,%d) breaks disjoint total coverage at %d", i, s.Lo, s.Hi, next)
			}
			next = s.Hi
		}
		if next != m.NumRegions {
			t.Fatalf("ranges cover [0,%d) of %d regions", next, m.NumRegions)
		}
		if enc := m.Encode(); !bytes.Equal(enc, data) {
			t.Fatalf("accepted manifest does not round-trip byte-identically:\n in  %x\n out %x", data, enc)
		}
		// A decoded manifest's encoding must itself decode.
		if _, err := shard.Decode(m.Encode()); err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
	})
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	valid := seedManifest().Encode()
	if _, err := shard.Decode(valid); err != nil {
		t.Fatalf("canonical bytes rejected: %v", err)
	}
	// Widen the version varint to a non-minimal two-byte encoding:
	// same decoded value, different bytes — must be rejected.
	nc := append([]byte(nil), valid[:4]...)
	nc = append(nc, 0x81, 0x00) // uvarint(1), non-minimal
	nc = append(nc, valid[5:]...)
	if _, err := shard.Decode(nc); err == nil {
		t.Fatal("non-minimal varint encoding accepted")
	}
}
