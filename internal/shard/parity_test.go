package shard_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/shard"
)

// The sharded-vs-whole parity suite: every query type answered
// through the split+merge path must be bit-identical (Float64bits on
// every float) to the whole retained index, across partition methods
// and shard counts. This is the property that makes the distributed
// serving layer trustworthy — the merge kernels are exact because the
// per-region sufficient statistics are additive and every fold runs
// in the same order as the whole index's.

// parityConfigs spans tree partitions (two heights), a quadtree and a
// ragged Voronoi partition.
func parityConfigs() map[string][]fairindex.Option {
	return map[string][]fairindex.Option{
		"fair-h4": {fairindex.WithHeight(4), fairindex.WithSeed(1)},
		"fair-h6": {fairindex.WithHeight(6), fairindex.WithSeed(1)},
		"quadtree": {fairindex.WithMethod(fairindex.MethodFairQuadtree),
			fairindex.WithHeight(4), fairindex.WithSeed(3)},
		"zipcode": {fairindex.WithMethod(fairindex.MethodZipCode),
			fairindex.WithZipSites(12), fairindex.WithSeed(2)},
	}
}

var shardCounts = []int{2, 4, 8}

func buildWhole(t *testing.T, opts ...fairindex.Option) *fairindex.Index {
	t.Helper()
	spec := fairindex.LA()
	spec.NumRecords = 400
	ds, err := fairindex.GenerateCity(spec, fairindex.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fairindex.Build(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// forEachSplit runs fn over every (config, shard count) cell of the
// parity matrix.
func forEachSplit(t *testing.T, fn func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index)) {
	for name, opts := range parityConfigs() {
		t.Run(name, func(t *testing.T) {
			whole := buildWhole(t, opts...)
			for _, n := range shardCounts {
				t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
					if n > whole.NumRegions() {
						t.Skipf("%d regions < %d shards", whole.NumRegions(), n)
					}
					m, shards, err := shard.Split(whole, n)
					if err != nil {
						t.Fatal(err)
					}
					fn(t, whole, m, shards)
				})
			}
		})
	}
}

// samplePoint draws a coordinate around (occasionally outside) the
// box.
func samplePoint(rng *rand.Rand, box fairindex.BBox) (lat, lon float64) {
	latSpan := box.MaxLat - box.MinLat
	lonSpan := box.MaxLon - box.MinLon
	lat = box.MinLat - 0.2*latSpan + rng.Float64()*1.4*latSpan
	lon = box.MinLon - 0.2*lonSpan + rng.Float64()*1.4*lonSpan
	return lat, lon
}

func sampleBox(rng *rand.Rand, box fairindex.BBox) fairindex.BBox {
	lat0, lon0 := samplePoint(rng, box)
	lat1, lon1 := samplePoint(rng, box)
	if lat1 < lat0 {
		lat0, lat1 = lat1, lat0
	}
	if lon1 < lon0 {
		lon0, lon1 = lon1, lon0
	}
	return fairindex.BBox{MinLat: lat0, MinLon: lon0, MaxLat: lat1, MaxLon: lon1}
}

func TestSplitManifestShape(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		if len(shards) != len(m.Shards) {
			t.Fatalf("%d artifacts for %d manifest shards", len(shards), len(m.Shards))
		}
		gen, err := whole.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if m.Generation != gen {
			t.Errorf("manifest generation %x, whole fingerprint %x", m.Generation, gen)
		}
		for i, sx := range shards {
			if got, want := sx.NumRegions(), m.LocalRegions(i); got != want {
				t.Errorf("shard %d: %d regions, manifest says %d", i, got, want)
			}
			fp, err := sx.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if fp != m.Shards[i].Fingerprint {
				t.Errorf("shard %d: fingerprint %x, manifest records %x", i, fp, m.Shards[i].Fingerprint)
			}
			// Shards must round-trip through the standard codec: the
			// router's backends load them as ordinary artifacts.
			blob, err := sx.MarshalBinary()
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			var back fairindex.Index
			if err := back.UnmarshalBinary(blob); err != nil {
				t.Fatalf("shard %d: reload: %v", i, err)
			}
		}
		// Manifest codec round trip is byte-identical.
		enc := m.Encode()
		dec, err := shard.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec.Shards, m.Shards) {
			t.Errorf("decoded shards differ: %v vs %v", dec.Shards, m.Shards)
		}
		if got := dec.Encode(); !reflect.DeepEqual(got, enc) {
			t.Error("manifest re-encoding differs from original bytes")
		}
	})
}

func TestShardLocateParity(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		rng := rand.New(rand.NewSource(11))
		mapper, err := fairindex.NewMapper(whole.Grid(), whole.Box())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			lat, lon := samplePoint(rng, whole.Box())
			want, err := whole.Locate(lat, lon)
			if err != nil {
				t.Fatalf("point %d: %v", i, err)
			}
			// Route by cell via the manifest, then answer through the
			// owning shard artifact.
			cell := mapper.CellOf(lat, lon)
			region := m.RegionOfCell(whole.Grid().Index(cell))
			si, local := m.ToLocal(region)
			gotLocal, err := shards[si].Locate(lat, lon)
			if err != nil {
				t.Fatalf("point %d via shard %d: %v", i, si, err)
			}
			if gotLocal != local {
				t.Fatalf("point %d: shard %d located local %d, manifest expects %d", i, si, gotLocal, local)
			}
			got, ok := m.ToGlobal(si, gotLocal)
			if !ok || got != want {
				t.Fatalf("point %d: sharded locate %d (ok=%v), whole %d", i, got, ok, want)
			}
		}
	})
}

func TestShardLocateBatchParity(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		rng := rand.New(rand.NewSource(12))
		n := 64
		lats, lons := make([]float64, n), make([]float64, n)
		for i := range lats {
			lats[i], lons[i] = samplePoint(rng, whole.Box())
		}
		lats[7] = math.NaN()
		lons[20] = math.Inf(1)
		want, wantErr := whole.LocateBatch(lats, lons)

		// Partition points by owning shard, sub-batch each, merge by
		// position; invalid points are handled at the routing layer.
		mapper, err := fairindex.NewMapper(whole.Grid(), whole.Box())
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, n)
		idxOf := make([][]int, len(shards))
		subLat := make([][]float64, len(shards))
		subLon := make([][]float64, len(shards))
		for i := range lats {
			if lats[i]-lats[i] != 0 || lons[i]-lons[i] != 0 {
				got[i] = fairindex.RegionInvalid
				continue
			}
			cell := mapper.CellOf(lats[i], lons[i])
			si, _ := m.ToLocal(m.RegionOfCell(whole.Grid().Index(cell)))
			idxOf[si] = append(idxOf[si], i)
			subLat[si] = append(subLat[si], lats[i])
			subLon[si] = append(subLon[si], lons[i])
		}
		for si := range shards {
			if len(idxOf[si]) == 0 {
				continue
			}
			regions, err := shards[si].LocateBatch(subLat[si], subLon[si])
			if err != nil {
				t.Fatalf("shard %d sub-batch: %v", si, err)
			}
			for j, local := range regions {
				g, ok := m.ToGlobal(si, local)
				if !ok {
					t.Fatalf("shard %d returned sentinel for owned point", si)
				}
				got[idxOf[si][j]] = g
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merged batch regions differ:\n got %v\nwant %v", got, want)
		}
		if wantErr == nil {
			t.Fatal("whole batch accepted invalid points")
		}
	})
}

func TestShardRangeQueryParity(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 80; i++ {
			q := sampleBox(rng, whole.Box())
			want, err := whole.RangeQuery(q)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			lists := make([][]fairindex.RegionOverlap, len(shards))
			for si, sx := range shards {
				local, err := sx.RangeQuery(q)
				if err != nil {
					t.Fatalf("query %d shard %d: %v", i, si, err)
				}
				lists[si] = m.TranslateOverlaps(si, local)
			}
			got := shard.MergeOverlaps(lists...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d (%+v):\n got %v\nwant %v", i, q, got, want)
			}
		}
	})
}

func TestShardNearestRegionsParity(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		rng := rand.New(rand.NewSource(14))
		for i := 0; i < 60; i++ {
			lat, lon := samplePoint(rng, whole.Box())
			k := 1 + rng.Intn(whole.NumRegions()+2) // occasionally > NumRegions
			want, err := whole.NearestRegions(lat, lon, k)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			lists := make([][]fairindex.RegionDistance, len(shards))
			for si, sx := range shards {
				// k+1 per shard: at most one sentinel candidate can be
				// dropped, so k owned candidates always survive.
				local, err := sx.NearestRegionsSquared(lat, lon, k+1)
				if err != nil {
					t.Fatalf("query %d shard %d: %v", i, si, err)
				}
				lists[si] = m.TranslateNearest(si, local)
			}
			got := fairindex.MergeNearest(k, lists...)
			for j := range got {
				got[j].Distance = math.Sqrt(got[j].Distance)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d: merged %d regions, whole %d", i, len(got), len(want))
			}
			for j := range got {
				if got[j].Region != want[j].Region ||
					math.Float64bits(got[j].Distance) != math.Float64bits(want[j].Distance) {
					t.Fatalf("query %d entry %d: merged %+v, whole %+v", i, j, got[j], want[j])
				}
			}
		}
	})
}

// gatherWindow splits a global window across the shards, queries each
// owning shard's GroupStats and reassembles the global per-region
// stats list — the router's stats scatter step, in process.
func gatherWindow(t *testing.T, m *shard.Manifest, shards []*fairindex.Index, task int, regions []int) []fairindex.RegionStat {
	t.Helper()
	perShard := make([][]int, len(shards))
	for _, g := range regions {
		si, local := m.ToLocal(g)
		perShard[si] = append(perShard[si], local)
	}
	var merged []fairindex.RegionStat
	for si, locals := range perShard {
		if len(locals) == 0 {
			continue
		}
		ws, err := shards[si].GroupStats(task, locals)
		if err != nil {
			t.Fatalf("shard %d stats: %v", si, err)
		}
		merged = append(merged, m.TranslateStats(si, ws.Regions)...)
	}
	return merged
}

// requireSameWindow compares every float through Float64bits so NaN
// sentinels and exact bit patterns are enforced, not approximated.
func requireSameWindow(t *testing.T, got, want fairindex.WindowStats) {
	t.Helper()
	type f struct {
		name      string
		got, want float64
	}
	checks := []f{
		{"MeanConf", got.MeanConf, want.MeanConf},
		{"PosRate", got.PosRate, want.PosRate},
		{"Miscal", got.Miscal, want.Miscal},
		{"CalRatio", got.CalRatio, want.CalRatio},
		{"ENCE", got.ENCE, want.ENCE},
	}
	if got.Task != want.Task || got.Count != want.Count {
		t.Fatalf("window head differs: got task=%d count=%d, want task=%d count=%d",
			got.Task, got.Count, want.Task, want.Count)
	}
	for _, c := range checks {
		if math.Float64bits(c.got) != math.Float64bits(c.want) {
			t.Fatalf("%s: merged %v (%x), whole %v (%x)", c.name, c.got,
				math.Float64bits(c.got), c.want, math.Float64bits(c.want))
		}
	}
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("merged %d regions, whole %d", len(got.Regions), len(want.Regions))
	}
	for i := range got.Regions {
		g, w := got.Regions[i], want.Regions[i]
		same := g.Region == w.Region && g.Count == w.Count &&
			math.Float64bits(g.MeanConf) == math.Float64bits(w.MeanConf) &&
			math.Float64bits(g.PosRate) == math.Float64bits(w.PosRate) &&
			math.Float64bits(g.Miscal) == math.Float64bits(w.Miscal) &&
			math.Float64bits(g.CalRatio) == math.Float64bits(w.CalRatio) &&
			math.Float64bits(g.SumScore) == math.Float64bits(w.SumScore) &&
			math.Float64bits(g.SumLabel) == math.Float64bits(w.SumLabel)
		if !same {
			t.Fatalf("region %d differs: merged %+v, whole %+v", i, g, w)
		}
	}
	if len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("merged %d metrics, whole %d", len(got.Metrics), len(want.Metrics))
	}
	for name, w := range want.Metrics {
		g, ok := got.Metrics[name]
		if !ok || math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("metric %q: merged %v, whole %v", name, g, w)
		}
	}
}

// sampleWindows yields region windows: empty, full, and random
// subsets.
func sampleWindows(rng *rand.Rand, numRegions int) [][]int {
	full := make([]int, numRegions)
	for i := range full {
		full[i] = i
	}
	windows := [][]int{nil, full}
	for w := 0; w < 20; w++ {
		var ids []int
		for g := 0; g < numRegions; g++ {
			if rng.Intn(3) == 0 {
				ids = append(ids, g)
			}
		}
		windows = append(windows, ids)
	}
	return windows
}

func TestShardGroupStatsParity(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		rng := rand.New(rand.NewSource(15))
		task := whole.Tasks()[0]
		for wi, ids := range sampleWindows(rng, whole.NumRegions()) {
			want, err := whole.GroupStats(task, ids)
			if err != nil {
				t.Fatalf("window %d: %v", wi, err)
			}
			merged := gatherWindow(t, m, shards, task, ids)
			got, err := fairindex.MergeWindowStats(task, merged)
			if err != nil {
				t.Fatalf("window %d merge: %v", wi, err)
			}
			requireSameWindow(t, got, want)
		}
	})
}

func TestShardGroupStatsMetricsParity(t *testing.T) {
	forEachSplit(t, func(t *testing.T, whole *fairindex.Index, m *shard.Manifest, shards []*fairindex.Index) {
		rng := rand.New(rand.NewSource(16))
		task := whole.Tasks()[0]
		names := fairindex.Metrics() // all six built-ins
		if len(names) < 6 {
			t.Fatalf("expected at least 6 registered metrics, have %v", names)
		}
		for wi, ids := range sampleWindows(rng, whole.NumRegions()) {
			want, err := whole.GroupStatsMetrics(task, ids, names...)
			if err != nil {
				t.Fatalf("window %d: %v", wi, err)
			}
			merged := gatherWindow(t, m, shards, task, ids)
			got, err := fairindex.MergeWindowStatsMetrics(task, merged, names...)
			if err != nil {
				t.Fatalf("window %d merge: %v", wi, err)
			}
			requireSameWindow(t, got, want)
		}
	})
}

func TestExtractShardRejectsBadRanges(t *testing.T) {
	whole := buildWhole(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	n := whole.NumRegions()
	for _, r := range [][2]int{{-1, 2}, {0, 0}, {3, 2}, {0, n + 1}} {
		if _, err := whole.ExtractShard(r[0], r[1]); err == nil {
			t.Errorf("ExtractShard(%d, %d) accepted an invalid range", r[0], r[1])
		}
	}
	if _, _, err := shard.Split(whole, 0); err == nil {
		t.Error("Split with 0 shards accepted")
	}
	if _, _, err := shard.Split(whole, n+1); err == nil {
		t.Error("Split with more shards than regions accepted")
	}
}
