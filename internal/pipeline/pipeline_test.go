package pipeline

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/kdtree"
	"fairindex/internal/ml"
)

// testCity generates a small-but-realistic city once per test binary.
func testCity(t *testing.T) *dataset.Dataset {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 600 // keep integration tests quick
	ds, err := dataset.Generate(spec, geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunEveryMethod(t *testing.T) {
	ds := testCity(t)
	methods := []Method{
		MethodMedianKD, MethodFairKD, MethodIterativeFairKD,
		MethodMultiObjectiveFairKD, MethodGridReweight, MethodZipCode,
		MethodFairQuadtree,
	}
	for _, m := range methods {
		t.Run(m.String(), func(t *testing.T) {
			res, err := Run(ds, Config{Method: m, Height: 5, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Partition == nil || res.NumRegions < 1 {
				t.Fatal("no partition produced")
			}
			wantTasks := 1
			if m == MethodMultiObjectiveFairKD {
				wantTasks = ds.NumTasks()
			}
			if len(res.Tasks) != wantTasks {
				t.Fatalf("got %d task results, want %d", len(res.Tasks), wantTasks)
			}
			for _, tr := range res.Tasks {
				if tr.ENCE < 0 || tr.ENCE > 1 {
					t.Errorf("ENCE = %v out of range", tr.ENCE)
				}
				if tr.Accuracy < 0.4 {
					t.Errorf("accuracy = %v suspiciously low", tr.Accuracy)
				}
				if tr.TrainMiscal < 0 || tr.TestMiscal < 0 {
					t.Errorf("negative miscalibration")
				}
				if len(tr.TopNeighborhoods) == 0 {
					t.Error("no neighborhood reports")
				}
			}
			if res.BuildTime <= 0 {
				t.Error("no build time recorded")
			}
		})
	}
}

func TestRunShapeFairBeatsMedian(t *testing.T) {
	// The reproduction's core assertion (Figure 7's shape): at a
	// moderately deep height the Fair KD-tree's ENCE is below the
	// median KD-tree's, and the iterative variant is at least as good
	// as fair (allowing small slack for retraining noise).
	ds := testCity(t)
	cfg := Config{Height: 6, Seed: 3}

	cfg.Method = MethodMedianKD
	median, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Method = MethodFairKD
	fair, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Method = MethodIterativeFairKD
	iter, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	me, fe, ie := median.Tasks[0].ENCE, fair.Tasks[0].ENCE, iter.Tasks[0].ENCE
	if fe >= me {
		t.Errorf("Fair ENCE %v >= Median ENCE %v", fe, me)
	}
	if ie >= me {
		t.Errorf("Iterative ENCE %v >= Median ENCE %v", ie, me)
	}
	t.Logf("ENCE: median=%.4f fair=%.4f iterative=%.4f", me, fe, ie)
}

func TestRunDeterministic(t *testing.T) {
	ds := testCity(t)
	cfg := Config{Method: MethodFairKD, Height: 4, Seed: 7}
	a, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tasks[0].ENCE != b.Tasks[0].ENCE || a.Tasks[0].Accuracy != b.Tasks[0].Accuracy {
		t.Error("pipeline is not deterministic for a fixed seed")
	}
	if a.NumRegions != b.NumRegions {
		t.Error("region counts differ across runs")
	}
}

func TestRunConfigValidation(t *testing.T) {
	ds := testCity(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative height", Config{Method: MethodMedianKD, Height: -1}},
		{"bad task", Config{Method: MethodFairKD, Height: 2, Task: 9}},
		{"negative task", Config{Method: MethodFairKD, Height: 2, Task: -1}},
		{"bad test frac", Config{Method: MethodFairKD, Height: 2, TestFrac: 1.5}},
		{"alpha count", Config{Method: MethodMultiObjectiveFairKD, Height: 2, Alphas: []float64{1}}},
		{"alphas on single-objective", Config{Method: MethodFairKD, Height: 2, Alphas: []float64{0.5, 0.5}}},
		{"unknown method", Config{Method: Method(99), Height: 2}},
		{"bad objective", Config{Method: MethodFairKD, Height: 2, Objective: kdtree.Objective(9)}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(ds, tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRunInvalidDataset(t *testing.T) {
	bad := &dataset.Dataset{Name: "empty", Grid: geo.MustGrid(4, 4)}
	if _, err := Run(bad, Config{Method: MethodMedianKD, Height: 2}); !errors.Is(err, dataset.ErrNoRecords) {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
}

func TestRunModels(t *testing.T) {
	ds := testCity(t)
	for _, kind := range ml.AllModelKinds {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Run(ds, Config{Method: MethodFairKD, Height: 4, Model: kind, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if res.Tasks[0].Accuracy <= 0.4 {
				t.Errorf("accuracy = %v", res.Tasks[0].Accuracy)
			}
		})
	}
}

func TestRunEncodings(t *testing.T) {
	ds := testCity(t)
	for _, enc := range []dataset.Encoding{dataset.EncCentroid, dataset.EncOneHot, dataset.EncCentroidOneHot} {
		t.Run(enc.String(), func(t *testing.T) {
			res, err := Run(ds, Config{Method: MethodFairKD, Height: 4, Encoding: enc, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if res.Tasks[0].ENCE < 0 {
				t.Error("bad ENCE")
			}
		})
	}
}

func TestRunReweightFlag(t *testing.T) {
	// Reweight on a zip-code partition must still produce a valid run.
	ds := testCity(t)
	res, err := Run(ds, Config{Method: MethodZipCode, Reweight: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRegions != 40 {
		t.Errorf("regions = %d, want default 40 zip sites", res.NumRegions)
	}
}

func TestRunMultiObjectiveAlphas(t *testing.T) {
	ds := testCity(t)
	res, err := Run(ds, Config{
		Method: MethodMultiObjectiveFairKD,
		Height: 4,
		Alphas: []float64{0.5, 0.5},
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(res.Tasks))
	}
	if _, err := res.TaskByName("ACT"); err != nil {
		t.Error(err)
	}
	if _, err := res.TaskByName("Employment"); err != nil {
		t.Error(err)
	}
	if _, err := res.TaskByName("nope"); err == nil {
		t.Error("expected missing task error")
	}
}

func TestRunImportanceAggregation(t *testing.T) {
	ds := testCity(t)
	res, err := Run(ds, Config{Method: MethodFairKD, Height: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	if len(tr.ImportanceNames) != dataset.NumStdFeatures+1 {
		t.Fatalf("importance names = %v", tr.ImportanceNames)
	}
	if tr.ImportanceNames[len(tr.ImportanceNames)-1] != "Neighborhood" {
		t.Errorf("last importance entry = %q, want Neighborhood", tr.ImportanceNames[len(tr.ImportanceNames)-1])
	}
	var sum float64
	for _, v := range tr.ImportanceValues {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestMethodString(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{MethodMedianKD, "Median KD-tree"},
		{MethodFairKD, "Fair KD-tree"},
		{MethodIterativeFairKD, "Iterative Fair KD-tree"},
		{MethodMultiObjectiveFairKD, "Multi-Objective Fair KD-tree"},
		{MethodGridReweight, "Grid (Reweighting)"},
		{MethodZipCode, "Zip Code"},
		{MethodFairQuadtree, "Fair Quadtree"},
		{Method(42), "Method(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// TestBuildParallelMatchesSequential pins that the multi-task worker
// pool changes only wall-clock time: a Build forced onto one worker
// and a Build across several produce bit-identical partitions, metric
// reports and task order.
func TestBuildParallelMatchesSequential(t *testing.T) {
	ds := testCity(t)
	cfg := Config{Method: MethodMultiObjectiveFairKD, Height: 5, Seed: 1}

	prev := runtime.GOMAXPROCS(1)
	seq, seqErr := Build(ds, cfg)
	runtime.GOMAXPROCS(4)
	par, parErr := Build(ds, cfg)
	runtime.GOMAXPROCS(prev)
	if seqErr != nil || parErr != nil {
		t.Fatal(seqErr, parErr)
	}
	if seq.TrainWorkers != 1 {
		t.Errorf("sequential build used %d workers", seq.TrainWorkers)
	}
	if par.TrainWorkers < 2 {
		t.Errorf("parallel build used %d workers, want >= 2", par.TrainWorkers)
	}
	if len(par.Tasks) != len(seq.Tasks) || len(par.Tasks) != ds.NumTasks() {
		t.Fatalf("task counts: parallel %d, sequential %d", len(par.Tasks), len(seq.Tasks))
	}
	for i := range seq.Tasks {
		sr, pr := seq.Tasks[i].Report, par.Tasks[i].Report
		if pr.Task != sr.Task || pr.TaskName != sr.TaskName ||
			pr.ENCE != sr.ENCE || pr.ENCETrain != sr.ENCETrain || pr.ENCETest != sr.ENCETest ||
			pr.Accuracy != sr.Accuracy || pr.AUC != sr.AUC || pr.ECE != sr.ECE ||
			pr.TrainMiscal != sr.TrainMiscal || pr.TestMiscal != sr.TestMiscal ||
			pr.StatParityGap != sr.StatParityGap || pr.EqualOddsGap != sr.EqualOddsGap {
			t.Errorf("task %d: parallel report %+v != sequential %+v", i, pr, sr)
		}
		if len(sr.TopNeighborhoods) != len(pr.TopNeighborhoods) {
			t.Errorf("task %d: neighborhood report counts differ", i)
		}
		if par.Tasks[i].TrainTime <= 0 {
			t.Errorf("task %d: missing per-task train time", i)
		}
	}
	if par.Partition.NumRegions() != seq.Partition.NumRegions() {
		t.Errorf("regions: parallel %d != sequential %d", par.Partition.NumRegions(), seq.Partition.NumRegions())
	}
	if par.TaskCPUTime() <= 0 {
		t.Error("TaskCPUTime not recorded")
	}
}

// TestForEachTaskErrorsAndBounds exercises the pool helper directly:
// lowest-index error wins, n=0 is a no-op, and the concurrency stays
// within the worker budget.
func TestForEachTaskErrorsAndBounds(t *testing.T) {
	if w, err := forEachTask(0, 4, func(int) error { t.Fatal("fn called for n=0"); return nil }); err != nil || w != 0 {
		t.Errorf("n=0: workers %d err %v", w, err)
	}

	errA := errors.New("a")
	errB := errors.New("b")
	_, err := forEachTask(8, 4, func(i int) error {
		switch i {
		case 2:
			return errB
		case 5:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errB) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}

	var running, peak atomic.Int64
	if _, err := forEachTask(32, 4, func(i int) error {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("pool peaked at %d concurrent tasks with a budget of 4", p)
	}
}
