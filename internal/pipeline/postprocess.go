package pipeline

import (
	"fmt"

	"fairindex/internal/ml"
)

// PostProcess selects an optional per-neighborhood score calibration
// applied after the final training — the post-processing mitigation
// family of the paper's §3 taxonomy ("post-processing techniques
// sacrifice the utility of output confidence scores and align them
// with the fairness objective"). It recalibrates scores within each
// neighborhood on training data, falling back to a global calibrator
// for neighborhoods too small or single-class.
type PostProcess int

const (
	// PostNone leaves the classifier's scores untouched.
	PostNone PostProcess = iota
	// PostPlatt fits a per-neighborhood Platt scaler.
	PostPlatt
	// PostIsotonic fits a per-neighborhood isotonic regression.
	PostIsotonic
)

// String implements fmt.Stringer.
func (p PostProcess) String() string {
	switch p {
	case PostNone:
		return "none"
	case PostPlatt:
		return "platt"
	case PostIsotonic:
		return "isotonic"
	default:
		return fmt.Sprintf("PostProcess(%d)", int(p))
	}
}

// minPostSamples is the minimum per-class training count a
// neighborhood needs for its own calibrator.
const minPostSamples = 8

// calibrator is the shared surface of ml.Platt and ml.Isotonic.
type calibrator interface {
	Fit(scores []float64, labels []int, w []float64) error
	Apply(scores []float64) ([]float64, error)
}

// newCalibrator constructs the selected calibrator.
func newCalibrator(kind PostProcess) (calibrator, error) {
	switch kind {
	case PostPlatt:
		return ml.NewPlatt(), nil
	case PostIsotonic:
		return ml.NewIsotonic(), nil
	default:
		return nil, fmt.Errorf("%w: unsupported post-processing %d", ErrConfig, int(kind))
	}
}

// postProcessScores recalibrates allScores in place per neighborhood.
// trainIdx designates the rows calibrators may learn from; regionOf
// assigns every row to a neighborhood in [0, numRegions).
func postProcessScores(kind PostProcess, allScores []float64, labels, regionOf, trainIdx []int, numRegions int) error {
	if kind == PostNone {
		return nil
	}
	// Global fallback fitted on all training rows.
	global, err := newCalibrator(kind)
	if err != nil {
		return err
	}
	trainScores := make([]float64, len(trainIdx))
	trainLabels := make([]int, len(trainIdx))
	for i, j := range trainIdx {
		trainScores[i] = allScores[j]
		trainLabels[i] = labels[j]
	}
	if err := global.Fit(trainScores, trainLabels, nil); err != nil {
		return fmt.Errorf("pipeline: global post-calibration: %w", err)
	}

	// Group training rows per region.
	regionTrain := make([][]int, numRegions)
	for _, j := range trainIdx {
		r := regionOf[j]
		regionTrain[r] = append(regionTrain[r], j)
	}
	// Fit one calibrator per eligible region.
	regionCal := make([]calibrator, numRegions)
	for r := 0; r < numRegions; r++ {
		rows := regionTrain[r]
		pos, neg := 0, 0
		for _, j := range rows {
			if labels[j] != 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos < minPostSamples || neg < minPostSamples {
			regionCal[r] = global
			continue
		}
		s := make([]float64, len(rows))
		y := make([]int, len(rows))
		for i, j := range rows {
			s[i] = allScores[j]
			y[i] = labels[j]
		}
		c, err := newCalibrator(kind)
		if err != nil {
			return err
		}
		if err := c.Fit(s, y, nil); err != nil {
			return fmt.Errorf("pipeline: region %d post-calibration: %w", r, err)
		}
		regionCal[r] = c
	}
	// Apply region calibrators to every row.
	for j := range allScores {
		out, err := regionCal[regionOf[j]].Apply(allScores[j : j+1])
		if err != nil {
			return err
		}
		allScores[j] = out[0]
	}
	return nil
}
