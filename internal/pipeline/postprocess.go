package pipeline

import (
	"fmt"

	"fairindex/internal/ml"
)

// PostProcess selects an optional per-neighborhood score calibration
// applied after the final training — the post-processing mitigation
// family of the paper's §3 taxonomy ("post-processing techniques
// sacrifice the utility of output confidence scores and align them
// with the fairness objective"). It recalibrates scores within each
// neighborhood on training data, falling back to a global calibrator
// for neighborhoods too small or single-class.
type PostProcess int

const (
	// PostNone leaves the classifier's scores untouched.
	PostNone PostProcess = iota
	// PostPlatt fits a per-neighborhood Platt scaler.
	PostPlatt
	// PostIsotonic fits a per-neighborhood isotonic regression.
	PostIsotonic
)

// String implements fmt.Stringer.
func (p PostProcess) String() string {
	switch p {
	case PostNone:
		return "none"
	case PostPlatt:
		return "platt"
	case PostIsotonic:
		return "isotonic"
	default:
		return fmt.Sprintf("PostProcess(%d)", int(p))
	}
}

// minPostSamples is the minimum per-class training count a
// neighborhood needs for its own calibrator.
const minPostSamples = 8

// newCalibrator constructs the selected calibrator.
func newCalibrator(kind PostProcess) (ml.ScoreCalibrator, error) {
	switch kind {
	case PostPlatt:
		return ml.NewPlatt(), nil
	case PostIsotonic:
		return ml.NewIsotonic(), nil
	default:
		return nil, fmt.Errorf("%w: unsupported post-processing %d", ErrConfig, int(kind))
	}
}

// fitPostCalibrators fits one calibrator per region on the raw
// training scores, falling back to a shared global calibrator for
// regions too small or single-class. trainIdx designates the rows
// calibrators may learn from; regionOf assigns every row to a
// neighborhood in [0, numRegions). The returned slice is indexed by
// region; entries may alias the global fallback.
func fitPostCalibrators(kind PostProcess, allScores []float64, labels, regionOf, trainIdx []int, numRegions int) ([]ml.ScoreCalibrator, error) {
	// Global fallback fitted on all training rows.
	global, err := newCalibrator(kind)
	if err != nil {
		return nil, err
	}
	trainScores := make([]float64, len(trainIdx))
	trainLabels := make([]int, len(trainIdx))
	for i, j := range trainIdx {
		trainScores[i] = allScores[j]
		trainLabels[i] = labels[j]
	}
	if err := global.Fit(trainScores, trainLabels, nil); err != nil {
		return nil, fmt.Errorf("pipeline: global post-calibration: %w", err)
	}

	// Group training rows per region.
	regionTrain := make([][]int, numRegions)
	for _, j := range trainIdx {
		r := regionOf[j]
		regionTrain[r] = append(regionTrain[r], j)
	}
	// Fit one calibrator per eligible region.
	regionCal := make([]ml.ScoreCalibrator, numRegions)
	for r := 0; r < numRegions; r++ {
		rows := regionTrain[r]
		pos, neg := 0, 0
		for _, j := range rows {
			if labels[j] != 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos < minPostSamples || neg < minPostSamples {
			regionCal[r] = global
			continue
		}
		s := make([]float64, len(rows))
		y := make([]int, len(rows))
		for i, j := range rows {
			s[i] = allScores[j]
			y[i] = labels[j]
		}
		c, err := newCalibrator(kind)
		if err != nil {
			return nil, err
		}
		if err := c.Fit(s, y, nil); err != nil {
			return nil, fmt.Errorf("pipeline: region %d post-calibration: %w", r, err)
		}
		regionCal[r] = c
	}
	return regionCal, nil
}

// postProcessScores recalibrates allScores in place per neighborhood:
// fitPostCalibrators followed by applyPostCalibrators. PostNone is a
// no-op.
func postProcessScores(kind PostProcess, allScores []float64, labels, regionOf, trainIdx []int, numRegions int) error {
	if kind == PostNone {
		return nil
	}
	cals, err := fitPostCalibrators(kind, allScores, labels, regionOf, trainIdx, numRegions)
	if err != nil {
		return err
	}
	return applyPostCalibrators(cals, allScores, regionOf)
}

// applyPostCalibrators recalibrates scores in place, routing each row
// through its region's calibrator.
func applyPostCalibrators(regionCal []ml.ScoreCalibrator, scores []float64, regionOf []int) error {
	for j := range scores {
		out, err := regionCal[regionOf[j]].Apply(scores[j : j+1])
		if err != nil {
			return err
		}
		scores[j] = out[0]
	}
	return nil
}
