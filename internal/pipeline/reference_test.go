package pipeline

import (
	"math"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/kdtree"
	"fairindex/internal/ml"
)

// sameFloat compares bit patterns so NaNs (legal in calibration
// ratios) compare equal.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestBuildReferenceParity pins the overhaul's core contract at the
// pipeline level: for every partition method, the optimized Build —
// grouped kernels, pooled scratch, TrainWorkers > 1 — produces
// artifacts bit-identical to the retained sequential,
// allocation-naive BuildReference. Run with -race this also shakes
// out sharing bugs between the parallel stages.
func TestBuildReferenceParity(t *testing.T) {
	spec := dataset.LA()
	spec.NumRecords = 500
	ds, err := dataset.Generate(spec, geo.MustGrid(24, 24))
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{
		MethodMedianKD, MethodFairKD, MethodIterativeFairKD,
		MethodMultiObjectiveFairKD, MethodGridReweight, MethodZipCode,
		MethodFairQuadtree,
	}
	for _, m := range methods {
		for _, height := range []int{2, 5} {
			for _, seed := range []int64{1, 9, 23} {
				cfg := Config{Method: m, Height: height, Seed: seed, TrainWorkers: 3}
				opt, err := Build(ds, cfg)
				if err != nil {
					t.Fatalf("%v h=%d seed=%d: Build: %v", m, height, seed, err)
				}
				ref, err := BuildReference(ds, cfg)
				if err != nil {
					t.Fatalf("%v h=%d seed=%d: BuildReference: %v", m, height, seed, err)
				}
				compareArtifacts(t, opt, ref, m.String())
			}
		}
	}
}

// TestBuildReferenceParityVariants covers the config corners the main
// sweep fixes: post-processing calibrators, reweighting, the second
// task, alternative objectives and encodings.
func TestBuildReferenceParityVariants(t *testing.T) {
	spec := dataset.Houston()
	spec.NumRecords = 450
	ds, err := dataset.Generate(spec, geo.MustGrid(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Method: MethodFairKD, Height: 4, Seed: 2, TrainWorkers: 4, PostProcess: PostPlatt},
		{Method: MethodFairKD, Height: 4, Seed: 2, TrainWorkers: 4, PostProcess: PostIsotonic},
		{Method: MethodFairKD, Height: 4, Seed: 5, TrainWorkers: 2, Reweight: true},
		{Method: MethodFairKD, Height: 4, Seed: 5, TrainWorkers: 2, Task: 1},
		{Method: MethodFairKD, Height: 4, Seed: 5, TrainWorkers: 2, Objective: kdtree.ObjectiveComposite, Lambda: 0.5},
		{Method: MethodFairKD, Height: 4, Seed: 5, TrainWorkers: 2, Encoding: dataset.EncOneHot},
		{Method: MethodFairKD, Height: 4, Seed: 5, TrainWorkers: 2, Encoding: dataset.EncCentroid},
	}
	for i, cfg := range cfgs {
		opt, err := Build(ds, cfg)
		if err != nil {
			t.Fatalf("case %d: Build: %v", i, err)
		}
		ref, err := BuildReference(ds, cfg)
		if err != nil {
			t.Fatalf("case %d: BuildReference: %v", i, err)
		}
		compareArtifacts(t, opt, ref, "variant")
	}
}

func compareArtifacts(t *testing.T, opt, ref *Artifacts, label string) {
	t.Helper()
	if opt.Partition.NumRegions() != ref.Partition.NumRegions() {
		t.Fatalf("%s: regions %d vs %d", label, opt.Partition.NumRegions(), ref.Partition.NumRegions())
	}
	oc := opt.Partition.CellRegions()
	rc := ref.Partition.CellRegions()
	for i := range oc {
		if oc[i] != rc[i] {
			t.Fatalf("%s: cell %d region %d vs %d", label, i, oc[i], rc[i])
		}
	}
	if len(opt.Tasks) != len(ref.Tasks) {
		t.Fatalf("%s: task counts %d vs %d", label, len(opt.Tasks), len(ref.Tasks))
	}
	for i := range opt.Tasks {
		or, rr := opt.Tasks[i].Report, ref.Tasks[i].Report
		checks := []struct {
			name string
			a, b float64
		}{
			{"ENCE", or.ENCE, rr.ENCE},
			{"ENCETrain", or.ENCETrain, rr.ENCETrain},
			{"ENCETest", or.ENCETest, rr.ENCETest},
			{"Accuracy", or.Accuracy, rr.Accuracy},
			{"AUC", or.AUC, rr.AUC},
			{"TrainMiscal", or.TrainMiscal, rr.TrainMiscal},
			{"TestMiscal", or.TestMiscal, rr.TestMiscal},
			{"ECE", or.ECE, rr.ECE},
			{"TrainCalRatio", or.TrainCalRatio, rr.TrainCalRatio},
			{"TestCalRatio", or.TestCalRatio, rr.TestCalRatio},
			{"StatParityGap", or.StatParityGap, rr.StatParityGap},
			{"EqualOddsGap", or.EqualOddsGap, rr.EqualOddsGap},
		}
		for _, c := range checks {
			if !sameFloat(c.a, c.b) {
				t.Fatalf("%s task %d: %s %v (optimized) != %v (reference)", label, i, c.name, c.a, c.b)
			}
		}
		os, rs := opt.Tasks[i].RegionStats, ref.Tasks[i].RegionStats
		if len(os) != len(rs) {
			t.Fatalf("%s task %d: region stats %d vs %d", label, i, len(os), len(rs))
		}
		for r := range os {
			if os[r].Count != rs[r].Count ||
				!sameFloat(os[r].SumScore, rs[r].SumScore) ||
				!sameFloat(os[r].SumLabel, rs[r].SumLabel) {
				t.Fatalf("%s task %d region %d: stats %+v vs %+v", label, i, r, os[r], rs[r])
			}
		}
		om, okO := opt.Tasks[i].Model.(*ml.LogReg)
		rm, okR := ref.Tasks[i].Model.(*ml.LogReg)
		if okO != okR {
			t.Fatalf("%s task %d: model kinds differ", label, i)
		}
		if okO {
			ow, ob, err := om.Coefficients()
			if err != nil {
				t.Fatal(err)
			}
			rw, rb, err := rm.Coefficients()
			if err != nil {
				t.Fatal(err)
			}
			if !sameFloat(ob, rb) || len(ow) != len(rw) {
				t.Fatalf("%s task %d: bias/width mismatch", label, i)
			}
			for j := range ow {
				if !sameFloat(ow[j], rw[j]) {
					t.Fatalf("%s task %d: weight %d: %v vs %v", label, i, j, ow[j], rw[j])
				}
			}
		}
		if (opt.Tasks[i].Post == nil) != (ref.Tasks[i].Post == nil) {
			t.Fatalf("%s task %d: post-calibrator presence differs", label, i)
		}
	}
}
