package pipeline

import (
	"fairindex/internal/dataset"
)

// BuildReference executes the pipeline with the retained sequential,
// allocation-naive implementation: no worker pools (every stage runs
// on the calling goroutine regardless of Config.TrainWorkers), no
// scratch pooling, and the reference classifier kernels
// (ml.FitReference / ml.FitGroupedReference and their predict twins).
//
// Its artifacts are bit-identical to Build's — that equivalence is
// the contract the whole performance overhaul rests on, enforced by
// TestBuildReferenceParity (pipeline level, every method) and
// TestIndexBuildParity (serialized .fidx bytes). It exists as a
// correctness oracle and stays deliberately naive; do not optimize
// it.
func BuildReference(ds *dataset.Dataset, cfg Config) (*Artifacts, error) {
	return build(ds, cfg, true)
}
