// Package pipeline wires the substrates into the paper's end-to-end
// flow (Figure 3): an initial classifier run over the base grid, a
// fairness-aware spatial partitioning, a neighborhood update, a final
// training run and the full metric report. Every experiment harness
// and the public API run through this package.
package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/kdtree"
	"fairindex/internal/ml"
	"fairindex/internal/partition"
)

// Method enumerates the partitioning / mitigation strategies compared
// in §5.
type Method int

const (
	// MethodMedianKD is the standard median KD-tree baseline.
	MethodMedianKD Method = iota
	// MethodFairKD is the paper's Fair KD-tree (Algorithms 1–2).
	MethodFairKD
	// MethodIterativeFairKD is the Iterative Fair KD-tree (Algorithm 3).
	MethodIterativeFairKD
	// MethodMultiObjectiveFairKD is the Multi-Objective Fair KD-tree
	// (§4.3); requires Alphas over the dataset's tasks.
	MethodMultiObjectiveFairKD
	// MethodGridReweight partitions with a uniform grid of matching
	// granularity and trains with Kamiran–Calders reweighing.
	MethodGridReweight
	// MethodZipCode uses the fixed zip-code-like Voronoi partition
	// with no mitigation (the §5.2 disparity baseline).
	MethodZipCode
	// MethodFairQuadtree is the future-work extension: a fair
	// quadtree at height ⌈Height/2⌉ (≈ the same leaf count).
	MethodFairQuadtree
)

// String implements fmt.Stringer using the paper's labels.
func (m Method) String() string {
	switch m {
	case MethodMedianKD:
		return "Median KD-tree"
	case MethodFairKD:
		return "Fair KD-tree"
	case MethodIterativeFairKD:
		return "Iterative Fair KD-tree"
	case MethodMultiObjectiveFairKD:
		return "Multi-Objective Fair KD-tree"
	case MethodGridReweight:
		return "Grid (Reweighting)"
	case MethodZipCode:
		return "Zip Code"
	case MethodFairQuadtree:
		return "Fair Quadtree"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config parameterizes one pipeline run.
type Config struct {
	Method Method
	// Height is the tree height th (leaf count ≤ 2^th). For
	// MethodZipCode it is ignored; for MethodGridReweight it sets the
	// matching uniform granularity.
	Height int
	// Model selects the classifier family (default logistic
	// regression).
	Model ml.ModelKind
	// Encoding controls the neighborhood feature encoding of the
	// *final* training (the zero value resolves to centroid+one-hot;
	// the initial scoring run always uses the cell-centroid encoding,
	// see DESIGN.md §2).
	Encoding dataset.Encoding
	// Task selects the label column for single-task methods.
	Task int
	// Alphas are the per-task weights for
	// MethodMultiObjectiveFairKD; nil defaults to uniform weights.
	Alphas []float64
	// Objective and Lambda configure the fair split scoring.
	Objective kdtree.Objective
	Lambda    float64
	// TestFrac is the held-out fraction (default 0.2).
	TestFrac float64
	// Seed drives the split and the zip-code layout.
	Seed int64
	// ZipSites is the number of zip-code regions for MethodZipCode
	// (default 40).
	ZipSites int
	// ECEBins for per-neighborhood ECE reports (default 15 as in
	// Figure 6).
	ECEBins int
	// Reweight forces Kamiran–Calders weights in the final training
	// regardless of method (it is implied by MethodGridReweight).
	Reweight bool
	// PostProcess optionally recalibrates the final scores per
	// neighborhood (the §3 post-processing mitigation family);
	// default none.
	PostProcess PostProcess
}

// withDefaults fills unset optional fields.
func (c Config) withDefaults() Config {
	if c.TestFrac == 0 {
		c.TestFrac = 0.2
	}
	if c.ZipSites == 0 {
		c.ZipSites = 40
	}
	if c.ECEBins == 0 {
		c.ECEBins = calib.DefaultECEBins
	}
	return c
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("pipeline: invalid config")

// validate checks config against the dataset.
func (c Config) validate(ds *dataset.Dataset) error {
	if c.Height < 0 {
		return fmt.Errorf("%w: height %d", ErrConfig, c.Height)
	}
	if c.Task < 0 || c.Task >= ds.NumTasks() {
		return fmt.Errorf("%w: task %d of %d", ErrConfig, c.Task, ds.NumTasks())
	}
	if c.TestFrac < 0 || c.TestFrac >= 1 {
		return fmt.Errorf("%w: test fraction %v", ErrConfig, c.TestFrac)
	}
	if c.Method == MethodMultiObjectiveFairKD && c.Alphas != nil && len(c.Alphas) != ds.NumTasks() {
		return fmt.Errorf("%w: %d alphas for %d tasks", ErrConfig, len(c.Alphas), ds.NumTasks())
	}
	if c.Method != MethodMultiObjectiveFairKD && c.Alphas != nil {
		return fmt.Errorf("%w: alphas are only meaningful for %v, got them with %v",
			ErrConfig, MethodMultiObjectiveFairKD, c.Method)
	}
	return nil
}

// Artifacts is the full output of a Build: everything a serving
// index needs to answer point lookups and score individuals without
// re-running the pipeline. Unlike Result (the experiment view, which
// discards the trained models), Artifacts keeps the final per-task
// classifiers and any fitted post-processing calibrators.
type Artifacts struct {
	// Config is the input configuration with defaults resolved.
	Config Config
	// Partition is the fairness-aware neighborhood partition.
	Partition *partition.Partition
	// Tasks holds the trained model, calibrators and metric report per
	// evaluated task (one entry for single-task methods, one per
	// dataset task for the multi-objective method).
	Tasks []TrainedTask
	// TrainIdx/TestIdx are the record indices of the stratified split.
	TrainIdx, TestIdx []int
	// BuildTime covers partition construction (including the method's
	// own classifier runs); TrainTime the final training + evaluation
	// (wall clock — with multiple tasks the per-task work overlaps).
	BuildTime, TrainTime time.Duration
	// TrainWorkers is the worker-pool size the final training ran
	// with (1 = sequential). Comparing the summed per-task TrainTimes
	// against the wall-clock TrainTime gives the parallel speedup.
	TrainWorkers int
}

// TaskCPUTime sums the per-task training durations — the sequential
// cost the worker pool amortized.
func (a *Artifacts) TaskCPUTime() time.Duration {
	var sum time.Duration
	for i := range a.Tasks {
		sum += a.Tasks[i].TrainTime
	}
	return sum
}

// forEachTask runs fn(i) for every i in [0, n) on a bounded pool of
// worker goroutines and returns the lowest-index error, so multi-task
// stages scale with cores while keeping deterministic error
// selection. fn must be safe for concurrent invocation across
// distinct i. The returned worker count is what the pool actually
// used (1 = ran on the calling goroutine).
func forEachTask(n int, fn func(i int) error) (workers int, err error) {
	workers = runtime.GOMAXPROCS(0)
	if n < workers {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		next := make(chan int)
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		// Stop dispatching once any task fails; in-flight tasks finish
		// but a multi-second tail of doomed work is skipped.
		for i := 0; i < n && !failed.Load(); i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return workers, e
		}
	}
	return workers, nil
}

// Build executes the pipeline's three stages — split + partition
// construction, final per-task training, evaluation — and returns the
// trained artifacts. It is the primary entry point; Run is a thin
// shim over it that keeps only the metric report.
func Build(ds *dataset.Dataset, cfg Config) (*Artifacts, error) {
	cfg = cfg.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(ds); err != nil {
		return nil, err
	}

	// Stage 1: stratified split and fairness-aware partitioning.
	labels, err := ds.Labels(cfg.Task)
	if err != nil {
		return nil, err
	}
	trainIdx, testIdx, err := dataset.StratifiedSplit(labels, cfg.TestFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	part, err := buildPartition(ds, cfg, trainIdx)
	if err != nil {
		return nil, err
	}

	art := &Artifacts{
		Config:    cfg,
		Partition: part,
		TrainIdx:  trainIdx,
		TestIdx:   testIdx,
		BuildTime: time.Since(buildStart),
	}

	// Stages 2–3: final training and metrics, per task. Single-task
	// methods report only cfg.Task; the multi-objective method reports
	// every task (Figure 10 shows per-objective performance of the
	// shared partitioning). Tasks are independent — same partition,
	// fresh classifier each — so they train on a bounded worker pool;
	// results land at their task's slot, keeping output order and every
	// metric identical to a sequential run.
	tasks := []int{cfg.Task}
	if cfg.Method == MethodMultiObjectiveFairKD {
		tasks = make([]int, ds.NumTasks())
		for i := range tasks {
			tasks[i] = i
		}
	}
	trainStart := time.Now()
	// The record→region assignment and the encoded feature matrix are
	// task-independent: compute them once here and share them
	// read-only across the workers instead of once per task.
	regionOf, err := part.AssignCells(ds.Cells())
	if err != nil {
		return nil, err
	}
	encoded, err := dataset.Encode(ds, regionOf, part.NumRegions(), part.Centroids(), cfg.Encoding)
	if err != nil {
		return nil, err
	}
	art.Tasks = make([]TrainedTask, len(tasks))
	workers, err := forEachTask(len(tasks), func(i int) error {
		taskStart := time.Now()
		tt, err := trainTask(ds, cfg, part, regionOf, encoded, tasks[i], trainIdx, testIdx)
		if err != nil {
			return err
		}
		tt.TrainTime = time.Since(taskStart)
		art.Tasks[i] = *tt
		return nil
	})
	if err != nil {
		return nil, err
	}
	art.TrainWorkers = workers
	art.TrainTime = time.Since(trainStart)
	return art, nil
}

// Run executes the full pipeline for one configuration. The returned
// Result contains the final partition, per-task metrics and timings
// (the experiment view of Build, without the trained models).
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	art, err := Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	return art.Result(), nil
}

// Result assembles the experiment-facing view of the artifacts.
func (a *Artifacts) Result() *Result {
	res := &Result{
		Method:     a.Config.Method,
		Height:     a.Config.Height,
		Model:      a.Config.Model,
		Partition:  a.Partition,
		NumRegions: a.Partition.NumRegions(),
		BuildTime:  a.BuildTime,
		TrainTime:  a.TrainTime,
		TrainIdx:   a.TrainIdx,
		TestIdx:    a.TestIdx,
	}
	for _, tt := range a.Tasks {
		res.Tasks = append(res.Tasks, tt.Report)
	}
	return res
}

// buildPartition produces the neighborhood partition for the method.
// Only training records drive data-dependent splits, so no label
// information leaks from the held-out set.
func buildPartition(ds *dataset.Dataset, cfg Config, trainIdx []int) (*partition.Partition, error) {
	grid := ds.Grid
	cells := ds.Cells()
	trainCells := dataset.Gather(cells, trainIdx)

	switch cfg.Method {
	case MethodMedianKD:
		tree, err := kdtree.BuildMedian(grid, cells, cfg.Height)
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodFairKD:
		dev, err := initialDeviations(ds, cfg, trainIdx, cfg.Task)
		if err != nil {
			return nil, err
		}
		tree, err := kdtree.BuildFair(grid, trainCells, dev, treeConfig(cfg))
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodIterativeFairKD:
		retrain := func(p *partition.Partition) ([]float64, error) {
			return deviationsFor(ds, cfg, p, cfg.Task, trainIdx)
		}
		tree, err := kdtree.BuildIterative(grid, trainCells, treeConfig(cfg), retrain)
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodMultiObjectiveFairKD:
		alphas := cfg.Alphas
		if alphas == nil {
			alphas = uniformAlphas(ds.NumTasks())
		}
		// The per-task Step-1 classifier runs are independent, so they
		// share the same bounded worker pool as the final training.
		scoreSets := make([][]float64, ds.NumTasks())
		labelSets := make([][]int, ds.NumTasks())
		if _, err := forEachTask(ds.NumTasks(), func(task int) error {
			_, scores, taskLabels, err := initialRun(ds, cfg, trainIdx, task)
			if err != nil {
				return err
			}
			scoreSets[task] = scores
			labelSets[task] = taskLabels
			return nil
		}); err != nil {
			return nil, err
		}
		tree, err := kdtree.BuildMultiObjective(grid, trainCells, scoreSets, labelSets, alphas, treeConfig(cfg))
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodGridReweight:
		return partition.UniformGrid(grid, cfg.Height)

	case MethodZipCode:
		return partition.Voronoi(grid, cfg.ZipSites, cfg.Seed+1, ds.CellCounts())

	case MethodFairQuadtree:
		dev, err := initialDeviations(ds, cfg, trainIdx, cfg.Task)
		if err != nil {
			return nil, err
		}
		qt, err := kdtree.BuildFairQuadtree(grid, trainCells, dev, (cfg.Height+1)/2)
		if err != nil {
			return nil, err
		}
		return qt.Partition()

	default:
		return nil, fmt.Errorf("%w: unknown method %d", ErrConfig, int(cfg.Method))
	}
}

// treeConfig maps the pipeline config onto the kdtree config.
func treeConfig(cfg Config) kdtree.Config {
	return kdtree.Config{Height: cfg.Height, Objective: cfg.Objective, Lambda: cfg.Lambda}
}

// uniformAlphas returns equal task weights summing to 1.
func uniformAlphas(m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = 1 / float64(m)
	}
	return out
}

// initialDeviations runs the Step-1 classifier over the cell-identity
// partition and returns the training records' signed deviations.
func initialDeviations(ds *dataset.Dataset, cfg Config, trainIdx []int, task int) ([]float64, error) {
	dev, _, _, err := initialRun(ds, cfg, trainIdx, task)
	return dev, err
}

// initialRun trains on the base grid (cell identity, centroid
// encoding) and returns the training records' deviations, scores and
// labels in trainIdx order.
func initialRun(ds *dataset.Dataset, cfg Config, trainIdx []int, task int) (dev, scores []float64, labels []int, err error) {
	p0, err := partition.CellIdentity(ds.Grid)
	if err != nil {
		return nil, nil, nil, err
	}
	return runOnPartition(ds, cfg, p0, task, trainIdx, dataset.EncCentroid, nil)
}

// deviationsFor retrains on an arbitrary partition (Iterative level
// callback) and returns training-record deviations.
func deviationsFor(ds *dataset.Dataset, cfg Config, p *partition.Partition, task int, trainIdx []int) ([]float64, error) {
	dev, _, _, err := runOnPartition(ds, cfg, p, task, trainIdx, dataset.EncCentroid, nil)
	return dev, err
}

// runOnPartition encodes the dataset against a partition, trains on
// the train split (optionally weighted) and returns deviations,
// scores and labels of the training records, in trainIdx order.
func runOnPartition(ds *dataset.Dataset, cfg Config, p *partition.Partition, task int, trainIdx []int, enc dataset.Encoding, weights []float64) (dev, scores []float64, labels []int, err error) {
	regionOf, err := p.AssignCells(ds.Cells())
	if err != nil {
		return nil, nil, nil, err
	}
	encoded, err := dataset.Encode(ds, regionOf, p.NumRegions(), p.Centroids(), enc)
	if err != nil {
		return nil, nil, nil, err
	}
	allLabels, err := ds.Labels(task)
	if err != nil {
		return nil, nil, nil, err
	}
	trainX := dataset.Gather(encoded.X, trainIdx)
	trainY := dataset.Gather(allLabels, trainIdx)

	clf, err := ml.New(cfg.Model)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := clf.Fit(trainX, trainY, weights); err != nil {
		return nil, nil, nil, err
	}
	scores, err = clf.PredictProba(trainX)
	if err != nil {
		return nil, nil, nil, err
	}
	dev = make([]float64, len(scores))
	for i, s := range scores {
		dev[i] = s - float64(trainY[i])
	}
	return dev, scores, trainY, nil
}
