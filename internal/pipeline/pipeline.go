// Package pipeline wires the substrates into the paper's end-to-end
// flow (Figure 3): an initial classifier run over the base grid, a
// fairness-aware spatial partitioning, a neighborhood update, a final
// training run and the full metric report. Every experiment harness
// and the public API run through this package.
package pipeline

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/kdtree"
	"fairindex/internal/ml"
	"fairindex/internal/partition"
	"fairindex/internal/stream"
)

// Method enumerates the partitioning / mitigation strategies compared
// in §5.
type Method int

const (
	// MethodMedianKD is the standard median KD-tree baseline.
	MethodMedianKD Method = iota
	// MethodFairKD is the paper's Fair KD-tree (Algorithms 1–2).
	MethodFairKD
	// MethodIterativeFairKD is the Iterative Fair KD-tree (Algorithm 3).
	MethodIterativeFairKD
	// MethodMultiObjectiveFairKD is the Multi-Objective Fair KD-tree
	// (§4.3); requires Alphas over the dataset's tasks.
	MethodMultiObjectiveFairKD
	// MethodGridReweight partitions with a uniform grid of matching
	// granularity and trains with Kamiran–Calders reweighing.
	MethodGridReweight
	// MethodZipCode uses the fixed zip-code-like Voronoi partition
	// with no mitigation (the §5.2 disparity baseline).
	MethodZipCode
	// MethodFairQuadtree is the future-work extension: a fair
	// quadtree at height ⌈Height/2⌉ (≈ the same leaf count).
	MethodFairQuadtree
)

// String implements fmt.Stringer using the paper's labels.
func (m Method) String() string {
	switch m {
	case MethodMedianKD:
		return "Median KD-tree"
	case MethodFairKD:
		return "Fair KD-tree"
	case MethodIterativeFairKD:
		return "Iterative Fair KD-tree"
	case MethodMultiObjectiveFairKD:
		return "Multi-Objective Fair KD-tree"
	case MethodGridReweight:
		return "Grid (Reweighting)"
	case MethodZipCode:
		return "Zip Code"
	case MethodFairQuadtree:
		return "Fair Quadtree"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config parameterizes one pipeline run.
type Config struct {
	Method Method
	// Height is the tree height th (leaf count ≤ 2^th). For
	// MethodZipCode it is ignored; for MethodGridReweight it sets the
	// matching uniform granularity.
	Height int
	// Model selects the classifier family (default logistic
	// regression).
	Model ml.ModelKind
	// Encoding controls the neighborhood feature encoding of the
	// *final* training (the zero value resolves to centroid+one-hot;
	// the initial scoring run always uses the cell-centroid encoding,
	// see DESIGN.md §2).
	Encoding dataset.Encoding
	// Task selects the label column for single-task methods.
	Task int
	// Alphas are the per-task weights for
	// MethodMultiObjectiveFairKD; nil defaults to uniform weights.
	Alphas []float64
	// Objective and Lambda configure the fair split scoring.
	Objective kdtree.Objective
	Lambda    float64
	// ObjectiveMetric, when non-empty, replaces the Objective/Lambda
	// split scoring with a registered fairness metric (calib.Metric):
	// each candidate split is scored by the metric over the two
	// halves' pooled sufficient statistics and the split minimizing it
	// wins. Valid for MethodFairKD and MethodMultiObjectiveFairKD
	// only; the empty default keeps the paper's objective, bit-
	// identical to earlier releases. Like TrainWorkers it is not
	// serialized into index artifacts — a round-tripped Config loses
	// it (the partition it shaped, of course, persists).
	ObjectiveMetric string
	// TestFrac is the held-out fraction (default 0.2).
	TestFrac float64
	// Seed drives the split and the zip-code layout.
	Seed int64
	// ZipSites is the number of zip-code regions for MethodZipCode
	// (default 40).
	ZipSites int
	// ECEBins for per-neighborhood ECE reports (default 15 as in
	// Figure 6).
	ECEBins int
	// Reweight forces Kamiran–Calders weights in the final training
	// regardless of method (it is implied by MethodGridReweight).
	Reweight bool
	// PostProcess optionally recalibrates the final scores per
	// neighborhood (the §3 post-processing mitigation family);
	// default none.
	PostProcess PostProcess
	// TrainWorkers bounds the goroutines the build may use across all
	// its parallel stages: the per-task training pool, the
	// classifiers' forward passes and the KD builders' sibling
	// recursion. 0 resolves to GOMAXPROCS; 1 forces a sequential
	// build. Every produced artifact is bit-identical for any value —
	// parallelism only ever computes independent rows/subtrees, never
	// reorders a floating-point reduction (pinned by BuildReference
	// parity tests). Not serialized into index artifacts.
	TrainWorkers int
	// StreamChunk is the batch size BuildSource's two-pass ingest
	// decodes at a time (0 = stream.DefaultChunk). Like TrainWorkers
	// it is a pure resource knob: it never changes the produced
	// artifact and is not serialized into it.
	StreamChunk int
	// DriftThreshold seeds the built Index's maintenance drift
	// threshold: the ENCE divergence (|live − build-time|) at which
	// appended batches flip the rebuild-recommended flag. 0 monitors
	// drift without recommending. Runtime-only, not serialized.
	DriftThreshold float64
	// DriftThresholds seeds per-metric drift thresholds (registered
	// metric name → threshold), layered on top of DriftThreshold's
	// legacy ENCE entry. Runtime-only, not serialized.
	DriftThresholds map[string]float64
}

// withDefaults fills unset optional fields.
func (c Config) withDefaults() Config {
	if c.TestFrac == 0 {
		c.TestFrac = 0.2
	}
	if c.ZipSites == 0 {
		c.ZipSites = 40
	}
	if c.ECEBins == 0 {
		c.ECEBins = calib.DefaultECEBins
	}
	return c
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("pipeline: invalid config")

// validate checks config against the dataset.
func (c Config) validate(ds *dataset.Dataset) error {
	if c.Height < 0 {
		return fmt.Errorf("%w: height %d", ErrConfig, c.Height)
	}
	if c.Task < 0 || c.Task >= ds.NumTasks() {
		return fmt.Errorf("%w: task %d of %d", ErrConfig, c.Task, ds.NumTasks())
	}
	if c.TestFrac < 0 || c.TestFrac >= 1 {
		return fmt.Errorf("%w: test fraction %v", ErrConfig, c.TestFrac)
	}
	if c.TrainWorkers < 0 {
		return fmt.Errorf("%w: train workers %d", ErrConfig, c.TrainWorkers)
	}
	if c.StreamChunk < 0 {
		return fmt.Errorf("%w: stream chunk %d", ErrConfig, c.StreamChunk)
	}
	if c.DriftThreshold < 0 || math.IsNaN(c.DriftThreshold) || math.IsInf(c.DriftThreshold, 0) {
		return fmt.Errorf("%w: drift threshold %v", ErrConfig, c.DriftThreshold)
	}
	if c.Method == MethodMultiObjectiveFairKD && c.Alphas != nil && len(c.Alphas) != ds.NumTasks() {
		return fmt.Errorf("%w: %d alphas for %d tasks", ErrConfig, len(c.Alphas), ds.NumTasks())
	}
	if c.Method != MethodMultiObjectiveFairKD && c.Alphas != nil {
		return fmt.Errorf("%w: alphas are only meaningful for %v, got them with %v",
			ErrConfig, MethodMultiObjectiveFairKD, c.Method)
	}
	for name, t := range c.DriftThresholds {
		if _, ok := calib.MetricByName(name); !ok {
			return fmt.Errorf("%w: unknown drift metric %q (registered: %v)", ErrConfig, name, calib.MetricNames())
		}
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("%w: drift threshold %v for metric %q", ErrConfig, t, name)
		}
	}
	if c.ObjectiveMetric != "" {
		if _, ok := calib.MetricByName(c.ObjectiveMetric); !ok {
			return fmt.Errorf("%w: unknown objective metric %q (registered: %v)",
				ErrConfig, c.ObjectiveMetric, calib.MetricNames())
		}
		if c.Method != MethodFairKD && c.Method != MethodMultiObjectiveFairKD {
			return fmt.Errorf("%w: objective metric %q is only supported by %v and %v, got %v",
				ErrConfig, c.ObjectiveMetric, MethodFairKD, MethodMultiObjectiveFairKD, c.Method)
		}
	}
	return nil
}

// Artifacts is the full output of a Build: everything a serving
// index needs to answer point lookups and score individuals without
// re-running the pipeline. Unlike Result (the experiment view, which
// discards the trained models), Artifacts keeps the final per-task
// classifiers and any fitted post-processing calibrators.
type Artifacts struct {
	// Config is the input configuration with defaults resolved.
	Config Config
	// Partition is the fairness-aware neighborhood partition.
	Partition *partition.Partition
	// Tasks holds the trained model, calibrators and metric report per
	// evaluated task (one entry for single-task methods, one per
	// dataset task for the multi-objective method).
	Tasks []TrainedTask
	// TrainIdx/TestIdx are the record indices of the stratified split.
	TrainIdx, TestIdx []int
	// BuildTime covers partition construction (including the method's
	// own classifier runs); TrainTime the final training + evaluation
	// (wall clock — with multiple tasks the per-task work overlaps).
	BuildTime, TrainTime time.Duration
	// TrainWorkers is the resolved worker budget the build ran with
	// (1 = fully sequential): the bound on goroutines across the
	// per-task pool and the intra-model forward passes. Comparing the
	// summed per-task TrainTimes against the wall-clock TrainTime
	// gives the task-level parallel speedup.
	TrainWorkers int
}

// TaskCPUTime sums the per-task training durations — the sequential
// cost the worker pool amortized.
func (a *Artifacts) TaskCPUTime() time.Duration {
	var sum time.Duration
	for i := range a.Tasks {
		sum += a.Tasks[i].TrainTime
	}
	return sum
}

// forEachTask runs fn(i) for every i in [0, n) on a bounded pool of
// up to maxWorkers goroutines and returns the lowest-index error, so
// multi-task stages scale with cores while keeping deterministic
// error selection. fn must be safe for concurrent invocation across
// distinct i. The returned worker count is what the pool actually
// used (1 = ran on the calling goroutine).
func forEachTask(n, maxWorkers int, fn func(i int) error) (workers int, err error) {
	workers = maxWorkers
	if n < workers {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		next := make(chan int)
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		// Stop dispatching once any task fails; in-flight tasks finish
		// but a multi-second tail of doomed work is skipped.
		for i := 0; i < n && !failed.Load(); i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return workers, e
		}
	}
	return workers, nil
}

// Build executes the pipeline's three stages — split + partition
// construction, final per-task training, evaluation — and returns the
// trained artifacts. It is the primary entry point; Run is a thin
// shim over it that keeps only the metric report.
//
// Build is the optimized path: the final logistic-regression training
// runs over the factorized (grouped) neighborhood encoding with
// pooled scratch and a bounded worker budget (Config.TrainWorkers).
// BuildReference is its retained sequential, allocation-naive twin;
// both produce bit-identical artifacts (see DESIGN.md §10).
func Build(ds *dataset.Dataset, cfg Config) (*Artifacts, error) {
	return build(ds, cfg, false)
}

// BuildSource runs the full pipeline over a record stream: a
// bounded-residency two-pass ingest (stream.Ingest, chunked by
// Config.StreamChunk) followed by the standard build over the
// materialized result. The stream changes how the dataset reaches
// memory — O(chunk) transient allocations instead of per-record ones
// — not what is built from it, so the artifacts are bit-identical to
// Build over an equal in-memory dataset (pinned by parity tests).
// The ingested dataset is returned alongside the artifacts so
// callers can assemble serving indexes without a second pass.
func BuildSource(src stream.Source, cfg Config) (*Artifacts, *dataset.Dataset, error) {
	if src == nil {
		return nil, nil, fmt.Errorf("%w: nil source", ErrConfig)
	}
	if cfg.StreamChunk < 0 {
		return nil, nil, fmt.Errorf("%w: stream chunk %d", ErrConfig, cfg.StreamChunk)
	}
	ds, err := stream.Ingest(src, cfg.StreamChunk)
	if err != nil {
		return nil, nil, err
	}
	art, err := Build(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	return art, ds, nil
}

// resolveWorkers maps the configured budget to an effective pool
// size.
func resolveWorkers(cfg Config) int {
	if cfg.TrainWorkers > 0 {
		return cfg.TrainWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// build is the shared engine behind Build (ref=false: pooled buffers,
// worker pools, grouped fast kernels) and BuildReference (ref=true:
// sequential, allocation-naive, reference kernels — same arithmetic,
// same bits).
func build(ds *dataset.Dataset, cfg Config, ref bool) (*Artifacts, error) {
	cfg = cfg.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(ds); err != nil {
		return nil, err
	}
	workers := resolveWorkers(cfg)
	if ref {
		workers = 1
	}

	// Stage 1: stratified split and fairness-aware partitioning.
	labels, err := ds.Labels(cfg.Task)
	if err != nil {
		return nil, err
	}
	trainIdx, testIdx, err := dataset.StratifiedSplit(labels, cfg.TestFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	part, err := buildPartition(ds, cfg, trainIdx, workers, ref)
	if err != nil {
		return nil, err
	}

	art := &Artifacts{
		Config:    cfg,
		Partition: part,
		TrainIdx:  trainIdx,
		TestIdx:   testIdx,
		BuildTime: time.Since(buildStart),
	}

	// Stages 2–3: final training and metrics, per task. Single-task
	// methods report only cfg.Task; the multi-objective method reports
	// every task (Figure 10 shows per-objective performance of the
	// shared partitioning). Tasks are independent — same partition,
	// fresh classifier each — so they train on a bounded worker pool;
	// results land at their task's slot, keeping output order and every
	// metric identical to a sequential run.
	tasks := []int{cfg.Task}
	if cfg.Method == MethodMultiObjectiveFairKD {
		tasks = make([]int, ds.NumTasks())
		for i := range tasks {
			tasks[i] = i
		}
	}
	trainStart := time.Now()
	// The record→region assignment and the encoded feature matrix are
	// task-independent: compute them once here and share them
	// read-only across the workers instead of once per task. The
	// default logistic-regression model trains on the factorized
	// (grouped) encoding, so the O(records × regions) one-hot matrix
	// is never materialized; other model families get dense rows.
	regionOf, err := part.AssignCells(ds.Cells())
	if err != nil {
		return nil, err
	}
	var encoded *dataset.Encoded
	if cfg.Model == ml.ModelLogReg {
		encoded, err = dataset.EncodeGrouped(ds, regionOf, part.NumRegions(), part.Centroids(), cfg.Encoding)
	} else {
		encoded, err = dataset.Encode(ds, regionOf, part.NumRegions(), part.Centroids(), cfg.Encoding)
	}
	if err != nil {
		return nil, err
	}
	// Budget split: with one task the whole budget goes to that task's
	// forward passes; with several, tasks parallelize and share it.
	fitWorkers := workers
	if len(tasks) > 1 {
		fitWorkers = workers / len(tasks)
		if fitWorkers < 1 {
			fitWorkers = 1
		}
	}
	art.Tasks = make([]TrainedTask, len(tasks))
	_, err = forEachTask(len(tasks), workers, func(i int) error {
		taskStart := time.Now()
		tt, err := trainTask(ds, cfg, part, regionOf, encoded, tasks[i], trainIdx, testIdx, fitWorkers, ref)
		if err != nil {
			return err
		}
		tt.TrainTime = time.Since(taskStart)
		art.Tasks[i] = *tt
		return nil
	})
	if err != nil {
		return nil, err
	}
	art.TrainWorkers = workers
	art.TrainTime = time.Since(trainStart)
	return art, nil
}

// Run executes the full pipeline for one configuration. The returned
// Result contains the final partition, per-task metrics and timings
// (the experiment view of Build, without the trained models).
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	art, err := Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	return art.Result(), nil
}

// Result assembles the experiment-facing view of the artifacts.
func (a *Artifacts) Result() *Result {
	res := &Result{
		Method:     a.Config.Method,
		Height:     a.Config.Height,
		Model:      a.Config.Model,
		Partition:  a.Partition,
		NumRegions: a.Partition.NumRegions(),
		BuildTime:  a.BuildTime,
		TrainTime:  a.TrainTime,
		TrainIdx:   a.TrainIdx,
		TestIdx:    a.TestIdx,
	}
	for _, tt := range a.Tasks {
		res.Tasks = append(res.Tasks, tt.Report)
	}
	return res
}

// buildPartition produces the neighborhood partition for the method.
// Only training records drive data-dependent splits, so no label
// information leaks from the held-out set.
//
// The Step-1 classifier runs stay on the dense (pre-overhaul)
// training semantics: the deviations that drive split selection — and
// therefore the partition structure and region ids — are bit-for-bit
// what earlier releases produced.
func buildPartition(ds *dataset.Dataset, cfg Config, trainIdx []int, workers int, ref bool) (*partition.Partition, error) {
	grid := ds.Grid
	cells := ds.Cells()
	trainCells := dataset.Gather(cells, trainIdx)

	switch cfg.Method {
	case MethodMedianKD:
		tree, err := kdtree.BuildMedianWorkers(grid, cells, cfg.Height, workers)
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodFairKD:
		if cfg.ObjectiveMetric != "" {
			// Metric-driven objective: the scorer needs the raw scores
			// and labels, not just their difference.
			_, scores, taskLabels, err := initialRun(ds, cfg, trainIdx, cfg.Task, workers, ref)
			if err != nil {
				return nil, err
			}
			labels := make([]float64, len(taskLabels))
			for i, y := range taskLabels {
				if y != 0 {
					labels[i] = 1
				}
			}
			tree, err := kdtree.BuildFairScored(grid, trainCells, scores, labels,
				objectiveScorer(cfg), treeConfig(cfg, workers))
			if err != nil {
				return nil, err
			}
			return tree.Partition()
		}
		dev, err := initialDeviations(ds, cfg, trainIdx, cfg.Task, workers, ref)
		if err != nil {
			return nil, err
		}
		tree, err := kdtree.BuildFair(grid, trainCells, dev, treeConfig(cfg, workers))
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodIterativeFairKD:
		retrain := func(p *partition.Partition) ([]float64, error) {
			return deviationsFor(ds, cfg, p, cfg.Task, trainIdx, workers, ref)
		}
		tree, err := kdtree.BuildIterative(grid, trainCells, treeConfig(cfg, workers), retrain)
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodMultiObjectiveFairKD:
		alphas := cfg.Alphas
		if alphas == nil {
			alphas = uniformAlphas(ds.NumTasks())
		}
		// The per-task Step-1 classifier runs are independent, so they
		// share the same bounded worker pool as the final training.
		fitWorkers := workers / ds.NumTasks()
		if fitWorkers < 1 {
			fitWorkers = 1
		}
		scoreSets := make([][]float64, ds.NumTasks())
		labelSets := make([][]int, ds.NumTasks())
		if _, err := forEachTask(ds.NumTasks(), workers, func(task int) error {
			_, scores, taskLabels, err := initialRun(ds, cfg, trainIdx, task, fitWorkers, ref)
			if err != nil {
				return err
			}
			scoreSets[task] = scores
			labelSets[task] = taskLabels
			return nil
		}); err != nil {
			return nil, err
		}
		var (
			tree *kdtree.Tree
			err  error
		)
		if cfg.ObjectiveMetric != "" {
			tree, err = kdtree.BuildMultiObjectiveScored(grid, trainCells, scoreSets, labelSets, alphas,
				objectiveScorer(cfg), treeConfig(cfg, workers))
		} else {
			tree, err = kdtree.BuildMultiObjective(grid, trainCells, scoreSets, labelSets, alphas, treeConfig(cfg, workers))
		}
		if err != nil {
			return nil, err
		}
		return tree.Partition()

	case MethodGridReweight:
		return partition.UniformGrid(grid, cfg.Height)

	case MethodZipCode:
		return partition.Voronoi(grid, cfg.ZipSites, cfg.Seed+1, ds.CellCounts())

	case MethodFairQuadtree:
		dev, err := initialDeviations(ds, cfg, trainIdx, cfg.Task, workers, ref)
		if err != nil {
			return nil, err
		}
		qt, err := kdtree.BuildFairQuadtreeWorkers(grid, trainCells, dev, (cfg.Height+1)/2, workers)
		if err != nil {
			return nil, err
		}
		return qt.Partition()

	default:
		return nil, fmt.Errorf("%w: unknown method %d", ErrConfig, int(cfg.Method))
	}
}

// treeConfig maps the pipeline config onto the kdtree config.
func treeConfig(cfg Config, workers int) kdtree.Config {
	return kdtree.Config{Height: cfg.Height, Objective: cfg.Objective, Lambda: cfg.Lambda, Workers: workers}
}

// objectiveScorer resolves Config.ObjectiveMetric into a split
// scorer. validate has already checked the name resolves.
func objectiveScorer(cfg Config) kdtree.SplitScorer {
	m, ok := calib.MetricByName(cfg.ObjectiveMetric)
	if !ok {
		panic("pipeline: objective metric vanished after validation: " + cfg.ObjectiveMetric)
	}
	return kdtree.SplitScorer(calib.SplitScorerOf(m))
}

// uniformAlphas returns equal task weights summing to 1.
func uniformAlphas(m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = 1 / float64(m)
	}
	return out
}

// initialDeviations runs the Step-1 classifier over the cell-identity
// partition and returns the training records' signed deviations.
func initialDeviations(ds *dataset.Dataset, cfg Config, trainIdx []int, task, workers int, ref bool) ([]float64, error) {
	dev, _, _, err := initialRun(ds, cfg, trainIdx, task, workers, ref)
	return dev, err
}

// initialRun trains on the base grid (cell identity, centroid
// encoding) and returns the training records' deviations, scores and
// labels in trainIdx order.
func initialRun(ds *dataset.Dataset, cfg Config, trainIdx []int, task, workers int, ref bool) (dev, scores []float64, labels []int, err error) {
	p0, err := partition.CellIdentity(ds.Grid)
	if err != nil {
		return nil, nil, nil, err
	}
	return runOnPartition(ds, cfg, p0, task, trainIdx, dataset.EncCentroid, nil, workers, ref)
}

// deviationsFor retrains on an arbitrary partition (Iterative level
// callback) and returns training-record deviations.
func deviationsFor(ds *dataset.Dataset, cfg Config, p *partition.Partition, task int, trainIdx []int, workers int, ref bool) ([]float64, error) {
	dev, _, _, err := runOnPartition(ds, cfg, p, task, trainIdx, dataset.EncCentroid, nil, workers, ref)
	return dev, err
}

// runOnPartition encodes the dataset against a partition, trains on
// the train split (optionally weighted) and returns deviations,
// scores and labels of the training records, in trainIdx order. It
// always uses the dense training path (partition-shaping runs must
// reproduce historical splits bit-for-bit); workers only parallelizes
// the per-row forward passes, which is invisible in the output.
func runOnPartition(ds *dataset.Dataset, cfg Config, p *partition.Partition, task int, trainIdx []int, enc dataset.Encoding, weights []float64, workers int, ref bool) (dev, scores []float64, labels []int, err error) {
	regionOf, err := p.AssignCells(ds.Cells())
	if err != nil {
		return nil, nil, nil, err
	}
	encoded, err := dataset.Encode(ds, regionOf, p.NumRegions(), p.Centroids(), enc)
	if err != nil {
		return nil, nil, nil, err
	}
	allLabels, err := ds.Labels(task)
	if err != nil {
		return nil, nil, nil, err
	}
	trainX := dataset.Gather(encoded.X, trainIdx)
	trainY := dataset.Gather(allLabels, trainIdx)

	clf, err := ml.New(cfg.Model)
	if err != nil {
		return nil, nil, nil, err
	}
	setFitWorkers(clf, workers)
	if ref {
		if lr, ok := clf.(*ml.LogReg); ok {
			if err := lr.FitReference(trainX, trainY, weights); err != nil {
				return nil, nil, nil, err
			}
			scores, err = lr.PredictProbaReference(trainX)
			if err != nil {
				return nil, nil, nil, err
			}
			return deviationsOf(scores, trainY), scores, trainY, nil
		}
	}
	if err := clf.Fit(trainX, trainY, weights); err != nil {
		return nil, nil, nil, err
	}
	scores, err = clf.PredictProba(trainX)
	if err != nil {
		return nil, nil, nil, err
	}
	return deviationsOf(scores, trainY), scores, trainY, nil
}

// deviationsOf returns the signed deviations s_i − y_i.
func deviationsOf(scores []float64, y []int) []float64 {
	dev := make([]float64, len(scores))
	for i, s := range scores {
		yi := 0.0
		if y[i] != 0 {
			yi = 1
		}
		dev[i] = s - yi
	}
	return dev
}

// setFitWorkers hands the worker budget to classifiers that can use
// one.
func setFitWorkers(clf ml.Classifier, workers int) {
	if lr, ok := clf.(*ml.LogReg); ok {
		lr.Workers = workers
	}
}
