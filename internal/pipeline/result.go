package pipeline

import (
	"fmt"
	"math"
	"time"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/ml"
	"fairindex/internal/partition"
	"fairindex/internal/reweigh"
)

// TaskResult reports the final model's quality and fairness for one
// classification task over the produced neighborhoods.
type TaskResult struct {
	Task     int
	TaskName string

	// Fairness metrics.
	ENCE      float64 // Definition 3 over the full dataset
	ENCETrain float64
	ENCETest  float64

	// Utility metrics (Figure 8's indicators).
	Accuracy    float64 // test accuracy at threshold 0.5
	AUC         float64 // test AUC
	TrainMiscal float64 // overall |e−o| on the train split
	TestMiscal  float64 // overall |e−o| on the test split
	ECE         float64 // overall binned ECE on the full dataset

	// Overall calibration ratios e(h)/o(h) per split (§5.2 reports
	// these as evidence the model looks fair citywide). NaN when the
	// split holds no positives.
	TrainCalRatio float64
	TestCalRatio  float64

	// Auxiliary group-fairness notions from the paper's §3 taxonomy,
	// computed over the full dataset at threshold 0.5.
	StatParityGap float64
	EqualOddsGap  float64

	// Per-neighborhood reports for the most populated regions
	// (Figure 6 style), at most 10 entries.
	TopNeighborhoods []calib.NeighborhoodReport

	// Feature importance aggregated back onto dataset features plus a
	// "Neighborhood" entry (Figure 9); nil when the model cannot
	// attribute.
	ImportanceNames  []string
	ImportanceValues []float64
}

// Result is the full output of one pipeline run.
type Result struct {
	Method     Method
	Height     int
	Model      ml.ModelKind
	Partition  *partition.Partition
	NumRegions int
	Tasks      []TaskResult

	// BuildTime covers the partition construction, including any
	// classifier runs the method itself requires (so the Fair vs
	// Iterative comparison matches §5.3.1's timing claim). TrainTime
	// covers the final per-task training and evaluation.
	BuildTime time.Duration
	TrainTime time.Duration

	TrainIdx, TestIdx []int
}

// TrainedTask bundles one task's trained final model with its fitted
// post-processing calibrators (nil when Config.PostProcess is none;
// otherwise indexed by region) and the metric report.
type TrainedTask struct {
	Report TaskResult
	Model  ml.Classifier
	// Post holds the per-region score calibrators; entries may share
	// the global fallback calibrator.
	Post []ml.ScoreCalibrator
	// RegionStats holds the final model's per-region calibration
	// sufficient statistics (count, Σ score, Σ label) over the full
	// dataset, indexed by region id. Unlike Report.TopNeighborhoods
	// (capped at 10) it covers every region, and the sums are
	// additive, so an Index can aggregate them exactly over any
	// query window (GroupStats).
	RegionStats []calib.SuffStats
	// TrainTime is this task's own training + evaluation duration;
	// with Build's worker pool the per-task times overlap, so they sum
	// to more than Artifacts.TrainTime when tasks ran in parallel.
	TrainTime time.Duration
}

// trainTask trains the final model for one task over the produced
// partition, fits any post-processing calibrators and computes every
// reported metric. regionOf and encoded are the task-independent
// record→region assignment and encoded feature matrix — computed once
// by Build and shared read-only across the parallel task workers.
//
// When encoded carries the factorized layout (the logistic-regression
// default), training and scoring run the grouped kernels; fitWorkers
// bounds their forward-pass goroutines. ref selects the retained
// naive reference kernels (BuildReference) — bit-identical outputs,
// different machinery.
func trainTask(ds *dataset.Dataset, cfg Config, part *partition.Partition, regionOf []int, encoded *dataset.Encoded, task int, trainIdx, testIdx []int, fitWorkers int, ref bool) (*TrainedTask, error) {
	labels, err := ds.Labels(task)
	if err != nil {
		return nil, err
	}
	trainY := dataset.Gather(labels, trainIdx)
	trainGroups := dataset.Gather(regionOf, trainIdx)

	var weights []float64
	if cfg.Method == MethodGridReweight || cfg.Reweight {
		weights, err = reweigh.Weights(trainGroups, part.NumRegions(), trainY)
		if err != nil {
			return nil, err
		}
	}

	clf, err := ml.New(cfg.Model)
	if err != nil {
		return nil, err
	}
	setFitWorkers(clf, fitWorkers)
	allScores, err := fitAndScore(clf, encoded, trainIdx, trainY, weights, ref)
	if err != nil {
		return nil, err
	}
	out := &TrainedTask{Model: clf}
	if cfg.PostProcess != PostNone {
		out.Post, err = fitPostCalibrators(cfg.PostProcess, allScores, labels, regionOf, trainIdx, part.NumRegions())
		if err != nil {
			return nil, err
		}
		if err := applyPostCalibrators(out.Post, allScores, regionOf); err != nil {
			return nil, err
		}
	}

	tr := &TaskResult{Task: task, TaskName: ds.TaskNames[task]}

	trainScores := dataset.Gather(allScores, trainIdx)
	testScores := dataset.Gather(allScores, testIdx)
	testY := dataset.Gather(labels, testIdx)
	testGroups := dataset.Gather(regionOf, testIdx)

	tr.TrainMiscal = calib.MiscalAbs(trainScores, trainY)
	tr.TestMiscal = calib.MiscalAbs(testScores, testY)
	tr.TrainCalRatio = ratioOrNaN(trainScores, trainY)
	tr.TestCalRatio = ratioOrNaN(testScores, testY)
	if tr.Accuracy, err = ml.Accuracy(testScores, testY, ml.DefaultThreshold); err != nil {
		return nil, err
	}
	if tr.AUC, err = ml.AUC(testScores, testY); err != nil {
		return nil, err
	}
	if tr.ENCE, err = calib.ENCE(allScores, labels, regionOf, part.NumRegions()); err != nil {
		return nil, err
	}
	if tr.ENCETrain, err = calib.ENCE(trainScores, trainY, trainGroups, part.NumRegions()); err != nil {
		return nil, err
	}
	if tr.ENCETest, err = calib.ENCE(testScores, testY, testGroups, part.NumRegions()); err != nil {
		return nil, err
	}
	if tr.ECE, err = calib.ECE(allScores, labels, cfg.ECEBins); err != nil {
		return nil, err
	}
	if tr.TopNeighborhoods, err = calib.TopNeighborhoods(allScores, labels, regionOf, part.NumRegions(), 10, cfg.ECEBins); err != nil {
		return nil, err
	}
	// Full per-region sufficient statistics over the (post-processed)
	// serving scores, kept beyond the top-10 report so the Index can
	// answer exact fairness aggregates over arbitrary region sets.
	if out.RegionStats, err = calib.GroupBy(allScores, labels, regionOf, part.NumRegions()); err != nil {
		return nil, err
	}
	// Gaps are measured over neighborhoods with at least 10 members so
	// single-record leaves at deep heights do not pin them at 1.
	const minGapPop = 10
	if tr.StatParityGap, err = calib.StatisticalParityGap(allScores, labels, regionOf, part.NumRegions(), ml.DefaultThreshold, minGapPop); err != nil {
		return nil, err
	}
	if tr.EqualOddsGap, err = calib.EqualizedOddsGap(allScores, labels, regionOf, part.NumRegions(), ml.DefaultThreshold, minGapPop); err != nil {
		return nil, err
	}
	if imp, ok := clf.(ml.FeatureImporter); ok {
		if raw := imp.FeatureImportance(); raw != nil {
			names, agg, err := encoded.AggregateImportance(raw)
			if err != nil {
				return nil, err
			}
			tr.ImportanceNames = names
			tr.ImportanceValues = agg
		}
	}
	out.Report = *tr
	return out, nil
}

// fitAndScore trains clf on the encoded train split and scores every
// record. It dispatches on the encoding layout: the grouped layout
// trains the logistic regression with the factorized kernels (the
// only model Build pairs with it); dense rows use the classic path.
// With ref it runs the retained reference kernels instead — same
// arithmetic, naive execution.
func fitAndScore(clf ml.Classifier, encoded *dataset.Encoded, trainIdx []int, trainY []int, weights []float64, ref bool) ([]float64, error) {
	if encoded.Grouped() {
		lr, ok := clf.(*ml.LogReg)
		if !ok {
			return nil, fmt.Errorf("pipeline: grouped encoding requires logistic regression, got %s", clf.Name())
		}
		trainDesign := &ml.GroupedDesign{
			Base:   dataset.Gather(encoded.Base, trainIdx),
			Group:  dataset.Gather(encoded.Group, trainIdx),
			Shared: encoded.Shared,
		}
		allDesign := &ml.GroupedDesign{Base: encoded.Base, Group: encoded.Group, Shared: encoded.Shared}
		if ref {
			if err := lr.FitGroupedReference(trainDesign, trainY, weights); err != nil {
				return nil, err
			}
			return lr.PredictProbaGroupedReference(allDesign)
		}
		if err := lr.FitGrouped(trainDesign, trainY, weights); err != nil {
			return nil, err
		}
		return lr.PredictProbaGrouped(allDesign)
	}
	trainX := dataset.Gather(encoded.X, trainIdx)
	if lr, ok := clf.(*ml.LogReg); ok && ref {
		if err := lr.FitReference(trainX, trainY, weights); err != nil {
			return nil, err
		}
		return lr.PredictProbaReference(encoded.X)
	}
	if err := clf.Fit(trainX, trainY, weights); err != nil {
		return nil, err
	}
	return clf.PredictProba(encoded.X)
}

// ratioOrNaN wraps calib.Ratio, mapping the undefined case to NaN.
func ratioOrNaN(scores []float64, labels []int) float64 {
	if r, ok := calib.Ratio(scores, labels); ok {
		return r
	}
	return math.NaN()
}

// TaskByName returns the task result with the given name.
func (r *Result) TaskByName(name string) (*TaskResult, error) {
	for i := range r.Tasks {
		if r.Tasks[i].TaskName == name {
			return &r.Tasks[i], nil
		}
	}
	return nil, fmt.Errorf("pipeline: no task %q in result", name)
}
