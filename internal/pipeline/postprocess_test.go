package pipeline

import (
	"math"
	"testing"

	"fairindex/internal/dataset"
)

// dsEncCentroid shortens the encoding reference in test configs.
const dsEncCentroid = dataset.EncCentroid

func TestPostProcessString(t *testing.T) {
	tests := []struct {
		p    PostProcess
		want string
	}{
		{PostNone, "none"},
		{PostPlatt, "platt"},
		{PostIsotonic, "isotonic"},
		{PostProcess(9), "PostProcess(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestNewCalibratorUnknown(t *testing.T) {
	if _, err := newCalibrator(PostNone); err == nil {
		t.Error("expected error for PostNone calibrator")
	}
	if _, err := newCalibrator(PostProcess(9)); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestPostProcessScoresNoneIsNoop(t *testing.T) {
	scores := []float64{0.2, 0.9}
	if err := postProcessScores(PostNone, scores, []int{0, 1}, []int{0, 0}, []int{0, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0.2 || scores[1] != 0.9 {
		t.Error("PostNone modified scores")
	}
}

func TestPostProcessScoresRecalibratesRegions(t *testing.T) {
	// Two regions with opposite systematic bias: region 0 scores are
	// 0.3 below truth, region 1 scores 0.3 above. Per-region
	// calibration must pull both toward their local positive rates.
	const perRegion = 40
	n := 2 * perRegion
	scores := make([]float64, n)
	labels := make([]int, n)
	regionOf := make([]int, n)
	trainIdx := make([]int, n)
	for i := 0; i < n; i++ {
		trainIdx[i] = i
		r := i / perRegion
		regionOf[i] = r
		// Half of each region positive.
		if i%2 == 0 {
			labels[i] = 1
		}
		base := 0.5
		if r == 0 {
			base = 0.2 // under-scored region
		} else {
			base = 0.8 // over-scored region
		}
		scores[i] = base + 0.05*float64(i%4)/4
	}
	before := regionMiscal(scores, labels, regionOf, 2)
	if err := postProcessScores(PostIsotonic, scores, labels, regionOf, trainIdx, 2); err != nil {
		t.Fatal(err)
	}
	after := regionMiscal(scores, labels, regionOf, 2)
	if after >= before*0.5 {
		t.Errorf("post-processing did not recalibrate: %v -> %v", before, after)
	}
	for _, s := range scores {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v out of range", s)
		}
	}
}

// regionMiscal computes the mean per-region |e−o|.
func regionMiscal(scores []float64, labels, regionOf []int, numRegions int) float64 {
	sumS := make([]float64, numRegions)
	sumY := make([]float64, numRegions)
	cnt := make([]float64, numRegions)
	for i := range scores {
		r := regionOf[i]
		sumS[r] += scores[i]
		sumY[r] += float64(labels[i])
		cnt[r]++
	}
	var total float64
	for r := 0; r < numRegions; r++ {
		if cnt[r] > 0 {
			total += math.Abs(sumS[r]/cnt[r] - sumY[r]/cnt[r])
		}
	}
	return total / float64(numRegions)
}

func TestPostProcessScoresSmallRegionFallsBack(t *testing.T) {
	// A region with too few samples must use the global calibrator
	// rather than fail.
	scores := []float64{0.4, 0.6, 0.3, 0.7, 0.2, 0.8, 0.45, 0.55, 0.35, 0.65, 0.25, 0.75, 0.5, 0.9}
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	regionOf := make([]int, len(scores))
	regionOf[len(scores)-1] = 1 // region 1 holds a single record
	trainIdx := make([]int, len(scores))
	for i := range trainIdx {
		trainIdx[i] = i
	}
	if err := postProcessScores(PostPlatt, scores, labels, regionOf, trainIdx, 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestRunWithPostProcessing(t *testing.T) {
	// Height 3 keeps regions populated enough (~60 train records each)
	// for the per-region calibrators to engage; with finer partitions
	// most regions fall back to the global calibrator, which offers no
	// per-neighborhood guarantee (see postProcessScores docs). The
	// centroid encoding leaves systematic per-region miscalibration
	// for the post-processor to remove.
	ds := testCity(t)
	cfg := Config{Method: MethodMedianKD, Height: 3, Seed: 3, Encoding: dsEncCentroid}
	base, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range []PostProcess{PostPlatt, PostIsotonic} {
		t.Run(pp.String(), func(t *testing.T) {
			withPP := cfg
			withPP.PostProcess = pp
			res, err := Run(ds, withPP)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tasks[0].ENCETrain >= base.Tasks[0].ENCETrain {
				t.Errorf("%v: train ENCE %v not below unprocessed %v",
					pp, res.Tasks[0].ENCETrain, base.Tasks[0].ENCETrain)
			}
		})
	}
}
