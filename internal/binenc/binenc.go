// Package binenc provides the compact binary encoding primitives
// shared by every serializable artifact in the library (trained
// classifiers, partitions and the public Index). Integers use
// varint/zig-zag encoding, floats are stored as their exact IEEE 754
// bits (so a round-trip reproduces bit-identical model outputs), and
// all aggregates are length-prefixed.
//
// Decoding goes through Reader, which carries a sticky error so call
// sites can chain reads and check once at the end.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Decoding errors.
var (
	// ErrTruncated reports input that ended before the declared data.
	ErrTruncated = errors.New("binenc: truncated input")
	// ErrTooLarge reports a length prefix exceeding the remaining input.
	ErrTooLarge = errors.New("binenc: declared length exceeds input")
)

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends the exact IEEE 754 bits of f (little-endian).
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendFloat64s appends a length-prefixed float64 slice.
func AppendFloat64s(b []byte, fs []float64) []byte {
	b = AppendUvarint(b, uint64(len(fs)))
	for _, f := range fs {
		b = AppendFloat64(b, f)
	}
	return b
}

// AppendInts appends a length-prefixed int slice (zig-zag varints).
func AppendInts(b []byte, xs []int) []byte {
	b = AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = AppendVarint(b, int64(x))
	}
	return b
}

// AppendString appends a length-prefixed UTF-8 string.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendStrings appends a length-prefixed string slice.
func AppendStrings(b []byte, ss []string) []byte {
	b = AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b []byte, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Reader decodes values appended by the Append functions. The first
// failure latches into Err; subsequent reads return zero values.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The buffer is not copied.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// fail latches the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: uvarint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: varint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// Int reads a zig-zag varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail(fmt.Errorf("%w: bool at offset %d", ErrTruncated, r.off))
		return false
	}
	v := r.buf[r.off]
	r.off++
	return v != 0
}

// Float64 reads exact IEEE 754 bits.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(fmt.Errorf("%w: float64 at offset %d", ErrTruncated, r.off))
		return 0
	}
	bits := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits)
}

// sliceLen validates a length prefix against a per-element minimum
// size so a corrupt prefix cannot trigger a huge allocation.
func (r *Reader) sliceLen(minElemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemSize > 0 && n > uint64(r.Len()/minElemSize) {
		r.fail(fmt.Errorf("%w: %d elements declared, %d bytes left", ErrTooLarge, n, r.Len()))
		return 0
	}
	return int(n)
}

// Float64s reads a length-prefixed float64 slice.
func (r *Reader) Float64s() []float64 {
	n := r.sliceLen(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (r *Reader) Ints() []int {
	n := r.sliceLen(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: string of %d bytes at offset %d", ErrTruncated, n, r.off))
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Strings reads a length-prefixed string slice.
func (r *Reader) Strings() []string {
	n := r.sliceLen(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Bytes reads a length-prefixed byte slice (copied out of the input).
func (r *Reader) Bytes() []byte {
	n := r.sliceLen(1)
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: %d bytes declared at offset %d", ErrTooLarge, n, r.off))
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}
