package binenc

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	nan := math.NaN()
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -12345)
	b = AppendBool(b, true)
	b = AppendFloat64(b, nan)
	b = AppendFloat64s(b, []float64{0, -1.5, math.Inf(1)})
	b = AppendInts(b, []int{3, -7, 0})
	b = AppendString(b, "héllo")
	b = AppendStrings(b, []string{"", "x"})
	b = AppendBytes(b, []byte{9, 8})

	r := NewReader(b)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Errorf("varint = %d", got)
	}
	if !r.Bool() {
		t.Error("bool = false")
	}
	if got := r.Float64(); !math.IsNaN(got) {
		t.Errorf("float64 = %v, want NaN bits preserved", got)
	}
	fs := r.Float64s()
	if len(fs) != 3 || fs[1] != -1.5 || !math.IsInf(fs[2], 1) {
		t.Errorf("float64s = %v", fs)
	}
	is := r.Ints()
	if len(is) != 3 || is[1] != -7 {
		t.Errorf("ints = %v", is)
	}
	if got := r.String(); got != "héllo" {
		t.Errorf("string = %q", got)
	}
	ss := r.Strings()
	if len(ss) != 2 || ss[1] != "x" {
		t.Errorf("strings = %v", ss)
	}
	bs := r.Bytes()
	if len(bs) != 2 || bs[0] != 9 {
		t.Errorf("bytes = %v", bs)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("%d bytes left over", r.Len())
	}
}

func TestReaderTruncation(t *testing.T) {
	full := AppendFloat64s(nil, []float64{1, 2, 3})
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Float64s()
		if r.Err() == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Uvarint() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error on empty input")
	}
	// Subsequent reads return zero values and keep the first error.
	if v := r.Float64(); v != 0 {
		t.Errorf("float64 after error = %v", v)
	}
	if r.Err() != first {
		t.Error("error was overwritten")
	}
}

func TestReaderRejectsHugeLengthPrefix(t *testing.T) {
	// A length prefix claiming 2^50 floats must fail fast, not
	// allocate.
	b := AppendUvarint(nil, 1<<50)
	r := NewReader(b)
	if fs := r.Float64s(); fs != nil || r.Err() == nil {
		t.Error("expected ErrTooLarge for oversized prefix")
	}
}
