package server

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestGenerationHeader pins the router's consistency token: every data
// response and healthz carry the served artifact's fingerprint in
// Fairindex-Generation, stable across requests.
func TestGenerationHeader(t *testing.T) {
	idx, _ := buildIndex(t)
	fp, err := idx.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	want := strconv.FormatUint(fp, 10)
	ts := httptest.NewServer(New(idx))
	defer ts.Close()

	for _, url := range []string{
		ts.URL + "/healthz",
		ts.URL + "/v1/locate?lat=34.0&lon=-118.4",
		ts.URL + "/v1/knn?lat=34.0&lon=-118.4&k=3",
		ts.URL + "/v1/i/default/locate?lat=34.0&lon=-118.4",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(GenerationHeader); got != want {
			t.Errorf("GET %s: %s = %q, want %q", url, GenerationHeader, got, want)
		}
	}

	// POST data routes carry it too.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stats",
		strings.NewReader(`{"task":0,"regions":[0,1]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(GenerationHeader); got != want {
		t.Errorf("POST /v1/stats: %s = %q, want %q", GenerationHeader, got, want)
	}
}

// TestStatsSums pins the opt-in raw-sums surface: with "sums" the
// per-region entries carry bit-exact SumScore/SumLabel, without it the
// legacy response bytes contain no sum fields at all.
func TestStatsSums(t *testing.T) {
	idx, _ := buildIndex(t)
	ts := httptest.NewServer(New(idx))
	defer ts.Close()
	client := ts.Client()

	task := idx.Tasks()[0]
	regions := []int{0, 1, 2}
	ws, err := idx.GroupStats(task, regions)
	if err != nil {
		t.Fatal(err)
	}

	var resp statsResponse
	body := fmt.Sprintf(`{"task":%d,"regions":[0,1,2],"sums":true}`, task)
	if code := postJSON(t, client, ts.URL+"/v1/stats", body, &resp); code != http.StatusOK {
		t.Fatalf("stats with sums: status %d", code)
	}
	if len(resp.Regions) != len(ws.Regions) {
		t.Fatalf("got %d regions, want %d", len(resp.Regions), len(ws.Regions))
	}
	for i, rs := range ws.Regions {
		got := resp.Regions[i]
		if got.SumScore == nil || got.SumLabel == nil {
			t.Fatalf("region %d: missing sums", rs.Region)
		}
		if math.Float64bits(*got.SumScore) != math.Float64bits(rs.SumScore) ||
			math.Float64bits(*got.SumLabel) != math.Float64bits(rs.SumLabel) {
			t.Errorf("region %d sums = (%v, %v), want (%v, %v)",
				rs.Region, *got.SumScore, *got.SumLabel, rs.SumScore, rs.SumLabel)
		}
	}

	// GET form: sums=true behaves identically.
	var getResp statsResponse
	url := fmt.Sprintf("%s/v1/stats?task=%d&regions=0,1,2&sums=true", ts.URL, task)
	if code := getJSON(t, client, url, &getResp); code != http.StatusOK {
		t.Fatalf("GET stats with sums: status %d", code)
	}
	if getResp.Regions[0].SumScore == nil {
		t.Error("GET sums=true: missing sums")
	}

	// Legacy request: the raw body must not mention sum fields.
	httpResp, err := client.Post(ts.URL+"/v1/stats", "application/json",
		strings.NewReader(fmt.Sprintf(`{"task":%d,"regions":[0,1,2]}`, task)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := httpResp.Body.Read(buf)
	httpResp.Body.Close()
	if s := string(buf[:n]); strings.Contains(s, "sum_score") || strings.Contains(s, "sum_label") {
		t.Errorf("legacy stats response leaks sum fields: %s", s)
	}

	// Malformed sums parameter is a 400.
	if code := getJSON(t, client, ts.URL+fmt.Sprintf("/v1/stats?task=%d&regions=0&sums=banana", task), nil); code != http.StatusBadRequest {
		t.Errorf("sums=banana: status %d, want 400", code)
	}
}

// TestKNNSquared pins the squared-distance option the router merges
// in: squared responses carry NearestRegionsSquared's exact values and
// echo the flag, default responses are unchanged Euclidean.
func TestKNNSquared(t *testing.T) {
	idx, _ := buildIndex(t)
	ts := httptest.NewServer(New(idx))
	defer ts.Close()
	client := ts.Client()

	const lat, lon, k = 34.05, -118.35, 5
	wantSq, err := idx.NearestRegionsSquared(lat, lon, k)
	if err != nil {
		t.Fatal(err)
	}
	wantEu, err := idx.NearestRegions(lat, lon, k)
	if err != nil {
		t.Fatal(err)
	}

	var sq knnResponse
	url := fmt.Sprintf("%s/v1/knn?lat=%v&lon=%v&k=%d&squared=true", ts.URL, lat, lon, k)
	if code := getJSON(t, client, url, &sq); code != http.StatusOK {
		t.Fatalf("squared knn: status %d", code)
	}
	if !sq.Squared {
		t.Error("squared response does not echo the flag")
	}
	if len(sq.Neighbors) != len(wantSq) {
		t.Fatalf("squared knn: %d neighbors, want %d", len(sq.Neighbors), len(wantSq))
	}
	for i, nd := range wantSq {
		got := sq.Neighbors[i]
		if got.Region != nd.Region || math.Float64bits(got.Distance) != math.Float64bits(nd.Distance) {
			t.Errorf("squared neighbor %d = (%d, %v), want (%d, %v)", i, got.Region, got.Distance, nd.Region, nd.Distance)
		}
	}

	// POST form with the flag.
	var post knnResponse
	body := fmt.Sprintf(`{"lat":%v,"lon":%v,"k":%d,"squared":true}`, lat, lon, k)
	if code := postJSON(t, client, ts.URL+"/v1/knn", body, &post); code != http.StatusOK {
		t.Fatalf("POST squared knn: status %d", code)
	}
	if !post.Squared || len(post.Neighbors) != len(wantSq) {
		t.Fatalf("POST squared knn: squared=%v, %d neighbors", post.Squared, len(post.Neighbors))
	}

	// Default stays Euclidean with no flag in the body.
	var eu knnResponse
	url = fmt.Sprintf("%s/v1/knn?lat=%v&lon=%v&k=%d", ts.URL, lat, lon, k)
	if code := getJSON(t, client, url, &eu); code != http.StatusOK {
		t.Fatalf("knn: status %d", code)
	}
	if eu.Squared {
		t.Error("default response carries squared flag")
	}
	for i, nd := range wantEu {
		got := eu.Neighbors[i]
		if got.Region != nd.Region || math.Float64bits(got.Distance) != math.Float64bits(nd.Distance) {
			t.Errorf("neighbor %d = (%d, %v), want (%d, %v)", i, got.Region, got.Distance, nd.Region, nd.Distance)
		}
	}

	// Malformed squared parameter is a 400.
	if code := getJSON(t, client, ts.URL+"/v1/knn?lat=1&lon=1&k=1&squared=banana", nil); code != http.StatusBadRequest {
		t.Errorf("squared=banana: status %d, want 400", code)
	}
}
