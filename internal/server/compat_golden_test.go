package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairindex/internal/registry"
)

// Pre-redesign wire goldens: raw /v1/stats and /v1/compare response
// bytes recorded before the pluggable-metric layer landed. The builds
// behind them are deterministic (fixed dataset spec, seed and height),
// so any byte of drift means the legacy wire contract changed — new
// metric-selection features must be strictly additive and opt-in.
//
// Regenerate (only after an intentional wire change) with:
//
//	FAIRINDEX_REGEN=1 go test ./internal/server -run TestWireGolden
const (
	goldenStatsFile   = "golden_stats_v0.json"
	goldenCompareFile = "golden_compare_v0.json"

	// The fixed window: the same southwest-quadrant rectangle the
	// root-package golden tests pin, resolved through each index's own
	// RangeQuery.
	goldenStatsBody = `{"task":0,"rect":{"min_lat":33.60,"min_lon":-118.70,"max_lat":34.00,"max_lon":-118.25}}`

	goldenCompareBody = `{"indexes":["la-fair","la-zip"],"task":0,"rect":{"min_lat":33.60,"min_lon":-118.70,"max_lat":34.00,"max_lon":-118.25}}`
)

// goldenServer serves the two deterministic partitionings pinned,
// in-memory, so responses depend only on the build pipeline.
func goldenServer(t *testing.T) *httptest.Server {
	t.Helper()
	fairIdx, zipIdx := buildTwoPartitionings(t)
	reg := registry.New(registry.WithDefault("la-fair"))
	if err := reg.AddIndex("la-fair", fairIdx); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddIndex("la-zip", zipIdx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg))
	t.Cleanup(ts.Close)
	return ts
}

// rawPost returns the exact response bytes of one POST.
func rawPost(t *testing.T, client *http.Client, url, body string) []byte {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, blob)
	}
	return blob
}

// checkWireGolden compares one response against its committed fixture,
// or rewrites the fixture under FAIRINDEX_REGEN=1.
func checkWireGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("FAIRINDEX_REGEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing wire golden (run with FAIRINDEX_REGEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: response bytes differ from pre-redesign golden\n got: %s\nwant: %s", name, got, want)
	}
}

// TestWireGoldenStats pins the legacy /v1/stats response byte for
// byte: requests that do not opt into metric selection must keep the
// exact pre-redesign shape and float formatting.
func TestWireGoldenStats(t *testing.T) {
	ts := goldenServer(t)
	got := rawPost(t, ts.Client(), ts.URL+"/v1/stats", goldenStatsBody)
	checkWireGolden(t, goldenStatsFile, got)
}

// TestWireGoldenCompare pins the legacy /v1/compare stats-mode
// response — including the per-index fairness deltas — byte for byte.
func TestWireGoldenCompare(t *testing.T) {
	ts := goldenServer(t)
	got := rawPost(t, ts.Client(), ts.URL+"/v1/compare", goldenCompareBody)
	checkWireGolden(t, goldenCompareFile, got)
}
