package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// benchServer lazily builds the paper-sized LA index and an HTTP
// server over it, shared by the serving benchmarks.
var benchServer = sync.OnceValues(func() (*httptest.Server, error) {
	ds, err := dataset.Generate(dataset.LA(), geo.MustGrid(64, 64))
	if err != nil {
		return nil, err
	}
	idx, err := fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodFairKD),
		fairindex.WithHeight(8),
		fairindex.WithSeed(11))
	if err != nil {
		return nil, err
	}
	return httptest.NewServer(New(idx)), nil
})

// benchBatchBody builds a JSON locate_batch body of n points drawn
// from the LA records.
func benchBatchBody(b *testing.B, n int) []byte {
	b.Helper()
	ds, err := dataset.Generate(dataset.LA(), geo.MustGrid(64, 64))
	if err != nil {
		b.Fatal(err)
	}
	req := locateBatchRequest{Lats: make([]float64, n), Lons: make([]float64, n)}
	for i := 0; i < n; i++ {
		rec := &ds.Records[i%ds.Len()]
		req.Lats[i] = rec.Lat
		req.Lons[i] = rec.Lon
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// BenchmarkServerLocateBatch measures the full HTTP round trip of a
// 1000-point batch: JSON decode, sharded lookup, JSON encode — the
// serving hot path end to end over a keep-alive connection.
func BenchmarkServerLocateBatch(b *testing.B) {
	ts, err := benchServer()
	if err != nil {
		b.Fatal(err)
	}
	body := benchBatchBody(b, 1000)
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/locate_batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServerLocate measures the single-point HTTP lookup round
// trip.
func BenchmarkServerLocate(b *testing.B) {
	ts, err := benchServer()
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	url := ts.URL + "/v1/locate?lat=34.05&lon=-118.25"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
