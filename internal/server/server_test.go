package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// buildIndex builds a small LA index once per option set.
func buildIndex(t *testing.T, opts ...fairindex.Option) (*fairindex.Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 400
	ds, err := dataset.Generate(spec, geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		opts = []fairindex.Option{fairindex.WithHeight(4), fairindex.WithSeed(7)}
	}
	idx, err := fairindex.Build(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

// writeIndexFile marshals idx into dir and returns the file path.
func writeIndexFile(t *testing.T, idx *fairindex.Index, dir, name string) string {
	t.Helper()
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// postJSON posts a JSON body and decodes the JSON response into out.
func postJSON(t *testing.T, client *http.Client, url string, body string, out any) int {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// getJSON fetches a URL and decodes the JSON response into out.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding response: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestServerEndToEnd is the full build→marshal→serve→query round
// trip: every endpoint answered over real HTTP against an index
// restored from its own bytes, with lookups bit-identical to the
// in-process Index.
func TestServerEndToEnd(t *testing.T) {
	idx, ds := buildIndex(t)
	path := writeIndexFile(t, idx, t.TempDir(), "city.fidx")
	srv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// healthz reflects the loaded artifact.
	var health healthzResponse
	if code := getJSON(t, client, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Regions != idx.NumRegions() || health.Dataset != ds.Name {
		t.Errorf("healthz = %+v", health)
	}

	// GET and POST locate match the in-process index on every record.
	for i := 0; i < 40; i++ {
		rec := ds.Records[i]
		want, err := idx.Locate(rec.Lat, rec.Lon)
		if err != nil {
			t.Fatal(err)
		}
		var got locateResponse
		url := fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", ts.URL, rec.Lat, rec.Lon)
		if code := getJSON(t, client, url, &got); code != http.StatusOK {
			t.Fatalf("locate status %d", code)
		}
		if got.Region != want {
			t.Fatalf("record %d: GET region %d, want %d", i, got.Region, want)
		}
		body := fmt.Sprintf(`{"lat":%v,"lon":%v}`, rec.Lat, rec.Lon)
		if code := postJSON(t, client, ts.URL+"/v1/locate", body, &got); code != http.StatusOK {
			t.Fatalf("locate POST status %d", code)
		}
		if got.Region != want {
			t.Fatalf("record %d: POST region %d, want %d", i, got.Region, want)
		}
	}

	// Batch lookup equals the in-process batch, point for point.
	n := 100
	req := locateBatchRequest{Lats: make([]float64, n), Lons: make([]float64, n)}
	for i := 0; i < n; i++ {
		req.Lats[i] = ds.Records[i%ds.Len()].Lat
		req.Lons[i] = ds.Records[i%ds.Len()].Lon
	}
	want, err := idx.LocateBatch(req.Lats, req.Lons)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(req)
	var batch locateBatchResponse
	if code := postJSON(t, client, ts.URL+"/v1/locate_batch", string(body), &batch); code != http.StatusOK {
		t.Fatalf("locate_batch status %d", code)
	}
	if len(batch.Regions) != n || batch.Invalid != 0 || batch.Error != "" {
		t.Fatalf("batch response %+v", batch)
	}
	for i := range want {
		if batch.Regions[i] != want[i] {
			t.Fatalf("batch point %d: %d != in-process %d", i, batch.Regions[i], want[i])
		}
	}

	// Score matches the in-process calibrated score.
	rec := ds.Records[3]
	wantScore, err := idx.Score(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	feat, _ := json.Marshal(rec.X)
	var score scoreResponse
	scoreBody := fmt.Sprintf(`{"task":0,"lat":%v,"lon":%v,"features":%s}`, rec.Lat, rec.Lon, feat)
	if code := postJSON(t, client, ts.URL+"/v1/score", scoreBody, &score); code != http.StatusOK {
		t.Fatalf("score status %d", code)
	}
	if score.Score != wantScore {
		t.Errorf("score %v != in-process %v", score.Score, wantScore)
	}
	wantRegion, _ := idx.Locate(rec.Lat, rec.Lon)
	if score.Region != wantRegion {
		t.Errorf("score region %d != %d", score.Region, wantRegion)
	}

	// The stored report round-trips with NaN-able ratios as null.
	var rep map[string]any
	if code := getJSON(t, client, ts.URL+"/v1/report/0", &rep); code != http.StatusOK {
		t.Fatalf("report status %d", code)
	}
	wantRep, err := idx.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep["ence"].(float64); got != wantRep.ENCE {
		t.Errorf("report ENCE %v != %v", got, wantRep.ENCE)
	}
	if rep["task_name"] != wantRep.TaskName {
		t.Errorf("report task_name %v != %v", rep["task_name"], wantRep.TaskName)
	}
	if code := getJSON(t, client, ts.URL+"/v1/report/99", nil); code != http.StatusNotFound {
		t.Errorf("report 99 status %d, want 404", code)
	}
	if code := getJSON(t, client, ts.URL+"/v1/report/abc", nil); code != http.StatusBadRequest {
		t.Errorf("report abc status %d, want 400", code)
	}
}

// TestServerReportNaNRatios pins the JSON sanitation: a report whose
// calibration ratio is NaN must serve as null, not fail to encode.
func TestServerReportNaNRatios(t *testing.T) {
	out, err := json.Marshal(newReportResponse(fairindex.TaskResult{
		TaskName:      "t",
		TrainCalRatio: math.NaN(),
		TestCalRatio:  math.Inf(1),
		ENCE:          0.25,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if m["train_cal_ratio"] != nil || m["test_cal_ratio"] != nil {
		t.Errorf("NaN/Inf ratios not nulled: %v, %v", m["train_cal_ratio"], m["test_cal_ratio"])
	}
	if m["ence"].(float64) != 0.25 {
		t.Errorf("finite field mangled: %v", m["ence"])
	}
}

// TestServerBadRequests covers malformed JSON, wrong-arity batches
// and oversized batches.
func TestServerBadRequests(t *testing.T) {
	idx, _ := buildIndex(t)
	srv := New(idx, WithMaxBatch(100))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"locate malformed", "/v1/locate", `{"lat":`, http.StatusBadRequest},
		{"locate unknown field", "/v1/locate", `{"lat":1,"lon":2,"bogus":3}`, http.StatusBadRequest},
		{"locate trailing garbage", "/v1/locate", `{"lat":1,"lon":2}{"lat":3}`, http.StatusBadRequest},
		{"locate non-finite", "/v1/locate", `{"lat":1e999,"lon":2}`, http.StatusBadRequest},
		{"batch malformed", "/v1/locate_batch", `not json`, http.StatusBadRequest},
		{"batch wrong arity", "/v1/locate_batch", `{"lats":[1,2,3],"lons":[1,2]}`, http.StatusBadRequest},
		{"batch empty", "/v1/locate_batch", `{"lats":[],"lons":[]}`, http.StatusBadRequest},
		{"batch wrong types", "/v1/locate_batch", `{"lats":["a"],"lons":[1]}`, http.StatusBadRequest},
		{"score malformed", "/v1/score", `{{`, http.StatusBadRequest},
		{"score bad task", "/v1/score", `{"task":42,"lat":1,"lon":2,"features":[1,2,3]}`, http.StatusNotFound},
		{"score wrong feature arity", "/v1/score", `{"task":0,"lat":34,"lon":-118,"features":[1]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBody errorResponse
			code := postJSON(t, client, ts.URL+tc.url, tc.body, &errBody)
			if code != tc.want {
				t.Errorf("status %d, want %d (error %q)", code, tc.want, errBody.Error)
			}
			if errBody.Error == "" {
				t.Error("error response carries no message")
			}
		})
	}

	// Oversized batch → 413.
	big := locateBatchRequest{Lats: make([]float64, 101), Lons: make([]float64, 101)}
	body, _ := json.Marshal(big)
	if code := postJSON(t, client, ts.URL+"/v1/locate_batch", string(body), nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status %d, want 413", code)
	}

	// Wrong method → 405 from the method-scoped mux patterns.
	resp, err := client.Get(ts.URL + "/v1/locate_batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET locate_batch status %d, want 405", resp.StatusCode)
	}

	// Reload without a backing path → 409.
	if code := postJSON(t, client, ts.URL+"/v1/reload", ``, nil); code != http.StatusConflict {
		t.Errorf("pathless reload status %d, want 409", code)
	}
}

// TestServerBatchRejectsNonFiniteJSON: JSON cannot carry NaN/Inf, and
// an overflowing literal must be a 400, not a silently-wrong lookup.
// (The sentinel-region path itself is covered at the index level by
// TestIndexLocateBatchPartialErrors; the handler's Invalid accounting
// is defensive depth behind the decoder.)
func TestServerBatchRejectsNonFiniteJSON(t *testing.T) {
	idx, ds := buildIndex(t)
	ts := httptest.NewServer(New(idx))
	defer ts.Close()

	body := fmt.Sprintf(`{"lats":[%v,1e999],"lons":[%v,%v]}`,
		ds.Records[0].Lat, ds.Records[0].Lon, ds.Records[1].Lon)
	var errBody errorResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/locate_batch", body, &errBody); code != http.StatusBadRequest {
		t.Errorf("overflowing literal status %d, want 400 (%q)", code, errBody.Error)
	}
}

// TestServerHotReloadUnderLoad hammers /v1/locate_batch from many
// goroutines while the index file is rewritten and hot-reloaded —
// run under -race this is the serving subsystem's central safety
// proof: every response is internally consistent with one of the two
// index generations, and no request ever errors.
func TestServerHotReloadUnderLoad(t *testing.T) {
	idxA, ds := buildIndex(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	idxB, _ := buildIndex(t, fairindex.WithHeight(6), fairindex.WithSeed(2))
	if idxA.NumRegions() == idxB.NumRegions() {
		t.Fatalf("want distinguishable generations, both have %d regions", idxA.NumRegions())
	}
	dir := t.TempDir()
	path := writeIndexFile(t, idxA, dir, "city.fidx")
	srv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Precompute per-generation expectations.
	n := 64
	req := locateBatchRequest{Lats: make([]float64, n), Lons: make([]float64, n)}
	for i := 0; i < n; i++ {
		req.Lats[i] = ds.Records[i%ds.Len()].Lat
		req.Lons[i] = ds.Records[i%ds.Len()].Lon
	}
	wantA, err := idxA.LocateBatch(req.Lats, req.Lons)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := idxB.LocateBatch(req.Lats, req.Lons)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(req)

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Post(ts.URL+"/v1/locate_batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var batch locateBatchResponse
				err = json.NewDecoder(resp.Body).Decode(&batch)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				matches := func(want []int) bool {
					for j := range want {
						if batch.Regions[j] != want[j] {
							return false
						}
					}
					return true
				}
				if !matches(wantA) && !matches(wantB) {
					errs <- fmt.Errorf("response matches neither index generation: %v", batch.Regions[:8])
					return
				}
			}
		}()
	}

	// Concurrently flip the file between generations and hot-reload
	// via both the endpoint and the direct method. All failures go
	// through errs — t.Fatal must not be called off the test
	// goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := ts.Client()
		for i := 0; i < 20; i++ {
			idx := idxA
			if i%2 == 0 {
				idx = idxB
			}
			blob, err := idx.MarshalBinary()
			if err != nil {
				errs <- err
				return
			}
			if err := os.WriteFile(filepath.Join(dir, "city.fidx"), blob, 0o644); err != nil {
				errs <- err
				return
			}
			if i%2 == 0 {
				resp, err := client.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader(``))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reload status %d", resp.StatusCode)
					return
				}
			} else if err := srv.Reload(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Reloads() < 20 {
		t.Errorf("reloads = %d, want >= 20", srv.Reloads())
	}

	// After the dust settles the server serves exactly the last
	// generation written.
	last := srv.Index()
	if last.NumRegions() != idxA.NumRegions() && last.NumRegions() != idxB.NumRegions() {
		t.Errorf("final index has %d regions, matching neither generation", last.NumRegions())
	}
}

// TestServerSwapKeepsOldRequestsSafe pins the invariant that Swap
// returns the previous index intact (an in-flight request may still
// be reading it).
func TestServerSwapKeepsOldRequestsSafe(t *testing.T) {
	idxA, ds := buildIndex(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	idxB, _ := buildIndex(t, fairindex.WithHeight(5), fairindex.WithSeed(2))
	srv := New(idxA)
	old := srv.Swap(idxB)
	if old != idxA {
		t.Fatal("Swap did not return the previous index")
	}
	// The old index still answers.
	rec := ds.Records[0]
	if _, err := old.Locate(rec.Lat, rec.Lon); err != nil {
		t.Fatal(err)
	}
	if srv.Index() != idxB {
		t.Fatal("Swap did not install the new index")
	}
	if srv.Reloads() != 1 {
		t.Errorf("reloads = %d", srv.Reloads())
	}
}

// TestOpenErrors: missing and corrupt index files fail Open cleanly.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.fidx")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.fidx")
	if err := os.WriteFile(bad, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("expected error for corrupt file")
	}
}

// TestReloadKeepsServingOnFailure: a reload pointing at a corrupt
// file must leave the live index untouched.
func TestReloadKeepsServingOnFailure(t *testing.T) {
	idx, _ := buildIndex(t)
	dir := t.TempDir()
	path := writeIndexFile(t, idx, dir, "city.fidx")
	srv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("expected reload error for corrupt file")
	}
	if srv.Index().NumRegions() != idx.NumRegions() {
		t.Error("failed reload disturbed the served index")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/reload", ``, nil); code != http.StatusInternalServerError {
		t.Errorf("reload endpoint status %d, want 500", code)
	}
}

// TestServerQueryEndpoints drives /v1/range, /v1/knn and /v1/stats
// end to end against the library's own query results.
func TestServerQueryEndpoints(t *testing.T) {
	idx, _ := buildIndex(t)
	srv := New(idx)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	box := idx.Box()

	// Range: a quadrant window must match RangeQuery exactly.
	midLat := (box.MinLat + box.MaxLat) / 2
	midLon := (box.MinLon + box.MaxLon) / 2
	body := fmt.Sprintf(`{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}`,
		box.MinLat, box.MinLon, midLat, midLon)
	var rr rangeResponse
	if code := postJSON(t, client, ts.URL+"/v1/range", body, &rr); code != http.StatusOK {
		t.Fatalf("range status %d", code)
	}
	want, err := idx.RangeQuery(fairindex.BBox{MinLat: box.MinLat, MinLon: box.MinLon, MaxLat: midLat, MaxLon: midLon})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Count != len(want) || len(rr.Regions) != len(want) {
		t.Fatalf("range returned %d regions, want %d", rr.Count, len(want))
	}
	for i, ov := range want {
		got := rr.Regions[i]
		if got.Region != ov.Region || got.Cells != ov.Cells || got.Fraction != ov.Fraction {
			t.Fatalf("range region %d: %+v, want %+v", i, got, ov)
		}
	}

	// kNN via GET and POST agree with NearestRegions.
	wantN, err := idx.NearestRegions(midLat, midLon, 3)
	if err != nil {
		t.Fatal(err)
	}
	var kg, kp knnResponse
	if code := getJSON(t, client, fmt.Sprintf("%s/v1/knn?lat=%v&lon=%v&k=3", ts.URL, midLat, midLon), &kg); code != http.StatusOK {
		t.Fatalf("knn GET status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/knn", fmt.Sprintf(`{"lat":%v,"lon":%v,"k":3}`, midLat, midLon), &kp); code != http.StatusOK {
		t.Fatalf("knn POST status %d", code)
	}
	for i, nd := range wantN {
		if kg.Neighbors[i].Region != nd.Region || kg.Neighbors[i].Distance != nd.Distance {
			t.Fatalf("knn GET neighbor %d = %+v, want %+v", i, kg.Neighbors[i], nd)
		}
		if kp.Neighbors[i] != kg.Neighbors[i] {
			t.Fatalf("knn GET and POST disagree at %d", i)
		}
	}

	// Stats by explicit region list.
	regions := []int{want[0].Region}
	ws, err := idx.GroupStats(0, regions)
	if err != nil {
		t.Fatal(err)
	}
	var sr statsResponse
	if code := postJSON(t, client, ts.URL+"/v1/stats", fmt.Sprintf(`{"task":0,"regions":[%d]}`, regions[0]), &sr); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if sr.Count != ws.Count || float64(sr.ENCE) != ws.ENCE || len(sr.Regions) != 1 {
		t.Fatalf("stats = %+v, want aggregate of %+v", sr, ws)
	}

	// Stats by rectangle resolve through RangeQuery first.
	var sr2 statsResponse
	if code := postJSON(t, client, ts.URL+"/v1/stats", fmt.Sprintf(`{"task":0,"rect":%s}`, body), &sr2); code != http.StatusOK {
		t.Fatalf("stats-by-rect status %d", code)
	}
	ids := make([]int, len(want))
	for i, ov := range want {
		ids[i] = ov.Region
	}
	wantW, err := idx.GroupStats(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Count != wantW.Count || float64(sr2.ENCE) != wantW.ENCE || len(sr2.Regions) != len(wantW.Regions) {
		t.Fatalf("stats-by-rect = %+v, want aggregate over %v", sr2, ids)
	}
}

// TestServerQueryBadRequests pins the edge-case contract of the query
// endpoints: malformed rectangles, k=0 and capability conflicts.
func TestServerQueryBadRequests(t *testing.T) {
	idx, _ := buildIndex(t)
	srv := New(idx, WithMaxBatch(8))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	box := idx.Box()

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"range inverted rect", "/v1/range",
			fmt.Sprintf(`{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}`, box.MaxLat, box.MinLon, box.MinLat, box.MaxLon),
			http.StatusBadRequest},
		{"range non-numeric corner", "/v1/range",
			`{"min_lat":"south","min_lon":0,"max_lat":1,"max_lon":1}`,
			http.StatusBadRequest},
		{"range unknown field", "/v1/range", `{"min_lat":0,"bogus":1}`, http.StatusBadRequest},
		{"knn k=0", "/v1/knn", `{"lat":34,"lon":-118,"k":0}`, http.StatusBadRequest},
		{"knn negative k", "/v1/knn", `{"lat":34,"lon":-118,"k":-2}`, http.StatusBadRequest},
		{"knn k beyond cap", "/v1/knn", `{"lat":34,"lon":-118,"k":9}`, http.StatusRequestEntityTooLarge},
		{"stats no window", "/v1/stats", `{"task":0}`, http.StatusBadRequest},
		{"stats both windows", "/v1/stats",
			`{"task":0,"regions":[0],"rect":{"min_lat":0,"min_lon":0,"max_lat":1,"max_lon":1}}`,
			http.StatusBadRequest},
		{"stats duplicate region", "/v1/stats", `{"task":0,"regions":[1,1]}`, http.StatusBadRequest},
		{"stats region out of range", "/v1/stats", `{"task":0,"regions":[99999]}`, http.StatusBadRequest},
		{"stats unknown task", "/v1/stats", `{"task":42,"regions":[0]}`, http.StatusNotFound},
		{"stats window beyond cap", "/v1/stats", `{"task":0,"regions":[0,1,2,3,4,5,6,7,8]}`, http.StatusRequestEntityTooLarge},
		{"stats rect window beyond cap", "/v1/stats",
			fmt.Sprintf(`{"task":0,"rect":{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}}`,
				box.MinLat, box.MinLon, box.MaxLat, box.MaxLon), // full box >> 8 regions
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errResp errorResponse
			if code := postJSON(t, client, ts.URL+tc.url, tc.body, &errResp); code != tc.want {
				t.Fatalf("status %d, want %d (error %q)", code, tc.want, errResp.Error)
			}
			if errResp.Error == "" {
				t.Error("error body missing")
			}
		})
	}

	// GET /v1/knn parameter validation.
	if code := getJSON(t, client, ts.URL+"/v1/knn?lat=34&lon=-118", nil); code != http.StatusBadRequest {
		t.Errorf("missing k: status %d, want 400", code)
	}
	if code := getJSON(t, client, ts.URL+"/v1/knn?lat=34&lon=-118&k=abc", nil); code != http.StatusBadRequest {
		t.Errorf("non-numeric k: status %d, want 400", code)
	}

	// An empty window (rect off the map) aggregates to zero, not 400;
	// NaN calibration ratio serializes as null.
	raw, err := client.Post(ts.URL+"/v1/stats", "application/json",
		strings.NewReader(fmt.Sprintf(`{"task":0,"rect":{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}}`,
			box.MaxLat+1, box.MinLon, box.MaxLat+2, box.MaxLon)))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	blob, err := io.ReadAll(raw.Body)
	if err != nil {
		t.Fatal(err)
	}
	if raw.StatusCode != http.StatusOK {
		t.Fatalf("empty-window stats status %d: %s", raw.StatusCode, blob)
	}
	if !strings.Contains(string(blob), `"cal_ratio":null`) {
		t.Errorf("empty window should have null cal_ratio, got %s", blob)
	}
}

// TestServerAppendEndpoint drives the ingestion maintenance surface
// over real HTTP: append folds records into the default (and named)
// entry, the response reports drift, and /v1/indexes surfaces the
// live counters.
func TestServerAppendEndpoint(t *testing.T) {
	spec := dataset.LA()
	spec.NumRecords = 440
	all, err := dataset.Generate(spec, geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	build := &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: all.Records[:400],
	}
	idx, err := fairindex.Build(build, fairindex.WithHeight(4), fairindex.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SetDriftThreshold(1e-12); err != nil {
		t.Fatal(err)
	}
	srv := New(idx)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	appendBody := func(recs []dataset.Record) string {
		type rec struct {
			ID       string    `json:"id"`
			Lat      float64   `json:"lat"`
			Lon      float64   `json:"lon"`
			Features []float64 `json:"features"`
			Labels   []int     `json:"labels"`
		}
		rows := make([]rec, len(recs))
		for i, r := range recs {
			rows[i] = rec{ID: r.ID, Lat: r.Lat, Lon: r.Lon, Features: r.X, Labels: r.Labels}
		}
		blob, err := json.Marshal(map[string]any{"records": rows})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	var resp struct {
		Index              string  `json:"index"`
		Appended           int     `json:"appended"`
		Total              int     `json:"total"`
		Drift              float64 `json:"drift"`
		RebuildRecommended bool    `json:"rebuild_recommended"`
		Tasks              []struct {
			Task  int     `json:"task"`
			ENCE  float64 `json:"ence"`
			Drift float64 `json:"drift"`
		} `json:"tasks"`
	}
	if code := postJSON(t, client, ts.URL+"/v1/append", appendBody(all.Records[400:420]), &resp); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	if resp.Index != DefaultIndexName || resp.Appended != 20 || resp.Total != 20 {
		t.Fatalf("append response %+v", resp)
	}
	if resp.Drift <= 0 || !resp.RebuildRecommended || len(resp.Tasks) == 0 {
		t.Fatalf("append drift fields %+v", resp)
	}
	// The named route hits the same entry.
	if code := postJSON(t, client, ts.URL+"/v1/i/"+DefaultIndexName+"/append", appendBody(all.Records[420:]), &resp); code != http.StatusOK {
		t.Fatalf("named append status %d", code)
	}
	if resp.Total != 40 {
		t.Fatalf("named append total %d, want 40", resp.Total)
	}
	// In-process view agrees with the HTTP response.
	if idx.Appended() != 40 {
		t.Errorf("Appended() = %d, want 40", idx.Appended())
	}

	// The catalog listing surfaces the live counters.
	var listing struct {
		Indexes []struct {
			Name               string  `json:"name"`
			Appended           int     `json:"appended"`
			Drift              float64 `json:"drift"`
			RebuildRecommended bool    `json:"rebuild_recommended"`
		} `json:"indexes"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/indexes", &listing); code != http.StatusOK {
		t.Fatalf("indexes status %d", code)
	}
	if len(listing.Indexes) != 1 {
		t.Fatalf("%d catalog entries", len(listing.Indexes))
	}
	e := listing.Indexes[0]
	if e.Appended != 40 || e.Drift <= 0 || !e.RebuildRecommended {
		t.Errorf("listing entry %+v", e)
	}
}

func TestServerAppendBadRequests(t *testing.T) {
	idx, ds := buildIndex(t)
	srv := New(idx, WithMaxBatch(2))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	rec := func(r dataset.Record) string {
		blob, _ := json.Marshal(map[string]any{
			"id": r.ID, "lat": r.Lat, "lon": r.Lon, "features": r.X, "labels": r.Labels,
		})
		return string(blob)
	}
	r0 := rec(ds.Records[0])

	cases := []struct {
		name string
		url  string
		body string
		code int
	}{
		{"empty batch", "/v1/append", `{"records":[]}`, http.StatusBadRequest},
		{"malformed json", "/v1/append", `{"records":`, http.StatusBadRequest},
		{"over max batch", "/v1/append", `{"records":[` + r0 + `,` + r0 + `,` + r0 + `]}`, http.StatusRequestEntityTooLarge},
		{"unknown index", "/v1/i/nope/append", `{"records":[` + r0 + `]}`, http.StatusNotFound},
		{"wrong arity", "/v1/append", `{"records":[{"lat":34,"lon":-118,"features":[],"labels":[1]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := postJSON(t, client, ts.URL+tc.url, tc.body, nil); code != tc.code {
				t.Errorf("status %d, want %d", code, tc.code)
			}
		})
	}
	if idx.Appended() != 0 {
		t.Errorf("bad requests folded %d records", idx.Appended())
	}
}
