// Package server turns fairindex.Index artifacts into an always-on
// HTTP/JSON lookup service: the online half of the build-once /
// query-many split. A build box trains indexes and ships the .fidx
// bytes; this server loads them and answers point→neighborhood,
// batch, scoring, report, range, k-nearest-region and window
// fairness-stats queries under concurrent load.
//
// One process serves many indexes: requests address a specific
// artifact through the /v1/i/{index}/... routes (e.g. a fair and a
// zipcode partitioning of the same city side by side), /v1/indexes
// lists the catalog (including each entry's live calibration drift),
// and /v1/compare runs one locate or window-stats request against
// several named indexes and reports their fairness deltas. POST
// .../append folds new records into a resident index's per-region
// statistics and reports the drift they caused. The unprefixed single-index routes of earlier versions
// (/v1/locate, ...) stay wired to the catalog's default entry.
//
// Concurrency model: an Index is immutable and lock-free for readers,
// and the backing registry resolves a name with one atomic catalog
// load plus one atomic entry load — so every request binds to exactly
// one index generation and no lock is ever taken on the request path.
// Requests in flight during a hot reload finish against the index
// they started with, and no request ever observes a half-swapped
// artifact. Reload (the /v1/reload endpoint, or SIGHUP via
// ReloadOnSignal) rescans the artifact directory and re-reads every
// resident index off the request path, swapping each entry only after
// its new bytes fully deserialize and validate; per-entry failures
// keep that entry serving its previous index.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	fairindex "fairindex"
	"fairindex/internal/rebuild"
	"fairindex/internal/registry"
)

// DefaultMaxBatch bounds /v1/locate_batch request size (points per
// request) unless overridden with WithMaxBatch.
const DefaultMaxBatch = 1 << 20

// maxBodyBytes caps request bodies; a full-size batch of float64
// pairs in JSON stays well under this.
const maxBodyBytes = 64 << 20

// DefaultIndexName is the registry entry name the single-index
// constructors (New, Open) register their artifact under.
const DefaultIndexName = "default"

// maxCompareIndexes bounds how many indexes one /v1/compare request
// may fan out to.
const maxCompareIndexes = 16

// Server serves fairness-aware spatial indexes over HTTP. Create one
// with New or Open (single index, backward compatible) or NewMulti /
// OpenDir (a whole catalog), then use it as an http.Handler. All
// methods are safe for concurrent use.
type Server struct {
	reg       *registry.Registry
	mux       *http.ServeMux
	path      string // single-index mode: file backing the default entry
	maxBatch  int
	logger    *log.Logger
	started   time.Time
	reloads   atomic.Int64
	rebuilder atomic.Pointer[rebuild.Controller]
}

// Option configures a Server.
type Option func(*Server)

// WithPath sets the index file the default entry reloads from in
// single-index mode. Open sets it automatically; NewMulti/OpenDir
// ignore it (entries carry their own paths).
func WithPath(path string) Option {
	return func(s *Server) { s.path = path }
}

// WithMaxBatch caps the number of points one /v1/locate_batch request
// may carry (default DefaultMaxBatch).
func WithMaxBatch(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithLogger routes request-path warnings (reload failures) to l; the
// default discards nothing and writes to the standard logger.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithRebuilder attaches a drift-rebuild controller: POST
// .../rebuild kicks it asynchronously and GET /v1/indexes reports
// each entry's rebuild state. The caller owns the controller's
// lifecycle (Bind to subscribe it to drift, Close on shutdown).
// Without one, rebuild routes answer 501 and the index listing is
// byte-identical to earlier releases.
func WithRebuilder(c *rebuild.Controller) Option {
	return func(s *Server) { s.SetRebuilder(c) }
}

// SetRebuilder attaches (or, with nil, detaches) the rebuild
// controller after construction — for callers that build the server
// first and the controller from its Registry(). The pointer is
// atomic, so attaching while requests are in flight is safe.
func (s *Server) SetRebuilder(c *rebuild.Controller) { s.rebuilder.Store(c) }

// newServer applies options and wires the route table.
func newServer(opts ...Option) *Server {
	s := &Server{
		maxBatch: DefaultMaxBatch,
		logger:   log.Default(),
		started:  time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/indexes", s.handleIndexes)
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/i/{index}/reload", s.handleReloadOne)
	s.mux.HandleFunc("POST /v1/rebuild", s.handleRebuild)
	s.mux.HandleFunc("POST /v1/i/{index}/rebuild", s.handleRebuild)
	// Every data route exists twice: unprefixed against the default
	// entry, and under /v1/i/{index}/ against a named one. The handler
	// is shared; resolveIndex picks the entry from the path.
	for _, p := range []string{"/v1", "/v1/i/{index}"} {
		s.mux.HandleFunc("GET "+p+"/locate", s.handleLocate)
		s.mux.HandleFunc("POST "+p+"/locate", s.handleLocate)
		s.mux.HandleFunc("POST "+p+"/locate_batch", s.handleLocateBatch)
		s.mux.HandleFunc("POST "+p+"/score", s.handleScore)
		s.mux.HandleFunc("GET "+p+"/report/{task}", s.handleReport)
		s.mux.HandleFunc("POST "+p+"/range", s.handleRange)
		s.mux.HandleFunc("GET "+p+"/knn", s.handleKNN)
		s.mux.HandleFunc("POST "+p+"/knn", s.handleKNN)
		s.mux.HandleFunc("GET "+p+"/stats", s.handleStats)
		s.mux.HandleFunc("POST "+p+"/stats", s.handleStats)
		s.mux.HandleFunc("POST "+p+"/append", s.handleAppend)
	}
	return s
}

// New returns a single-index Server serving idx as the default entry.
func New(idx *fairindex.Index, opts ...Option) *Server {
	s := newServer(opts...)
	s.reg = registry.New(registry.WithLogger(s.logger), registry.WithDefault(DefaultIndexName))
	if s.path != "" {
		// File-backed default entry: /v1/reload re-reads the file.
		// SetIndex seeds the already-loaded artifact without counting
		// a phantom reload at boot.
		if err := s.reg.Add(DefaultIndexName, s.path); err != nil {
			panic("server: registering default entry: " + err.Error()) // fresh registry, cannot collide
		}
		s.reg.SetIndex(DefaultIndexName, idx)
	} else if err := s.reg.AddIndex(DefaultIndexName, idx); err != nil {
		panic("server: registering default entry: " + err.Error())
	}
	return s
}

// Open loads a serialized index from path and returns a single-index
// Server with hot reload from that path enabled.
func Open(path string, opts ...Option) (*Server, error) {
	idx, err := fairindex.LoadIndex(path)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return New(idx, append([]Option{WithPath(path)}, opts...)...), nil
}

// NewMulti returns a Server over an externally configured registry:
// the caller chooses the entries, the default and the residency
// bound.
func NewMulti(reg *registry.Registry, opts ...Option) *Server {
	s := newServer(opts...)
	s.reg = reg
	return s
}

// OpenDir returns a Server over every *.fidx artifact in dir,
// discovered now and on each reload/SIGHUP rescan. Entries load
// lazily on first use; regOpts configure the registry (e.g.
// registry.WithMaxLoaded, registry.WithDefault).
func OpenDir(dir string, regOpts []registry.Option, opts ...Option) (*Server, error) {
	s := newServer(opts...)
	reg, err := registry.Open(dir, append([]registry.Option{registry.WithLogger(s.logger)}, regOpts...)...)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.reg = reg
	return s, nil
}

// Registry returns the backing index catalog.
func (s *Server) Registry() *registry.Registry { return s.reg }

// Index returns the currently served default index, or nil when the
// catalog has no resolvable default entry.
func (s *Server) Index() *fairindex.Index {
	idx, err := s.reg.Default()
	if err != nil {
		return nil
	}
	return idx
}

// Swap atomically replaces the served default index and returns the
// previous one. In-flight requests keep using the index they loaded.
func (s *Server) Swap(idx *fairindex.Index) *fairindex.Index {
	name := s.reg.DefaultName()
	if name == "" {
		return nil
	}
	old, err := s.reg.Swap(name, idx)
	if err != nil {
		return nil
	}
	s.reloads.Add(1)
	return old
}

// Reloads returns how many times the server successfully reloaded or
// swapped indexes (per-entry counts are in /v1/indexes).
func (s *Server) Reloads() int64 { return s.reloads.Load() }

// ErrNoReloadPath reports a Reload on a Server with neither an
// artifact directory nor any file-backed entry to re-read.
var ErrNoReloadPath = errors.New("server: no index path configured for reload")

// Reload refreshes the whole catalog: rescan the artifact directory
// (new files become available entries, removed ones are dropped),
// then re-read every resident file-backed entry. Each entry keeps
// serving its old index until its new bytes fully deserialize; on any
// per-entry error that entry is left untouched and the joined error
// is returned.
func (s *Server) Reload() error {
	if err := s.reg.Rescan(); err != nil {
		return err
	}
	if s.reg.Dir() == "" && !s.hasFileBackedEntry() {
		return ErrNoReloadPath
	}
	if err := s.reg.ReloadLoaded(); err != nil {
		return err
	}
	s.reloads.Add(1)
	return nil
}

// hasFileBackedEntry reports whether any entry can be re-read from
// disk.
func (s *Server) hasFileBackedEntry() bool {
	for _, info := range s.reg.List() {
		if info.Path != "" {
			return true
		}
	}
	return false
}

// ReloadOnSignal reloads the catalog on every SIGHUP until ctx is
// done — the conventional zero-downtime refresh: rebuild or add .fidx
// files in place, then `kill -HUP` the server. Reload failures are
// logged and the previous indexes keep serving.
func (s *Server) ReloadOnSignal(ctx context.Context) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				if err := s.Reload(); err != nil {
					s.logger.Printf("server: SIGHUP reload failed, keeping current indexes: %v", err)
				} else {
					s.logger.Printf("server: reloaded catalog (%d entries, %d resident)",
						s.reg.Len(), s.reg.LoadedCount())
				}
			}
		}
	}()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// resolveIndex binds a request to one index generation: the {index}
// path segment when present (named route), the catalog default
// otherwise. A non-nil error has already been written to w. On
// success the response carries the bound generation's fingerprint in
// the GenerationHeader, so a scatter-gather router can verify every
// fanned-out answer came from the artifact its manifest expects.
func (s *Server) resolveIndex(w http.ResponseWriter, r *http.Request) (*fairindex.Index, bool) {
	name := r.PathValue("index")
	var (
		idx *fairindex.Index
		err error
	)
	if name != "" {
		idx, err = s.reg.Lookup(name)
	} else {
		idx, err = s.reg.Default()
	}
	if err != nil {
		s.writeRegistryError(w, err)
		return nil, false
	}
	s.setGeneration(w, idx)
	return idx, true
}

// GenerationHeader is the response header naming the served artifact's
// generation: the decimal fairindex.Fingerprint of the index a data
// request bound to. The shard router (internal/router) compares it
// against the manifest's expected fingerprint on every per-shard
// response; headers, unlike bodies, survive identically across every
// endpoint shape, which is why the token rides here.
const GenerationHeader = "Fairindex-Generation"

// setGeneration stamps the bound index's fingerprint on the response.
// Fingerprint errors leave the header absent — a router treats a
// missing token the same as a mismatched one.
func (s *Server) setGeneration(w http.ResponseWriter, idx *fairindex.Index) {
	fp, err := idx.Fingerprint()
	if err != nil {
		s.logger.Printf("server: fingerprinting served index: %v", err)
		return
	}
	w.Header().Set(GenerationHeader, strconv.FormatUint(fp, 10))
}

// writeRegistryError maps catalog resolution errors onto HTTP
// statuses: an unknown name is 404, a missing default is a 409
// conflict with the server's configuration, and a failing artifact
// load is the server's fault (502: the artifact store handed us bad
// bytes).
func (s *Server) writeRegistryError(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	switch {
	case errors.Is(err, registry.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, registry.ErrNoDefault):
		status = http.StatusConflict
	}
	s.writeError(w, status, err)
}

// Wire types. Field names are the API contract documented in README
// §Serving.

type locateRequest struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

type locateResponse struct {
	Region int `json:"region"`
}

type locateBatchRequest struct {
	Lats []float64 `json:"lats"`
	Lons []float64 `json:"lons"`
}

type locateBatchResponse struct {
	Regions []int `json:"regions"`
	// Invalid counts points that resolved to the RegionInvalid
	// sentinel; Error carries the joined per-point detail. Both are
	// omitted when every point resolved.
	Invalid int    `json:"invalid,omitempty"`
	Error   string `json:"error,omitempty"`
}

type scoreRequest struct {
	Task     int       `json:"task"`
	Lat      float64   `json:"lat"`
	Lon      float64   `json:"lon"`
	Features []float64 `json:"features"`
}

type scoreResponse struct {
	Score  float64 `json:"score"`
	Region int     `json:"region"`
}

// rectJSON is the wire form of a geographic query rectangle.
type rectJSON struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

type rangeRequest = rectJSON

type regionOverlapJSON struct {
	Region   int     `json:"region"`
	Cells    int     `json:"cells"`
	Fraction float64 `json:"fraction"`
}

type rangeResponse struct {
	// Regions intersecting the window, ascending region id; empty
	// (not an error) when the window misses the index's bounding box.
	Regions []regionOverlapJSON `json:"regions"`
	Count   int                 `json:"count"`
}

type knnRequest struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	K   int     `json:"k"`
	// Squared requests squared centroid distances instead of the
	// default Euclidean ones. Per-shard candidate lists merge exactly
	// in squared space (sqrt can collapse distinct squared distances
	// onto equal floats, reordering the id tie-break), so the shard
	// router always queries backends with squared set.
	Squared bool `json:"squared,omitempty"`
}

type neighborDistJSON struct {
	Region   int     `json:"region"`
	Distance float64 `json:"distance"`
}

type knnResponse struct {
	Neighbors []neighborDistJSON `json:"neighbors"`
	// Squared echoes the request flag so a reader of the stored
	// response knows which space Distance lives in; omitted (legacy
	// bytes) for default Euclidean responses.
	Squared bool `json:"squared,omitempty"`
}

// statsRequest selects the window either as an explicit region list
// (e.g. piped from /v1/range or /v1/knn output) or as a rectangle
// resolved through RangeQuery — exactly one of the two. Metrics
// optionally names registered fairness metrics to evaluate over the
// window: absent keeps the legacy response shape, an empty list
// requests every registered metric, and unknown names are a 400.
type statsRequest struct {
	Task    int       `json:"task"`
	Regions []int     `json:"regions,omitempty"`
	Rect    *rectJSON `json:"rect,omitempty"`
	Metrics []string  `json:"metrics,omitempty"`
	// Sums requests each region's raw additive sufficient statistics
	// (sum_score, sum_label) alongside the derived ratios — what a
	// scatter-gather merger needs to reassemble exact window aggregates
	// across shards. Absent keeps the legacy response bytes unchanged.
	Sums bool `json:"sums,omitempty"`
}

type regionStatJSON struct {
	Region   int       `json:"region"`
	Count    int       `json:"count"`
	MeanConf jsonFloat `json:"mean_conf"`
	PosRate  jsonFloat `json:"pos_rate"`
	Miscal   jsonFloat `json:"miscal"`
	CalRatio jsonFloat `json:"cal_ratio"`
	// SumScore and SumLabel are the region's raw additive sufficient
	// statistics, present only when the request set "sums". Always
	// finite, and encoding/json's shortest-round-trip float encoding
	// preserves their exact bits across the wire.
	SumScore *float64 `json:"sum_score,omitempty"`
	SumLabel *float64 `json:"sum_label,omitempty"`
}

type statsResponse struct {
	Task     int       `json:"task"`
	Count    int       `json:"count"`
	MeanConf jsonFloat `json:"mean_conf"`
	PosRate  jsonFloat `json:"pos_rate"`
	Miscal   jsonFloat `json:"miscal"`
	CalRatio jsonFloat `json:"cal_ratio"`
	ENCE     jsonFloat `json:"ence"`
	// Metrics holds the requested fairness metrics over the window
	// (metric name → value); present only when the request named them,
	// so legacy response bytes are unchanged.
	Metrics map[string]jsonFloat `json:"metrics,omitempty"`
	Regions []regionStatJSON     `json:"regions"`
}

// appendRequest carries a batch of new records for POST .../append.
// Each record needs coordinates, the index's full feature vector and
// one 0/1 label per index task — the same shape the build ingested.
type appendRequest struct {
	Records []appendRecordJSON `json:"records"`
}

type appendRecordJSON struct {
	ID       string    `json:"id,omitempty"`
	Lat      float64   `json:"lat"`
	Lon      float64   `json:"lon"`
	Features []float64 `json:"features"`
	Labels   []int     `json:"labels"`
}

type taskDriftJSON struct {
	Task  int       `json:"task"`
	ENCE  jsonFloat `json:"ence"`
	Drift jsonFloat `json:"drift"`
	// Live value and drift of every monitored fairness metric (ENCE
	// plus each metric with an armed threshold); present only when a
	// metric beyond ENCE is monitored.
	Metrics map[string]jsonFloat `json:"metrics,omitempty"`
	Drifts  map[string]jsonFloat `json:"drifts,omitempty"`
}

type appendResponse struct {
	Index    string          `json:"index"`
	Appended int             `json:"appended"`
	Total    int             `json:"total"`
	Tasks    []taskDriftJSON `json:"tasks"`
	Drift    jsonFloat       `json:"drift"`
	// Drifts is the max per-task drift of every monitored metric;
	// present only when a metric beyond ENCE is monitored.
	Drifts map[string]jsonFloat `json:"drifts,omitempty"`
	// RebuildRecommended reports whether the fold pushed any armed
	// metric's drift past its threshold; false whenever no threshold
	// is armed.
	RebuildRecommended bool `json:"rebuild_recommended"`
}

type healthzResponse struct {
	Status    string `json:"status"`
	Dataset   string `json:"dataset,omitempty"`
	Method    string `json:"method,omitempty"`
	Regions   int    `json:"regions,omitempty"`
	Tasks     []int  `json:"tasks,omitempty"`
	Indexes   int    `json:"indexes"`
	Loaded    int    `json:"loaded"`
	Reloads   int64  `json:"reloads"`
	UptimeSec int64  `json:"uptime_sec"`
}

type reloadResponse struct {
	Reloads int64 `json:"reloads"`
	Regions int   `json:"regions,omitempty"`
	Indexes int   `json:"indexes"`
	Loaded  int   `json:"loaded"`
}

type reloadOneResponse struct {
	Index   string `json:"index"`
	Reloads int64  `json:"reloads"`
	Regions int    `json:"regions"`
}

// indexInfoJSON is one /v1/indexes catalog entry; the artifact fields
// (codec_version, regions, ...) are present only while the entry is
// resident.
type indexInfoJSON struct {
	Name         string `json:"name"`
	State        string `json:"state"`
	Default      bool   `json:"default,omitempty"`
	Pinned       bool   `json:"pinned,omitempty"`
	Path         string `json:"path,omitempty"`
	CodecVersion int    `json:"codec_version,omitempty"`
	Regions      int    `json:"regions,omitempty"`
	Dataset      string `json:"dataset,omitempty"`
	Method       string `json:"method,omitempty"`
	Tasks        []int  `json:"tasks,omitempty"`
	Reloads      int64  `json:"reloads,omitempty"`
	// Maintenance surface: records folded in by append since this
	// generation loaded, the max per-task calibration drift those
	// folds produced, and whether it crossed the armed threshold.
	Appended           int     `json:"appended,omitempty"`
	Drift              float64 `json:"drift,omitempty"`
	RebuildRecommended bool    `json:"rebuild_recommended,omitempty"`
	// Drifts is the live drift of every metric with an armed
	// threshold; absent when only the legacy ENCE monitor runs.
	Drifts map[string]jsonFloat `json:"drifts,omitempty"`
	Error  string               `json:"error,omitempty"`
	// Rebuild is the entry's rebuild-controller state; present only
	// when a controller is attached (WithRebuilder), so catalogs
	// without one keep the legacy response bytes.
	Rebuild *rebuildStateJSON `json:"rebuild,omitempty"`
}

// rebuildStateJSON is one entry's rebuild lifecycle state: idle /
// building / promoted / refused / failed, plus the evidence behind
// the latest terminal state.
type rebuildStateJSON struct {
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// LastPromoted is the wall time of the most recent promotion
	// (RFC 3339); absent before the first one.
	LastPromoted string `json:"last_promoted,omitempty"`
	// RefusalDeltas maps each metric that blocked the most recent
	// candidate to its worst badness regression over the probe grid.
	RefusalDeltas map[string]jsonFloat `json:"refusal_deltas,omitempty"`
	// NextRetry is the scheduled backoff retry after a build failure
	// (RFC 3339); absent when none is pending.
	NextRetry string `json:"next_retry,omitempty"`
}

// rebuildStateOf converts a controller status to the wire form.
func rebuildStateOf(st rebuild.Status) *rebuildStateJSON {
	out := &rebuildStateJSON{
		State:    st.State,
		Attempts: st.Attempts,
		Error:    st.LastErr,
	}
	if !st.LastPromoted.IsZero() {
		out.LastPromoted = st.LastPromoted.UTC().Format(time.RFC3339)
	}
	if !st.NextRetry.IsZero() {
		out.NextRetry = st.NextRetry.UTC().Format(time.RFC3339)
	}
	if len(st.RefusalDeltas) > 0 {
		// Not metricMapJSON: that helper drops ence-only maps for
		// legacy byte-compat, and a refusal is very often ence-only.
		out.RefusalDeltas = make(map[string]jsonFloat, len(st.RefusalDeltas))
		for name, v := range st.RefusalDeltas {
			out.RefusalDeltas[name] = jsonFloat(v)
		}
	}
	return out
}

// rebuildResponse acknowledges an asynchronous rebuild kick.
type rebuildResponse struct {
	Index string `json:"index"`
	// Started is false when a rebuild for the entry was already in
	// flight — the request coalesced into it instead of queueing.
	Started bool              `json:"started"`
	Rebuild *rebuildStateJSON `json:"rebuild"`
}

type indexesResponse struct {
	Default   string          `json:"default,omitempty"`
	MaxLoaded int             `json:"max_loaded,omitempty"`
	Loaded    int             `json:"loaded"`
	Indexes   []indexInfoJSON `json:"indexes"`
}

// compareRequest fans one request out to several named indexes.
// Exactly one mode: locate (lat+lon) resolves the same point in every
// index; stats (task + rect or regions) aggregates the same window in
// every index and reports fairness deltas against the first-named
// baseline. A rect window is resolved through each index's own
// RangeQuery — the same ground rectangle, each index's own
// neighborhoods — which is the meaningful cross-partitioning
// comparison; an explicit region-id list is applied verbatim to every
// index and only makes sense when the indexes share a partitioning.
type compareRequest struct {
	Indexes []string  `json:"indexes"`
	Lat     *float64  `json:"lat,omitempty"`
	Lon     *float64  `json:"lon,omitempty"`
	Task    *int      `json:"task,omitempty"`
	Regions []int     `json:"regions,omitempty"`
	Rect    *rectJSON `json:"rect,omitempty"`
	// Metrics optionally names fairness metrics to evaluate in every
	// index and difference against the baseline (stats mode only).
	// Same semantics as statsRequest.Metrics: absent keeps the legacy
	// shape, an empty list means all registered metrics.
	Metrics []string `json:"metrics,omitempty"`
}

// fairnessDeltaJSON is one index's window-stats delta against the
// compare baseline (index minus baseline; negative ENCE delta = this
// index is better calibrated over the window).
type fairnessDeltaJSON struct {
	ENCE     jsonFloat `json:"ence"`
	Miscal   jsonFloat `json:"miscal"`
	CalRatio jsonFloat `json:"cal_ratio"`
	MeanConf jsonFloat `json:"mean_conf"`
	PosRate  jsonFloat `json:"pos_rate"`
	// Metrics holds per-metric deltas (index minus baseline) for each
	// requested fairness metric; present only when the request named
	// them.
	Metrics map[string]jsonFloat `json:"metrics,omitempty"`
}

type compareEntryJSON struct {
	Name   string             `json:"name"`
	Region *int               `json:"region,omitempty"`
	Stats  *statsResponse     `json:"stats,omitempty"`
	Delta  *fairnessDeltaJSON `json:"delta,omitempty"`
}

type compareResponse struct {
	Op       string             `json:"op"`
	Baseline string             `json:"baseline,omitempty"`
	Indexes  []compareEntryJSON `json:"indexes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// jsonFloat is THE wire encoder for every metric value the server
// emits — stats, compare deltas, drift reports, per-region detail and
// the /v1/indexes maintenance fields all route float values through
// it. The fairness-metric contract (fairindex.Metric, docs/METRICS.md)
// reserves NaN as the single "undefined" sentinel — a calibration
// ratio with no positives, an Atkinson index over an empty window, a
// drift against a metric the build never measured — and encoding/json
// rejects non-finite values, so jsonFloat marshals NaN (and the
// infinities, which some metrics use for "unboundedly bad") as null.
// Clients therefore read null as "undefined here", never 0. Any new
// endpoint field carrying a metric value must use this type rather
// than float64 so the sentinel convention stays uniform across the
// API.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// neighborhoodJSON is the wire form of one per-neighborhood report
// entry.
type neighborhoodJSON struct {
	Group    int       `json:"group"`
	Count    int       `json:"count"`
	Ratio    jsonFloat `json:"ratio"`
	Miscal   jsonFloat `json:"miscal"`
	ECE      jsonFloat `json:"ece"`
	PosRate  jsonFloat `json:"pos_rate"`
	MeanConf jsonFloat `json:"mean_conf"`
}

// reportResponse is the wire form of a stored TaskResult.
type reportResponse struct {
	Task             int                `json:"task"`
	TaskName         string             `json:"task_name"`
	ENCE             jsonFloat          `json:"ence"`
	ENCETrain        jsonFloat          `json:"ence_train"`
	ENCETest         jsonFloat          `json:"ence_test"`
	Accuracy         jsonFloat          `json:"accuracy"`
	AUC              jsonFloat          `json:"auc"`
	TrainMiscal      jsonFloat          `json:"train_miscal"`
	TestMiscal       jsonFloat          `json:"test_miscal"`
	ECE              jsonFloat          `json:"ece"`
	TrainCalRatio    jsonFloat          `json:"train_cal_ratio"`
	TestCalRatio     jsonFloat          `json:"test_cal_ratio"`
	StatParityGap    jsonFloat          `json:"stat_parity_gap"`
	EqualOddsGap     jsonFloat          `json:"equal_odds_gap"`
	TopNeighborhoods []neighborhoodJSON `json:"top_neighborhoods"`
	ImportanceNames  []string           `json:"importance_names,omitempty"`
	ImportanceValues []jsonFloat        `json:"importance_values,omitempty"`
}

// newReportResponse converts a stored report into its wire form.
func newReportResponse(tr fairindex.TaskResult) reportResponse {
	out := reportResponse{
		Task:          tr.Task,
		TaskName:      tr.TaskName,
		ENCE:          jsonFloat(tr.ENCE),
		ENCETrain:     jsonFloat(tr.ENCETrain),
		ENCETest:      jsonFloat(tr.ENCETest),
		Accuracy:      jsonFloat(tr.Accuracy),
		AUC:           jsonFloat(tr.AUC),
		TrainMiscal:   jsonFloat(tr.TrainMiscal),
		TestMiscal:    jsonFloat(tr.TestMiscal),
		ECE:           jsonFloat(tr.ECE),
		TrainCalRatio: jsonFloat(tr.TrainCalRatio),
		TestCalRatio:  jsonFloat(tr.TestCalRatio),
		StatParityGap: jsonFloat(tr.StatParityGap),
		EqualOddsGap:  jsonFloat(tr.EqualOddsGap),
	}
	for _, nr := range tr.TopNeighborhoods {
		out.TopNeighborhoods = append(out.TopNeighborhoods, neighborhoodJSON{
			Group:    nr.Group,
			Count:    nr.Count,
			Ratio:    jsonFloat(nr.Ratio),
			Miscal:   jsonFloat(nr.Miscal),
			ECE:      jsonFloat(nr.ECE),
			PosRate:  jsonFloat(nr.PosRate),
			MeanConf: jsonFloat(nr.MeanConf),
		})
	}
	out.ImportanceNames = tr.ImportanceNames
	for _, v := range tr.ImportanceValues {
		out.ImportanceValues = append(out.ImportanceValues, jsonFloat(v))
	}
	return out
}

// writeJSON writes v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("server: writing response: %v", err)
	}
}

// writeError writes a JSON error body.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeJSON strictly decodes a single JSON object request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	// A second document (or trailing garbage) is a malformed request.
	if dec.More() {
		return errors.New("invalid JSON body: trailing data")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:    "ok",
		Indexes:   s.reg.Len(),
		Loaded:    s.reg.LoadedCount(),
		Reloads:   s.reloads.Load(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
	}
	// The default-entry summary is best effort: a catalog without a
	// default (or whose default fails to load) is still healthy as
	// long as the process answers.
	if idx, err := s.reg.Default(); err == nil {
		resp.Dataset = idx.DatasetName()
		resp.Method = idx.Method().String()
		resp.Regions = idx.NumRegions()
		resp.Tasks = idx.Tasks()
		s.setGeneration(w, idx)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	def := s.reg.DefaultName()
	infos := s.reg.List()
	resp := indexesResponse{
		Default:   def,
		MaxLoaded: s.reg.MaxLoaded(),
		Loaded:    s.reg.LoadedCount(),
		Indexes:   make([]indexInfoJSON, len(infos)),
	}
	for i, info := range infos {
		resp.Indexes[i] = indexInfoJSON{
			Name:         info.Name,
			State:        info.State,
			Default:      info.Name == def,
			Pinned:       info.Pinned,
			Path:         info.Path,
			CodecVersion: info.CodecVersion,
			Regions:      info.Regions,
			Dataset:      info.Dataset,
			Method:       info.Method,
			Tasks:        info.Tasks,
			Reloads:      info.Reloads,
			Error:        info.LastErr,
		}
		resp.Indexes[i].Appended = info.Appended
		resp.Indexes[i].Drift = info.Drift
		resp.Indexes[i].RebuildRecommended = info.RebuildRecommended
		resp.Indexes[i].Drifts = metricMapJSON(info.Drifts)
		if rb := s.rebuilder.Load(); rb != nil {
			resp.Indexes[i].Rebuild = rebuildStateOf(rb.Status(info.Name))
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleRebuild kicks an asynchronous drift rebuild of one entry and
// answers 202 immediately — the build, gate and promotion run in the
// controller; poll GET /v1/indexes for the outcome. Single-flight: a
// kick while a rebuild is running coalesces ("started": false).
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	rb := s.rebuilder.Load()
	if rb == nil {
		s.writeError(w, http.StatusNotImplemented, errors.New("no rebuild controller attached"))
		return
	}
	name := r.PathValue("index")
	if name == "" {
		if name = s.reg.DefaultName(); name == "" {
			s.writeRegistryError(w, registry.ErrNoDefault)
			return
		}
	}
	if _, ok := s.reg.Info(name); !ok {
		s.writeRegistryError(w, fmt.Errorf("%w: %q", registry.ErrNotFound, name))
		return
	}
	started := rb.Kick(name)
	s.writeJSON(w, http.StatusAccepted, rebuildResponse{
		Index:   name,
		Started: started,
		Rebuild: rebuildStateOf(rb.Status(name)),
	})
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	var req locateRequest
	if r.Method == http.MethodGet {
		var err error
		if req.Lat, err = queryFloat(r, "lat"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Lon, err = queryFloat(r, "lon"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	} else if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	region, err := idx.Locate(req.Lat, req.Lon)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, locateResponse{Region: region})
}

// queryFloat parses a required float query parameter.
func queryFloat(r *http.Request, key string) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %v", key, err)
	}
	return f, nil
}

// regionsPool recycles the per-request /v1/locate_batch region
// buffers: batches run up to maxBatch points, so allocating a fresh
// result slice per request makes the batch hot path a steady GC
// burden under load. Buffers are returned after the response is fully
// serialized — LocateBatchInto overwrites every element, so a dirty
// buffer is safe to reuse.
var regionsPool = sync.Pool{New: func() any { return new([]int) }}

func (s *Server) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	var req locateBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Lats) != len(req.Lons) {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d lats vs %d lons", len(req.Lats), len(req.Lons)))
		return
	}
	if len(req.Lats) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Lats) > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d points exceeds limit %d", len(req.Lats), s.maxBatch))
		return
	}
	// One catalog resolution per request: the whole batch resolves
	// against a single index snapshot even if a reload lands
	// mid-request.
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	buf := regionsPool.Get().(*[]int)
	defer regionsPool.Put(buf)
	regions := *buf
	if cap(regions) < len(req.Lats) {
		regions = make([]int, len(req.Lats))
	} else {
		regions = regions[:len(req.Lats)]
	}
	*buf = regions
	err := idx.LocateBatchInto(regions, req.Lats, req.Lons)
	resp := locateBatchResponse{Regions: regions}
	if err != nil {
		// Per-point failures are not a request failure: every valid
		// point resolved, sentinels mark the rest.
		resp.Error = err.Error()
		for _, region := range regions {
			if region == fairindex.RegionInvalid {
				resp.Invalid++
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	// Locate first: it is the only part that can fail on coordinates,
	// so Score below cannot fail for a reason Locate already accepted.
	region, err := idx.Locate(req.Lat, req.Lon)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rec := fairindex.Record{Lat: req.Lat, Lon: req.Lon, X: req.Features}
	score, err := idx.Score(rec, req.Task)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fairindex.ErrNoTask) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, scoreResponse{Score: score, Region: region})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	task, err := strconv.Atoi(r.PathValue("task"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("task id %q: %v", r.PathValue("task"), err))
		return
	}
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	rep, err := idx.Report(task)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, fairindex.ErrNoTask) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, newReportResponse(rep))
}

// writeQueryError maps query-engine errors onto HTTP statuses:
// malformed queries are the client's fault, an unknown task is 404
// and a pre-v2 artifact without region stats is a 409 conflict with
// the served index's capabilities.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, fairindex.ErrNoTask):
		status = http.StatusNotFound
	case errors.Is(err, fairindex.ErrNoRegionStats):
		status = http.StatusConflict
	}
	s.writeError(w, status, err)
}

// handleAppend folds a batch of records into the resolved index's
// live per-region statistics (Index.AppendBatch through the registry,
// so the drift hook can fire) and reports the resulting calibration
// drift. Appends address an index generation by name; the unprefixed
// route targets the catalog default.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Records) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Records) > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d records exceeds limit %d", len(req.Records), s.maxBatch))
		return
	}
	name := r.PathValue("index")
	if name == "" {
		if name = s.reg.DefaultName(); name == "" {
			s.writeRegistryError(w, registry.ErrNoDefault)
			return
		}
	}
	recs := make([]fairindex.Record, len(req.Records))
	for i, rr := range req.Records {
		recs[i] = fairindex.Record{ID: rr.ID, Lat: rr.Lat, Lon: rr.Lon, X: rr.Features, Labels: rr.Labels}
	}
	res, err := s.reg.Append(name, recs)
	if err != nil {
		if errors.Is(err, registry.ErrNotFound) || errors.Is(err, registry.ErrNoDefault) {
			s.writeRegistryError(w, err)
			return
		}
		s.writeQueryError(w, err)
		return
	}
	resp := appendResponse{
		Index:              name,
		Appended:           res.Appended,
		Total:              res.Total,
		Drift:              jsonFloat(res.Drift),
		Drifts:             metricMapJSON(res.Drifts),
		RebuildRecommended: res.RebuildRecommended,
	}
	for _, td := range res.Tasks {
		resp.Tasks = append(resp.Tasks, taskDriftJSON{
			Task: td.Task, ENCE: jsonFloat(td.ENCE), Drift: jsonFloat(td.Drift),
			Metrics: metricMapJSON(td.Metrics), Drifts: metricMapJSON(td.Drifts),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// metricMapJSON converts a per-metric map to the wire form, dropping
// the map entirely when it carries nothing beyond the ENCE view the
// legacy fields already report — so responses from indexes with no
// per-metric monitoring are byte-identical to earlier releases.
func metricMapJSON(m map[string]float64) map[string]jsonFloat {
	if len(m) == 0 {
		return nil
	}
	if _, ok := m["ence"]; ok && len(m) == 1 {
		return nil
	}
	out := make(map[string]jsonFloat, len(m))
	for name, v := range m {
		out[name] = jsonFloat(v)
	}
	return out
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	overlaps, err := idx.RangeQuery(fairindex.BBox{
		MinLat: req.MinLat, MinLon: req.MinLon,
		MaxLat: req.MaxLat, MaxLon: req.MaxLon,
	})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp := rangeResponse{Regions: make([]regionOverlapJSON, len(overlaps)), Count: len(overlaps)}
	for i, ov := range overlaps {
		resp.Regions[i] = regionOverlapJSON{Region: ov.Region, Cells: ov.Cells, Fraction: ov.Fraction}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if r.Method == http.MethodGet {
		var err error
		if req.Lat, err = queryFloat(r, "lat"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Lon, err = queryFloat(r, "lon"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		raw := r.URL.Query().Get("k")
		if raw == "" {
			s.writeError(w, http.StatusBadRequest, errors.New("missing query parameter \"k\""))
			return
		}
		if req.K, err = strconv.Atoi(raw); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"k\": %v", err))
			return
		}
		if raw := r.URL.Query().Get("squared"); raw != "" {
			if req.Squared, err = strconv.ParseBool(raw); err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"squared\": %v", err))
				return
			}
		}
	} else if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.K > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("k of %d exceeds limit %d", req.K, s.maxBatch))
		return
	}
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	var (
		neighbors []fairindex.RegionDistance
		err       error
	)
	if req.Squared {
		neighbors, err = idx.NearestRegionsSquared(req.Lat, req.Lon, req.K)
	} else {
		neighbors, err = idx.NearestRegions(req.Lat, req.Lon, req.K)
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp := knnResponse{Neighbors: make([]neighborDistJSON, len(neighbors)), Squared: req.Squared}
	for i, nd := range neighbors {
		resp.Neighbors[i] = neighborDistJSON{Region: nd.Region, Distance: nd.Distance}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// windowStats aggregates one window (explicit region list, or a rect
// resolved through the index's own RangeQuery) against one index. It
// is shared by /v1/stats and /v1/compare, so both endpoints enforce
// the same window cap and produce the same wire shape. metrics
// selects additional fairness metrics per statsRequest.Metrics
// semantics: nil for the legacy shape, empty for all registered;
// sums adds each region's raw sufficient statistics per
// statsRequest.Sums.
func (s *Server) windowStats(idx *fairindex.Index, task int, regionList []int, rect *rectJSON, metrics []string, sums bool) (*statsResponse, int, error) {
	regions := regionList
	if rect != nil {
		overlaps, err := idx.RangeQuery(fairindex.BBox{
			MinLat: rect.MinLat, MinLon: rect.MinLon,
			MaxLat: rect.MaxLat, MaxLon: rect.MaxLon,
		})
		if err != nil {
			return nil, 0, err
		}
		regions = make([]int, len(overlaps))
		for i, ov := range overlaps {
			regions[i] = ov.Region
		}
	}
	// Cap the window after rect resolution so a rectangle cannot
	// smuggle in a larger window than an explicit region list may.
	if len(regions) > s.maxBatch {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("window of %d regions exceeds limit %d", len(regions), s.maxBatch)
	}
	var (
		ws  fairindex.WindowStats
		err error
	)
	if metrics != nil {
		ws, err = idx.GroupStatsMetrics(task, regions, metrics...)
	} else {
		ws, err = idx.GroupStats(task, regions)
	}
	if err != nil {
		return nil, 0, err
	}
	resp := &statsResponse{
		Task:     ws.Task,
		Count:    ws.Count,
		MeanConf: jsonFloat(ws.MeanConf),
		PosRate:  jsonFloat(ws.PosRate),
		Miscal:   jsonFloat(ws.Miscal),
		CalRatio: jsonFloat(ws.CalRatio),
		ENCE:     jsonFloat(ws.ENCE),
		Regions:  make([]regionStatJSON, len(ws.Regions)),
	}
	if ws.Metrics != nil {
		resp.Metrics = make(map[string]jsonFloat, len(ws.Metrics))
		for name, v := range ws.Metrics {
			resp.Metrics[name] = jsonFloat(v)
		}
	}
	for i, rs := range ws.Regions {
		resp.Regions[i] = regionStatJSON{
			Region:   rs.Region,
			Count:    rs.Count,
			MeanConf: jsonFloat(rs.MeanConf),
			PosRate:  jsonFloat(rs.PosRate),
			Miscal:   jsonFloat(rs.Miscal),
			CalRatio: jsonFloat(rs.CalRatio),
		}
		if sums {
			sc, sl := rs.SumScore, rs.SumLabel
			resp.Regions[i].SumScore = &sc
			resp.Regions[i].SumLabel = &sl
		}
	}
	return resp, 0, nil
}

// writeStatsError routes windowStats failures: an explicit status
// (the window cap) wins, anything else is a query-engine error.
func (s *Server) writeStatsError(w http.ResponseWriter, status int, err error) {
	if status != 0 {
		s.writeError(w, status, err)
		return
	}
	s.writeQueryError(w, err)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var req statsRequest
	if r.Method == http.MethodGet {
		if !s.statsRequestFromQuery(w, r, &req) {
			return
		}
	} else if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Regions == nil) == (req.Rect == nil) {
		s.writeError(w, http.StatusBadRequest,
			errors.New("exactly one of \"regions\" and \"rect\" must be given"))
		return
	}
	// One catalog resolution: the rect resolution and the stats
	// aggregation must see the same index generation.
	idx, ok := s.resolveIndex(w, r)
	if !ok {
		return
	}
	resp, status, err := s.windowStats(idx, req.Task, req.Regions, req.Rect, req.Metrics, req.Sums)
	if err != nil {
		s.writeStatsError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, *resp)
}

// statsRequestFromQuery parses the GET form of /v1/stats: ?task=N,
// the window as either regions=1,2,3 or rect=minLat,minLon,maxLat,
// maxLon, optionally metrics=ence,stat_parity (metrics= alone, i.e.
// present but empty, selects every registered metric), and optionally
// sums=true for raw per-region sufficient statistics. Reports
// whether parsing succeeded; on failure the 400 has been written.
func (s *Server) statsRequestFromQuery(w http.ResponseWriter, r *http.Request, req *statsRequest) bool {
	q := r.URL.Query()
	if raw := q.Get("task"); raw != "" {
		task, err := strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"task\": %v", err))
			return false
		}
		req.Task = task
	}
	if raw := q.Get("regions"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"regions\": %v", err))
				return false
			}
			req.Regions = append(req.Regions, v)
		}
	}
	if raw := q.Get("rect"); raw != "" {
		fields := strings.Split(raw, ",")
		if len(fields) != 4 {
			s.writeError(w, http.StatusBadRequest,
				errors.New("query parameter \"rect\": want minLat,minLon,maxLat,maxLon"))
			return false
		}
		var vals [4]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"rect\": %v", err))
				return false
			}
			vals[i] = v
		}
		req.Rect = &rectJSON{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}
	}
	if raw, ok := q["metrics"]; ok {
		req.Metrics = []string{} // present: empty selects all registered
		for _, part := range raw {
			for _, f := range strings.Split(part, ",") {
				if f = strings.TrimSpace(f); f != "" {
					req.Metrics = append(req.Metrics, f)
				}
			}
		}
	}
	if raw := q.Get("sums"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"sums\": %v", err))
			return false
		}
		req.Sums = v
	}
	return true
}

// handleCompare fans one request out to N named indexes — the
// side-by-side workload: how does the same point, or the same ground
// window, resolve under alternative fair partitionings of a city?
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Indexes) < 2 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("\"indexes\" must name at least 2 indexes, got %d", len(req.Indexes)))
		return
	}
	if len(req.Indexes) > maxCompareIndexes {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("comparing %d indexes exceeds limit %d", len(req.Indexes), maxCompareIndexes))
		return
	}
	locateMode := req.Lat != nil && req.Lon != nil
	statsMode := req.Task != nil && (req.Regions != nil) != (req.Rect != nil)
	if locateMode == statsMode {
		s.writeError(w, http.StatusBadRequest, errors.New(
			"exactly one compare mode: locate (\"lat\"+\"lon\") or stats (\"task\" plus one of \"regions\"/\"rect\")"))
		return
	}
	if locateMode && req.Metrics != nil {
		s.writeError(w, http.StatusBadRequest,
			errors.New("\"metrics\" applies to stats mode only"))
		return
	}

	// Bind every index generation up front so one compare response is
	// a consistent snapshot even under concurrent reloads; duplicate
	// names are rejected rather than silently double-counted.
	idxs := make([]*fairindex.Index, len(req.Indexes))
	seen := make(map[string]bool, len(req.Indexes))
	for i, name := range req.Indexes {
		if seen[name] {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("duplicate index %q", name))
			return
		}
		seen[name] = true
		idx, err := s.reg.Lookup(name)
		if err != nil {
			s.writeRegistryError(w, err)
			return
		}
		idxs[i] = idx
	}

	resp := compareResponse{Indexes: make([]compareEntryJSON, len(idxs))}
	if locateMode {
		resp.Op = "locate"
		for i, idx := range idxs {
			region, err := idx.Locate(*req.Lat, *req.Lon)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("index %q: %w", req.Indexes[i], err))
				return
			}
			r := region
			resp.Indexes[i] = compareEntryJSON{Name: req.Indexes[i], Region: &r}
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	resp.Op = "stats"
	resp.Baseline = req.Indexes[0]
	var base *statsResponse
	for i, idx := range idxs {
		stats, status, err := s.windowStats(idx, *req.Task, req.Regions, req.Rect, req.Metrics, false)
		if err != nil {
			s.writeStatsError(w, status, fmt.Errorf("index %q: %w", req.Indexes[i], err))
			return
		}
		entry := compareEntryJSON{Name: req.Indexes[i], Stats: stats}
		if i == 0 {
			base = stats
		} else {
			delta := &fairnessDeltaJSON{
				ENCE:     stats.ENCE - base.ENCE,
				Miscal:   stats.Miscal - base.Miscal,
				CalRatio: stats.CalRatio - base.CalRatio,
				MeanConf: stats.MeanConf - base.MeanConf,
				PosRate:  stats.PosRate - base.PosRate,
			}
			if stats.Metrics != nil {
				delta.Metrics = make(map[string]jsonFloat, len(stats.Metrics))
				for name, v := range stats.Metrics {
					delta.Metrics[name] = v - base.Metrics[name]
				}
			}
			entry.Delta = delta
		}
		resp.Indexes[i] = entry
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoReloadPath) {
			status = http.StatusConflict
		}
		s.writeError(w, status, err)
		return
	}
	resp := reloadResponse{
		Reloads: s.reloads.Load(),
		Indexes: s.reg.Len(),
		Loaded:  s.reg.LoadedCount(),
	}
	if idx := s.Index(); idx != nil {
		resp.Regions = idx.NumRegions()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReloadOne(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("index")
	if err := s.reg.Reload(name); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, registry.ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, registry.ErrNoPath):
			status = http.StatusConflict
		}
		s.writeError(w, status, err)
		return
	}
	s.reloads.Add(1)
	info, ok := s.reg.Info(name)
	if !ok {
		s.writeRegistryError(w, fmt.Errorf("%w: %q", registry.ErrNotFound, name))
		return
	}
	s.writeJSON(w, http.StatusOK, reloadOneResponse{
		Index:   name,
		Reloads: info.Reloads,
		Regions: info.Regions,
	})
}
