// Package server turns a fairindex.Index artifact into an always-on
// HTTP/JSON lookup service: the online half of the build-once /
// query-many split. A build box trains an index and ships the .fidx
// bytes; this server loads them and answers point→neighborhood,
// batch, scoring, report, range, k-nearest-region and window
// fairness-stats queries under concurrent load.
//
// Concurrency model: an Index is immutable and lock-free for readers,
// so the server keeps the current index behind an atomic.Pointer and
// every request loads it exactly once — requests in flight during a
// hot reload finish against the index they started with, and no
// request ever observes a half-swapped artifact. Reload (the /v1/reload
// endpoint, or SIGHUP via ReloadOnSignal) re-reads the index file,
// fully deserializes and validates it off the request path, and only
// then swaps the pointer.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	fairindex "fairindex"
)

// DefaultMaxBatch bounds /v1/locate_batch request size (points per
// request) unless overridden with WithMaxBatch.
const DefaultMaxBatch = 1 << 20

// maxBodyBytes caps request bodies; a full-size batch of float64
// pairs in JSON stays well under this.
const maxBodyBytes = 64 << 20

// Server serves a fairness-aware spatial index over HTTP. Create one
// with New or Open, then use it as an http.Handler. All methods are
// safe for concurrent use.
type Server struct {
	idx      atomic.Pointer[fairindex.Index]
	mux      *http.ServeMux
	path     string // index file backing Reload; "" disables
	maxBatch int
	logger   *log.Logger
	started  time.Time
	reloads  atomic.Int64
	// reloadMu serializes Reload's read+swap so two racing reloads
	// (SIGHUP vs /v1/reload) cannot install the older file last.
	// Readers never take it — they only load the atomic pointer.
	reloadMu sync.Mutex
}

// Option configures a Server.
type Option func(*Server)

// WithPath sets the index file Reload re-reads. Open sets it
// automatically.
func WithPath(path string) Option {
	return func(s *Server) { s.path = path }
}

// WithMaxBatch caps the number of points one /v1/locate_batch request
// may carry (default DefaultMaxBatch).
func WithMaxBatch(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithLogger routes request-path warnings (reload failures) to l; the
// default discards nothing and writes to the standard logger.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// New returns a Server serving idx.
func New(idx *fairindex.Index, opts ...Option) *Server {
	s := &Server{
		maxBatch: DefaultMaxBatch,
		logger:   log.Default(),
		started:  time.Now(),
	}
	s.idx.Store(idx)
	for _, opt := range opts {
		opt(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/locate", s.handleLocate)
	s.mux.HandleFunc("POST /v1/locate", s.handleLocate)
	s.mux.HandleFunc("POST /v1/locate_batch", s.handleLocateBatch)
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("GET /v1/report/{task}", s.handleReport)
	s.mux.HandleFunc("POST /v1/range", s.handleRange)
	s.mux.HandleFunc("GET /v1/knn", s.handleKNN)
	s.mux.HandleFunc("POST /v1/knn", s.handleKNN)
	s.mux.HandleFunc("POST /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	return s
}

// Open loads a serialized index from path and returns a Server with
// hot reload from that path enabled.
func Open(path string, opts ...Option) (*Server, error) {
	idx, err := loadIndexFile(path)
	if err != nil {
		return nil, err
	}
	return New(idx, append([]Option{WithPath(path)}, opts...)...), nil
}

// loadIndexFile reads and deserializes a .fidx file.
func loadIndexFile(path string) (*fairindex.Index, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	idx := new(fairindex.Index)
	if err := idx.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("server: %s: %w", path, err)
	}
	return idx, nil
}

// Index returns the currently served index.
func (s *Server) Index() *fairindex.Index { return s.idx.Load() }

// Swap atomically replaces the served index and returns the previous
// one. In-flight requests keep using the index they loaded.
func (s *Server) Swap(idx *fairindex.Index) *fairindex.Index {
	old := s.idx.Swap(idx)
	s.reloads.Add(1)
	return old
}

// Reloads returns how many times the served index has been swapped.
func (s *Server) Reloads() int64 { return s.reloads.Load() }

// ErrNoReloadPath reports a Reload on a Server constructed without a
// backing index file.
var ErrNoReloadPath = errors.New("server: no index path configured for reload")

// Reload re-reads the backing index file and atomically swaps it in.
// The old index keeps serving until the new one is fully
// deserialized; on any error the served index is left untouched.
func (s *Server) Reload() error {
	if s.path == "" {
		return ErrNoReloadPath
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	idx, err := loadIndexFile(s.path)
	if err != nil {
		return err
	}
	s.Swap(idx)
	return nil
}

// ReloadOnSignal reloads the index on every SIGHUP until ctx is done
// — the conventional zero-downtime refresh: rebuild the .fidx in
// place, then `kill -HUP` the server. Reload failures are logged and
// the previous index keeps serving.
func (s *Server) ReloadOnSignal(ctx context.Context) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				if err := s.Reload(); err != nil {
					s.logger.Printf("server: SIGHUP reload failed, keeping current index: %v", err)
				} else {
					idx := s.Index()
					s.logger.Printf("server: reloaded %s (%d neighborhoods)", s.path, idx.NumRegions())
				}
			}
		}
	}()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Wire types. Field names are the API contract documented in README
// §Serving.

type locateRequest struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

type locateResponse struct {
	Region int `json:"region"`
}

type locateBatchRequest struct {
	Lats []float64 `json:"lats"`
	Lons []float64 `json:"lons"`
}

type locateBatchResponse struct {
	Regions []int `json:"regions"`
	// Invalid counts points that resolved to the RegionInvalid
	// sentinel; Error carries the joined per-point detail. Both are
	// omitted when every point resolved.
	Invalid int    `json:"invalid,omitempty"`
	Error   string `json:"error,omitempty"`
}

type scoreRequest struct {
	Task     int       `json:"task"`
	Lat      float64   `json:"lat"`
	Lon      float64   `json:"lon"`
	Features []float64 `json:"features"`
}

type scoreResponse struct {
	Score  float64 `json:"score"`
	Region int     `json:"region"`
}

// rectJSON is the wire form of a geographic query rectangle.
type rectJSON struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

type rangeRequest = rectJSON

type regionOverlapJSON struct {
	Region   int     `json:"region"`
	Cells    int     `json:"cells"`
	Fraction float64 `json:"fraction"`
}

type rangeResponse struct {
	// Regions intersecting the window, ascending region id; empty
	// (not an error) when the window misses the index's bounding box.
	Regions []regionOverlapJSON `json:"regions"`
	Count   int                 `json:"count"`
}

type knnRequest struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	K   int     `json:"k"`
}

type neighborDistJSON struct {
	Region   int     `json:"region"`
	Distance float64 `json:"distance"`
}

type knnResponse struct {
	Neighbors []neighborDistJSON `json:"neighbors"`
}

// statsRequest selects the window either as an explicit region list
// (e.g. piped from /v1/range or /v1/knn output) or as a rectangle
// resolved through RangeQuery — exactly one of the two.
type statsRequest struct {
	Task    int       `json:"task"`
	Regions []int     `json:"regions,omitempty"`
	Rect    *rectJSON `json:"rect,omitempty"`
}

type regionStatJSON struct {
	Region   int       `json:"region"`
	Count    int       `json:"count"`
	MeanConf jsonFloat `json:"mean_conf"`
	PosRate  jsonFloat `json:"pos_rate"`
	Miscal   jsonFloat `json:"miscal"`
	CalRatio jsonFloat `json:"cal_ratio"`
}

type statsResponse struct {
	Task     int              `json:"task"`
	Count    int              `json:"count"`
	MeanConf jsonFloat        `json:"mean_conf"`
	PosRate  jsonFloat        `json:"pos_rate"`
	Miscal   jsonFloat        `json:"miscal"`
	CalRatio jsonFloat        `json:"cal_ratio"`
	ENCE     jsonFloat        `json:"ence"`
	Regions  []regionStatJSON `json:"regions"`
}

type healthzResponse struct {
	Status    string `json:"status"`
	Dataset   string `json:"dataset"`
	Method    string `json:"method"`
	Regions   int    `json:"regions"`
	Tasks     []int  `json:"tasks"`
	Reloads   int64  `json:"reloads"`
	UptimeSec int64  `json:"uptime_sec"`
}

type reloadResponse struct {
	Reloads int64 `json:"reloads"`
	Regions int   `json:"regions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// jsonFloat marshals non-finite values as null — several report
// fields use NaN as an "undefined" sentinel (e.g. a calibration ratio
// with no positives), which encoding/json would otherwise reject.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// neighborhoodJSON is the wire form of one per-neighborhood report
// entry.
type neighborhoodJSON struct {
	Group    int       `json:"group"`
	Count    int       `json:"count"`
	Ratio    jsonFloat `json:"ratio"`
	Miscal   jsonFloat `json:"miscal"`
	ECE      jsonFloat `json:"ece"`
	PosRate  jsonFloat `json:"pos_rate"`
	MeanConf jsonFloat `json:"mean_conf"`
}

// reportResponse is the wire form of a stored TaskResult.
type reportResponse struct {
	Task             int                `json:"task"`
	TaskName         string             `json:"task_name"`
	ENCE             jsonFloat          `json:"ence"`
	ENCETrain        jsonFloat          `json:"ence_train"`
	ENCETest         jsonFloat          `json:"ence_test"`
	Accuracy         jsonFloat          `json:"accuracy"`
	AUC              jsonFloat          `json:"auc"`
	TrainMiscal      jsonFloat          `json:"train_miscal"`
	TestMiscal       jsonFloat          `json:"test_miscal"`
	ECE              jsonFloat          `json:"ece"`
	TrainCalRatio    jsonFloat          `json:"train_cal_ratio"`
	TestCalRatio     jsonFloat          `json:"test_cal_ratio"`
	StatParityGap    jsonFloat          `json:"stat_parity_gap"`
	EqualOddsGap     jsonFloat          `json:"equal_odds_gap"`
	TopNeighborhoods []neighborhoodJSON `json:"top_neighborhoods"`
	ImportanceNames  []string           `json:"importance_names,omitempty"`
	ImportanceValues []jsonFloat        `json:"importance_values,omitempty"`
}

// newReportResponse converts a stored report into its wire form.
func newReportResponse(tr fairindex.TaskResult) reportResponse {
	out := reportResponse{
		Task:          tr.Task,
		TaskName:      tr.TaskName,
		ENCE:          jsonFloat(tr.ENCE),
		ENCETrain:     jsonFloat(tr.ENCETrain),
		ENCETest:      jsonFloat(tr.ENCETest),
		Accuracy:      jsonFloat(tr.Accuracy),
		AUC:           jsonFloat(tr.AUC),
		TrainMiscal:   jsonFloat(tr.TrainMiscal),
		TestMiscal:    jsonFloat(tr.TestMiscal),
		ECE:           jsonFloat(tr.ECE),
		TrainCalRatio: jsonFloat(tr.TrainCalRatio),
		TestCalRatio:  jsonFloat(tr.TestCalRatio),
		StatParityGap: jsonFloat(tr.StatParityGap),
		EqualOddsGap:  jsonFloat(tr.EqualOddsGap),
	}
	for _, nr := range tr.TopNeighborhoods {
		out.TopNeighborhoods = append(out.TopNeighborhoods, neighborhoodJSON{
			Group:    nr.Group,
			Count:    nr.Count,
			Ratio:    jsonFloat(nr.Ratio),
			Miscal:   jsonFloat(nr.Miscal),
			ECE:      jsonFloat(nr.ECE),
			PosRate:  jsonFloat(nr.PosRate),
			MeanConf: jsonFloat(nr.MeanConf),
		})
	}
	out.ImportanceNames = tr.ImportanceNames
	for _, v := range tr.ImportanceValues {
		out.ImportanceValues = append(out.ImportanceValues, jsonFloat(v))
	}
	return out
}

// writeJSON writes v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("server: writing response: %v", err)
	}
}

// writeError writes a JSON error body.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeJSON strictly decodes a single JSON object request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	// A second document (or trailing garbage) is a malformed request.
	if dec.More() {
		return errors.New("invalid JSON body: trailing data")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	idx := s.idx.Load()
	s.writeJSON(w, http.StatusOK, healthzResponse{
		Status:    "ok",
		Dataset:   idx.DatasetName(),
		Method:    idx.Method().String(),
		Regions:   idx.NumRegions(),
		Tasks:     idx.Tasks(),
		Reloads:   s.reloads.Load(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	var req locateRequest
	if r.Method == http.MethodGet {
		var err error
		if req.Lat, err = queryFloat(r, "lat"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Lon, err = queryFloat(r, "lon"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	} else if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	region, err := s.idx.Load().Locate(req.Lat, req.Lon)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, locateResponse{Region: region})
}

// queryFloat parses a required float query parameter.
func queryFloat(r *http.Request, key string) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %v", key, err)
	}
	return f, nil
}

func (s *Server) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	var req locateBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Lats) != len(req.Lons) {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d lats vs %d lons", len(req.Lats), len(req.Lons)))
		return
	}
	if len(req.Lats) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Lats) > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d points exceeds limit %d", len(req.Lats), s.maxBatch))
		return
	}
	// One atomic load per request: the whole batch resolves against a
	// single index snapshot even if a reload lands mid-request.
	idx := s.idx.Load()
	regions := make([]int, len(req.Lats))
	err := idx.LocateBatchInto(regions, req.Lats, req.Lons)
	resp := locateBatchResponse{Regions: regions}
	if err != nil {
		// Per-point failures are not a request failure: every valid
		// point resolved, sentinels mark the rest.
		resp.Error = err.Error()
		for _, region := range regions {
			if region == fairindex.RegionInvalid {
				resp.Invalid++
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	idx := s.idx.Load()
	// Locate first: it is the only part that can fail on coordinates,
	// so Score below cannot fail for a reason Locate already accepted.
	region, err := idx.Locate(req.Lat, req.Lon)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rec := fairindex.Record{Lat: req.Lat, Lon: req.Lon, X: req.Features}
	score, err := idx.Score(rec, req.Task)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fairindex.ErrNoTask) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, scoreResponse{Score: score, Region: region})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	task, err := strconv.Atoi(r.PathValue("task"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("task id %q: %v", r.PathValue("task"), err))
		return
	}
	rep, err := s.idx.Load().Report(task)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, fairindex.ErrNoTask) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, newReportResponse(rep))
}

// writeQueryError maps query-engine errors onto HTTP statuses:
// malformed queries are the client's fault, an unknown task is 404
// and a pre-v2 artifact without region stats is a 409 conflict with
// the served index's capabilities.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, fairindex.ErrNoTask):
		status = http.StatusNotFound
	case errors.Is(err, fairindex.ErrNoRegionStats):
		status = http.StatusConflict
	}
	s.writeError(w, status, err)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	overlaps, err := s.idx.Load().RangeQuery(fairindex.BBox{
		MinLat: req.MinLat, MinLon: req.MinLon,
		MaxLat: req.MaxLat, MaxLon: req.MaxLon,
	})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp := rangeResponse{Regions: make([]regionOverlapJSON, len(overlaps)), Count: len(overlaps)}
	for i, ov := range overlaps {
		resp.Regions[i] = regionOverlapJSON{Region: ov.Region, Cells: ov.Cells, Fraction: ov.Fraction}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if r.Method == http.MethodGet {
		var err error
		if req.Lat, err = queryFloat(r, "lat"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Lon, err = queryFloat(r, "lon"); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		raw := r.URL.Query().Get("k")
		if raw == "" {
			s.writeError(w, http.StatusBadRequest, errors.New("missing query parameter \"k\""))
			return
		}
		if req.K, err = strconv.Atoi(raw); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"k\": %v", err))
			return
		}
	} else if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.K > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("k of %d exceeds limit %d", req.K, s.maxBatch))
		return
	}
	neighbors, err := s.idx.Load().NearestRegions(req.Lat, req.Lon, req.K)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp := knnResponse{Neighbors: make([]neighborDistJSON, len(neighbors))}
	for i, nd := range neighbors {
		resp.Neighbors[i] = neighborDistJSON{Region: nd.Region, Distance: nd.Distance}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var req statsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Regions == nil) == (req.Rect == nil) {
		s.writeError(w, http.StatusBadRequest,
			errors.New("exactly one of \"regions\" and \"rect\" must be given"))
		return
	}
	// One atomic load: the rect resolution and the stats aggregation
	// must see the same index generation.
	idx := s.idx.Load()
	regions := req.Regions
	if req.Rect != nil {
		overlaps, err := idx.RangeQuery(fairindex.BBox{
			MinLat: req.Rect.MinLat, MinLon: req.Rect.MinLon,
			MaxLat: req.Rect.MaxLat, MaxLon: req.Rect.MaxLon,
		})
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		regions = make([]int, len(overlaps))
		for i, ov := range overlaps {
			regions[i] = ov.Region
		}
	}
	// Cap the window after rect resolution so a rectangle cannot
	// smuggle in a larger window than an explicit region list may.
	if len(regions) > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("window of %d regions exceeds limit %d", len(regions), s.maxBatch))
		return
	}
	ws, err := idx.GroupStats(req.Task, regions)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp := statsResponse{
		Task:     ws.Task,
		Count:    ws.Count,
		MeanConf: jsonFloat(ws.MeanConf),
		PosRate:  jsonFloat(ws.PosRate),
		Miscal:   jsonFloat(ws.Miscal),
		CalRatio: jsonFloat(ws.CalRatio),
		ENCE:     jsonFloat(ws.ENCE),
		Regions:  make([]regionStatJSON, len(ws.Regions)),
	}
	for i, rs := range ws.Regions {
		resp.Regions[i] = regionStatJSON{
			Region:   rs.Region,
			Count:    rs.Count,
			MeanConf: jsonFloat(rs.MeanConf),
			PosRate:  jsonFloat(rs.PosRate),
			Miscal:   jsonFloat(rs.Miscal),
			CalRatio: jsonFloat(rs.CalRatio),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoReloadPath) {
			status = http.StatusConflict
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, reloadResponse{
		Reloads: s.reloads.Load(),
		Regions: s.idx.Load().NumRegions(),
	})
}
