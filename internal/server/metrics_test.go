package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/registry"
)

// TestServerStatsMetrics exercises the opt-in metrics surface on
// /v1/stats: explicit selection, empty-list = all registered, GET
// query-parameter form, unknown names, and the absence of the
// "metrics" key when the request does not opt in.
func TestServerStatsMetrics(t *testing.T) {
	idx, _ := buildIndex(t)
	ts := httptest.NewServer(New(idx))
	defer ts.Close()
	client := ts.Client()

	const rect = `"rect":{"min_lat":33.60,"min_lon":-118.70,"max_lat":34.40,"max_lon":-117.80}`

	var plain map[string]any
	if code := postJSON(t, client, ts.URL+"/v1/stats", `{"task":0,`+rect+`}`, &plain); code != http.StatusOK {
		t.Fatalf("plain stats: %d", code)
	}
	if _, ok := plain["metrics"]; ok {
		t.Errorf("metrics key present without opt-in: %v", plain["metrics"])
	}

	var some struct {
		ENCE    float64            `json:"ence"`
		Metrics map[string]float64 `json:"metrics"`
	}
	body := `{"task":0,` + rect + `,"metrics":["ence","stat_parity"]}`
	if code := postJSON(t, client, ts.URL+"/v1/stats", body, &some); code != http.StatusOK {
		t.Fatalf("stats with metrics: %d", code)
	}
	if len(some.Metrics) != 2 {
		t.Fatalf("metrics = %v, want ence + stat_parity", some.Metrics)
	}
	if some.Metrics["ence"] != some.ENCE {
		t.Errorf("metrics.ence %v != legacy ence %v", some.Metrics["ence"], some.ENCE)
	}

	var all struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if code := postJSON(t, client, ts.URL+"/v1/stats", `{"task":0,`+rect+`,"metrics":[]}`, &all); code != http.StatusOK {
		t.Fatalf("stats with empty metrics list: %d", code)
	}
	if got, want := len(all.Metrics), len(fairindex.Metrics()); got != want {
		t.Errorf("empty list computed %d metrics, want all %d registered", got, want)
	}

	// GET form: same window as query parameters.
	url := ts.URL + "/v1/stats?task=0&rect=33.60,-118.70,34.40,-117.80&metrics=ence,stat_parity"
	var viaGet struct {
		ENCE    float64            `json:"ence"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if code := getJSON(t, client, url, &viaGet); code != http.StatusOK {
		t.Fatalf("GET stats: %d", code)
	}
	if viaGet.ENCE != some.ENCE || len(viaGet.Metrics) != 2 ||
		viaGet.Metrics["stat_parity"] != some.Metrics["stat_parity"] {
		t.Errorf("GET answer %+v diverges from POST %+v", viaGet, some)
	}

	var errBody errorResponse
	badBody := `{"task":0,` + rect + `,"metrics":["no_such_metric"]}`
	if code := postJSON(t, client, ts.URL+"/v1/stats", badBody, &errBody); code != http.StatusBadRequest {
		t.Fatalf("unknown metric: %d, want 400", code)
	}
}

// TestServerCompareMetricDeltas checks that a metrics-bearing compare
// reports per-metric deltas against the baseline, consistent with the
// per-index values.
func TestServerCompareMetricDeltas(t *testing.T) {
	fair, zip := buildTwoPartitionings(t)
	reg := registry.New(registry.WithDefault("la-fair"))
	if err := reg.AddIndex("la-fair", fair); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddIndex("la-zip", zip); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg))
	defer ts.Close()

	body := `{"indexes":["la-fair","la-zip"],"task":0,
		"rect":{"min_lat":33.60,"min_lon":-118.70,"max_lat":34.40,"max_lon":-117.80},
		"metrics":["ence","atkinson"]}`
	var resp struct {
		Indexes []struct {
			Name  string `json:"name"`
			Stats struct {
				Metrics map[string]float64 `json:"metrics"`
			} `json:"stats"`
			Delta *struct {
				Metrics map[string]float64 `json:"metrics"`
			} `json:"delta"`
		} `json:"indexes"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/compare", body, &resp); code != http.StatusOK {
		t.Fatalf("compare: %d", code)
	}
	if len(resp.Indexes) != 2 {
		t.Fatalf("entries = %d", len(resp.Indexes))
	}
	base, other := resp.Indexes[0], resp.Indexes[1]
	if base.Delta != nil {
		t.Error("baseline entry carries a delta")
	}
	if other.Delta == nil || len(other.Delta.Metrics) != 2 {
		t.Fatalf("comparison delta = %+v, want 2 per-metric deltas", other.Delta)
	}
	for _, name := range []string{"ence", "atkinson"} {
		want := other.Stats.Metrics[name] - base.Stats.Metrics[name]
		if got := other.Delta.Metrics[name]; got != want {
			t.Errorf("delta[%s] = %v, want %v", name, got, want)
		}
	}

	// Locate mode must reject a metrics list.
	var errBody errorResponse
	locBody := `{"indexes":["la-fair","la-zip"],"lat":34.0,"lon":-118.3,"metrics":["ence"]}`
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/compare", locBody, &errBody); code != http.StatusBadRequest {
		t.Fatalf("locate+metrics: %d, want 400", code)
	}
}

// TestServerAppendPerMetricDrift arms a per-metric threshold through
// the registry option and checks the append response and /v1/indexes
// expose the per-metric drift maps.
func TestServerAppendPerMetricDrift(t *testing.T) {
	idx, ds := buildIndex(t)
	reg := registry.New(registry.WithDriftThresholds(map[string]float64{
		"stat_parity": 1e-12,
	}))
	if err := reg.AddIndex("la", idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg))
	defer ts.Close()
	client := ts.Client()

	rec := ds.Records[0]
	body := fmt.Sprintf(`{"records":[{"lat":%v,"lon":%v,"features":%s,"labels":%s}]}`,
		rec.Lat, rec.Lon, jsonFloats(rec.X), jsonInts(flipFirst(rec.Labels)))
	var resp struct {
		Drifts map[string]float64 `json:"drifts"`
		Tasks  []struct {
			Metrics map[string]float64 `json:"metrics"`
			Drifts  map[string]float64 `json:"drifts"`
		} `json:"tasks"`
	}
	if code := postJSON(t, client, ts.URL+"/v1/i/la/append", body, &resp); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	if _, ok := resp.Drifts["stat_parity"]; !ok {
		t.Errorf("append response drifts = %v, want stat_parity", resp.Drifts)
	}
	if len(resp.Tasks) == 0 || len(resp.Tasks[0].Metrics) < 2 {
		t.Errorf("per-task metric maps missing: %+v", resp.Tasks)
	}

	var listing struct {
		Indexes []struct {
			Name   string             `json:"name"`
			Drifts map[string]float64 `json:"drifts"`
		} `json:"indexes"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/indexes", &listing); code != http.StatusOK {
		t.Fatalf("indexes: %d", code)
	}
	if len(listing.Indexes) != 1 {
		t.Fatalf("listing = %+v", listing)
	}
	if _, ok := listing.Indexes[0].Drifts["stat_parity"]; !ok {
		t.Errorf("catalog drifts = %v, want stat_parity", listing.Indexes[0].Drifts)
	}
}

func jsonFloats(v []float64) string {
	out := "["
	for i, f := range v {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%v", f)
	}
	return out + "]"
}

func jsonInts(v []int) string {
	out := "["
	for i, n := range v {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", n)
	}
	return out + "]"
}

// flipFirst returns a copy of labels with the first task's label
// inverted, so a single appended record moves the parity profile.
func flipFirst(labels []int) []int {
	out := append([]int(nil), labels...)
	if len(out) > 0 {
		out[0] = 1 - out[0]
	}
	return out
}
