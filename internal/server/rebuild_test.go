package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/rebuild"
	"fairindex/internal/registry"
)

func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

func floatStr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// recordsBody renders an append request over the given records.
func recordsBody(t *testing.T, recs []dataset.Record) string {
	t.Helper()
	type rec struct {
		ID       string    `json:"id"`
		Lat      float64   `json:"lat"`
		Lon      float64   `json:"lon"`
		Features []float64 `json:"features"`
		Labels   []int     `json:"labels"`
	}
	rows := make([]rec, len(recs))
	for i, r := range recs {
		rows[i] = rec{ID: r.ID, Lat: r.Lat, Lon: r.Lon, Features: r.X, Labels: r.Labels}
	}
	blob, err := json.Marshal(map[string]any{"records": rows})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// rebuildCity generates the 340-record workload the rebuild tests
// share (the same deterministic split internal/rebuild pins its gate
// verdicts on): the serving index trains on the first 300 records,
// the last 40 drive drift over HTTP, and the full set is the fresh
// feed a good rebuild trains on.
func rebuildCity(t *testing.T) (all, build *dataset.Dataset) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 340
	all, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	build = &dataset.Dataset{
		Name: all.Name, Grid: all.Grid, Box: all.Box,
		FeatureNames: all.FeatureNames, TaskNames: all.TaskNames,
		Records: all.Records[:300],
	}
	return all, build
}

// flipRebuildLabels inverts every label — training data whose
// feature→label association is destroyed, so a candidate built from
// it regresses the calibration metrics against the serving index.
func flipRebuildLabels(ds *dataset.Dataset) *dataset.Dataset {
	recs := make([]dataset.Record, len(ds.Records))
	copy(recs, ds.Records)
	for i := range recs {
		labels := make([]int, len(recs[i].Labels))
		for j, l := range recs[i].Labels {
			labels[j] = 1 - l
		}
		recs[i].Labels = labels
	}
	return &dataset.Dataset{
		Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames,
		Records: recs,
	}
}

// rebuildListing is the /v1/indexes slice the rebuild tests read.
type rebuildListing struct {
	Indexes []struct {
		Name               string  `json:"name"`
		Appended           int     `json:"appended"`
		Drift              float64 `json:"drift"`
		RebuildRecommended bool    `json:"rebuild_recommended"`
		Rebuild            *struct {
			State         string              `json:"state"`
			Attempts      int                 `json:"attempts"`
			Error         string              `json:"error"`
			LastPromoted  string              `json:"last_promoted"`
			RefusalDeltas map[string]*float64 `json:"refusal_deltas"`
			NextRetry     string              `json:"next_retry"`
		} `json:"rebuild"`
	} `json:"indexes"`
}

// pollRebuildState polls GET /v1/indexes until the named entry's
// rebuild state matches want (the asynchronous 202 contract: kick,
// then observe the outcome in the listing).
func pollRebuildState(t *testing.T, client *http.Client, url, name, want string) rebuildListing {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var listing rebuildListing
		if code := getJSON(t, client, url+"/v1/indexes", &listing); code != http.StatusOK {
			t.Fatalf("indexes status %d", code)
		}
		for _, e := range listing.Indexes {
			if e.Name == name && e.Rebuild != nil && e.Rebuild.State == want {
				return listing
			}
		}
		if time.Now().After(deadline) {
			for _, e := range listing.Indexes {
				if e.Name == name && e.Rebuild != nil {
					t.Fatalf("entry %q never reached rebuild state %q (state %q, error %q)",
						name, want, e.Rebuild.State, e.Rebuild.Error)
				}
			}
			t.Fatalf("entry %q never reached rebuild state %q (no rebuild state)", name, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerRebuildNotConfigured pins the no-controller behavior: the
// rebuild routes answer 501 and the index listing carries no rebuild
// field (byte-compat with catalogs that never heard of rebuilds).
func TestServerRebuildNotConfigured(t *testing.T) {
	idx, _ := buildIndex(t)
	ts := httptest.NewServer(New(idx))
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/rebuild", "", nil); code != http.StatusNotImplemented {
		t.Errorf("rebuild without controller: status %d, want 501", code)
	}
	var listing rebuildListing
	if code := getJSON(t, client, ts.URL+"/v1/indexes", &listing); code != http.StatusOK {
		t.Fatalf("indexes status %d", code)
	}
	if len(listing.Indexes) != 1 || listing.Indexes[0].Rebuild != nil {
		t.Errorf("listing without controller carries rebuild state: %+v", listing.Indexes)
	}
}

// TestServerRebuildPromotionE2E is the acceptance loop over real
// HTTP: an armed entry whose appended drift crosses the threshold is
// rebuilt by the bound controller, gated, atomically promoted on disk
// and swapped into the catalog — all while a query hammer keeps
// hitting the entry and every response stays 200. The outcome is
// observable in GET /v1/indexes.
func TestServerRebuildPromotionE2E(t *testing.T) {
	all, build := rebuildCity(t)
	idx, err := fairindex.Build(build, fairindex.WithHeight(3), fairindex.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeIndexFile(t, idx, dir, "la.fidx")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reg := registry.New(registry.WithLogger(quietLog()), registry.WithDriftThreshold(1e-12))
	if err := reg.Add("la", path); err != nil {
		t.Fatal(err)
	}
	srv := NewMulti(reg, WithLogger(quietLog()))
	ctrl, err := rebuild.New(reg,
		func(string) (fairindex.Source, func() error, error) {
			return fairindex.NewDatasetSource(all), nil, nil
		},
		rebuild.WithLogger(quietLog()))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.Bind()
	srv.SetRebuilder(ctrl)

	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Query hammer: no request may be dropped across the promotion.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := all.Records[0]
		for {
			select {
			case <-stop:
				return
			default:
			}
			var out struct {
				Region int `json:"region"`
			}
			if code := getJSON(t, client, ts.URL+"/v1/i/la/locate?lat="+floatStr(r.Lat)+"&lon="+floatStr(r.Lon), &out); code != http.StatusOK {
				t.Errorf("locate during rebuild: status %d", code)
				return
			}
		}
	}()

	// Drift the entry over HTTP: the armed threshold fires the hook,
	// the hook kicks the controller, the controller promotes.
	if code := postJSON(t, client, ts.URL+"/v1/i/la/append", recordsBody(t, all.Records[300:320]), nil); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	listing := pollRebuildState(t, client, ts.URL, "la", rebuild.StatePromoted)
	close(stop)
	wg.Wait()

	e := listing.Indexes[0]
	if e.Rebuild.LastPromoted == "" || e.Rebuild.Error != "" || e.Rebuild.Attempts != 0 {
		t.Errorf("promoted rebuild state %+v", e.Rebuild)
	}
	// The promoted generation replaced the artifact bytes and serves
	// with a clean fold counter and disarmed recommendation.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, blob) {
		t.Error("artifact bytes unchanged after promotion")
	}
	if e.Appended != 0 || e.RebuildRecommended {
		t.Errorf("promoted entry still carries folds/recommendation: %+v", e)
	}
	if _, err := fairindex.LoadIndex(path); err != nil {
		t.Fatalf("promoted artifact does not load: %v", err)
	}
}

// TestServerRebuildRefusalE2E drives the explicit kick: POST
// .../rebuild answers 202, the label-flipped feed regresses ENCE, the
// gate refuses, the serving artifact stays byte-identical, and the
// refusal (state + per-metric deltas) is observable in the listing.
func TestServerRebuildRefusalE2E(t *testing.T) {
	all, build := rebuildCity(t)
	idx, err := fairindex.Build(build, fairindex.WithHeight(3), fairindex.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeIndexFile(t, idx, dir, "la.fidx")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reg := registry.New(registry.WithLogger(quietLog()))
	if err := reg.Add("la", path); err != nil {
		t.Fatal(err)
	}
	ctrl, err := rebuild.New(reg,
		func(string) (fairindex.Source, func() error, error) {
			return fairindex.NewDatasetSource(flipRebuildLabels(all)), nil, nil
		},
		rebuild.WithBudgets(map[string]float64{"ence": 0.001}),
		rebuild.WithLogger(quietLog()))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	srv := NewMulti(reg, WithLogger(quietLog()), WithRebuilder(ctrl))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var kicked struct {
		Index   string `json:"index"`
		Started bool   `json:"started"`
		Rebuild *struct {
			State string `json:"state"`
		} `json:"rebuild"`
	}
	if code := postJSON(t, client, ts.URL+"/v1/i/la/rebuild", "", &kicked); code != http.StatusAccepted {
		t.Fatalf("rebuild kick status %d", code)
	}
	if kicked.Index != "la" || !kicked.Started || kicked.Rebuild == nil {
		t.Fatalf("kick response %+v", kicked)
	}

	listing := pollRebuildState(t, client, ts.URL, "la", rebuild.StateRefused)
	e := listing.Indexes[0]
	d, ok := e.Rebuild.RefusalDeltas["ence"]
	if !ok || d == nil || !(*d >= 0.001) {
		t.Errorf("refusal deltas %v, want ence >= budget", e.Rebuild.RefusalDeltas)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("serving artifact bytes changed by a refused rebuild")
	}

	// Unknown entries 404 even with a controller attached.
	if code := postJSON(t, client, ts.URL+"/v1/i/nope/rebuild", "", nil); code != http.StatusNotFound {
		t.Errorf("rebuild of unknown entry: status %d, want 404", code)
	}
}
