package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/registry"
)

// buildTwoPartitionings builds a fair and a zipcode index over the
// same dataset — the canonical side-by-side workload: one city, two
// fairness configurations.
func buildTwoPartitionings(t *testing.T) (fair, zip *fairindex.Index) {
	t.Helper()
	fairIdx, ds := buildIndex(t, fairindex.WithHeight(4), fairindex.WithSeed(7))
	zipIdx, err := fairindex.Build(ds, fairindex.WithMethod(fairindex.MethodZipCode), fairindex.WithHeight(4), fairindex.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return fairIdx, zipIdx
}

// TestServerMultiIndexEndToEnd serves a fair and a zipcode
// partitioning of the same city from one process and checks the whole
// multi-index surface: named routes answer from the right artifact,
// /v1/indexes reflects catalog state and codec versions, /v1/compare
// reports the cross-partitioning fairness delta, and the unprefixed
// routes keep answering from the default entry.
func TestServerMultiIndexEndToEnd(t *testing.T) {
	fairIdx, zipIdx := buildTwoPartitionings(t)
	dir := t.TempDir()
	writeIndexFile(t, fairIdx, dir, "la-fair.fidx")
	writeIndexFile(t, zipIdx, dir, "la-zip.fidx")

	srv, err := OpenDir(dir, []registry.Option{registry.WithDefault("la-fair")})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// The catalog starts lazy: listed, nothing resident.
	var list indexesResponse
	if code := getJSON(t, client, ts.URL+"/v1/indexes", &list); code != http.StatusOK {
		t.Fatalf("indexes status %d", code)
	}
	if list.Default != "la-fair" || len(list.Indexes) != 2 || list.Loaded != 0 {
		t.Fatalf("initial /v1/indexes = %+v", list)
	}
	for _, info := range list.Indexes {
		if info.State != registry.StateAvailable {
			t.Errorf("entry %q state %q before first use", info.Name, info.State)
		}
	}

	// Named locates answer per index, bit-identical to the in-process
	// artifacts; the two partitionings genuinely differ somewhere.
	box := fairIdx.Box()
	differs := false
	for i := 0; i < 25; i++ {
		lat := box.MinLat + (box.MaxLat-box.MinLat)*float64(i)/25
		lon := box.MinLon + (box.MaxLon-box.MinLon)*float64(i)/25
		wantFair, err := fairIdx.Locate(lat, lon)
		if err != nil {
			t.Fatal(err)
		}
		wantZip, err := zipIdx.Locate(lat, lon)
		if err != nil {
			t.Fatal(err)
		}
		var gotFair, gotZip, gotDefault locateResponse
		if code := getJSON(t, client, fmt.Sprintf("%s/v1/i/la-fair/locate?lat=%v&lon=%v", ts.URL, lat, lon), &gotFair); code != http.StatusOK {
			t.Fatalf("named locate status %d", code)
		}
		if code := getJSON(t, client, fmt.Sprintf("%s/v1/i/la-zip/locate?lat=%v&lon=%v", ts.URL, lat, lon), &gotZip); code != http.StatusOK {
			t.Fatalf("named locate status %d", code)
		}
		if code := getJSON(t, client, fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", ts.URL, lat, lon), &gotDefault); code != http.StatusOK {
			t.Fatalf("default locate status %d", code)
		}
		if gotFair.Region != wantFair || gotZip.Region != wantZip {
			t.Fatalf("point %d: named routes (%d, %d) != in-process (%d, %d)",
				i, gotFair.Region, gotZip.Region, wantFair, wantZip)
		}
		if gotDefault.Region != wantFair {
			t.Fatalf("point %d: default route %d != default entry %d", i, gotDefault.Region, wantFair)
		}
		if wantFair != wantZip {
			differs = true
		}
	}
	if !differs {
		t.Error("fair and zipcode partitionings agreed on every probe — comparison is vacuous")
	}

	// After use both entries are resident with the current codec.
	if code := getJSON(t, client, ts.URL+"/v1/indexes", &list); code != http.StatusOK {
		t.Fatalf("indexes status %d", code)
	}
	for _, info := range list.Indexes {
		if info.State != registry.StateLoaded {
			t.Errorf("entry %q state %q after use", info.Name, info.State)
		}
		if info.CodecVersion != fairIdx.CodecVersion() {
			t.Errorf("entry %q codec v%d, want v%d", info.Name, info.CodecVersion, fairIdx.CodecVersion())
		}
		if info.Regions == 0 || info.Dataset == "" || info.Method == "" {
			t.Errorf("entry %q artifact fields missing: %+v", info.Name, info)
		}
	}

	// Named range/stats answer from the right partitioning.
	midLat := (box.MinLat + box.MaxLat) / 2
	midLon := (box.MinLon + box.MaxLon) / 2
	rectBody := fmt.Sprintf(`{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}`,
		box.MinLat, box.MinLon, midLat, midLon)
	var rrFair rangeResponse
	if code := postJSON(t, client, ts.URL+"/v1/i/la-fair/range", rectBody, &rrFair); code != http.StatusOK {
		t.Fatalf("named range status %d", code)
	}
	wantOv, err := fairIdx.RangeQuery(fairindex.BBox{MinLat: box.MinLat, MinLon: box.MinLon, MaxLat: midLat, MaxLon: midLon})
	if err != nil {
		t.Fatal(err)
	}
	if rrFair.Count != len(wantOv) {
		t.Errorf("named range count %d, want %d", rrFair.Count, len(wantOv))
	}

	// Compare (stats mode): per-index windows resolve through each
	// index's own RangeQuery, and the delta equals the difference of
	// the two in-process aggregates.
	cmpBody := fmt.Sprintf(`{"indexes":["la-fair","la-zip"],"task":0,"rect":%s}`, rectBody)
	var cmpResp compareResponse
	if code := postJSON(t, client, ts.URL+"/v1/compare", cmpBody, &cmpResp); code != http.StatusOK {
		t.Fatalf("compare status %d", code)
	}
	if cmpResp.Op != "stats" || cmpResp.Baseline != "la-fair" || len(cmpResp.Indexes) != 2 {
		t.Fatalf("compare = %+v", cmpResp)
	}
	statsOf := func(idx *fairindex.Index) fairindex.WindowStats {
		t.Helper()
		ov, err := idx.RangeQuery(fairindex.BBox{MinLat: box.MinLat, MinLon: box.MinLon, MaxLat: midLat, MaxLon: midLon})
		if err != nil {
			t.Fatal(err)
		}
		regions := make([]int, len(ov))
		for i := range ov {
			regions[i] = ov[i].Region
		}
		ws, err := idx.GroupStats(0, regions)
		if err != nil {
			t.Fatal(err)
		}
		return ws
	}
	wsFair, wsZip := statsOf(fairIdx), statsOf(zipIdx)
	if got := float64(cmpResp.Indexes[0].Stats.ENCE); got != wsFair.ENCE {
		t.Errorf("baseline ENCE %v != in-process %v", got, wsFair.ENCE)
	}
	if got := float64(cmpResp.Indexes[1].Stats.ENCE); got != wsZip.ENCE {
		t.Errorf("compared ENCE %v != in-process %v", got, wsZip.ENCE)
	}
	if cmpResp.Indexes[0].Delta != nil {
		t.Error("baseline entry carries a delta")
	}
	if cmpResp.Indexes[1].Delta == nil {
		t.Fatal("compared entry missing its delta")
	}
	if got, want := float64(cmpResp.Indexes[1].Delta.ENCE), wsZip.ENCE-wsFair.ENCE; got != want {
		t.Errorf("ENCE delta %v, want %v", got, want)
	}

	// Compare (locate mode) agrees with the per-index locates.
	rec := 0.25
	lat := box.MinLat + (box.MaxLat-box.MinLat)*rec
	lon := box.MinLon + (box.MaxLon-box.MinLon)*rec
	locBody := fmt.Sprintf(`{"indexes":["la-fair","la-zip"],"lat":%v,"lon":%v}`, lat, lon)
	if code := postJSON(t, client, ts.URL+"/v1/compare", locBody, &cmpResp); code != http.StatusOK {
		t.Fatalf("compare locate status %d", code)
	}
	wantFair, _ := fairIdx.Locate(lat, lon)
	wantZip, _ := zipIdx.Locate(lat, lon)
	if cmpResp.Op != "locate" ||
		*cmpResp.Indexes[0].Region != wantFair || *cmpResp.Indexes[1].Region != wantZip {
		t.Fatalf("compare locate = %+v (want %d, %d)", cmpResp, wantFair, wantZip)
	}
}

// TestServerNamedRouteErrors pins the status mapping of the catalog
// resolution path.
func TestServerNamedRouteErrors(t *testing.T) {
	idx, _ := buildIndex(t)
	dir := t.TempDir()
	writeIndexFile(t, idx, dir, "good.fidx")
	if err := os.WriteFile(filepath.Join(dir, "bad.fidx"), []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Unknown name → 404.
	if code := getJSON(t, client, ts.URL+"/v1/i/nope/locate?lat=1&lon=2", nil); code != http.StatusNotFound {
		t.Errorf("unknown index status %d, want 404", code)
	}
	// Corrupt artifact discovered lazily → 502.
	if code := getJSON(t, client, ts.URL+"/v1/i/bad/locate?lat=1&lon=2", nil); code != http.StatusBadGateway {
		t.Errorf("corrupt artifact status %d, want 502", code)
	}
	// Two entries, no default → unprefixed routes 409.
	if code := getJSON(t, client, ts.URL+"/v1/locate?lat=1&lon=2", nil); code != http.StatusConflict {
		t.Errorf("no-default status %d, want 409", code)
	}
	// The good entry still answers by name.
	if code := getJSON(t, client, ts.URL+"/v1/i/good/locate?lat=34&lon=-118", nil); code != http.StatusOK {
		t.Errorf("good entry status %d", code)
	}
	// Per-entry reload of the corrupt artifact fails 500 and the
	// catalog marks it failed.
	if code := postJSON(t, client, ts.URL+"/v1/i/bad/reload", ``, nil); code != http.StatusInternalServerError {
		t.Errorf("corrupt reload status %d, want 500", code)
	}
	var list indexesResponse
	getJSON(t, client, ts.URL+"/v1/indexes", &list)
	for _, info := range list.Indexes {
		if info.Name == "bad" && (info.State != registry.StateFailed || info.Error == "") {
			t.Errorf("bad entry = %+v", info)
		}
	}
	// Unknown per-entry reload → 404.
	if code := postJSON(t, client, ts.URL+"/v1/i/nope/reload", ``, nil); code != http.StatusNotFound {
		t.Errorf("unknown reload status %d, want 404", code)
	}
}

// TestServerCompareValidation covers the /v1/compare request rules.
func TestServerCompareValidation(t *testing.T) {
	idx, _ := buildIndex(t)
	srv := New(idx)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name, body string
		want       int
	}{
		{"too few indexes", `{"indexes":["default"],"lat":1,"lon":2}`, http.StatusBadRequest},
		{"no mode", `{"indexes":["default","default2"]}`, http.StatusBadRequest},
		{"both modes", `{"indexes":["default","default2"],"lat":1,"lon":2,"task":0,"regions":[0]}`, http.StatusBadRequest},
		{"stats without window", `{"indexes":["default","default2"],"task":0}`, http.StatusBadRequest},
		{"duplicate names", `{"indexes":["default","default"],"lat":1,"lon":2}`, http.StatusBadRequest},
		{"unknown name", `{"indexes":["default","ghost"],"lat":1,"lon":2}`, http.StatusNotFound},
		{"malformed", `{"indexes":`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBody errorResponse
			if code := postJSON(t, client, ts.URL+"/v1/compare", tc.body, &errBody); code != tc.want {
				t.Errorf("status %d, want %d (error %q)", code, tc.want, errBody.Error)
			}
		})
	}
}

// TestServerTwoIndexConcurrentReload is the multi-index slice of the
// hot-reload safety proof: clients hammer two named entries while one
// of them flips between generations via per-entry reloads. Every
// response must be internally consistent with one generation of the
// addressed entry, and the stable entry must never waver.
func TestServerTwoIndexConcurrentReload(t *testing.T) {
	idxA, ds := buildIndex(t, fairindex.WithHeight(3), fairindex.WithSeed(1))
	idxB, _ := buildIndex(t, fairindex.WithHeight(6), fairindex.WithSeed(2))
	stable, _ := buildIndex(t, fairindex.WithHeight(4), fairindex.WithSeed(3))
	if idxA.NumRegions() == idxB.NumRegions() {
		t.Fatal("want distinguishable generations")
	}
	dir := t.TempDir()
	writeIndexFile(t, idxA, dir, "hot.fidx")
	writeIndexFile(t, stable, dir, "stable.fidx")
	srv, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	n := 32
	lats := make([]float64, n)
	lons := make([]float64, n)
	for i := 0; i < n; i++ {
		lats[i] = ds.Records[i%ds.Len()].Lat
		lons[i] = ds.Records[i%ds.Len()].Lon
	}
	expect := func(idx *fairindex.Index) []int {
		regions, err := idx.LocateBatch(lats, lons)
		if err != nil {
			t.Fatal(err)
		}
		return regions
	}
	wantA, wantB, wantStable := expect(idxA), expect(idxB), expect(stable)
	body, _ := json.Marshal(locateBatchRequest{Lats: lats, Lons: lons})

	matches := func(got, want []int) bool {
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	const workers = 6
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perWorker; i++ {
				entry, wants := "hot", [][]int{wantA, wantB}
				if (w+i)%2 == 0 {
					entry, wants = "stable", [][]int{wantStable}
				}
				resp, err := client.Post(ts.URL+"/v1/i/"+entry+"/locate_batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var batch locateBatchResponse
				err = json.NewDecoder(resp.Body).Decode(&batch)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
				ok := false
				for _, want := range wants {
					if matches(batch.Regions, want) {
						ok = true
					}
				}
				if !ok {
					errs <- fmt.Errorf("worker %d: %q response matches no generation", w, entry)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		client := ts.Client()
		for i := 0; i < 20; i++ {
			gen := idxA
			if i%2 == 0 {
				gen = idxB
			}
			blob, err := gen.MarshalBinary()
			if err != nil {
				errs <- err
				return
			}
			if err := os.WriteFile(filepath.Join(dir, "hot.fidx"), blob, 0o644); err != nil {
				errs <- err
				return
			}
			resp, err := client.Post(ts.URL+"/v1/i/hot/reload", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("per-entry reload status %d", resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
