package experiments

import (
	"testing"

	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// TestHeadlineShapeFullScale asserts the paper's headline result at
// the full evaluation scale (both paper-sized cities, 64×64 grid):
// Fair KD-tree ENCE below Median KD-tree ENCE at heights 6–10 with
// the margin growing, and Grid (Reweighting) far above both. Skipped
// in -short mode.
func TestHeadlineShapeFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape regression skipped in -short mode")
	}
	cells, err := Fig7(Options{}, []int{6, 8, 10}, []ml.ModelKind{ml.ModelLogReg})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d panels, want 2 cities", len(cells))
	}
	for _, c := range cells {
		median, err := c.MethodSeries(pipeline.MethodMedianKD)
		if err != nil {
			t.Fatal(err)
		}
		fair, err := c.MethodSeries(pipeline.MethodFairKD)
		if err != nil {
			t.Fatal(err)
		}
		gridRW, err := c.MethodSeries(pipeline.MethodGridReweight)
		if err != nil {
			t.Fatal(err)
		}
		for hi, h := range c.Heights {
			if fair[hi] >= median[hi] {
				t.Errorf("%s h=%d: fair ENCE %v >= median %v", c.City, h, fair[hi], median[hi])
			}
			if gridRW[hi] < median[hi] {
				t.Errorf("%s h=%d: grid reweighting %v below median %v", c.City, h, gridRW[hi], median[hi])
			}
		}
		// Theorem 2 trend: ENCE non-decreasing in height for the trees.
		for hi := 1; hi < len(c.Heights); hi++ {
			if median[hi] < median[hi-1] {
				t.Errorf("%s: median ENCE decreased from height %d to %d", c.City, c.Heights[hi-1], c.Heights[hi])
			}
			if fair[hi] < fair[hi-1] {
				t.Errorf("%s: fair ENCE decreased from height %d to %d", c.City, c.Heights[hi-1], c.Heights[hi])
			}
		}
		// The fair advantage stays substantial at depth (the paper's
		// margin grows from its height-4 near-tie; ours grows to h6
		// and plateaus between 2.3x and 3.5x after — see
		// EXPERIMENTS.md).
		for hi, h := range c.Heights {
			if adv := median[hi] / fair[hi]; adv < 1.5 {
				t.Errorf("%s h=%d: fair advantage only %.2fx, want >= 1.5x", c.City, h, adv)
			}
		}
	}
}
