// Package experiments contains one harness per figure of the paper's
// evaluation (§5): Figure 6 (evidence of disparity), Figure 7 (ENCE
// vs tree height), Figure 8 (utility indicators), Figure 9 (feature
// importance heatmaps), Figure 10 (multi-objective performance) and
// the §5.3.1 timing comparison. Each harness returns a structured
// result with a Render method producing the aligned text tables that
// cmd/fairbench prints and EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"strings"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// Options are shared across all harnesses.
type Options struct {
	// Grid is the base grid resolution (default 64×64).
	Grid geo.Grid
	// Cities to evaluate (default LA and Houston, as in §5.1).
	Cities []dataset.CitySpec
	// Seed drives splits and zip-code layouts (default 11).
	Seed int64
	// Encoding for the final training (default centroid+one-hot; see
	// DESIGN.md §2).
	Encoding dataset.Encoding
	// ZipSites for the zip-code baseline partition (default 40).
	ZipSites int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if !o.Grid.Valid() {
		o.Grid = geo.MustGrid(64, 64)
	}
	if o.Cities == nil {
		o.Cities = []dataset.CitySpec{dataset.LA(), dataset.Houston()}
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	o.Encoding = o.Encoding.Resolve()
	if o.ZipSites == 0 {
		o.ZipSites = 40
	}
	return o
}

// generate builds the datasets for the configured cities.
func (o Options) generate() ([]*dataset.Dataset, error) {
	out := make([]*dataset.Dataset, len(o.Cities))
	for i, spec := range o.Cities {
		ds, err := dataset.Generate(spec, o.Grid)
		if err != nil {
			return nil, fmt.Errorf("experiments: generate %s: %w", spec.Name, err)
		}
		out[i] = ds
	}
	return out, nil
}

// run is the shared pipeline invocation with the harness options
// applied.
func (o Options) run(ds *dataset.Dataset, cfg pipeline.Config) (*pipeline.Result, error) {
	cfg.Seed = o.Seed
	cfg.Encoding = o.Encoding
	cfg.ZipSites = o.ZipSites
	return pipeline.Run(ds, cfg)
}

// PaperHeights is the height sweep of Figures 7 (4–10).
var PaperHeights = []int{4, 5, 6, 7, 8, 9, 10}

// CoarseHeights is the reduced sweep of Figures 8 and 10 (4, 6, 8, 10).
var CoarseHeights = []int{4, 6, 8, 10}

// Fig7Methods are the four mitigation strategies compared by
// Figures 7 and 8, in the paper's legend order.
var Fig7Methods = []pipeline.Method{
	pipeline.MethodMedianKD,
	pipeline.MethodFairKD,
	pipeline.MethodIterativeFairKD,
	pipeline.MethodGridReweight,
}

// table renders an aligned text table: header row plus data rows.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// modelsForSweep returns the classifier families of Figure 7's sweep.
func modelsForSweep() []ml.ModelKind { return ml.AllModelKinds }
