package experiments

import (
	"fmt"
	"math"
	"strings"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/pipeline"
)

// Fig6City is the §5.2 disparity evidence for one city: a logistic
// regression trained over zip-code neighborhoods looks calibrated
// citywide while the most populated neighborhoods are severely
// miscalibrated (paper Figure 6).
type Fig6City struct {
	City          string
	TrainCalRatio float64 // overall e/o on the train split (≈ 1)
	TestCalRatio  float64 // overall e/o on the test split (≈ 1)
	Rows          []calib.NeighborhoodReport
}

// Fig6 runs the disparity experiment: zip-code partitioning, logistic
// regression, ACT task, per-neighborhood calibration ratio and ECE
// (15 bins) for the top-10 most populated neighborhoods.
//
// The location attribute uses the centroid encoding regardless of the
// options: Figure 6 measures the *unmitigated* setting, where the
// model cannot recalibrate each neighborhood individually (a one-hot
// neighborhood column would partially mask the disparity the figure
// demonstrates).
func Fig6(opt Options) ([]Fig6City, error) {
	opt = opt.withDefaults()
	opt.Encoding = dataset.EncCentroid
	cities, err := opt.generate()
	if err != nil {
		return nil, err
	}
	var out []Fig6City
	for _, ds := range cities {
		res, err := opt.run(ds, pipeline.Config{Method: pipeline.MethodZipCode})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s: %w", ds.Name, err)
		}
		tr := res.Tasks[0]
		out = append(out, Fig6City{
			City:          ds.Name,
			TrainCalRatio: tr.TrainCalRatio,
			TestCalRatio:  tr.TestCalRatio,
			Rows:          tr.TopNeighborhoods,
		})
	}
	return out, nil
}

// Render produces the Figure 6 text report.
func (c Fig6City) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — Evidence of disparity (%s, Logistic Regression, zip-code neighborhoods)\n", c.City)
	fmt.Fprintf(&b, "overall calibration ratio: train %.3f, test %.3f\n", c.TrainCalRatio, c.TestCalRatio)
	header := []string{"rank", "neighborhood", "population", "calibration", "ECE(15)"}
	rows := make([][]string, 0, len(c.Rows))
	for i, r := range c.Rows {
		ratio := "n/a"
		if !math.IsNaN(r.Ratio) {
			ratio = fmt.Sprintf("%.3f", r.Ratio)
		}
		rows = append(rows, []string{
			fmt.Sprintf("N%d", i+1),
			fmt.Sprintf("%d", r.Group),
			fmt.Sprintf("%d", r.Count),
			ratio,
			fmt.Sprintf("%.4f", r.ECE),
		})
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// CalibrationSpread returns max−min of the defined per-neighborhood
// calibration ratios: the quantity Figure 6 visualizes (the "ideal
// calibration" line is 1; spreads well above 0 evidence disparity).
func (c Fig6City) CalibrationSpread() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range c.Rows {
		if math.IsNaN(r.Ratio) {
			continue
		}
		lo = math.Min(lo, r.Ratio)
		hi = math.Max(hi, r.Ratio)
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
