package experiments

import (
	"fmt"
	"strings"

	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// Fig10Methods are the strategies compared by Figure 10 (the paper
// labels the multi-objective tree simply "Fair KD-tree" in those
// charts).
var Fig10Methods = []pipeline.Method{
	pipeline.MethodMedianKD,
	pipeline.MethodMultiObjectiveFairKD,
	pipeline.MethodGridReweight,
}

// Fig10Cell reports per-task ENCE of the three methods for one city
// and height. A single multi-objective partitioning (α = 0.5 per
// task) is evaluated against each objective.
type Fig10Cell struct {
	City   string
	Height int
	Tasks  []string
	// ENCE[m][t] is the train-split ENCE of Fig10Methods[m] on task t.
	ENCE [][]float64
}

// Fig10 runs the multi-objective evaluation at the paper's heights
// (4, 6, 8, 10) with equal task weights.
func Fig10(opt Options, heights []int) ([]Fig10Cell, error) {
	opt = opt.withDefaults()
	if len(heights) == 0 {
		heights = CoarseHeights
	}
	cities, err := opt.generate()
	if err != nil {
		return nil, err
	}
	var out []Fig10Cell
	for _, ds := range cities {
		for _, h := range heights {
			cell := Fig10Cell{
				City:   ds.Name,
				Height: h,
				Tasks:  ds.TaskNames,
				ENCE:   make([][]float64, len(Fig10Methods)),
			}
			for mi, method := range Fig10Methods {
				cell.ENCE[mi] = make([]float64, ds.NumTasks())
				if method == pipeline.MethodMultiObjectiveFairKD {
					// One shared partitioning evaluated on every task.
					res, err := opt.run(ds, pipeline.Config{Method: method, Height: h, Model: ml.ModelLogReg})
					if err != nil {
						return nil, fmt.Errorf("experiments: fig10 %s %v h=%d: %w", ds.Name, method, h, err)
					}
					for t := range res.Tasks {
						cell.ENCE[mi][t] = res.Tasks[t].ENCETrain
					}
					continue
				}
				// Single-task baselines are re-run per objective.
				for t := 0; t < ds.NumTasks(); t++ {
					res, err := opt.run(ds, pipeline.Config{Method: method, Height: h, Model: ml.ModelLogReg, Task: t})
					if err != nil {
						return nil, fmt.Errorf("experiments: fig10 %s %v h=%d task=%d: %w", ds.Name, method, h, t, err)
					}
					cell.ENCE[mi][t] = res.Tasks[0].ENCETrain
				}
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Render produces one Figure 10 panel.
func (c Fig10Cell) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — Multi-objective ENCE (height=%d, %s)\n", c.Height, c.City)
	header := []string{"task"}
	for _, m := range Fig10Methods {
		label := m.String()
		if m == pipeline.MethodMultiObjectiveFairKD {
			label = "Fair KD-tree" // the paper's chart label
		}
		header = append(header, label)
	}
	rows := make([][]string, len(c.Tasks))
	for t, task := range c.Tasks {
		row := []string{task}
		for mi := range Fig10Methods {
			row = append(row, fmt.Sprintf("%.5f", c.ENCE[mi][t]))
		}
		rows[t] = row
	}
	b.WriteString(table(header, rows))
	return b.String()
}
