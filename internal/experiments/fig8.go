package experiments

import (
	"fmt"
	"strings"

	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// Fig8City reports the utility indicators of Figure 8 for one city
// (logistic regression): model accuracy, overall training
// miscalibration and overall test miscalibration per method and
// height.
type Fig8City struct {
	City    string
	Heights []int
	// Indexed [method][height] following Fig7Methods.
	Accuracy    [][]float64
	TrainMiscal [][]float64
	TestMiscal  [][]float64
}

// Fig8 sweeps the utility indicators (heights default to 4,6,8,10 as
// in the paper's Figure 8 x-axis).
func Fig8(opt Options, heights []int) ([]Fig8City, error) {
	opt = opt.withDefaults()
	if len(heights) == 0 {
		heights = CoarseHeights
	}
	cities, err := opt.generate()
	if err != nil {
		return nil, err
	}
	var out []Fig8City
	for _, ds := range cities {
		city := Fig8City{
			City:        ds.Name,
			Heights:     heights,
			Accuracy:    make([][]float64, len(Fig7Methods)),
			TrainMiscal: make([][]float64, len(Fig7Methods)),
			TestMiscal:  make([][]float64, len(Fig7Methods)),
		}
		for mi, method := range Fig7Methods {
			city.Accuracy[mi] = make([]float64, len(heights))
			city.TrainMiscal[mi] = make([]float64, len(heights))
			city.TestMiscal[mi] = make([]float64, len(heights))
			for hi, h := range heights {
				res, err := opt.run(ds, pipeline.Config{Method: method, Height: h, Model: ml.ModelLogReg})
				if err != nil {
					return nil, fmt.Errorf("experiments: fig8 %s %v h=%d: %w", ds.Name, method, h, err)
				}
				tr := res.Tasks[0]
				city.Accuracy[mi][hi] = tr.Accuracy
				city.TrainMiscal[mi][hi] = tr.TrainMiscal
				city.TestMiscal[mi][hi] = tr.TestMiscal
			}
		}
		out = append(out, city)
	}
	return out, nil
}

// Render produces the three Figure 8 panels for the city.
func (c Fig8City) Render() string {
	var b strings.Builder
	panels := []struct {
		title string
		data  [][]float64
	}{
		{"Model Accuracy", c.Accuracy},
		{"Training Miscalibration", c.TrainMiscal},
		{"Test Miscalibration", c.TestMiscal},
	}
	for _, p := range panels {
		fmt.Fprintf(&b, "Figure 8 — %s (%s, Logistic Regression)\n", p.title, c.City)
		header := []string{"height"}
		for _, m := range Fig7Methods {
			header = append(header, m.String())
		}
		rows := make([][]string, len(c.Heights))
		for hi, h := range c.Heights {
			row := []string{fmt.Sprintf("%d", h)}
			for mi := range Fig7Methods {
				row = append(row, fmt.Sprintf("%.4f", p.data[mi][hi]))
			}
			rows[hi] = row
		}
		b.WriteString(table(header, rows))
		b.WriteByte('\n')
	}
	return b.String()
}
