package experiments

import (
	"fmt"
	"strings"

	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// Fig7Cell is one (city, model) panel of Figure 7: ENCE versus tree
// height for the four methods.
type Fig7Cell struct {
	City    string
	Model   ml.ModelKind
	Heights []int
	// ENCE[m][h] is the train-split ENCE of Fig7Methods[m] at
	// Heights[h] (the split the paper's magnitudes track; the full-
	// dataset value is in ENCEFull).
	ENCE     [][]float64
	ENCEFull [][]float64
}

// Fig7 sweeps ENCE vs height for every city × model panel, exactly
// like the paper's Figure 7 (heights default to 4–10).
func Fig7(opt Options, heights []int, models []ml.ModelKind) ([]Fig7Cell, error) {
	opt = opt.withDefaults()
	if len(heights) == 0 {
		heights = PaperHeights
	}
	if len(models) == 0 {
		models = modelsForSweep()
	}
	cities, err := opt.generate()
	if err != nil {
		return nil, err
	}
	var out []Fig7Cell
	for _, ds := range cities {
		for _, model := range models {
			cell := Fig7Cell{
				City:     ds.Name,
				Model:    model,
				Heights:  heights,
				ENCE:     make([][]float64, len(Fig7Methods)),
				ENCEFull: make([][]float64, len(Fig7Methods)),
			}
			for mi, method := range Fig7Methods {
				cell.ENCE[mi] = make([]float64, len(heights))
				cell.ENCEFull[mi] = make([]float64, len(heights))
				for hi, h := range heights {
					res, err := opt.run(ds, pipeline.Config{Method: method, Height: h, Model: model})
					if err != nil {
						return nil, fmt.Errorf("experiments: fig7 %s %v %v h=%d: %w", ds.Name, model, method, h, err)
					}
					cell.ENCE[mi][hi] = res.Tasks[0].ENCETrain
					cell.ENCEFull[mi][hi] = res.Tasks[0].ENCE
				}
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Render produces one panel's text table.
func (c Fig7Cell) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — ENCE vs tree height (%s, %v)\n", c.City, c.Model)
	header := []string{"height"}
	for _, m := range Fig7Methods {
		header = append(header, m.String())
	}
	rows := make([][]string, len(c.Heights))
	for hi, h := range c.Heights {
		row := []string{fmt.Sprintf("%d", h)}
		for mi := range Fig7Methods {
			row = append(row, fmt.Sprintf("%.5f", c.ENCE[mi][hi]))
		}
		rows[hi] = row
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// MethodSeries returns the ENCE series of one method by its pipeline
// identifier.
func (c Fig7Cell) MethodSeries(m pipeline.Method) ([]float64, error) {
	for mi, mm := range Fig7Methods {
		if mm == m {
			return c.ENCE[mi], nil
		}
	}
	return nil, fmt.Errorf("experiments: method %v not part of Figure 7", m)
}
