package experiments

import (
	"strings"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// smallOptions shrinks the workload so the harness tests stay fast
// while exercising the full code paths.
func smallOptions() Options {
	la := dataset.LA()
	la.NumRecords = 400
	hou := dataset.Houston()
	hou.NumRecords = 350
	return Options{
		Grid:     geo.MustGrid(32, 32),
		Cities:   []dataset.CitySpec{la, hou},
		Seed:     11,
		ZipSites: 20,
	}
}

func oneCityOptions() Options {
	o := smallOptions()
	o.Cities = o.Cities[:1]
	return o
}

func TestFig6(t *testing.T) {
	results, err := Fig6(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d cities, want 2", len(results))
	}
	for _, c := range results {
		// The disparity evidence: the citywide model looks calibrated
		// (ratio near 1) while neighborhoods spread.
		if c.TrainCalRatio < 0.8 || c.TrainCalRatio > 1.25 {
			t.Errorf("%s: train calibration ratio %v far from 1", c.City, c.TrainCalRatio)
		}
		if len(c.Rows) != 10 {
			t.Errorf("%s: %d neighborhood rows, want 10", c.City, len(c.Rows))
		}
		if spread := c.CalibrationSpread(); spread < 0.1 {
			t.Errorf("%s: calibration spread %v too small to evidence disparity", c.City, spread)
		}
		// Rows are ordered by population.
		for i := 1; i < len(c.Rows); i++ {
			if c.Rows[i].Count > c.Rows[i-1].Count {
				t.Errorf("%s: rows not population-ordered", c.City)
			}
		}
		text := c.Render()
		if !strings.Contains(text, "Figure 6") || !strings.Contains(text, c.City) {
			t.Errorf("render missing header: %q", text[:60])
		}
	}
}

func TestFig7(t *testing.T) {
	cells, err := Fig7(oneCityOptions(), []int{4, 6}, []ml.ModelKind{ml.ModelLogReg})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if len(c.ENCE) != len(Fig7Methods) {
		t.Fatalf("method rows = %d", len(c.ENCE))
	}
	fair, err := c.MethodSeries(pipeline.MethodFairKD)
	if err != nil {
		t.Fatal(err)
	}
	median, err := c.MethodSeries(pipeline.MethodMedianKD)
	if err != nil {
		t.Fatal(err)
	}
	// The headline shape at the deeper height.
	if fair[1] >= median[1] {
		t.Errorf("fair ENCE %v >= median %v at height 6", fair[1], median[1])
	}
	if _, err := c.MethodSeries(pipeline.MethodZipCode); err == nil {
		t.Error("expected unknown-series error")
	}
	if text := c.Render(); !strings.Contains(text, "Figure 7") {
		t.Error("render missing header")
	}
}

func TestFig8(t *testing.T) {
	cities, err := Fig8(oneCityOptions(), []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(cities) != 1 {
		t.Fatalf("cities = %d", len(cities))
	}
	c := cities[0]
	for mi := range Fig7Methods {
		for hi := range c.Heights {
			if acc := c.Accuracy[mi][hi]; acc < 0.4 || acc > 1 {
				t.Errorf("accuracy[%d][%d] = %v", mi, hi, acc)
			}
			if c.TrainMiscal[mi][hi] < 0 || c.TestMiscal[mi][hi] < 0 {
				t.Errorf("negative miscalibration at [%d][%d]", mi, hi)
			}
		}
	}
	text := c.Render()
	for _, want := range []string{"Model Accuracy", "Training Miscalibration", "Test Miscalibration"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig9(t *testing.T) {
	cells, err := Fig9(oneCityOptions(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Fig9Methods) {
		t.Fatalf("cells = %d, want %d", len(cells), len(Fig9Methods))
	}
	for _, c := range cells {
		if len(c.Features) != dataset.NumStdFeatures+1 {
			t.Fatalf("%v: features = %v", c.Method, c.Features)
		}
		if c.Features[len(c.Features)-1] != "Neighborhood" {
			t.Errorf("%v: last feature = %q", c.Method, c.Features[len(c.Features)-1])
		}
		// Columns are normalized importance distributions.
		for hi := range c.Heights {
			var sum float64
			for f := range c.Features {
				v := c.Importance[f][hi]
				if v < 0 || v > 1 {
					t.Errorf("importance out of range: %v", v)
				}
				sum += v
			}
			if sum < 0.95 || sum > 1.05 {
				t.Errorf("%v h=%d: importances sum to %v", c.Method, c.Heights[hi], sum)
			}
		}
		if text := c.Render(); !strings.Contains(text, "Figure 9") {
			t.Error("render missing header")
		}
	}
}

func TestFig10(t *testing.T) {
	cells, err := Fig10(oneCityOptions(), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	c := cells[0]
	if len(c.Tasks) != dataset.NumStdTasks {
		t.Fatalf("tasks = %v", c.Tasks)
	}
	for mi := range Fig10Methods {
		for t2 := range c.Tasks {
			if c.ENCE[mi][t2] < 0 {
				t.Errorf("negative ENCE at [%d][%d]", mi, t2)
			}
		}
	}
	text := c.Render()
	if !strings.Contains(text, "Figure 10") || !strings.Contains(text, "Fair KD-tree") {
		t.Error("render missing expected labels")
	}
}

func TestTiming(t *testing.T) {
	res, err := Timing(oneCityOptions(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FairBuild <= 0 || res.IterBuild <= 0 {
		t.Fatal("timings not recorded")
	}
	// The direction of §5.3.1's claim: iterative costs more.
	if res.IterBuild <= res.FairBuild {
		t.Errorf("iterative build %v not slower than fair %v", res.IterBuild, res.FairBuild)
	}
	if res.Overhead() <= 1 {
		t.Errorf("overhead = %v, want > 1", res.Overhead())
	}
	if text := res.Render(); !strings.Contains(text, "timing") {
		t.Error("render missing header")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if !o.Grid.Valid() || o.Grid.U != 64 {
		t.Errorf("default grid = %v", o.Grid)
	}
	if len(o.Cities) != 2 {
		t.Errorf("default cities = %d", len(o.Cities))
	}
	if o.Seed == 0 || o.ZipSites == 0 {
		t.Error("defaults not applied")
	}
	if o.Encoding != dataset.EncCentroidOneHot {
		t.Errorf("default encoding = %v", o.Encoding)
	}
}

func TestTableAlignment(t *testing.T) {
	got := table([]string{"a", "long-header"}, [][]string{{"wide-cell", "x"}})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[0], lines[1])
	}
}
