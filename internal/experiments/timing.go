package experiments

import (
	"fmt"
	"strings"
	"time"

	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// TimingResult reproduces the §5.3.1 cost comparison: the Fair
// KD-tree's construction (one initial model run + one DFS build) is
// substantially cheaper than the Iterative Fair KD-tree's (one model
// run per level). The paper reports 102 s vs 189 s at height 10 on
// its hardware; only the relative cost is expected to transfer.
type TimingResult struct {
	City      string
	Height    int
	FairBuild time.Duration
	IterBuild time.Duration
	FairTotal time.Duration // build + final training
	IterTotal time.Duration
}

// Timing measures both constructions at the given height (default 10,
// the paper's reference point) on the first configured city.
func Timing(opt Options, height int) (*TimingResult, error) {
	opt = opt.withDefaults()
	if height == 0 {
		height = 10
	}
	cities, err := opt.generate()
	if err != nil {
		return nil, err
	}
	ds := cities[0]
	out := &TimingResult{City: ds.Name, Height: height}

	fair, err := opt.run(ds, pipeline.Config{Method: pipeline.MethodFairKD, Height: height, Model: ml.ModelLogReg})
	if err != nil {
		return nil, fmt.Errorf("experiments: timing fair: %w", err)
	}
	out.FairBuild = fair.BuildTime
	out.FairTotal = fair.BuildTime + fair.TrainTime

	iter, err := opt.run(ds, pipeline.Config{Method: pipeline.MethodIterativeFairKD, Height: height, Model: ml.ModelLogReg})
	if err != nil {
		return nil, fmt.Errorf("experiments: timing iterative: %w", err)
	}
	out.IterBuild = iter.BuildTime
	out.IterTotal = iter.BuildTime + iter.TrainTime
	return out, nil
}

// Overhead returns the iterative construction's cost multiple over
// the fair construction (the paper's ≈ 1.85×).
func (t *TimingResult) Overhead() float64 {
	if t.FairBuild <= 0 {
		return 0
	}
	return float64(t.IterBuild) / float64(t.FairBuild)
}

// Render produces the timing report.
func (t *TimingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3.1 timing — Fair vs Iterative Fair KD-tree (%s, height=%d)\n", t.City, t.Height)
	rows := [][]string{
		{"Fair KD-tree", t.FairBuild.String(), t.FairTotal.String()},
		{"Iterative Fair KD-tree", t.IterBuild.String(), t.IterTotal.String()},
	}
	b.WriteString(table([]string{"method", "build", "build+train"}, rows))
	fmt.Fprintf(&b, "iterative/fair build overhead: %.2fx (paper: ~1.85x on the authors' testbed)\n", t.Overhead())
	return b.String()
}
