package experiments

import (
	"fmt"
	"strings"

	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
)

// Fig9Methods are the tree algorithms whose feature-importance
// heatmaps Figure 9 shows.
var Fig9Methods = []pipeline.Method{
	pipeline.MethodMedianKD,
	pipeline.MethodFairKD,
	pipeline.MethodIterativeFairKD,
}

// Fig9Heights is the heatmap's height axis (1–10).
var Fig9Heights = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// Fig9Cell is one heatmap: feature importance (rows) over tree
// heights (columns) for one city and method.
type Fig9Cell struct {
	City     string
	Method   pipeline.Method
	Heights  []int
	Features []string
	// Importance[f][h] is the normalized importance of Features[f] at
	// Heights[h].
	Importance [][]float64
}

// Fig9 computes the feature-importance heatmaps (logistic regression,
// importances aggregated over location-derived columns into one
// "Neighborhood" row, as in the paper's feature axis).
func Fig9(opt Options, heights []int) ([]Fig9Cell, error) {
	opt = opt.withDefaults()
	if len(heights) == 0 {
		heights = Fig9Heights
	}
	cities, err := opt.generate()
	if err != nil {
		return nil, err
	}
	var out []Fig9Cell
	for _, ds := range cities {
		for _, method := range Fig9Methods {
			cell := Fig9Cell{City: ds.Name, Method: method, Heights: heights}
			for hi, h := range heights {
				res, err := opt.run(ds, pipeline.Config{Method: method, Height: h, Model: ml.ModelLogReg})
				if err != nil {
					return nil, fmt.Errorf("experiments: fig9 %s %v h=%d: %w", ds.Name, method, h, err)
				}
				tr := res.Tasks[0]
				if cell.Features == nil {
					cell.Features = tr.ImportanceNames
					cell.Importance = make([][]float64, len(cell.Features))
					for f := range cell.Importance {
						cell.Importance[f] = make([]float64, len(heights))
					}
				}
				for f := range cell.Features {
					cell.Importance[f][hi] = tr.ImportanceValues[f]
				}
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Render produces the heatmap as a text table (features × heights).
func (c Fig9Cell) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — Feature importance heatmap (%s, %v)\n", c.City, c.Method)
	header := []string{"feature"}
	for _, h := range c.Heights {
		header = append(header, fmt.Sprintf("h=%d", h))
	}
	rows := make([][]string, len(c.Features))
	for f, name := range c.Features {
		row := []string{name}
		for hi := range c.Heights {
			row = append(row, fmt.Sprintf("%.2f", c.Importance[f][hi]))
		}
		rows[f] = row
	}
	b.WriteString(table(header, rows))
	return b.String()
}
