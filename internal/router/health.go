package router

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Passive per-replica health tracking: a consecutive-failure circuit
// breaker with exponential backoff, jitter, and half-open probing.
//
// The breaker never decides whether a shard is up — exactness owns
// that (a shard fails only when every replica actually refuses) — it
// only decides the ORDER replicas are tried in, so a dead primary
// stops eating the per-attempt budget of every request. States:
//
//   - closed:   fewer than threshold consecutive failures; the
//     replica sorts into the healthy rotation.
//   - open:     threshold consecutive failures tripped it; the
//     replica sorts last until its backoff expires. Each re-trip
//     doubles the backoff (capped), with ±20% jitter so a fleet of
//     routers does not probe a recovering backend in lockstep.
//   - half-open: the backoff expired; exactly one in-flight request
//     (the probe, guarded by a CAS) tries the replica first. Success
//     closes the breaker; failure re-opens it with a longer backoff.

// Breaker defaults; override with WithBreaker.
const (
	// DefaultBreakerThreshold is how many consecutive failures open a
	// replica's breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerBackoff is the first open interval; each re-trip
	// doubles it up to DefaultBreakerMaxBackoff.
	DefaultBreakerBackoff = 250 * time.Millisecond
	// DefaultBreakerMaxBackoff caps the exponential backoff.
	DefaultBreakerMaxBackoff = 30 * time.Second
)

// breakerConfig carries the breaker knobs a Router applies to every
// replica.
type breakerConfig struct {
	threshold  int
	base       time.Duration
	maxBackoff time.Duration
}

// replicaHealth is the mutable per-replica fault state, keyed by URL
// and shared across manifest reloads (health is a property of the
// deployment's processes, not of the plan).
type replicaHealth struct {
	cfg *breakerConfig

	mu          sync.Mutex
	consecFails int       // consecutive failures; >= threshold means open
	trips       int       // times the breaker opened without an intervening success
	openUntil   time.Time // end of the current backoff window (zero when closed)
	probing     bool      // a half-open probe is in flight
	lastErr     string    // most recent failure, for the health surface

	attempts int64 // calls routed at this replica
	failures int64 // calls that failed at the transport/5xx layer
}

// Breaker states as reported by the health surface.
const (
	replicaClosed   = "closed"
	replicaOpen     = "open"
	replicaHalfOpen = "half-open"
)

// state classifies the breaker at time now. Callers hold h.mu.
func (h *replicaHealth) stateLocked(now time.Time) string {
	switch {
	case h.consecFails < h.cfg.threshold:
		return replicaClosed
	case h.probing || !now.Before(h.openUntil):
		return replicaHalfOpen
	default:
		return replicaOpen
	}
}

// available reports whether the replica belongs in the healthy
// rotation right now (breaker closed).
func (h *replicaHealth) available(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consecFails < h.cfg.threshold
}

// tryProbe claims the half-open probe slot: true when the breaker is
// open, its backoff has expired, and no other request holds the slot.
// The claim is released by the recordSuccess/recordFailure of the
// attempt that took it.
func (h *replicaHealth) tryProbe(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.consecFails < h.cfg.threshold || h.probing || now.Before(h.openUntil) {
		return false
	}
	h.probing = true
	return true
}

// recordAttempt counts a call routed at this replica.
func (h *replicaHealth) recordAttempt() {
	h.mu.Lock()
	h.attempts++
	h.mu.Unlock()
}

// releaseProbe returns the half-open probe slot; only the attempt
// that claimed it via tryProbe calls this, so a concurrent probe by
// another request is never released by mistake.
func (h *replicaHealth) releaseProbe() {
	h.mu.Lock()
	h.probing = false
	h.mu.Unlock()
}

// recordSuccess closes the breaker: any reply that made it through
// the transport layer below 5xx (including 4xx and generation
// mismatches — those are request- or plan-level conditions, not
// replica faults) proves the replica serves.
func (h *replicaHealth) recordSuccess() {
	h.mu.Lock()
	h.consecFails = 0
	h.trips = 0
	h.openUntil = time.Time{}
	h.lastErr = ""
	h.mu.Unlock()
}

// recordFailure counts a transport error or 5xx and opens (or
// re-opens, with doubled backoff) the breaker once the consecutive
// run reaches the threshold.
func (h *replicaHealth) recordFailure(now time.Time, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	h.consecFails++
	if err != nil {
		h.lastErr = err.Error()
	}
	if h.consecFails < h.cfg.threshold {
		return
	}
	backoff := h.cfg.base << min(h.trips, 16)
	if backoff <= 0 || backoff > h.cfg.maxBackoff {
		backoff = h.cfg.maxBackoff
	}
	// ±20% jitter decorrelates probe schedules across router fleet
	// members hammering the same recovering backend.
	jitter := time.Duration(rand.Int64N(int64(backoff)/5+1)) - backoff/10
	h.openUntil = now.Add(backoff + jitter)
	h.trips++
}

// ReplicaStatus is one replica's fault state as reported by
// Router.ShardHealth and GET /v1/shards.
type ReplicaStatus struct {
	URL          string
	State        string // closed | open | half-open
	ConsecFails  int
	Attempts     int64
	Failures     int64
	LastErr      string
	RetryAfterMS int64 // remaining backoff when open, else 0
}

// snapshot exports the replica's state for the health surface.
func (h *replicaHealth) snapshot(url string, now time.Time) ReplicaStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := ReplicaStatus{
		URL:         url,
		State:       h.stateLocked(now),
		ConsecFails: h.consecFails,
		Attempts:    h.attempts,
		Failures:    h.failures,
		LastErr:     h.lastErr,
	}
	if st.State == replicaOpen {
		st.RetryAfterMS = int64(h.openUntil.Sub(now) / time.Millisecond)
	}
	return st
}

// ShardHealth returns the breaker snapshot of every replica of the
// named shard, in configured replica order. Unknown names return nil.
func (rt *Router) ShardHealth(name string) []ReplicaStatus {
	urls, ok := rt.backends[name]
	if !ok {
		return nil
	}
	now := time.Now()
	out := make([]ReplicaStatus, len(urls))
	for i, u := range urls {
		out[i] = rt.health[u].snapshot(u, now)
	}
	return out
}

// replicaOrder decides the order the replicas of one shard are tried
// in: at most one half-open probe first (the request that wins the
// CAS carries the probe — that is how an opened breaker ever learns
// its backend recovered), then the closed replicas in rotation order
// (a per-shard round-robin counter spreads healthy-path load), then
// the open replicas soonest-retry first — never skipped entirely,
// because exactness demands a shard fail only when every replica
// actually refuses. The returned probe index (into the order) is -1
// when no probe slot was claimed.
func (rt *Router) replicaOrder(name string, urls []string) (order []int, probe int) {
	now := time.Now()
	probe = -1
	n := len(urls)
	if n == 1 {
		return []int{0}, -1
	}
	start := int(rt.rotation[name].Add(1) % uint64(n))
	var closed, open []int
	for j := 0; j < n; j++ {
		i := (start + j) % n
		h := rt.health[urls[i]]
		if probe < 0 && h.tryProbe(now) {
			order = append(order, i) // placed first below
			probe = 0
			continue
		}
		if h.available(now) {
			closed = append(closed, i)
		} else {
			open = append(open, i)
		}
	}
	order = append(order, closed...)
	order = append(order, open...)
	return order, probe
}

// validateBreaker rejects nonsense knobs at construction.
func (c *breakerConfig) validate() error {
	if c.threshold < 1 {
		return fmt.Errorf("router: breaker threshold %d, want >= 1", c.threshold)
	}
	if c.base <= 0 || c.maxBackoff < c.base {
		return fmt.Errorf("router: breaker backoff %v..%v, want 0 < base <= max", c.base, c.maxBackoff)
	}
	return nil
}
