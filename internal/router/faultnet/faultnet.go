// Package faultnet is a fault-injecting HTTP proxy for exercising the
// router's failure paths in tests. It generalizes the ad-hoc delaying
// proxy the first router suites hand-rolled: one Proxy fronts a real
// backend handler and, on command, kills connections, black-holes
// requests, delays them, or fails a deterministic percentage — the
// four failure shapes the failover, breaker, hedge and
// all-replicas-dead suites need. Faults switch atomically at any
// time, so a test can kill a replica mid-hammer and heal it later.
//
// The proxy forwards to an http.Handler in process (the same pattern
// httptest servers use), so no real second network hop exists and the
// injected fault is the only nondeterminism.
package faultnet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the injected fault.
type Mode int

const (
	// Healthy forwards every request untouched.
	Healthy Mode = iota
	// Kill hijacks and slams the TCP connection before any bytes are
	// written: the client sees a transport error, as with a dead
	// process.
	Kill
	// BlackHole accepts the request and never answers, holding the
	// connection until the client gives up: the shape of a wedged
	// backend, exercising timeout budgets.
	BlackHole
	// Slow delays by Fault.Delay, then forwards: correct bytes, late.
	Slow
	// Flaky answers a 503 for Fault.Percent of requests on a
	// deterministic modular schedule (request k fails iff
	// ⌊k·p/100⌋ > ⌊(k−1)·p/100⌋), forwarding the rest.
	Flaky
)

// Fault is one injected failure configuration.
type Fault struct {
	Mode    Mode
	Delay   time.Duration // Slow: added latency
	Percent int64         // Flaky: percentage of requests answered 503
}

// Proxy fronts a backend handler with injectable faults. Create with
// New; the zero value is not usable.
type Proxy struct {
	backend http.Handler
	srv     *httptest.Server

	mu    sync.Mutex
	fault Fault

	calls   atomic.Int64 // requests that reached the proxy
	faulted atomic.Int64 // requests a fault consumed
	holding atomic.Int64 // black-holed requests currently held
}

// New starts a fault proxy in front of backend. Close it when done.
func New(backend http.Handler) *Proxy {
	p := &Proxy{backend: backend}
	p.srv = httptest.NewServer(p)
	return p
}

// URL is the proxy's base URL — hand it to the router as a replica.
func (p *Proxy) URL() string { return p.srv.URL }

// Close shuts the proxy's listener down (a permanent Kill).
func (p *Proxy) Close() { p.srv.Close() }

// Set switches the injected fault; safe at any time, effective for
// the next request.
func (p *Proxy) Set(f Fault) {
	p.mu.Lock()
	p.fault = f
	p.mu.Unlock()
}

// Calls returns how many requests reached the proxy.
func (p *Proxy) Calls() int64 { return p.calls.Load() }

// Faulted returns how many requests a fault consumed.
func (p *Proxy) Faulted() int64 { return p.faulted.Load() }

// Holding returns how many black-holed requests are currently held —
// zero once every abandoned caller (a hedged loser, a timed-out
// attempt) has been canceled, which is how tests observe that the
// router released its losers.
func (p *Proxy) Holding() int64 { return p.holding.Load() }

// ServeHTTP implements http.Handler with the configured fault.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.calls.Add(1)
	p.mu.Lock()
	f := p.fault
	p.mu.Unlock()
	switch f.Mode {
	case Kill:
		p.faulted.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			// Last resort on a non-hijackable writer: a 5xx still reads
			// as a replica failure to the router.
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	case BlackHole:
		p.faulted.Add(1)
		// Drain the request first: the net/http server only watches for
		// client disconnects once the body is consumed, and a black hole
		// that never unblocks on caller cancellation would leak every
		// hedged loser it is supposed to observe.
		io.Copy(io.Discard, r.Body)
		p.holding.Add(1)
		<-r.Context().Done()
		p.holding.Add(-1)
	case Slow:
		select {
		case <-time.After(f.Delay):
		case <-r.Context().Done():
			p.faulted.Add(1)
			return
		}
		p.backend.ServeHTTP(w, r)
	case Flaky:
		if (n*f.Percent)/100 != ((n-1)*f.Percent)/100 {
			p.faulted.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"faultnet: injected failure %d"}`, n)
			return
		}
		p.backend.ServeHTTP(w, r)
	default:
		p.backend.ServeHTTP(w, r)
	}
}
