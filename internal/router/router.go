// Package router is the scatter-gather front end of sharded serving:
// one HTTP process that presents the whole-index /v1 query API while
// the index itself lives split across N shard backends (each an
// ordinary internal/server process serving one shard artifact from
// fairindex.ExtractShard). Requests fan out to the shards named by a
// shard.Manifest and the per-shard answers are reassembled with the
// exact merge kernels (fairindex.MergeNearest, MergeWindowStats,
// shard.MergeOverlaps) — responses are bit-identical to a single
// server holding the whole index, a property pinned by the
// sharded-vs-whole HTTP parity suite.
//
// Consistency model: every fan-out binds to one manifest snapshot and
// verifies each backend reply's Fairindex-Generation header against
// the snapshot's expected shard fingerprint. A mismatch — a backend
// serving a different artifact generation than the manifest describes,
// as happens mid hot-reload — rejects the whole fan-out; the router
// reloads its manifest (when a source is configured) and retries the
// request once against the new snapshot, then answers 409. Responses
// are therefore never assembled from mixed generations.
//
// Fault model: one manifest shard name may map to a replica set of
// interchangeable backends serving the same artifact. Each per-shard
// call tries the replicas sequentially — healthy rotation first,
// guided by a passive per-replica circuit breaker (health.go) — with
// the per-shard time budget split across the remaining attempts, so
// one dead replica degrades to its sibling instead of failing the
// request. Optionally, locate-class calls hedge: after WithHedge's
// delay the next replica is fired concurrently and the first valid
// reply wins, the loser canceled. A shard "fails" only when every
// replica refused; only then are Locate, LocateBatch, RangeQuery and
// kNN exact-or-fail — an unreachable shard is a 502, because a
// missing shard's regions would silently corrupt the answer. Window
// stats degrade instead: live shards' statistics are merged exactly
// and the response carries "partial": true naming no invented
// numbers — the aggregates are the true aggregates of the regions
// that answered. Score and Report are whole-index operations (scoring
// needs the true region centroid assignment) and answer 501.
//
// Replicas are deployment configuration, not artifact identity: the
// manifest codec is unchanged, and every replica of a shard must
// serve the exact artifact the manifest fingerprints — a stale
// replica is detected per-reply by the same generation check,
// and deliberately does NOT fail over (a generation mismatch is a
// plan-level transition, owned by the manifest reload-retry-409
// discipline, not a replica fault).
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	fairindex "fairindex"
	"fairindex/internal/geo"
	"fairindex/internal/server"
	"fairindex/internal/shard"
)

// DefaultTimeout bounds each per-shard backend call unless overridden
// with WithTimeout.
const DefaultTimeout = 5 * time.Second

// DefaultMaxBatch mirrors the backend server's default request-size
// bound (points per batch, regions per stats window).
const DefaultMaxBatch = 1 << 20

// maxReplyBytes caps how much of one backend response body the router
// reads; a larger reply is a deterministic shard failure, never a
// silent truncation. Override with WithMaxReplyBytes.
const maxReplyBytes = 64 << 20

// maxBodyBytes caps client request bodies, matching internal/server.
const maxBodyBytes = 64 << 20

// Backend names one shard's replica set: the manifest shard it serves
// and the base URLs (scheme://host:port) of the interchangeable
// servers answering for it, in preference order. URL is the
// single-replica convenience form; when URLs is non-empty it wins and
// URL is ignored. Every replica must serve the exact artifact the
// manifest fingerprints for the shard.
type Backend struct {
	Name string
	URL  string
	URLs []string
}

// urls normalizes the two spellings into one replica list.
func (b Backend) urls() []string {
	if len(b.URLs) > 0 {
		return b.URLs
	}
	if b.URL != "" {
		return []string{b.URL}
	}
	return nil
}

// ManifestSource re-reads the shard manifest, e.g. from its file; the
// router calls it to refresh its plan when backend generations stop
// matching (a hot reload in progress).
type ManifestSource func() (*shard.Manifest, error)

// Router is the scatter-gather handler. Create one with New, then use
// it as an http.Handler. All methods are safe for concurrent use.
type Router struct {
	client   *http.Client
	timeout  time.Duration
	maxBatch int
	maxReply int64
	hedge    time.Duration
	breaker  breakerConfig
	logger   *log.Logger
	mux      *http.ServeMux
	source   ManifestSource
	backends map[string][]string // shard name → replica URLs

	// health and rotation are keyed by replica URL / shard name and
	// fixed at construction: manifest reloads swap the plan, never the
	// deployment, so breaker state survives a generation handoff.
	health   map[string]*replicaHealth
	rotation map[string]*atomic.Uint64

	// state is the current consistent snapshot: manifest plus resolved
	// per-shard replica sets. Handlers load it once per request; reload
	// swaps it atomically.
	state    atomic.Pointer[routerState]
	reloadMu sync.Mutex
	reloads  atomic.Int64
}

// routerState binds one manifest generation to the replica sets
// serving it, with the coordinate mapper derived once.
type routerState struct {
	manifest *shard.Manifest
	mapper   geo.Mapper
	replicas [][]string // manifest shard order; each entry in config order
}

// Option configures a Router.
type Option func(*Router)

// WithTimeout sets the per-shard backend call timeout.
func WithTimeout(d time.Duration) Option {
	return func(rt *Router) {
		if d > 0 {
			rt.timeout = d
		}
	}
}

// WithClient sets the HTTP client used for backend calls.
func WithClient(c *http.Client) Option {
	return func(rt *Router) {
		if c != nil {
			rt.client = c
		}
	}
}

// WithMaxBatch caps request sizes (default DefaultMaxBatch).
func WithMaxBatch(n int) Option {
	return func(rt *Router) {
		if n > 0 {
			rt.maxBatch = n
		}
	}
}

// WithLogger routes router warnings to l.
func WithLogger(l *log.Logger) Option {
	return func(rt *Router) {
		if l != nil {
			rt.logger = l
		}
	}
}

// WithManifestSource enables manifest refresh on generation mismatch
// and POST /v1/reload.
func WithManifestSource(src ManifestSource) Option {
	return func(rt *Router) { rt.source = src }
}

// WithHedge enables hedged reads for locate-class calls: when a
// replica has not answered after d, the next replica is fired
// concurrently and the first valid reply wins (the loser is
// canceled). Zero disables hedging (the default). Hedging never
// changes answers — every replica serves the same fingerprinted
// artifact — only tail latency under a slow replica.
func WithHedge(d time.Duration) Option {
	return func(rt *Router) {
		if d > 0 {
			rt.hedge = d
		}
	}
}

// WithBreaker tunes the per-replica circuit breaker: threshold
// consecutive failures open a replica, base is the first backoff
// interval (doubled per re-trip, jittered), capped at maxBackoff.
func WithBreaker(threshold int, base, maxBackoff time.Duration) Option {
	return func(rt *Router) {
		rt.breaker = breakerConfig{threshold: threshold, base: base, maxBackoff: maxBackoff}
	}
}

// WithMaxReplyBytes caps how large one backend response body may be;
// a larger reply fails the replica call deterministically.
func WithMaxReplyBytes(n int64) Option {
	return func(rt *Router) {
		if n > 0 {
			rt.maxReply = n
		}
	}
}

// New wires a Router over a manifest and the backends serving its
// shards. Every manifest shard needs exactly one backend entry of the
// same name (which may carry several replica URLs); unknown or
// duplicate backend names are an error.
func New(m *shard.Manifest, backends []Backend, opts ...Option) (*Router, error) {
	rt := &Router{
		client:   &http.Client{},
		timeout:  DefaultTimeout,
		maxBatch: DefaultMaxBatch,
		maxReply: maxReplyBytes,
		breaker:  breakerConfig{threshold: DefaultBreakerThreshold, base: DefaultBreakerBackoff, maxBackoff: DefaultBreakerMaxBackoff},
		logger:   log.Default(),
		backends: make(map[string][]string, len(backends)),
	}
	for _, opt := range opts {
		opt(rt)
	}
	if err := rt.breaker.validate(); err != nil {
		return nil, err
	}
	rt.health = make(map[string]*replicaHealth)
	rt.rotation = make(map[string]*atomic.Uint64, len(backends))
	for _, b := range backends {
		if _, dup := rt.backends[b.Name]; dup {
			return nil, fmt.Errorf("router: duplicate backend %q", b.Name)
		}
		urls := b.urls()
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: backend %q has no URL", b.Name)
		}
		seen := make(map[string]bool, len(urls))
		trimmed := make([]string, len(urls))
		for i, u := range urls {
			u = strings.TrimRight(u, "/")
			if seen[u] {
				return nil, fmt.Errorf("router: backend %q lists replica %q twice", b.Name, u)
			}
			seen[u] = true
			trimmed[i] = u
			if rt.health[u] == nil {
				rt.health[u] = &replicaHealth{cfg: &rt.breaker}
			}
		}
		rt.backends[b.Name] = trimmed
		rt.rotation[b.Name] = new(atomic.Uint64)
	}
	st, err := newRouterState(m, rt.backends)
	if err != nil {
		return nil, err
	}
	rt.state.Store(st)

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/shards", rt.handleShards)
	rt.mux.HandleFunc("POST /v1/reload", rt.handleReload)
	rt.mux.HandleFunc("GET /v1/locate", rt.handleLocate)
	rt.mux.HandleFunc("POST /v1/locate", rt.handleLocate)
	rt.mux.HandleFunc("POST /v1/locate_batch", rt.handleLocateBatch)
	rt.mux.HandleFunc("POST /v1/range", rt.handleRange)
	rt.mux.HandleFunc("GET /v1/knn", rt.handleKNN)
	rt.mux.HandleFunc("POST /v1/knn", rt.handleKNN)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("POST /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("POST /v1/score", rt.handleUnsupported)
	rt.mux.HandleFunc("GET /v1/report/{task}", rt.handleUnsupported)
	return rt, nil
}

// newRouterState resolves a manifest against the configured backends.
func newRouterState(m *shard.Manifest, backends map[string][]string) (*routerState, error) {
	mapper, err := geo.NewMapper(m.Grid, m.Box)
	if err != nil {
		return nil, fmt.Errorf("router: manifest geometry: %w", err)
	}
	st := &routerState{manifest: m, mapper: mapper, replicas: make([][]string, len(m.Shards))}
	named := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		urls, ok := backends[s.Name]
		if !ok {
			return nil, fmt.Errorf("router: no backend for shard %q", s.Name)
		}
		st.replicas[i] = urls
		named[s.Name] = true
	}
	for name := range backends {
		if !named[name] {
			return nil, fmt.Errorf("router: backend %q matches no manifest shard", name)
		}
	}
	return st, nil
}

// Manifest returns the router's current manifest snapshot.
func (rt *Router) Manifest() *shard.Manifest { return rt.state.Load().manifest }

// Reloads returns how many times the router refreshed its manifest.
func (rt *Router) Reloads() int64 { return rt.reloads.Load() }

// Reload refreshes the manifest from the configured source — the same
// path POST /v1/reload takes. It errors when no source is configured
// or the new manifest does not resolve against the known backends.
func (rt *Router) Reload() error {
	if rt.source == nil {
		return errors.New("router: no manifest source configured for reload")
	}
	_, err := rt.reloadState()
	return err
}

// reloadState refreshes the manifest from the configured source and
// swaps the state; concurrent reloads are serialized and the state is
// only replaced after the new manifest resolves against the backends.
func (rt *Router) reloadState() (*routerState, error) {
	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	m, err := rt.source()
	if err != nil {
		return nil, fmt.Errorf("router: reloading manifest: %w", err)
	}
	st, err := newRouterState(m, rt.backends)
	if err != nil {
		return nil, err
	}
	rt.state.Store(st)
	rt.reloads.Add(1)
	return st, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	rt.mux.ServeHTTP(w, r)
}

// Wire types mirror internal/server's field order exactly so merged
// responses are byte-compatible with a whole-index server's.

type locateRequest struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

type locateResponse struct {
	Region int `json:"region"`
}

type locateBatchRequest struct {
	Lats []float64 `json:"lats"`
	Lons []float64 `json:"lons"`
}

type locateBatchResponse struct {
	Regions []int  `json:"regions"`
	Invalid int    `json:"invalid,omitempty"`
	Error   string `json:"error,omitempty"`
}

type rectJSON struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

type regionOverlapJSON struct {
	Region   int     `json:"region"`
	Cells    int     `json:"cells"`
	Fraction float64 `json:"fraction"`
}

type rangeResponse struct {
	Regions []regionOverlapJSON `json:"regions"`
	Count   int                 `json:"count"`
}

type knnRequest struct {
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
	K       int     `json:"k"`
	Squared bool    `json:"squared,omitempty"`
}

type neighborDistJSON struct {
	Region   int     `json:"region"`
	Distance float64 `json:"distance"`
}

type knnResponse struct {
	Neighbors []neighborDistJSON `json:"neighbors"`
	Squared   bool               `json:"squared,omitempty"`
}

type statsRequest struct {
	Task    int       `json:"task"`
	Regions []int     `json:"regions,omitempty"`
	Rect    *rectJSON `json:"rect,omitempty"`
	Metrics []string  `json:"metrics,omitempty"`
	Sums    bool      `json:"sums,omitempty"`
}

type regionStatJSON struct {
	Region   int       `json:"region"`
	Count    int       `json:"count"`
	MeanConf jsonFloat `json:"mean_conf"`
	PosRate  jsonFloat `json:"pos_rate"`
	Miscal   jsonFloat `json:"miscal"`
	CalRatio jsonFloat `json:"cal_ratio"`
	SumScore *float64  `json:"sum_score,omitempty"`
	SumLabel *float64  `json:"sum_label,omitempty"`
}

type statsResponse struct {
	Task     int                  `json:"task"`
	Count    int                  `json:"count"`
	MeanConf jsonFloat            `json:"mean_conf"`
	PosRate  jsonFloat            `json:"pos_rate"`
	Miscal   jsonFloat            `json:"miscal"`
	CalRatio jsonFloat            `json:"cal_ratio"`
	ENCE     jsonFloat            `json:"ence"`
	Metrics  map[string]jsonFloat `json:"metrics,omitempty"`
	Regions  []regionStatJSON     `json:"regions"`
	// Partial marks a degraded window-stats response: some shards were
	// unreachable and the aggregates cover only the regions that
	// answered (exactly). Absent on complete responses, so a healthy
	// deployment's bytes match a whole-index server's.
	Partial bool `json:"partial,omitempty"`
	// FailedShards names the shards a partial response is missing.
	FailedShards []string `json:"failed_shards,omitempty"`
}

type healthzResponse struct {
	Status     string `json:"status"`
	Shards     int    `json:"shards"`
	Regions    int    `json:"regions"`
	Generation string `json:"generation"`
	Reloads    int64  `json:"reloads"`
}

type shardInfoJSON struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Fingerprint string `json:"fingerprint"`
	// Status/Generation/Match summarize the shard: the first replica
	// whose probe answered ok (or the first replica when none did), so
	// single-replica deployments read exactly as before replica sets.
	Status     string `json:"status"`
	Generation string `json:"generation,omitempty"`
	Match      bool   `json:"match"`
	// Replicas details every replica's probe outcome and breaker state.
	Replicas []replicaInfoJSON `json:"replicas,omitempty"`
}

type replicaInfoJSON struct {
	URL        string `json:"url"`
	Status     string `json:"status"`
	Generation string `json:"generation,omitempty"`
	Match      bool   `json:"match"`
	// Breaker is the passive-health view: closed | open | half-open,
	// with the failure bookkeeping behind it.
	Breaker      string `json:"breaker"`
	ConsecFails  int    `json:"consecutive_failures,omitempty"`
	Attempts     int64  `json:"attempts"`
	Failures     int64  `json:"failures,omitempty"`
	LastError    string `json:"last_error,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

type shardsResponse struct {
	Generation string          `json:"generation"`
	Regions    int             `json:"regions"`
	Shards     []shardInfoJSON `json:"shards"`
}

type reloadResponse struct {
	Generation string `json:"generation"`
	Reloads    int64  `json:"reloads"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// jsonFloat mirrors internal/server's NaN/Inf→null float encoding so
// merged stats bytes match a whole-index server's.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// writeJSON writes v with the given status.
func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		rt.logger.Printf("router: writing response: %v", err)
	}
}

// writeError writes a JSON error body.
func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	rt.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// setGeneration stamps the manifest generation — the whole source
// index's fingerprint, so it matches what a whole-index server would
// send — on a data response.
func setGeneration(w http.ResponseWriter, st *routerState) {
	w.Header().Set(server.GenerationHeader, strconv.FormatUint(st.manifest.Generation, 10))
}

// decodeJSON strictly decodes a single JSON object request body,
// matching internal/server's request discipline.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing data")
	}
	return nil
}

// queryFloat parses a required float query parameter.
func queryFloat(r *http.Request, key string) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %v", key, err)
	}
	return f, nil
}

// Scatter machinery.

// shardCall is one backend request of a fan-out. hedge marks
// locate-class calls eligible for hedged reads under WithHedge.
type shardCall struct {
	method string
	path   string
	body   []byte // nil for GET
	hedge  bool
}

// shardReply is one backend's answer: transport error, or status plus
// body plus the generation header.
type shardReply struct {
	status int
	body   []byte
	gen    string
	err    error
}

// httpError is a terminal handler outcome: status plus message,
// written by the handler that receives it.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// scatter fans calls out to their shards concurrently and collects
// every reply; each per-shard call runs the replica failover loop
// under its own time budget.
func (rt *Router) scatter(ctx context.Context, st *routerState, calls map[int]shardCall) map[int]shardReply {
	replies := make(map[int]shardReply, len(calls))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call shardCall) {
			defer wg.Done()
			rep := rt.callShard(ctx, st, i, call)
			mu.Lock()
			replies[i] = rep
			mu.Unlock()
		}(i, call)
	}
	wg.Wait()
	return replies
}

// failsOver reports whether a replica attempt's outcome should move
// on to the next replica: transport errors and backend 5xx do; any
// reply below 500 — including 4xx (input-determined, identical on
// every replica) and generation mismatches (a plan-level transition
// owned by the manifest reload-retry discipline) — is terminal.
func failsOver(rep shardReply) bool {
	return rep.err != nil || rep.status >= 500
}

// callShard answers one shard's request by trying its replicas in
// rotation order under a single time budget of
// min(rt.timeout, remaining caller deadline) — attempts never outlive
// the caller, and each attempt's own timeout is its fair share of
// what remains (remaining / attempts left), so a black-holed replica
// cannot starve its siblings. Failover is sequential; when the call
// is hedgeable and WithHedge is set, the next replica is additionally
// fired after the hedge delay while the previous attempt is still in
// flight, and the first non-failing reply wins (losers are canceled
// and their canceled outcomes never count against replica health).
// The reply is the first terminal one, or the last failure once every
// replica refused — the only way a shard fails.
func (rt *Router) callShard(ctx context.Context, st *routerState, shardIdx int, call shardCall) shardReply {
	name := st.manifest.Shards[shardIdx].Name
	urls := st.replicas[shardIdx]
	order, probe := rt.replicaOrder(name, urls)

	total := rt.timeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < total {
			total = rem
		}
	}
	if total <= 0 {
		if probe >= 0 {
			rt.health[urls[order[probe]]].releaseProbe()
		}
		return shardReply{err: fmt.Errorf("router: no time budget left for shard %q: %w", name, context.DeadlineExceeded)}
	}
	deadline := time.Now().Add(total)
	bctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	type attemptResult struct {
		idx int // index into order
		rep shardReply
	}
	resCh := make(chan attemptResult, len(order))
	launched, pending := 0, 0
	// launch starts the next attempt in order with its fair share of
	// the remaining budget. Health bookkeeping happens in the attempt
	// goroutine so hedged losers are accounted even after the winner
	// returned — except canceled losers, which are neutral.
	launch := func() {
		idx := launched
		launched++
		pending++
		url := urls[order[idx]]
		h := rt.health[url]
		h.recordAttempt()
		attemptBudget := time.Until(deadline) / time.Duration(len(order)-idx)
		isProbe := idx == probe
		go func() {
			actx, acancel := context.WithTimeout(bctx, attemptBudget)
			defer acancel()
			rep := rt.doCall(actx, url, call)
			switch {
			case errors.Is(rep.err, context.Canceled):
				// A hedged loser (the winner canceled the fan-in) or a
				// vanished client — neither says anything about the replica.
			case failsOver(rep):
				h.recordFailure(time.Now(), rep.err)
			default:
				h.recordSuccess()
			}
			if isProbe {
				h.releaseProbe()
			}
			resCh <- attemptResult{idx: idx, rep: rep}
		}()
	}

	launch()
	var last shardReply
	for {
		var hedgeTimer <-chan time.Time
		if call.hedge && rt.hedge > 0 && launched < len(order) {
			hedgeTimer = time.After(rt.hedge)
		}
		select {
		case res := <-resCh:
			pending--
			if !failsOver(res.rep) {
				return res.rep
			}
			last = res.rep
			if launched < len(order) {
				launch()
				continue
			}
			if pending > 0 {
				continue // a hedged sibling may still answer
			}
			if len(order) > 1 {
				last.err = fmt.Errorf("router: all %d replicas of shard %q failed, last: %w",
					len(order), name, replyError(last))
			}
			return last
		case <-hedgeTimer:
			launch()
		}
	}
}

// replyError normalizes a failed reply into one error for wrapping.
func replyError(rep shardReply) error {
	if rep.err != nil {
		return rep.err
	}
	return fmt.Errorf("backend status %d", rep.status)
}

// doCall performs one HTTP request against one replica. A response
// body exceeding the reply cap is an explicit failure, never a silent
// truncation.
func (rt *Router) doCall(ctx context.Context, url string, call shardCall) shardReply {
	var body io.Reader
	if call.body != nil {
		body = bytes.NewReader(call.body)
	}
	req, err := http.NewRequestWithContext(ctx, call.method, url+call.path, body)
	if err != nil {
		return shardReply{err: err}
	}
	if call.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return shardReply{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.maxReply+1))
	if err != nil {
		return shardReply{err: err}
	}
	if int64(len(data)) > rt.maxReply {
		return shardReply{err: fmt.Errorf("router: reply exceeds %d-byte cap", rt.maxReply)}
	}
	return shardReply{status: resp.StatusCode, body: data, gen: resp.Header.Get(server.GenerationHeader)}
}

// mismatched returns the shards whose reply's generation header does
// not name the fingerprint the manifest snapshot expects. Transport
// failures are not mismatches (the fault path owns them), and an
// error reply without the header is a registry-level failure, not a
// generation signal.
func mismatched(st *routerState, replies map[int]shardReply) []int {
	var bad []int
	for i, rep := range replies {
		if rep.err != nil {
			continue
		}
		if rep.gen == "" && rep.status != http.StatusOK {
			continue
		}
		if rep.gen != strconv.FormatUint(st.manifest.Shards[i].Fingerprint, 10) {
			bad = append(bad, i)
		}
	}
	sort.Ints(bad)
	return bad
}

// scatterConsistent runs one generation-consistent fan-out: build
// derives the calls from a manifest snapshot, the replies are checked
// against that snapshot's fingerprints, and on any mismatch the
// manifest is reloaded (when a source is configured) and the whole
// fan-out rebuilt and retried exactly once. A mismatch surviving the
// retry is a 409: the deployment is mid-transition and no consistent
// answer exists.
func (rt *Router) scatterConsistent(ctx context.Context, build func(*routerState) (map[int]shardCall, *httpError)) (*routerState, map[int]shardReply, *httpError) {
	st := rt.state.Load()
	for attempt := 0; ; attempt++ {
		calls, herr := build(st)
		if herr != nil {
			return nil, nil, herr
		}
		replies := rt.scatter(ctx, st, calls)
		bad := mismatched(st, replies)
		if len(bad) == 0 {
			return st, replies, nil
		}
		if attempt == 0 && rt.source != nil {
			next, err := rt.reloadState()
			if err == nil {
				st = next
				continue
			}
			rt.logger.Printf("router: manifest reload after generation mismatch failed: %v", err)
		}
		names := make([]string, len(bad))
		for j, i := range bad {
			names[j] = st.manifest.Shards[i].Name
		}
		return nil, nil, &httpError{http.StatusConflict, fmt.Sprintf(
			"router: generation mismatch on shard(s) %s: backends serve a different artifact generation than the manifest",
			strings.Join(names, ", "))}
	}
}

// relay forwards one backend reply verbatim — used for client errors
// (4xx), which are input-determined and identical across shards.
func (rt *Router) relay(w http.ResponseWriter, st *routerState, rep shardReply) {
	setGeneration(w, st)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rep.status)
	w.Write(rep.body)
}

// firstClientError scans replies in shard order for a 4xx to relay.
func firstClientError(st *routerState, replies map[int]shardReply) (shardReply, bool) {
	for i := range st.manifest.Shards {
		rep, ok := replies[i]
		if !ok || rep.err != nil {
			continue
		}
		if rep.status >= 400 && rep.status < 500 {
			return rep, true
		}
	}
	return shardReply{}, false
}

// failedShards lists the shards (manifest order) whose reply failed at
// the transport layer or with a backend-side 5xx.
func failedShards(st *routerState, replies map[int]shardReply) []int {
	var down []int
	for i := range st.manifest.Shards {
		rep, ok := replies[i]
		if !ok {
			continue // shard not part of this fan-out
		}
		if rep.err != nil || rep.status >= 500 {
			down = append(down, i)
		}
	}
	return down
}

// unreachableError describes dead shards for a hard-failure response.
func (rt *Router) unreachableError(st *routerState, replies map[int]shardReply, down []int) error {
	parts := make([]string, len(down))
	for j, i := range down {
		rep := replies[i]
		if rep.err != nil {
			parts[j] = fmt.Sprintf("%s: %v", st.manifest.Shards[i].Name, rep.err)
		} else {
			parts[j] = fmt.Sprintf("%s: backend status %d", st.manifest.Shards[i].Name, rep.status)
		}
	}
	return fmt.Errorf("router: shard backend(s) unavailable: %s", strings.Join(parts, "; "))
}

func (rt *Router) handleUnsupported(w http.ResponseWriter, r *http.Request) {
	rt.writeError(w, http.StatusNotImplemented, errors.New(
		"router: score and report are whole-index operations; query a server holding the unsharded artifact"))
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.state.Load()
	// The router's own health probe doubles as a staleness probe, the
	// same contract the backends' /healthz honors: the generation
	// header names the whole artifact the current plan serves, so a
	// fleet monitor can spot a router pinned to an old manifest without
	// issuing a data-path request.
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, healthzResponse{
		Status:     "ok",
		Shards:     len(st.manifest.Shards),
		Regions:    st.manifest.NumRegions,
		Generation: strconv.FormatUint(st.manifest.Generation, 10),
		Reloads:    rt.reloads.Load(),
	})
}

// handleShards probes every replica's healthz directly (no failover —
// this surface reports faults instead of routing around them) and
// reports the plan side by side with what each backend actually
// serves, including each replica's breaker state.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	st := rt.state.Load()
	resp := shardsResponse{
		Generation: strconv.FormatUint(st.manifest.Generation, 10),
		Regions:    st.manifest.NumRegions,
		Shards:     make([]shardInfoJSON, len(st.manifest.Shards)),
	}
	probe := shardCall{method: http.MethodGet, path: "/healthz"}
	var wg sync.WaitGroup
	for i, s := range st.manifest.Shards {
		wg.Add(1)
		go func(i int, s shard.Shard) {
			defer wg.Done()
			urls := st.replicas[i]
			info := shardInfoJSON{
				Name:        s.Name,
				Lo:          s.Lo,
				Hi:          s.Hi,
				Fingerprint: strconv.FormatUint(s.Fingerprint, 10),
				Replicas:    make([]replicaInfoJSON, len(urls)),
			}
			now := time.Now()
			var inner sync.WaitGroup
			for j, url := range urls {
				inner.Add(1)
				go func(j int, url string) {
					defer inner.Done()
					actx, acancel := context.WithTimeout(r.Context(), rt.timeout)
					defer acancel()
					rep := rt.doCall(actx, url, probe)
					hs := rt.health[url].snapshot(url, now)
					ri := replicaInfoJSON{
						URL:          url,
						Breaker:      hs.State,
						ConsecFails:  hs.ConsecFails,
						Attempts:     hs.Attempts,
						Failures:     hs.Failures,
						LastError:    hs.LastErr,
						RetryAfterMS: hs.RetryAfterMS,
					}
					switch {
					case rep.err != nil:
						ri.Status = fmt.Sprintf("unreachable: %v", rep.err)
					case rep.status != http.StatusOK:
						ri.Status = fmt.Sprintf("unhealthy: status %d", rep.status)
					default:
						ri.Status = "ok"
					}
					if rep.err == nil {
						ri.Generation = rep.gen
						ri.Match = rep.gen == info.Fingerprint
					}
					info.Replicas[j] = ri
				}(j, url)
			}
			inner.Wait()
			// Summarize: first ok replica speaks for the shard, else the
			// first replica's failure does.
			summary := info.Replicas[0]
			for _, ri := range info.Replicas {
				if ri.Status == "ok" {
					summary = ri
					break
				}
			}
			info.URL = summary.URL
			info.Status = summary.Status
			info.Generation = summary.Generation
			info.Match = summary.Match
			resp.Shards[i] = info
		}(i, s)
	}
	wg.Wait()
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	if rt.source == nil {
		rt.writeError(w, http.StatusConflict, errors.New("router: no manifest source configured for reload"))
		return
	}
	st, err := rt.reloadState()
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, err)
		return
	}
	rt.writeJSON(w, http.StatusOK, reloadResponse{
		Generation: strconv.FormatUint(st.manifest.Generation, 10),
		Reloads:    rt.reloads.Load(),
	})
}

// handleLocate routes a point query by cell: the manifest's cell→
// region table names the owning region and hence the one shard to ask;
// the backend's answer (in its local id space) is translated back and
// cross-checked against the manifest.
func (rt *Router) handleLocate(w http.ResponseWriter, r *http.Request) {
	// Stamp the current generation up front so even locally-rejected
	// requests carry it, matching the server's resolve-then-validate
	// order; fan-out paths re-stamp with the snapshot that answered.
	setGeneration(w, rt.state.Load())
	var req locateRequest
	if r.Method == http.MethodGet {
		var err error
		if req.Lat, err = queryFloat(r, "lat"); err != nil {
			rt.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Lon, err = queryFloat(r, "lon"); err != nil {
			rt.writeError(w, http.StatusBadRequest, err)
			return
		}
	} else if err := decodeJSON(r, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	if math.IsNaN(req.Lat) || math.IsInf(req.Lat, 0) || math.IsNaN(req.Lon) || math.IsInf(req.Lon, 0) {
		// fairindex.Index.Locate's exact refusal, replicated here so the
		// router's 400 matches a whole-index server's byte for byte.
		rt.writeError(w, http.StatusBadRequest,
			fmt.Errorf("fairindex: non-finite coordinate (%v, %v)", req.Lat, req.Lon))
		return
	}
	var owner, want int
	body, _ := json.Marshal(locateRequest{Lat: req.Lat, Lon: req.Lon})
	st, replies, herr := rt.scatterConsistent(r.Context(), func(st *routerState) (map[int]shardCall, *httpError) {
		cell := st.mapper.CellOf(req.Lat, req.Lon)
		want = st.manifest.RegionOfCell(st.manifest.Grid.Index(cell))
		owner = st.manifest.ShardOfRegion(want)
		return map[int]shardCall{owner: {method: http.MethodPost, path: "/v1/locate", body: body, hedge: true}}, nil
	})
	if herr != nil {
		rt.writeError(w, herr.status, herr)
		return
	}
	rep := replies[owner]
	if down := failedShards(st, replies); len(down) > 0 {
		rt.writeError(w, http.StatusBadGateway, rt.unreachableError(st, replies, down))
		return
	}
	if rep.status != http.StatusOK {
		rt.relay(w, st, rep)
		return
	}
	var resp locateResponse
	if err := json.Unmarshal(rep.body, &resp); err != nil {
		rt.writeError(w, http.StatusBadGateway, fmt.Errorf("router: shard %q: malformed locate response: %v", st.manifest.Shards[owner].Name, err))
		return
	}
	global, ok := st.manifest.ToGlobal(owner, resp.Region)
	if !ok || global != want {
		rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
			"router: shard %q located region %d, manifest expects %d", st.manifest.Shards[owner].Name, resp.Region, want))
		return
	}
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, locateResponse{Region: global})
}

// handleLocateBatch splits a batch by owning shard, fans the per-shard
// sub-batches out, and scatters the translated answers back into
// request order. Invalid (non-finite) points never reach a backend:
// they are resolved locally with the whole index's exact sentinel and
// error text, original point indices preserved.
func (rt *Router) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	setGeneration(w, rt.state.Load())
	var req locateBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Lats) != len(req.Lons) {
		rt.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d lats vs %d lons", len(req.Lats), len(req.Lons)))
		return
	}
	if len(req.Lats) == 0 {
		rt.writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Lats) > rt.maxBatch {
		rt.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d points exceeds limit %d", len(req.Lats), rt.maxBatch))
		return
	}

	n := len(req.Lats)
	regions := make([]int, n)
	var (
		errs    []string
		invalid int
		subLats [][]float64
		subLons [][]float64
		subPos  [][]int
	)
	st, replies, herr := rt.scatterConsistent(r.Context(), func(st *routerState) (map[int]shardCall, *httpError) {
		numShards := len(st.manifest.Shards)
		subLats = make([][]float64, numShards)
		subLons = make([][]float64, numShards)
		subPos = make([][]int, numShards)
		errs = errs[:0]
		invalid = 0
		for i := 0; i < n; i++ {
			lat, lon := req.Lats[i], req.Lons[i]
			// x−x is 0 exactly when x is finite — the same predicate
			// fairindex.locateRange uses, so error text and order match.
			if lat-lat != 0 || lon-lon != 0 {
				regions[i] = fairindex.RegionInvalid
				invalid++
				if len(errs) < 8 {
					errs = append(errs, fmt.Sprintf("fairindex: point %d: non-finite coordinate (%v, %v)", i, lat, lon))
				}
				continue
			}
			cell := st.mapper.CellOf(lat, lon)
			region := st.manifest.RegionOfCell(st.manifest.Grid.Index(cell))
			regions[i] = region
			s := st.manifest.ShardOfRegion(region)
			subLats[s] = append(subLats[s], lat)
			subLons[s] = append(subLons[s], lon)
			subPos[s] = append(subPos[s], i)
		}
		if invalid > len(errs) {
			errs = append(errs, fmt.Sprintf("fairindex: %d further invalid points", invalid-len(errs)))
		}
		calls := make(map[int]shardCall, numShards)
		for s := range subLats {
			if len(subLats[s]) == 0 {
				continue
			}
			body, err := json.Marshal(locateBatchRequest{Lats: subLats[s], Lons: subLons[s]})
			if err != nil {
				return nil, &httpError{http.StatusInternalServerError, err.Error()}
			}
			calls[s] = shardCall{method: http.MethodPost, path: "/v1/locate_batch", body: body, hedge: true}
		}
		return calls, nil
	})
	if herr != nil {
		rt.writeError(w, herr.status, herr)
		return
	}
	if down := failedShards(st, replies); len(down) > 0 {
		rt.writeError(w, http.StatusBadGateway, rt.unreachableError(st, replies, down))
		return
	}
	if rep, ok := firstClientError(st, replies); ok {
		rt.relay(w, st, rep)
		return
	}
	for s, rep := range replies {
		var sub locateBatchResponse
		if err := json.Unmarshal(rep.body, &sub); err != nil || len(sub.Regions) != len(subPos[s]) {
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
				"router: shard %q: malformed batch response", st.manifest.Shards[s].Name))
			return
		}
		for j, local := range sub.Regions {
			global, ok := st.manifest.ToGlobal(s, local)
			if !ok || global != regions[subPos[s][j]] {
				rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
					"router: shard %q located region %d for point %d, manifest expects %d",
					st.manifest.Shards[s].Name, local, subPos[s][j], regions[subPos[s][j]]))
				return
			}
		}
	}
	resp := locateBatchResponse{Regions: regions, Invalid: invalid, Error: strings.Join(errs, "\n")}
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, resp)
}

// handleRange fans the rectangle to every shard and concatenates the
// translated per-shard overlap lists — shard ranges ascend, so the
// concatenation is the whole index's ascending-id result.
func (rt *Router) handleRange(w http.ResponseWriter, r *http.Request) {
	setGeneration(w, rt.state.Load())
	var req rectJSON
	if err := decodeJSON(r, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, _ := json.Marshal(req)
	st, replies, herr := rt.scatterConsistent(r.Context(), func(st *routerState) (map[int]shardCall, *httpError) {
		calls := make(map[int]shardCall, len(st.manifest.Shards))
		for i := range st.manifest.Shards {
			calls[i] = shardCall{method: http.MethodPost, path: "/v1/range", body: body}
		}
		return calls, nil
	})
	if herr != nil {
		rt.writeError(w, herr.status, herr)
		return
	}
	if down := failedShards(st, replies); len(down) > 0 {
		rt.writeError(w, http.StatusBadGateway, rt.unreachableError(st, replies, down))
		return
	}
	if rep, ok := firstClientError(st, replies); ok {
		rt.relay(w, st, rep)
		return
	}
	lists := make([][]fairindex.RegionOverlap, len(st.manifest.Shards))
	for i := range st.manifest.Shards {
		var sub rangeResponse
		if err := json.Unmarshal(replies[i].body, &sub); err != nil {
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
				"router: shard %q: malformed range response: %v", st.manifest.Shards[i].Name, err))
			return
		}
		ovs := make([]fairindex.RegionOverlap, len(sub.Regions))
		for j, ov := range sub.Regions {
			ovs[j] = fairindex.RegionOverlap{Region: ov.Region, Cells: ov.Cells, Fraction: ov.Fraction}
		}
		lists[i] = st.manifest.TranslateOverlaps(i, ovs)
	}
	merged := shard.MergeOverlaps(lists...)
	resp := rangeResponse{Regions: make([]regionOverlapJSON, len(merged)), Count: len(merged)}
	for i, ov := range merged {
		resp.Regions[i] = regionOverlapJSON{Region: ov.Region, Cells: ov.Cells, Fraction: ov.Fraction}
	}
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, resp)
}

// handleKNN fans the query to every shard in squared-distance space
// (k+1 candidates each, so dropping one sentinel per shard cannot
// starve the merge), merges on the exact (squared distance, id)
// selection key, and takes square roots last.
func (rt *Router) handleKNN(w http.ResponseWriter, r *http.Request) {
	setGeneration(w, rt.state.Load())
	var req knnRequest
	if r.Method == http.MethodGet {
		var err error
		if req.Lat, err = queryFloat(r, "lat"); err != nil {
			rt.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Lon, err = queryFloat(r, "lon"); err != nil {
			rt.writeError(w, http.StatusBadRequest, err)
			return
		}
		raw := r.URL.Query().Get("k")
		if raw == "" {
			rt.writeError(w, http.StatusBadRequest, errors.New("missing query parameter \"k\""))
			return
		}
		if req.K, err = strconv.Atoi(raw); err != nil {
			rt.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"k\": %v", err))
			return
		}
		if raw := r.URL.Query().Get("squared"); raw != "" {
			if req.Squared, err = strconv.ParseBool(raw); err != nil {
				rt.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"squared\": %v", err))
				return
			}
		}
	} else if err := decodeJSON(r, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.K > rt.maxBatch {
		rt.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("k of %d exceeds limit %d", req.K, rt.maxBatch))
		return
	}
	// Replicate NearestRegions' exact refusals before asking any shard
	// for k+1 candidates (which would mask k < 1).
	if math.IsNaN(req.Lat) || math.IsInf(req.Lat, 0) || math.IsNaN(req.Lon) || math.IsInf(req.Lon, 0) {
		rt.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: non-finite coordinate (%v, %v)", fairindex.ErrQuery, req.Lat, req.Lon))
		return
	}
	if req.K < 1 {
		rt.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: k must be at least 1, got %d", fairindex.ErrQuery, req.K))
		return
	}
	body, _ := json.Marshal(knnRequest{Lat: req.Lat, Lon: req.Lon, K: req.K + 1, Squared: true})
	st, replies, herr := rt.scatterConsistent(r.Context(), func(st *routerState) (map[int]shardCall, *httpError) {
		calls := make(map[int]shardCall, len(st.manifest.Shards))
		for i := range st.manifest.Shards {
			calls[i] = shardCall{method: http.MethodPost, path: "/v1/knn", body: body}
		}
		return calls, nil
	})
	if herr != nil {
		rt.writeError(w, herr.status, herr)
		return
	}
	if down := failedShards(st, replies); len(down) > 0 {
		rt.writeError(w, http.StatusBadGateway, rt.unreachableError(st, replies, down))
		return
	}
	if rep, ok := firstClientError(st, replies); ok {
		rt.relay(w, st, rep)
		return
	}
	lists := make([][]fairindex.RegionDistance, len(st.manifest.Shards))
	for i := range st.manifest.Shards {
		var sub knnResponse
		if err := json.Unmarshal(replies[i].body, &sub); err != nil {
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
				"router: shard %q: malformed knn response: %v", st.manifest.Shards[i].Name, err))
			return
		}
		nds := make([]fairindex.RegionDistance, len(sub.Neighbors))
		for j, nd := range sub.Neighbors {
			nds[j] = fairindex.RegionDistance{Region: nd.Region, Distance: nd.Distance}
		}
		lists[i] = st.manifest.TranslateNearest(i, nds)
	}
	merged := fairindex.MergeNearest(req.K, lists...)
	if !req.Squared {
		for i := range merged {
			merged[i].Distance = math.Sqrt(merged[i].Distance)
		}
	}
	resp := knnResponse{Neighbors: make([]neighborDistJSON, len(merged)), Squared: req.Squared}
	for i, nd := range merged {
		resp.Neighbors[i] = neighborDistJSON{Region: nd.Region, Distance: nd.Distance}
	}
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, resp)
}

// handleStats fans one window out to the shards owning it, gathers
// raw per-region sufficient statistics (the backends' "sums" surface)
// and refolds them with fairindex.MergeWindowStats — the same fold the
// whole index runs, so complete responses are bit-identical. Unlike
// the point queries, stats degrade under shard failure: live shards'
// regions are aggregated exactly and the response is marked partial.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	setGeneration(w, rt.state.Load())
	var req statsRequest
	if r.Method == http.MethodGet {
		if !rt.statsRequestFromQuery(w, r, &req) {
			return
		}
	} else if err := decodeJSON(r, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Regions == nil) == (req.Rect == nil) {
		rt.writeError(w, http.StatusBadRequest,
			errors.New("exactly one of \"regions\" and \"rect\" must be given"))
		return
	}
	if len(req.Regions) > rt.maxBatch {
		rt.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("window of %d regions exceeds limit %d", len(req.Regions), rt.maxBatch))
		return
	}

	var rectBody []byte
	if req.Rect != nil {
		rectBody, _ = json.Marshal(statsRequest{Task: req.Task, Rect: req.Rect, Sums: true})
	}
	st, replies, herr := rt.scatterConsistent(r.Context(), func(st *routerState) (map[int]shardCall, *httpError) {
		calls := make(map[int]shardCall, len(st.manifest.Shards))
		if req.Rect != nil {
			// Rect windows resolve per shard: each backend runs its own
			// RangeQuery over the same geometry, so the union of owned
			// results is exactly the whole index's window.
			for i := range st.manifest.Shards {
				calls[i] = shardCall{method: http.MethodPost, path: "/v1/stats", body: rectBody}
			}
			return calls, nil
		}
		// Explicit region lists are validated here in the global id
		// space (the backends only see local ids), replicating the
		// whole index's exact refusals.
		local := make([][]int, len(st.manifest.Shards))
		seen := make(map[int]bool, len(req.Regions))
		for _, region := range req.Regions {
			if region < 0 || region >= st.manifest.NumRegions {
				return nil, &httpError{http.StatusBadRequest, fmt.Sprintf(
					"%v: region %d out of range [0,%d)", fairindex.ErrQuery, region, st.manifest.NumRegions)}
			}
			if seen[region] {
				return nil, &httpError{http.StatusBadRequest, fmt.Sprintf(
					"%v: duplicate region %d", fairindex.ErrQuery, region)}
			}
			seen[region] = true
			s, l := st.manifest.ToLocal(region)
			local[s] = append(local[s], l)
		}
		for s, ids := range local {
			if len(ids) == 0 {
				continue
			}
			body, err := json.Marshal(statsRequest{Task: req.Task, Regions: ids, Sums: true})
			if err != nil {
				return nil, &httpError{http.StatusInternalServerError, err.Error()}
			}
			calls[s] = shardCall{method: http.MethodPost, path: "/v1/stats", body: body}
		}
		if len(calls) == 0 {
			// Empty window: probe the first shard so task validation
			// (404 on an unknown task) still happens somewhere. Written
			// by hand because omitempty would drop the empty list and
			// turn the request into the regions-vs-rect 400.
			calls[0] = shardCall{method: http.MethodPost, path: "/v1/stats",
				body: []byte(fmt.Sprintf(`{"task":%d,"regions":[],"sums":true}`, req.Task))}
		}
		return calls, nil
	})
	if herr != nil {
		rt.writeError(w, herr.status, herr)
		return
	}
	if rep, ok := firstClientError(st, replies); ok {
		rt.relay(w, st, rep)
		return
	}
	down := failedShards(st, replies)
	if len(down) == len(replies) {
		rt.writeError(w, http.StatusBadGateway, rt.unreachableError(st, replies, down))
		return
	}
	downSet := make(map[int]bool, len(down))
	var failedNames []string
	for _, i := range down {
		downSet[i] = true
		failedNames = append(failedNames, st.manifest.Shards[i].Name)
	}

	var gathered []fairindex.RegionStat
	for i := range st.manifest.Shards {
		rep, ok := replies[i]
		if !ok || downSet[i] {
			continue
		}
		var sub statsResponse
		if err := json.Unmarshal(rep.body, &sub); err != nil {
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
				"router: shard %q: malformed stats response: %v", st.manifest.Shards[i].Name, err))
			return
		}
		for _, rs := range sub.Regions {
			global, ok := st.manifest.ToGlobal(i, rs.Region)
			if !ok {
				continue // foreign sentinel
			}
			if rs.SumScore == nil || rs.SumLabel == nil {
				rt.writeError(w, http.StatusBadGateway, fmt.Errorf(
					"router: shard %q: backend response lacks raw sums (pre-sharding server version?)", st.manifest.Shards[i].Name))
				return
			}
			gathered = append(gathered, fairindex.RegionStat{
				Region: global, Count: rs.Count,
				SumScore: *rs.SumScore, SumLabel: *rs.SumLabel,
			})
		}
	}
	// The rect path resolves the window server-side, so the whole
	// server's post-resolution cap applies to the merged window here.
	if len(gathered) > rt.maxBatch {
		rt.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("window of %d regions exceeds limit %d", len(gathered), rt.maxBatch))
		return
	}
	var (
		ws  fairindex.WindowStats
		err error
	)
	if req.Metrics != nil {
		ws, err = fairindex.MergeWindowStatsMetrics(req.Task, gathered, req.Metrics...)
	} else {
		ws, err = fairindex.MergeWindowStats(req.Task, gathered)
	}
	if err != nil {
		// Merge errors wrap fairindex.ErrQuery (unknown metric names);
		// task and artifact-capability errors were already relayed from
		// the backends above.
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := statsResponse{
		Task:     ws.Task,
		Count:    ws.Count,
		MeanConf: jsonFloat(ws.MeanConf),
		PosRate:  jsonFloat(ws.PosRate),
		Miscal:   jsonFloat(ws.Miscal),
		CalRatio: jsonFloat(ws.CalRatio),
		ENCE:     jsonFloat(ws.ENCE),
		Regions:  make([]regionStatJSON, len(ws.Regions)),
		Partial:  len(down) > 0,
	}
	resp.FailedShards = failedNames
	if ws.Metrics != nil {
		resp.Metrics = make(map[string]jsonFloat, len(ws.Metrics))
		for name, v := range ws.Metrics {
			resp.Metrics[name] = jsonFloat(v)
		}
	}
	for i, rs := range ws.Regions {
		resp.Regions[i] = regionStatJSON{
			Region:   rs.Region,
			Count:    rs.Count,
			MeanConf: jsonFloat(rs.MeanConf),
			PosRate:  jsonFloat(rs.PosRate),
			Miscal:   jsonFloat(rs.Miscal),
			CalRatio: jsonFloat(rs.CalRatio),
		}
		if req.Sums {
			sc, sl := rs.SumScore, rs.SumLabel
			resp.Regions[i].SumScore = &sc
			resp.Regions[i].SumLabel = &sl
		}
	}
	setGeneration(w, st)
	rt.writeJSON(w, http.StatusOK, resp)
}

// statsRequestFromQuery parses the GET form of /v1/stats, mirroring
// internal/server's parameter grammar (task, regions|rect, metrics,
// sums).
func (rt *Router) statsRequestFromQuery(w http.ResponseWriter, r *http.Request, req *statsRequest) bool {
	q := r.URL.Query()
	if raw := q.Get("task"); raw != "" {
		task, err := strconv.Atoi(raw)
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"task\": %v", err))
			return false
		}
		req.Task = task
	}
	if raw := q.Get("regions"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				rt.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"regions\": %v", err))
				return false
			}
			req.Regions = append(req.Regions, v)
		}
	}
	if raw := q.Get("rect"); raw != "" {
		fields := strings.Split(raw, ",")
		if len(fields) != 4 {
			rt.writeError(w, http.StatusBadRequest,
				errors.New("query parameter \"rect\": want minLat,minLon,maxLat,maxLon"))
			return false
		}
		var vals [4]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				rt.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"rect\": %v", err))
				return false
			}
			vals[i] = v
		}
		req.Rect = &rectJSON{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}
	}
	if raw, ok := q["metrics"]; ok {
		req.Metrics = []string{}
		for _, part := range raw {
			for _, f := range strings.Split(part, ",") {
				if f = strings.TrimSpace(f); f != "" {
					req.Metrics = append(req.Metrics, f)
				}
			}
		}
	}
	if raw := q.Get("sums"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter \"sums\": %v", err))
			return false
		}
		req.Sums = v
	}
	return true
}
