package router_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/router"
	"fairindex/internal/router/faultnet"
	"fairindex/internal/server"
	"fairindex/internal/shard"
)

// buildWhole builds one LA index for sharding tests.
func buildWhole(t *testing.T, opts ...fairindex.Option) *fairindex.Index {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 400
	ds, err := dataset.Generate(spec, geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		opts = []fairindex.Option{fairindex.WithHeight(4), fairindex.WithSeed(7)}
	}
	idx, err := fairindex.Build(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// cluster is one sharded deployment under test: the whole index, its
// manifest, and one live httptest server per shard.
type cluster struct {
	whole    *fairindex.Index
	manifest *shard.Manifest
	servers  []*server.Server
	backends []*httptest.Server
}

// newCluster splits whole into n shards and starts one backend per
// shard.
func newCluster(t *testing.T, whole *fairindex.Index, n int) *cluster {
	t.Helper()
	m, shards, err := shard.Split(whole, n)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{whole: whole, manifest: m}
	for _, sx := range shards {
		srv := server.New(sx)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		c.servers = append(c.servers, srv)
		c.backends = append(c.backends, ts)
	}
	return c
}

// backendList names the cluster's backends for router.New.
func (c *cluster) backendList() []router.Backend {
	out := make([]router.Backend, len(c.backends))
	for i, ts := range c.backends {
		out[i] = router.Backend{Name: c.manifest.Shards[i].Name, URL: ts.URL}
	}
	return out
}

// newRouter starts the scatter-gather front end over the cluster.
func (c *cluster) newRouter(t *testing.T, opts ...router.Option) (*router.Router, *httptest.Server) {
	t.Helper()
	rt, err := router.New(c.manifest, c.backendList(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

// doJSON performs one request and decodes the response body.
func doJSON(t *testing.T, method, url, body string, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// pointInShard finds a coordinate whose owning region lies in shard
// s's range, by scanning grid cell centers.
func pointInShard(t *testing.T, m *shard.Manifest, s int) (float64, float64) {
	t.Helper()
	latStep := (m.Box.MaxLat - m.Box.MinLat) / float64(m.Grid.U)
	lonStep := (m.Box.MaxLon - m.Box.MinLon) / float64(m.Grid.V)
	for row := 0; row < m.Grid.U; row++ {
		for col := 0; col < m.Grid.V; col++ {
			region := m.CellRegion[row*m.Grid.V+col]
			if m.ShardOfRegion(region) == s {
				return m.Box.MinLat + (float64(row)+0.5)*latStep,
					m.Box.MinLon + (float64(col)+0.5)*lonStep
			}
		}
	}
	t.Fatalf("no cell owned by shard %d", s)
	return 0, 0
}

// TestRouterAnswersMatchWholeServer is the smoke-level HTTP parity
// check (the exhaustive matrix lives in the root shard_parity_test.go):
// one cluster, every endpoint, byte-identical to a whole-index server.
func TestRouterAnswersMatchWholeServer(t *testing.T) {
	whole := buildWhole(t)
	c := newCluster(t, whole, 3)
	_, rts := c.newRouter(t)
	wts := httptest.NewServer(server.New(whole))
	defer wts.Close()

	task := whole.Tasks()[0]
	requests := []struct{ method, path, body string }{
		{"GET", "/v1/locate?lat=34.02&lon=-118.41", ""},
		{"POST", "/v1/locate", `{"lat":33.95,"lon":-118.2}`},
		{"POST", "/v1/locate_batch", `{"lats":[34.0,33.9,34.2],"lons":[-118.3,-118.5,-118.25]}`},
		{"POST", "/v1/range", `{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.1,"max_lon":-118.2}`},
		{"GET", "/v1/knn?lat=34.05&lon=-118.45&k=7", ""},
		{"POST", "/v1/knn", `{"lat":34.05,"lon":-118.45,"k":4,"squared":true}`},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0,1,2,3]}`, task)},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"rect":{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.1,"max_lon":-118.2}}`, task)},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0,1,2],"metrics":[],"sums":true}`, task)},
		// Error parity: non-finite point, bad region list, bad rect.
		{"POST", "/v1/locate", `{"lat":"NaN"}`},
		{"GET", "/v1/knn?lat=1&lon=2&k=0", ""},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[1,1]}`, task)},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[99999]}`, task)},
		{"POST", "/v1/range", `{"min_lat":2,"min_lon":0,"max_lat":1,"max_lon":1}`},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0],"metrics":["nope"]}`, task)},
	}
	for _, rq := range requests {
		wantBody, wantStatus := rawRequest(t, rq.method, wts.URL+rq.path, rq.body)
		gotBody, gotStatus := rawRequest(t, rq.method, rts.URL+rq.path, rq.body)
		if gotStatus != wantStatus {
			t.Errorf("%s %s: status %d, whole server %d (router body %s)", rq.method, rq.path, gotStatus, wantStatus, gotBody)
			continue
		}
		if gotBody != wantBody {
			t.Errorf("%s %s:\nrouter %s\nwhole  %s", rq.method, rq.path, gotBody, wantBody)
		}
	}
}

// rawRequest returns a response body verbatim for byte comparison.
func rawRequest(t *testing.T, method, url, body string) (string, int) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), resp.StatusCode
}

// TestRouterUnsupportedEndpoints pins the 501 contract for whole-index
// operations.
func TestRouterUnsupportedEndpoints(t *testing.T) {
	c := newCluster(t, buildWhole(t), 2)
	_, rts := c.newRouter(t)
	for _, rq := range []struct{ method, path, body string }{
		{"POST", "/v1/score", `{"task":0,"lat":34,"lon":-118.4,"features":[]}`},
		{"GET", "/v1/report/0", ""},
	} {
		status, _ := doJSON(t, rq.method, rts.URL+rq.path, rq.body, nil)
		if status != http.StatusNotImplemented {
			t.Errorf("%s %s: status %d, want 501", rq.method, rq.path, status)
		}
	}
}

// TestRouterHealthzGeneration pins the staleness-probe contract on
// the router's own health endpoint: /healthz answers without touching
// any backend and carries the Fairindex-Generation header of the plan
// it currently serves, matching what the backends' /healthz reports.
func TestRouterHealthzGeneration(t *testing.T) {
	c := newCluster(t, buildWhole(t), 2)
	_, rts := c.newRouter(t)
	gen, err := c.whole.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	want := strconv.FormatUint(gen, 10)

	var health struct {
		Status     string `json:"status"`
		Shards     int    `json:"shards"`
		Generation string `json:"generation"`
	}
	status, hdr := doJSON(t, "GET", rts.URL+"/healthz", "", &health)
	if status != http.StatusOK || health.Status != "ok" || health.Shards != 2 {
		t.Fatalf("healthz: status %d body %+v", status, health)
	}
	if health.Generation != want {
		t.Errorf("healthz generation %q, want %s", health.Generation, want)
	}
	if got := hdr.Get(server.GenerationHeader); got != want {
		t.Errorf("healthz %s = %q, want %s", server.GenerationHeader, got, want)
	}

	// No data-path request needed: the probe answers with every
	// backend down.
	for _, ts := range c.backends {
		ts.Close()
	}
	status, hdr = doJSON(t, "GET", rts.URL+"/healthz", "", &health)
	if status != http.StatusOK || hdr.Get(server.GenerationHeader) != want {
		t.Errorf("healthz with backends down: status %d gen %q", status, hdr.Get(server.GenerationHeader))
	}
}

// TestRouterShardsEndpoint checks the health/generation surface.
func TestRouterShardsEndpoint(t *testing.T) {
	c := newCluster(t, buildWhole(t), 3)
	_, rts := c.newRouter(t)

	var resp struct {
		Generation string `json:"generation"`
		Regions    int    `json:"regions"`
		Shards     []struct {
			Name        string `json:"name"`
			URL         string `json:"url"`
			Lo          int    `json:"lo"`
			Hi          int    `json:"hi"`
			Fingerprint string `json:"fingerprint"`
			Status      string `json:"status"`
			Generation  string `json:"generation"`
			Match       bool   `json:"match"`
		} `json:"shards"`
	}
	status, _ := doJSON(t, "GET", rts.URL+"/v1/shards", "", &resp)
	if status != http.StatusOK {
		t.Fatalf("shards: status %d", status)
	}
	wantGen, err := c.whole.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Generation != strconv.FormatUint(wantGen, 10) {
		t.Errorf("generation %q, want %d", resp.Generation, wantGen)
	}
	if resp.Regions != c.whole.NumRegions() || len(resp.Shards) != 3 {
		t.Fatalf("regions=%d shards=%d", resp.Regions, len(resp.Shards))
	}
	for i, s := range resp.Shards {
		if s.Status != "ok" || !s.Match {
			t.Errorf("shard %d: status %q match %v", i, s.Status, s.Match)
		}
		if s.Generation != s.Fingerprint {
			t.Errorf("shard %d: generation %q vs fingerprint %q", i, s.Generation, s.Fingerprint)
		}
		if s.Lo != c.manifest.Shards[i].Lo || s.Hi != c.manifest.Shards[i].Hi {
			t.Errorf("shard %d: range [%d,%d), want [%d,%d)", i, s.Lo, s.Hi, c.manifest.Shards[i].Lo, c.manifest.Shards[i].Hi)
		}
	}

	// Kill one backend: its entry degrades, the others stay ok.
	c.backends[1].Close()
	status, _ = doJSON(t, "GET", rts.URL+"/v1/shards", "", &resp)
	if status != http.StatusOK {
		t.Fatalf("shards after kill: status %d", status)
	}
	if !strings.HasPrefix(resp.Shards[1].Status, "unreachable") {
		t.Errorf("killed shard status %q", resp.Shards[1].Status)
	}
	if resp.Shards[0].Status != "ok" || resp.Shards[2].Status != "ok" {
		t.Errorf("live shards degraded: %q %q", resp.Shards[0].Status, resp.Shards[2].Status)
	}
}

// TestRouterKillOneShard pins the fault contract: point and geometry
// queries needing the dead shard hard-fail with 502, a Locate owned by
// a live shard still answers, and window stats degrade to an exact
// partial aggregate over the live shards.
func TestRouterKillOneShard(t *testing.T) {
	whole := buildWhole(t)
	c := newCluster(t, whole, 3)
	_, rts := c.newRouter(t)
	task := whole.Tasks()[0]

	deadLat, deadLon := pointInShard(t, c.manifest, 1)
	liveLat, liveLon := pointInShard(t, c.manifest, 0)
	c.backends[1].Close()

	// Locate routed to the dead shard: 502.
	status, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, deadLat, deadLon), "", nil)
	if status != http.StatusBadGateway {
		t.Errorf("locate via dead shard: status %d, want 502", status)
	}
	// Locate owned by a live shard: unaffected — routing is by cell.
	var loc struct {
		Region int `json:"region"`
	}
	status, _ = doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, liveLat, liveLon), "", &loc)
	if status != http.StatusOK {
		t.Fatalf("locate via live shard: status %d", status)
	}
	if want, _ := whole.Locate(liveLat, liveLon); loc.Region != want {
		t.Errorf("live locate region %d, want %d", loc.Region, want)
	}

	// Batch containing a dead-shard point, kNN and range: 502.
	for _, rq := range []struct{ method, path, body string }{
		{"POST", "/v1/locate_batch", fmt.Sprintf(`{"lats":[%v,%v],"lons":[%v,%v]}`, liveLat, deadLat, liveLon, deadLon)},
		{"GET", fmt.Sprintf("/v1/knn?lat=%v&lon=%v&k=3", liveLat, liveLon), ""},
		{"POST", "/v1/range", `{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.1,"max_lon":-118.2}`},
	} {
		status, _ := doJSON(t, rq.method, rts.URL+rq.path, rq.body, nil)
		if status != http.StatusBadGateway {
			t.Errorf("%s %s with dead shard: status %d, want 502", rq.method, rq.path, status)
		}
	}

	// Window stats: partial, naming the dead shard, with the live
	// regions' aggregates bit-identical to the whole index restricted
	// to those regions.
	allRegions := make([]int, whole.NumRegions())
	liveRegions := make([]int, 0, whole.NumRegions())
	dead := c.manifest.Shards[1]
	for r := range allRegions {
		allRegions[r] = r
		if r < dead.Lo || r >= dead.Hi {
			liveRegions = append(liveRegions, r)
		}
	}
	var got statsWire
	body, _ := json.Marshal(map[string]any{"task": task, "regions": allRegions})
	status, _ = doJSON(t, "POST", rts.URL+"/v1/stats", string(body), &got)
	if status != http.StatusOK {
		t.Fatalf("partial stats: status %d", status)
	}
	if !got.Partial {
		t.Error("stats with dead shard not marked partial")
	}
	if len(got.FailedShards) != 1 || got.FailedShards[0] != dead.Name {
		t.Errorf("failed_shards = %v, want [%s]", got.FailedShards, dead.Name)
	}
	want, err := whole.GroupStats(task, liveRegions)
	if err != nil {
		t.Fatal(err)
	}
	requireStatsEqual(t, got, want)
}

// statsWire decodes a router stats response for comparison.
type statsWire struct {
	Task     int      `json:"task"`
	Count    int      `json:"count"`
	MeanConf *float64 `json:"mean_conf"`
	PosRate  *float64 `json:"pos_rate"`
	Miscal   *float64 `json:"miscal"`
	CalRatio *float64 `json:"cal_ratio"`
	ENCE     *float64 `json:"ence"`
	Regions  []struct {
		Region int `json:"region"`
		Count  int `json:"count"`
	} `json:"regions"`
	Partial      bool     `json:"partial"`
	FailedShards []string `json:"failed_shards"`
}

// requireStatsEqual compares a wire response against an in-process
// WindowStats, treating JSON null as NaN.
func requireStatsEqual(t *testing.T, got statsWire, want fairindex.WindowStats) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("count %d, want %d", got.Count, want.Count)
	}
	cmp := func(name string, g *float64, w float64) {
		gv := math.NaN()
		if g != nil {
			gv = *g
		}
		if math.Float64bits(gv) != math.Float64bits(w) && !(math.IsNaN(gv) && math.IsNaN(w)) {
			t.Errorf("%s = %v, want %v", name, gv, w)
		}
	}
	cmp("mean_conf", got.MeanConf, want.MeanConf)
	cmp("pos_rate", got.PosRate, want.PosRate)
	cmp("miscal", got.Miscal, want.Miscal)
	cmp("cal_ratio", got.CalRatio, want.CalRatio)
	cmp("ence", got.ENCE, want.ENCE)
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("%d regions, want %d", len(got.Regions), len(want.Regions))
	}
	for i, rs := range want.Regions {
		if got.Regions[i].Region != rs.Region || got.Regions[i].Count != rs.Count {
			t.Errorf("region[%d] = (%d,%d), want (%d,%d)", i,
				got.Regions[i].Region, got.Regions[i].Count, rs.Region, rs.Count)
		}
	}
}

// TestRouterSlowShardTimeout pins per-shard timeout semantics with a
// stub backend that answers correctly but too late: stats degrade to
// partial, point queries 502.
func TestRouterSlowShardTimeout(t *testing.T) {
	whole := buildWhole(t)
	c := newCluster(t, whole, 2)
	task := whole.Tasks()[0]

	// Front shard 1's handler with a delaying fault proxy — correct
	// bytes, correct generation, 300ms late.
	slow := faultnet.New(c.servers[1])
	defer slow.Close()
	slow.Set(faultnet.Fault{Mode: faultnet.Slow, Delay: 300 * time.Millisecond})
	backends := c.backendList()
	backends[1].URL = slow.URL()
	rt, err := router.New(c.manifest, backends, router.WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	var got statsWire
	body, _ := json.Marshal(map[string]any{"task": task, "rect": map[string]float64{
		"min_lat": c.manifest.Box.MinLat, "min_lon": c.manifest.Box.MinLon,
		"max_lat": c.manifest.Box.MaxLat, "max_lon": c.manifest.Box.MaxLon,
	}})
	status, _ := doJSON(t, "POST", rts.URL+"/v1/stats", string(body), &got)
	if status != http.StatusOK {
		t.Fatalf("stats with slow shard: status %d", status)
	}
	if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != c.manifest.Shards[1].Name {
		t.Errorf("partial=%v failed=%v", got.Partial, got.FailedShards)
	}
	liveRegions := make([]int, 0)
	for r := c.manifest.Shards[0].Lo; r < c.manifest.Shards[0].Hi; r++ {
		liveRegions = append(liveRegions, r)
	}
	want, err := whole.GroupStats(task, liveRegions)
	if err != nil {
		t.Fatal(err)
	}
	requireStatsEqual(t, got, want)

	// kNN needs every shard: the slow one times it out into a 502.
	status, _ = doJSON(t, "GET", rts.URL+"/v1/knn?lat=34.0&lon=-118.4&k=3", "", nil)
	if status != http.StatusBadGateway {
		t.Errorf("knn with slow shard: status %d, want 502", status)
	}
}

// TestRouterGenerationMismatch pins the consistency discipline: a
// backend serving a different artifact generation than the manifest is
// rejected with 409 (no source to reload from), and never silently
// merged.
func TestRouterGenerationMismatch(t *testing.T) {
	whole := buildWhole(t)
	other := buildWhole(t, fairindex.WithHeight(3), fairindex.WithSeed(99))
	c := newCluster(t, whole, 2)
	_, rts := c.newRouter(t)
	task := whole.Tasks()[0]

	// Swap shard 1's backend to an artifact from a different build.
	_, otherShards, err := shard.Split(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.servers[1].Swap(otherShards[1])

	for _, rq := range []struct{ method, path, body string }{
		{"POST", "/v1/range", `{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.2,"max_lon":-118.2}`},
		{"GET", "/v1/knn?lat=34.0&lon=-118.4&k=3", ""},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"rect":{"min_lat":33.7,"min_lon":-118.7,"max_lat":34.3,"max_lon":-118.1}}`, task)},
	} {
		status, _ := doJSON(t, rq.method, rts.URL+rq.path, rq.body, nil)
		if status != http.StatusConflict {
			t.Errorf("%s %s against mixed generations: status %d, want 409", rq.method, rq.path, status)
		}
	}
}

// TestRouterHotReloadRetry pins the recovery path: when the backends
// move to a new generation and the manifest source follows, a request
// that observes the mismatch reloads the manifest and succeeds on its
// single retry.
func TestRouterHotReloadRetry(t *testing.T) {
	wholeA := buildWhole(t)
	wholeB := buildWhole(t, fairindex.WithHeight(5), fairindex.WithSeed(11))
	c := newCluster(t, wholeA, 2)

	mB, shardsB, err := shard.Split(wholeB, 2)
	if err != nil {
		t.Fatal(err)
	}
	var current atomic.Pointer[shard.Manifest]
	current.Store(c.manifest)
	rt, err := router.New(c.manifest, c.backendList(),
		router.WithManifestSource(func() (*shard.Manifest, error) { return current.Load(), nil }))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// Move the deployment to generation B: manifest first, then the
	// backends (matching the operational order: publish the new plan,
	// then HUP the servers).
	current.Store(mB)
	for i, srv := range c.servers {
		srv.Swap(shardsB[i])
	}

	var resp struct {
		Region int `json:"region"`
	}
	status, hdr := doJSON(t, "GET", rts.URL+"/v1/locate?lat=34.05&lon=-118.35", "", &resp)
	if status != http.StatusOK {
		t.Fatalf("locate after hot reload: status %d", status)
	}
	want, err := wholeB.Locate(34.05, -118.35)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Region != want {
		t.Errorf("region %d, want generation B's %d", resp.Region, want)
	}
	genB, err := wholeB.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got := hdr.Get("Fairindex-Generation"); got != strconv.FormatUint(genB, 10) {
		t.Errorf("response generation %q, want %d", got, genB)
	}
	if rt.Reloads() == 0 {
		t.Error("router answered without reloading the manifest")
	}
}

// TestRouterConsistencyUnderConcurrentReload hammers the router from
// many goroutines while the deployment flips generations, asserting
// every single response is internally consistent: a 200 carries one
// generation's header AND that generation's exact answer, transition
// windows yield only 409s (or 502 for requests caught mid-swap),
// never a mixed or wrong-generation body. Run with -race.
func TestRouterConsistencyUnderConcurrentReload(t *testing.T) {
	wholeA := buildWhole(t)
	wholeB := buildWhole(t, fairindex.WithHeight(5), fairindex.WithSeed(11))
	c := newCluster(t, wholeA, 3)
	mB, shardsB, err := shard.Split(wholeB, 3)
	if err != nil {
		t.Fatal(err)
	}
	var current atomic.Pointer[shard.Manifest]
	current.Store(c.manifest)
	rt, err := router.New(c.manifest, c.backendList(),
		router.WithManifestSource(func() (*shard.Manifest, error) { return current.Load(), nil }))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	const probeLat, probeLon = 34.07, -118.33
	genOf := func(ix *fairindex.Index) string {
		fp, err := ix.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return strconv.FormatUint(fp, 10)
	}
	wantRegion := map[string]int{}
	for _, ix := range []*fairindex.Index{wholeA, wholeB} {
		r, err := ix.Locate(probeLat, probeLon)
		if err != nil {
			t.Fatal(err)
		}
		wantRegion[genOf(ix)] = r
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		fail atomic.Pointer[string]
	)
	record := func(msg string) { fail.CompareAndSwap(nil, &msg) }
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, probeLat, probeLon))
				if err != nil {
					record(fmt.Sprintf("transport error: %v", err))
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					gen := resp.Header.Get("Fairindex-Generation")
					want, known := wantRegion[gen]
					if !known {
						record(fmt.Sprintf("200 with unknown generation %q", gen))
						return
					}
					var out struct {
						Region int `json:"region"`
					}
					if err := json.Unmarshal(body, &out); err != nil || out.Region != want {
						record(fmt.Sprintf("generation %q answered region %d, want %d (err %v)", gen, out.Region, want, err))
						return
					}
				case http.StatusConflict, http.StatusBadGateway:
					// Mid-transition: consistent refusal is the contract.
				default:
					record(fmt.Sprintf("unexpected status %d: %s", resp.StatusCode, body))
					return
				}
			}
		}()
	}

	// Flip A→B→A a few times while the readers run.
	for flip := 0; flip < 6; flip++ {
		time.Sleep(20 * time.Millisecond)
		if flip%2 == 0 {
			current.Store(mB)
			for i, srv := range c.servers {
				srv.Swap(shardsB[i])
			}
		} else {
			current.Store(c.manifest)
			// Re-extract generation A's shards: Swap handed B in, so
			// recreate A's artifacts from the retained whole index.
			_, shardsA, err := shard.Split(wholeA, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i, srv := range c.servers {
				srv.Swap(shardsA[i])
			}
		}
	}
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(*msg)
	}
}
