package router_test

// Replica-set fault suites: failover, circuit breaker, hedged reads,
// all-replicas-dead degradation, reply truncation and caller-deadline
// budgeting, all driven through the faultnet fault-injection proxy.
// Run with -race (the shard-e2e CI job does).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	fairindex "fairindex"
	"fairindex/internal/router"
	"fairindex/internal/router/faultnet"
	"fairindex/internal/server"
	"fairindex/internal/shard"
)

// replicaCluster is a sharded deployment where every shard is served
// by several faultnet-fronted replicas of the same artifact.
type replicaCluster struct {
	whole    *fairindex.Index
	manifest *shard.Manifest
	servers  []*server.Server
	proxies  [][]*faultnet.Proxy // [shard][replica]
}

// newReplicaCluster splits whole into nShards and fronts each shard's
// server with nReplicas independent fault proxies.
func newReplicaCluster(t *testing.T, whole *fairindex.Index, nShards, nReplicas int) *replicaCluster {
	t.Helper()
	m, shards, err := shard.Split(whole, nShards)
	if err != nil {
		t.Fatal(err)
	}
	c := &replicaCluster{whole: whole, manifest: m}
	for _, sx := range shards {
		srv := server.New(sx)
		c.servers = append(c.servers, srv)
		replicas := make([]*faultnet.Proxy, nReplicas)
		for r := range replicas {
			p := faultnet.New(srv)
			t.Cleanup(p.Close)
			replicas[r] = p
		}
		c.proxies = append(c.proxies, replicas)
	}
	return c
}

// backendList names every shard's replica set for router.New.
func (c *replicaCluster) backendList() []router.Backend {
	out := make([]router.Backend, len(c.proxies))
	for i, replicas := range c.proxies {
		urls := make([]string, len(replicas))
		for j, p := range replicas {
			urls[j] = p.URL()
		}
		out[i] = router.Backend{Name: c.manifest.Shards[i].Name, URLs: urls}
	}
	return out
}

func (c *replicaCluster) newRouter(t *testing.T, opts ...router.Option) (*router.Router, *httptest.Server) {
	t.Helper()
	rt, err := router.New(c.manifest, c.backendList(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

// TestRouterFailoverKilledReplica pins the headline replica contract:
// with one replica of EVERY shard dead, every endpoint keeps
// answering with bytes identical to a whole-index server, and the
// dead replicas' breakers open.
func TestRouterFailoverKilledReplica(t *testing.T) {
	whole := buildWhole(t)
	c := newReplicaCluster(t, whole, 3, 2)
	rt, rts := c.newRouter(t, router.WithBreaker(2, 50*time.Millisecond, 500*time.Millisecond))
	wts := httptest.NewServer(server.New(whole))
	defer wts.Close()

	for i := range c.proxies {
		c.proxies[i][0].Set(faultnet.Fault{Mode: faultnet.Kill})
	}

	task := whole.Tasks()[0]
	requests := []struct{ method, path, body string }{
		{"GET", "/v1/locate?lat=34.02&lon=-118.41", ""},
		{"POST", "/v1/locate_batch", `{"lats":[34.0,33.9,34.2],"lons":[-118.3,-118.5,-118.25]}`},
		{"POST", "/v1/range", `{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.1,"max_lon":-118.2}`},
		{"GET", "/v1/knn?lat=34.05&lon=-118.45&k=5", ""},
		{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"rect":{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.1,"max_lon":-118.2}}`, task)},
	}
	// Several rounds so the rotation lands every request shape on the
	// dead replica at least once.
	for round := 0; round < 4; round++ {
		for _, rq := range requests {
			wantBody, wantStatus := rawRequest(t, rq.method, wts.URL+rq.path, rq.body)
			gotBody, gotStatus := rawRequest(t, rq.method, rts.URL+rq.path, rq.body)
			if gotStatus != wantStatus || gotBody != wantBody {
				t.Fatalf("round %d %s %s: status %d (want %d)\nrouter %s\nwhole  %s",
					round, rq.method, rq.path, gotStatus, wantStatus, gotBody, wantBody)
			}
		}
	}
	// A partial=false stats answer proves no shard was counted failed.
	var got statsWire
	body, _ := json.Marshal(map[string]any{"task": task, "rect": map[string]float64{
		"min_lat": c.manifest.Box.MinLat, "min_lon": c.manifest.Box.MinLon,
		"max_lat": c.manifest.Box.MaxLat, "max_lon": c.manifest.Box.MaxLon,
	}})
	status, _ := doJSON(t, "POST", rts.URL+"/v1/stats", string(body), &got)
	if status != http.StatusOK || got.Partial {
		t.Fatalf("stats with one replica dead per shard: status %d partial %v", status, got.Partial)
	}

	// The dead replicas' breakers opened; the live ones stayed closed.
	for i := range c.proxies {
		hs := rt.ShardHealth(c.manifest.Shards[i].Name)
		if len(hs) != 2 {
			t.Fatalf("shard %d: %d replica health entries", i, len(hs))
		}
		if hs[0].State == "closed" {
			t.Errorf("shard %d: killed replica breaker still closed after %d failures", i, hs[0].Failures)
		}
		if hs[0].LastErr == "" {
			t.Errorf("shard %d: killed replica has no recorded error", i)
		}
		if hs[1].State != "closed" || hs[1].Failures != 0 {
			t.Errorf("shard %d: live replica state %q failures %d", i, hs[1].State, hs[1].Failures)
		}
	}
}

// TestRouterAllReplicasDead pins the degradation floor: with every
// replica of one shard dead, point queries on that shard 502, live
// shards keep answering, and window stats degrade partial — exactly
// the single-backend fault contract.
func TestRouterAllReplicasDead(t *testing.T) {
	whole := buildWhole(t)
	c := newReplicaCluster(t, whole, 3, 2)
	_, rts := c.newRouter(t, router.WithTimeout(2*time.Second))
	task := whole.Tasks()[0]

	deadLat, deadLon := pointInShard(t, c.manifest, 1)
	liveLat, liveLon := pointInShard(t, c.manifest, 0)
	for _, p := range c.proxies[1] {
		p.Set(faultnet.Fault{Mode: faultnet.Kill})
	}

	status, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, deadLat, deadLon), "", nil)
	if status != http.StatusBadGateway {
		t.Errorf("locate via dead shard: status %d, want 502", status)
	}
	var loc struct {
		Region int `json:"region"`
	}
	status, _ = doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, liveLat, liveLon), "", &loc)
	if status != http.StatusOK {
		t.Fatalf("locate via live shard: status %d", status)
	}
	if want, _ := whole.Locate(liveLat, liveLon); loc.Region != want {
		t.Errorf("live locate region %d, want %d", loc.Region, want)
	}
	for _, rq := range []struct{ method, path, body string }{
		{"GET", fmt.Sprintf("/v1/knn?lat=%v&lon=%v&k=3", liveLat, liveLon), ""},
		{"POST", "/v1/range", `{"min_lat":33.8,"min_lon":-118.6,"max_lat":34.1,"max_lon":-118.2}`},
	} {
		status, _ := doJSON(t, rq.method, rts.URL+rq.path, rq.body, nil)
		if status != http.StatusBadGateway {
			t.Errorf("%s %s with dead shard: status %d, want 502", rq.method, rq.path, status)
		}
	}

	allRegions := make([]int, whole.NumRegions())
	liveRegions := make([]int, 0, whole.NumRegions())
	dead := c.manifest.Shards[1]
	for r := range allRegions {
		allRegions[r] = r
		if r < dead.Lo || r >= dead.Hi {
			liveRegions = append(liveRegions, r)
		}
	}
	var got statsWire
	body, _ := json.Marshal(map[string]any{"task": task, "regions": allRegions})
	status, _ = doJSON(t, "POST", rts.URL+"/v1/stats", string(body), &got)
	if status != http.StatusOK {
		t.Fatalf("partial stats: status %d", status)
	}
	if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != dead.Name {
		t.Fatalf("partial=%v failed=%v, want partial naming %s", got.Partial, got.FailedShards, dead.Name)
	}
	want, err := whole.GroupStats(task, liveRegions)
	if err != nil {
		t.Fatal(err)
	}
	requireStatsEqual(t, got, want)
}

// TestRouterBreakerRecovery walks the breaker state machine end to
// end: consecutive failures open it, the healthy sibling carries the
// load meanwhile, and once the backoff expires a half-open probe
// discovers the healed replica and closes the breaker.
func TestRouterBreakerRecovery(t *testing.T) {
	whole := buildWhole(t)
	c := newReplicaCluster(t, whole, 2, 2)
	rt, rts := c.newRouter(t, router.WithBreaker(2, 40*time.Millisecond, 80*time.Millisecond))
	name := c.manifest.Shards[0].Name
	lat, lon := pointInShard(t, c.manifest, 0)
	locate := func() int {
		t.Helper()
		status, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, lat, lon), "", nil)
		return status
	}

	c.proxies[0][0].Set(faultnet.Fault{Mode: faultnet.Kill})
	for i := 0; i < 6; i++ {
		if status := locate(); status != http.StatusOK {
			t.Fatalf("locate %d with one dead replica: status %d", i, status)
		}
	}
	hs := rt.ShardHealth(name)
	if hs[0].State == "closed" {
		t.Fatalf("replica 0 breaker closed after kills (failures %d)", hs[0].Failures)
	}
	if hs[0].ConsecFails < 2 || hs[0].LastErr == "" {
		t.Errorf("replica 0 bookkeeping: %+v", hs[0])
	}

	// The surface reports the same story.
	var sr struct {
		Shards []struct {
			Status   string `json:"status"`
			Replicas []struct {
				Breaker   string `json:"breaker"`
				Status    string `json:"status"`
				LastError string `json:"last_error"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	if status, _ := doJSON(t, "GET", rts.URL+"/v1/shards", "", &sr); status != http.StatusOK {
		t.Fatalf("shards surface: %d", status)
	}
	if sr.Shards[0].Status != "ok" {
		t.Errorf("shard with a live replica reported %q, want ok", sr.Shards[0].Status)
	}
	if got := sr.Shards[0].Replicas[0]; got.Breaker == "closed" || got.LastError == "" || !strings.HasPrefix(got.Status, "unreachable") {
		t.Errorf("dead replica surface: %+v", got)
	}
	if got := sr.Shards[0].Replicas[1]; got.Breaker != "closed" || got.Status != "ok" {
		t.Errorf("live replica surface: %+v", got)
	}

	// Heal, let the backoff expire, and drive probes through.
	c.proxies[0][0].Set(faultnet.Fault{Mode: faultnet.Healthy})
	deadline := time.Now().Add(3 * time.Second)
	for {
		if status := locate(); status != http.StatusOK {
			t.Fatalf("locate during recovery: status %d", status)
		}
		if hs := rt.ShardHealth(name); hs[0].State == "closed" && hs[0].ConsecFails == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after heal: %+v", rt.ShardHealth(name)[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterHedgedLocate pins hedged reads: with one replica
// black-holed and a short hedge delay, locates answer fast and
// correct (the sibling wins), and the black-holed losers are canceled
// rather than leaked.
func TestRouterHedgedLocate(t *testing.T) {
	whole := buildWhole(t)
	c := newReplicaCluster(t, whole, 2, 2)
	_, rts := c.newRouter(t,
		router.WithTimeout(5*time.Second),
		router.WithHedge(25*time.Millisecond),
		// High threshold keeps the breaker out of the picture: every
		// request must win via the hedge, not via a learned ordering.
		router.WithBreaker(1000, time.Second, time.Second))
	lat, lon := pointInShard(t, c.manifest, 0)
	wantRegion, err := whole.Locate(lat, lon)
	if err != nil {
		t.Fatal(err)
	}

	c.proxies[0][0].Set(faultnet.Fault{Mode: faultnet.BlackHole})
	start := time.Now()
	const rounds = 6
	for i := 0; i < rounds; i++ {
		var loc struct {
			Region int `json:"region"`
		}
		status, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, lat, lon), "", &loc)
		if status != http.StatusOK || loc.Region != wantRegion {
			t.Fatalf("hedged locate %d: status %d region %d (want %d)", i, status, loc.Region, wantRegion)
		}
	}
	// Every round is bounded by roughly hedge delay + healthy RTT; the
	// 2.5s per-attempt budget of the black-holed replica never gates.
	if elapsed := time.Since(start); elapsed > rounds*500*time.Millisecond {
		t.Errorf("hedged locates took %v — hedge did not engage", elapsed)
	}
	// Losers are canceled: the black-holed requests all drain.
	deadline := time.Now().Add(3 * time.Second)
	for c.proxies[0][0].Holding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d hedged losers still held — not canceled", c.proxies[0][0].Holding())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterReplyTruncation pins the reply-size cap: a backend
// response exceeding the configured cap is a deterministic shard
// failure (502 naming the cap), never a silently truncated merge.
func TestRouterReplyTruncation(t *testing.T) {
	whole := buildWhole(t)
	c := newCluster(t, whole, 2)
	rt, err := router.New(c.manifest, c.backendList(), router.WithMaxReplyBytes(64))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// A single locate reply fits in 64 bytes and still answers.
	lat, lon := pointInShard(t, c.manifest, 0)
	status, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, lat, lon), "", nil)
	if status != http.StatusOK {
		t.Fatalf("small-reply locate under cap: status %d", status)
	}
	// A whole-box range reply cannot: deterministic 502, cap named.
	var resp struct {
		Error string `json:"error"`
	}
	body := fmt.Sprintf(`{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}`,
		c.manifest.Box.MinLat, c.manifest.Box.MinLon, c.manifest.Box.MaxLat, c.manifest.Box.MaxLon)
	status, _ = doJSON(t, "POST", rts.URL+"/v1/range", body, &resp)
	if status != http.StatusBadGateway {
		t.Fatalf("oversized range reply: status %d, want 502", status)
	}
	if !strings.Contains(resp.Error, "64-byte cap") {
		t.Errorf("truncation error does not name the cap: %q", resp.Error)
	}
}

// TestRouterCallerDeadlineBudget pins the budget bugfix: failover
// attempts split min(router timeout, remaining caller deadline), so
// a request whose context expires in 300ms cannot spend the router's
// 10s timeout per replica.
func TestRouterCallerDeadlineBudget(t *testing.T) {
	whole := buildWhole(t)
	c := newReplicaCluster(t, whole, 2, 2)
	for _, replicas := range c.proxies {
		for _, p := range replicas {
			p.Set(faultnet.Fault{Mode: faultnet.BlackHole})
		}
	}
	rt, err := router.New(c.manifest, c.backendList(), router.WithTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	lat, lon := pointInShard(t, c.manifest, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", fmt.Sprintf("/v1/locate?lat=%v&lon=%v", lat, lon), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	rt.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("status %d, want 502", rec.Code)
	}
	if elapsed > 2*time.Second {
		t.Errorf("request outlived its caller: %v elapsed against a 300ms deadline", elapsed)
	}
}

// TestRouterStaleReplicaNoFailover pins the generation boundary: a
// replica serving a different artifact generation is a plan-level
// conflict (409 through the consistency machinery), never silently
// failed over — and never silently merged.
func TestRouterStaleReplicaNoFailover(t *testing.T) {
	whole := buildWhole(t)
	other := buildWhole(t, fairindex.WithHeight(3), fairindex.WithSeed(99))
	c := newCluster(t, whole, 2)
	_, otherShards, err := shard.Split(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	stale := httptest.NewServer(server.New(otherShards[0]))
	defer stale.Close()

	backends := c.backendList()
	backends[0] = router.Backend{Name: c.manifest.Shards[0].Name,
		URLs: []string{stale.URL, c.backends[0].URL}}
	rt, err := router.New(c.manifest, backends)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	lat, lon := pointInShard(t, c.manifest, 0)
	wantRegion, err := whole.Locate(lat, lon)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := whole.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	wantGen := strconv.FormatUint(gen, 10)
	var saw409, saw200 bool
	for i := 0; i < 8; i++ {
		var loc struct {
			Region int `json:"region"`
		}
		status, hdr := doJSON(t, "GET", fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, lat, lon), "", &loc)
		switch status {
		case http.StatusOK:
			saw200 = true
			if loc.Region != wantRegion || hdr.Get(server.GenerationHeader) != wantGen {
				t.Fatalf("200 with wrong answer: region %d gen %q", loc.Region, hdr.Get(server.GenerationHeader))
			}
		case http.StatusConflict:
			saw409 = true // the stale replica was hit and refused, not papered over
		default:
			t.Fatalf("locate %d: status %d, want 200 or 409", i, status)
		}
	}
	if !saw409 {
		t.Error("stale replica never surfaced as a 409 — was it silently failed over?")
	}
	if !saw200 {
		t.Error("current replica never answered")
	}
}
