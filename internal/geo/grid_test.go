package geo

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewGrid(t *testing.T) {
	tests := []struct {
		u, v    int
		wantErr bool
	}{
		{1, 1, false},
		{64, 64, false},
		{0, 4, true},
		{4, 0, true},
		{-1, 3, true},
	}
	for _, tt := range tests {
		g, err := NewGrid(tt.u, tt.v)
		if (err != nil) != tt.wantErr {
			t.Errorf("NewGrid(%d,%d) err = %v, wantErr %v", tt.u, tt.v, err, tt.wantErr)
		}
		if err != nil {
			if !errors.Is(err, ErrBadGrid) {
				t.Errorf("error %v is not ErrBadGrid", err)
			}
			continue
		}
		if g.NumCells() != tt.u*tt.v {
			t.Errorf("NumCells = %d, want %d", g.NumCells(), tt.u*tt.v)
		}
		if g.Bounds() != (CellRect{0, 0, tt.u, tt.v}) {
			t.Errorf("Bounds = %v", g.Bounds())
		}
	}
}

func TestMustGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGrid(0,0) did not panic")
		}
	}()
	MustGrid(0, 0)
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := MustGrid(7, 11)
	seen := make(map[int]bool)
	for row := 0; row < g.U; row++ {
		for col := 0; col < g.V; col++ {
			c := Cell{row, col}
			if !g.InBounds(c) {
				t.Fatalf("cell %v should be in bounds", c)
			}
			i := g.Index(c)
			if i < 0 || i >= g.NumCells() {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
			if back := g.CellAt(i); back != c {
				t.Fatalf("CellAt(Index(%v)) = %v", c, back)
			}
		}
	}
	if len(seen) != g.NumCells() {
		t.Errorf("covered %d indices, want %d", len(seen), g.NumCells())
	}
}

func TestGridInBounds(t *testing.T) {
	g := MustGrid(3, 3)
	out := []Cell{{-1, 0}, {0, -1}, {3, 0}, {0, 3}}
	for _, c := range out {
		if g.InBounds(c) {
			t.Errorf("InBounds(%v) = true, want false", c)
		}
	}
}

func TestNewMapperValidation(t *testing.T) {
	goodBox := BBox{MinLat: 33, MinLon: -119, MaxLat: 34.5, MaxLon: -117.5}
	if _, err := NewMapper(Grid{}, goodBox); err == nil {
		t.Error("expected error for invalid grid")
	}
	if _, err := NewMapper(MustGrid(4, 4), BBox{MinLat: 1, MaxLat: 1}); err == nil {
		t.Error("expected error for invalid bbox")
	}
	if _, err := NewMapper(MustGrid(4, 4), goodBox); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestMapperCellOf(t *testing.T) {
	m, err := NewMapper(MustGrid(10, 10), BBox{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		lat, lon float64
		want     Cell
	}{
		{0.5, 0.5, Cell{0, 0}},
		{9.5, 9.5, Cell{9, 9}},
		{5.0, 2.5, Cell{5, 2}},
		// Clamping outside the box.
		{-4, 5, Cell{0, 5}},
		{14, 5, Cell{9, 5}},
		{5, -4, Cell{5, 0}},
		{5, 99, Cell{5, 9}},
		// Exactly on the max edge clamps to the last cell.
		{10, 10, Cell{9, 9}},
	}
	for _, tt := range tests {
		if got := m.CellOf(tt.lat, tt.lon); got != tt.want {
			t.Errorf("CellOf(%v,%v) = %v, want %v", tt.lat, tt.lon, got, tt.want)
		}
	}
}

func TestMapperRoundTripProperty(t *testing.T) {
	m, err := NewMapper(MustGrid(32, 16), BBox{MinLat: 29, MinLon: -96, MaxLat: 30.5, MaxLon: -94.5})
	if err != nil {
		t.Fatal(err)
	}
	// Property: the center of any cell maps back to that cell.
	f := func(row, col uint8) bool {
		c := Cell{int(row) % m.Grid.U, int(col) % m.Grid.V}
		lat, lon := m.CenterOf(c)
		return m.CellOf(lat, lon) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
