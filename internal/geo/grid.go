package geo

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadGrid is returned when a grid has non-positive dimensions.
var ErrBadGrid = errors.New("geo: grid dimensions must be positive")

// Grid is the U×V base grid overlaid on the map (§2.1 of the paper).
// U is the number of rows, V the number of columns. The zero value is
// invalid; use NewGrid.
type Grid struct {
	U, V int
}

// NewGrid returns a U×V grid or ErrBadGrid if either dimension is
// non-positive.
func NewGrid(u, v int) (Grid, error) {
	if u <= 0 || v <= 0 {
		return Grid{}, fmt.Errorf("%w: %dx%d", ErrBadGrid, u, v)
	}
	// u*v must not overflow: NumCells sizes the cell→region table, and
	// a wrapped product would let hostile dimensions pass the table
	// length check while Index() computes offsets past its end.
	if u > math.MaxInt/v {
		return Grid{}, fmt.Errorf("%w: %dx%d overflows the cell count", ErrBadGrid, u, v)
	}
	return Grid{U: u, V: v}, nil
}

// MustGrid is like NewGrid but panics on invalid dimensions. Intended
// for tests and package-level defaults.
func MustGrid(u, v int) Grid {
	g, err := NewGrid(u, v)
	if err != nil {
		panic(err)
	}
	return g
}

// NumCells returns U*V.
func (g Grid) NumCells() int { return g.U * g.V }

// Bounds returns the rectangle covering the whole grid.
func (g Grid) Bounds() CellRect { return CellRect{0, 0, g.U, g.V} }

// Valid reports whether the grid has positive dimensions.
func (g Grid) Valid() bool { return g.U > 0 && g.V > 0 && g.U <= math.MaxInt/g.V }

// InBounds reports whether cell c lies on the grid.
func (g Grid) InBounds(c Cell) bool {
	return c.Row >= 0 && c.Row < g.U && c.Col >= 0 && c.Col < g.V
}

// Index returns the row-major linear index of cell c. The caller must
// ensure c is in bounds.
func (g Grid) Index(c Cell) int { return c.Row*g.V + c.Col }

// CellAt returns the cell for a row-major linear index. The caller
// must ensure 0 <= i < NumCells().
func (g Grid) CellAt(i int) Cell { return Cell{Row: i / g.V, Col: i % g.V} }

// String implements fmt.Stringer.
func (g Grid) String() string { return fmt.Sprintf("grid %dx%d", g.U, g.V) }

// BBox is a geographic bounding box in degrees. MinLat/MinLon is the
// southwest corner.
type BBox struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// Valid reports whether the box has positive extent in both axes.
func (b BBox) Valid() bool { return b.MaxLat > b.MinLat && b.MaxLon > b.MinLon }

// Mapper converts between geographic coordinates and grid cells. Rows
// follow latitude (row 0 = MinLat edge) and columns follow longitude.
type Mapper struct {
	Grid Grid
	Box  BBox
}

// NewMapper returns a Mapper or an error if grid or box is invalid.
func NewMapper(g Grid, b BBox) (Mapper, error) {
	if !g.Valid() {
		return Mapper{}, fmt.Errorf("%w: %dx%d", ErrBadGrid, g.U, g.V)
	}
	if !b.Valid() {
		return Mapper{}, fmt.Errorf("geo: invalid bounding box %+v", b)
	}
	return Mapper{Grid: g, Box: b}, nil
}

// CellOf returns the grid cell enclosing the coordinate, clamping
// points on or outside the box edge to the nearest border cell.
func (m Mapper) CellOf(lat, lon float64) Cell {
	row := int(float64(m.Grid.U) * (lat - m.Box.MinLat) / (m.Box.MaxLat - m.Box.MinLat))
	col := int(float64(m.Grid.V) * (lon - m.Box.MinLon) / (m.Box.MaxLon - m.Box.MinLon))
	row = clamp(row, 0, m.Grid.U-1)
	col = clamp(col, 0, m.Grid.V-1)
	return Cell{Row: row, Col: col}
}

// CenterOf returns the geographic center of a grid cell.
func (m Mapper) CenterOf(c Cell) (lat, lon float64) {
	latStep := (m.Box.MaxLat - m.Box.MinLat) / float64(m.Grid.U)
	lonStep := (m.Box.MaxLon - m.Box.MinLon) / float64(m.Grid.V)
	lat = m.Box.MinLat + (float64(c.Row)+0.5)*latStep
	lon = m.Box.MinLon + (float64(c.Col)+0.5)*lonStep
	return lat, lon
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
