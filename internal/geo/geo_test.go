package geo

import (
	"testing"
	"testing/quick"
)

func TestCellRectDims(t *testing.T) {
	tests := []struct {
		name       string
		r          CellRect
		rows, cols int
		area       int
		empty      bool
	}{
		{"unit", CellRect{0, 0, 1, 1}, 1, 1, 1, false},
		{"wide", CellRect{2, 3, 4, 9}, 2, 6, 12, false},
		{"zero value", CellRect{}, 0, 0, 0, true},
		{"inverted rows", CellRect{5, 0, 3, 4}, 0, 4, 0, true},
		{"inverted cols", CellRect{0, 5, 4, 3}, 4, 0, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Rows(); got != tt.rows {
				t.Errorf("Rows() = %d, want %d", got, tt.rows)
			}
			if got := tt.r.Cols(); got != tt.cols {
				t.Errorf("Cols() = %d, want %d", got, tt.cols)
			}
			if got := tt.r.Area(); got != tt.area {
				t.Errorf("Area() = %d, want %d", got, tt.area)
			}
			if got := tt.r.Empty(); got != tt.empty {
				t.Errorf("Empty() = %v, want %v", got, tt.empty)
			}
		})
	}
}

func TestCellRectContains(t *testing.T) {
	r := CellRect{1, 2, 4, 6}
	in := []Cell{{1, 2}, {3, 5}, {2, 4}}
	out := []Cell{{0, 2}, {4, 2}, {1, 1}, {1, 6}, {-1, -1}}
	for _, c := range in {
		if !r.Contains(c) {
			t.Errorf("Contains(%v) = false, want true", c)
		}
	}
	for _, c := range out {
		if r.Contains(c) {
			t.Errorf("Contains(%v) = true, want false", c)
		}
	}
}

func TestCellRectIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b CellRect
		want bool
	}{
		{"identical", CellRect{0, 0, 2, 2}, CellRect{0, 0, 2, 2}, true},
		{"overlap corner", CellRect{0, 0, 2, 2}, CellRect{1, 1, 3, 3}, true},
		{"touching edge", CellRect{0, 0, 2, 2}, CellRect{0, 2, 2, 4}, false},
		{"disjoint", CellRect{0, 0, 2, 2}, CellRect{5, 5, 7, 7}, false},
		{"empty vs any", CellRect{}, CellRect{0, 0, 4, 4}, false},
		{"contained", CellRect{0, 0, 10, 10}, CellRect{3, 3, 4, 4}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(tt.a); got != tt.want {
				t.Errorf("Intersects (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSplitRows(t *testing.T) {
	r := CellRect{2, 1, 6, 5}
	l, rr := r.SplitRows(1)
	if l != (CellRect{2, 1, 3, 5}) || rr != (CellRect{3, 1, 6, 5}) {
		t.Fatalf("SplitRows(1) = %v, %v", l, rr)
	}
	if l.Area()+rr.Area() != r.Area() {
		t.Errorf("areas do not add up: %d + %d != %d", l.Area(), rr.Area(), r.Area())
	}
	// Degenerate splits: k = 0 gives an empty left part.
	l, rr = r.SplitRows(0)
	if !l.Empty() || rr != r {
		t.Errorf("SplitRows(0) = %v, %v", l, rr)
	}
	l, rr = r.SplitRows(r.Rows())
	if l != r || !rr.Empty() {
		t.Errorf("SplitRows(full) = %v, %v", l, rr)
	}
}

func TestSplitCols(t *testing.T) {
	r := CellRect{0, 0, 3, 4}
	l, rr := r.SplitCols(3)
	if l != (CellRect{0, 0, 3, 3}) || rr != (CellRect{0, 3, 3, 4}) {
		t.Fatalf("SplitCols(3) = %v, %v", l, rr)
	}
	if l.Intersects(rr) {
		t.Error("split parts intersect")
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	// Property: for any rect and valid k, the two parts are disjoint,
	// their union covers the rect, and areas add up.
	f := func(row0, col0 uint8, rows, cols, k uint8) bool {
		r := CellRect{int(row0), int(col0), int(row0) + int(rows%16) + 1, int(col0) + int(cols%16) + 1}
		kk := int(k) % (r.Rows() + 1)
		l, rr := r.SplitRows(kk)
		if l.Intersects(rr) {
			return false
		}
		if l.Area()+rr.Area() != r.Area() {
			return false
		}
		for row := r.Row0; row < r.Row1; row++ {
			for col := r.Col0; col < r.Col1; col++ {
				c := Cell{row, col}
				if l.Contains(c) == rr.Contains(c) { // exactly one must hold
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCenter(t *testing.T) {
	r := CellRect{0, 0, 3, 4}
	if got := r.CenterRow(); got != 1.5 {
		t.Errorf("CenterRow = %v, want 1.5", got)
	}
	if got := r.CenterCol(); got != 2.0 {
		t.Errorf("CenterCol = %v, want 2.0", got)
	}
}

func TestAxis(t *testing.T) {
	if AxisRows.Other() != AxisCols || AxisCols.Other() != AxisRows {
		t.Error("Other is not an involution")
	}
	if AxisRows.String() != "rows" || AxisCols.String() != "cols" {
		t.Errorf("unexpected strings %q %q", AxisRows, AxisCols)
	}
	if got := Axis(9).String(); got != "Axis(9)" {
		t.Errorf("unknown axis string = %q", got)
	}
}

func TestStringers(t *testing.T) {
	if got := (Cell{1, 2}).String(); got != "(1,2)" {
		t.Errorf("Cell string = %q", got)
	}
	if got := (CellRect{1, 2, 3, 4}).String(); got != "[1:3,2:4)" {
		t.Errorf("CellRect string = %q", got)
	}
	if got := MustGrid(2, 3).String(); got != "grid 2x3" {
		t.Errorf("Grid string = %q", got)
	}
}

func TestCellRectIntersect(t *testing.T) {
	cases := []struct {
		a, b, want CellRect
	}{
		{CellRect{0, 0, 4, 4}, CellRect{2, 2, 6, 6}, CellRect{2, 2, 4, 4}},
		{CellRect{0, 0, 4, 4}, CellRect{0, 0, 4, 4}, CellRect{0, 0, 4, 4}},
		{CellRect{0, 0, 4, 4}, CellRect{4, 4, 8, 8}, CellRect{}},
		{CellRect{0, 0, 4, 4}, CellRect{1, 2, 2, 3}, CellRect{1, 2, 2, 3}},
		{CellRect{}, CellRect{0, 0, 4, 4}, CellRect{}},
	}
	for _, tc := range cases {
		if got := tc.a.Intersect(tc.b); got != tc.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersect(tc.a); got != tc.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", tc.b, tc.a, got, tc.want)
		}
		if tc.a.Intersects(tc.b) != !tc.a.Intersect(tc.b).Empty() {
			t.Errorf("Intersects and Intersect disagree for %v, %v", tc.a, tc.b)
		}
	}
}
