// Package geo provides the grid geometry substrate used by the fair
// spatial indexes: discrete cells, rectangles of cells, the U×V base
// grid overlaid on a map, and the mapping between geographic
// coordinates and cells.
//
// The paper (§2.1) assumes a U×V grid whose resolution captures the
// spatial accuracy required by the application; every partition the
// library produces is a union of grid cells.
package geo

import (
	"fmt"
)

// Cell identifies one cell of the base grid by zero-based row and
// column. Row 0 is the southernmost row; column 0 is the westernmost
// column.
type Cell struct {
	Row, Col int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// CellRect is a half-open rectangle of grid cells:
// rows in [Row0, Row1) and columns in [Col0, Col1).
// The zero value is the empty rectangle.
type CellRect struct {
	Row0, Col0 int // inclusive
	Row1, Col1 int // exclusive
}

// Rows returns the number of rows spanned by the rectangle.
func (r CellRect) Rows() int {
	if r.Row1 <= r.Row0 {
		return 0
	}
	return r.Row1 - r.Row0
}

// Cols returns the number of columns spanned by the rectangle.
func (r CellRect) Cols() int {
	if r.Col1 <= r.Col0 {
		return 0
	}
	return r.Col1 - r.Col0
}

// Area returns the number of cells in the rectangle.
func (r CellRect) Area() int { return r.Rows() * r.Cols() }

// Empty reports whether the rectangle contains no cells.
func (r CellRect) Empty() bool { return r.Area() == 0 }

// Contains reports whether cell c lies inside the rectangle.
func (r CellRect) Contains(c Cell) bool {
	return c.Row >= r.Row0 && c.Row < r.Row1 && c.Col >= r.Col0 && c.Col < r.Col1
}

// Intersects reports whether two rectangles share at least one cell.
func (r CellRect) Intersects(o CellRect) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return r.Row0 < o.Row1 && o.Row0 < r.Row1 && r.Col0 < o.Col1 && o.Col0 < r.Col1
}

// Intersect returns the rectangle of cells shared by r and o; the
// result is empty (Area() == 0) when they do not overlap.
func (r CellRect) Intersect(o CellRect) CellRect {
	out := CellRect{
		Row0: max(r.Row0, o.Row0), Col0: max(r.Col0, o.Col0),
		Row1: min(r.Row1, o.Row1), Col1: min(r.Col1, o.Col1),
	}
	if out.Row1 <= out.Row0 || out.Col1 <= out.Col0 {
		return CellRect{}
	}
	return out
}

// SplitRows splits the rectangle horizontally after k rows (counted
// from Row0), returning the top part [Row0, Row0+k) and the bottom
// part [Row0+k, Row1). k must be in [0, Rows()].
func (r CellRect) SplitRows(k int) (left, right CellRect) {
	mid := r.Row0 + k
	left = CellRect{r.Row0, r.Col0, mid, r.Col1}
	right = CellRect{mid, r.Col0, r.Row1, r.Col1}
	return left, right
}

// SplitCols splits the rectangle vertically after k columns (counted
// from Col0), returning the left part [Col0, Col0+k) and the right
// part [Col0+k, Col1). k must be in [0, Cols()].
func (r CellRect) SplitCols(k int) (left, right CellRect) {
	mid := r.Col0 + k
	left = CellRect{r.Row0, r.Col0, r.Row1, mid}
	right = CellRect{r.Row0, mid, r.Row1, r.Col1}
	return left, right
}

// CenterRow returns the continuous center row coordinate of the
// rectangle (e.g. a single-row rect centered on row 3 returns 3.5).
func (r CellRect) CenterRow() float64 { return (float64(r.Row0) + float64(r.Row1)) / 2 }

// CenterCol returns the continuous center column coordinate.
func (r CellRect) CenterCol() float64 { return (float64(r.Col0) + float64(r.Col1)) / 2 }

// String implements fmt.Stringer.
func (r CellRect) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d)", r.Row0, r.Row1, r.Col0, r.Col1)
}

// Axis selects the dimension a KD split operates on.
type Axis int

const (
	// AxisRows splits a rectangle into a top and bottom part
	// (the paper's "horizontal axis", row-wise).
	AxisRows Axis = iota
	// AxisCols splits a rectangle into a left and right part.
	AxisCols
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisRows:
		return "rows"
	case AxisCols:
		return "cols"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Other returns the perpendicular axis.
func (a Axis) Other() Axis {
	if a == AxisRows {
		return AxisCols
	}
	return AxisRows
}
