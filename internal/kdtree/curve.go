package kdtree

import (
	"fmt"
	"math"
	"sync"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// This file implements the second future-work extension of the paper
// (§6 asks for alternative indexing structures that completely cover
// the data domain with superior clustering properties): a fair
// space-filling-curve partitioner. Grid cells are ordered along a
// Hilbert curve — which preserves spatial locality far better than
// row-major order — and the 1-D sequence is cut recursively at the
// deviation median, the same Eq. 9 criterion the Fair KD-tree applies
// per axis. Regions are contiguous curve segments: connected,
// domain-covering, and typically more compact than deep KD slabs.

// HilbertOrder returns every cell of the grid in Hilbert-curve order.
// The curve is generated on the enclosing 2^k × 2^k square and cells
// outside the grid are skipped, so the result is a permutation of all
// grid cells with strong spatial locality.
func HilbertOrder(grid geo.Grid) ([]geo.Cell, error) {
	if !grid.Valid() {
		return nil, geo.ErrBadGrid
	}
	side := 1
	for side < grid.U || side < grid.V {
		side *= 2
	}
	out := make([]geo.Cell, 0, grid.NumCells())
	total := side * side
	for d := 0; d < total; d++ {
		row, col := hilbertD2XY(side, d)
		c := geo.Cell{Row: row, Col: col}
		if grid.InBounds(c) {
			out = append(out, c)
		}
	}
	return out, nil
}

// hilbertD2XY converts a distance along the Hilbert curve of a
// side×side square (side a power of two) to coordinates.
func hilbertD2XY(side, d int) (x, y int) {
	t := d
	for s := 1; s < side; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// BuildFairCurve partitions the grid into up to 2^height contiguous
// Hilbert-curve segments by recursively cutting each segment at the
// offset that splits its signed deviation mass in half (the 1-D form
// of Eq. 9). cells/deviations follow the BuildFair convention.
func BuildFairCurve(grid geo.Grid, cells []geo.Cell, deviations []float64, height int) (*partition.Partition, error) {
	return BuildFairCurveWorkers(grid, cells, deviations, height, 1)
}

// curveSeg is one node of the cut tree over [Lo, Hi) curve intervals;
// leaves (nil children) become regions.
type curveSeg struct {
	lo, hi      int
	left, right *curveSeg
}

// BuildFairCurveWorkers is BuildFairCurve with the recursive cut scan
// running on a bounded worker pool (<= 1 disables parallelism). The
// build is two-phase so region ids stay identical to a sequential
// build for any worker count: the cut tree — whose shape depends only
// on the prefix sums, never on scheduling — is grown in parallel,
// then ids are assigned by a sequential depth-first walk.
func BuildFairCurveWorkers(grid geo.Grid, cells []geo.Cell, deviations []float64, height, workers int) (*partition.Partition, error) {
	if err := validateBuild(grid, cells, height); err != nil {
		return nil, err
	}
	if len(deviations) != len(cells) {
		return nil, fmt.Errorf("%w: %d deviations for %d records", ErrBadInput, len(deviations), len(cells))
	}
	if workers < 0 {
		return nil, fmt.Errorf("%w: negative workers %d", ErrBadInput, workers)
	}
	order, err := HilbertOrder(grid)
	if err != nil {
		return nil, err
	}
	// Per-cell deviation mass, then prefix sums along the curve.
	cellDev := make([]float64, grid.NumCells())
	for i, c := range cells {
		cellDev[grid.Index(c)] += deviations[i]
	}
	prefix := make([]float64, len(order)+1)
	for i, c := range order {
		prefix[i+1] = prefix[i] + cellDev[grid.Index(c)]
	}

	// Phase 1: recursive deviation-median cuts over [lo, hi) curve
	// intervals, sibling subtrees on the pool (prefix is read-only).
	var sem chan struct{}
	if workers > 1 {
		sem = make(chan struct{}, workers-1)
	}
	var cut func(lo, hi, depth int) *curveSeg
	cut = func(lo, hi, depth int) *curveSeg {
		seg := &curveSeg{lo: lo, hi: hi}
		if depth >= height || hi-lo <= 1 {
			return seg
		}
		bestK := -1
		bestScore := math.Inf(1)
		bestDist := math.Inf(1)
		for k := lo + 1; k < hi; k++ {
			left := math.Abs(prefix[k] - prefix[lo])
			right := math.Abs(prefix[hi] - prefix[k])
			score := math.Abs(left - right)
			dist := math.Abs(float64(k-lo) - float64(hi-lo)/2)
			if score < bestScore-1e-15 || (score <= bestScore+1e-15 && dist < bestDist-1e-12) {
				bestK, bestScore, bestDist = k, score, dist
			}
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					seg.left = cut(lo, bestK, depth+1)
					<-sem
				}()
				seg.right = cut(bestK, hi, depth+1)
				wg.Wait()
				return seg
			default:
			}
		}
		seg.left = cut(lo, bestK, depth+1)
		seg.right = cut(bestK, hi, depth+1)
		return seg
	}
	root := cut(0, len(order), 0)

	// Phase 2: sequential depth-first id assignment over the leaves.
	segmentOf := make([]int, grid.NumCells())
	nextID := 0
	var assign func(seg *curveSeg)
	assign = func(seg *curveSeg) {
		if seg.left == nil {
			id := nextID
			nextID++
			for i := seg.lo; i < seg.hi; i++ {
				segmentOf[grid.Index(order[i])] = id
			}
			return
		}
		assign(seg.left)
		assign(seg.right)
	}
	assign(root)

	return partition.New(grid, nextID, segmentOf)
}
