package kdtree

import (
	"fmt"
	"math"

	"fairindex/internal/geo"
)

// MultiObjectiveDeviations aggregates per-task deviations into the
// combined vector v_tot of Eq. 12: for record j,
//
//	v_tot[j] = Σ_i α_i · (s_i[j] − y_i[j])
//
// scoreSets[i] and labelSets[i] are task i's confidence scores and
// labels over the same record order. The α_i must be in [0,1] and sum
// to 1 (§4.3's task prioritization hyper-parameters).
func MultiObjectiveDeviations(scoreSets [][]float64, labelSets [][]int, alphas []float64) ([]float64, error) {
	m := len(scoreSets)
	if m == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrBadInput)
	}
	if len(labelSets) != m || len(alphas) != m {
		return nil, fmt.Errorf("%w: %d score sets, %d label sets, %d alphas",
			ErrBadInput, m, len(labelSets), len(alphas))
	}
	n := len(scoreSets[0])
	var alphaSum float64
	for i, a := range alphas {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("%w: alpha[%d] = %v outside [0,1]", ErrBadInput, i, a)
		}
		alphaSum += a
		if len(scoreSets[i]) != n || len(labelSets[i]) != n {
			return nil, fmt.Errorf("%w: task %d has %d scores and %d labels, want %d",
				ErrBadInput, i, len(scoreSets[i]), len(labelSets[i]), n)
		}
	}
	if math.Abs(alphaSum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: alphas sum to %v, want 1", ErrBadInput, alphaSum)
	}
	out := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			y := 0.0
			if labelSets[i][j] != 0 {
				y = 1
			}
			out[j] += alphas[i] * (scoreSets[i][j] - y)
		}
	}
	return out, nil
}

// BuildMultiObjective constructs the Multi-Objective Fair KD-tree
// (§4.3): a Fair KD-tree over the α-weighted combination of each
// task's deviations, yielding a single partitioning that represents
// all classification objectives.
func BuildMultiObjective(grid geo.Grid, cells []geo.Cell, scoreSets [][]float64, labelSets [][]int, alphas []float64, cfg Config) (*Tree, error) {
	vtot, err := MultiObjectiveDeviations(scoreSets, labelSets, alphas)
	if err != nil {
		return nil, err
	}
	if len(vtot) != len(cells) {
		return nil, fmt.Errorf("%w: %d deviations for %d records", ErrBadInput, len(vtot), len(cells))
	}
	return BuildFair(grid, cells, vtot, cfg)
}
