package kdtree

import (
	"fmt"

	"fairindex/internal/geo"
)

// BuildFair constructs the Fair KD-tree (Algorithms 1 and 2): a
// depth-first KD construction whose split offset minimizes the
// fairness objective over the signed deviations d_i = s_i − y_i of an
// initial classifier run.
//
// cells[i] is record i's grid cell and deviations[i] its signed
// deviation. The deviations stay fixed for the whole construction —
// that is the Fair KD-tree's defining trait and its weakness that
// Algorithm 3 (BuildIterative) addresses.
func BuildFair(grid geo.Grid, cells []geo.Cell, deviations []float64, cfg Config) (*Tree, error) {
	if err := validateBuild(grid, cells, cfg.Height); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(deviations) != len(cells) {
		return nil, fmt.Errorf("%w: %d deviations for %d records", ErrBadInput, len(deviations), len(cells))
	}
	sums, err := NewCellSums(grid, cells, deviations)
	if err != nil {
		return nil, err
	}
	t := &Tree{Grid: grid, Height: cfg.Height}
	t.Root = growFair(sums, grid.Bounds(), 0, cfg)
	return t, nil
}

// growFair recursively splits rect with the configured fairness
// objective (SplitNeighborhood of Algorithm 2, both axes handled
// directly instead of via transposition).
func growFair(sums *CellSums, rect geo.CellRect, depth int, cfg Config) *Node {
	n := &Node{Rect: rect, Depth: depth}
	if depth >= cfg.Height {
		return n
	}
	axis, ok := splitAxis(rect, depth)
	if !ok {
		return n
	}
	k := bestSplit(rect, axis, func(_ int, left, right geo.CellRect) float64 {
		return splitScore(cfg.Objective, cfg.Lambda, sums, left, right)
	})
	if k < 0 {
		return n
	}
	left, right := splitRect(rect, axis, k)
	n.Axis = axis
	n.SplitK = k
	n.Left = growFair(sums, left, depth+1, cfg)
	n.Right = growFair(sums, right, depth+1, cfg)
	return n
}
