package kdtree

import (
	"fmt"

	"fairindex/internal/geo"
)

// BuildFair constructs the Fair KD-tree (Algorithms 1 and 2): a
// depth-first KD construction whose split offset minimizes the
// fairness objective over the signed deviations d_i = s_i − y_i of an
// initial classifier run.
//
// cells[i] is record i's grid cell and deviations[i] its signed
// deviation. The deviations stay fixed for the whole construction —
// that is the Fair KD-tree's defining trait and its weakness that
// Algorithm 3 (BuildIterative) addresses.
//
// The prefix-sum workspace is pooled and sibling subtrees evaluate on
// a bounded worker pool (Config.Workers); both are invisible in the
// output — the tree, its leaf order and the region ids it induces are
// identical to a sequential, allocation-naive build.
func BuildFair(grid geo.Grid, cells []geo.Cell, deviations []float64, cfg Config) (*Tree, error) {
	if err := validateBuild(grid, cells, cfg.Height); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(deviations) != len(cells) {
		return nil, fmt.Errorf("%w: %d deviations for %d records", ErrBadInput, len(deviations), len(cells))
	}
	sums, err := newCellSumsPooled(grid, cells, deviations)
	if err != nil {
		return nil, err
	}
	defer sums.release()
	g := newGrower(sums, cfg.Height, cfg.Workers, func(left, right geo.CellRect) float64 {
		return splitScore(cfg.Objective, cfg.Lambda, sums, left, right)
	})
	t := &Tree{Grid: grid, Height: cfg.Height}
	t.Root = g.grow(grid.Bounds(), 0)
	return t, nil
}
