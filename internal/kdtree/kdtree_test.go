package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairindex/internal/calib"
	"fairindex/internal/geo"
)

// clusteredFixture builds records spread over the grid with
// spatially structured deviations: a smooth deviation field plus
// noise, mimicking what a globally calibrated but locally
// miscalibrated classifier produces.
func clusteredFixture(grid geo.Grid, n int, seed int64) (cells []geo.Cell, dev []float64) {
	rng := rand.New(rand.NewSource(seed))
	cells = make([]geo.Cell, n)
	dev = make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		// Cluster records around a few hotspots.
		cr := []float64{0.2, 0.7, 0.5}[i%3]
		cc := []float64{0.3, 0.8, 0.1}[i%3]
		row := int(clampF(cr*float64(grid.U)+rng.NormFloat64()*float64(grid.U)*0.12, 0, float64(grid.U-1)))
		col := int(clampF(cc*float64(grid.V)+rng.NormFloat64()*float64(grid.V)*0.12, 0, float64(grid.V-1)))
		cells[i] = geo.Cell{Row: row, Col: col}
		// Deviation field: sign depends on the hotspot, magnitude noisy.
		sign := []float64{1, -1, 0.5}[i%3]
		dev[i] = sign*0.25 + rng.NormFloat64()*0.1
		total += dev[i]
	}
	// Center to make the "model" globally calibrated.
	for i := range dev {
		dev[i] -= total / float64(n)
	}
	return cells, dev
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// leafDeviationENCE computes the ENCE-style quantity Σ|Σ_leaf d|/n
// directly from a partition of the deviations.
func leafDeviationENCE(t *testing.T, tree *Tree, cells []geo.Cell, dev []float64) float64 {
	t.Helper()
	p, err := tree.Partition()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := p.AssignCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, p.NumRegions())
	for i, g := range groups {
		sums[g] += dev[i]
	}
	var total float64
	for _, s := range sums {
		total += math.Abs(s)
	}
	return total / float64(len(dev))
}

func TestBuildMedianBasics(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, _ := clusteredFixture(grid, 400, 1)
	tree, err := BuildMedian(grid, cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumLeaves(); got != 16 {
		t.Errorf("leaves = %d, want 16", got)
	}
	if got := tree.MaxDepth(); got != 4 {
		t.Errorf("depth = %d, want 4", got)
	}
	// Leaves must tile the grid (Partition validates exactly that).
	if _, err := tree.Partition(); err != nil {
		t.Errorf("leaves do not tile: %v", err)
	}
}

func TestBuildMedianBalances(t *testing.T) {
	grid := geo.MustGrid(32, 32)
	cells, _ := clusteredFixture(grid, 1000, 2)
	tree, err := BuildMedian(grid, cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One split: the two leaves should hold near-equal record counts.
	p, err := tree.Partition()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := p.AssignCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.NumRegions())
	for _, g := range groups {
		counts[g]++
	}
	if len(counts) != 2 {
		t.Fatalf("got %d leaves", len(counts))
	}
	if diff := math.Abs(float64(counts[0] - counts[1])); diff > 100 {
		t.Errorf("median split imbalance = %v (%v)", diff, counts)
	}
}

func TestBuildMedianHeightZero(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	tree, err := BuildMedian(grid, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1", tree.NumLeaves())
	}
	if tree.Root.Rect != grid.Bounds() {
		t.Errorf("root rect = %v", tree.Root.Rect)
	}
}

func TestBuildMedianDegenerateGeometry(t *testing.T) {
	// Height exceeds what the grid can support: construction must
	// stop at single cells, never loop or panic.
	grid := geo.MustGrid(2, 2)
	tree, err := BuildMedian(grid, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumLeaves(); got != 4 {
		t.Errorf("leaves = %d, want 4 (one per cell)", got)
	}
	// 1-wide grids fall back to the perpendicular axis.
	thin := geo.MustGrid(1, 8)
	tree, err = BuildMedian(thin, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumLeaves(); got != 8 {
		t.Errorf("thin grid leaves = %d, want 8", got)
	}
	if _, err := tree.Partition(); err != nil {
		t.Errorf("thin grid leaves do not tile: %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	if _, err := BuildMedian(geo.Grid{}, nil, 1); err == nil {
		t.Error("expected bad grid error")
	}
	if _, err := BuildMedian(grid, nil, -1); err == nil {
		t.Error("expected bad height error")
	}
	if _, err := BuildMedian(grid, []geo.Cell{{Row: 8, Col: 0}}, 1); err == nil {
		t.Error("expected out-of-bounds cell error")
	}
	if _, err := BuildFair(grid, []geo.Cell{{Row: 0, Col: 0}}, nil, Config{Height: 1}); err == nil {
		t.Error("expected deviations length error")
	}
	if _, err := BuildFair(grid, nil, nil, Config{Height: 1, Objective: Objective(9)}); err == nil {
		t.Error("expected unknown objective error")
	}
	if _, err := BuildFair(grid, nil, nil, Config{Height: 1, Objective: ObjectiveComposite, Lambda: 2}); err == nil {
		t.Error("expected lambda range error")
	}
}

func TestBuildFairTilesGrid(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 500, 3)
	for _, h := range []int{0, 1, 3, 5, 8} {
		tree, err := BuildFair(grid, cells, dev, Config{Height: h})
		if err != nil {
			t.Fatalf("height %d: %v", h, err)
		}
		if _, err := tree.Partition(); err != nil {
			t.Errorf("height %d: leaves do not tile: %v", h, err)
		}
	}
}

func TestFairBeatsMedianOnDeviationENCE(t *testing.T) {
	// The headline mechanism (Figure 7): with spatially structured
	// deviations, the fair split keeps per-leaf deviation mass far
	// lower than the median split at equal height.
	grid := geo.MustGrid(32, 32)
	cells, dev := clusteredFixture(grid, 1200, 4)
	for _, h := range []int{4, 6, 8} {
		fair, err := BuildFair(grid, cells, dev, Config{Height: h})
		if err != nil {
			t.Fatal(err)
		}
		median, err := BuildMedian(grid, cells, h)
		if err != nil {
			t.Fatal(err)
		}
		fe := leafDeviationENCE(t, fair, cells, dev)
		me := leafDeviationENCE(t, median, cells, dev)
		if fe >= me {
			t.Errorf("height %d: fair deviation ENCE %v >= median %v", h, fe, me)
		}
	}
}

func TestFairSplitHalvesDeviationMass(t *testing.T) {
	// A single fair split should land where the two sides carry
	// near-equal |Σ d| (DESIGN.md §2): construct a strip of cells with
	// known deviations and verify the chosen offset.
	grid := geo.MustGrid(8, 1)
	// Rows 0..7 each hold one record; deviations all +0.1, so the
	// total is +0.8 and the half-mass point is between rows 3 and 4.
	var cells []geo.Cell
	var dev []float64
	for r := 0; r < 8; r++ {
		cells = append(cells, geo.Cell{Row: r, Col: 0})
		dev = append(dev, 0.1)
	}
	tree, err := BuildFair(grid, cells, dev, Config{Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.SplitK != 4 {
		t.Errorf("split offset = %d, want 4 (half the deviation mass)", tree.Root.SplitK)
	}
}

func TestBestSplitMatchesBruteForce(t *testing.T) {
	// Property: bestSplit returns an offset achieving the global
	// minimum of the Eq. 9 objective.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(10)+2, rng.Intn(10)+2)
		n := rng.Intn(80) + 1
		cells := make([]geo.Cell, n)
		dev := make([]float64, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
			dev[i] = rng.NormFloat64()
		}
		sums, err := NewCellSums(grid, cells, dev)
		if err != nil {
			return false
		}
		rect := grid.Bounds()
		axis := geo.AxisRows
		k := bestSplit(rect, axis, func(_ int, l, r geo.CellRect) float64 {
			return splitScore(ObjectiveEq9, 0, sums, l, r)
		})
		if k < 0 {
			return grid.U == 1 // no split possible only on degenerate axis
		}
		lk, rk := splitRect(rect, axis, k)
		got := splitScore(ObjectiveEq9, 0, sums, lk, rk)
		for kk := 1; kk < grid.U; kk++ {
			l, r := splitRect(rect, axis, kk)
			if s := splitScore(ObjectiveEq9, 0, sums, l, r); s < got-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestObjectiveString(t *testing.T) {
	tests := []struct {
		o    Objective
		want string
	}{
		{ObjectiveEq9, "eq9"},
		{ObjectiveLiteralEq13, "literal-eq13"},
		{ObjectiveComposite, "composite"},
		{Objective(9), "Objective(9)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestCompositeObjectiveEndpoints(t *testing.T) {
	// λ = 1 must reproduce the median structure; λ = 0 the fair one.
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 600, 5)
	median, err := BuildMedian(grid, cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	compGeo, err := BuildFair(grid, cells, dev, Config{Height: 4, Objective: ObjectiveComposite, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same balancing criterion (normalized) → same leaf count and a
	// deviation ENCE at least as high as the pure fair tree's.
	fair, err := BuildFair(grid, cells, dev, Config{Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	comp0, err := BuildFair(grid, cells, dev, Config{Height: 4, Objective: ObjectiveComposite, Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	fairE := leafDeviationENCE(t, fair, cells, dev)
	comp0E := leafDeviationENCE(t, comp0, cells, dev)
	if math.Abs(fairE-comp0E) > 1e-9 {
		t.Errorf("λ=0 composite ENCE %v != fair ENCE %v", comp0E, fairE)
	}
	geoE := leafDeviationENCE(t, compGeo, cells, dev)
	medianE := leafDeviationENCE(t, median, cells, dev)
	if geoE < fairE-1e-9 {
		t.Errorf("λ=1 composite ENCE %v beat the fair tree %v; normalization broken", geoE, fairE)
	}
	_ = medianE // medians differ only in tie-breaking; no strict assertion
}

func TestLiteralEq13Builds(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 400, 6)
	tree, err := BuildFair(grid, cells, dev, Config{Height: 5, Objective: ObjectiveLiteralEq13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Partition(); err != nil {
		t.Errorf("literal-eq13 leaves do not tile: %v", err)
	}
}

func TestTheorem2OnTrees(t *testing.T) {
	// A deeper fair tree's leaf partition refines a shallower one's
	// prefix... not in general for fair trees (scores fixed, splits
	// nested): BuildFair grows depth-first from the same root, so the
	// height-h tree IS a refinement of the height-(h-1) tree. ENCE
	// must therefore be monotone non-decreasing in height (Theorem 2).
	grid := geo.MustGrid(32, 32)
	cells, dev := clusteredFixture(grid, 800, 7)
	// Build labels/scores realizing these deviations: y=0, s=dev
	// shifted into [0,1] is not needed — use the raw deviation ENCE.
	var prev float64
	for h := 0; h <= 6; h++ {
		tree, err := BuildFair(grid, cells, dev, Config{Height: h})
		if err != nil {
			t.Fatal(err)
		}
		e := leafDeviationENCE(t, tree, cells, dev)
		if h > 0 && e < prev-1e-9 {
			t.Errorf("height %d: ENCE %v dropped below height %d's %v (violates Theorem 2)", h, e, h-1, prev)
		}
		prev = e
	}
}

func TestRefinementAcrossHeights(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 300, 8)
	shallow, err := BuildFair(grid, cells, dev, Config{Height: 2})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := BuildFair(grid, cells, dev, Config{Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := shallow.Partition()
	if err != nil {
		t.Fatal(err)
	}
	pd, err := deep.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if !pd.IsRefinementOf(ps) {
		t.Error("height-5 fair tree does not refine the height-2 tree (same deviations)")
	}
}

func TestTheorem1ViaTreePartition(t *testing.T) {
	// ENCE of any tree partition lower-bounds... is lower-bounded by
	// overall miscalibration. Use real scores/labels.
	grid := geo.MustGrid(16, 16)
	rng := rand.New(rand.NewSource(99))
	n := 500
	cells := make([]geo.Cell, n)
	scores := make([]float64, n)
	labels := make([]int, n)
	dev := make([]float64, n)
	for i := 0; i < n; i++ {
		cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
		dev[i] = scores[i] - float64(labels[i])
	}
	tree, err := BuildFair(grid, cells, dev, Config{Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.Partition()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := p.AssignCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	ence, err := calib.ENCE(scores, labels, groups, p.NumRegions())
	if err != nil {
		t.Fatal(err)
	}
	if overall := calib.MiscalAbs(scores, labels); ence+1e-12 < overall {
		t.Errorf("ENCE %v below overall miscalibration %v (violates Theorem 1)", ence, overall)
	}
}

func TestLeafOrderDeterministic(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 200, 10)
	a, err := BuildFair(grid, cells, dev, Config{Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFair(grid, cells, dev, Config{Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.LeafRects(), b.LeafRects()
	if len(ra) != len(rb) {
		t.Fatal("leaf counts differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("leaf %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
}
