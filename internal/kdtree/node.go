// Package kdtree implements the paper's primary contribution: KD-tree
// style spatial indexes over the base grid whose split criterion is
// fairness-aware (§4). It provides the Median KD-tree baseline, the
// Fair KD-tree (Algorithms 1–2), the Iterative Fair KD-tree
// (Algorithm 3), the Multi-Objective Fair KD-tree (§4.3), and — as the
// paper's future-work extension — a fair quadtree and a composite
// geometry+fairness split metric.
package kdtree

import (
	"errors"
	"fmt"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// Construction errors.
var (
	ErrBadHeight = errors.New("kdtree: height must be >= 0")
	ErrBadInput  = errors.New("kdtree: invalid input")
)

// Node is one node of a KD partitioning tree. Leaves have Left ==
// Right == nil; internal nodes split Rect along Axis after SplitK
// cells.
type Node struct {
	Rect   geo.CellRect
	Depth  int
	Axis   geo.Axis // meaningful for internal nodes
	SplitK int      // split offset along Axis, in cells from the rect start
	Left   *Node
	Right  *Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a complete non-overlapping partitioning of the grid into
// rectangular leaves produced by one of the builders.
type Tree struct {
	Grid   geo.Grid
	Root   *Node
	Height int // requested height
}

// Leaves returns the leaf nodes in deterministic (depth-first,
// left-then-right) order. The order defines region ids.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// LeafRects returns the rectangles of the leaves, in leaf order.
func (t *Tree) LeafRects() []geo.CellRect {
	leaves := t.Leaves()
	out := make([]geo.CellRect, len(leaves))
	for i, n := range leaves {
		out[i] = n.Rect
	}
	return out
}

// NumLeaves returns the number of leaf regions.
func (t *Tree) NumLeaves() int { return len(t.Leaves()) }

// MaxDepth returns the deepest leaf's depth (root = 0).
func (t *Tree) MaxDepth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n == nil || n.IsLeaf() {
			if n == nil {
				return 0
			}
			return n.Depth
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l
		}
		return r
	}
	return walk(t.Root)
}

// Partition converts the leaf set into a validated neighborhood
// partition (the index's output in Algorithm 1, Step 3).
func (t *Tree) Partition() (*partition.Partition, error) {
	p, err := partition.FromRects(t.Grid, t.LeafRects())
	if err != nil {
		return nil, fmt.Errorf("kdtree: leaves do not tile the grid: %w", err)
	}
	return p, nil
}

// validateBuild checks the shared builder preconditions.
func validateBuild(grid geo.Grid, cells []geo.Cell, height int) error {
	if !grid.Valid() {
		return fmt.Errorf("%w: %v", ErrBadInput, geo.ErrBadGrid)
	}
	if height < 0 {
		return fmt.Errorf("%w: %d", ErrBadHeight, height)
	}
	for i, c := range cells {
		if !grid.InBounds(c) {
			return fmt.Errorf("%w: record %d cell %v outside %v", ErrBadInput, i, c, grid)
		}
	}
	return nil
}

// splitAxis returns the axis used at the given depth: rows at even
// depths, columns at odd ones, falling back to the perpendicular
// axis when the rect is a single cell wide along the preferred axis.
// The second return is false when the rect cannot be split at all.
func splitAxis(rect geo.CellRect, depth int) (geo.Axis, bool) {
	pref := geo.AxisRows
	if depth%2 == 1 {
		pref = geo.AxisCols
	}
	if axisLen(rect, pref) > 1 {
		return pref, true
	}
	if axisLen(rect, pref.Other()) > 1 {
		return pref.Other(), true
	}
	return pref, false
}

// axisLen returns the rect's extent along an axis.
func axisLen(rect geo.CellRect, a geo.Axis) int {
	if a == geo.AxisRows {
		return rect.Rows()
	}
	return rect.Cols()
}

// splitRect splits a rect after k cells along the axis.
func splitRect(rect geo.CellRect, a geo.Axis, k int) (geo.CellRect, geo.CellRect) {
	if a == geo.AxisRows {
		return rect.SplitRows(k)
	}
	return rect.SplitCols(k)
}
