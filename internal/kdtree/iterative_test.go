package kdtree

import (
	"errors"
	"testing"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

func TestBuildIterativeCallsRetrainPerLevel(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 300, 20)
	calls := 0
	var seenRegions []int
	retrain := func(p *partition.Partition) ([]float64, error) {
		calls++
		seenRegions = append(seenRegions, p.NumRegions())
		return dev, nil
	}
	tree, err := BuildIterative(grid, cells, Config{Height: 4}, retrain)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("retrain called %d times, want 4 (once per level)", calls)
	}
	// Level partitions double: 1, 2, 4, 8 regions.
	want := []int{1, 2, 4, 8}
	for i, w := range want {
		if seenRegions[i] != w {
			t.Errorf("level %d saw %d regions, want %d", i, seenRegions[i], w)
		}
	}
	if got := tree.NumLeaves(); got != 16 {
		t.Errorf("leaves = %d, want 16", got)
	}
	if _, err := tree.Partition(); err != nil {
		t.Errorf("iterative leaves do not tile: %v", err)
	}
}

func TestBuildIterativeMatchesFairWhenScoresFixed(t *testing.T) {
	// With a retrain that always returns the same deviations, the
	// iterative tree must equal the plain fair tree: Algorithm 3
	// degenerates to Algorithm 1.
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 400, 21)
	fixed := func(*partition.Partition) ([]float64, error) { return dev, nil }
	iter, err := BuildIterative(grid, cells, Config{Height: 5}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := BuildFair(grid, cells, dev, Config{Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	ri, rf := iter.LeafRects(), fair.LeafRects()
	if len(ri) != len(rf) {
		t.Fatalf("leaf counts differ: %d vs %d", len(ri), len(rf))
	}
	for i := range ri {
		if ri[i] != rf[i] {
			t.Fatalf("leaf %d differs: %v vs %v", i, ri[i], rf[i])
		}
	}
}

func TestBuildIterativeErrors(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	cells, dev := clusteredFixture(grid, 50, 22)
	if _, err := BuildIterative(grid, cells, Config{Height: 2}, nil); err == nil {
		t.Error("expected nil retrain error")
	}
	boom := errors.New("boom")
	_, err := BuildIterative(grid, cells, Config{Height: 2},
		func(*partition.Partition) ([]float64, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("retrain error not propagated: %v", err)
	}
	_, err = BuildIterative(grid, cells, Config{Height: 2},
		func(*partition.Partition) ([]float64, error) { return dev[:1], nil })
	if err == nil {
		t.Error("expected deviation length error")
	}
	if _, err := BuildIterative(grid, cells, Config{Height: -1},
		func(*partition.Partition) ([]float64, error) { return dev, nil }); err == nil {
		t.Error("expected height error")
	}
}

func TestBuildIterativeHeightZero(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	called := false
	tree, err := BuildIterative(grid, nil, Config{Height: 0},
		func(*partition.Partition) ([]float64, error) { called = true; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("retrain called for height 0")
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1", tree.NumLeaves())
	}
}

func TestBuildIterativeDegenerateGrid(t *testing.T) {
	// Grid exhausted before the height budget: levels shrink and the
	// build terminates cleanly.
	grid := geo.MustGrid(2, 2)
	cells := []geo.Cell{{Row: 0, Col: 0}, {Row: 1, Col: 1}}
	dev := []float64{0.5, -0.5}
	tree, err := BuildIterative(grid, cells, Config{Height: 6},
		func(*partition.Partition) ([]float64, error) { return dev, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumLeaves(); got != 4 {
		t.Errorf("leaves = %d, want 4", got)
	}
}
