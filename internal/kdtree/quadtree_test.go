package kdtree

import (
	"math"
	"testing"

	"fairindex/internal/geo"
)

func TestQuadtreeBasics(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 400, 40)
	qt, err := BuildFairQuadtree(grid, cells, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fairness-driven splits may produce degenerate quadrants, so the
	// leaf count is bounded by 4^2 but can fall short of it.
	if got := qt.NumLeaves(); got < 4 || got > 16 {
		t.Errorf("leaves = %d, want in [4, 16]", got)
	}
	if _, err := qt.Partition(); err != nil {
		t.Errorf("quadtree leaves do not tile: %v", err)
	}
}

func TestQuadtreeHeightZero(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	qt, err := BuildFairQuadtree(grid, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qt.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1", qt.NumLeaves())
	}
}

func TestQuadtreeDegenerateGeometry(t *testing.T) {
	// Single-row grid: quadrants degenerate to a 2-way split; deep
	// heights terminate at single cells.
	grid := geo.MustGrid(1, 8)
	qt, err := BuildFairQuadtree(grid, nil, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := qt.NumLeaves(); got != 8 {
		t.Errorf("leaves = %d, want 8", got)
	}
	if _, err := qt.Partition(); err != nil {
		t.Errorf("degenerate quadtree does not tile: %v", err)
	}
	// 1x1 grid is a single leaf regardless of height.
	qt, err = BuildFairQuadtree(geo.MustGrid(1, 1), nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if qt.NumLeaves() != 1 {
		t.Errorf("1x1 leaves = %d, want 1", qt.NumLeaves())
	}
}

func TestQuadtreeValidation(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	if _, err := BuildFairQuadtree(geo.Grid{}, nil, nil, 1); err == nil {
		t.Error("expected bad grid error")
	}
	if _, err := BuildFairQuadtree(grid, nil, nil, -1); err == nil {
		t.Error("expected height error")
	}
	if _, err := BuildFairQuadtree(grid, []geo.Cell{{Row: 0, Col: 0}}, nil, 1); err == nil {
		t.Error("expected deviations length error")
	}
}

func TestQuadtreeReducesDeviationSpread(t *testing.T) {
	// The fair quadtree should spread deviation mass more evenly than
	// a blind midpoint quadtree at the same height. We compare against
	// the uniform-grid partition of matching granularity instead
	// (2 KD levels ≈ 1 quad level).
	grid := geo.MustGrid(32, 32)
	cells, dev := clusteredFixture(grid, 1000, 41)
	qt, err := BuildFairQuadtree(grid, cells, dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := qt.Partition()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := p.AssignCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, p.NumRegions())
	for i, g := range groups {
		sums[g] += dev[i]
	}
	var qtMass float64
	for _, s := range sums {
		qtMass += abs(s)
	}
	// Equivalent KD fair tree at height 6 (2^6 = 4^3 regions).
	fair, err := BuildFair(grid, cells, dev, Config{Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	fairMass := leafDeviationENCE(t, fair, cells, dev) * float64(len(dev))
	// The quadtree is a coarser optimizer; allow 3x slack but demand
	// the same order of magnitude.
	if qtMass > fairMass*3+1e-9 {
		t.Errorf("quadtree deviation mass %v far above fair KD tree %v", qtMass, fairMass)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// referenceBestQuadSplit is the pre-inlining split scan, kept here
// verbatim (candidate slices and all) to pin the allocation-free scan
// in bestQuadSplit to the exact same choices, epsilon tie-breaks
// included.
func referenceBestQuadSplit(sums *CellSums, rect geo.CellRect) (kr, kc int) {
	candidateOffsets := func(n int) []int {
		if n <= 1 {
			return []int{0}
		}
		out := make([]int, 0, n-1)
		for k := 1; k < n; k++ {
			out = append(out, k)
		}
		return out
	}
	rowCands := candidateOffsets(rect.Rows())
	colCands := candidateOffsets(rect.Cols())
	bestScore := math.Inf(1)
	bestDist := math.Inf(1)
	for _, r := range rowCands {
		for _, c := range colCands {
			if r == 0 && c == 0 {
				continue
			}
			var lo, hi = math.Inf(1), math.Inf(-1)
			for _, q := range quadrants(rect, r, c) {
				if q.Empty() {
					continue
				}
				d := math.Abs(sums.ValueRect(q))
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
			}
			score := hi - lo
			dist := math.Abs(float64(r)-float64(rect.Rows())/2) +
				math.Abs(float64(c)-float64(rect.Cols())/2)
			if score < bestScore-1e-15 || (score <= bestScore+1e-15 && dist < bestDist-1e-12) {
				bestScore, bestDist = score, dist
				kr, kc = r, c
			}
		}
	}
	return kr, kc
}

func TestBestQuadSplitMatchesReference(t *testing.T) {
	grid := geo.MustGrid(12, 12)
	cells, dev := clusteredFixture(grid, 500, 7)
	sums, err := newCellSumsPooled(grid, cells, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer sums.release()
	// Every sub-rectangle of the grid, degenerate axes included.
	for r0 := 0; r0 < grid.U; r0++ {
		for r1 := r0 + 1; r1 <= grid.U; r1++ {
			for c0 := 0; c0 < grid.V; c0++ {
				for c1 := c0 + 1; c1 <= grid.V; c1++ {
					rect := geo.CellRect{Row0: r0, Col0: c0, Row1: r1, Col1: c1}
					gr, gc := bestQuadSplit(sums, rect)
					wr, wc := referenceBestQuadSplit(sums, rect)
					if gr != wr || gc != wc {
						t.Fatalf("rect %+v: split (%d,%d), reference picks (%d,%d)", rect, gr, gc, wr, wc)
					}
				}
			}
		}
	}
}

func TestBestQuadSplitAllocationFree(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 400, 11)
	sums, err := newCellSumsPooled(grid, cells, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer sums.release()
	rect := grid.Bounds()
	if allocs := testing.AllocsPerRun(50, func() { bestQuadSplit(sums, rect) }); allocs != 0 {
		t.Errorf("bestQuadSplit allocates %.1f objects per call, want 0", allocs)
	}
}
