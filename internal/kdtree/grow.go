package kdtree

import (
	"sync"

	"fairindex/internal/geo"
)

// grower is the shared recursive construction engine behind the
// median and fair KD builders: pick the depth's axis, scan split
// candidates over the prefix-sum workspace with the builder's scoring
// function, recurse into both halves. Independent sibling subtrees
// may evaluate on a bounded worker pool; the merge is deterministic —
// each parent assigns its children to fixed fields and waits for both
// — so the tree shape, the depth-first leaf order and therefore the
// region ids are identical to a sequential build for any worker
// count.
type grower struct {
	sums   *CellSums
	height int
	score  func(left, right geo.CellRect) float64
	sem    chan struct{} // parallelism budget; nil = sequential
}

// newGrower returns a grower with a worker budget of workers-1 extra
// goroutines (<= 1 disables parallelism).
func newGrower(sums *CellSums, height int, workers int, score func(left, right geo.CellRect) float64) *grower {
	g := &grower{sums: sums, height: height, score: score}
	if workers > 1 {
		g.sem = make(chan struct{}, workers-1)
	}
	return g
}

// grow builds the subtree rooted at rect.
func (g *grower) grow(rect geo.CellRect, depth int) *Node {
	n := &Node{Rect: rect, Depth: depth}
	if depth >= g.height {
		return n
	}
	axis, ok := splitAxis(rect, depth)
	if !ok {
		return n
	}
	k := bestSplit(rect, axis, func(_ int, left, right geo.CellRect) float64 {
		return g.score(left, right)
	})
	if k < 0 {
		return n
	}
	left, right := splitRect(rect, axis, k)
	n.Axis = axis
	n.SplitK = k
	if g.sem != nil {
		select {
		case g.sem <- struct{}{}:
			// Budget available: evaluate the left subtree on another
			// goroutine while this one takes the right.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				n.Left = g.grow(left, depth+1)
				<-g.sem
			}()
			n.Right = g.grow(right, depth+1)
			wg.Wait()
			return n
		default:
		}
	}
	n.Left = g.grow(left, depth+1)
	n.Right = g.grow(right, depth+1)
	return n
}
