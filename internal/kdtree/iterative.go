package kdtree

import (
	"fmt"
	"sync"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// RetrainFunc supplies fresh per-record signed deviations
// (s_i − y_i) for the current neighborhood partition. The Iterative
// Fair KD-tree calls it once per tree level: the caller re-trains its
// classifier with neighborhoods set to the current leaf set and
// returns the updated deviations (Algorithm 3, line 5).
type RetrainFunc func(p *partition.Partition) ([]float64, error)

// BuildIterative constructs the Iterative Fair KD-tree (Algorithm 3):
// a breadth-first construction that refreshes the model's confidence
// scores at every level, so deeper splits see deviations that already
// reflect the coarser redistricting. It improves fairness over
// BuildFair at the cost of ⌈log t⌉ retraining runs (Theorem 4).
//
// One pooled prefix-sum workspace is re-aggregated per level instead
// of allocated, and the level's nodes — which are independent given
// the workspace — evaluate their splits on a bounded worker pool
// (Config.Workers). Children are linked level-by-level in node order,
// so the tree and its region ids are identical to the sequential
// build.
func BuildIterative(grid geo.Grid, cells []geo.Cell, cfg Config, retrain RetrainFunc) (*Tree, error) {
	if err := validateBuild(grid, cells, cfg.Height); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if retrain == nil {
		return nil, fmt.Errorf("%w: nil retrain callback", ErrBadInput)
	}
	t := &Tree{Grid: grid, Height: cfg.Height}
	t.Root = &Node{Rect: grid.Bounds()}
	level := []*Node{t.Root}

	sums := cellSumsPool.Get().(*CellSums)
	defer sums.release()

	for depth := 0; depth < cfg.Height && len(level) > 0; depth++ {
		// The current level is a complete non-overlapping partitioning
		// of the grid; hand it to the caller for retraining.
		p, err := t.Partition()
		if err != nil {
			return nil, err
		}
		deviations, err := retrain(p)
		if err != nil {
			return nil, fmt.Errorf("kdtree: retrain at depth %d: %w", depth, err)
		}
		if len(deviations) != len(cells) {
			return nil, fmt.Errorf("%w: retrain returned %d deviations for %d records",
				ErrBadInput, len(deviations), len(cells))
		}
		if err := sums.reset(grid, cells, deviations); err != nil {
			return nil, err
		}
		splitLevel(level, sums, cfg, depth)
		var next []*Node
		for _, n := range level {
			if n.Left != nil {
				next = append(next, n.Left, n.Right)
			}
		}
		level = next
	}
	return t, nil
}

// splitLevel evaluates every node of one breadth-first level: nodes
// that can split get their axis, offset and children assigned; the
// rest stay leaves. Nodes are independent given the shared read-only
// workspace, so they are scanned on up to cfg.Workers goroutines; the
// outcome lands on each node's own fields, keeping the result
// order-free.
func splitLevel(level []*Node, sums *CellSums, cfg Config, depth int) {
	splitOne := func(n *Node) {
		axis, ok := splitAxis(n.Rect, depth)
		if !ok {
			return // stays a leaf
		}
		k := bestSplit(n.Rect, axis, func(_ int, left, right geo.CellRect) float64 {
			return splitScore(cfg.Objective, cfg.Lambda, sums, left, right)
		})
		if k < 0 {
			return
		}
		left, right := splitRect(n.Rect, axis, k)
		n.Axis = axis
		n.SplitK = k
		n.Left = &Node{Rect: left, Depth: depth + 1}
		n.Right = &Node{Rect: right, Depth: depth + 1}
	}
	workers := cfg.Workers
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 || len(level) < 4 {
		for _, n := range level {
			splitOne(n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(level) + workers - 1) / workers
	for lo := 0; lo < len(level); lo += chunk {
		hi := lo + chunk
		if hi > len(level) {
			hi = len(level)
		}
		wg.Add(1)
		go func(nodes []*Node) {
			defer wg.Done()
			for _, n := range nodes {
				splitOne(n)
			}
		}(level[lo:hi])
	}
	wg.Wait()
}
