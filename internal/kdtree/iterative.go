package kdtree

import (
	"fmt"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// RetrainFunc supplies fresh per-record signed deviations
// (s_i − y_i) for the current neighborhood partition. The Iterative
// Fair KD-tree calls it once per tree level: the caller re-trains its
// classifier with neighborhoods set to the current leaf set and
// returns the updated deviations (Algorithm 3, line 5).
type RetrainFunc func(p *partition.Partition) ([]float64, error)

// BuildIterative constructs the Iterative Fair KD-tree (Algorithm 3):
// a breadth-first construction that refreshes the model's confidence
// scores at every level, so deeper splits see deviations that already
// reflect the coarser redistricting. It improves fairness over
// BuildFair at the cost of ⌈log t⌉ retraining runs (Theorem 4).
func BuildIterative(grid geo.Grid, cells []geo.Cell, cfg Config, retrain RetrainFunc) (*Tree, error) {
	if err := validateBuild(grid, cells, cfg.Height); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if retrain == nil {
		return nil, fmt.Errorf("%w: nil retrain callback", ErrBadInput)
	}
	t := &Tree{Grid: grid, Height: cfg.Height}
	t.Root = &Node{Rect: grid.Bounds()}
	level := []*Node{t.Root}

	for depth := 0; depth < cfg.Height && len(level) > 0; depth++ {
		// The current level is a complete non-overlapping partitioning
		// of the grid; hand it to the caller for retraining.
		p, err := t.Partition()
		if err != nil {
			return nil, err
		}
		deviations, err := retrain(p)
		if err != nil {
			return nil, fmt.Errorf("kdtree: retrain at depth %d: %w", depth, err)
		}
		if len(deviations) != len(cells) {
			return nil, fmt.Errorf("%w: retrain returned %d deviations for %d records",
				ErrBadInput, len(deviations), len(cells))
		}
		sums, err := NewCellSums(grid, cells, deviations)
		if err != nil {
			return nil, err
		}
		var next []*Node
		for _, n := range level {
			axis, ok := splitAxis(n.Rect, depth)
			if !ok {
				continue // stays a leaf
			}
			k := bestSplit(n.Rect, axis, func(_ int, left, right geo.CellRect) float64 {
				return splitScore(cfg.Objective, cfg.Lambda, sums, left, right)
			})
			if k < 0 {
				continue
			}
			left, right := splitRect(n.Rect, axis, k)
			n.Axis = axis
			n.SplitK = k
			n.Left = &Node{Rect: left, Depth: depth + 1}
			n.Right = &Node{Rect: right, Depth: depth + 1}
			next = append(next, n.Left, n.Right)
		}
		level = next
	}
	return t, nil
}
