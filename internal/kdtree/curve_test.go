package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairindex/internal/geo"
)

func TestHilbertOrderPermutation(t *testing.T) {
	// The order must visit every cell exactly once, for square and
	// non-square, power-of-two and odd-sized grids.
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {5, 7}, {1, 9}, {16, 3}} {
		grid := geo.MustGrid(dims[0], dims[1])
		order, err := HilbertOrder(grid)
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != grid.NumCells() {
			t.Fatalf("%v: order has %d cells, want %d", grid, len(order), grid.NumCells())
		}
		seen := make(map[geo.Cell]bool, len(order))
		for _, c := range order {
			if !grid.InBounds(c) {
				t.Fatalf("%v: out-of-bounds cell %v", grid, c)
			}
			if seen[c] {
				t.Fatalf("%v: cell %v visited twice", grid, c)
			}
			seen[c] = true
		}
	}
}

func TestHilbertOrderLocality(t *testing.T) {
	// On a full power-of-two square the curve moves one cell at a time:
	// consecutive cells are grid neighbors.
	grid := geo.MustGrid(8, 8)
	order, err := HilbertOrder(grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		dr := order[i].Row - order[i-1].Row
		dc := order[i].Col - order[i-1].Col
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dr+dc != 1 {
			t.Fatalf("curve jumps from %v to %v", order[i-1], order[i])
		}
	}
}

func TestHilbertOrderBadGrid(t *testing.T) {
	if _, err := HilbertOrder(geo.Grid{}); err == nil {
		t.Error("expected bad grid error")
	}
}

func TestBuildFairCurveBasics(t *testing.T) {
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 400, 50)
	p, err := BuildFairCurve(grid, cells, dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 16 {
		t.Errorf("regions = %d, want 16", p.NumRegions())
	}
	// partition.New already validated coverage and non-emptiness.
	groups, err := p.AssignCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(cells) {
		t.Fatal("assignment incomplete")
	}
}

func TestBuildFairCurveValidation(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	if _, err := BuildFairCurve(geo.Grid{}, nil, nil, 2); err == nil {
		t.Error("expected bad grid error")
	}
	if _, err := BuildFairCurve(grid, nil, nil, -1); err == nil {
		t.Error("expected height error")
	}
	if _, err := BuildFairCurve(grid, []geo.Cell{{Row: 0, Col: 0}}, nil, 2); err == nil {
		t.Error("expected deviations length error")
	}
}

func TestBuildFairCurveHeightZero(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	p, err := BuildFairCurve(grid, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 1 {
		t.Errorf("regions = %d, want 1", p.NumRegions())
	}
}

func TestBuildFairCurveDegenerateDepth(t *testing.T) {
	// Height beyond the cell count: every cell becomes its own region.
	grid := geo.MustGrid(2, 2)
	p, err := BuildFairCurve(grid, nil, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() != 4 {
		t.Errorf("regions = %d, want 4", p.NumRegions())
	}
}

func TestFairCurveBeatsMedianOnDeviation(t *testing.T) {
	// Like the KD variant, the curve partitioner should hold per-region
	// deviation mass well below the median KD-tree at equal region
	// counts.
	grid := geo.MustGrid(32, 32)
	cells, dev := clusteredFixture(grid, 1200, 51)
	curveP, err := BuildFairCurve(grid, cells, dev, 6)
	if err != nil {
		t.Fatal(err)
	}
	median, err := BuildMedian(grid, cells, 6)
	if err != nil {
		t.Fatal(err)
	}
	medianP, err := median.Partition()
	if err != nil {
		t.Fatal(err)
	}
	mass := func(p interface {
		AssignCells([]geo.Cell) ([]int, error)
		NumRegions() int
	}) float64 {
		groups, err := p.AssignCells(cells)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, p.NumRegions())
		for i, g := range groups {
			sums[g] += dev[i]
		}
		var total float64
		for _, s := range sums {
			if s < 0 {
				s = -s
			}
			total += s
		}
		return total
	}
	if cm, mm := mass(curveP), mass(medianP); cm >= mm {
		t.Errorf("fair curve deviation mass %v >= median KD %v", cm, mm)
	}
}

func TestFairCurveDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(12)+2, rng.Intn(12)+2)
		n := rng.Intn(60) + 1
		cells := make([]geo.Cell, n)
		dev := make([]float64, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
			dev[i] = rng.NormFloat64()
		}
		a, err := BuildFairCurve(grid, cells, dev, 3)
		if err != nil {
			return false
		}
		b, err := BuildFairCurve(grid, cells, dev, 3)
		if err != nil {
			return false
		}
		if a.NumRegions() != b.NumRegions() {
			return false
		}
		for i := 0; i < grid.NumCells(); i++ {
			ra, _ := a.RegionOfCell(grid.CellAt(i))
			rb, _ := b.RegionOfCell(grid.CellAt(i))
			if ra != rb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
