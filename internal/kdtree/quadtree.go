package kdtree

import (
	"fmt"
	"math"
	"sync"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// QuadNode is one node of a fair quadtree. Internal nodes split their
// rect at (SplitRow, SplitCol) into up to four quadrants; children
// that would be empty are omitted, so every remaining child covers at
// least one cell.
type QuadNode struct {
	Rect     geo.CellRect
	Depth    int
	SplitRow int // cells from Rect.Row0; 0 for leaves
	SplitCol int // cells from Rect.Col0; 0 for leaves
	Children []*QuadNode
}

// IsLeaf reports whether the node has no children.
func (n *QuadNode) IsLeaf() bool { return len(n.Children) == 0 }

// QuadTree is the paper's future-work alternative index (§6 mentions
// domain-covering structures beyond KD-trees): a region quadtree
// whose joint (row, col) split point minimizes the spread of
// deviation magnitude across the four quadrants — the 4-way analogue
// of Eq. 9.
type QuadTree struct {
	Grid   geo.Grid
	Root   *QuadNode
	Height int
}

// BuildFairQuadtree constructs a fair quadtree of the given height
// (up to 4^height leaves). deviations follow the BuildFair
// convention.
func BuildFairQuadtree(grid geo.Grid, cells []geo.Cell, deviations []float64, height int) (*QuadTree, error) {
	return BuildFairQuadtreeWorkers(grid, cells, deviations, height, 1)
}

// BuildFairQuadtreeWorkers is BuildFairQuadtree evaluating independent
// sibling quadrants on a bounded worker pool, following the KD
// grower's discipline: each child lands in its fixed quadrant slot and
// the parent waits for all four, so the tree shape, the depth-first
// leaf order and therefore the region ids are identical to a
// sequential build for any worker count (<= 1 disables parallelism).
func BuildFairQuadtreeWorkers(grid geo.Grid, cells []geo.Cell, deviations []float64, height, workers int) (*QuadTree, error) {
	if err := validateBuild(grid, cells, height); err != nil {
		return nil, err
	}
	if len(deviations) != len(cells) {
		return nil, fmt.Errorf("%w: %d deviations for %d records", ErrBadInput, len(deviations), len(cells))
	}
	if workers < 0 {
		return nil, fmt.Errorf("%w: negative workers %d", ErrBadInput, workers)
	}
	sums, err := newCellSumsPooled(grid, cells, deviations)
	if err != nil {
		return nil, err
	}
	defer sums.release()
	g := &quadGrower{sums: sums, height: height}
	if workers > 1 {
		g.sem = make(chan struct{}, workers-1)
	}
	t := &QuadTree{Grid: grid, Height: height}
	t.Root = g.grow(grid.Bounds(), 0)
	return t, nil
}

// quadGrower carries the shared build state; the prefix-sum workspace
// is read-only during growth, so quadrants may be evaluated
// concurrently.
type quadGrower struct {
	sums   *CellSums
	height int
	sem    chan struct{} // parallelism budget; nil = sequential
}

// grow recursively splits rect at the fairest (row, col) point.
func (g *quadGrower) grow(rect geo.CellRect, depth int) *QuadNode {
	n := &QuadNode{Rect: rect, Depth: depth}
	if depth >= g.height || (rect.Rows() <= 1 && rect.Cols() <= 1) {
		return n
	}
	kr, kc := bestQuadSplit(g.sums, rect)
	n.SplitRow, n.SplitCol = kr, kc
	// Children build into fixed quadrant slots (possibly on pooled
	// goroutines) and are compacted in quadrant order afterwards, so
	// the child order never depends on scheduling.
	var kids [4]*QuadNode
	var wg sync.WaitGroup
	for i, q := range quadrants(rect, kr, kc) {
		if q.Empty() {
			continue
		}
		if g.sem != nil {
			select {
			case g.sem <- struct{}{}:
				wg.Add(1)
				go func(slot int, q geo.CellRect) {
					defer wg.Done()
					kids[slot] = g.grow(q, depth+1)
					<-g.sem
				}(i, q)
				continue
			default:
			}
		}
		kids[i] = g.grow(q, depth+1)
	}
	wg.Wait()
	for _, k := range kids {
		if k != nil {
			n.Children = append(n.Children, k)
		}
	}
	if len(n.Children) == 1 {
		// Degenerate split (single surviving quadrant equals rect):
		// keep the node a leaf to guarantee termination.
		n.Children = nil
		n.SplitRow, n.SplitCol = 0, 0
	}
	return n
}

// quadrants returns the four half-open quadrants of rect around the
// split point (kr rows, kc cols from the rect origin).
func quadrants(rect geo.CellRect, kr, kc int) [4]geo.CellRect {
	midRow := rect.Row0 + kr
	midCol := rect.Col0 + kc
	return [4]geo.CellRect{
		{Row0: rect.Row0, Col0: rect.Col0, Row1: midRow, Col1: midCol},
		{Row0: rect.Row0, Col0: midCol, Row1: midRow, Col1: rect.Col1},
		{Row0: midRow, Col0: rect.Col0, Row1: rect.Row1, Col1: midCol},
		{Row0: midRow, Col0: midCol, Row1: rect.Row1, Col1: rect.Col1},
	}
}

// bestQuadSplit scans all joint (row, col) split points and returns
// the one minimizing max−min of |deviation mass| across non-empty
// quadrants; ties break toward the geometric center. At least one
// axis always has a real split because the caller guarantees the rect
// spans more than one cell.
func bestQuadSplit(sums *CellSums, rect geo.CellRect) (kr, kc int) {
	// Candidate offsets along an axis of length n are the interior
	// cuts 1..n-1, or just 0 (no cut) when the axis cannot be divided.
	// Iterating the ranges in place keeps the split scan — the hot
	// inner loop of every quadtree build — free of per-node candidate
	// slices; the pooled CellSums workspace is then the only
	// build-scoped allocation on this path.
	rLo, rHi := 1, rect.Rows()-1
	if rect.Rows() <= 1 {
		rLo, rHi = 0, 0
	}
	cLo, cHi := 1, rect.Cols()-1
	if rect.Cols() <= 1 {
		cLo, cHi = 0, 0
	}
	bestScore := math.Inf(1)
	bestDist := math.Inf(1)
	for r := rLo; r <= rHi; r++ {
		for c := cLo; c <= cHi; c++ {
			if r == 0 && c == 0 {
				continue // no split at all
			}
			var lo, hi = math.Inf(1), math.Inf(-1)
			for _, q := range quadrants(rect, r, c) {
				if q.Empty() {
					continue
				}
				d := math.Abs(sums.ValueRect(q))
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
			}
			score := hi - lo
			dist := math.Abs(float64(r)-float64(rect.Rows())/2) +
				math.Abs(float64(c)-float64(rect.Cols())/2)
			if score < bestScore-1e-15 || (score <= bestScore+1e-15 && dist < bestDist-1e-12) {
				bestScore, bestDist = score, dist
				kr, kc = r, c
			}
		}
	}
	return kr, kc
}

// Leaves returns leaf nodes in deterministic depth-first order.
func (t *QuadTree) Leaves() []*QuadNode {
	var out []*QuadNode
	var walk func(n *QuadNode)
	walk = func(n *QuadNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// NumLeaves returns the number of leaf regions.
func (t *QuadTree) NumLeaves() int { return len(t.Leaves()) }

// Partition converts the leaf set into a validated neighborhood
// partition.
func (t *QuadTree) Partition() (*partition.Partition, error) {
	leaves := t.Leaves()
	rects := make([]geo.CellRect, len(leaves))
	for i, n := range leaves {
		rects[i] = n.Rect
	}
	p, err := partition.FromRects(t.Grid, rects)
	if err != nil {
		return nil, fmt.Errorf("kdtree: quadtree leaves do not tile the grid: %w", err)
	}
	return p, nil
}
