package kdtree

import (
	"fmt"
	"sync"

	"fairindex/internal/geo"
)

// CellSums holds 2-D prefix sums of per-cell record counts and
// per-cell signed deviation mass, enabling O(1) rectangle queries.
// This is what makes every split scan O(U' + V') and the whole build
// match the paper's O(|D|·⌈log t⌉) complexity (Theorem 3): each
// record contributes to the aggregates once per level.
//
// A CellSums is the builders' only O(grid) workspace. The builders
// draw it from an internal pool and return it when construction
// finishes, so repeated builds — a registry rebuilding many city
// indexes, the iterative builder re-aggregating once per level —
// reuse one workspace instead of allocating three grid-sized tables
// per (re)build.
type CellSums struct {
	grid  geo.Grid
	count []float64 // (U+1)×(V+1) prefix sums of record counts
	value []float64 // (U+1)×(V+1) prefix sums of deviations
	abs   []float64 // prefix sums of per-cell |deviation mass|
}

// cellSumsPool recycles workspaces across builds. Tables keep their
// capacity; reset re-dimensions and zeroes them.
var cellSumsPool = sync.Pool{New: func() any { return new(CellSums) }}

// NewCellSums aggregates records into per-cell sums. values[i] is the
// signed deviation (s_i − y_i) of record i; nil means all-zero values
// (sufficient for the median tree, which only needs counts).
func NewCellSums(grid geo.Grid, cells []geo.Cell, values []float64) (*CellSums, error) {
	s := &CellSums{}
	if err := s.reset(grid, cells, values); err != nil {
		return nil, err
	}
	return s, nil
}

// newCellSumsPooled is NewCellSums drawing the workspace from the
// pool; pair with release.
func newCellSumsPooled(grid geo.Grid, cells []geo.Cell, values []float64) (*CellSums, error) {
	s := cellSumsPool.Get().(*CellSums)
	if err := s.reset(grid, cells, values); err != nil {
		cellSumsPool.Put(s)
		return nil, err
	}
	return s, nil
}

// release returns a pooled workspace. The caller must not use s
// afterwards.
func (s *CellSums) release() { cellSumsPool.Put(s) }

// growZeroed returns buf resized to n with every element zero.
func growZeroed(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// reset re-aggregates the workspace over a new record set, reusing
// the table capacity. This is the per-level step of the iterative
// builder and the entry point of every fresh build.
func (s *CellSums) reset(grid geo.Grid, cells []geo.Cell, values []float64) error {
	if !grid.Valid() {
		return geo.ErrBadGrid
	}
	if values != nil && len(values) != len(cells) {
		return fmt.Errorf("%w: %d values for %d cells", ErrBadInput, len(values), len(cells))
	}
	stride := grid.V + 1
	size := (grid.U + 1) * stride
	s.grid = grid
	s.count = growZeroed(s.count, size)
	s.value = growZeroed(s.value, size)
	s.abs = growZeroed(s.abs, size)
	// Scatter per-cell totals into the (row+1, col+1) slot...
	for i, c := range cells {
		if !grid.InBounds(c) {
			return fmt.Errorf("%w: record %d cell %v outside %v", ErrBadInput, i, c, grid)
		}
		at := (c.Row+1)*stride + (c.Col + 1)
		s.count[at]++
		if values != nil {
			s.value[at] += values[i]
		}
	}
	// ...take per-cell magnitudes before prefix summing...
	for r := 1; r <= grid.U; r++ {
		for c := 1; c <= grid.V; c++ {
			at := r*stride + c
			if s.value[at] < 0 {
				s.abs[at] = -s.value[at]
			} else {
				s.abs[at] = s.value[at]
			}
		}
	}
	// ...then sweep into inclusive 2-D prefix sums.
	for r := 1; r <= grid.U; r++ {
		for c := 1; c <= grid.V; c++ {
			at := r*stride + c
			s.count[at] += s.count[at-1] + s.count[at-stride] - s.count[at-stride-1]
			s.value[at] += s.value[at-1] + s.value[at-stride] - s.value[at-stride-1]
			s.abs[at] += s.abs[at-1] + s.abs[at-stride] - s.abs[at-stride-1]
		}
	}
	return nil
}

// rectSum evaluates a prefix-sum table over a half-open rect.
func (s *CellSums) rectSum(table []float64, r geo.CellRect) float64 {
	if r.Empty() {
		return 0
	}
	stride := s.grid.V + 1
	a := table[r.Row1*stride+r.Col1]
	b := table[r.Row0*stride+r.Col1]
	c := table[r.Row1*stride+r.Col0]
	d := table[r.Row0*stride+r.Col0]
	return a - b - c + d
}

// CountRect returns the number of records inside the rect.
func (s *CellSums) CountRect(r geo.CellRect) float64 { return s.rectSum(s.count, r) }

// ValueRect returns the summed deviation mass inside the rect.
func (s *CellSums) ValueRect(r geo.CellRect) float64 { return s.rectSum(s.value, r) }

// AbsRect returns the summed per-cell |deviation mass| inside the
// rect — an upper bound on |ValueRect| that is additive across
// sub-rects, used to normalize the composite objective per node.
func (s *CellSums) AbsRect(r geo.CellRect) float64 { return s.rectSum(s.abs, r) }

// Grid returns the grid the sums were built over.
func (s *CellSums) Grid() geo.Grid { return s.grid }
