package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairindex/internal/geo"
)

// TestFullLeafCountProperty: leaves never exceed 2^h, the leaves
// always tile the grid, and heights ≤ 2 on an ample grid reach
// exactly 2^h leaves (deeper trees can legitimately fall short when
// data-driven cuts shave single-cell slabs that exhaust before the
// height budget).
func TestFullLeafCountProperty(t *testing.T) {
	f := func(seed int64, hRaw uint8) bool {
		h := int(hRaw % 5) // 0..4
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(16, 16)
		n := rng.Intn(100) + 1
		cells := make([]geo.Cell, n)
		dev := make([]float64, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
			dev[i] = rng.NormFloat64()
		}
		median, err := BuildMedian(grid, cells, h)
		if err != nil {
			return false
		}
		fair, err := BuildFair(grid, cells, dev, Config{Height: h})
		if err != nil {
			return false
		}
		for _, tree := range []*Tree{median, fair} {
			leaves := tree.NumLeaves()
			if leaves > 1<<h || leaves < 1 {
				return false
			}
			if h <= 2 && leaves != 1<<h {
				return false
			}
			if _, err := tree.Partition(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLeafDepthsBoundedProperty: no leaf exceeds the height budget
// and internal nodes alternate axes correctly when geometry allows.
func TestLeafDepthsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(20)+1, rng.Intn(20)+1)
		h := rng.Intn(8)
		n := rng.Intn(60)
		cells := make([]geo.Cell, n)
		dev := make([]float64, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
			dev[i] = rng.NormFloat64()
		}
		tree, err := BuildFair(grid, cells, dev, Config{Height: h})
		if err != nil {
			return false
		}
		for _, leaf := range tree.Leaves() {
			if leaf.Depth > h || leaf.Rect.Empty() {
				return false
			}
		}
		// Internal-node invariant: children partition the parent.
		var ok = true
		var walk func(n *Node)
		walk = func(n *Node) {
			if n == nil || n.IsLeaf() {
				return
			}
			if n.Left.Rect.Intersects(n.Right.Rect) {
				ok = false
			}
			if n.Left.Rect.Area()+n.Right.Rect.Area() != n.Rect.Area() {
				ok = false
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(tree.Root)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMedianBalanceProperty: every median split leaves at most
// one cell-row/column worth of count imbalance achievable by any
// alternative offset (i.e. it achieves the minimum imbalance).
func TestMedianBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(14)+2, rng.Intn(14)+2)
		n := rng.Intn(120) + 1
		cells := make([]geo.Cell, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
		}
		sums, err := NewCellSums(grid, cells, nil)
		if err != nil {
			return false
		}
		rect := grid.Bounds()
		axis, ok := splitAxis(rect, 0)
		if !ok {
			return true
		}
		k := bestSplit(rect, axis, func(_ int, l, r geo.CellRect) float64 {
			d := sums.CountRect(l) - sums.CountRect(r)
			if d < 0 {
				d = -d
			}
			return d
		})
		if k < 0 {
			return false
		}
		left, right := splitRect(rect, axis, k)
		got := sums.CountRect(left) - sums.CountRect(right)
		if got < 0 {
			got = -got
		}
		for kk := 1; kk < axisLen(rect, axis); kk++ {
			l, r := splitRect(rect, axis, kk)
			d := sums.CountRect(l) - sums.CountRect(r)
			if d < 0 {
				d = -d
			}
			if d < got-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPartitionAssignmentTotalProperty: every record lands in exactly
// one region for all builders, including the quadtree.
func TestPartitionAssignmentTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(12)+2, rng.Intn(12)+2)
		n := rng.Intn(80) + 1
		cells := make([]geo.Cell, n)
		dev := make([]float64, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
			dev[i] = rng.NormFloat64()
		}
		qt, err := BuildFairQuadtree(grid, cells, dev, rng.Intn(4))
		if err != nil {
			return false
		}
		p, err := qt.Partition()
		if err != nil {
			return false
		}
		groups, err := p.AssignCells(cells)
		if err != nil {
			return false
		}
		for _, g := range groups {
			if g < 0 || g >= p.NumRegions() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
