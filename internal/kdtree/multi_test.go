package kdtree

import (
	"math"
	"testing"

	"fairindex/internal/geo"
)

func TestMultiObjectiveDeviations(t *testing.T) {
	scores := [][]float64{{0.8, 0.2}, {0.4, 0.9}}
	labels := [][]int{{1, 0}, {0, 1}}
	alphas := []float64{0.5, 0.5}
	got, err := MultiObjectiveDeviations(scores, labels, alphas)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0: 0.5·(0.8−1) + 0.5·(0.4−0) = 0.1
	// Record 1: 0.5·(0.2−0) + 0.5·(0.9−1) = 0.05
	want := []float64{0.1, 0.05}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("v_tot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMultiObjectiveSingleTaskEqualsFair(t *testing.T) {
	// With one task and α = 1, BuildMultiObjective must equal BuildFair
	// on the same deviations.
	grid := geo.MustGrid(16, 16)
	cells, dev := clusteredFixture(grid, 300, 30)
	scores := make([]float64, len(dev))
	labels := make([]int, len(dev))
	for i, d := range dev {
		// Realize deviation d with label 0 and score clamped to [0,1]:
		// only the difference matters for the builder.
		scores[i] = clampF(d, -1, 1)
		if scores[i] < 0 {
			labels[i] = 1
			scores[i] = 1 + scores[i]
		}
	}
	realized := make([]float64, len(dev))
	for i := range realized {
		realized[i] = scores[i] - float64(labels[i])
	}
	multi, err := BuildMultiObjective(grid, cells, [][]float64{scores}, [][]int{labels}, []float64{1}, Config{Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := BuildFair(grid, cells, realized, Config{Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	rm, rf := multi.LeafRects(), fair.LeafRects()
	if len(rm) != len(rf) {
		t.Fatalf("leaf counts differ")
	}
	for i := range rm {
		if rm[i] != rf[i] {
			t.Fatalf("leaf %d differs: %v vs %v", i, rm[i], rf[i])
		}
	}
}

func TestMultiObjectiveValidation(t *testing.T) {
	s := [][]float64{{0.5}}
	y := [][]int{{1}}
	tests := []struct {
		name   string
		scores [][]float64
		labels [][]int
		alphas []float64
	}{
		{"no tasks", nil, nil, nil},
		{"label set count", s, nil, []float64{1}},
		{"alpha count", s, y, []float64{0.5, 0.5}},
		{"alpha range", s, y, []float64{1.5}},
		{"negative alpha", [][]float64{{0.5}, {0.5}}, [][]int{{1}, {1}}, []float64{1.5, -0.5}},
		{"alpha sum", s, y, []float64{0.7}},
		{"ragged scores", [][]float64{{0.5}, {0.5, 0.6}}, [][]int{{1}, {1, 0}}, []float64{0.5, 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := MultiObjectiveDeviations(tt.scores, tt.labels, tt.alphas); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestBuildMultiObjectiveRecordCountMismatch(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	cells := []geo.Cell{{Row: 0, Col: 0}}
	_, err := BuildMultiObjective(grid, cells,
		[][]float64{{0.5, 0.6}}, [][]int{{1, 0}}, []float64{1}, Config{Height: 1})
	if err == nil {
		t.Error("expected record count mismatch error")
	}
}

func TestMultiObjectiveBalancesBothTasks(t *testing.T) {
	// Two tasks with different spatial deviation fields: the
	// α=0.5 tree should keep the combined deviation mass per leaf low
	// for both tasks relative to the median tree.
	grid := geo.MustGrid(32, 32)
	cells, devA := clusteredFixture(grid, 900, 31)
	_, devB := clusteredFixture(grid, 900, 77) // different field, same cells
	scoresA, labelsA := realize(devA)
	scoresB, labelsB := realize(devB)
	multi, err := BuildMultiObjective(grid, cells,
		[][]float64{scoresA, scoresB}, [][]int{labelsA, labelsB},
		[]float64{0.5, 0.5}, Config{Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	median, err := BuildMedian(grid, cells, 6)
	if err != nil {
		t.Fatal(err)
	}
	for task, dev := range [][]float64{devA, devB} {
		m := leafDeviationENCE(t, multi, cells, dev)
		md := leafDeviationENCE(t, median, cells, dev)
		if m >= md {
			t.Errorf("task %d: multi-objective deviation ENCE %v >= median %v", task, m, md)
		}
	}
}

// realize converts raw deviations into (score, label) pairs with
// score−label equal to the deviation (clamped into valid ranges).
func realize(dev []float64) ([]float64, []int) {
	scores := make([]float64, len(dev))
	labels := make([]int, len(dev))
	for i, d := range dev {
		d = clampF(d, -1, 1)
		if d < 0 {
			labels[i] = 1
			scores[i] = 1 + d
		} else {
			scores[i] = d
		}
	}
	return scores, labels
}
