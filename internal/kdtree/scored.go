package kdtree

import (
	"fmt"
	"math"

	"fairindex/internal/calib"
	"fairindex/internal/geo"
)

// SplitScorer scores one candidate split of a fair KD node from the
// two halves' pooled sufficient statistics; the builder picks the
// split minimizing it. NaN is treated as +Inf (never preferred); a
// node where every candidate scores NaN stops splitting and becomes a
// leaf. calib.SplitScorerOf adapts any registered fairness Metric.
type SplitScorer func(left, right calib.SuffStats) float64

// BuildFairScored constructs a Fair KD-tree whose split objective is
// an arbitrary scorer over per-half sufficient statistics — the
// pluggable-objective generalization of BuildFair, which hard-codes
// the Eq. 9 family over signed deviations.
//
// scores[i] and labels[i] are record i's predicted score and label
// (0/1 for single-task builds; the multi-objective path feeds
// α-weighted combinations, so labels are float64). From two pooled
// prefix-sum planes — signed deviations s−y and raw scores s — any
// rectangle's SuffStats are recovered in O(1): count, Σscore, and
// Σlabel = Σscore − Σ(s−y). The construction is otherwise identical
// to BuildFair: same axis schedule, same tie-breaking, same bounded
// sibling parallelism, deterministic output for any worker count.
func BuildFairScored(grid geo.Grid, cells []geo.Cell, scores, labels []float64, scorer SplitScorer, cfg Config) (*Tree, error) {
	if err := validateBuild(grid, cells, cfg.Height); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scorer == nil {
		return nil, fmt.Errorf("%w: nil split scorer", ErrBadInput)
	}
	if len(scores) != len(cells) {
		return nil, fmt.Errorf("%w: %d scores for %d records", ErrBadInput, len(scores), len(cells))
	}
	if len(labels) != len(cells) {
		return nil, fmt.Errorf("%w: %d labels for %d records", ErrBadInput, len(labels), len(cells))
	}
	deviations := make([]float64, len(scores))
	for i, s := range scores {
		deviations[i] = s - labels[i]
	}
	devSums, err := newCellSumsPooled(grid, cells, deviations)
	if err != nil {
		return nil, err
	}
	defer devSums.release()
	scoreSums, err := newCellSumsPooled(grid, cells, scores)
	if err != nil {
		return nil, err
	}
	defer scoreSums.release()

	statsOf := func(r geo.CellRect) calib.SuffStats {
		sumScore := scoreSums.ValueRect(r)
		return calib.SuffStats{
			Count:    int(devSums.CountRect(r)),
			SumScore: sumScore,
			SumLabel: sumScore - devSums.ValueRect(r),
		}
	}
	g := newGrower(devSums, cfg.Height, cfg.Workers, func(left, right geo.CellRect) float64 {
		s := scorer(statsOf(left), statsOf(right))
		if math.IsNaN(s) {
			return math.Inf(1)
		}
		return s
	})
	t := &Tree{Grid: grid, Height: cfg.Height}
	t.Root = g.grow(grid.Bounds(), 0)
	return t, nil
}

// BuildMultiObjectiveScored is BuildFairScored over the α-weighted
// task combination of Eq. 12: record j contributes pooled score
// Σ_i α_i·s_i[j] and pooled label Σ_i α_i·y_i[j], so the scorer sees
// the combined calibration statistics of all tasks at once. Argument
// validation matches BuildMultiObjective exactly.
func BuildMultiObjectiveScored(grid geo.Grid, cells []geo.Cell, scoreSets [][]float64, labelSets [][]int, alphas []float64, scorer SplitScorer, cfg Config) (*Tree, error) {
	// Reuse the Eq. 12 validation; the combined deviations it returns
	// are discarded — the scored builder re-derives them from the
	// pooled planes.
	if _, err := MultiObjectiveDeviations(scoreSets, labelSets, alphas); err != nil {
		return nil, err
	}
	n := len(scoreSets[0])
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scoreSets {
		a := alphas[i]
		for j := 0; j < n; j++ {
			scores[j] += a * scoreSets[i][j]
			if labelSets[i][j] != 0 {
				labels[j] += a
			}
		}
	}
	return BuildFairScored(grid, cells, scores, labels, scorer, cfg)
}
