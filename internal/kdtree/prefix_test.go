package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairindex/internal/geo"
)

func TestCellSumsValidation(t *testing.T) {
	grid := geo.MustGrid(4, 4)
	if _, err := NewCellSums(geo.Grid{}, nil, nil); err == nil {
		t.Error("expected bad grid error")
	}
	if _, err := NewCellSums(grid, []geo.Cell{{Row: 0, Col: 0}}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := NewCellSums(grid, []geo.Cell{{Row: 9, Col: 0}}, nil); err == nil {
		t.Error("expected out-of-bounds error")
	}
}

func TestCellSumsSmall(t *testing.T) {
	grid := geo.MustGrid(2, 2)
	cells := []geo.Cell{{Row: 0, Col: 0}, {Row: 0, Col: 0}, {Row: 1, Col: 1}}
	values := []float64{0.5, -0.2, 0.7}
	s, err := NewCellSums(grid, cells, values)
	if err != nil {
		t.Fatal(err)
	}
	full := grid.Bounds()
	if got := s.CountRect(full); got != 3 {
		t.Errorf("full count = %v, want 3", got)
	}
	if got := s.ValueRect(full); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("full value = %v, want 1.0", got)
	}
	topLeft := geo.CellRect{Row0: 0, Col0: 0, Row1: 1, Col1: 1}
	if got := s.CountRect(topLeft); got != 2 {
		t.Errorf("top-left count = %v, want 2", got)
	}
	if got := s.ValueRect(topLeft); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("top-left value = %v, want 0.3", got)
	}
	if got := s.CountRect(geo.CellRect{}); got != 0 {
		t.Errorf("empty rect count = %v", got)
	}
	if s.Grid() != grid {
		t.Error("Grid() mismatch")
	}
}

func TestCellSumsNilValues(t *testing.T) {
	grid := geo.MustGrid(3, 3)
	cells := []geo.Cell{{Row: 1, Col: 1}, {Row: 2, Col: 0}}
	s, err := NewCellSums(grid, cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountRect(grid.Bounds()); got != 2 {
		t.Errorf("count = %v", got)
	}
	if got := s.ValueRect(grid.Bounds()); got != 0 {
		t.Errorf("value = %v, want 0 for nil values", got)
	}
}

func TestCellSumsMatchNaiveProperty(t *testing.T) {
	// Property: prefix-sum rect queries equal brute-force sums for
	// random populations and random query rects.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := geo.MustGrid(rng.Intn(12)+1, rng.Intn(12)+1)
		n := rng.Intn(60)
		cells := make([]geo.Cell, n)
		values := make([]float64, n)
		for i := range cells {
			cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
			values[i] = rng.NormFloat64()
		}
		s, err := NewCellSums(grid, cells, values)
		if err != nil {
			return false
		}
		for q := 0; q < 10; q++ {
			r0, r1 := rng.Intn(grid.U+1), rng.Intn(grid.U+1)
			c0, c1 := rng.Intn(grid.V+1), rng.Intn(grid.V+1)
			if r0 > r1 {
				r0, r1 = r1, r0
			}
			if c0 > c1 {
				c0, c1 = c1, c0
			}
			rect := geo.CellRect{Row0: r0, Col0: c0, Row1: r1, Col1: c1}
			var wantCount, wantVal float64
			for i, c := range cells {
				if rect.Contains(c) {
					wantCount++
					wantVal += values[i]
				}
			}
			if math.Abs(s.CountRect(rect)-wantCount) > 1e-9 {
				return false
			}
			if math.Abs(s.ValueRect(rect)-wantVal) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
