package kdtree

import (
	"math"

	"fairindex/internal/geo"
)

// BuildMedian constructs the standard median KD-tree baseline: each
// node splits at the offset that balances record counts between the
// two children (the grid form of the point-median split), alternating
// axes by depth. Cells outside any record still belong to some leaf —
// KD-trees cover the whole domain, the property the paper selects
// them for (§4).
func BuildMedian(grid geo.Grid, cells []geo.Cell, height int) (*Tree, error) {
	return BuildMedianWorkers(grid, cells, height, 1)
}

// BuildMedianWorkers is BuildMedian evaluating independent sibling
// subtrees on a bounded worker pool. The result is identical for any
// worker count (see grower).
func BuildMedianWorkers(grid geo.Grid, cells []geo.Cell, height, workers int) (*Tree, error) {
	if err := validateBuild(grid, cells, height); err != nil {
		return nil, err
	}
	sums, err := newCellSumsPooled(grid, cells, nil)
	if err != nil {
		return nil, err
	}
	defer sums.release()
	g := newGrower(sums, height, workers, func(left, right geo.CellRect) float64 {
		return math.Abs(sums.CountRect(left) - sums.CountRect(right))
	})
	t := &Tree{Grid: grid, Height: height}
	t.Root = g.grow(grid.Bounds(), 0)
	return t, nil
}
