package kdtree

import (
	"math"

	"fairindex/internal/geo"
)

// BuildMedian constructs the standard median KD-tree baseline: each
// node splits at the offset that balances record counts between the
// two children (the grid form of the point-median split), alternating
// axes by depth. Cells outside any record still belong to some leaf —
// KD-trees cover the whole domain, the property the paper selects
// them for (§4).
func BuildMedian(grid geo.Grid, cells []geo.Cell, height int) (*Tree, error) {
	if err := validateBuild(grid, cells, height); err != nil {
		return nil, err
	}
	sums, err := NewCellSums(grid, cells, nil)
	if err != nil {
		return nil, err
	}
	t := &Tree{Grid: grid, Height: height}
	t.Root = growMedian(sums, grid.Bounds(), 0, height)
	return t, nil
}

// growMedian recursively splits rect until the height budget or the
// geometry runs out.
func growMedian(sums *CellSums, rect geo.CellRect, depth, height int) *Node {
	n := &Node{Rect: rect, Depth: depth}
	if depth >= height {
		return n
	}
	axis, ok := splitAxis(rect, depth)
	if !ok {
		return n
	}
	k := bestSplit(rect, axis, func(_ int, left, right geo.CellRect) float64 {
		return math.Abs(sums.CountRect(left) - sums.CountRect(right))
	})
	if k < 0 {
		return n
	}
	left, right := splitRect(rect, axis, k)
	n.Axis = axis
	n.SplitK = k
	n.Left = growMedian(sums, left, depth+1, height)
	n.Right = growMedian(sums, right, depth+1, height)
	return n
}
