package kdtree

import (
	"fmt"
	"math"

	"fairindex/internal/geo"
)

// Objective selects the split scoring function used by the fair
// builders.
type Objective int

const (
	// ObjectiveEq9 is the paper's fairness objective in its consistent
	// form: z_k = | |Σ_L (s−y)| − |Σ_R (s−y)| |, which equals
	// | |L|·|o(L)−e(L)| − |R|·|o(R)−e(R)| | of Eq. 9 exactly (the
	// cardinalities cancel into the unnormalized sums). Minimizing it
	// splits the node's signed miscalibration mass in half.
	ObjectiveEq9 Objective = iota
	// ObjectiveLiteralEq13 applies Eq. 13 as printed, multiplying each
	// side's deviation-sum magnitude by its cardinality again:
	// z_k = | |L|·|Σ_L v| − |R|·|Σ_R v| |. Kept for the ablation
	// study; see DESIGN.md §2 on the Eq. 13 discrepancy.
	ObjectiveLiteralEq13
	// ObjectiveComposite blends a geometric balance term with the
	// fairness term: z = λ·balance + (1−λ)·fairness, both normalized
	// to [0,1]. It realizes the paper's future-work "custom split
	// metrics" (§6). λ = 1 degenerates to the median tree, λ = 0 to
	// ObjectiveEq9.
	ObjectiveComposite
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveEq9:
		return "eq9"
	case ObjectiveLiteralEq13:
		return "literal-eq13"
	case ObjectiveComposite:
		return "composite"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Config parameterizes the fair builders.
type Config struct {
	// Height is the tree height th: a full tree yields up to 2^th
	// leaves.
	Height int
	// Objective selects the split scoring; zero value is the paper's
	// Eq. 9.
	Objective Objective
	// Lambda is the geometry weight for ObjectiveComposite, in [0,1].
	Lambda float64
	// Workers bounds the goroutines evaluating independent sibling
	// subtrees (<= 1 = sequential). The built tree is identical for
	// any value: split selection is per-node deterministic and the
	// parallel recursion merges children into fixed fields.
	Workers int
}

// validate checks the config.
func (c Config) validate() error {
	if c.Height < 0 {
		return fmt.Errorf("%w: %d", ErrBadHeight, c.Height)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: negative workers %d", ErrBadInput, c.Workers)
	}
	switch c.Objective {
	case ObjectiveEq9, ObjectiveLiteralEq13:
	case ObjectiveComposite:
		if c.Lambda < 0 || c.Lambda > 1 {
			return fmt.Errorf("%w: composite lambda %v outside [0,1]", ErrBadInput, c.Lambda)
		}
	default:
		return fmt.Errorf("%w: unknown objective %d", ErrBadInput, int(c.Objective))
	}
	return nil
}

// splitScore computes the objective value for one candidate split of
// a node. left and right are the candidate sub-rects; sums provides
// counts and deviation masses.
func splitScore(obj Objective, lambda float64, sums *CellSums, left, right geo.CellRect) float64 {
	devL := math.Abs(sums.ValueRect(left))
	devR := math.Abs(sums.ValueRect(right))
	switch obj {
	case ObjectiveEq9:
		return math.Abs(devL - devR)
	case ObjectiveLiteralEq13:
		cntL := sums.CountRect(left)
		cntR := sums.CountRect(right)
		return math.Abs(cntL*devL - cntR*devR)
	case ObjectiveComposite:
		// Both terms are normalized by per-node constants (the node's
		// record count and its additive absolute deviation mass), so
		// λ = 1 preserves the median argmin ordering and λ = 0 the
		// Eq. 9 ordering exactly.
		cntL := sums.CountRect(left)
		cntR := sums.CountRect(right)
		balance := 0.0
		if total := cntL + cntR; total > 0 {
			balance = math.Abs(cntL-cntR) / total
		}
		fairness := 0.0
		if absNode := sums.AbsRect(left) + sums.AbsRect(right); absNode > 0 {
			fairness = math.Abs(devL-devR) / absNode
		}
		return lambda*balance + (1-lambda)*fairness
	default:
		return math.Inf(1)
	}
}

// bestSplit scans all candidate split offsets k ∈ [1, len) of the
// node along the axis and returns the k minimizing score(k). Ties
// break toward the most geometrically balanced split (closest to the
// middle), then toward the smaller k, keeping the construction
// deterministic (see DESIGN.md §2, "Degenerate splits").
func bestSplit(node geo.CellRect, axis geo.Axis, score func(k int, left, right geo.CellRect) float64) int {
	n := axisLen(node, axis)
	bestK := -1
	bestScore := math.Inf(1)
	bestDist := math.Inf(1)
	for k := 1; k < n; k++ {
		left, right := splitRect(node, axis, k)
		s := score(k, left, right)
		dist := math.Abs(float64(k) - float64(n)/2)
		better := s < bestScore-1e-15 ||
			(s <= bestScore+1e-15 && dist < bestDist-1e-12)
		if better {
			bestK, bestScore, bestDist = k, s, dist
		}
	}
	return bestK
}
