package kdtree

import (
	"math/rand"
	"testing"

	"fairindex/internal/geo"
	"fairindex/internal/partition"
)

// sameTree fails unless a and b have identical structure, rects and
// split choices — the bit-level guarantee the parallel recursion and
// the workspace pool must uphold.
func sameTree(t *testing.T, a, b *Node, path string) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", path)
	}
	if a == nil {
		return
	}
	if a.Rect != b.Rect || a.Depth != b.Depth || a.Axis != b.Axis || a.SplitK != b.SplitK {
		t.Fatalf("%s: node mismatch: %+v vs %+v", path, a, b)
	}
	sameTree(t, a.Left, b.Left, path+"L")
	sameTree(t, a.Right, b.Right, path+"R")
}

func randomWorkload(rng *rand.Rand, grid geo.Grid, n int) ([]geo.Cell, []float64) {
	cells := make([]geo.Cell, n)
	dev := make([]float64, n)
	for i := range cells {
		cells[i] = geo.Cell{Row: rng.Intn(grid.U), Col: rng.Intn(grid.V)}
		dev[i] = rng.NormFloat64()
	}
	return cells, dev
}

// The parallel fair build must produce the exact tree the sequential
// build does, for every objective.
func TestBuildFairParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	grid := geo.MustGrid(40, 36)
	cells, dev := randomWorkload(rng, grid, 4000)
	for _, obj := range []Objective{ObjectiveEq9, ObjectiveLiteralEq13, ObjectiveComposite} {
		lambda := 0.0
		if obj == ObjectiveComposite {
			lambda = 0.4
		}
		seq, err := BuildFair(grid, cells, dev, Config{Height: 7, Objective: obj, Lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildFair(grid, cells, dev, Config{Height: 7, Objective: obj, Lambda: lambda, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		sameTree(t, seq.Root, par.Root, obj.String()+":")
	}
}

func TestBuildMedianParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	grid := geo.MustGrid(33, 47)
	cells, _ := randomWorkload(rng, grid, 3000)
	seq, err := BuildMedian(grid, cells, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildMedianWorkers(grid, cells, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, seq.Root, par.Root, "median:")
}

// The iterative builder must stay bit-identical under both the pooled
// workspace reuse and the per-level parallel split scan. The retrain
// callback derives deviations deterministically from the partition so
// both runs see identical inputs at every level.
func TestBuildIterativeParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	grid := geo.MustGrid(32, 32)
	cells, base := randomWorkload(rng, grid, 2500)
	retrain := func(p *partition.Partition) ([]float64, error) {
		regionOf, err := p.AssignCells(cells)
		if err != nil {
			return nil, err
		}
		dev := make([]float64, len(cells))
		for i := range dev {
			dev[i] = base[i] * float64(1+regionOf[i]%5) / 3
		}
		return dev, nil
	}
	seq, err := BuildIterative(grid, cells, Config{Height: 6}, retrain)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildIterative(grid, cells, Config{Height: 6, Workers: 8}, retrain)
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, seq.Root, par.Root, "iterative:")
}

// Back-to-back builds must be unaffected by workspace recycling: the
// pool hands back dirty tables and reset must fully re-initialize
// them.
func TestPooledWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	grid := geo.MustGrid(24, 24)
	cellsA, devA := randomWorkload(rng, grid, 1500)
	cellsB, devB := randomWorkload(rng, grid, 900)

	first, err := BuildFair(grid, cellsA, devA, Config{Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave an unrelated build to dirty the pooled workspace.
	if _, err := BuildFair(grid, cellsB, devB, Config{Height: 5}); err != nil {
		t.Fatal(err)
	}
	again, err := BuildFair(grid, cellsA, devA, Config{Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, first.Root, again.Root, "reuse:")
}

func TestConfigRejectsNegativeWorkers(t *testing.T) {
	grid := geo.MustGrid(8, 8)
	if _, err := BuildFair(grid, nil, nil, Config{Height: 2, Workers: -1}); err == nil {
		t.Fatal("expected error for negative workers")
	}
}

// sameQuadTree fails unless a and b have identical structure, rects
// and joint split choices.
func sameQuadTree(t *testing.T, a, b *QuadNode, path string) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", path)
	}
	if a == nil {
		return
	}
	if a.Rect != b.Rect || a.Depth != b.Depth || a.SplitRow != b.SplitRow || a.SplitCol != b.SplitCol {
		t.Fatalf("%s: node mismatch: %+v vs %+v", path, a, b)
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: %d children vs %d", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameQuadTree(t, a.Children[i], b.Children[i], path+string(rune('0'+i)))
	}
}

// The parallel quadtree build must produce the exact tree — and hence
// the exact depth-first leaf ids — the sequential build does, for any
// worker count.
func TestBuildFairQuadtreeParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	grid := geo.MustGrid(41, 35)
	cells, dev := randomWorkload(rng, grid, 4000)
	seq, err := BuildFairQuadtree(grid, cells, dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		par, err := BuildFairQuadtreeWorkers(grid, cells, dev, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		sameQuadTree(t, seq.Root, par.Root, "quad:")
		seqLeaves, parLeaves := seq.Leaves(), par.Leaves()
		if len(seqLeaves) != len(parLeaves) {
			t.Fatalf("workers=%d: %d leaves vs %d", workers, len(parLeaves), len(seqLeaves))
		}
	}
	if _, err := BuildFairQuadtreeWorkers(grid, cells, dev, 4, -1); err == nil {
		t.Error("negative workers accepted")
	}
}

// samePartition fails unless a and b assign every cell to the same
// region id — the property that keeps a parallel curve build's
// region numbering bit-identical to the sequential one.
func samePartition(t *testing.T, grid geo.Grid, a, b *partition.Partition) {
	t.Helper()
	if a.NumRegions() != b.NumRegions() {
		t.Fatalf("%d regions vs %d", b.NumRegions(), a.NumRegions())
	}
	for row := 0; row < grid.U; row++ {
		for col := 0; col < grid.V; col++ {
			c := geo.Cell{Row: row, Col: col}
			ra, err := a.RegionOfCell(c)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.RegionOfCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if ra != rb {
				t.Fatalf("cell %v: region %d vs %d", c, rb, ra)
			}
		}
	}
}

// The two-phase parallel Hilbert-curve build (parallel cut tree,
// sequential id walk) must reproduce the sequential partition exactly.
func TestBuildFairCurveParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	grid := geo.MustGrid(37, 52)
	cells, dev := randomWorkload(rng, grid, 4000)
	seq, err := BuildFairCurve(grid, cells, dev, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		par, err := BuildFairCurveWorkers(grid, cells, dev, 6, workers)
		if err != nil {
			t.Fatal(err)
		}
		samePartition(t, grid, seq, par)
	}
	if _, err := BuildFairCurveWorkers(grid, cells, dev, 6, -1); err == nil {
		t.Error("negative workers accepted")
	}
}
