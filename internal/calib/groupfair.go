package calib

import (
	"fmt"
	"math"
)

// This file provides the auxiliary group-fairness notions the paper
// surveys in §3 (statistical parity and equalized odds) so the
// library can report how calibration-driven partitioning affects
// them. Groups are the spatial neighborhoods, decisions are
// thresholded confidence scores.

// GroupRates holds per-group decision statistics at a threshold.
type GroupRates struct {
	Group        int
	Count        int
	PositiveRate float64 // P(decision = 1 | group)
	TPR          float64 // P(decision = 1 | group, y = 1); NaN if no positives
	FPR          float64 // P(decision = 1 | group, y = 0); NaN if no negatives
}

// RatesByGroup computes per-group decision rates at the threshold.
func RatesByGroup(scores []float64, labels []int, groups []int, numGroups int, threshold float64) ([]GroupRates, error) {
	if err := checkPair(scores, labels); err != nil {
		return nil, err
	}
	if len(groups) != len(scores) {
		return nil, fmt.Errorf("%w: %d scores vs %d groups", ErrLengthMismatch, len(scores), len(groups))
	}
	if numGroups < 0 {
		return nil, fmt.Errorf("calib: negative group count %d", numGroups)
	}
	type acc struct {
		n, dec      int
		pos, posDec int
		neg, negDec int
	}
	accs := make([]acc, numGroups)
	for i, s := range scores {
		g := groups[i]
		if g < 0 || g >= numGroups {
			return nil, fmt.Errorf("calib: group id %d of instance %d out of range [0,%d)", g, i, numGroups)
		}
		a := &accs[g]
		a.n++
		decided := s >= threshold
		if decided {
			a.dec++
		}
		if labels[i] != 0 {
			a.pos++
			if decided {
				a.posDec++
			}
		} else {
			a.neg++
			if decided {
				a.negDec++
			}
		}
	}
	out := make([]GroupRates, numGroups)
	for g := range accs {
		a := accs[g]
		r := GroupRates{Group: g, Count: a.n, TPR: math.NaN(), FPR: math.NaN()}
		if a.n > 0 {
			r.PositiveRate = float64(a.dec) / float64(a.n)
		}
		if a.pos > 0 {
			r.TPR = float64(a.posDec) / float64(a.pos)
		}
		if a.neg > 0 {
			r.FPR = float64(a.negDec) / float64(a.neg)
		}
		out[g] = r
	}
	return out, nil
}

// StatisticalParityGap returns the max−min spread of per-group
// positive-decision rates over groups holding at least minCount
// instances (use 0 or 1 for all non-empty groups): 0 means perfect
// statistical parity. The filter exists because at fine partition
// granularity single-record groups pin the spread at 1 and hide any
// signal.
func StatisticalParityGap(scores []float64, labels []int, groups []int, numGroups int, threshold float64, minCount int) (float64, error) {
	rates, err := RatesByGroup(scores, labels, groups, numGroups, threshold)
	if err != nil {
		return 0, err
	}
	if minCount < 1 {
		minCount = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rates {
		if r.Count < minCount {
			continue
		}
		lo = math.Min(lo, r.PositiveRate)
		hi = math.Max(hi, r.PositiveRate)
	}
	if hi < lo {
		return 0, nil
	}
	return hi - lo, nil
}

// EqualizedOddsGap returns the larger of the TPR spread and the FPR
// spread across groups of at least minCount instances where the rate
// is defined: 0 means the decision satisfies equalized odds across
// the spatial groups.
func EqualizedOddsGap(scores []float64, labels []int, groups []int, numGroups int, threshold float64, minCount int) (float64, error) {
	rates, err := RatesByGroup(scores, labels, groups, numGroups, threshold)
	if err != nil {
		return 0, err
	}
	if minCount < 1 {
		minCount = 1
	}
	spread := func(get func(GroupRates) float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rates {
			if r.Count < minCount {
				continue
			}
			v := get(r)
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi < lo {
			return 0
		}
		return hi - lo
	}
	tpr := spread(func(r GroupRates) float64 { return r.TPR })
	fpr := spread(func(r GroupRates) float64 { return r.FPR })
	return math.Max(tpr, fpr), nil
}
