package calib

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Metric is the pluggable fairness-metric contract: a named,
// deterministic, total function of per-group sufficient statistics.
//
// Compute receives one SuffStats entry per group of the evaluation
// window (empty groups may be present and must contribute no weight)
// and returns the metric value. Implementations must
//
//   - be pure functions of the slice contents (no randomness, no
//     clock, no mutation of the input), and
//   - be total: any input — an empty slice, all-empty groups, groups
//     with no positive labels — must return a float64 without
//     panicking. "Undefined" is expressed as NaN, the package-wide
//     sentinel that the serving layer encodes as JSON null (see
//     docs/METRICS.md).
//
// Because SuffStats are additive, a metric defined this way is exact
// over any region window: aggregating stored per-region statistics
// gives the same value as recomputing from the raw records.
type Metric interface {
	// Name returns the registry key, e.g. "ence". Lower-case
	// snake_case by convention.
	Name() string
	// Compute evaluates the metric over one window of per-group
	// sufficient statistics.
	Compute(stats []SuffStats) float64
}

// metricRegistry is the process-wide metric catalog. Built-ins are
// registered at init; RegisterMetric adds custom metrics.
var (
	metricMu  sync.RWMutex
	metricsBy = make(map[string]Metric)
)

// RegisterMetric adds a metric to the process-wide catalog, making it
// selectable by name everywhere a metric name is accepted (window
// aggregation, the HTTP stats/compare endpoints, drift thresholds,
// the partitioner objective). It panics on a nil metric, an empty
// name, or a name already registered — registration happens at init
// time, where a collision is a programming error.
func RegisterMetric(m Metric) {
	if m == nil {
		panic("calib: RegisterMetric(nil)")
	}
	name := m.Name()
	if name == "" {
		panic("calib: RegisterMetric with empty name")
	}
	metricMu.Lock()
	defer metricMu.Unlock()
	if _, dup := metricsBy[name]; dup {
		panic(fmt.Sprintf("calib: RegisterMetric called twice for %q", name))
	}
	metricsBy[name] = m
}

// MetricByName looks a metric up in the catalog.
func MetricByName(name string) (Metric, bool) {
	metricMu.RLock()
	defer metricMu.RUnlock()
	m, ok := metricsBy[name]
	return m, ok
}

// MetricNames returns every registered metric name, sorted.
func MetricNames() []string {
	metricMu.RLock()
	defer metricMu.RUnlock()
	out := make([]string, 0, len(metricsBy))
	for name := range metricsBy {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResolveMetrics maps names onto registered metrics, rejecting unknown
// names with one descriptive error. An empty name list resolves to
// nil.
func ResolveMetrics(names []string) ([]Metric, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]Metric, len(names))
	for i, name := range names {
		m, ok := MetricByName(name)
		if !ok {
			return nil, fmt.Errorf("calib: unknown metric %q (registered: %v)", name, MetricNames())
		}
		out[i] = m
	}
	return out, nil
}

// metricFunc adapts a plain function into a Metric.
type metricFunc struct {
	name string
	fn   func(stats []SuffStats) float64
}

func (m metricFunc) Name() string                      { return m.name }
func (m metricFunc) Compute(stats []SuffStats) float64 { return m.fn(stats) }

// MetricFunc wraps a named function as a Metric — the lightweight way
// to register a custom metric:
//
//	calib.RegisterMetric(calib.MetricFunc("my_gap", myGap))
func MetricFunc(name string, fn func(stats []SuffStats) float64) Metric {
	return metricFunc{name: name, fn: fn}
}

// Built-in metric names.
const (
	// MetricENCE is Definition 3: the population-weighted mean of
	// per-group |e−o|.
	MetricENCE = "ence"
	// MetricCalRatio is the window calibration ratio e/o of Eq. 2;
	// NaN when the window has no positives.
	MetricCalRatio = "cal_ratio"
	// MetricMiscalAbs is the window-level absolute miscalibration
	// |e−o| (§2.2), treating the window as one pooled group.
	MetricMiscalAbs = "miscal_abs"
	// MetricStatParity is the spread (max−min) of per-group mean
	// predicted scores — the expectation form of demographic parity
	// over neighborhoods. 0 with fewer than two non-empty groups.
	MetricStatParity = "stat_parity"
	// MetricAccuracyParity is the spread (max−min) of per-group
	// expected accuracy e·o + (1−e)(1−o). 0 with fewer than two
	// non-empty groups.
	MetricAccuracyParity = "accuracy_parity"
	// MetricAtkinson is the population-weighted Atkinson inequality
	// index over per-group miscalibration |e−o|, at the default
	// aversion ε = 0.5. 0 = miscalibration is spread evenly across
	// groups, →1 = concentrated in few. Other ε via AtkinsonMetric.
	MetricAtkinson = "atkinson"
)

// DefaultAtkinsonEpsilon is the inequality-aversion parameter of the
// built-in "atkinson" metric.
const DefaultAtkinsonEpsilon = 0.5

func init() {
	RegisterMetric(MetricFunc(MetricENCE, ENCEFromStats))
	RegisterMetric(MetricFunc(MetricCalRatio, CalRatioFromStats))
	RegisterMetric(MetricFunc(MetricMiscalAbs, MiscalAbsFromStats))
	RegisterMetric(MetricFunc(MetricStatParity, StatParityFromStats))
	RegisterMetric(MetricFunc(MetricAccuracyParity, AccuracyParityFromStats))
	RegisterMetric(AtkinsonMetric(DefaultAtkinsonEpsilon))
}

// pool sums a window's statistics into one group.
func pool(stats []SuffStats) SuffStats {
	var out SuffStats
	for _, g := range stats {
		out.Count += g.Count
		out.SumScore += g.SumScore
		out.SumLabel += g.SumLabel
	}
	return out
}

// CalRatioFromStats computes the window calibration ratio e/o of
// Eq. 2 by pooling the groups. NaN when the window has no positives —
// the ratio form's standard undefined case.
func CalRatioFromStats(stats []SuffStats) float64 {
	w := pool(stats)
	if w.SumLabel <= 0 {
		return math.NaN()
	}
	return w.SumScore / w.SumLabel
}

// MiscalAbsFromStats computes the pooled absolute miscalibration
// |e−o| of the window (§2.2). 0 for an empty window.
func MiscalAbsFromStats(stats []SuffStats) float64 {
	return pool(stats).MiscalAbs()
}

// StatParityFromStats computes the max−min spread of per-group mean
// predicted scores over non-empty groups: the expectation form of the
// demographic-parity gap, computable from sufficient statistics alone
// (the thresholded decision-rate form, StatisticalParityGap, needs
// the raw scores). 0 with fewer than two non-empty groups.
func StatParityFromStats(stats []SuffStats) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	seen := 0
	for _, g := range stats {
		if g.Count == 0 {
			continue
		}
		seen++
		e := g.MeanScore()
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	if seen < 2 {
		return 0
	}
	return hi - lo
}

// AccuracyParityFromStats computes the max−min spread of per-group
// expected accuracy under score-sampling: with mean score e and
// positive rate o, a classifier predicting positive with probability
// e is correct with probability e·o + (1−e)(1−o). The spread of that
// quantity across groups is the accuracy-parity gap; 0 with fewer
// than two non-empty groups.
func AccuracyParityFromStats(stats []SuffStats) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	seen := 0
	for _, g := range stats {
		if g.Count == 0 {
			continue
		}
		seen++
		e, o := g.MeanScore(), g.PosRate()
		acc := e*o + (1-e)*(1-o)
		lo = math.Min(lo, acc)
		hi = math.Max(hi, acc)
	}
	if seen < 2 {
		return 0
	}
	return hi - lo
}

// atkinson is the Atkinson inequality metric over per-group
// miscalibration, with configurable aversion ε.
type atkinson struct {
	name string
	eps  float64
}

// AtkinsonMetric returns the Atkinson inequality index A_ε over the
// per-group miscalibration profile x_g = |e(g) − o(g)|, weighted by
// group population share. ε ≥ 0 is the inequality-aversion parameter:
// ε = 0 is indifferent (always 0), larger ε weights the worst-off
// (here: best-calibrated) groups more; ε = 1 is the geometric-mean
// form. The built-in "atkinson" uses DefaultAtkinsonEpsilon; register
// other aversions under their own name:
//
//	calib.RegisterMetric(calib.AtkinsonMetric(2)) // "atkinson_2"
//
// A window with zero mean miscalibration — including the empty window
// — scores 0 (perfect equality at zero). With ε ≥ 1 any group at
// exactly zero miscalibration drives the index to its maximum 1.
func AtkinsonMetric(eps float64) Metric {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		panic(fmt.Sprintf("calib: invalid Atkinson epsilon %v", eps))
	}
	name := MetricAtkinson
	if eps != DefaultAtkinsonEpsilon {
		name = fmt.Sprintf("atkinson_%g", eps)
	}
	return atkinson{name: name, eps: eps}
}

func (a atkinson) Name() string { return a.name }

func (a atkinson) Compute(stats []SuffStats) float64 {
	total := 0
	for _, g := range stats {
		total += g.Count
	}
	if total == 0 {
		return 0
	}
	// Population-weighted mean miscalibration μ.
	var mean float64
	for _, g := range stats {
		if g.Count == 0 {
			continue
		}
		mean += (float64(g.Count) / float64(total)) * g.MiscalAbs()
	}
	if mean <= 0 || a.eps == 0 {
		return 0
	}
	if a.eps == 1 {
		// Geometric-mean form: A_1 = 1 − exp(Σ w·ln x) / μ.
		var logSum float64
		for _, g := range stats {
			if g.Count == 0 {
				continue
			}
			x := g.MiscalAbs()
			if x == 0 {
				return 1
			}
			logSum += (float64(g.Count) / float64(total)) * math.Log(x)
		}
		return clamp01(1 - math.Exp(logSum)/mean)
	}
	// General form: A_ε = 1 − [Σ w·x^(1−ε)]^(1/(1−ε)) / μ.
	p := 1 - a.eps
	var powSum float64
	for _, g := range stats {
		if g.Count == 0 {
			continue
		}
		x := g.MiscalAbs()
		if x == 0 {
			if a.eps > 1 {
				// x^(negative) → +Inf: the index saturates at 1.
				return 1
			}
			continue
		}
		powSum += (float64(g.Count) / float64(total)) * math.Pow(x, p)
	}
	return clamp01(1 - math.Pow(powSum, 1/p)/mean)
}

// clamp01 guards the Atkinson index against floating-point overshoot.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SplitScorerOf adapts a metric into a two-way split objective for
// the fair KD builders: a candidate split is scored by the metric
// over the two halves' pooled sufficient statistics, and the builder
// picks the split minimizing it. NaN scores (e.g. cal_ratio over a
// half with no positives) are treated by the builders as +Inf — never
// preferred.
func SplitScorerOf(m Metric) func(left, right SuffStats) float64 {
	return func(left, right SuffStats) float64 {
		halves := [2]SuffStats{left, right}
		return m.Compute(halves[:])
	}
}
