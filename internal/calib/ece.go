package calib

import (
	"fmt"
	"math"
)

// DefaultECEBins is the bin count used by the paper's disparity
// experiment (Figure 6 uses ECE with 15 bins).
const DefaultECEBins = 15

// ECE computes the Expected Calibration Error (Appendix A.1):
// scores are bucketed into bins equal-width partitions of [0,1] and
// the population-weighted |o(B_m) − e(B_m)| is accumulated.
//
// Scores exactly equal to 1 fall in the last bin. Empty bins
// contribute nothing. ECE of empty input is 0. bins must be positive.
func ECE(scores []float64, labels []int, bins int) (float64, error) {
	if err := checkPair(scores, labels); err != nil {
		return 0, err
	}
	if bins <= 0 {
		return 0, fmt.Errorf("calib: ECE bin count must be positive, got %d", bins)
	}
	if len(scores) == 0 {
		return 0, nil
	}
	count := make([]int, bins)
	sumScore := make([]float64, bins)
	sumLabel := make([]float64, bins)
	for i, s := range scores {
		b := binOf(s, bins)
		count[b]++
		sumScore[b] += s
		sumLabel[b] += float64(label01(labels[i]))
	}
	var ece float64
	n := float64(len(scores))
	for b := 0; b < bins; b++ {
		if count[b] == 0 {
			continue
		}
		c := float64(count[b])
		ece += (c / n) * math.Abs(sumLabel[b]/c-sumScore[b]/c)
	}
	return ece, nil
}

// binOf maps a score to its bin, clamping out-of-range scores into
// the terminal bins so that slightly-out-of-range classifier output
// (e.g. 1+1e-16) does not panic.
func binOf(s float64, bins int) int {
	b := int(s * float64(bins))
	if b < 0 {
		return 0
	}
	if b >= bins {
		return bins - 1
	}
	return b
}

// ReliabilityBin describes one bin of a reliability diagram.
type ReliabilityBin struct {
	Lo, Hi    float64 // score range [Lo, Hi)
	Count     int     // instances in the bin
	MeanScore float64 // e(B)
	PosRate   float64 // o(B)
}

// Reliability returns the per-bin reliability diagram backing an ECE
// computation. Useful for reporting and plotting.
func Reliability(scores []float64, labels []int, bins int) ([]ReliabilityBin, error) {
	if err := checkPair(scores, labels); err != nil {
		return nil, err
	}
	if bins <= 0 {
		return nil, fmt.Errorf("calib: ECE bin count must be positive, got %d", bins)
	}
	out := make([]ReliabilityBin, bins)
	width := 1.0 / float64(bins)
	for b := range out {
		out[b].Lo = float64(b) * width
		out[b].Hi = float64(b+1) * width
	}
	for i, s := range scores {
		b := binOf(s, bins)
		out[b].Count++
		out[b].MeanScore += s
		out[b].PosRate += float64(label01(labels[i]))
	}
	for b := range out {
		if out[b].Count > 0 {
			c := float64(out[b].Count)
			out[b].MeanScore /= c
			out[b].PosRate /= c
		}
	}
	return out, nil
}
