package calib

import (
	"fmt"
	"math"
	"sort"
)

// GroupStats accumulates the per-group quantities needed by ENCE and
// per-neighborhood reports: instance count, Σ scores and Σ labels.
type GroupStats struct {
	Count    int
	SumScore float64
	SumLabel float64
}

// MeanScore returns e(N) for the group, or 0 if empty.
func (g GroupStats) MeanScore() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.SumScore / float64(g.Count)
}

// PosRate returns o(N) for the group, or 0 if empty.
func (g GroupStats) PosRate() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.SumLabel / float64(g.Count)
}

// MiscalAbs returns |e(N) − o(N)| for the group, 0 if empty.
func (g GroupStats) MiscalAbs() float64 {
	return math.Abs(g.MeanScore() - g.PosRate())
}

// SignedDeviation returns Σ (s − y) for the group.
func (g GroupStats) SignedDeviation() float64 { return g.SumScore - g.SumLabel }

// GroupBy accumulates GroupStats for each group id in [0, numGroups).
// groups[i] is the group of instance i; out-of-range ids are an error.
func GroupBy(scores []float64, labels []int, groups []int, numGroups int) ([]GroupStats, error) {
	if err := checkPair(scores, labels); err != nil {
		return nil, err
	}
	if len(groups) != len(scores) {
		return nil, fmt.Errorf("%w: %d scores vs %d groups", ErrLengthMismatch, len(scores), len(groups))
	}
	if numGroups < 0 {
		return nil, fmt.Errorf("calib: negative group count %d", numGroups)
	}
	out := make([]GroupStats, numGroups)
	for i, g := range groups {
		if g < 0 || g >= numGroups {
			return nil, fmt.Errorf("calib: group id %d of instance %d out of range [0,%d)", g, i, numGroups)
		}
		out[g].Count++
		out[g].SumScore += scores[i]
		out[g].SumLabel += float64(label01(labels[i]))
	}
	return out, nil
}

// ENCEFromStats computes Definition 3 from pre-aggregated group stats:
//
//	ENCE = Σ_i (|N_i| / |D|) · |o(N_i) − e(N_i)|
//
// Empty groups contribute nothing. Returns 0 when the total population
// is zero.
func ENCEFromStats(stats []GroupStats) float64 {
	total := 0
	for _, g := range stats {
		total += g.Count
	}
	if total == 0 {
		return 0
	}
	var ence float64
	for _, g := range stats {
		if g.Count == 0 {
			continue
		}
		ence += (float64(g.Count) / float64(total)) * g.MiscalAbs()
	}
	return ence
}

// ENCE computes the Expected Neighborhood Calibration Error
// (Definition 3) for instances assigned to groups (neighborhoods)
// identified by ids in [0, numGroups).
func ENCE(scores []float64, labels []int, groups []int, numGroups int) (float64, error) {
	stats, err := GroupBy(scores, labels, groups, numGroups)
	if err != nil {
		return 0, err
	}
	return ENCEFromStats(stats), nil
}

// NeighborhoodReport is the per-neighborhood calibration summary used
// by the Figure 6 disparity experiment.
type NeighborhoodReport struct {
	Group    int     // neighborhood id
	Count    int     // population
	Ratio    float64 // e/o calibration ratio (NaN when o = 0)
	Miscal   float64 // |e − o|
	ECE      float64 // per-neighborhood binned ECE
	PosRate  float64
	MeanConf float64
}

// TopNeighborhoods returns per-neighborhood calibration reports for
// the k most populated neighborhoods, ordered by descending
// population (ties broken by group id). ECE inside each neighborhood
// uses the given bin count.
func TopNeighborhoods(scores []float64, labels []int, groups []int, numGroups, k, bins int) ([]NeighborhoodReport, error) {
	stats, err := GroupBy(scores, labels, groups, numGroups)
	if err != nil {
		return nil, err
	}
	order := make([]int, numGroups)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if stats[ga].Count != stats[gb].Count {
			return stats[ga].Count > stats[gb].Count
		}
		return ga < gb
	})
	if k > numGroups {
		k = numGroups
	}
	reports := make([]NeighborhoodReport, 0, k)
	for _, g := range order[:k] {
		st := stats[g]
		// Gather the group's instances for the inner ECE.
		var gs []float64
		var gl []int
		for i, gid := range groups {
			if gid == g {
				gs = append(gs, scores[i])
				gl = append(gl, labels[i])
			}
		}
		ece, err := ECE(gs, gl, bins)
		if err != nil {
			return nil, err
		}
		ratio := math.NaN()
		if st.PosRate() > 0 {
			ratio = st.MeanScore() / st.PosRate()
		}
		reports = append(reports, NeighborhoodReport{
			Group:    g,
			Count:    st.Count,
			Ratio:    ratio,
			Miscal:   st.MiscalAbs(),
			ECE:      ece,
			PosRate:  st.PosRate(),
			MeanConf: st.MeanScore(),
		})
	}
	return reports, nil
}
