package calib

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// SuffStats holds one group's additive sufficient statistics:
// instance count, Σ scores and Σ labels. Every fairness metric in this
// package (see Metric) is a closed-form function of these three
// quantities per group, which is what makes window aggregates exact —
// summing two groups' SuffStats yields the statistics of their union.
type SuffStats struct {
	Count    int
	SumScore float64
	SumLabel float64
}

// GroupStats is the former name of SuffStats.
//
// Deprecated: use SuffStats. The old name collided with the
// Index.GroupStats window-aggregation method.
type GroupStats = SuffStats

// MeanScore returns e(N) for the group, or 0 if empty.
func (g SuffStats) MeanScore() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.SumScore / float64(g.Count)
}

// PosRate returns o(N) for the group, or 0 if empty.
func (g SuffStats) PosRate() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.SumLabel / float64(g.Count)
}

// MiscalAbs returns |e(N) − o(N)| for the group, 0 if empty.
func (g SuffStats) MiscalAbs() float64 {
	return math.Abs(g.MeanScore() - g.PosRate())
}

// SignedDeviation returns Σ (s − y) for the group.
func (g SuffStats) SignedDeviation() float64 { return g.SumScore - g.SumLabel }

// GroupBy accumulates SuffStats for each group id in [0, numGroups).
// groups[i] is the group of instance i; out-of-range ids are an error.
func GroupBy(scores []float64, labels []int, groups []int, numGroups int) ([]SuffStats, error) {
	if numGroups < 0 {
		return nil, fmt.Errorf("calib: negative group count %d", numGroups)
	}
	return groupByInto(make([]SuffStats, numGroups), scores, labels, groups, numGroups)
}

// groupByInto is GroupBy accumulating into a caller-provided slice
// (already sized and zeroed to numGroups entries).
func groupByInto(out []SuffStats, scores []float64, labels []int, groups []int, numGroups int) ([]SuffStats, error) {
	if err := checkPair(scores, labels); err != nil {
		return nil, err
	}
	if len(groups) != len(scores) {
		return nil, fmt.Errorf("%w: %d scores vs %d groups", ErrLengthMismatch, len(scores), len(groups))
	}
	if numGroups < 0 {
		return nil, fmt.Errorf("calib: negative group count %d", numGroups)
	}
	for i, g := range groups {
		if g < 0 || g >= numGroups {
			return nil, fmt.Errorf("calib: group id %d of instance %d out of range [0,%d)", g, i, numGroups)
		}
		out[g].Count++
		out[g].SumScore += scores[i]
		out[g].SumLabel += float64(label01(labels[i]))
	}
	return out, nil
}

// statsPool recycles the per-group accumulators behind ENCE, which
// the pipeline evaluates several times per task (full/train/test
// splits) on every build; the stats never escape the call.
var statsPool = sync.Pool{New: func() any { return new([]SuffStats) }}

// pooledStats returns a zeroed numGroups-long accumulator from the
// pool.
func pooledStats(numGroups int) *[]SuffStats {
	p := statsPool.Get().(*[]SuffStats)
	s := *p
	if cap(s) < numGroups {
		s = make([]SuffStats, numGroups)
	} else {
		s = s[:numGroups]
		for i := range s {
			s[i] = SuffStats{}
		}
	}
	*p = s
	return p
}

// ENCEFromStats computes Definition 3 from pre-aggregated group stats:
//
//	ENCE = Σ_i (|N_i| / |D|) · |o(N_i) − e(N_i)|
//
// Empty groups contribute nothing. Returns 0 when the total population
// is zero.
func ENCEFromStats(stats []SuffStats) float64 {
	total := 0
	for _, g := range stats {
		total += g.Count
	}
	if total == 0 {
		return 0
	}
	var ence float64
	for _, g := range stats {
		if g.Count == 0 {
			continue
		}
		ence += (float64(g.Count) / float64(total)) * g.MiscalAbs()
	}
	return ence
}

// ENCE computes the Expected Neighborhood Calibration Error
// (Definition 3) for instances assigned to groups (neighborhoods)
// identified by ids in [0, numGroups). The accumulators come from an
// internal pool — ENCE is on the build pipeline's evaluation path and
// must not churn O(regions) garbage per call.
func ENCE(scores []float64, labels []int, groups []int, numGroups int) (float64, error) {
	if numGroups < 0 {
		return 0, fmt.Errorf("calib: negative group count %d", numGroups)
	}
	p := pooledStats(numGroups)
	defer statsPool.Put(p)
	stats, err := groupByInto(*p, scores, labels, groups, numGroups)
	if err != nil {
		return 0, err
	}
	return ENCEFromStats(stats), nil
}

// NeighborhoodReport is the per-neighborhood calibration summary used
// by the Figure 6 disparity experiment.
type NeighborhoodReport struct {
	Group    int     // neighborhood id
	Count    int     // population
	Ratio    float64 // e/o calibration ratio (NaN when o = 0)
	Miscal   float64 // |e − o|
	ECE      float64 // per-neighborhood binned ECE
	PosRate  float64
	MeanConf float64
}

// TopNeighborhoods returns per-neighborhood calibration reports for
// the k most populated neighborhoods, ordered by descending
// population (ties broken by group id). ECE inside each neighborhood
// uses the given bin count.
func TopNeighborhoods(scores []float64, labels []int, groups []int, numGroups, k, bins int) ([]NeighborhoodReport, error) {
	stats, err := GroupBy(scores, labels, groups, numGroups)
	if err != nil {
		return nil, err
	}
	order := make([]int, numGroups)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if stats[ga].Count != stats[gb].Count {
			return stats[ga].Count > stats[gb].Count
		}
		return ga < gb
	})
	if k > numGroups {
		k = numGroups
	}
	// Bucket the selected groups' instances in one pass over the data
	// (instead of one scan per report); within each bucket the
	// instance order is unchanged, so the per-neighborhood ECE is
	// identical to a per-group gather.
	slot := make(map[int]int, k)
	gsBySlot := make([][]float64, k)
	glBySlot := make([][]int, k)
	for s, g := range order[:k] {
		slot[g] = s
		gsBySlot[s] = make([]float64, 0, stats[g].Count)
		glBySlot[s] = make([]int, 0, stats[g].Count)
	}
	for i, gid := range groups {
		if s, ok := slot[gid]; ok {
			gsBySlot[s] = append(gsBySlot[s], scores[i])
			glBySlot[s] = append(glBySlot[s], labels[i])
		}
	}
	reports := make([]NeighborhoodReport, 0, k)
	for s, g := range order[:k] {
		st := stats[g]
		ece, err := ECE(gsBySlot[s], glBySlot[s], bins)
		if err != nil {
			return nil, err
		}
		ratio := math.NaN()
		if st.PosRate() > 0 {
			ratio = st.MeanScore() / st.PosRate()
		}
		reports = append(reports, NeighborhoodReport{
			Group:    g,
			Count:    st.Count,
			Ratio:    ratio,
			Miscal:   st.MiscalAbs(),
			ECE:      ece,
			PosRate:  st.PosRate(),
			MeanConf: st.MeanScore(),
		})
	}
	return reports, nil
}
