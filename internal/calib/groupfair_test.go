package calib

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRatesByGroup(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.2}
	labels := []int{1, 1, 0, 0}
	groups := []int{0, 0, 1, 1}
	rates, err := RatesByGroup(scores, labels, groups, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0: both positive; one decided → rate 0.5, TPR 0.5, FPR NaN.
	if rates[0].Count != 2 || !almostEqual(rates[0].PositiveRate, 0.5, 1e-12) {
		t.Errorf("group 0 = %+v", rates[0])
	}
	if !almostEqual(rates[0].TPR, 0.5, 1e-12) || !math.IsNaN(rates[0].FPR) {
		t.Errorf("group 0 TPR/FPR = %v/%v", rates[0].TPR, rates[0].FPR)
	}
	// Group 1: both negative; one decided → FPR 0.5, TPR NaN.
	if !almostEqual(rates[1].FPR, 0.5, 1e-12) || !math.IsNaN(rates[1].TPR) {
		t.Errorf("group 1 TPR/FPR = %v/%v", rates[1].TPR, rates[1].FPR)
	}
}

func TestRatesByGroupValidation(t *testing.T) {
	if _, err := RatesByGroup([]float64{0.5}, []int{1, 0}, []int{0}, 1, 0.5); err == nil {
		t.Error("expected label mismatch error")
	}
	if _, err := RatesByGroup([]float64{0.5}, []int{1}, []int{0, 1}, 2, 0.5); err == nil {
		t.Error("expected group mismatch error")
	}
	if _, err := RatesByGroup([]float64{0.5}, []int{1}, []int{5}, 2, 0.5); err == nil {
		t.Error("expected out-of-range group error")
	}
	if _, err := RatesByGroup(nil, nil, nil, -1, 0.5); err == nil {
		t.Error("expected negative group count error")
	}
}

func TestStatisticalParityGap(t *testing.T) {
	// Group 0 always approved, group 1 never: maximal gap.
	scores := []float64{0.9, 0.9, 0.1, 0.1}
	labels := []int{1, 0, 1, 0}
	groups := []int{0, 0, 1, 1}
	gap, err := StatisticalParityGap(scores, labels, groups, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gap, 1, 1e-12) {
		t.Errorf("gap = %v, want 1", gap)
	}
	// Identical rates: zero gap.
	gap, err = StatisticalParityGap(scores, labels, []int{0, 1, 0, 1}, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gap, 0, 1e-12) {
		t.Errorf("gap = %v, want 0", gap)
	}
}

func TestStatisticalParityGapEmptyGroups(t *testing.T) {
	gap, err := StatisticalParityGap([]float64{0.9}, []int{1}, []int{0}, 3, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gap != 0 {
		t.Errorf("gap over one non-empty group = %v, want 0", gap)
	}
}

func TestEqualizedOddsGap(t *testing.T) {
	// Same TPR (1.0) in both groups, different FPR (1.0 vs 0.0).
	scores := []float64{0.9, 0.9, 0.9, 0.1}
	labels := []int{1, 0, 1, 0}
	groups := []int{0, 0, 1, 1}
	gap, err := EqualizedOddsGap(scores, labels, groups, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gap, 1, 1e-12) {
		t.Errorf("gap = %v, want 1 (FPR spread)", gap)
	}
}

func TestEqualizedOddsGapPerfect(t *testing.T) {
	// Perfect classifier in every group: gap 0.
	scores := []float64{0.9, 0.1, 0.9, 0.1}
	labels := []int{1, 0, 1, 0}
	groups := []int{0, 0, 1, 1}
	gap, err := EqualizedOddsGap(scores, labels, groups, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gap, 0, 1e-12) {
		t.Errorf("gap = %v, want 0", gap)
	}
}

func TestGroupFairnessGapsInRangeProperty(t *testing.T) {
	// Property: both gaps lie in [0, 1] for arbitrary data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scores, labels, groups, g := randomInstance(rng, 100, 8)
		sp, err := StatisticalParityGap(scores, labels, groups, g, 0.5, 0)
		if err != nil || sp < 0 || sp > 1 {
			return false
		}
		eo, err := EqualizedOddsGap(scores, labels, groups, g, 0.5, 0)
		if err != nil || eo < 0 || eo > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSingleGroupGapsZeroProperty(t *testing.T) {
	// Property: with one group, both gaps are 0 by definition.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scores, labels, _, _ := randomInstance(rng, 60, 1)
		groups := make([]int, len(scores))
		sp, err := StatisticalParityGap(scores, labels, groups, 1, 0.5, 0)
		if err != nil || sp != 0 {
			return false
		}
		eo, err := EqualizedOddsGap(scores, labels, groups, 1, 0.5, 0)
		return err == nil && eo == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
